// Benchmarks that regenerate every table and figure of the paper's
// evaluation at full problem size (bitcnt(10000), mmul(32), zoom(32), 8
// SPEs, 150-cycle memory). Each benchmark executes the corresponding
// harness experiment and reports the headline numbers as custom metrics,
// so `go test -bench=.` reproduces the paper end to end:
//
//	BenchmarkFig7Mmul-8  1  ... speedup-8spu=14.0 ...
//
// Absolute cycle counts are not expected to match the authors' CellSim
// (see EXPERIMENTS.md); the reported shapes are the reproduction target.
package celldta

import (
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/harness"
	"repro/internal/stats"
)

// runExperiment executes one harness experiment b.N times and reports
// the chosen metrics.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var out *harness.Outcome
	for i := 0; i < b.N; i++ {
		// A fresh context per iteration: the run cache must not turn
		// repeat iterations into no-ops.
		ctx := harness.NewContext(harness.Options{SPEs: 8, Latency: 150})
		var err error
		out, err = exp.Run(ctx)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	for _, m := range metrics {
		v, ok := out.Metrics[m]
		if !ok {
			b.Fatalf("%s: metric %q missing (have %v)", id, m, metricNames(out))
		}
		b.ReportMetric(v, m)
	}
	if testing.Verbose() {
		out.Print(io.Discard)
	}
}

func metricNames(out *harness.Outcome) []string {
	names := make([]string, 0, len(out.Metrics))
	for k := range out.Metrics {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic failure messages
	return names
}

// --- Paper tables 2-4 (configuration) ---

func BenchmarkTable2MemoryParams(b *testing.B) {
	runExperiment(b, "table2", "mem_latency", "ls_latency")
}

func BenchmarkTable3DMAParams(b *testing.B) {
	runExperiment(b, "table3")
}

func BenchmarkTable4BusParams(b *testing.B) {
	runExperiment(b, "table4", "buses", "mfc_queue", "mfc_latency")
}

// --- Figure 5: SPU time breakdowns ---

func BenchmarkFig5aBreakdownNoPrefetch(b *testing.B) {
	runExperiment(b, "fig5a",
		"bitcnt_mem_pct", "mmul_mem_pct", "zoom_mem_pct")
}

func BenchmarkFig5bBreakdownPrefetch(b *testing.B) {
	runExperiment(b, "fig5b",
		"bitcnt_mem_pct", "mmul_mem_pct", "zoom_mem_pct",
		"bitcnt_prefetch_pct", "mmul_prefetch_pct", "zoom_prefetch_pct")
}

// --- Table 5: dynamic instruction counts ---

func BenchmarkTable5InstructionCounts(b *testing.B) {
	runExperiment(b, "table5",
		"mmul_read", "mmul_write", "zoom_read", "zoom_write", "bitcnt_read")
}

// --- Figures 6-8: execution time and scalability ---

func BenchmarkFig6Bitcnt(b *testing.B) {
	runExperiment(b, "fig6", "speedup_8spu", "scalability_orig", "scalability_pf")
}

func BenchmarkFig7Mmul(b *testing.B) {
	runExperiment(b, "fig7", "speedup_8spu", "scalability_orig", "scalability_pf")
}

func BenchmarkFig8Zoom(b *testing.B) {
	runExperiment(b, "fig8", "speedup_8spu", "scalability_orig", "scalability_pf")
}

// --- Figure 9: pipeline usage ---

func BenchmarkFig9PipelineUsage(b *testing.B) {
	runExperiment(b, "fig9",
		"mmul_usage_orig", "mmul_usage_pf", "zoom_usage_pf", "bitcnt_usage_pf")
}

// --- Section 4.3: latency-1 (always-hit) study ---

func BenchmarkLatency1Study(b *testing.B) {
	runExperiment(b, "lat1",
		"bitcnt_speedup", "mmul_speedup", "zoom_speedup")
}

// --- Ablations (DESIGN.md) ---

func BenchmarkAblationVirtualFP(b *testing.B) {
	runExperiment(b, "ablation-vfp", "blocking16_cycles", "vfp16_cycles")
}

func BenchmarkAblationDMALatency(b *testing.B) {
	runExperiment(b, "ablation-dmalat", "cycles_lat0", "cycles_lat120")
}

func BenchmarkAblationBuses(b *testing.B) {
	runExperiment(b, "ablation-buses", "cycles_1buses", "cycles_4buses")
}

func BenchmarkAblationMemLatency(b *testing.B) {
	runExperiment(b, "ablation-memlat", "speedup_lat1", "speedup_lat150", "speedup_lat600")
}

func BenchmarkAblationNodes(b *testing.B) {
	runExperiment(b, "ablation-nodes", "cycles_1nodes", "cycles_2nodes")
}

func BenchmarkAblationGranularity(b *testing.B) {
	runExperiment(b, "ablation-granularity", "perrow_cmds", "whole_cmds")
}

func BenchmarkAblationWriteback(b *testing.B) {
	runExperiment(b, "ablation-writeback",
		"posted_cycles", "writeback_cycles", "posted_messages", "writeback_messages")
}

// --- End-to-end public-API benchmarks (simulation throughput) ---

func benchmarkRun(b *testing.B, workload string, pf bool) {
	for i := 0; i < b.N; i++ {
		res, err := Run(RunOptions{
			Workload: workload,
			Prefetch: pf,
			Params:   Params{Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
		b.ReportMetric(res.Agg.Breakdown.StallPct(), "stall-pct")
		b.ReportMetric(float64(res.Agg.Causes[stats.CauseBlockingRead]), "blocking-read-cycles")
	}
}

func BenchmarkRunMmulOriginal(b *testing.B)   { benchmarkRun(b, "mmul", false) }
func BenchmarkRunMmulPrefetch(b *testing.B)   { benchmarkRun(b, "mmul", true) }
func BenchmarkRunZoomOriginal(b *testing.B)   { benchmarkRun(b, "zoom", false) }
func BenchmarkRunZoomPrefetch(b *testing.B)   { benchmarkRun(b, "zoom", true) }
func BenchmarkRunBitcntOriginal(b *testing.B) { benchmarkRun(b, "bitcnt", false) }
func BenchmarkRunBitcntPrefetch(b *testing.B) { benchmarkRun(b, "bitcnt", true) }

// Example of the one-call API (also serves as a doc test).
func ExampleRun() {
	res, err := Run(RunOptions{Workload: "vecsum", Prefetch: true, Params: Params{N: 256, Seed: 7}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("tokens:", len(res.Tokens))
	// Output: tokens: 1
}
