// Package celldta is the public API of the CellDTA reproduction: a
// cycle-level model of DTA (Decoupled Threaded Architecture) hardware
// scheduling on a Cell-like many-core, implementing the DMA-prefetching
// mechanism of Giorgi, Popovic and Puzovic, "Exploiting DMA to enable
// non-blocking execution in Decoupled Threaded Architecture" (IPDPS/IPPS
// Workshops, 2009).
//
// The package wraps the internal substrates (simulation kernel, ISA,
// interconnect, memory, local stores, MFC DMA engines, LSE/DSE hardware
// scheduler, SPU pipelines) behind three entry points:
//
//   - Run executes a named benchmark (bitcnt, mmul, zoom, vecsum) on a
//     configured machine, with or without the paper's DMA prefetching;
//   - BuildWorkload / Transform / Execute give step-wise control (build
//     a DTA program, apply the prefetch compiler pass, run it);
//   - NewProgramBuilder exposes the macro-assembler for writing custom
//     DTA thread programs against the same machine.
package celldta

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Re-exported machine configuration (paper Tables 2 and 4 defaults).
type (
	// Config is the whole-machine configuration.
	Config = cell.Config
	// Result carries cycles, per-SPU statistics and workload tokens.
	Result = cell.Result
	// Params selects a workload's problem size, worker count and seed.
	Params = workloads.Params
	// Program is a built DTA program (templates + memory image).
	Program = program.Program
	// ProgramBuilder is the macro-assembler entry point.
	ProgramBuilder = program.Builder
	// TemplateBuilder builds one thread template.
	TemplateBuilder = program.TB
	// Asm emits instructions into one code block.
	Asm = program.Asm
	// Reg names an SPU register.
	Reg = program.Reg
	// MemReader is the post-run view of main memory.
	MemReader = program.MemReader
	// Breakdown is the SPU time breakdown (paper Figure 5 buckets).
	Breakdown = stats.Breakdown
	// PrefetchStats summarises what the prefetch pass rewrote.
	PrefetchStats = prefetch.Stats
)

// Region address/size expressions (inputs to the prefetch compiler).
type (
	// AddrExpr is a frame-relative address: Const + sum of slot*scale.
	AddrExpr = program.AddrExpr
	// AddrTerm contributes frame[Slot]*Scale to an AddrExpr.
	AddrTerm = program.AddrTerm
	// SizeExpr is a constant or frame-derived transfer size.
	SizeExpr = program.SizeExpr
)

// AddrTermExpr builds frame[slotA]*scaleA (+ frame[slotB]*scaleB when
// slotB >= 0) — the common one- and two-term region base shapes.
func AddrTermExpr(slotA int, scaleA int64, slotB int, scaleB int64) AddrExpr {
	e := AddrExpr{Terms: []AddrTerm{{Slot: slotA, Scale: scaleA}}}
	if slotB >= 0 {
		e.Terms = append(e.Terms, AddrTerm{Slot: slotB, Scale: scaleB})
	}
	return e
}

// SizeConstExpr declares a fixed region size in bytes.
func SizeConstExpr(n int64) SizeExpr { return program.SizeConst(n) }

// SizeSlotExpr declares a frame-derived region size: frame[slot]*scale.
func SizeSlotExpr(slot int, scale int64) SizeExpr { return program.SizeSlot(slot, scale, 0) }

// Breakdown bucket names (paper Figure 5).
const (
	BucketWorking  = stats.Working
	BucketIdle     = stats.Idle
	BucketMemStall = stats.MemStall
	BucketLSStall  = stats.LSStall
	BucketLSEStall = stats.LSEStall
	BucketPrefetch = stats.Prefetch
)

// DefaultConfig returns the paper's platform: 8 SPEs, 150-cycle memory,
// 156 kB local stores, 4 buses, 16-deep MFC queues.
func DefaultConfig() Config { return cell.DefaultConfig() }

// R names a general-purpose register for builder code.
func R(i int) Reg { return program.R(i) }

// NewProgramBuilder starts a custom DTA program.
func NewProgramBuilder(name string) *ProgramBuilder { return program.NewBuilder(name) }

// Workloads lists the registered benchmark names.
func Workloads() []string { return workloads.Names() }

// WorkloadInfo describes one registered benchmark.
type WorkloadInfo struct {
	Name        string
	Description string
	DefaultN    int
}

// Describe returns metadata for a registered workload.
func Describe(name string) (WorkloadInfo, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return WorkloadInfo{}, fmt.Errorf("celldta: unknown workload %q (have %v)", name, workloads.Names())
	}
	return WorkloadInfo{Name: w.Name, Description: w.Description, DefaultN: w.DefaultN}, nil
}

// AutoWorkers picks the paper-style power-of-two worker count for a
// machine with the given number of SPEs.
func AutoWorkers(spes, max int) int { return workloads.AutoWorkers(spes, max) }

// BuildWorkload constructs a named benchmark program without
// prefetching. Zero fields of Params select paper defaults.
func BuildWorkload(name string, p Params) (*Program, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return nil, fmt.Errorf("celldta: unknown workload %q (have %v)", name, workloads.Names())
	}
	if p.N == 0 {
		p.N = w.DefaultN
	}
	return w.Build(p)
}

// Transform applies the paper's prefetch compiler pass: region-annotated
// READs move into DMA transfers programmed by a synthesised PF block.
func Transform(p *Program) (*Program, error) { return prefetch.Transform(p) }

// TransformOptions selects extension passes beyond the paper.
type TransformOptions = prefetch.Options

// TransformWith applies the prefetch pass with extensions (e.g.
// WriteBack: stage tagged WRITEs locally and flush with PS-block DMA
// PUTs — the write-side dual of the paper's mechanism).
func TransformWith(p *Program, opt TransformOptions) (*Program, error) {
	return prefetch.TransformWithOptions(p, opt)
}

// AnalyzePrefetch reports what the pass rewrote (e.g. the fraction of
// READ instructions decoupled — 62% for bitcnt in the paper).
func AnalyzePrefetch(before, after *Program) PrefetchStats {
	return prefetch.Analyze(before, after)
}

// Execute runs a built program on a machine with the given
// configuration.
func Execute(cfg Config, p *Program) (*Result, error) {
	m, err := cell.New(cfg, p)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// RunOptions selects a benchmark run.
type RunOptions struct {
	Workload string
	Params   Params
	Prefetch bool   // apply the DMA-prefetching transformation
	Config   Config // zero value selects DefaultConfig
}

// Run builds and executes a benchmark in one call.
func Run(opt RunOptions) (*Result, error) {
	cfg := opt.Config
	if cfg.SPEs == 0 {
		cfg = DefaultConfig()
	}
	p := opt.Params
	if p.Workers == 0 {
		p.Workers = AutoWorkers(cfg.SPEs, 32)
	}
	prog, err := BuildWorkload(opt.Workload, p)
	if err != nil {
		return nil, err
	}
	if opt.Prefetch {
		prog, err = Transform(prog)
		if err != nil {
			return nil, err
		}
	}
	res, err := Execute(cfg, prog)
	if err != nil {
		return nil, err
	}
	if res.CheckErr != nil {
		return res, fmt.Errorf("celldta: functional check failed: %w", res.CheckErr)
	}
	return res, nil
}
