GO ?= go

.PHONY: build test bench bench-baseline perf-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the simulation-throughput benchmark set and writes
# BENCH_simthroughput.json (ns/op, B/op, allocs/op, sim-cycles/sec).
bench:
	$(GO) run ./cmd/benchjson -benchtime 3x -count 3 -out BENCH_simthroughput.json

# bench-baseline refreshes the committed baseline (run before landing a
# perf change so the PR records a before/after pair).
bench-baseline:
	$(GO) run ./cmd/benchjson -benchtime 3x -count 3 -out BENCH_simthroughput.baseline.json

# perf-smoke is the CI gate: a short, low-iteration pass compared
# against the committed baseline. The gate is generous (>25% ns/op
# regression) because CI hardware differs from the machine that
# recorded the baseline; see EXPERIMENTS.md "Performance".
perf-smoke:
	$(GO) run ./cmd/benchjson -benchtime 2x -count 2 -out BENCH_simthroughput.json \
		-compare BENCH_simthroughput.baseline.json -max-regress 25
