// Command celldta runs one benchmark on the CellDTA machine model and
// prints the statistics the paper reports: cycle count, the SPU
// execution-time breakdown (Figure 5 categories), dynamic instruction
// counts (Table 5 columns) and pipeline usage (Figure 9).
//
// Usage:
//
//	celldta -bench mmul [-n 32] [-spes 8] [-latency 150] [-prefetch]
//	        [-workers 0] [-nodes 1] [-vfp] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/stats"
)

func main() {
	var (
		bench    = flag.String("bench", "mmul", "workload: "+strings.Join(celldta.Workloads(), ", "))
		n        = flag.Int("n", 0, "problem size (0 = paper default)")
		spes     = flag.Int("spes", 8, "number of SPEs")
		latency  = flag.Int("latency", 150, "main-memory latency in cycles")
		pf       = flag.Bool("prefetch", false, "enable the paper's DMA prefetching")
		workers  = flag.Int("workers", 0, "worker threads (0 = auto power of two)")
		nodes    = flag.Int("nodes", 1, "DTA nodes (SPEs split evenly)")
		vfp      = flag.Bool("vfp", false, "virtual frame pointers (DTA-C extension)")
		seed     = flag.Uint64("seed", 42, "input seed")
		verbose  = flag.Bool("verbose", false, "per-SPU statistics")
		describe = flag.Bool("describe", false, "describe the workload and exit")
		traceN   = flag.Int("trace", 0, "record and print up to N thread-lifecycle events")
	)
	flag.Parse()

	if *describe {
		info, err := celldta.Describe(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("%s: %s (paper size: %d)\n", info.Name, info.Description, info.DefaultN)
		return
	}

	cfg := celldta.DefaultConfig()
	cfg.SPEs = *spes
	cfg.Nodes = *nodes
	cfg.Mem.Latency = *latency
	cfg.LSE.VirtualFP = *vfp
	cfg.TraceCap = *traceN

	res, err := celldta.Run(celldta.RunOptions{
		Workload: *bench,
		Params:   celldta.Params{N: *n, Workers: *workers, Seed: *seed},
		Prefetch: *pf,
		Config:   cfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mode := "original DTA"
	if *pf {
		mode = "DMA prefetching"
	}
	fmt.Printf("%s on %d SPEs (%s, memory latency %d)\n", *bench, *spes, mode, *latency)
	fmt.Printf("execution time: %d cycles\n", res.Cycles)
	fmt.Printf("threads executed: %d (PF blocks: %d)\n", res.Agg.Threads, res.Agg.PFBlocks)
	fmt.Printf("functional check: ok (tokens %v)\n\n", res.Tokens)

	bd := res.AvgBreakdownPct()
	tbl := &stats.Table{
		Title:   "average SPU execution time breakdown",
		Headers: []string{"bucket", "share"},
	}
	for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
		tbl.AddRow(b.String(), stats.Pct(bd[b]))
	}
	tbl.Render(os.Stdout)

	ic := res.Agg.Instr
	fmt.Printf("\ninstructions: total=%d load=%d store=%d read=%d write=%d lsdir=%d dta=%d mfc=%d\n",
		ic.Total, ic.Load, ic.Store, ic.Read, ic.Write, ic.LSDir, ic.DTA, ic.MFC)
	fmt.Printf("pipeline usage: %.1f%% of cycles issuing (%.3f slot utilisation)\n",
		bd[stats.Working], res.PipelineUsage())
	fmt.Printf("interconnect: %d messages, %d bytes\n", res.Net.Messages, res.Net.Bytes)
	fmt.Printf("memory: %d scalar reads, %d block reads, %d bytes read\n",
		res.Mem.ScalarReads, res.Mem.BlockReads, res.Mem.BytesRead)

	if res.Trace != nil {
		fmt.Println("\nthread lifecycle trace (paper Figure 4 states):")
		res.Trace.Dump(os.Stdout)
	}

	if *verbose {
		fmt.Println()
		per := &stats.Table{
			Title: "per-SPU statistics",
			Headers: []string{"SPU", "threads", "working", "idle", "mem", "ls",
				"lse", "prefetch", "instr"},
		}
		for i, s := range res.SPUs {
			per.AddRow(
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", s.Threads),
				stats.Pct(s.Breakdown.Percent(stats.Working)),
				stats.Pct(s.Breakdown.Percent(stats.Idle)),
				stats.Pct(s.Breakdown.Percent(stats.MemStall)),
				stats.Pct(s.Breakdown.Percent(stats.LSStall)),
				stats.Pct(s.Breakdown.Percent(stats.LSEStall)),
				stats.Pct(s.Breakdown.Percent(stats.Prefetch)),
				fmt.Sprintf("%d", s.Instr.Total),
			)
		}
		per.Render(os.Stdout)
	}
}
