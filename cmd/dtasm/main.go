// Command dtasm assembles, disassembles and runs DTA programs in the
// textual assembly format (see internal/asm).
//
// Usage:
//
//	dtasm -run prog.dta [-spes 8] [-latency 150] [-prefetch]
//	dtasm -check prog.dta          # assemble and validate only
//	dtasm -roundtrip prog.dta      # assemble, format, print
//	dtasm -dump-workload mmul      # print a builder workload as assembly
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/workloads"
)

func main() {
	var (
		runIt     = flag.Bool("run", false, "assemble and execute")
		check     = flag.Bool("check", false, "assemble and validate only")
		roundtrip = flag.Bool("roundtrip", false, "assemble and print the formatted program")
		dump      = flag.String("dump-workload", "", "print a registered workload as assembly")
		spes      = flag.Int("spes", 8, "number of SPEs")
		latency   = flag.Int("latency", 150, "memory latency")
		pf        = flag.Bool("prefetch", false, "apply the prefetch transformation")
		n         = flag.Int("n", 8, "workload size for -dump-workload")
	)
	flag.Parse()

	if *dump != "" {
		w, ok := workloads.Get(*dump)
		if !ok {
			fatal("unknown workload %q (have %v)", *dump, workloads.Names())
		}
		prog, err := w.Build(workloads.Params{N: *n, Workers: 4, Chunk: 8, Seed: 42})
		if err != nil {
			fatal("build: %v", err)
		}
		if *pf {
			if prog, err = prefetch.Transform(prog); err != nil {
				fatal("transform: %v", err)
			}
		}
		fmt.Print(asm.Format(prog))
		return
	}

	if flag.NArg() != 1 {
		fatal("need exactly one .dta file (or -dump-workload)")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	prog, err := asm.Parse(string(src))
	if err != nil {
		fatal("%v", err)
	}
	if *pf {
		if prog, err = prefetch.Transform(prog); err != nil {
			fatal("transform: %v", err)
		}
	}

	switch {
	case *check:
		fmt.Printf("ok: %d templates, %d instructions, %d segments\n",
			len(prog.Templates), prog.CodeLen(), len(prog.Segments))
	case *roundtrip:
		fmt.Print(asm.Format(prog))
	case *runIt:
		cfg := cell.DefaultConfig()
		cfg.SPEs = *spes
		cfg.Mem.Latency = *latency
		m, err := cell.New(cfg, prog)
		if err != nil {
			fatal("%v", err)
		}
		res, err := m.Run()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("completed in %d cycles; tokens %v; %d threads\n",
			res.Cycles, res.Tokens, res.Agg.Threads)
	default:
		fatal("choose one of -run, -check, -roundtrip")
	}
	_ = program.MaxFrameSlots
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dtasm: "+format+"\n", args...)
	os.Exit(1)
}
