// Command benchjson is the benchmark-trajectory wrapper: it runs the
// simulation-throughput benchmarks (`go test -bench`), parses the
// standard benchmark output and emits a machine-readable
// BENCH_simthroughput.json so every PR records a comparable
// before/after pair. It also implements the regression gate used by the
// CI perf-smoke job.
//
// Usage:
//
//	benchjson [-out BENCH_simthroughput.json] [-benchtime 3x] [-count 1]
//	          [-compare BENCH_simthroughput.baseline.json] [-max-regress 25]
//
// Modes:
//
//	(default)      run the benchmark set, write -out, print a summary
//	-compare path  after running, compare ns/op against the baseline
//	               file and exit 1 when any benchmark regressed by more
//	               than -max-regress percent
//
// The benchmark set is the six end-to-end BenchmarkRun* benchmarks of
// the root package (bitcnt/mmul/zoom × original/prefetch), the serial,
// batched and checkpoint/cold phase-sweep benchmarks of
// internal/harness, and the internal/cell batch-scheduler A/B
// (round-robin vs horizon-aware at widths 4/16/64, with slices and
// switches metrics), all with -benchmem, so the JSON carries ns/op,
// B/op, allocs/op, the derived simulated cycles per wall-clock second,
// per-core throughput (via the custom cores metric) and a suite-wide
// aggregate sim_cycles_per_sec_per_core. The checkpoint pair
// additionally reports checkpoint-hit-ratio and sim-cycles-saved: the
// ns/op gap between BenchmarkHarnessCheckpointSweep and
// BenchmarkHarnessColdPhaseSweep is the warm-up-sharing gain on a
// warm-up-heavy sweep (see EXPERIMENTS.md "Checkpoint/fork").
//
// Caveat: ns/op is machine-dependent, so comparing against a baseline
// recorded on different hardware partly measures the hardware. The
// committed baseline predates the burst fast path, leaving a 2-3x
// margin before the CI gate's 25% threshold can trip on slower
// runners; refresh it with `make bench-baseline` when landing
// intentional perf changes (see EXPERIMENTS.md "Performance" and the
// ROADMAP item on per-runner baselines).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SimCycles is the custom sim-cycles metric reported by the
	// BenchmarkRun* benchmarks (0 when a benchmark does not report it).
	SimCycles float64 `json:"sim_cycles,omitempty"`
	// Cores is the custom cores metric: how many CPU cores the
	// benchmark occupies (0 when not reported; treated as 1).
	Cores float64 `json:"cores,omitempty"`
	// SimCyclesPerSec = SimCycles / (NsPerOp ns) — the simulator's
	// headline throughput number.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
	// SimCyclesPerSecPerCore = SimCyclesPerSec / Cores — the
	// per-core efficiency number batched execution is judged by, and
	// the one that stays comparable between single-core and fanned-out
	// runners.
	SimCyclesPerSecPerCore float64 `json:"sim_cycles_per_sec_per_core,omitempty"`
	// StallPct is the custom stall-pct metric: the share of simulated
	// SPU cycles spent in stall buckets (memory/LS/LSE), reported by
	// the BenchmarkRun* benchmarks.
	StallPct float64 `json:"stall_pct,omitempty"`
	// BlockingReadCycles is the custom blocking-read-cycles metric:
	// simulated cycles stalled on blocking READ instructions — the
	// stall class DMA prefetching exists to remove, so the prefetch
	// variants should report ~0.
	BlockingReadCycles float64 `json:"blocking_read_cycles,omitempty"`
	// CheckpointHitRatio is the custom checkpoint-hit-ratio metric:
	// the share of fork requests served from a cached warm-up snapshot
	// (reported by the checkpoint sweep benchmark pair; 0 for the cold
	// baseline by construction).
	CheckpointHitRatio float64 `json:"checkpoint_hit_ratio,omitempty"`
	// SimCyclesSaved is the custom sim-cycles-saved metric: simulated
	// cycles per iteration that snapshot restores skipped instead of
	// re-executing.
	SimCyclesSaved float64 `json:"sim_cycles_saved,omitempty"`
	// Slices is the custom slices metric: scheduler advances (one
	// resume-to-yield step of a machine or fiber) per iteration,
	// reported by the batch benchmarks.
	Slices float64 `json:"slices,omitempty"`
	// FiberSwitches is the custom switches metric: the advances that
	// changed machine/fiber — the context-switch share of Slices, which
	// horizon-aware scheduling minimises relative to round-robin.
	FiberSwitches float64 `json:"fiber_switches,omitempty"`
}

// Document is the BENCH_simthroughput.json layout.
type Document struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
	// AggregateSimCyclesPerSecPerCore summarises every result that
	// reports sim-cycles: total simulated cycles divided by total
	// core-seconds (Σ cycles / Σ ns/op × cores) — one number for "how
	// many cycles does a core simulate per second across the suite".
	AggregateSimCyclesPerSecPerCore float64 `json:"aggregate_sim_cycles_per_sec_per_core,omitempty"`
}

// suite describes one `go test -bench` invocation.
type suite struct {
	pkg     string
	pattern string
}

var suites = []suite{
	{pkg: ".", pattern: "^BenchmarkRun(Mmul|Zoom|Bitcnt)(Original|Prefetch)$"},
	{pkg: "./internal/harness", pattern: "^BenchmarkHarness(Serial|Batched|Checkpoint|ColdPhase)Sweep$"},
	// The batch-scheduler A/B: the same 64-scenario stream under
	// round-robin and horizon-aware scheduling at three widths, with
	// slices/switches quantifying the scheduling-overhead difference.
	{pkg: "./internal/cell", pattern: "^BenchmarkBatch(Horizon)?SweepW(4|16|64)$"},
}

func main() {
	var (
		out        = flag.String("out", "BENCH_simthroughput.json", "output JSON path")
		benchtime  = flag.String("benchtime", "3x", "value for go test -benchtime")
		count      = flag.Int("count", 1, "value for go test -count")
		compare    = flag.String("compare", "", "baseline JSON to compare ns/op against")
		maxRegress = flag.Float64("max-regress", 25, "fail when ns/op regresses by more than this percent vs -compare")
	)
	flag.Parse()

	doc := Document{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: goVersion(),
		Benchtime: *benchtime,
	}
	for _, s := range suites {
		results, err := runSuite(s, *benchtime, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		doc.Results = append(doc.Results, results...)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}
	doc.aggregate()

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	for _, r := range doc.Results {
		line := fmt.Sprintf("%-28s %14.0f ns/op %10d B/op %8d allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.SimCyclesPerSec > 0 {
			line += fmt.Sprintf(" %12.0f sim-cycles/sec", r.SimCyclesPerSec)
		}
		if r.SimCyclesPerSecPerCore > 0 && r.Cores > 1 {
			line += fmt.Sprintf(" %12.0f sim-cycles/sec/core", r.SimCyclesPerSecPerCore)
		}
		if r.StallPct > 0 {
			line += fmt.Sprintf(" %5.1f stall-pct", r.StallPct)
		}
		if r.CheckpointHitRatio > 0 {
			line += fmt.Sprintf(" %5.2f checkpoint-hit-ratio", r.CheckpointHitRatio)
		}
		fmt.Println(line)
	}
	if doc.AggregateSimCyclesPerSecPerCore > 0 {
		fmt.Printf("aggregate %40.0f sim-cycles/sec/core\n", doc.AggregateSimCyclesPerSecPerCore)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(doc.Results))

	if *compare != "" {
		if err := compareBaseline(doc, *compare, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// benchLine matches `BenchmarkFoo-8  3  123456 ns/op  1 a-metric  2 B/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func runSuite(s suite, benchtime string, count int) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", s.pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), s.pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	var results []Result
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: s.pkg}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		if err := parseMetrics(&r, m[3]); err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		r.derive()
		// -count > 1 repeats a name back to back: keep the fastest run.
		if n := len(results); n > 0 && results[n-1].Name == r.Name {
			if r.NsPerOp < results[n-1].NsPerOp {
				results[n-1] = r
			}
			continue
		}
		results = append(results, r)
	}
	return results, nil
}

// parseMetrics consumes the `value unit value unit ...` tail of a
// benchmark line.
func parseMetrics(r *Result, tail string) error {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "sim-cycles":
			r.SimCycles = v
		case "cores":
			r.Cores = v
		case "stall-pct":
			r.StallPct = v
		case "blocking-read-cycles":
			r.BlockingReadCycles = v
		case "checkpoint-hit-ratio":
			r.CheckpointHitRatio = v
		case "sim-cycles-saved":
			r.SimCyclesSaved = v
		case "slices":
			r.Slices = v
		case "switches":
			r.FiberSwitches = v
		}
	}
	return nil
}

func (r *Result) derive() {
	if r.SimCycles > 0 && r.NsPerOp > 0 {
		r.SimCyclesPerSec = r.SimCycles / r.NsPerOp * 1e9
		cores := r.Cores
		if cores <= 0 {
			cores = 1
		}
		r.SimCyclesPerSecPerCore = r.SimCyclesPerSec / cores
	}
}

// aggregate computes the suite-wide per-core throughput over every
// result that reports simulated cycles.
func (d *Document) aggregate() {
	var cycles, coreNs float64
	for _, r := range d.Results {
		if r.SimCycles <= 0 || r.NsPerOp <= 0 {
			continue
		}
		cores := r.Cores
		if cores <= 0 {
			cores = 1
		}
		cycles += r.SimCycles
		coreNs += r.NsPerOp * cores
	}
	if coreNs > 0 {
		d.AggregateSimCyclesPerSecPerCore = cycles / coreNs * 1e9
	}
}

// compareBaseline fails when any benchmark present in both documents
// regressed in ns/op by more than maxRegress percent.
func compareBaseline(doc Document, path string, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Document
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decode %s: %w", path, err)
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	failed := 0
	for _, r := range doc.Results {
		b, ok := baseline[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		deltaPct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if deltaPct > maxRegress {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("compare %-28s baseline %14.0f ns/op now %14.0f ns/op (%+.1f%%) %s\n",
			r.Name, b.NsPerOp, r.NsPerOp, deltaPct, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", failed, maxRegress, path)
	}
	return nil
}
