// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the ablations documented in DESIGN.md) on the CellDTA
// reproduction.
//
// Usage:
//
//	experiments [-only id[,id...]] [-spes n] [-latency n] [-quick] [-list] [-parallel n]
//	            [-batch k] [-json] [-trace path] [-profile path]
//	            [-cpuprofile path] [-memprofile path]
//
// -trace path records every simulation the serial runner executes and
// writes one Chrome trace-event document (Perfetto/chrome://tracing)
// with per-SPE dispatch, DMA, NoC and thread-lifecycle tracks; see
// OBSERVABILITY.md. Recording requires the serial runner.
//
// -profile path enables the guest cycle profiler on every simulation
// the serial runner executes and writes one gzipped pprof protobuf
// attributing simulated SPU cycles to (program, template block, PC,
// stall cause) — inspect with `go tool pprof -top path`. This profiles
// the simulated machine; -cpuprofile/-memprofile profile the simulator
// process itself (see OBSERVABILITY.md).
//
// With no flags it runs the full paper suite at the paper's operating
// point (8 SPEs, 150-cycle memory, full problem sizes) followed by the
// pinned synth corpus: generated scenarios (synth/0001..synth/0032,
// see FUZZING.md) are first-class experiments — they appear in -list,
// run by name through -only, and sweep like any paper figure. -parallel n
// fans the selected experiments out over n workers (n < 0 means one per
// CPU); each experiment then runs in its own isolated context and the
// output is printed in the usual order once results are in. -batch k
// with k > 1 interleaves up to k experiments per worker cooperatively
// (simulations advance in bounded slices and the worker's run cache is
// shared across its batch), producing byte-identical results to the
// serial runner. -json
// switches stdout to NDJSON — one object per experiment (id, run key,
// tables, metrics, elapsed) in the same shape the dtad sweep stream
// serves, so piped consumers need only one decoder.
//
// Failed experiments no longer abort the run: every selected experiment
// is reported (completed results in full, failures on stderr and in the
// NDJSON error field) and the exit status is 1 if any failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/profiling"
	"repro/internal/service"
)

func main() {
	var (
		only      = flag.String("only", "", "comma-separated experiment ids (default: all)")
		spes      = flag.Int("spes", 8, "number of SPEs")
		latency   = flag.Int("latency", 150, "main-memory latency in cycles")
		quick     = flag.Bool("quick", false, "shrink problem sizes for a fast pass")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		metrics   = flag.Bool("metrics", false, "also print machine-readable metrics")
		seed      = flag.Uint64("seed", 42, "workload input seed")
		parallel  = flag.Int("parallel", 0, "run experiments on n workers (0 = serial shared-cache, <0 = one per CPU)")
		batchW    = flag.Int("batch", 1, "experiments interleaved per worker (>1 enables the batched runner)")
		jsonOut   = flag.Bool("json", false, "emit NDJSON outcomes (one object per experiment) instead of tables")
		tracePath = flag.String("trace", "", "write a Chrome trace-event timeline of every simulation to this file (serial mode only)")
		profPath  = flag.String("profile", "", "write a guest cycle profile (pprof format, gzipped) of every simulation to this file (serial mode only)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *tracePath != "" && (*parallel != 0 || *batchW > 1) {
		fmt.Fprintln(os.Stderr, "-trace requires the serial runner (drop -parallel/-batch)")
		os.Exit(2)
	}
	if *profPath != "" && (*parallel != 0 || *batchW > 1) {
		fmt.Fprintln(os.Stderr, "-profile requires the serial runner (drop -parallel/-batch)")
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	selected := harness.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := harness.Options{SPEs: *spes, Latency: *latency, Quick: *quick, Seed: *seed}

	failed := 0
	report := func(r harness.RunResult) {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.Experiment.ID, r.Err)
		}
		if *jsonOut {
			if err := reportJSON(opt, r); err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "encode %s: %v\n", r.Experiment.ID, err)
			}
		} else if r.Err == nil {
			reportText(r, *metrics)
		}
	}

	start := time.Now()
	if *batchW > 1 {
		// Batched mode: -parallel still picks the worker count (0 keeps
		// the serial default of one worker, <0 means one per CPU), and
		// each worker interleaves up to -batch experiments.
		workers := *parallel
		if workers == 0 {
			workers = 1
		} else if workers < 0 {
			workers = 0 // Batched resolves 0 to one worker per CPU
		}
		for _, r := range harness.Batched(opt, selected, workers, *batchW) {
			report(r)
		}
	} else if *parallel != 0 {
		// Parallel mode necessarily waits for the pool; results still
		// print in presentation order.
		for _, r := range harness.Parallel(opt, selected, *parallel) {
			report(r)
		}
	} else {
		// Serial mode shares one context so repeated configurations hit
		// the in-process run cache, and reports each experiment as it
		// completes (full-size sweeps take hours — output must stream).
		ctx := harness.NewContext(opt)
		if *tracePath != "" {
			ctx.EnableRecording(0)
		}
		if *profPath != "" {
			ctx.EnableProfiling()
		}
		for _, e := range selected {
			report(harness.RunOn(ctx, e))
		}
		if *tracePath != "" {
			if err := writeTraceFile(*tracePath, ctx.Recorded()); err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			}
		}
		if *profPath != "" {
			if err := writeProfileFile(*profPath, ctx.Profiled()); err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "profile: %v\n", err)
			}
		}
	}
	if !*jsonOut {
		fmt.Printf("==== sweep wall time %.1fs over %d experiments (%d failed)\n",
			time.Since(start).Seconds(), len(selected), failed)
	}
	if failed > 0 {
		stopProf() // os.Exit skips deferred functions
		os.Exit(1)
	}
}

// writeTraceFile dumps every simulation the context recorded as one
// Chrome trace-event document (load in Perfetto or chrome://tracing;
// see OBSERVABILITY.md).
func writeTraceFile(path string, recorded []harness.RecordedRun) error {
	if len(recorded) == 0 {
		return fmt.Errorf("no simulations recorded (every run was a cache hit?)")
	}
	runs := make([]obs.TraceRun, len(recorded))
	for i, rr := range recorded {
		runs[i] = obs.TraceRun{Label: rr.Label, SPEs: rr.SPEs, Rec: rr.Rec}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(f, runs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d simulation timelines to %s\n", len(runs), path)
	return nil
}

// writeProfileFile dumps every simulation the context profiled as one
// gzipped pprof protobuf (inspect with `go tool pprof`; see
// OBSERVABILITY.md).
func writeProfileFile(path string, profiled []harness.ProfiledRun) error {
	if len(profiled) == 0 {
		return fmt.Errorf("no simulations profiled (every run was a cache hit?)")
	}
	runs := make([]prof.Run, len(profiled))
	for i, pr := range profiled {
		runs[i] = prof.Run{Label: pr.Label, Prog: pr.Prog, Prof: pr.Prof}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.Write(f, runs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "profile: wrote %d simulation profiles to %s\n", len(runs), path)
	return nil
}

// reportText renders one result the classic human-readable way.
func reportText(r harness.RunResult, metrics bool) {
	e, out := r.Experiment, r.Outcome
	fmt.Printf("==== %s — %s\n", e.ID, e.Title)
	fmt.Printf("     paper: %s\n\n", e.Paper)
	out.Print(os.Stdout)
	if metrics {
		keys := make([]string, 0, len(out.Metrics))
		for k := range out.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("metric %s.%s = %.4f\n", e.ID, k, out.Metrics[k])
		}
	}
	fmt.Printf("     (%.1fs)\n\n", r.Elapsed.Seconds())
}

// reportJSON emits one NDJSON line via the shared service encoder, so
// CLI batches and dtad streams produce the same shape. An encoding
// failure (e.g. a NaN metric, unrepresentable in JSON) still emits an
// error line — consumers always see one object per experiment — and is
// returned so the sweep exits non-zero.
func reportJSON(opt harness.Options, r harness.RunResult) error {
	line, err := service.EncodeRunResult(opt, r)
	if err != nil {
		fallback, _ := json.Marshal(service.RunLine{
			Experiment: r.Experiment.ID,
			Key:        service.RunKey(r.Experiment.ID, opt),
			ElapsedMS:  r.Elapsed.Milliseconds(),
			Error:      fmt.Sprintf("encode: %v", err),
		})
		os.Stdout.Write(append(fallback, '\n'))
		return err
	}
	os.Stdout.Write(append(line, '\n'))
	return nil
}
