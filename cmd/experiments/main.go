// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the ablations documented in DESIGN.md) on the CellDTA
// reproduction.
//
// Usage:
//
//	experiments [-only id[,id...]] [-spes n] [-latency n] [-quick] [-list] [-parallel n]
//
// With no flags it runs the full paper suite at the paper's operating
// point (8 SPEs, 150-cycle memory, full problem sizes). -parallel n
// fans the selected experiments out over n workers (n < 0 means one per
// CPU); each experiment then runs in its own isolated context and the
// output is printed in the usual order once results are in.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		spes     = flag.Int("spes", 8, "number of SPEs")
		latency  = flag.Int("latency", 150, "main-memory latency in cycles")
		quick    = flag.Bool("quick", false, "shrink problem sizes for a fast pass")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		metrics  = flag.Bool("metrics", false, "also print machine-readable metrics")
		seed     = flag.Uint64("seed", 42, "workload input seed")
		parallel = flag.Int("parallel", 0, "run experiments on n workers (0 = serial shared-cache, <0 = one per CPU)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	selected := harness.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := harness.Options{SPEs: *spes, Latency: *latency, Quick: *quick, Seed: *seed}
	report := func(e *harness.Experiment, out *harness.Outcome, elapsed time.Duration) {
		fmt.Printf("==== %s — %s\n", e.ID, e.Title)
		fmt.Printf("     paper: %s\n\n", e.Paper)
		out.Print(os.Stdout)
		if *metrics {
			keys := make([]string, 0, len(out.Metrics))
			for k := range out.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("metric %s.%s = %.4f\n", e.ID, k, out.Metrics[k])
			}
		}
		fmt.Printf("     (%.1fs)\n\n", elapsed.Seconds())
	}

	if *parallel != 0 {
		start := time.Now()
		results := harness.Parallel(opt, selected, *parallel)
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.Experiment.ID, r.Err)
				os.Exit(1)
			}
			report(r.Experiment, r.Outcome, r.Elapsed)
		}
		fmt.Printf("==== sweep wall time %.1fs over %d experiments\n", time.Since(start).Seconds(), len(results))
		return
	}

	ctx := harness.NewContext(opt)
	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		report(e, out, time.Since(start))
	}
}
