// Command dtafuzz drives the synth differential fuzzer: it generates
// scenario programs from seeds, runs each three ways (functional
// oracle, simulated original, simulated prefetch-transformed) and
// fails loudly on any divergence, deadlock or guard-band violation.
//
// Usage:
//
//	dtafuzz [-seeds n] [-start s] [-seed s] [-duration d] [-parallel n]
//	        [-quick] [-shrink] [-out path] [-latency n] [-v]
//	        [-trace path] [-profile path]
//
// Modes:
//
//	-seeds n      check seeds start..start+n-1 (default 64)
//	-seed s       check exactly one seed
//	-duration d   keep checking increasing seeds until the budget ends
//	-shrink       on failure, minimise the lowest failing seed and write
//	              an asm-format reproducer to -out
//	-quick        lower the simulated memory latency for faster sweeps
//
// Seeds fan out over a worker pool (-parallel, default one per CPU);
// every check is independent and deterministic, so parallel and serial
// sweeps find exactly the same failures. With -batch k > 1 each worker
// additionally interleaves k checks cooperatively, advancing their
// simulations in bounded slices — same results, more seeds in flight
// per goroutine and a shared machine pool across them. Exit status: 0
// all seeds passed, 1 divergence found (reproducer written when
// -shrink), 2 bad usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"path/filepath"
	"strings"

	"repro/internal/batch"
	"repro/internal/cell"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/synth"
)

type outcome struct {
	seed uint64
	rep  *synth.Report
	err  error
}

func main() {
	var (
		seeds     = flag.Int("seeds", 64, "number of seeds to check (ignored with -seed/-duration)")
		start     = flag.Uint64("start", 1, "first seed")
		oneSeed   = flag.Uint64("seed", 0, "check a single seed and exit")
		duration  = flag.Duration("duration", 0, "time budget: check increasing seeds until it expires")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = one per CPU)")
		batchW    = flag.Int("batch", 1, "checks interleaved per worker (1 = run each seed to completion)")
		quick     = flag.Bool("quick", false, "quick mode: 60-cycle memory latency")
		shrink    = flag.Bool("shrink", false, "shrink the lowest failing seed to a minimal reproducer")
		out       = flag.String("out", "synth-repro.txt", "reproducer path (with -shrink)")
		latency   = flag.Int("latency", 0, "main-memory latency in cycles (0 = paper 150)")
		verbose   = flag.Bool("v", false, "log every seed, not just failures")
		diffB     = flag.Bool("diffburst", false, "also run every simulation single-step and fail on any burst fast-path divergence")
		diffCkpt  = flag.Bool("checkpoint", false, "also re-run every simulation through a snapshot/restore seam at its halfway boundary and fail on any divergence")
		tracePath = flag.String("trace", "", "write a Chrome trace-event timeline (with -seed: that scenario; with -shrink: the minimised reproducer)")
		profPath  = flag.String("profile", "", "write guest cycle profiles (pprof format; <path>-orig/<path>-pf before the extension) of a scenario, scoped like -trace")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *seeds <= 0 {
		fmt.Fprintf(os.Stderr, "-seeds must be positive (got %d)\n", *seeds)
		os.Exit(2)
	}
	oneSeedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			oneSeedSet = true
		}
	})
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	opt := synth.CheckOptions{Latency: *latency, DiffBurst: *diffB, DiffCheckpoint: *diffCkpt}
	if *quick && opt.Latency == 0 {
		opt.Latency = 60
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	// Seed feed: a fixed range, a single seed, or a deadline-bounded
	// open-ended stream.
	seedCh := make(chan uint64)
	go func() {
		defer close(seedCh)
		switch {
		case oneSeedSet:
			seedCh <- *oneSeed
		case *duration > 0:
			deadline := time.Now().Add(*duration)
			for s := *start; time.Now().Before(deadline); s++ {
				seedCh <- s
			}
		default:
			for s := *start; s < *start+uint64(*seeds); s++ {
				seedCh <- s
			}
		}
	}()

	// Outcomes stream as they complete (failures to stderr immediately —
	// a long -duration run must not sit silent on a hit, nor buffer
	// per-seed Reports for hours); only counters and the lowest failing
	// seed are retained.
	began := time.Now()
	var mu sync.Mutex
	var checked, failures, pfWins int
	var firstFail *outcome
	record := func(seed uint64, rep *synth.Report, err error) {
		mu.Lock()
		defer mu.Unlock()
		checked++
		if err != nil {
			failures++
			if firstFail == nil || seed < firstFail.seed {
				firstFail = &outcome{seed: seed, err: err}
			}
			fmt.Fprintf(os.Stderr, "FAIL seed %d: %v\n", seed, err)
			return
		}
		if rep.PFCycles < rep.OrigCycles {
			pfWins++
		}
		if *verbose {
			fmt.Printf("ok seed %d: %s orig=%d pf=%d decoupled=%.0f%%\n",
				seed, rep.Scenario.Summary(), rep.OrigCycles, rep.PFCycles,
				100*rep.Decoupled)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Per-worker machine pool: every seed on this goroutine
			// reuses built machines; pools never cross goroutines. The
			// batched fibers of one worker interleave cooperatively —
			// never simultaneously — so they share the pool safely. The
			// free list is sized to the batch width: all fibers' machines
			// retire together between rounds.
			pool := cell.NewBatchPool(*batchW)
			check := func(seed uint64, sched func(sim.Cycle) sim.Cycle) {
				wopt := opt
				wopt.Pool = pool
				wopt.Sched = sched
				rep, err := synth.CheckSeed(seed, wopt)
				record(seed, rep, err)
			}
			if *batchW > 1 {
				batch.RunScheduled(*batchW, batch.KeyedFeedChan(seedCh, func(seed uint64) batch.KeyedTask {
					return func(yield func(int64) int64) {
						check(seed, func(next sim.Cycle) sim.Cycle {
							return sim.Cycle(yield(int64(next)))
						})
					}
				}))
			} else {
				for seed := range seedCh {
					check(seed, nil)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("dtafuzz: %d seeds in %.1fs, %d failed, prefetch faster on %d/%d (generator %s)\n",
		checked, time.Since(began).Seconds(), failures, pfWins, checked-failures,
		synth.GenVersion)

	if *tracePath != "" && oneSeedSet {
		// Timeline of the single checked seed: both simulations re-run
		// with recording on (shrink below overwrites with the minimised
		// scenario's timeline if it runs).
		if err := writeScenarioTrace(*tracePath, synth.FromSeed(*oneSeed), opt); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "trace for seed %d written to %s\n", *oneSeed, *tracePath)
		}
	}
	if *profPath != "" && oneSeedSet {
		// Guest cycle profiles of the single checked seed, original and
		// prefetch-transformed side by side (shrink overwrites with the
		// minimised scenario's profiles if it runs).
		if err := writeScenarioProfiles(*profPath, synth.FromSeed(*oneSeed), opt); err != nil {
			fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		}
	}
	if failures == 0 {
		return
	}
	stopProf() // the remaining paths exit without running defers
	if *shrink {
		de, ok := firstFail.err.(*synth.DivergenceError)
		if !ok {
			fmt.Fprintf(os.Stderr, "cannot shrink non-divergence error: %v\n", firstFail.err)
			os.Exit(1)
		}
		res, err := synth.Shrink(de.Scenario, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shrink failed: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproducer: %v\n", err)
			os.Exit(1)
		}
		werr := synth.WriteReproducer(f, res, opt)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		fmt.Fprintf(os.Stderr, "shrunk seed %d to %d instructions (%d probes): %s\n",
			firstFail.seed, res.CodeLen, res.Probes, res.Minimal.Summary())
		if werr != nil {
			fmt.Fprintf(os.Stderr, "reproducer write to %s FAILED (artifact may be truncated): %v\n", *out, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "reproducer written to %s\n", *out)
		if *tracePath != "" {
			if err := writeScenarioTrace(*tracePath, res.Minimal, opt); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "reproducer trace written to %s\n", *tracePath)
			}
		}
		if *profPath != "" {
			if err := writeScenarioProfiles(*profPath, res.Minimal, opt); err != nil {
				fmt.Fprintf(os.Stderr, "profile: %v\n", err)
			}
		}
	}
	os.Exit(1)
}

// writeScenarioProfiles re-runs a scenario's two simulations with the
// guest cycle profiler and writes one gzipped pprof protobuf per
// variant — <path>-orig and <path>-pf (the suffix lands before the
// extension), so `go tool pprof -top` can compare the original and
// prefetch-transformed attributions side by side (see OBSERVABILITY.md).
func writeScenarioProfiles(path string, sc synth.Scenario, opt synth.CheckOptions) error {
	p, err := synth.ProfileScenario(sc, opt)
	if err != nil {
		return err
	}
	for _, v := range []struct {
		suffix string
		run    prof.Run
	}{
		{"orig", prof.Run{Label: "sim-orig " + sc.Summary(), Prog: p.OrigProg, Prof: p.Orig}},
		{"pf", prof.Run{Label: "sim-pf " + sc.Summary(), Prog: p.PFProg, Prof: p.PF}},
	} {
		out := suffixPath(path, v.suffix)
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := prof.Write(f, []prof.Run{v.run}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s profile for %s written to %s\n", v.suffix, sc.Summary(), out)
	}
	return nil
}

// suffixPath inserts -suffix before the path's extension(s):
// guest.pb.gz -> guest-orig.pb.gz, guest -> guest-orig.
func suffixPath(path, suffix string) string {
	base := filepath.Base(path)
	if i := strings.Index(base, "."); i >= 0 {
		return filepath.Join(filepath.Dir(path), base[:i]+"-"+suffix+base[i:])
	}
	return path + "-" + suffix
}

// writeScenarioTrace re-runs a scenario's two simulations with
// timeline recording and writes one Chrome trace-event document (see
// OBSERVABILITY.md) pairing the original and prefetch-transformed
// schedules.
func writeScenarioTrace(path string, sc synth.Scenario, opt synth.CheckOptions) error {
	rec, err := synth.RecordScenario(sc, opt, 0)
	if err != nil {
		return err
	}
	runs := []obs.TraceRun{
		{Label: "sim-orig " + sc.Summary(), SPEs: rec.SPEs, Rec: rec.Orig},
		{Label: "sim-pf " + sc.Summary(), SPEs: rec.SPEs, Rec: rec.PF},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
