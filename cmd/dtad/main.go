// Command dtad serves the CellDTA experiment harness as a long-running
// daemon: an HTTP/JSON API over a job queue, a bounded simulation
// worker pool, and a content-addressed LRU result cache keyed by
// deterministic run keys (see internal/service and SERVICE.md).
//
// Usage:
//
//	dtad [-addr :8080] [-workers n] [-batch k] [-cache n] [-queue-depth n]
//
// -batch k with k > 1 makes each worker interleave up to k jobs
// cooperatively (simulations advance in bounded slices), keeping more
// jobs in flight per worker with byte-identical results.
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting,
// in-flight requests finish, queued jobs run to completion, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = one per CPU)")
		batchWidth = flag.Int("batch", 1, "jobs interleaved per worker (1 = run each job to completion)")
		cacheSize  = flag.Int("cache", service.DefaultCacheSize, "max cached result documents")
		queueDepth = flag.Int("queue-depth", 1024, "max queued jobs")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:    *workers,
		BatchWidth: *batchWidth,
		CacheSize:  *cacheSize,
		QueueDepth: *queueDepth,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	log.Printf("dtad: engine %s, %d experiments, %d workers, cache %d, listening on %s",
		service.EngineVersion, len(harness.All()), svc.Workers(), *cacheSize, *addr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("dtad: draining (in-flight requests and queued jobs finish first)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("dtad: shutdown: %v", err)
		}
		svc.Close()
	}()

	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dtad: %v", err)
	}
	<-done
	log.Printf("dtad: drained, bye")
}
