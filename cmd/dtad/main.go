// Command dtad serves the CellDTA experiment harness as a long-running
// daemon: an HTTP/JSON API over a job queue, a bounded simulation
// worker pool, and a content-addressed LRU result cache keyed by
// deterministic run keys (see internal/service and SERVICE.md).
//
// Usage:
//
//	dtad [-addr :8080] [-workers n] [-batch k] [-cache n] [-queue-depth n]
//	     [-debug-addr addr]
//
// -batch k with k > 1 makes each worker interleave up to k jobs
// cooperatively (simulations advance in bounded slices), keeping more
// jobs in flight per worker with byte-identical results.
//
// -debug-addr (off by default) serves Go's net/http/pprof on a second
// listener — CPU/heap/goroutine profiles of the dtad HOST process
// itself. This is distinct from the guest cycle profiler
// (POST /v1/runs?profile=1 on the main listener), which profiles the
// SIMULATED machine; see OBSERVABILITY.md. Bind it to localhost: the
// debug listener is unauthenticated and can run arbitrary profiles.
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting,
// in-flight requests finish, queued jobs run to completion, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = one per CPU)")
		batchWidth = flag.Int("batch", 1, "jobs interleaved per worker (1 = run each job to completion)")
		cacheSize  = flag.Int("cache", service.DefaultCacheSize, "max cached result documents")
		queueDepth = flag.Int("queue-depth", 1024, "max queued jobs")
		ckptDir    = flag.String("checkpoint-dir", "", "spill warm-up checkpoint snapshots to this directory so they survive restarts (empty = memory only)")
		ckptBytes  = flag.Int64("checkpoint-disk-bytes", 0, "byte cap for -checkpoint-dir, oldest evicted first (0 = 1 GiB)")
		logLevel   = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof for the dtad process on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "error", err.Error())
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc := service.New(service.Config{
		Workers:             *workers,
		BatchWidth:          *batchWidth,
		CacheSize:           *cacheSize,
		QueueDepth:          *queueDepth,
		CheckpointDir:       *ckptDir,
		CheckpointDiskBytes: *ckptBytes,
		Logger:              logger,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	if *debugAddr != "" {
		// The pprof handlers register on http.DefaultServeMux at import
		// time; serving that mux on a dedicated listener keeps the debug
		// surface off the API address.
		go func() {
			logger.Info("dtad debug listener (host net/http/pprof)", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("debug listener failed", "error", err.Error())
			}
		}()
	}

	logger.Info("dtad listening",
		"engine", service.EngineVersion, "experiments", len(harness.All()),
		"workers", svc.Workers(), "batch_width", svc.BatchWidth(),
		"cache", *cacheSize, "addr", *addr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		logger.Info("dtad draining", "note", "in-flight requests and queued jobs finish first")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown error", "error", err.Error())
		}
		svc.Close()
	}()

	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "error", err.Error())
		os.Exit(1)
	}
	<-done
	logger.Info("dtad drained")
}
