// Command dtasnap captures a machine snapshot mid-run into a file and
// restores it in a different process — the cross-process half of the
// checkpoint contract (the in-process half lives in the cell and
// harness tests). CI's checkpoint-smoke step runs a capture, then a
// restore in a fresh process, and fails unless the restored run's
// final statistics are identical to the uninterrupted run recorded at
// capture time.
//
//	dtasnap -capture -bench mmul -quick -o /tmp/mmul.ckpt
//	dtasnap -restore /tmp/mmul.ckpt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// checkpointFile is the on-disk container: everything needed to
// rebuild the identical machine (the snapshot blob alone is not
// enough — restore recomputes the content-addressed key from the
// rebuilt config and program and refuses a mismatch), plus the
// uninterrupted run's outcome to verify against.
type checkpointFile struct {
	Bench    string    `json:"bench"`
	SPEs     int       `json:"spes"`
	Latency  int       `json:"latency"`
	Quick    bool      `json:"quick"`
	Seed     uint64    `json:"seed"`
	Prefetch bool      `json:"prefetch"`
	Div      sim.Cycle `json:"div"`
	Expect   expected  `json:"expect"`
	Snapshot []byte    `json:"snapshot"` // base64 via encoding/json
}

type expected struct {
	Cycles sim.Cycle `json:"cycles"`
	Tokens []int64   `json:"tokens"`
	Agg    stats.SPU `json:"agg"`
}

func main() {
	var (
		capture = flag.Bool("capture", false, "run a benchmark, snapshot at -frac of its cycle count, write the checkpoint file")
		restore = flag.String("restore", "", "restore a checkpoint file, finish the run, verify against the recorded outcome")
		bench   = flag.String("bench", "mmul", "benchmark (with -capture)")
		spes    = flag.Int("spes", 8, "SPE count")
		latency = flag.Int("latency", 150, "main-memory latency in cycles")
		quick   = flag.Bool("quick", false, "quick problem sizes (as in harness quick mode)")
		seed    = flag.Uint64("seed", 42, "workload seed")
		orig    = flag.Bool("orig", false, "run the original program instead of the prefetch-transformed one")
		frac    = flag.Float64("frac", 0.5, "capture point as a fraction of the run's cycle count (with -capture)")
		out     = flag.String("o", "checkpoint.json", "output path (with -capture)")
	)
	flag.Parse()
	var err error
	switch {
	case *capture == (*restore != ""):
		err = fmt.Errorf("exactly one of -capture or -restore is required")
	case *capture:
		err = doCapture(checkpointFile{
			Bench: *bench, SPEs: *spes, Latency: *latency, Quick: *quick,
			Seed: *seed, Prefetch: !*orig,
		}, *frac, *out)
	default:
		err = doRestore(*restore)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtasnap: %v\n", err)
		os.Exit(1)
	}
}

// build rebuilds the program and configuration a checkpoint file
// describes. Both capture and restore go through it, so the machines
// agree by construction — which the snapshot key then enforces.
func build(cf checkpointFile) (*program.Program, cell.Config, error) {
	w, ok := workloads.Get(cf.Bench)
	if !ok {
		return nil, cell.Config{}, fmt.Errorf("unknown benchmark %q", cf.Bench)
	}
	n := w.DefaultN
	if cf.Quick {
		if cf.Bench == "bitcnt" {
			n = 400
		} else {
			n = 16
		}
	}
	p := workloads.Params{N: n, Seed: cf.Seed}
	if cf.Bench != "bitcnt" {
		p.Workers = workloads.AutoWorkers(cf.SPEs, 32)
	}
	prog, err := w.Build(p)
	if err != nil {
		return nil, cell.Config{}, fmt.Errorf("build %s: %w", cf.Bench, err)
	}
	if cf.Prefetch {
		if prog, err = prefetch.Transform(prog); err != nil {
			return nil, cell.Config{}, fmt.Errorf("transform %s: %w", cf.Bench, err)
		}
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = cf.SPEs
	cfg.Mem.Latency = cf.Latency
	return prog, cfg, nil
}

func doCapture(cf checkpointFile, frac float64, out string) error {
	prog, cfg, err := build(cf)
	if err != nil {
		return err
	}
	cold, err := cell.New(cfg, prog)
	if err != nil {
		return err
	}
	res, err := cold.Run()
	if err != nil {
		return err
	}
	if res.CheckErr != nil {
		return fmt.Errorf("functional check: %w", res.CheckErr)
	}
	cf.Expect = expected{Cycles: res.Cycles, Tokens: res.Tokens, Agg: res.Agg}

	cf.Div = sim.Cycle(frac * float64(res.Cycles))
	donor, err := cell.New(cfg, prog)
	if err != nil {
		return err
	}
	at, st, err := donor.RunTo(cf.Div)
	if err != nil {
		return err
	}
	if st == cell.StepDone {
		return fmt.Errorf("run completed at cycle %d before the capture point %d", at, cf.Div)
	}
	key := cell.SnapshotKey(cfg, prog, cf.Div)
	if cf.Snapshot, err = donor.EncodeSnapshot(key); err != nil {
		return err
	}
	data, err := json.Marshal(cf)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dtasnap: captured %s at cycle %d of %d (%d snapshot bytes) to %s\n",
		cf.Bench, at, res.Cycles, len(cf.Snapshot), out)
	return nil
}

func doRestore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	prog, cfg, err := build(cf)
	if err != nil {
		return err
	}
	m, err := cell.New(cfg, prog)
	if err != nil {
		return err
	}
	key := cell.SnapshotKey(cfg, prog, cf.Div)
	if err := m.RestoreSnapshot(cf.Snapshot, key); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	skipped := m.Now()
	res, err := m.Run()
	if err != nil {
		return err
	}
	if res.CheckErr != nil {
		return fmt.Errorf("functional check: %w", res.CheckErr)
	}
	switch {
	case res.Cycles != cf.Expect.Cycles:
		return fmt.Errorf("restored run took %d cycles, capture-time run took %d", res.Cycles, cf.Expect.Cycles)
	case !reflect.DeepEqual(res.Tokens, cf.Expect.Tokens):
		return fmt.Errorf("restored tokens %v, capture-time %v", res.Tokens, cf.Expect.Tokens)
	case !reflect.DeepEqual(res.Agg, cf.Expect.Agg):
		return fmt.Errorf("restored aggregate statistics differ from capture-time run")
	}
	fmt.Printf("dtasnap: restored %s at cycle %d, finished at %d — identical to the capture-time run\n",
		cf.Bench, skipped, res.Cycles)
	return nil
}
