// Assembler example: write a DTA program as text, assemble it, apply
// the prefetch pass, and run both variants. The program computes the
// dot product of two vectors in main memory with a fork/join pair.
//
//	go run ./examples/assembler
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/asm"
)

const source = `
; dot product: two workers each handle half the vectors, a joiner adds
; the partial sums and posts the result to the PPE mailbox.
.program dotprod
.entry root 0x100000 0x200000 16
.expect 1
.segment 0x100000 words32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
.segment 0x200000 words32(2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3)

.template joiner
.block pl
        load r1, 0
        load r2, 1
        add r3, r1, r2
.block ps
        movi r4, -1
        store r3, r4, 0
        ffree
        stop

.template worker
.region xs base s0+s2*4 size s3*4 max 64
.region ys base s1+s2*4 size s3*4 max 64
.block pl
        load r1, 0              ; xs base
        load r2, 1              ; ys base
        load r3, 2              ; start index
        load r4, 3              ; count
        load r5, 4              ; joiner FP
        load r6, 5              ; result slot
.block ex
        movi r10, 0             ; sum
        movi r11, 0             ; i
        shli r12, r3, 2
        add r13, r1, r12        ; x pointer
        add r14, r2, r12        ; y pointer
loop:
        read@xs r15, r13, 0
        read@ys r16, r14, 0
        mul r17, r15, r16
        add r10, r10, r17
        addi r13, r13, 4
        addi r14, r14, 4
        addi r11, r11, 1
        blt r11, r4, loop
.block ps
        storex r10, r5, r6
        ffree
        stop

.template root
.block pl
        load r1, 0              ; xs
        load r2, 1              ; ys
        load r3, 2              ; n
.block ps
        falloc r4, joiner, 2
        srai r5, r3, 1          ; half = n/2
        ; worker 0: [0, half)
        falloc r6, worker, 6
        store r1, r6, 0
        store r2, r6, 1
        movi r7, 0
        store r7, r6, 2
        store r5, r6, 3
        store r4, r6, 4
        store r7, r6, 5
        ; worker 1: [half, n)
        falloc r6, worker, 6
        store r1, r6, 0
        store r2, r6, 1
        store r5, r6, 2
        store r5, r6, 3
        store r4, r6, 4
        movi r7, 1
        store r7, r6, 5
        ffree
        stop
`

func main() {
	prog, err := asm.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	cfg := celldta.DefaultConfig()
	cfg.SPEs = 2

	run := func(label string, p *celldta.Program) {
		res, err := celldta.Execute(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s dot = %d  (%d cycles, %d threads)\n",
			label, res.Tokens[0], res.Cycles, res.Agg.Threads)
	}
	run("blocking READs:", prog)

	pf, err := celldta.Transform(prog)
	if err != nil {
		log.Fatal(err)
	}
	run("DMA prefetching:", pf)

	// want: 2*(1+..+8) + 3*(9+..+16)
	fmt.Println("expected:          ", 2*36+3*100)
}
