// Matrix multiply, the paper's most memory-bound benchmark: builds the
// DTA program once, applies the prefetch compiler pass explicitly, runs
// both variants across machine sizes and reproduces the Figure 7 series
// (execution time + scalability + the ~11x speedup at 8 SPEs).
//
//	go run ./examples/mmul [-n 32]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 32, "matrix dimension (power of two)")
	flag.Parse()

	fmt.Printf("mmul(%d): C = A x B with one thread per block of output rows\n\n", *n)
	fmt.Printf("%4s  %12s  %12s  %8s\n", "SPEs", "original", "prefetching", "speedup")

	var base [2]float64
	for _, spes := range []int{1, 2, 4, 8} {
		// Build the original program for this machine size (worker
		// count follows the paper's power-of-two rule).
		orig, err := celldta.BuildWorkload("mmul", celldta.Params{
			N: *n, Workers: celldta.AutoWorkers(spes, 32), Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The compiler pass: synthesise PF blocks, rewrite READs.
		pf, err := celldta.Transform(orig)
		if err != nil {
			log.Fatal(err)
		}
		st := celldta.AnalyzePrefetch(orig, pf)

		cfg := celldta.DefaultConfig()
		cfg.SPEs = spes
		a, err := celldta.Execute(cfg, orig)
		if err != nil {
			log.Fatal(err)
		}
		b, err := celldta.Execute(cfg, pf)
		if err != nil {
			log.Fatal(err)
		}
		if a.CheckErr != nil || b.CheckErr != nil {
			log.Fatalf("functional check: %v / %v", a.CheckErr, b.CheckErr)
		}
		if spes == 1 {
			base[0], base[1] = float64(a.Cycles), float64(b.Cycles)
		}
		fmt.Printf("%4d  %12d  %12d  %7.2fx\n",
			spes, a.Cycles, b.Cycles, float64(a.Cycles)/float64(b.Cycles))
		if spes == 8 {
			fmt.Printf("\nscalability 1->8 SPEs: original %.2fx, prefetching %.2fx\n",
				base[0]/float64(a.Cycles), base[1]/float64(b.Cycles))
			fmt.Printf("prefetch pass: %d regions, %d/%d READs decoupled (%.0f%%), %d B buffers\n",
				st.Regions, st.ReadsRewritten, st.ReadsTotal,
				100*st.DecoupledFraction(), st.BufferBytes)
		}
	}
}
