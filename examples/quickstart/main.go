// Quickstart: run the vecsum demonstrator on the default CellDTA
// machine, with and without the paper's DMA prefetching, and print the
// SPU execution-time breakdown the paper uses (Figure 5 categories).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, prefetch := range []bool{false, true} {
		res, err := celldta.Run(celldta.RunOptions{
			Workload: "vecsum",
			Params:   celldta.Params{N: 4096, Seed: 1},
			Prefetch: prefetch,
		})
		if err != nil {
			log.Fatal(err)
		}
		mode := "original DTA (blocking READs)"
		if prefetch {
			mode = "DMA prefetching (non-blocking)"
		}
		fmt.Printf("vecsum(4096), 8 SPEs — %s\n", mode)
		fmt.Printf("  result token: %d\n", res.Tokens[0])
		fmt.Printf("  execution time: %d cycles\n", res.Cycles)
		bd := res.AvgBreakdownPct()
		fmt.Printf("  working %.1f%%  idle %.1f%%  memory %.1f%%  ls %.1f%%  lse %.1f%%  prefetch %.1f%%\n\n",
			bd[celldta.BucketWorking], bd[celldta.BucketIdle], bd[celldta.BucketMemStall],
			bd[celldta.BucketLSStall], bd[celldta.BucketLSEStall], bd[celldta.BucketPrefetch])
	}
}
