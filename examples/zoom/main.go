// Image zoom: upsample an n x n image by 4x on the CellDTA machine and
// compare memory-stall behaviour with and without DMA prefetching
// (paper Figure 8 and the Figure 5 breakdowns). Also sweeps the memory
// latency to show where prefetching stops paying (the paper's §4.3
// latency-1 study is the lower endpoint).
//
//	go run ./examples/zoom [-n 32]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 32, "input image dimension (power of two)")
	flag.Parse()

	fmt.Printf("zoom(%d): %dx%d -> %dx%d, 2 reads + 1 write per output pixel\n\n",
		*n, *n, *n, 4**n, 4**n)
	fmt.Printf("%8s  %12s  %12s  %8s  %18s\n",
		"latency", "original", "prefetching", "speedup", "orig memory stalls")

	for _, latency := range []int{1, 25, 75, 150, 300} {
		cfg := celldta.DefaultConfig()
		cfg.Mem.Latency = latency
		if latency == 1 {
			// The paper's always-hit study idealises every memory path.
			cfg.LS.Latency = 1
			cfg.SPU.PerfectCacheLat = 1
		}
		run := func(pf bool) *celldta.Result {
			res, err := celldta.Run(celldta.RunOptions{
				Workload: "zoom",
				Params:   celldta.Params{N: *n, Seed: 42},
				Prefetch: pf,
				Config:   cfg,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		orig := run(false)
		pf := run(true)
		bd := orig.AvgBreakdownPct()
		fmt.Printf("%8d  %12d  %12d  %7.2fx  %17.1f%%\n",
			latency, orig.Cycles, pf.Cycles,
			float64(orig.Cycles)/float64(pf.Cycles),
			bd[celldta.BucketMemStall])
	}
	fmt.Println("\nthe paper reports 11.48x at latency 150 and 1.34x at latency 1 for zoom(32)")
}
