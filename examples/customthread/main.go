// Customthread: author a DTA program directly with the macro-assembler
// API — a parallel polynomial evaluation with a hand-written PF block
// variant produced by the prefetch pass. It demonstrates the thread
// discipline the paper describes: frames + synchronisation counters for
// producer/consumer communication, PL/EX/PS code blocks, region
// annotations for the compiler, and mailbox completion.
//
//	go run ./examples/customthread
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Problem: evaluate p(x) = c0 + c1*x + c2*x^2 + c3*x^3 for many x in
	// parallel; each worker handles a slice of xs and posts a partial
	// sum of p(x) to a joiner thread.
	const (
		base    = 0x0050_0000 // xs array in main memory
		cbase   = 0x0060_0000 // coefficients
		count   = 512
		workers = 8
		per     = count / workers
	)
	xs := make([]int64, count)
	for i := range xs {
		xs[i] = int64(i%17 - 8)
	}
	coeffs := []int64{3, -2, 5, 1}

	b := celldta.NewProgramBuilder("poly")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(celldta.R(1), 0)
		pl.Movi(celldta.R(2), 0)
		pl.Movi(celldta.R(3), workers)
		pl.Label("sum")
		pl.Loadx(celldta.R(4), celldta.R(2))
		pl.Add(celldta.R(1), celldta.R(1), celldta.R(4))
		pl.Addi(celldta.R(2), celldta.R(2), 1)
		pl.Blt(celldta.R(2), celldta.R(3), "sum")
		joiner.PS().
			StoreMailbox(celldta.R(1), celldta.R(5), 0).
			Ffree().
			Stop()
	}

	worker := b.Template("worker")
	{
		// Frame: 0=xsBase 1=coeffBase 2=start 3=count 4=joinFP 5=slot.
		// Both the x slice and the coefficient table are declared
		// regions, so the prefetch pass can decouple every read.
		rgXs := worker.Region("xs",
			celldta.AddrTermExpr(0, 1, 2, 8), // base + start*8
			celldta.SizeSlotExpr(3, 8), 8*per)
		rgC := worker.Region("coeffs",
			celldta.AddrTermExpr(1, 1, -1, 0),
			celldta.SizeConstExpr(32), 32)

		pl := worker.PL()
		for i := 0; i < 6; i++ {
			pl.Load(celldta.R(1+i), i)
		}
		ex := worker.EX()
		rXs, rC, rStart, rCount := celldta.R(1), celldta.R(2), celldta.R(3), celldta.R(4)
		rSum, rI, rPtr := celldta.R(10), celldta.R(11), celldta.R(12)
		rX, rAcc, rK := celldta.R(13), celldta.R(14), celldta.R(15)
		rCoef := celldta.R(16)

		ex.Movi(rSum, 0)
		ex.Movi(rI, 0)
		ex.Shli(rPtr, rStart, 3)
		ex.Add(rPtr, rXs, rPtr)
		ex.Label("loop")
		ex.Read8Region(rgXs, rX, rPtr, 0)
		// Horner: acc = ((c3*x + c2)*x + c1)*x + c0.
		ex.Read8Region(rgC, rAcc, rC, 24) // c3
		ex.Movi(rK, 2)
		ex.Label("horner")
		ex.Mul(rAcc, rAcc, rX)
		ex.Shli(rCoef, rK, 3)
		ex.Add(rCoef, rC, rCoef)
		ex.Read8Region(rgC, rCoef, rCoef, 0)
		ex.Add(rAcc, rAcc, rCoef)
		ex.Subi(rK, rK, 1)
		ex.Bge(rK, celldta.R(0), "horner")
		ex.Add(rSum, rSum, rAcc)
		ex.Addi(rPtr, rPtr, 8)
		ex.Addi(rI, rI, 1)
		ex.Blt(rI, rCount, "loop")
		ps := worker.PS()
		ps.Storex(rSum, celldta.R(5), celldta.R(6))
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		pl := root.PL()
		pl.Load(celldta.R(1), 0) // xs base
		pl.Load(celldta.R(2), 1) // coeff base
		ps := root.PS()
		rJoin, rW, rN, rPer, rChild, rStart := celldta.R(3), celldta.R(4), celldta.R(5), celldta.R(6), celldta.R(7), celldta.R(8)
		ps.Falloc(rJoin, joiner, workers)
		ps.Movi(rW, 0)
		ps.Movi(rN, workers)
		ps.Movi(rPer, per)
		ps.Label("fork")
		ps.Falloc(rChild, worker, 6)
		ps.Store(celldta.R(1), rChild, 0)
		ps.Store(celldta.R(2), rChild, 1)
		ps.Mul(rStart, rW, rPer)
		ps.Store(rStart, rChild, 2)
		ps.Store(rPer, rChild, 3)
		ps.Store(rJoin, rChild, 4)
		ps.Store(rW, rChild, 5)
		ps.Addi(rW, rW, 1)
		ps.Blt(rW, rN, "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, base, cbase)
	b.Segment(base, int64Bytes(xs))
	b.Segment(cbase, int64Bytes(coeffs))

	want := int64(0)
	for _, x := range xs {
		want += coeffs[0] + coeffs[1]*x + coeffs[2]*x*x + coeffs[3]*x*x*x
	}
	b.Check(func(mr celldta.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != want {
			return fmt.Errorf("poly: tokens %v, want [%d]", tokens, want)
		}
		return nil
	})

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := celldta.DefaultConfig()
	run := func(label string, p *celldta.Program) {
		res, err := celldta.Execute(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		if res.CheckErr != nil {
			log.Fatalf("%s: %v", label, res.CheckErr)
		}
		fmt.Printf("%-22s result=%d cycles=%d threads=%d\n",
			label, res.Tokens[0], res.Cycles, res.Agg.Threads)
	}
	run("blocking READs:", prog)
	pf, err := celldta.Transform(prog)
	if err != nil {
		log.Fatal(err)
	}
	run("with DMA prefetching:", pf)
	fmt.Printf("expected p(x) sum: %d\n", want)
}

func int64Bytes(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}
