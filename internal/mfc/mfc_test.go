package mfc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ls"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// rig wires an MFC, a local store, a memory and a network into an engine.
type rig struct {
	e     *sim.Engine
	net   *noc.Network
	m     *mem.Memory
	store *ls.LocalStore
	mfc   *Engine
	tags  []int64
	tagAt []sim.Cycle
}

// newRig accepts a nil t for use inside property functions (which replace
// the fault handlers themselves).
func newRig(t *testing.T, mfcCfg Config, memCfg mem.Config) *rig {
	if t != nil {
		t.Helper()
	}
	r := &rig{e: sim.NewEngine()}
	r.net = noc.New(noc.DefaultConfig())
	r.net.Attach(r.e.Register(r.net))
	r.m = mem.New(memCfg, 100, r.net)
	r.m.Attach(r.e.Register(r.m))
	r.net.Register(100, r.m)
	r.store = ls.New(ls.DefaultConfig())
	r.mfc = New(mfcCfg, 1, 100, r.net, r.store)
	r.mfc.Attach(r.e.Register(r.mfc))
	r.net.Register(1, r.mfc)
	r.mfc.OnTagIdle = func(now sim.Cycle, tag int64) {
		r.tags = append(r.tags, tag)
		r.tagAt = append(r.tagAt, now)
	}
	if t != nil {
		r.mfc.Fault = func(err error) { t.Fatalf("mfc fault: %v", err) }
		r.m.Fault = func(err error) { t.Fatalf("mem fault: %v", err) }
	}
	return r
}

func (r *rig) run(t *testing.T, limit sim.Cycle) {
	t.Helper()
	_, err := r.e.Run(limit)
	if _, isDeadlock := err.(*sim.ErrDeadlock); err != nil && !isDeadlock {
		t.Fatalf("Run: %v", err)
	}
}

func (r *rig) get(now sim.Cycle, lsa, ea, size, tag int64) {
	r.mfc.WriteChannel(ChLSA, lsa)
	r.mfc.WriteChannel(ChEA, ea)
	r.mfc.WriteChannel(ChSize, size)
	r.mfc.WriteChannel(ChTag, tag)
	if !r.mfc.Enqueue(now, Get) {
		panic("queue full in test setup")
	}
}

func TestGetTransfersDataAndNotifiesTag(t *testing.T) {
	r := newRig(t, DefaultConfig(), mem.DefaultConfig())
	want := make([]byte, 1000)
	for i := range want {
		want[i] = byte(i)
	}
	if err := r.m.Store().WriteBytes(0x4000, want); err != nil {
		t.Fatal(err)
	}
	r.get(0, 0x8000, 0x4000, 1000, 3)
	r.run(t, 100000)

	got := make([]byte, 1000)
	if err := r.store.ReadBytes(0x8000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("transferred data differs")
	}
	if len(r.tags) != 1 || r.tags[0] != 3 {
		t.Fatalf("tag notifications = %v", r.tags)
	}
	if r.mfc.Outstanding(3) != 0 {
		t.Fatal("tag still outstanding after completion")
	}
	st := r.mfc.Stats()
	if st.Gets != 1 || st.BytesIn != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetLatencyIncludesCommandLatency(t *testing.T) {
	cfg := DefaultConfig()
	memCfg := mem.DefaultConfig()
	r := newRig(t, cfg, memCfg)
	r.get(0, 0, 0, 64, 1)
	r.run(t, 100000)
	if len(r.tagAt) != 1 {
		t.Fatalf("tag notifications = %v", r.tagAt)
	}
	// Lower bound: command latency + memory latency.
	min := sim.Cycle(cfg.CmdLatency + memCfg.Latency)
	if r.tagAt[0] < min {
		t.Fatalf("completed at %d, faster than %d", r.tagAt[0], min)
	}
	// And not wildly slower (one 64B packet).
	if r.tagAt[0] > min+60 {
		t.Fatalf("completed at %d, too slow (bound %d)", r.tagAt[0], min+60)
	}
}

func TestPutWritesBackToMemory(t *testing.T) {
	r := newRig(t, DefaultConfig(), mem.DefaultConfig())
	want := make([]byte, 400)
	for i := range want {
		want[i] = byte(255 - i)
	}
	if err := r.store.WriteBytes(0x1000, want); err != nil {
		t.Fatal(err)
	}
	r.mfc.WriteChannel(ChLSA, 0x1000)
	r.mfc.WriteChannel(ChEA, 0x9000)
	r.mfc.WriteChannel(ChSize, 400)
	r.mfc.WriteChannel(ChTag, 7)
	if !r.mfc.Enqueue(0, Put) {
		t.Fatal("enqueue failed")
	}
	r.run(t, 100000)
	got := make([]byte, 400)
	if err := r.m.Store().ReadBytes(0x9000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("put data differs")
	}
	if len(r.tags) != 1 || r.tags[0] != 7 {
		t.Fatalf("tags = %v", r.tags)
	}
	if r.mfc.Stats().BytesOut != 400 {
		t.Fatalf("stats = %+v", r.mfc.Stats())
	}
}

func TestQueueFullRejectsEnqueue(t *testing.T) {
	cfg := Config{QueueSize: 2, CmdLatency: 30, PacketBytes: 128}
	r := newRig(t, cfg, mem.DefaultConfig())
	r.mfc.WriteChannel(ChSize, 64)
	if !r.mfc.Enqueue(0, Get) || !r.mfc.Enqueue(0, Get) {
		t.Fatal("first two enqueues should succeed")
	}
	if r.mfc.Enqueue(0, Get) {
		t.Fatal("third enqueue should fail on a 2-deep queue")
	}
	if r.mfc.Stats().QueueFull != 1 {
		t.Fatalf("QueueFull = %d", r.mfc.Stats().QueueFull)
	}
	r.run(t, 100000)
	// After draining, there is room again.
	if !r.mfc.Enqueue(r.e.Now(), Get) {
		t.Fatal("enqueue after drain failed")
	}
}

func TestTagGroupWithMultipleCommands(t *testing.T) {
	r := newRig(t, DefaultConfig(), mem.DefaultConfig())
	r.get(0, 0x0000, 0x1000, 256, 5)
	r.get(0, 0x2000, 0x5000, 256, 5)
	r.get(0, 0x4000, 0x9000, 64, 6)
	r.run(t, 100000)
	// Two notifications: tag 5 once (after both), tag 6 once.
	if len(r.tags) != 2 {
		t.Fatalf("tags = %v", r.tags)
	}
	seen := map[int64]int{}
	for _, tag := range r.tags {
		seen[tag]++
	}
	if seen[5] != 1 || seen[6] != 1 {
		t.Fatalf("tag counts = %v", seen)
	}
}

func TestCommandsProcessSequentially(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, mem.DefaultConfig())
	r.get(0, 0x0000, 0x1000, 64, 1)
	r.get(0, 0x1000, 0x2000, 64, 2)
	r.run(t, 100000)
	if len(r.tagAt) != 2 {
		t.Fatalf("completions = %v", r.tagAt)
	}
	// The second command pays its own command latency after the first
	// leaves the head: completions at least CmdLatency apart is too
	// strong (memory pipelining), but the second must finish later.
	if r.tagAt[1] <= r.tagAt[0] {
		t.Fatalf("completions not ordered: %v", r.tagAt)
	}
}

func TestFaultOnZeroSize(t *testing.T) {
	r := newRig(t, DefaultConfig(), mem.DefaultConfig())
	var fault error
	r.mfc.Fault = func(err error) { fault = err }
	r.mfc.WriteChannel(ChSize, 0)
	r.mfc.Enqueue(0, Get)
	if fault == nil {
		t.Fatal("zero-size command did not fault")
	}
}

// Property: random GET transfers always produce LS contents equal to the
// memory source region.
func TestGetMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		r := newRig(nil, DefaultConfig(), mem.DefaultConfig())
		// suppress t.Fatalf-based faults in property mode
		ok := true
		r.mfc.Fault = func(err error) { ok = false }
		r.m.Fault = func(err error) { ok = false }
		n := 3
		type xfer struct {
			lsa, ea, size int64
		}
		var xs []xfer
		lsa := int64(0)
		for i := 0; i < n; i++ {
			size := int64(1 + rng.Intn(2000))
			ea := int64(rng.Intn(1 << 20))
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			if err := r.m.Store().WriteBytes(ea, data); err != nil {
				return false
			}
			r.get(0, lsa, ea, size, int64(i))
			xs = append(xs, xfer{lsa, ea, size})
			lsa += (size + 63) &^ 15
		}
		if _, err := r.e.Run(1_000_000); err != nil {
			if _, isDeadlock := err.(*sim.ErrDeadlock); !isDeadlock {
				return false
			}
		}
		for _, x := range xs {
			a := make([]byte, x.size)
			b := make([]byte, x.size)
			if r.store.ReadBytes(x.lsa, a) != nil || r.m.Store().ReadBytes(x.ea, b) != nil {
				return false
			}
			if !bytes.Equal(a, b) {
				return false
			}
		}
		return ok && len(r.tags) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
