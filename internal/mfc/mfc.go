// Package mfc models the per-SPE Memory Flow Controller: the DMA engine
// that the paper's prefetching mechanism programs from the PF code block.
// Parameters follow paper Table 4 (command queue of 16 entries, 30-cycle
// command latency) and Table 3 (a command carries the LS address, the
// main-memory address, the transfer size and a tag id used to query
// completion).
//
// Tag semantics mirror the Cell MFC tag groups: every command belongs to
// a tag group, and the thread scheduler (LSE) is notified whenever a tag
// group drains to zero outstanding commands — that notification is what
// moves a thread from "Wait for DMA" to "Ready" (paper Figure 4).
package mfc

import (
	"fmt"

	"repro/internal/ls"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Channel selects one of the MFC's programming channels (paper Table 3).
type Channel int

const (
	ChLSA  Channel = iota // local store address
	ChEA                  // effective (main memory) address
	ChSize                // transfer size in bytes
	ChTag                 // tag id
)

// Direction of a DMA command.
type Direction uint8

const (
	Get Direction = iota // main memory -> local store
	Put                  // local store -> main memory
)

func (d Direction) String() string {
	if d == Get {
		return "get"
	}
	return "put"
}

// Config holds MFC parameters.
type Config struct {
	QueueSize   int // command queue entries (16)
	CmdLatency  int // per-command processing latency at queue head (30)
	PacketBytes int // packetisation for PUT streaming (128)
}

// DefaultConfig returns the paper's MFC parameters.
func DefaultConfig() Config {
	return Config{QueueSize: 16, CmdLatency: 30, PacketBytes: 128}
}

// Stats aggregates DMA activity.
type Stats struct {
	Gets          int64
	Puts          int64
	BytesIn       int64 // main memory -> LS
	BytesOut      int64 // LS -> main memory
	QueueFull     int64 // enqueue attempts rejected because the queue was full
	TagWaits      int64 // tag groups that drained (completion notifications)
	MaxQueueDepth int
}

// slotBits sizes the slot field of an encoded command id: the low bits
// select the slab slot, the high bits carry a monotonically increasing
// generation so stale ids from freed slots are detected instead of
// silently hitting a recycled command.
const (
	slotBits = 20
	slotMask = (1 << slotBits) - 1
)

type command struct {
	id   int64 // encoded generation<<slotBits | slot; 0 marks a free slot
	lsa  int64
	ea   int64
	size int64
	tag  int64
	dir  Direction

	inflight  bool  // launched and awaiting data/ack
	remaining int64 // bytes not yet transferred

	issuedAt   sim.Cycle // Enqueue cycle (timeline recording)
	launchedAt sim.Cycle // cycle the head command issued its traffic
}

// tagEntry counts outstanding commands in one tag group. Live tag groups
// are few (bounded by thread frames), so a dense slice with linear scan
// beats a map on the per-command hot path.
type tagEntry struct {
	tag int64
	n   int32
}

// evKind discriminates the MFC's internal timer events. Encoding the
// action as data instead of a closure keeps the event heap
// allocation-free on the DMA hot path.
type evKind uint8

const (
	evLaunch   evKind = iota // command latency elapsed: issue traffic for slot
	evSend                   // a PUT packet left the LS: send msg
	evPopHead                // the queue head finished streaming
	evComplete               // a GET's last packet is durably in the LS
)

// timedEvent is a timer-heap entry. slot names a command slab slot for
// evLaunch/evComplete and a sendSlab slot for evSend (the packet payload
// lives there so heap sifts move compact refs, not whole Messages).
type timedEvent struct {
	at   sim.Cycle
	seq  int64
	kind evKind
	slot int32
}

// Before orders events by (due cycle, schedule order) for the typed
// min-heap.
func (e timedEvent) Before(o timedEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is one SPE's DMA controller.
type Engine struct {
	cfg    Config
	id     int // noc endpoint id of this MFC
	memID  int // noc endpoint id of main memory
	net    *noc.Network
	store  *ls.LocalStore
	handle *sim.Handle

	// Staging channels written by the SPU.
	chLSA, chEA, chSize, chTag int64

	// Commands live in a slab indexed by slot with a free-list; the
	// queue and all in-flight references hold slots, and noc messages
	// carry the generation-encoded id (see slotBits).
	cmds      []command
	free      []int32
	queue     []int32
	headBusy  bool // head command is being processed (latency or streaming)
	inflightN int  // commands launched and awaiting data/ack
	tags      []tagEntry
	events    []timedEvent
	sendSlab  []noc.Message // evSend payloads, indexed by event slot
	sendFree  []int32       // recycled sendSlab slots
	nextGen   int64
	seq       int64
	stats     Stats

	// OnTagIdle is called when a tag group drains to zero outstanding
	// commands; the machine wires it to the LSE.
	OnTagIdle func(now sim.Cycle, tag int64)
	// Fault receives functional errors.
	Fault func(error)
	// Rec, when non-nil, receives one DMA lifetime span per completed
	// command; RecSPE is the owning SPE index it is attributed to.
	Rec    *trace.Recorder
	RecSPE int
}

// New creates an MFC for the SPE owning store, with the given noc
// endpoint id, talking to the memory endpoint memID.
func New(cfg Config, id, memID int, net *noc.Network, store *ls.LocalStore) *Engine {
	if cfg.QueueSize <= 0 || cfg.PacketBytes <= 0 {
		panic("mfc: non-positive configuration")
	}
	return &Engine{
		cfg:   cfg,
		id:    id,
		memID: memID,
		net:   net,
		store: store,
		Fault: func(err error) { panic(err) },
	}
}

// Name implements sim.Component.
func (e *Engine) Name() string { return fmt.Sprintf("mfc%d", e.id) }

// Attach stores the engine wake handle.
func (e *Engine) Attach(h *sim.Handle) { e.handle = h }

// Stats returns a copy of the accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// Reset clears the command slab, queue, tag table, timers and
// statistics for machine reuse.
func (e *Engine) Reset() {
	e.chLSA, e.chEA, e.chSize, e.chTag = 0, 0, 0, 0
	e.cmds = e.cmds[:0]
	e.free = e.free[:0]
	e.queue = e.queue[:0]
	e.headBusy = false
	e.inflightN = 0
	e.tags = e.tags[:0]
	e.events = e.events[:0]
	for i := range e.sendSlab {
		e.sendSlab[i] = noc.Message{} // release payload references
	}
	e.sendSlab = e.sendSlab[:0]
	e.sendFree = e.sendFree[:0]
	e.nextGen = 0
	e.seq = 0
	e.stats = Stats{}
}

// WriteChannel latches a programming value (SPU MFCLSA/MFCEA/MFCSZ/MFCTAG).
func (e *Engine) WriteChannel(ch Channel, v int64) {
	switch ch {
	case ChLSA:
		e.chLSA = v
	case ChEA:
		e.chEA = v
	case ChSize:
		e.chSize = v
	case ChTag:
		e.chTag = v
	}
}

// alloc takes a slot from the free-list (or grows the slab) and assigns
// it a fresh generation-encoded id.
func (e *Engine) alloc() int32 {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.cmds = append(e.cmds, command{})
		slot = int32(len(e.cmds) - 1)
		if slot > slotMask {
			panic(fmt.Sprintf("mfc%d: command slab overflow", e.id))
		}
	}
	e.nextGen++
	e.cmds[slot] = command{id: e.nextGen<<slotBits | int64(slot)}
	return slot
}

// release returns a slot to the free-list.
func (e *Engine) release(slot int32) {
	e.cmds[slot] = command{}
	e.free = append(e.free, slot)
}

// lookup resolves an encoded id to its launched command, or nil when the
// id is stale, unknown, or names a command that is not in flight.
func (e *Engine) lookup(id int64) (*command, int32) {
	slot := int32(id & slotMask)
	if int(slot) >= len(e.cmds) {
		return nil, 0
	}
	cmd := &e.cmds[slot]
	if cmd.id != id || !cmd.inflight {
		return nil, 0
	}
	return cmd, slot
}

// tagInc bumps a tag group's outstanding count.
func (e *Engine) tagInc(tag int64) {
	for k := range e.tags {
		if e.tags[k].tag == tag {
			e.tags[k].n++
			return
		}
	}
	e.tags = append(e.tags, tagEntry{tag: tag, n: 1})
}

// tagDec drops a tag group's outstanding count, reporting whether the
// group drained to zero; ok is false on underflow (unknown tag).
func (e *Engine) tagDec(tag int64) (drained, ok bool) {
	for k := range e.tags {
		if e.tags[k].tag != tag {
			continue
		}
		e.tags[k].n--
		if e.tags[k].n > 0 {
			return false, true
		}
		last := len(e.tags) - 1
		e.tags[k] = e.tags[last]
		e.tags = e.tags[:last]
		return true, true
	}
	return false, false
}

// Enqueue pushes a command built from the staged channels. It returns
// false when the command queue is full (the SPU stalls and retries).
func (e *Engine) Enqueue(now sim.Cycle, dir Direction) bool {
	if len(e.queue) >= e.cfg.QueueSize {
		e.stats.QueueFull++
		return false
	}
	if e.chSize <= 0 {
		e.Fault(fmt.Errorf("mfc%d: %s command with size %d", e.id, dir, e.chSize))
		return true
	}
	slot := e.alloc()
	cmd := &e.cmds[slot]
	cmd.lsa, cmd.ea, cmd.size, cmd.tag = e.chLSA, e.chEA, e.chSize, e.chTag
	cmd.dir = dir
	cmd.remaining = e.chSize
	cmd.issuedAt, cmd.launchedAt = now, now
	e.queue = append(e.queue, slot)
	if len(e.queue) > e.stats.MaxQueueDepth {
		e.stats.MaxQueueDepth = len(e.queue)
	}
	e.tagInc(cmd.tag)
	if e.handle != nil {
		e.handle.Wake(now + 1)
	}
	return true
}

// Outstanding returns the number of incomplete commands in a tag group
// (the MFCSTAT instruction).
func (e *Engine) Outstanding(tag int64) int {
	for k := range e.tags {
		if e.tags[k].tag == tag {
			return int(e.tags[k].n)
		}
	}
	return 0
}

// QueueDepth returns the number of commands waiting in the queue.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// Busy reports whether any command is queued, being processed or in
// flight (used by the machine to drain write-back PUTs before ending a
// run).
func (e *Engine) Busy() bool {
	return len(e.queue) > 0 || e.inflightN > 0 || len(e.events) > 0
}

func (e *Engine) schedule(at sim.Cycle, ev timedEvent) {
	e.seq++
	ev.at, ev.seq = at, e.seq
	sim.HeapPush(&e.events, ev)
	if e.handle != nil {
		e.handle.Wake(at)
	}
}

// sendAlloc parks an evSend payload in the slab and returns its slot.
func (e *Engine) sendAlloc(msg noc.Message) int32 {
	if n := len(e.sendFree); n > 0 {
		slot := e.sendFree[n-1]
		e.sendFree = e.sendFree[:n-1]
		e.sendSlab[slot] = msg
		return slot
	}
	e.sendSlab = append(e.sendSlab, msg)
	return int32(len(e.sendSlab) - 1)
}

// dispatch runs one due timer event.
func (e *Engine) dispatch(now sim.Cycle, ev timedEvent) {
	switch ev.kind {
	case evLaunch:
		e.launch(now, ev.slot)
	case evSend:
		msg := e.sendSlab[ev.slot]
		e.sendSlab[ev.slot] = noc.Message{} // release payload reference
		e.sendFree = append(e.sendFree, ev.slot)
		e.net.Send(now, msg)
	case evPopHead:
		e.popHead(now)
	case evComplete:
		e.complete(now, ev.slot)
	}
}

// Tick processes the queue head and due events.
//
// Scheduling contract (the SPU's local-store burst window depends on
// it): whenever the MFC has pending work that can touch the local
// store — a queued command, a timer event that launches or completes a
// transfer, PUT packets still streaming — the MFC is scheduled in the
// engine no later than the cycle that work happens: Tick returns the
// earliest pending event, and Enqueue/Deliver/popHead wake the engine
// handle as they add work. The store is touched either during this
// component's own Tick (PUT streaming reads) or during the network's
// Tick (GET data arriving via Deliver), both of which the SPU's
// quiescence horizon observes through the engine schedule and the
// network's touch groups. An MFC change that mutates the store outside
// these two paths would silently break that proof — don't.
func (e *Engine) Tick(now sim.Cycle) sim.Cycle {
	for len(e.events) > 0 && e.events[0].at <= now {
		ev := sim.HeapPop(&e.events)
		e.dispatch(now, ev)
	}
	if !e.headBusy && len(e.queue) > 0 {
		e.headBusy = true
		e.schedule(now+sim.Cycle(e.cfg.CmdLatency), timedEvent{kind: evLaunch, slot: e.queue[0]})
	}
	next := sim.Never
	if len(e.events) > 0 {
		next = e.events[0].at
	}
	return next
}

// launch issues the memory traffic for the head command after its
// command latency has elapsed.
func (e *Engine) launch(now sim.Cycle, slot int32) {
	cmd := &e.cmds[slot]
	cmd.launchedAt = now
	switch cmd.dir {
	case Get:
		e.stats.Gets++
		cmd.inflight = true
		e.inflightN++
		e.net.Send(now, noc.Message{
			Src: e.id, Dst: e.memID, Kind: noc.KindMemBlockRead,
			A: cmd.ea, B: cmd.size, C: cmd.id,
		})
		e.popHead(now)
	case Put:
		e.stats.Puts++
		cmd.inflight = true
		e.inflightN++
		// Stream packets, pacing on the LS read port.
		off := int64(0)
		t := now
		for off < cmd.size {
			n := int64(e.cfg.PacketBytes)
			if off+n > cmd.size {
				n = cmd.size - off
			}
			buf := e.net.GetBuf(int(n))
			if err := e.store.ReadBytes(cmd.lsa+off, buf); err != nil {
				e.Fault(fmt.Errorf("mfc%d put: %w", e.id, err))
				return
			}
			ready := e.store.Access(ls.PortMFC, t, int(n))
			last := int64(0)
			if off+n >= cmd.size {
				last = 1
			}
			e.schedule(ready, timedEvent{kind: evSend, slot: e.sendAlloc(noc.Message{
				Src: e.id, Dst: e.memID, Kind: noc.KindMemBlockWrite,
				A: cmd.ea + off, B: last, C: cmd.id, D: off, Data: buf,
			})})
			t = ready
			off += n
		}
		// The head slot frees once the last packet has left the LS.
		e.schedule(t, timedEvent{kind: evPopHead})
	}
}

func (e *Engine) popHead(now sim.Cycle) {
	e.queue = e.queue[1:]
	e.headBusy = false
	if e.handle != nil {
		e.handle.Wake(now + 1)
	}
}

// Deliver implements noc.Endpoint: data packets for GETs and acks for
// PUTs arrive here.
func (e *Engine) Deliver(now sim.Cycle, msg noc.Message) {
	switch msg.Kind {
	case noc.KindMemBlockData:
		cmd, slot := e.lookup(msg.C)
		if cmd == nil {
			e.Fault(fmt.Errorf("mfc%d: data for unknown command %d", e.id, msg.C))
			return
		}
		if err := e.store.WriteBytes(cmd.lsa+msg.D, msg.Data); err != nil {
			e.Fault(fmt.Errorf("mfc%d get: %w", e.id, err))
			return
		}
		done := e.store.Access(ls.PortMFC, now, len(msg.Data))
		e.stats.BytesIn += int64(len(msg.Data))
		cmd.remaining -= int64(len(msg.Data))
		e.net.PutBuf(msg.Data) // payload copied into the LS; recycle
		if cmd.remaining <= 0 {
			e.schedule(done, timedEvent{kind: evComplete, slot: slot})
		}
	case noc.KindMemBlockAck:
		cmd, slot := e.lookup(msg.C)
		if cmd == nil {
			e.Fault(fmt.Errorf("mfc%d: ack for unknown command %d", e.id, msg.C))
			return
		}
		e.stats.BytesOut += cmd.size
		e.complete(now, slot)
	default:
		e.Fault(fmt.Errorf("mfc%d received unexpected %s", e.id, msg))
	}
	if e.handle != nil {
		e.handle.Wake(now + 1)
	}
}

func (e *Engine) complete(now sim.Cycle, slot int32) {
	cmd := &e.cmds[slot]
	tag := cmd.tag
	if e.Rec != nil {
		e.Rec.DMA(e.RecSPE, uint8(cmd.dir), cmd.size, cmd.tag, cmd.issuedAt, cmd.launchedAt, now)
	}
	e.release(slot)
	e.inflightN--
	drained, ok := e.tagDec(tag)
	if !ok {
		e.Fault(fmt.Errorf("mfc%d: tag %d underflow", e.id, tag))
		return
	}
	if drained {
		e.stats.TagWaits++
		if e.OnTagIdle != nil {
			e.OnTagIdle(now, tag)
		}
	}
}

// DumpState implements sim.StateDumper.
func (e *Engine) DumpState() string {
	return fmt.Sprintf("queue=%d inflight=%d events=%d", len(e.queue), e.inflightN, len(e.events))
}
