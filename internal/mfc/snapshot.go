package mfc

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/snap"
)

// SetCmdLatency changes the per-command processing latency at run time —
// the checkpoint/fork harness's divergence knob. The latency is read
// when the queue head starts processing (Tick), so a change between
// engine passes applies to every command launched afterwards,
// identically whether the prefix was simulated or restored.
func (e *Engine) SetCmdLatency(cycles int) {
	if cycles < 0 {
		cycles = 0
	}
	e.cfg.CmdLatency = cycles
}

// CmdLatency returns the current command latency (for tests).
func (e *Engine) CmdLatency() int { return e.cfg.CmdLatency }

// Snapshot serialises the MFC's mutable state: staging channels, the
// command slab with its free-list and queue, tag groups, pending timer
// events and statistics. Wiring (endpoints, callbacks, recorder) is
// construction-time and not serialised.
func (e *Engine) Snapshot(w *snap.Writer) {
	w.I64(e.chLSA)
	w.I64(e.chEA)
	w.I64(e.chSize)
	w.I64(e.chTag)
	w.Int(len(e.cmds))
	for i := range e.cmds {
		c := &e.cmds[i]
		w.I64(c.id)
		w.I64(c.lsa)
		w.I64(c.ea)
		w.I64(c.size)
		w.I64(c.tag)
		w.U8(uint8(c.dir))
		w.Bool(c.inflight)
		w.I64(c.remaining)
		w.I64(int64(c.issuedAt))
		w.I64(int64(c.launchedAt))
	}
	w.Int(len(e.free))
	for _, s := range e.free {
		w.I64(int64(s))
	}
	w.Int(len(e.queue))
	for _, s := range e.queue {
		w.I64(int64(s))
	}
	w.Bool(e.headBusy)
	w.Int(e.inflightN)
	w.Int(len(e.tags))
	for _, t := range e.tags {
		w.I64(t.tag)
		w.I64(int64(t.n))
	}
	// Timer heap in slab order; restore re-pushes (pop order is the
	// (at, seq) total order, so internal layout is behaviour-invisible).
	w.Int(len(e.events))
	for _, ev := range e.events {
		w.I64(int64(ev.at))
		w.I64(ev.seq)
		w.U8(uint8(ev.kind))
		// Same wire layout as when events carried payloads inline: evSend
		// writes a zero slot plus its slab payload, every other kind
		// writes its command slot plus an empty message.
		if ev.kind == evSend {
			w.I64(0)
			noc.SnapshotMessage(w, e.sendSlab[ev.slot])
		} else {
			w.I64(int64(ev.slot))
			noc.SnapshotMessage(w, noc.Message{})
		}
	}
	w.I64(e.nextGen)
	w.I64(e.seq)
	w.I64(e.stats.Gets)
	w.I64(e.stats.Puts)
	w.I64(e.stats.BytesIn)
	w.I64(e.stats.BytesOut)
	w.I64(e.stats.QueueFull)
	w.I64(e.stats.TagWaits)
	w.Int(e.stats.MaxQueueDepth)
}

// Restore rewinds the MFC to a snapshot taken on an identically
// configured MFC.
func (e *Engine) Restore(r *snap.Reader) error {
	e.chLSA = r.I64()
	e.chEA = r.I64()
	e.chSize = r.I64()
	e.chTag = r.I64()
	e.cmds = e.cmds[:0]
	nc := r.Int()
	for i := 0; i < nc; i++ {
		var c command
		c.id = r.I64()
		c.lsa = r.I64()
		c.ea = r.I64()
		c.size = r.I64()
		c.tag = r.I64()
		c.dir = Direction(r.U8())
		c.inflight = r.Bool()
		c.remaining = r.I64()
		c.issuedAt = sim.Cycle(r.I64())
		c.launchedAt = sim.Cycle(r.I64())
		e.cmds = append(e.cmds, c)
	}
	e.free = e.free[:0]
	nf := r.Int()
	for i := 0; i < nf; i++ {
		e.free = append(e.free, int32(r.I64()))
	}
	e.queue = e.queue[:0]
	nq := r.Int()
	for i := 0; i < nq; i++ {
		e.queue = append(e.queue, int32(r.I64()))
	}
	e.headBusy = r.Bool()
	e.inflightN = r.Int()
	e.tags = e.tags[:0]
	nt := r.Int()
	for i := 0; i < nt; i++ {
		e.tags = append(e.tags, tagEntry{tag: r.I64(), n: int32(r.I64())})
	}
	e.events = e.events[:0]
	for i := range e.sendSlab {
		e.sendSlab[i] = noc.Message{}
	}
	e.sendSlab = e.sendSlab[:0]
	e.sendFree = e.sendFree[:0]
	ne := r.Int()
	for i := 0; i < ne; i++ {
		var ev timedEvent
		ev.at = sim.Cycle(r.I64())
		ev.seq = r.I64()
		ev.kind = evKind(r.U8())
		ev.slot = int32(r.I64())
		msg := noc.RestoreMessage(r)
		if r.Err() != nil {
			return r.Err()
		}
		if ev.kind == evSend {
			ev.slot = e.sendAlloc(msg)
		}
		sim.HeapPush(&e.events, ev)
	}
	e.nextGen = r.I64()
	e.seq = r.I64()
	e.stats.Gets = r.I64()
	e.stats.Puts = r.I64()
	e.stats.BytesIn = r.I64()
	e.stats.BytesOut = r.I64()
	e.stats.QueueFull = r.I64()
	e.stats.TagWaits = r.I64()
	e.stats.MaxQueueDepth = r.Int()
	for _, s := range e.queue {
		if int(s) >= len(e.cmds) {
			return fmt.Errorf("mfc%d: snapshot queue references slot %d beyond slab of %d", e.id, s, len(e.cmds))
		}
	}
	return r.Err()
}
