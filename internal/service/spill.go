package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultCheckpointDiskBytes bounds the checkpoint spill directory
// when Config.CheckpointDiskBytes is unset.
const DefaultCheckpointDiskBytes = 1 << 30

// DiskSpill persists harness checkpoint snapshots in a directory, one
// file per key, so warm-up prefixes survive service restarts. It
// implements harness.CheckpointSpill.
//
// Layout: <dir>/<key>.snap, where key is the hex SnapshotKey (already
// filesystem-safe). Writes go to a .tmp file in the same directory and
// rename into place, so a crash mid-write never leaves a torn snapshot
// a later Load could serve (the envelope checksum would catch it, but
// the entry would be poison until evicted). When the directory exceeds
// the byte cap, the oldest files by modification time go first — Load
// refreshes mtime, making eviction least-recently-used.
//
// Unlike the in-memory caches, one spill is shared by every worker in
// the process, so all operations take an internal lock.
type DiskSpill struct {
	mu  sync.Mutex
	dir string
	cap int64
}

// NewDiskSpill opens (creating if needed) a spill directory bounded to
// capBytes on disk (<= 0 selects DefaultCheckpointDiskBytes).
func NewDiskSpill(dir string, capBytes int64) (*DiskSpill, error) {
	if capBytes <= 0 {
		capBytes = DefaultCheckpointDiskBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint spill: %w", err)
	}
	return &DiskSpill{dir: dir, cap: capBytes}, nil
}

func (s *DiskSpill) path(key string) string {
	return filepath.Join(s.dir, key+".snap")
}

// Load returns the snapshot stored under key, refreshing its
// modification time so recently used entries survive eviction.
func (s *DiskSpill) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
	return blob, true
}

// Store persists blob under key atomically (tmp file + rename), then
// evicts the oldest entries beyond the byte cap. Errors are swallowed
// — the spill is an optimisation; a failed write only costs the next
// restart its warm start.
func (s *DiskSpill) Store(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		_ = os.Remove(tmp)
		return
	}
	s.evictLocked(key)
}

// evictLocked removes the oldest .snap files until the directory fits
// the cap; keep is never removed (it was just written).
func (s *DiskSpill) evictLocked(keep string) {
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		if !strings.HasSuffix(de.Name(), ".snap") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries = append(entries, entry{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	keepPath := s.path(keep)
	for _, e := range entries {
		if total <= s.cap {
			return
		}
		if e.path == keepPath {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
		}
	}
}

// Bytes reports the spill directory's current .snap byte total.
func (s *DiskSpill) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, de := range ents {
		if !strings.HasSuffix(de.Name(), ".snap") {
			continue
		}
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}
