package service

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// stubRegistry builds a Lookup over synthetic experiments, so queue
// tests can control timing and failure modes precisely.
func stubRegistry(exps ...*harness.Experiment) func(string) (*harness.Experiment, bool) {
	byID := make(map[string]*harness.Experiment, len(exps))
	for _, e := range exps {
		byID[e.ID] = e
	}
	return func(id string) (*harness.Experiment, bool) {
		e, ok := byID[id]
		return e, ok
	}
}

func okExperiment(id string) *harness.Experiment {
	return &harness.Experiment{
		ID:    id,
		Title: "stub " + id,
		Run: func(ctx *harness.Context) (*harness.Outcome, error) {
			return &harness.Outcome{Metrics: map[string]float64{"spes": float64(ctx.Opt.SPEs)}}, nil
		},
	}
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s (%s) never finished", j.ID, j.Experiment)
	}
}

// TestSubmitCacheHit is the acceptance core: the second identical
// submission is served from cache, byte-identical, without a second
// simulation.
func TestSubmitCacheHit(t *testing.T) {
	s := New(Config{Workers: 2, Lookup: stubRegistry(okExperiment("stub"))})
	defer s.Close()

	first, err := s.Submit("stub", harness.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, first)
	if first.State != JobDone || first.CacheHit {
		t.Fatalf("first run: state=%s cacheHit=%v", first.State, first.CacheHit)
	}

	second, err := s.Submit("stub", harness.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, second)
	if second.State != JobDone || !second.CacheHit {
		t.Fatalf("second run: state=%s cacheHit=%v, want done from cache", second.State, second.CacheHit)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result differs:\n%s\n%s", first.Result, second.Result)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("ran %d simulations, want exactly 1", n)
	}
	if st := s.Cache().Stats(); st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit", st)
	}
}

// TestSubmitDifferentOptionsMiss: a changed option is a different key,
// so it simulates again.
func TestSubmitDifferentOptionsMiss(t *testing.T) {
	s := New(Config{Workers: 1, Lookup: stubRegistry(okExperiment("stub"))})
	defer s.Close()
	a, _ := s.Submit("stub", harness.Options{Quick: true, SPEs: 4})
	b, _ := s.Submit("stub", harness.Options{Quick: true, SPEs: 8})
	waitJob(t, a)
	waitJob(t, b)
	if a.Key == b.Key {
		t.Fatal("different options produced the same run key")
	}
	if n := s.Simulations(); n != 2 {
		t.Fatalf("ran %d simulations, want 2", n)
	}
}

func TestSubmitUnknownExperiment(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit("no-such-experiment", harness.Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestJobFailure: an experiment error lands on the job, is not cached,
// and a panicking experiment is contained the same way.
func TestJobFailure(t *testing.T) {
	reg := stubRegistry(
		&harness.Experiment{ID: "err", Run: func(*harness.Context) (*harness.Outcome, error) {
			return nil, errors.New("deliberate failure")
		}},
		&harness.Experiment{ID: "panic", Run: func(*harness.Context) (*harness.Outcome, error) {
			panic("deliberate panic")
		}},
	)
	s := New(Config{Workers: 2, Lookup: reg})
	defer s.Close()

	errJob, err := s.Submit("err", harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	panicJob, err := s.Submit("panic", harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, errJob)
	waitJob(t, panicJob)
	if errJob.State != JobFailed || !strings.Contains(errJob.Err, "deliberate failure") {
		t.Fatalf("error job: state=%s err=%q", errJob.State, errJob.Err)
	}
	if panicJob.State != JobFailed || !strings.Contains(panicJob.Err, "deliberate panic") {
		t.Fatalf("panic job: state=%s err=%q", panicJob.State, panicJob.Err)
	}
	if st := s.Cache().Stats(); st.Len != 0 {
		t.Fatalf("failed runs were cached: %+v", st)
	}
}

// TestCancelQueuedJob wedges the single worker on a gated experiment,
// cancels a job stuck behind it, and checks the worker skips it.
func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	ran := make(chan string, 8)
	gated := &harness.Experiment{ID: "gated", Run: func(*harness.Context) (*harness.Outcome, error) {
		ran <- "gated"
		<-gate
		return &harness.Outcome{}, nil
	}}
	victim := &harness.Experiment{ID: "victim", Run: func(*harness.Context) (*harness.Outcome, error) {
		ran <- "victim"
		return &harness.Outcome{}, nil
	}}
	s := New(Config{Workers: 1, Lookup: stubRegistry(gated, victim)})

	blocker, err := s.Submit("gated", harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	<-ran // the worker is now inside the gated experiment
	queued, err := s.Submit("victim", harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if queued.State != JobCanceled {
		t.Fatalf("canceled job state = %s", queued.State)
	}
	if err := s.Cancel(queued.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if err := s.Cancel(blocker.ID); err == nil {
		t.Fatal("canceled a running job")
	}
	close(gate)
	waitJob(t, blocker)
	s.Close() // drain: proves the worker did not wedge on the canceled job
	select {
	case id := <-ran:
		t.Fatalf("canceled job %s executed anyway", id)
	default:
	}
}

// TestSweepAndDrain submits a batch, closes the service, and checks
// every job reached a terminal state and submissions now fail.
func TestSweepAndDrain(t *testing.T) {
	s := New(Config{Workers: 2, Lookup: stubRegistry(okExperiment("a"), okExperiment("b"), okExperiment("c"))})
	sweep, err := s.SubmitSweep([]string{"a", "b", "c"}, harness.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Jobs) != 3 || sweep.ID == "" {
		t.Fatalf("sweep = %+v", sweep)
	}
	s.Close()
	for _, j := range sweep.Jobs {
		if !j.State.Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", j.ID, j.State)
		}
		if j.State != JobDone {
			t.Fatalf("job %s = %s (%s)", j.ID, j.State, j.Err)
		}
	}
	if _, err := s.Submit("a", harness.Options{}); err == nil {
		t.Fatal("submit accepted after drain")
	}
	if got, ok := s.Sweep(sweep.ID); !ok || got != sweep {
		t.Fatal("sweep lookup failed")
	}
}

func TestSweepRejectsUnknownID(t *testing.T) {
	s := New(Config{Workers: 1, Lookup: stubRegistry(okExperiment("a"))})
	defer s.Close()
	if _, err := s.SubmitSweep([]string{"a", "nope"}, harness.Options{}); err == nil {
		t.Fatal("sweep with unknown id accepted")
	}
	if _, err := s.SubmitSweep(nil, harness.Options{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	// Validation happens before any enqueue: nothing may have run.
	s.Close()
	if n := s.Simulations(); n != 0 {
		t.Fatalf("rejected sweeps still ran %d simulations", n)
	}
}

// TestQueueFull: with a wedged worker and depth 1, the second waiting
// submission is rejected as queue-full but still tracked terminal.
func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	gated := &harness.Experiment{ID: "gated", Run: func(*harness.Context) (*harness.Outcome, error) {
		close(entered)
		<-gate
		return &harness.Outcome{}, nil
	}}
	s := New(Config{Workers: 1, QueueDepth: 1, Lookup: stubRegistry(gated, okExperiment("a"), okExperiment("b"))})
	if _, err := s.Submit("gated", harness.Options{}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := s.Submit("a", harness.Options{}); err != nil { // fills the queue
		t.Fatal(err)
	}
	job, err := s.Submit("b", harness.Options{})
	if err == nil {
		t.Fatal("overfull queue accepted a job")
	}
	if job == nil || job.State != JobFailed || !strings.Contains(job.Err, "queue full") {
		t.Fatalf("queue-full job = %+v", job)
	}
	close(gate)
	s.Close()
}

// TestServiceRealExperiment runs a real registry experiment end to end
// through the queue (table2 is a config echo — cheap).
func TestServiceRealExperiment(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	job, err := s.Submit("table2", harness.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State != JobDone {
		t.Fatalf("table2 job = %s (%s)", job.State, job.Err)
	}
	if !strings.Contains(string(job.Result), `"mem_latency":150`) {
		t.Fatalf("result document missing metrics: %s", job.Result)
	}
	if job.Key != RunKey("table2", harness.Options{Quick: true}) {
		t.Fatal("job key disagrees with RunKey")
	}
}

// TestJobRetention: terminal jobs are forgotten oldest-first beyond the
// bound, so a long-running daemon's job table cannot grow per request.
func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 1, JobRetention: 2, SweepRetention: 1, Lookup: stubRegistry(okExperiment("stub"))})
	defer s.Close()
	var jobs []*Job
	for i := 0; i < 4; i++ {
		// Vary the seed so every submission simulates (distinct keys).
		j, err := s.Submit("stub", harness.Options{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		jobs = append(jobs, j)
	}
	if _, ok := s.Job(jobs[0].ID); ok {
		t.Fatal("oldest terminal job survived past the retention bound")
	}
	if _, ok := s.Job(jobs[3].ID); !ok {
		t.Fatal("newest terminal job was pruned")
	}

	// Sweeps prune the same way.
	a, err := s.SubmitSweep([]string{"stub"}, harness.Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SubmitSweep([]string{"stub"}, harness.Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sweep(a.ID); ok {
		t.Fatal("oldest sweep survived past the retention bound")
	}
	if _, ok := s.Sweep(b.ID); !ok {
		t.Fatal("newest sweep was pruned")
	}
}

// TestSubmitCoalescesInflight: concurrent identical submissions attach
// to the one in-flight job instead of simulating twice — the
// no-second-simulation contract must hold even when the second submit
// arrives before the first finishes.
func TestSubmitCoalescesInflight(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	gated := &harness.Experiment{ID: "gated", Run: func(*harness.Context) (*harness.Outcome, error) {
		close(entered)
		<-gate
		return &harness.Outcome{Metrics: map[string]float64{"v": 1}}, nil
	}}
	s := New(Config{Workers: 2, Lookup: stubRegistry(gated)})

	first, err := s.Submit("gated", harness.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // simulation is in flight, result not yet cached
	second, err := s.Submit("gated", harness.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("concurrent identical submission got its own job (%s vs %s)", second.ID, first.ID)
	}
	close(gate)
	waitJob(t, first)
	s.Close()
	if n := s.Simulations(); n != 1 {
		t.Fatalf("ran %d simulations for one key, want 1", n)
	}
	// A fresh submission after completion is a plain cache hit.
	// (Service is closed; assert via the cache directly.)
	if _, hit := s.Cache().Get(first.Key); !hit {
		t.Fatal("result not cached after coalesced run")
	}
}

// TestBatchedWorkersMatchSequential runs the same mixed sweep — paper
// figures plus synth corpus seeds, real experiments through the default
// registry — through a batched service (workers interleaving 4 jobs)
// and a plain one, and asserts byte-identical result documents.
func TestBatchedWorkersMatchSequential(t *testing.T) {
	ids := []string{"table2", "fig5a", "synth/0001", "synth/0002", "fig5b", "synth/0003"}
	opt := harness.Options{Quick: true}
	runAll := func(cfg Config) map[string][]byte {
		s := New(cfg)
		defer s.Close()
		sweep, err := s.SubmitSweep(ids, opt)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(ids))
		for _, j := range sweep.Jobs {
			waitJob(t, j)
			if j.State != JobDone {
				t.Fatalf("%s: state=%s err=%s", j.Experiment, j.State, j.Err)
			}
			out[j.Experiment] = j.Result
		}
		return out
	}
	plain := runAll(Config{Workers: 2})
	batched := runAll(Config{Workers: 2, BatchWidth: 4})
	for _, id := range ids {
		if !bytes.Equal(plain[id], batched[id]) {
			t.Fatalf("%s: batched result differs:\n%s\n%s", id, plain[id], batched[id])
		}
	}
}

// TestBatchedConcurrentIdenticalJobsOneSimulation: identical
// submissions racing through a batched worker cost ONE simulation — a
// duplicate either coalesces onto the in-flight job at submission or is
// served from the result cache — with byte-identical bodies either way.
func TestBatchedConcurrentIdenticalJobsOneSimulation(t *testing.T) {
	s := New(Config{Workers: 1, BatchWidth: 2})
	defer s.Close()
	opt := harness.Options{Quick: true}
	a, err := s.Submit("fig7", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit("fig7", opt)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, a)
	waitJob(t, b)
	if a.State != JobDone || b.State != JobDone {
		t.Fatalf("states: a=%s (err=%s) b=%s (err=%s)", a.State, a.Err, b.State, b.Err)
	}
	if !bytes.Equal(a.Result, b.Result) {
		t.Fatalf("duplicate result differs:\n%s\n%s", a.Result, b.Result)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1 (duplicate coalesced or cache-served)", n)
	}
}
