package service

import (
	"testing"

	"repro/internal/harness"
)

// goldenKey pins the run key for the canonical quick fig7 run. Because
// the hash is computed from a fixed pre-image string, a matching golden
// here proves the key is stable across processes and machines — the
// property that makes cached results addressable from anywhere. It must
// only ever change together with EngineVersion or keySchema.
const goldenKey = "d708ba3c78e922124890d6fd875021b41bc8b4e98d0c7cc1529bddd5da77a77e"

func TestRunKeyGolden(t *testing.T) {
	got := RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42})
	if got != goldenKey {
		t.Fatalf("run key changed:\n got  %s\n want %s\nif the engine or key schema changed intentionally, bump EngineVersion/keySchema and update the golden", got, goldenKey)
	}
}

// TestRunKeyNormalisation: zero-valued options hash like the explicit
// paper defaults, so clients need not know the operating point.
func TestRunKeyNormalisation(t *testing.T) {
	implicit := RunKey("fig7", harness.Options{Quick: true})
	explicit := RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42})
	if implicit != explicit {
		t.Fatalf("defaulted and explicit options disagree: %s vs %s", implicit, explicit)
	}
}

// TestRunKeySensitivity: every input field changes the key.
func TestRunKeySensitivity(t *testing.T) {
	base := harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42}
	ref := RunKey("fig7", base)
	variants := map[string]string{
		"experiment": RunKey("fig8", base),
		"spes":       RunKey("fig7", harness.Options{SPEs: 4, Latency: 150, Quick: true, Seed: 42}),
		"latency":    RunKey("fig7", harness.Options{SPEs: 8, Latency: 300, Quick: true, Seed: 42}),
		"quick":      RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: false, Seed: 42}),
		"seed":       RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 43}),
	}
	seen := map[string]string{ref: "base"}
	for field, key := range variants {
		if key == ref {
			t.Errorf("changing %s did not change the run key", field)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s collide on %s", field, prev, key)
		}
		seen[key] = field
	}
}

func TestRunKeyRepeatable(t *testing.T) {
	opt := harness.Options{Quick: true, Seed: 7}
	if RunKey("table2", opt) != RunKey("table2", opt) {
		t.Fatal("run key not repeatable within a process")
	}
}
