package service

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/synth"
)

// goldenKey pins the run key for the canonical quick fig7 run. Because
// the hash is computed from a fixed pre-image string, a matching golden
// here proves the key is stable across processes and machines — the
// property that makes cached results addressable from anywhere. It must
// only ever change together with EngineVersion or keySchema.
const goldenKey = "ef7c1f0c419b4d9800028074a110e7b7f0849873e6573ce625122002fcbbc6bd"

func TestRunKeyGolden(t *testing.T) {
	got := RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42})
	if got != goldenKey {
		t.Fatalf("run key changed:\n got  %s\n want %s\nif the engine or key schema changed intentionally, bump EngineVersion/keySchema and update the golden", got, goldenKey)
	}
}

// TestRunKeyNormalisation: zero-valued options hash like the explicit
// paper defaults, so clients need not know the operating point.
func TestRunKeyNormalisation(t *testing.T) {
	implicit := RunKey("fig7", harness.Options{Quick: true})
	explicit := RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42})
	if implicit != explicit {
		t.Fatalf("defaulted and explicit options disagree: %s vs %s", implicit, explicit)
	}
}

// TestRunKeySensitivity: every input field changes the key.
func TestRunKeySensitivity(t *testing.T) {
	base := harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42}
	ref := RunKey("fig7", base)
	variants := map[string]string{
		"experiment": RunKey("fig8", base),
		"spes":       RunKey("fig7", harness.Options{SPEs: 4, Latency: 150, Quick: true, Seed: 42}),
		"latency":    RunKey("fig7", harness.Options{SPEs: 8, Latency: 300, Quick: true, Seed: 42}),
		"quick":      RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: false, Seed: 42}),
		"seed":       RunKey("fig7", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 43}),
	}
	seen := map[string]string{ref: "base"}
	for field, key := range variants {
		if key == ref {
			t.Errorf("changing %s did not change the run key", field)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s collide on %s", field, prev, key)
		}
		seen[key] = field
	}
}

func TestRunKeyRepeatable(t *testing.T) {
	opt := harness.Options{Quick: true, Seed: 7}
	if RunKey("table2", opt) != RunKey("table2", opt) {
		t.Fatal("run key not repeatable within a process")
	}
}

// goldenSynthKey pins the run key of the first pinned-corpus synth
// experiment. Synth keys fold in the generator version: it must change
// when (and only when) EngineVersion, keySchema or synth.GenVersion
// changes.
const goldenSynthKey = "a3a45dcfb78080bae6782311775111886760ebd6bbb622f27def66e7d8e6073b"

func TestSynthRunKeyGolden(t *testing.T) {
	got := RunKey("synth/0001", harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42})
	if got != goldenSynthKey {
		t.Fatalf("synth run key changed:\n got  %s\n want %s\nif the generator changed intentionally, bump synth.GenVersion and update the golden", got, goldenSynthKey)
	}
}

// TestGeneratorBumpChangesSynthKeysOnly: simulating a generator bump
// must move every synth/* key and no other key — cached results for
// generated programs become unaddressable while paper experiments keep
// their cache entries.
func TestGeneratorBumpChangesSynthKeysOnly(t *testing.T) {
	opt := harness.Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42}

	cur := RunKey("synth/0007", opt)
	bumped := runKey("synth/0007", opt, "synthgen/next")
	if cur == bumped {
		t.Fatal("generator bump did not change a synth/* run key")
	}
	if cur != runKey("synth/0007", opt, synth.GenVersion) {
		t.Fatal("RunKey does not fold the current generator version into synth keys")
	}

	// Non-synth experiments carry no generator component at all: their
	// pre-image is the pre-synth schema, so a generator bump cannot
	// touch them (goldenKey above pins this across releases too).
	if RunKey("fig7", opt) != runKey("fig7", opt, "") {
		t.Fatal("non-synth key unexpectedly depends on a generator version")
	}
}
