package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestDiskSpillRoundTrip: Store then Load returns the blob, Bytes
// reflects the directory, and no .tmp litter survives.
func TestDiskSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskSpill(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s.Store("abc123", []byte("snapshot-bytes"))
	blob, ok := s.Load("abc123")
	if !ok || string(blob) != "snapshot-bytes" {
		t.Fatalf("Load = %q, %v", blob, ok)
	}
	if _, ok := s.Load("missing"); ok {
		t.Error("Load found a key never stored")
	}
	if got := s.Bytes(); got != int64(len("snapshot-bytes")) {
		t.Errorf("Bytes = %d, want %d", got, len("snapshot-bytes"))
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("tmp file %s left behind", e.Name())
		}
	}
}

// TestDiskSpillEviction: the byte cap evicts oldest-by-mtime first,
// never the entry just written.
func TestDiskSpillEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskSpill(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.Store("old", make([]byte, 60))
	// Age the first entry so mtime ordering is unambiguous on coarse
	// filesystem clocks.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "old.snap"), past, past); err != nil {
		t.Fatal(err)
	}
	s.Store("new", make([]byte, 60)) // 120 > 100: "old" must go
	if _, ok := s.Load("old"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := s.Load("new"); !ok {
		t.Error("just-written entry was evicted")
	}

	// An oversized single entry is kept (evicting it would thrash).
	s2, err := NewDiskSpill(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	s2.Store("huge", make([]byte, 500))
	if _, ok := s2.Load("huge"); !ok {
		t.Error("oversized entry was evicted on insert")
	}
}

// TestServiceCheckpointSpill: a service configured with a checkpoint
// directory persists warm-up snapshots while running the phase
// experiment, and a second service over the same directory — a restart
// — serves them as hits.
func TestServiceCheckpointSpill(t *testing.T) {
	dir := t.TempDir()
	opt := harness.Options{Quick: true, SPEs: 2}

	s1 := New(Config{Workers: 1, CheckpointDir: dir})
	job, err := s1.Submit("phase-memlat", opt)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State != JobDone {
		t.Fatalf("job failed: %s", job.Err)
	}
	s1.Close()
	if s1.spill.Bytes() == 0 {
		t.Fatal("no snapshots spilled to disk")
	}

	// Restart: the fresh process's first fork finds its prefix on disk.
	hits := harness.CheckpointHits.Load()
	misses := harness.CheckpointMisses.Load()
	s2 := New(Config{Workers: 1, CheckpointDir: dir})
	defer s2.Close()
	job2, err := s2.Submit("phase-memlat", opt)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job2)
	if job2.State != JobDone {
		t.Fatalf("restarted job failed: %s", job2.Err)
	}
	if harness.CheckpointHits.Load() == hits {
		t.Error("restarted service never hit the on-disk checkpoints")
	}
	if got := harness.CheckpointMisses.Load() - misses; got != 0 {
		// Every prefix the first service captured should be served from
		// the spill; a miss means key derivation drifted across restarts.
		t.Errorf("restarted service missed %d checkpoint lookups", got)
	}
}
