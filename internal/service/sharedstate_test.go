package service

import (
	"testing"

	"repro/internal/harness"
)

// TestStateRegistrySharing: jobs agreeing on Quick/Seed get the same
// BatchState; any disagreement gets a distinct one.
func TestStateRegistrySharing(t *testing.T) {
	r := newStateRegistry(4, nil)
	a := r.acquire(harness.Options{Quick: true})
	b := r.acquire(harness.Options{Quick: true, SPEs: 4, Latency: 500})
	if a != b {
		t.Fatal("same Quick/Seed: states not shared")
	}
	c := r.acquire(harness.Options{Quick: false})
	if c == a {
		t.Fatal("different Quick: state shared")
	}
	d := r.acquire(harness.Options{Quick: true, Seed: 7})
	if d == a {
		t.Fatal("different Seed: state shared")
	}
}

// TestStateRegistryRefcountAndIdle: a state survives its last release
// on the idle list and is rejoined warm; beyond the idle cap the
// coldest state is evicted and a fresh acquire builds a new one. The
// SharedStates gauge tracks every transition.
func TestStateRegistryRefcountAndIdle(t *testing.T) {
	base := SharedStates.Load()
	r := newStateRegistry(2, nil)
	opt := harness.Options{Quick: true}
	st := r.acquire(opt)
	if got := SharedStates.Load() - base; got != 1 {
		t.Fatalf("gauge after first acquire: %d, want 1", got)
	}
	r.release(opt)
	if got := r.acquire(opt); got != st {
		t.Fatal("released state not rejoined warm from the idle list")
	}
	r.release(opt)

	// Push stateIdleCap+1 more distinct idle states: the original (the
	// coldest idler) must fall off, and the gauge must follow.
	for i := 0; i < stateIdleCap+1; i++ {
		o := harness.Options{Quick: true, Seed: uint64(100 + i)}
		r.acquire(o)
		r.release(o)
	}
	if got := SharedStates.Load() - base; got != int64(stateIdleCap) {
		t.Fatalf("gauge after churn: %d, want %d", got, stateIdleCap)
	}
	if got := r.acquire(opt); got == st {
		t.Fatal("evicted state still served")
	}
}

// TestStateRegistryConcurrentRefs: overlapping acquires of one key
// share the state and the state stays resident until the last release.
func TestStateRegistryConcurrentRefs(t *testing.T) {
	r := newStateRegistry(2, nil)
	opt := harness.Options{Quick: true}
	a := r.acquire(opt)
	b := r.acquire(opt)
	if a != b {
		t.Fatal("overlapping acquires returned distinct states")
	}
	r.release(opt)
	// Still referenced: churning the idle list must not evict it.
	for i := 0; i < stateIdleCap+2; i++ {
		o := harness.Options{Quick: true, Seed: uint64(200 + i)}
		r.acquire(o)
		r.release(o)
	}
	if got := r.acquire(opt); got != a {
		t.Fatal("referenced state was evicted")
	}
}
