package service

import (
	"time"

	"repro/internal/batch"
	"repro/internal/cell"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/stats"
)

// buildRegistry assembles the process metrics registry served at
// GET /metrics. Counters owned by other packages (cell.Pool, batch,
// harness run caches) are process-wide atomics read at scrape time;
// service-level state is read through the usual accessors. Per-endpoint
// latency histograms are registered lazily by the HTTP middleware.
func (s *Service) buildRegistry() {
	reg := obs.NewRegistry()
	s.reg = reg

	reg.GaugeFunc("dtad_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("dtad_workers",
		"Configured simulation worker count.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("dtad_batch_width",
		"Configured cooperative batch width per worker (<=1 means run-to-completion).",
		func() float64 { return float64(s.cfg.BatchWidth) })
	reg.GaugeFunc("dtad_busy_workers",
		"Jobs currently inside a simulation (with batching, up to batch_width per worker).",
		func() float64 { return float64(s.busyWorkers.Load()) })
	reg.GaugeFunc("dtad_queue_depth",
		"Jobs waiting for a worker.",
		func() float64 { return float64(s.QueueLen()) })
	reg.GaugeFunc("dtad_queue_capacity",
		"Maximum jobs the queue can hold.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.CounterFunc("dtad_simulations_total",
		"Simulations actually executed (cache-served submissions excluded).",
		func() float64 { return float64(s.simulated.Load()) })
	reg.CounterFunc("dtad_sim_cycles_total",
		"Cumulative simulated cycles across all executed jobs.",
		func() float64 { return float64(s.simCycles.Load()) })

	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		reg.GaugeFunc("dtad_jobs",
			"Jobs in the retention table by state.",
			func() float64 { return float64(s.countJobs(st)) },
			obs.Label{Name: "state", Value: string(st)})
	}

	reg.CounterFunc("dtad_cache_hits_total",
		"Result-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("dtad_cache_misses_total",
		"Result-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("dtad_cache_evictions_total",
		"Result-cache LRU evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.GaugeFunc("dtad_cache_entries",
		"Result documents currently cached.",
		func() float64 { return float64(s.cache.Stats().Len) })
	reg.GaugeFunc("dtad_cache_capacity",
		"Maximum result documents the cache holds.",
		func() float64 { return float64(s.cache.Stats().Cap) })

	reg.CounterFunc("dtad_pool_gets_total",
		"Machine pool Get calls across every worker pool.",
		func() float64 { return float64(cell.PoolGets.Load()) })
	reg.CounterFunc("dtad_pool_misses_total",
		"Machine pool Gets that had to build a fresh machine.",
		func() float64 { return float64(cell.PoolMisses.Load()) })
	reg.CounterFunc("dtad_pool_puts_total",
		"Machines retained by a pool for reuse.",
		func() float64 { return float64(cell.PoolPuts.Load()) })
	reg.CounterFunc("dtad_pool_drops_total",
		"Machines dropped at Put because the pool was full.",
		func() float64 { return float64(cell.PoolDrops.Load()) })

	reg.CounterFunc("dtad_harness_runs_total",
		"Simulations executed by harness contexts (run-cache misses).",
		func() float64 { return float64(harness.RunsExecuted.Load()) })
	reg.CounterFunc("dtad_harness_run_cache_hits_total",
		"Harness run-cache hits (memoised simulations).",
		func() float64 { return float64(harness.RunCacheHits.Load()) })
	reg.CounterFunc("dtad_harness_inflight_dedup_hits_total",
		"Run-cache hits that waited on a sibling fiber computing the same key.",
		func() float64 { return float64(harness.InflightDedupHits.Load()) })

	reg.CounterFunc("dtad_checkpoint_hits_total",
		"Forked runs seeded from a cached warm-up snapshot (memory or disk spill).",
		func() float64 { return float64(harness.CheckpointHits.Load()) })
	reg.CounterFunc("dtad_checkpoint_misses_total",
		"Fork requests that simulated their warm-up prefix cold.",
		func() float64 { return float64(harness.CheckpointMisses.Load()) })
	reg.CounterFunc("dtad_checkpoint_evictions_total",
		"Snapshots dropped from in-memory checkpoint caches under the byte cap.",
		func() float64 { return float64(harness.CheckpointEvictions.Load()) })
	reg.GaugeFunc("dtad_checkpoint_bytes",
		"Snapshot bytes resident in in-memory checkpoint caches.",
		func() float64 { return float64(harness.CheckpointBytes.Load()) })
	reg.CounterFunc("dtad_checkpoint_cycles_saved_total",
		"Simulated cycles skipped by restoring snapshots instead of re-running warm-up prefixes.",
		func() float64 { return float64(harness.CheckpointCyclesSaved.Load()) })
	if s.spill != nil {
		reg.GaugeFunc("dtad_checkpoint_disk_bytes",
			"Snapshot bytes in the on-disk checkpoint spill directory.",
			func() float64 { return float64(s.spill.Bytes()) })
	}

	for c := stats.Cause(0); c < stats.NumCauses; c++ {
		c := c
		reg.CounterFunc("dtad_sim_stall_cycles_total",
			"Cumulative simulated SPU cycles by stall cause (same accounting as dtad_sim_cycles_total).",
			func() float64 { return float64(harness.CauseCycles[c].Load()) },
			obs.Label{Name: "cause", Value: c.Slug()},
			obs.Label{Name: "bucket", Value: c.Bucket().String()})
	}

	reg.CounterFunc("dtad_batch_tasks_started_total",
		"Fibers admitted to a cooperative scheduler round.",
		func() float64 { return float64(batch.TasksStarted.Load()) })
	reg.CounterFunc("dtad_batch_tasks_finished_total",
		"Fibers that ran to completion.",
		func() float64 { return float64(batch.TasksFinished.Load()) })
	reg.GaugeFunc("dtad_batch_fibers_runnable",
		"Live fibers across all cooperative scheduler loops.",
		func() float64 { return float64(batch.Runnable.Load()) })
	reg.CounterFunc("dtad_batch_slices_total",
		"Fiber slices executed (one resume-to-yield advance).",
		func() float64 { return float64(batch.Slices.Load()) })
	reg.CounterFunc("dtad_batch_slice_seconds_total",
		"Wall-clock seconds spent inside fiber slices.",
		func() float64 { return float64(batch.SliceNanos.Load()) / 1e9 })
	reg.CounterFunc("dtad_batch_fiber_switches_total",
		"Fiber slices handed to a different fiber than the previous slice (the context-switch share of dtad_batch_slices_total; the horizon scheduler keeps it low).",
		func() float64 { return float64(batch.Switches.Load()) })
	reg.GaugeFunc("dtad_batch_shared_states",
		"Shared batch states (run/program caches + machine pool, keyed by Quick/Seed) held by worker registries, in use or idling warm.",
		func() float64 { return float64(SharedStates.Load()) })

	s.httpMetrics = make(map[string]*routeMetrics, len(routePatterns)+1)
	for _, p := range append([]string{""}, routePatterns...) {
		label := p
		if label == "" {
			label = "other"
		}
		s.httpMetrics[p] = &routeMetrics{
			reqs: reg.Counter("dtad_http_requests_total",
				"HTTP requests served, by mux route.",
				obs.Label{Name: "path", Value: label}),
			seconds: reg.Histogram("dtad_http_request_seconds",
				"HTTP request latency in seconds, by mux route.", nil,
				obs.Label{Name: "path", Value: label}),
		}
	}
}

// routeMetrics is the per-route series pair used by the HTTP middleware.
type routeMetrics struct {
	reqs    *obs.Counter
	seconds *obs.Histogram
}

// countJobs counts retained jobs in one state.
func (s *Service) countJobs(st JobState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == st {
			n++
		}
	}
	return n
}

// Registry exposes the metrics registry (for the /metrics route and
// tests).
func (s *Service) Registry() *obs.Registry { return s.reg }
