package service

import (
	"sync/atomic"

	"repro/internal/harness"
)

// SharedStates gauges the harness.BatchStates currently held by worker
// state registries — in use by at least one job or idling warm — across
// the process. Exposed as dtad_batch_shared_states.
var SharedStates atomic.Int64

// stateKey identifies the Options fields that shape programs: two jobs
// agreeing on Quick and Seed build byte-identical programs for a given
// benchmark, so they may share one BatchState's run and program caches.
// Every other Options field (latency, SPE budget) is folded into each
// simulation's run-cache key and needs no separation here — see
// harness.BatchState.ContextFor.
type stateKey struct {
	quick bool
	seed  uint64
}

// stateIdleCap bounds how many zero-ref states a registry keeps warm.
// A state holds a machine pool and every result its jobs computed, so
// the cap trades memory for the chance that the next sweep rejoins a
// warm cache; sweeps target one operating point at a time, so a few
// entries cover the realistic churn.
const stateIdleCap = 4

type stateEntry struct {
	state *harness.BatchState
	refs  int
}

// stateRegistry hands out refcounted BatchStates keyed by stateKey, so
// every job of one worker whose Options agree on the program-shaping
// fields shares run/program caches, inflight dedup marks and a machine
// pool — concurrently for the fibers of a batched worker, generation
// after generation for a sequential one. Per-worker and lock-free like
// the caches it manages: the fibers of one worker never execute
// simultaneously. Zero-ref states idle in LRU order up to stateIdleCap
// before eviction.
type stateRegistry struct {
	width  int
	ckpts  *harness.CheckpointCache
	states map[stateKey]*stateEntry
	idle   []stateKey // zero-ref states, coldest first
}

func newStateRegistry(width int, ckpts *harness.CheckpointCache) *stateRegistry {
	if width < 1 {
		width = 1
	}
	return &stateRegistry{width: width, ckpts: ckpts, states: make(map[stateKey]*stateEntry)}
}

// acquire returns the shared state for opt's program-shaping fields,
// creating it on first use, and takes a reference that release drops.
func (r *stateRegistry) acquire(opt harness.Options) *harness.BatchState {
	opt = opt.WithDefaults()
	k := stateKey{opt.Quick, opt.Seed}
	e := r.states[k]
	if e == nil {
		st := harness.NewBatchState(opt, 0, r.width)
		st.SetCheckpointCache(r.ckpts)
		e = &stateEntry{state: st}
		r.states[k] = e
		SharedStates.Add(1)
	} else if e.refs == 0 {
		r.unidle(k)
	}
	e.refs++
	return e.state
}

// release drops one reference; the last reference parks the state on
// the idle list, evicting the coldest idler beyond the cap.
func (r *stateRegistry) release(opt harness.Options) {
	opt = opt.WithDefaults()
	k := stateKey{opt.Quick, opt.Seed}
	e := r.states[k]
	if e == nil || e.refs == 0 {
		return
	}
	if e.refs--; e.refs > 0 {
		return
	}
	r.idle = append(r.idle, k)
	for len(r.idle) > stateIdleCap {
		cold := r.idle[0]
		r.idle = r.idle[1:]
		delete(r.states, cold)
		SharedStates.Add(-1)
	}
}

func (r *stateRegistry) unidle(k stateKey) {
	for i, ik := range r.idle {
		if ik == k {
			r.idle = append(r.idle[:i], r.idle[i+1:]...)
			return
		}
	}
}
