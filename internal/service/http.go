package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// API routes (all JSON):
//
//	GET  /healthz                 liveness probe
//	GET  /v1/experiments          registered experiments (id, title, paper)
//	GET  /v1/stats                cache counters, queue depth, job states
//	POST /v1/runs                 submit one run; waits and returns the
//	                              content-addressed result document by
//	                              default ("wait": false returns 202 +
//	                              the job immediately)
//	GET  /v1/runs/{id}            poll a job
//	DELETE /v1/runs/{id}          cancel a queued job
//	GET  /v1/results/{key}        fetch a cached result document by run key
//	POST /v1/sweeps               submit a batch; returns 202 + the sweep
//	GET  /v1/sweeps/{id}          poll a sweep
//	GET  /v1/sweeps/{id}/stream   NDJSON: one RunLine per experiment as
//	                              each completes (submission order)
//
// Synchronous run responses set X-Dtad-Cache to "hit" or "miss"; the
// body is the cached document verbatim, so resubmitting an identical
// run returns byte-identical JSON.

// JobDoc is the API representation of a job.
type JobDoc struct {
	Job        string          `json:"job"`
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	State      JobState        `json:"state"`
	CacheHit   bool            `json:"cache_hit"`
	ElapsedMS  int64           `json:"elapsed_ms"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// SweepDoc is the API representation of a sweep.
type SweepDoc struct {
	Sweep string   `json:"sweep"`
	Total int      `json:"total"`
	Done  int      `json:"done"`
	Jobs  []JobDoc `json:"jobs"`
}

// StatsDoc is the /v1/stats payload.
type StatsDoc struct {
	Engine      string         `json:"engine"`
	Cache       CacheStats     `json:"cache"`
	Simulations int64          `json:"simulations"`
	Workers     int            `json:"workers"`
	QueueLen    int            `json:"queue_len"`
	Jobs        map[string]int `json:"jobs"`
}

// runRequest is the POST /v1/runs body.
type runRequest struct {
	Experiment string     `json:"experiment"`
	Options    OptionsDoc `json:"options"`
	Wait       *bool      `json:"wait,omitempty"` // default true
}

// sweepRequest is the POST /v1/sweeps body.
type sweepRequest struct {
	Experiments []string   `json:"experiments"` // empty + All => every registered experiment
	All         bool       `json:"all,omitempty"`
	Options     OptionsDoc `json:"options"`
}

// Handler returns the HTTP API for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "engine": EngineVersion})
	})
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelRun)
	mux.HandleFunc("GET /v1/results/{key}", s.handleGetResult)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStreamSweep)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// jobDoc snapshots a job under the service lock.
func (s *Service) jobDoc(job *Job, includeResult bool) JobDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := JobDoc{
		Job:        job.ID,
		Experiment: job.Experiment,
		Key:        job.Key,
		State:      job.State,
		CacheHit:   job.CacheHit,
		Error:      job.Err,
	}
	if !job.Started.IsZero() && !job.Finished.IsZero() {
		doc.ElapsedMS = job.Finished.Sub(job.Started).Milliseconds()
	}
	if includeResult && job.State == JobDone {
		doc.Result = job.Result
	}
	return doc
}

func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expDoc struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
	}
	var out []expDoc
	for _, e := range s.list() {
		out = append(out, expDoc{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	byState := make(map[string]int)
	for _, j := range s.jobs {
		byState[string(j.State)]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsDoc{
		Engine:      EngineVersion,
		Cache:       s.cache.Stats(),
		Simulations: s.Simulations(),
		Workers:     s.Workers(),
		QueueLen:    s.QueueLen(),
		Jobs:        byState,
	})
}

func (s *Service) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, "missing \"experiment\"")
		return
	}
	job, err := s.Submit(req.Experiment, req.Options.Harness())
	if err != nil {
		status := http.StatusBadRequest
		// Overload conditions are retryable, a bad experiment id is not.
		if job != nil || errors.Is(err, ErrDraining) { // queue full or draining
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	if req.Wait != nil && !*req.Wait {
		writeJSON(w, http.StatusAccepted, s.jobDoc(job, false))
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return
	}
	doc := s.jobDoc(job, true)
	switch doc.State {
	case JobDone:
	case JobCanceled:
		// Client-initiated, not a server fault.
		writeJSON(w, http.StatusConflict, doc)
		return
	default:
		writeJSON(w, http.StatusInternalServerError, doc)
		return
	}
	// Serve the content-addressed bytes verbatim: identical submissions
	// get byte-identical bodies whether simulated or cached.
	if doc.CacheHit {
		w.Header().Set("X-Dtad-Cache", "hit")
	} else {
		w.Header().Set("X-Dtad-Cache", "miss")
	}
	writeRaw(w, doc.Result)
}

// writeRaw serves a cached document plus trailing newline. The bytes
// are shared with the cache (and other in-flight responses), so no
// appending in place — json.Marshal leaves spare capacity and a
// concurrent append would race on the common backing array.
func writeRaw(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	io.WriteString(w, "\n")
}

func (s *Service) handleGetRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobDoc(job, true))
}

func (s *Service) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	job, _ := s.Job(id)
	writeJSON(w, http.StatusOK, s.jobDoc(job, false))
}

func (s *Service) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	w.Header().Set("X-Dtad-Cache", "hit")
	writeRaw(w, data)
}

func (s *Service) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ids := req.Experiments
	if len(ids) == 0 && req.All {
		for _, e := range s.list() {
			ids = append(ids, e.ID)
		}
	}
	sweep, err := s.SubmitSweep(ids, req.Options.Harness())
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.sweepDoc(sweep))
}

func (s *Service) sweepDoc(sweep *Sweep) SweepDoc {
	doc := SweepDoc{Sweep: sweep.ID, Total: len(sweep.Jobs)}
	for _, j := range sweep.Jobs {
		jd := s.jobDoc(j, false)
		if jd.State.Terminal() {
			doc.Done++
		}
		doc.Jobs = append(doc.Jobs, jd)
	}
	return doc
}

func (s *Service) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sweep, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.sweepDoc(sweep))
}

// handleStreamSweep writes one NDJSON RunLine per experiment, in
// submission order, each line flushed as soon as that job completes.
func (s *Service) handleStreamSweep(w http.ResponseWriter, r *http.Request) {
	sweep, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for _, job := range sweep.Jobs {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			return
		}
		line, err := s.streamLine(job)
		if err != nil {
			line = []byte(fmt.Sprintf(`{"experiment":%q,"error":%q}`, job.Experiment, err.Error()))
		}
		w.Write(append(line, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamLine renders a terminal job as a RunLine, reusing the result
// document's tables/metrics so the stream matches `experiments -json`.
func (s *Service) streamLine(job *Job) ([]byte, error) {
	doc := s.jobDoc(job, true)
	line := RunLine{
		Experiment: doc.Experiment,
		Key:        doc.Key,
		ElapsedMS:  doc.ElapsedMS,
	}
	switch doc.State {
	case JobDone:
		var res ResultDoc
		if err := json.Unmarshal(doc.Result, &res); err != nil {
			return nil, err
		}
		line.Tables = res.Tables
		line.Notes = res.Notes
		line.Metrics = res.Metrics
	case JobCanceled:
		line.Error = "canceled"
	default:
		line.Error = doc.Error
	}
	return json.Marshal(line)
}
