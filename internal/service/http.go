package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/batch"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stats"
)

// API routes (all JSON):
//
//	GET  /healthz                 liveness probe
//	GET  /v1/experiments          registered experiments (id, title, paper)
//	GET  /v1/stats                cache counters, queue depth, job states
//	POST /v1/runs                 submit one run; waits and returns the
//	                              content-addressed result document by
//	                              default ("wait": false returns 202 +
//	                              the job immediately)
//	GET  /v1/runs/{id}            poll a job
//	DELETE /v1/runs/{id}          cancel a queued job
//	GET  /v1/results/{key}        fetch a cached result document by run key
//	POST /v1/sweeps               submit a batch; returns 202 + the sweep
//	GET  /v1/sweeps/{id}          poll a sweep
//	GET  /v1/sweeps/{id}/stream   NDJSON: one RunLine per experiment as
//	                              each completes (submission order)
//
// Synchronous run responses set X-Dtad-Cache to "hit" or "miss"; the
// body is the cached document verbatim, so resubmitting an identical
// run returns byte-identical JSON.

// JobDoc is the API representation of a job.
type JobDoc struct {
	Job        string          `json:"job"`
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	State      JobState        `json:"state"`
	CacheHit   bool            `json:"cache_hit"`
	ElapsedMS  int64           `json:"elapsed_ms"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// SweepDoc is the API representation of a sweep.
type SweepDoc struct {
	Sweep string   `json:"sweep"`
	Total int      `json:"total"`
	Done  int      `json:"done"`
	Jobs  []JobDoc `json:"jobs"`
}

// StatsDoc is the /v1/stats payload.
type StatsDoc struct {
	Engine        string     `json:"engine"`
	Cache         CacheStats `json:"cache"`
	CacheHitRatio float64    `json:"cache_hit_ratio"`
	Simulations   int64      `json:"simulations"`
	SimCycles     int64      `json:"sim_cycles"`
	// StallCycles breaks sim_cycles down by stall cause (slug -> cycles;
	// process-wide, same accounting as sim_cycles). StallPct is the share
	// of those cycles in stall buckets (MemStall/LSStall/LSEStall).
	StallCycles map[string]int64 `json:"stall_cycles"`
	StallPct    float64          `json:"stall_pct"`
	// Checkpoint reports the warm-up-prefix snapshot caches
	// (process-wide, same scope as the dtad_checkpoint_* metrics).
	Checkpoint CheckpointStats `json:"checkpoint"`
	// Batch reports the cooperative fiber schedulers (process-wide,
	// same scope as the dtad_batch_* metrics).
	Batch         BatchStats     `json:"batch"`
	Workers       int            `json:"workers"`
	BatchWidth    int            `json:"batch_width"`
	QueueLen      int            `json:"queue_len"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Jobs          map[string]int `json:"jobs"`
}

// BatchStats is the fiber-scheduler section of StatsDoc. Slices counts
// fiber advances, FiberSwitches the advances that changed fiber — the
// horizon scheduler's whole point is keeping the ratio low —
// SharedStates the BatchStates (run/program caches keyed by Quick/Seed)
// worker registries currently hold.
type BatchStats struct {
	Width         int   `json:"width"`
	SharedStates  int64 `json:"shared_states"`
	Slices        int64 `json:"slices"`
	FiberSwitches int64 `json:"fiber_switches"`
}

// CheckpointStats is the checkpoint-cache section of StatsDoc.
type CheckpointStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Bytes       int64 `json:"bytes"`
	CyclesSaved int64 `json:"cycles_saved"`
	// DiskBytes is the on-disk spill's size; 0 when no spill is
	// configured.
	DiskBytes int64 `json:"disk_bytes"`
}

// runRequest is the POST /v1/runs body.
type runRequest struct {
	Experiment string     `json:"experiment"`
	Options    OptionsDoc `json:"options"`
	Wait       *bool      `json:"wait,omitempty"` // default true
}

// sweepRequest is the POST /v1/sweeps body.
type sweepRequest struct {
	Experiments []string   `json:"experiments"` // empty + All => every registered experiment
	All         bool       `json:"all,omitempty"`
	Options     OptionsDoc `json:"options"`
}

// routePatterns lists every registered mux pattern; per-route metric
// series are pre-registered against this list so the request path never
// touches the registry lock. Keep in sync with Handler.
var routePatterns = []string{
	"GET /healthz",
	"GET /metrics",
	"GET /v1/experiments",
	"GET /v1/stats",
	"POST /v1/runs",
	"GET /v1/runs/{id}",
	"DELETE /v1/runs/{id}",
	"GET /v1/results/{key}",
	"POST /v1/sweeps",
	"GET /v1/sweeps/{id}",
	"GET /v1/sweeps/{id}/stream",
}

// Handler returns the HTTP API for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "engine": EngineVersion})
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelRun)
	mux.HandleFunc("GET /v1/results/{key}", s.handleGetResult)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStreamSweep)
	return s.instrument(mux)
}

// reqIDKey carries the middleware-assigned request id to handlers that
// want it in their own log lines.
type reqIDKey struct{}

// requestID returns the id the middleware assigned this request ("" if
// the handler runs outside the instrumented mux, as in direct tests).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the request log line.
// It forwards Flush so NDJSON sweep streaming keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with per-route metrics (request counter +
// latency histogram, series pre-registered in buildRegistry) and one
// structured log line per request carrying a request id.
func (s *Service) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		m := s.httpMetrics[pattern]
		if m == nil {
			m = s.httpMetrics[""]
		}
		reqID := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, reqID)))
		elapsed := time.Since(t0)
		m.reqs.Inc()
		m.seconds.Observe(elapsed.Seconds())
		s.log.Info("request",
			"request_id", reqID, "method", r.Method, "path", r.URL.Path,
			"route", pattern, "status", sw.status, "elapsed_ms", elapsed.Milliseconds())
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// jobDoc snapshots a job under the service lock.
func (s *Service) jobDoc(job *Job, includeResult bool) JobDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := JobDoc{
		Job:        job.ID,
		Experiment: job.Experiment,
		Key:        job.Key,
		State:      job.State,
		CacheHit:   job.CacheHit,
		Error:      job.Err,
	}
	if !job.Started.IsZero() && !job.Finished.IsZero() {
		doc.ElapsedMS = job.Finished.Sub(job.Started).Milliseconds()
	}
	if includeResult && job.State == JobDone {
		doc.Result = job.Result
	}
	return doc
}

func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expDoc struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
	}
	var out []expDoc
	for _, e := range s.list() {
		out = append(out, expDoc{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	byState := make(map[string]int)
	for _, j := range s.jobs {
		byState[string(j.State)]++
	}
	s.mu.Unlock()
	cs := s.cache.Stats()
	ratio := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		ratio = float64(cs.Hits) / float64(total)
	}
	var causes stats.CauseBreakdown
	for c := stats.Cause(0); c < stats.NumCauses; c++ {
		causes[c] = harness.CauseCycles[c].Load()
	}
	stallCycles := make(map[string]int64, stats.NumCauses)
	for c := stats.Cause(0); c < stats.NumCauses; c++ {
		stallCycles[c.Slug()] = causes[c]
	}
	ckpt := CheckpointStats{
		Hits:        harness.CheckpointHits.Load(),
		Misses:      harness.CheckpointMisses.Load(),
		Evictions:   harness.CheckpointEvictions.Load(),
		Bytes:       harness.CheckpointBytes.Load(),
		CyclesSaved: harness.CheckpointCyclesSaved.Load(),
	}
	if s.spill != nil {
		ckpt.DiskBytes = s.spill.Bytes()
	}
	writeJSON(w, http.StatusOK, StatsDoc{
		Engine:        EngineVersion,
		Cache:         cs,
		CacheHitRatio: ratio,
		Simulations:   s.Simulations(),
		SimCycles:     s.SimCycles(),
		StallCycles:   stallCycles,
		StallPct:      causes.Buckets().StallPct(),
		Checkpoint:    ckpt,
		Batch: BatchStats{
			Width:         s.BatchWidth(),
			SharedStates:  SharedStates.Load(),
			Slices:        batch.Slices.Load(),
			FiberSwitches: batch.Switches.Load(),
		},
		Workers:       s.Workers(),
		BatchWidth:    s.BatchWidth(),
		QueueLen:      s.QueueLen(),
		UptimeSeconds: s.Uptime().Seconds(),
		Jobs:          byState,
	})
}

func (s *Service) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, "missing \"experiment\"")
		return
	}
	if r.URL.Query().Get("trace") == "1" {
		s.handleTraceRun(w, r, req)
		return
	}
	if r.URL.Query().Get("profile") == "1" {
		s.handleProfileRun(w, r, req)
		return
	}
	job, err := s.Submit(req.Experiment, req.Options.Harness())
	if err != nil {
		status := http.StatusBadRequest
		// Overload conditions are retryable, a bad experiment id is not.
		if job != nil || errors.Is(err, ErrDraining) { // queue full or draining
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	s.log.Info("run submitted",
		"request_id", requestID(r), "job", job.ID, "key", job.Key, "experiment", job.Experiment)
	if req.Wait != nil && !*req.Wait {
		writeJSON(w, http.StatusAccepted, s.jobDoc(job, false))
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return
	}
	doc := s.jobDoc(job, true)
	switch doc.State {
	case JobDone:
	case JobCanceled:
		// Client-initiated, not a server fault.
		writeJSON(w, http.StatusConflict, doc)
		return
	default:
		writeJSON(w, http.StatusInternalServerError, doc)
		return
	}
	// Serve the content-addressed bytes verbatim: identical submissions
	// get byte-identical bodies whether simulated or cached.
	if doc.CacheHit {
		w.Header().Set("X-Dtad-Cache", "hit")
	} else {
		w.Header().Set("X-Dtad-Cache", "miss")
	}
	writeRaw(w, doc.Result)
}

// handleTraceRun serves POST /v1/runs?trace=1: the experiment runs
// synchronously on the request goroutine with timeline recording
// enabled and the response is a Chrome trace-event document for
// Perfetto, not a ResultDoc. The run bypasses the queue and the result
// cache — recording is a debugging path, its output is not
// content-addressed, and the simulations counter stays untouched so
// cache accounting matches the normal submission path.
func (s *Service) handleTraceRun(w http.ResponseWriter, r *http.Request, req runRequest) {
	exp, ok := s.lookup(req.Experiment)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown experiment %q", req.Experiment)
		return
	}
	opt := req.Options.Harness().WithDefaults()
	ctx := harness.NewContext(opt)
	ctx.EnableRecording(0)
	res := harness.RunOn(ctx, exp)
	if res.Err != nil {
		writeError(w, http.StatusInternalServerError, "trace run failed: %v", res.Err)
		return
	}
	recorded := ctx.Recorded()
	if len(recorded) == 0 {
		writeError(w, http.StatusInternalServerError, "experiment %q recorded no simulations", req.Experiment)
		return
	}
	runs := make([]obs.TraceRun, len(recorded))
	for i, rr := range recorded {
		runs[i] = obs.TraceRun{Label: rr.Label, SPEs: rr.SPEs, Rec: rr.Rec}
	}
	s.log.Info("trace run served",
		"request_id", requestID(r), "experiment", exp.ID, "runs", len(runs))
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteTrace(w, runs); err != nil {
		s.log.Error("trace write failed", "request_id", requestID(r), "error", err.Error())
	}
}

// handleProfileRun serves POST /v1/runs?profile=1: the experiment runs
// synchronously on the request goroutine with the guest cycle profiler
// enabled and the response is a gzipped pprof protobuf (save it and
// inspect with `go tool pprof`), not a ResultDoc. Like ?trace=1 the run
// bypasses the queue and the result cache: profiling is a debugging
// path and its output is not content-addressed. This profiles the
// simulated machine; dtad's -debug-addr serves the host process's own
// net/http/pprof.
func (s *Service) handleProfileRun(w http.ResponseWriter, r *http.Request, req runRequest) {
	exp, ok := s.lookup(req.Experiment)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown experiment %q", req.Experiment)
		return
	}
	opt := req.Options.Harness().WithDefaults()
	ctx := harness.NewContext(opt)
	ctx.EnableProfiling()
	res := harness.RunOn(ctx, exp)
	if res.Err != nil {
		writeError(w, http.StatusInternalServerError, "profile run failed: %v", res.Err)
		return
	}
	profiled := ctx.Profiled()
	if len(profiled) == 0 {
		writeError(w, http.StatusInternalServerError, "experiment %q profiled no simulations", req.Experiment)
		return
	}
	runs := make([]prof.Run, len(profiled))
	for i, pr := range profiled {
		runs[i] = prof.Run{Label: pr.Label, Prog: pr.Prog, Prof: pr.Prof}
	}
	s.log.Info("profile run served",
		"request_id", requestID(r), "experiment", exp.ID, "runs", len(runs))
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := prof.Write(w, runs); err != nil {
		s.log.Error("profile write failed", "request_id", requestID(r), "error", err.Error())
	}
}

// writeRaw serves a cached document plus trailing newline. The bytes
// are shared with the cache (and other in-flight responses), so no
// appending in place — json.Marshal leaves spare capacity and a
// concurrent append would race on the common backing array.
func writeRaw(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	io.WriteString(w, "\n")
}

func (s *Service) handleGetRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobDoc(job, true))
}

func (s *Service) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	job, _ := s.Job(id)
	writeJSON(w, http.StatusOK, s.jobDoc(job, false))
}

func (s *Service) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	w.Header().Set("X-Dtad-Cache", "hit")
	writeRaw(w, data)
}

func (s *Service) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ids := req.Experiments
	if len(ids) == 0 && req.All {
		for _, e := range s.list() {
			ids = append(ids, e.ID)
		}
	}
	sweep, err := s.SubmitSweep(ids, req.Options.Harness())
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.sweepDoc(sweep))
}

func (s *Service) sweepDoc(sweep *Sweep) SweepDoc {
	doc := SweepDoc{Sweep: sweep.ID, Total: len(sweep.Jobs)}
	for _, j := range sweep.Jobs {
		jd := s.jobDoc(j, false)
		if jd.State.Terminal() {
			doc.Done++
		}
		doc.Jobs = append(doc.Jobs, jd)
	}
	return doc
}

func (s *Service) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sweep, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.sweepDoc(sweep))
}

// handleStreamSweep writes one NDJSON RunLine per experiment, in
// submission order, each line flushed as soon as that job completes.
func (s *Service) handleStreamSweep(w http.ResponseWriter, r *http.Request) {
	sweep, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for _, job := range sweep.Jobs {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			return
		}
		line, err := s.streamLine(job)
		if err != nil {
			line = []byte(fmt.Sprintf(`{"experiment":%q,"error":%q}`, job.Experiment, err.Error()))
		}
		w.Write(append(line, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamLine renders a terminal job as a RunLine, reusing the result
// document's tables/metrics so the stream matches `experiments -json`.
func (s *Service) streamLine(job *Job) ([]byte, error) {
	doc := s.jobDoc(job, true)
	line := RunLine{
		Experiment: doc.Experiment,
		Key:        doc.Key,
		ElapsedMS:  doc.ElapsedMS,
	}
	switch doc.State {
	case JobDone:
		var res ResultDoc
		if err := json.Unmarshal(doc.Result, &res); err != nil {
			return nil, err
		}
		line.Tables = res.Tables
		line.Notes = res.Notes
		line.Metrics = res.Metrics
	case JobCanceled:
		line.Error = "canceled"
	default:
		line.Error = doc.Error
	}
	return json.Marshal(line)
}
