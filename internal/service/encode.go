package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/stats"
)

// OptionsDoc is the wire form of harness.Options, used both for request
// decoding and inside result documents. Field names are part of the API.
type OptionsDoc struct {
	SPEs    int    `json:"spes"`
	Latency int    `json:"latency"`
	Quick   bool   `json:"quick"`
	Seed    uint64 `json:"seed"`
}

// Harness converts the wire form back to harness.Options.
func (d OptionsDoc) Harness() harness.Options {
	return harness.Options{SPEs: d.SPEs, Latency: d.Latency, Quick: d.Quick, Seed: d.Seed}
}

// optionsDoc renders the canonical (defaults-applied) wire form.
func optionsDoc(opt harness.Options) OptionsDoc {
	opt = opt.WithDefaults()
	return OptionsDoc{SPEs: opt.SPEs, Latency: opt.Latency, Quick: opt.Quick, Seed: opt.Seed}
}

// ResultDoc is the content-addressed result document: the value stored
// in the cache and the body served for a completed run. It carries no
// timestamps, job ids or other per-submission state, so identical runs
// encode to identical bytes — the property the cache-hit acceptance
// check and the golden tests pin down. Metrics rely on encoding/json's
// sorted map keys for determinism.
type ResultDoc struct {
	Key        string             `json:"key"`
	Engine     string             `json:"engine"`
	Experiment string             `json:"experiment"`
	Options    OptionsDoc         `json:"options"`
	Tables     []*stats.Table     `json:"tables,omitempty"`
	Notes      []string           `json:"notes,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// EncodeResult renders the canonical result document for one completed
// experiment run.
func EncodeResult(experimentID string, opt harness.Options, out *harness.Outcome) ([]byte, error) {
	if out == nil {
		return nil, fmt.Errorf("encode %s: nil outcome", experimentID)
	}
	doc := ResultDoc{
		Key:        RunKey(experimentID, opt),
		Engine:     EngineVersion,
		Experiment: experimentID,
		Options:    optionsDoc(opt),
		Tables:     out.Tables,
		Notes:      out.Notes,
		Metrics:    out.Metrics,
	}
	return json.Marshal(doc)
}

// RunLine is one NDJSON event: a completed (or failed) experiment with
// its timing. It is emitted by `experiments -json` and by the dtad
// sweep stream, so batch and served paths produce the same shape.
type RunLine struct {
	Experiment string             `json:"experiment"`
	Key        string             `json:"key"`
	ElapsedMS  int64              `json:"elapsed_ms"`
	Error      string             `json:"error,omitempty"`
	Tables     []*stats.Table     `json:"tables,omitempty"`
	Notes      []string           `json:"notes,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// EncodeRunResult renders one harness.RunResult as an NDJSON line
// (without the trailing newline).
func EncodeRunResult(opt harness.Options, r harness.RunResult) ([]byte, error) {
	line := RunLine{
		Experiment: r.Experiment.ID,
		Key:        RunKey(r.Experiment.ID, opt),
		ElapsedMS:  r.Elapsed.Milliseconds(),
	}
	if r.Err != nil {
		line.Error = r.Err.Error()
	} else if r.Outcome != nil {
		line.Tables = r.Outcome.Tables
		line.Notes = r.Outcome.Notes
		line.Metrics = r.Outcome.Metrics
	}
	return json.Marshal(line)
}
