package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe LRU mapping run keys to encoded
// result documents. Values are content-addressed — the key is a hash of
// everything that determines the bytes — so entries never go stale
// within one EngineVersion and eviction is purely a capacity concern.
//
// Stored byte slices are shared, not copied: callers must treat both
// inserted and returned values as immutable.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	data []byte
}

// DefaultCacheSize bounds the cache when the caller does not.
const DefaultCacheSize = 256

// NewCache returns an LRU cache holding at most capacity results
// (DefaultCacheSize when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached document for key and records a hit or miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// peek is Get without touching the hit/miss counters or recency order —
// used for the worker-side double check so one submission never counts
// twice in the stats.
func (c *Cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting the least recently used entry if
// the cache is full. Re-putting an existing key refreshes its recency
// (the data is identical by content addressing, so it is not replaced).
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       len(c.entries),
		Cap:       c.cap,
	}
}
