package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
)

// JobState is a job's lifecycle stage.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one submitted experiment run. All mutable fields are guarded
// by the owning Service's mutex; Done() is closed exactly once when the
// job reaches a terminal state, after Result/Err are set, so waiters
// may read them without the lock once Done() fires.
type Job struct {
	ID         string
	Key        string
	Experiment string
	Options    harness.Options // canonical (defaults applied)

	State     JobState
	CacheHit  bool
	Err       string
	Result    json.RawMessage // content-addressed ResultDoc bytes when done
	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	done chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Sweep groups the jobs of one batch submission.
type Sweep struct {
	ID        string
	Jobs      []*Job
	Submitted time.Time
}

// Config sizes a Service.
type Config struct {
	Workers    int // simulation worker pool; <= 0 selects runtime.NumCPU()
	CacheSize  int // max cached result documents; <= 0 selects DefaultCacheSize
	QueueDepth int // max jobs waiting for a worker; <= 0 selects 1024

	// BatchWidth > 1 makes each worker interleave up to that many jobs
	// cooperatively: simulations advance in bounded slices (see
	// harness.Batched), so a worker keeps several jobs in flight and
	// reuses one machine pool across them. Results are byte-identical to
	// the run-to-completion default (<= 1).
	BatchWidth int

	// CheckpointDir, when set, spills harness checkpoint snapshots
	// (shared warm-up prefixes; see harness.CheckpointCache) to disk so
	// they survive restarts. CheckpointDiskBytes bounds the directory,
	// oldest-by-mtime evicted first (<= 0 selects
	// DefaultCheckpointDiskBytes). Empty disables the spill; the
	// in-memory checkpoint caches work either way.
	CheckpointDir       string
	CheckpointDiskBytes int64

	// JobRetention bounds how many terminal jobs stay pollable; the
	// oldest are forgotten first (<= 0 selects 4096). Live jobs are
	// already bounded by QueueDepth + Workers, so this caps the job
	// table — a long-running daemon must not grow per request served.
	JobRetention int
	// SweepRetention bounds the sweep table the same way, oldest first
	// (<= 0 selects 512).
	SweepRetention int

	// Lookup resolves experiment ids and List enumerates them; nil
	// selects harness.ByID / harness.All. Tests inject stub experiments
	// (slow, failing) through these; they must agree with each other.
	Lookup func(id string) (*harness.Experiment, bool)
	List   func() []*harness.Experiment

	// Logger receives structured job-lifecycle and request lines; nil
	// discards them (tests stay quiet by default).
	Logger *slog.Logger
}

// Service owns the job queue, worker pool and result cache. Workers run
// each job through the same per-experiment isolation as
// harness.Parallel (fresh Context, panic containment), so every
// simulation stays single-threaded and deterministic; only the fan-out
// across jobs is concurrent.
type Service struct {
	cfg     Config
	cache   *Cache
	lookup  func(id string) (*harness.Experiment, bool)
	list    func() []*harness.Experiment
	log     *slog.Logger
	reg     *obs.Registry
	started time.Time
	// httpMetrics maps mux patterns to pre-registered series; "" is the
	// catch-all for unmatched requests. Built once in buildRegistry.
	httpMetrics map[string]*routeMetrics
	// spill is the on-disk checkpoint store shared by every worker's
	// checkpoint cache; nil when Config.CheckpointDir is unset.
	spill *DiskSpill

	mu          sync.Mutex
	jobs        map[string]*Job
	sweeps      map[string]*Sweep
	inflight    map[string]*Job // run key -> non-terminal job, for coalescing
	retired     []string        // terminal job ids, oldest first, for retention pruning
	sweepOrder  []string        // sweep ids, oldest first
	jobSeq      int
	sweepSeq    int
	closed      bool
	queue       chan *Job
	wg          sync.WaitGroup
	simulated   atomic.Int64 // simulations actually executed (≠ submissions served)
	simCycles   atomic.Int64 // cumulative simulated cycles across executed jobs
	busyWorkers atomic.Int64
	reqSeq      atomic.Int64 // request-id source for the HTTP middleware
}

// New starts a Service with cfg's worker pool already running.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 4096
	}
	if cfg.SweepRetention <= 0 {
		cfg.SweepRetention = 512
	}
	if cfg.Lookup == nil {
		cfg.Lookup = harness.ByID
	}
	if cfg.List == nil {
		cfg.List = harness.All
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Service{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheSize),
		lookup:   cfg.Lookup,
		list:     cfg.List,
		log:      logger,
		started:  time.Now(),
		jobs:     make(map[string]*Job),
		sweeps:   make(map[string]*Sweep),
		inflight: make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
	}
	if cfg.CheckpointDir != "" {
		spill, err := NewDiskSpill(cfg.CheckpointDir, cfg.CheckpointDiskBytes)
		if err != nil {
			// The spill is an optimisation; run memory-only rather than
			// refuse to start.
			logger.Error("checkpoint spill disabled", "dir", cfg.CheckpointDir, "err", err)
		} else {
			s.spill = spill
		}
	}
	s.buildRegistry()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Cache exposes the result cache (for stats and direct key lookups).
func (s *Service) Cache() *Cache { return s.cache }

// Simulations returns how many simulations have actually executed —
// cache-served submissions do not move it.
func (s *Service) Simulations() int64 { return s.simulated.Load() }

// SimCycles returns the cumulative simulated cycles across all
// executed jobs (cache-served submissions contribute nothing).
func (s *Service) SimCycles() int64 { return s.simCycles.Load() }

// Uptime returns how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.started) }

// BatchWidth returns the configured cooperative batch width.
func (s *Service) BatchWidth() int { return s.cfg.BatchWidth }

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueLen returns the number of jobs waiting for a worker.
func (s *Service) QueueLen() int { return len(s.queue) }

// ErrDraining rejects submissions after Close has been called.
var ErrDraining = errors.New("service is draining")

// Submit enqueues one experiment run. If the run key is already cached
// the returned job is terminal immediately (State JobDone, CacheHit
// true) and no simulation is scheduled. If the same key is already
// queued or running, the existing job is returned instead of scheduling
// a duplicate — concurrent identical submissions coalesce onto one
// simulation (canceling that job cancels it for every submitter).
func (s *Service) Submit(experimentID string, opt harness.Options) (*Job, error) {
	exp, ok := s.lookup(experimentID)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", experimentID)
	}
	opt = opt.WithDefaults()
	key := RunKey(exp.ID, opt)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrDraining
	}
	if pending, ok := s.inflight[key]; ok {
		return pending, nil
	}
	s.jobSeq++
	job := &Job{
		ID:         fmt.Sprintf("job-%06d", s.jobSeq),
		Key:        key,
		Experiment: exp.ID,
		Options:    opt,
		State:      JobQueued,
		Submitted:  time.Now(),
		done:       make(chan struct{}),
	}
	s.jobs[job.ID] = job

	if data, hit := s.cache.Get(key); hit {
		job.State = JobDone
		job.CacheHit = true
		job.Result = data
		job.Finished = job.Submitted
		s.retireLocked(job)
		close(job.done)
		s.log.Info("job cached", "job", job.ID, "key", key, "experiment", exp.ID)
		return job, nil
	}
	select {
	case s.queue <- job:
		s.inflight[key] = job
		s.log.Info("job queued", "job", job.ID, "key", key, "experiment", exp.ID)
	default:
		job.State = JobFailed
		job.Err = fmt.Sprintf("queue full (depth %d)", s.cfg.QueueDepth)
		job.Finished = time.Now()
		s.retireLocked(job)
		close(job.done)
		return job, fmt.Errorf("queue full (depth %d)", s.cfg.QueueDepth)
	}
	return job, nil
}

// retireLocked records a terminal job for retention pruning and forgets
// the oldest terminal jobs beyond the configured bound. Live jobs are
// never pruned (only terminal ids enter the list), so polling a job id
// can 404 only after JobRetention newer jobs finished. Callers hold
// s.mu.
func (s *Service) retireLocked(job *Job) {
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	s.retired = append(s.retired, job.ID)
	for len(s.retired) > s.cfg.JobRetention {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// SubmitSweep enqueues a batch of experiments as one sweep. All ids are
// validated before any job is enqueued, so a typo rejects the whole
// sweep instead of half-submitting it.
func (s *Service) SubmitSweep(experimentIDs []string, opt harness.Options) (*Sweep, error) {
	if len(experimentIDs) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	for _, id := range experimentIDs {
		if _, ok := s.lookup(id); !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
	}
	sweep := &Sweep{Submitted: time.Now()}
	for _, id := range experimentIDs {
		job, err := s.Submit(id, opt)
		if err != nil && job == nil {
			return nil, err
		}
		// A queue-full job is still part of the sweep, terminal with an
		// error, so the caller sees exactly what was dropped.
		sweep.Jobs = append(sweep.Jobs, job)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepSeq++
	sweep.ID = fmt.Sprintf("sweep-%06d", s.sweepSeq)
	s.sweeps[sweep.ID] = sweep
	s.sweepOrder = append(s.sweepOrder, sweep.ID)
	for len(s.sweepOrder) > s.cfg.SweepRetention {
		delete(s.sweeps, s.sweepOrder[0])
		s.sweepOrder = s.sweepOrder[1:]
	}
	return sweep, nil
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Sweep looks up a sweep by id.
func (s *Service) Sweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// Cancel cancels a queued job. Running simulations are single-threaded
// compute with no preemption points, so only jobs still waiting for a
// worker can be canceled.
func (s *Service) Cancel(jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[jobID]
	if !ok {
		return fmt.Errorf("unknown job %q", jobID)
	}
	if job.State != JobQueued {
		return fmt.Errorf("job %s is %s, only queued jobs can be canceled", jobID, job.State)
	}
	job.State = JobCanceled
	job.Finished = time.Now()
	s.retireLocked(job)
	close(job.done)
	return nil
}

// Close drains the service: no new submissions are accepted, queued
// jobs still run to completion, and Close returns once every worker
// has exited. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// worker executes queued jobs until the queue closes. Each worker owns
// a registry of shared BatchStates keyed by the program-shaping Options
// fields (Quick, Seed): every job joining an existing state reuses its
// machine pool, program cache and — decisively — its RUN CACHE, so a
// sweep whose jobs overlap in simulations computes each one once per
// worker instead of once per job. With BatchWidth > 1 the worker
// interleaves that many jobs cooperatively under the horizon-aware
// scheduler (batch.RunScheduled); the fibers never execute
// simultaneously, so sharing stays lock-free, and a fiber wanting a
// simulation a sibling is computing parks on the scheduler's waiting
// list instead of recomputing it (see harness.Context).
func (s *Service) worker() {
	defer s.wg.Done()
	// One checkpoint cache per worker, shared across all its states, so
	// a sweep's variants fork from each other's warm-up prefixes even
	// across Quick/Seed boundaries (snapshot keys are content-addressed);
	// the spill underneath is process-wide and survives restarts.
	ckpts := harness.NewCheckpointCache(0)
	if s.spill != nil {
		ckpts.SetSpill(s.spill)
	}
	states := newStateRegistry(s.cfg.BatchWidth, ckpts)
	if width := s.cfg.BatchWidth; width > 1 {
		batch.RunScheduled(width, batch.KeyedFeedChan(s.queue, func(job *Job) batch.KeyedTask {
			return harness.SchedTask(func(sched func(next sim.Cycle) sim.Cycle) {
				state := states.acquire(job.Options)
				defer states.release(job.Options)
				s.runJob(job, func(opt harness.Options) *harness.Context {
					return state.ContextFor(opt, sched)
				})
			})
		}))
		return
	}
	for job := range s.queue {
		state := states.acquire(job.Options)
		s.runJob(job, func(opt harness.Options) *harness.Context {
			return state.ContextFor(opt, nil)
		})
		states.release(job.Options)
	}
}

// runJob executes one job end to end; mkCtx builds the job's run
// context (plain or batched, always over the worker's machine pool).
// The simulation itself goes through harness.RunOn — the same
// containment primitive as CLI sweeps — so error returns and panics
// surface exactly as they do there.
func (s *Service) runJob(job *Job, mkCtx func(harness.Options) *harness.Context) {
	s.mu.Lock()
	if job.State != JobQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	job.State = JobRunning
	job.Started = time.Now()
	s.mu.Unlock()

	finish := func(mutate func(*Job)) {
		s.mu.Lock()
		mutate(job)
		job.Finished = time.Now()
		s.retireLocked(job)
		s.mu.Unlock()
		close(job.done)
	}

	// Another worker may have computed this key while the job queued.
	// peek, not Get: the submission already recorded its cache miss.
	if data, hit := s.cache.peek(job.Key); hit {
		finish(func(j *Job) {
			j.State = JobDone
			j.CacheHit = true
			j.Result = data
		})
		return
	}

	exp, ok := s.lookup(job.Experiment)
	if !ok {
		finish(func(j *Job) {
			j.State = JobFailed
			j.Err = fmt.Sprintf("experiment %q disappeared", j.Experiment)
		})
		return
	}
	s.simulated.Add(1)
	s.busyWorkers.Add(1)
	res := harness.RunOn(mkCtx(job.Options), exp)
	s.busyWorkers.Add(-1)
	s.simCycles.Add(res.SimCycles)
	if res.Err != nil {
		s.log.Error("job failed", "job", job.ID, "key", job.Key, "experiment", job.Experiment, "error", res.Err.Error())
		finish(func(j *Job) {
			j.State = JobFailed
			j.Err = res.Err.Error()
		})
		return
	}
	data, err := EncodeResult(job.Experiment, job.Options, res.Outcome)
	if err != nil {
		finish(func(j *Job) {
			j.State = JobFailed
			j.Err = err.Error()
		})
		return
	}
	s.cache.Put(job.Key, data)
	finish(func(j *Job) {
		j.State = JobDone
		j.Result = data
	})
	s.log.Info("job done", "job", job.ID, "key", job.Key, "experiment", job.Experiment,
		"sim_cycles", res.SimCycles, "elapsed_ms", time.Since(job.Started).Milliseconds())
}
