package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", []byte("A"))
	data, ok := c.Get("a")
	if !ok || string(data) != "A" {
		t.Fatalf("Get(a) = %q, %v", data, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 || st.Cap != 4 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / len 1 / cap 4", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a") // a is now most recently used
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, len 2", st)
	}
}

// TestCachePeekDoesNotCount: the worker-side double check must not move
// counters or recency.
func TestCachePeekDoesNotCount(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	before := c.Stats()
	if _, ok := c.peek("a"); !ok {
		t.Fatal("peek(a) missed")
	}
	if _, ok := c.peek("nope"); ok {
		t.Fatal("peek(nope) hit")
	}
	if after := c.Stats(); after != before {
		t.Fatalf("peek moved counters: %+v -> %+v", before, after)
	}
	// a's recency was untouched by peek, so it is still the LRU victim.
	c.Put("c", []byte("C"))
	if _, ok := c.peek("a"); ok {
		t.Fatal("peek should not have refreshed a's recency")
	}
}

func TestCacheRePutRefreshesRecency(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("A")) // refresh, not replace
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.peek("a"); !ok {
		t.Fatal("re-put a was evicted")
	}
	if _, ok := c.peek("b"); ok {
		t.Fatal("b survived eviction")
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if got := NewCache(0).Stats().Cap; got != DefaultCacheSize {
		t.Fatalf("default cap = %d, want %d", got, DefaultCacheSize)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run with
// -race this is the data-race proof for the shared result store.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.Put(key, []byte(key))
				c.Get(key)
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Len > 8 {
		t.Fatalf("cache overflowed its bound: %+v", st)
	}
}
