package service

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	statspkg "repro/internal/stats"
)

// TestMetricsEndpoint scrapes /metrics after one simulated and one
// cache-served run and checks the Prometheus exposition carries the key
// families with the right values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// mmul-pf runs a real simulation (table-style experiments only print
	// configuration), so sim-cycle accounting has something to count.
	req := `{"experiment":"mmul-pf","options":{"quick":true,"spes":2,"latency":60}}`
	readAll(t, postJSON(t, ts.URL+"/v1/runs", req))
	readAll(t, postJSON(t, ts.URL+"/v1/runs", req)) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE dtad_simulations_total counter",
		"dtad_simulations_total 1",
		"dtad_cache_hits_total 1",
		"dtad_cache_misses_total 1",
		"# TYPE dtad_sim_cycles_total counter",
		"# TYPE dtad_sim_stall_cycles_total counter",
		`cause="blocking_read"`,
		`cause="dma_program"`,
		"# TYPE dtad_uptime_seconds gauge",
		"dtad_queue_depth 0",
		`dtad_jobs{state="done"} 2`,
		"# TYPE dtad_http_request_seconds histogram",
		`dtad_http_requests_total{path="POST /v1/runs"} 2`,
		`dtad_http_request_seconds_bucket{path="POST /v1/runs",le="+Inf"} 2`,
		"# TYPE dtad_pool_gets_total counter",
		"# TYPE dtad_batch_slices_total counter",
		"# TYPE dtad_harness_runs_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// sim cycles must be positive after a real simulation.
	if strings.Contains(body, "dtad_sim_cycles_total 0\n") {
		t.Fatalf("sim cycles not accumulated:\n%s", body)
	}
}

// TestStatsEnriched checks the satellite /v1/stats fields: uptime,
// batch width, cumulative sim cycles and the derived cache hit ratio.
func TestStatsEnriched(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWidth: 3})
	req := `{"experiment":"mmul-pf","options":{"quick":true,"spes":2,"latency":60}}`
	readAll(t, postJSON(t, ts.URL+"/v1/runs", req))
	readAll(t, postJSON(t, ts.URL+"/v1/runs", req))

	var stats StatsDoc
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, resp), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.BatchWidth != 3 {
		t.Fatalf("batch_width = %d, want 3", stats.BatchWidth)
	}
	if stats.SimCycles <= 0 {
		t.Fatalf("sim_cycles = %d, want > 0", stats.SimCycles)
	}
	if stats.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", stats.UptimeSeconds)
	}
	if stats.CacheHitRatio != 0.5 {
		t.Fatalf("cache_hit_ratio = %v, want 0.5 (1 hit, 1 miss)", stats.CacheHitRatio)
	}
	if stats.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1", stats.Simulations)
	}
	// Per-cause cycle totals: every cause slug present, and the executed
	// simulation must have charged at least the issue cause (counters are
	// process-wide, so assert presence and floor rather than exact values).
	if len(stats.StallCycles) != int(statspkg.NumCauses) {
		t.Fatalf("stall_cycles has %d entries, want %d: %v",
			len(stats.StallCycles), statspkg.NumCauses, stats.StallCycles)
	}
	if stats.StallCycles["issue"] <= 0 {
		t.Fatalf("stall_cycles[issue] = %d, want > 0", stats.StallCycles["issue"])
	}
}

// TestProfileRunEndpoint exercises POST /v1/runs?profile=1: the
// response is a gzipped pprof protobuf of the guest profile, the run
// bypasses the cache, and the simulations counter stays untouched.
func TestProfileRunEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"experiment":"mmul-pf","options":{"quick":true,"spes":2,"latency":60}}`
	resp := postJSON(t, ts.URL+"/v1/runs?profile=1", req)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile run: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("profile body is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	// The string table carries the symbolised names, so the simulated
	// program and the sample-type slugs must appear in the raw protobuf.
	for _, want := range []string{"cycles", "blocking_read", "mmul"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("profile missing %q", want)
		}
	}
	if n := s.Simulations(); n != 0 {
		t.Fatalf("profile run bumped the simulations counter to %d", n)
	}
	if cs := s.Cache().Stats(); cs.Len != 0 {
		t.Fatalf("profile run populated the result cache (%d entries)", cs.Len)
	}

	bad := postJSON(t, ts.URL+"/v1/runs?profile=1", `{"experiment":"nope"}`)
	badBody := readAll(t, bad)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad profile run: %d %s", bad.StatusCode, badBody)
	}
}

// TestTraceRunEndpoint exercises POST /v1/runs?trace=1: the response is
// a Chrome trace-event document, the run bypasses the cache, and the
// simulations counter stays untouched.
func TestTraceRunEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"experiment":"mmul-pf","options":{"quick":true,"spes":2,"latency":60}}`
	resp := postJSON(t, ts.URL+"/v1/runs?trace=1", req)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace run: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace body is not valid trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	sawSPU, sawDMA := false, false
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			switch e.Args["name"] {
			case "SPU":
				sawSPU = true
			case "MFC DMA":
				sawDMA = true
			}
		}
	}
	if !sawSPU || !sawDMA {
		t.Fatalf("trace lacks SPU/DMA tracks (spu=%v dma=%v)", sawSPU, sawDMA)
	}
	if n := s.Simulations(); n != 0 {
		t.Fatalf("trace run bumped the simulations counter to %d", n)
	}
	if cs := s.Cache().Stats(); cs.Len != 0 {
		t.Fatalf("trace run populated the result cache (%d entries)", cs.Len)
	}

	// Unknown experiments are rejected the same way as the normal path.
	bad := postJSON(t, ts.URL+"/v1/runs?trace=1", `{"experiment":"nope"}`)
	badBody := readAll(t, bad)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad trace run: %d %s", bad.StatusCode, badBody)
	}
}

// TestMetricsRouteLabelsStable: repeated Handler calls must not
// duplicate the pre-registered per-route series.
func TestMetricsRouteLabelsStable(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_ = s.Handler() // a second handler over the same service
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if n := bytes.Count(body, []byte(`dtad_http_requests_total{path="GET /metrics"}`)); n != 1 {
		t.Fatalf("GET /metrics series appears %d times", n)
	}
}
