package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/stats"
)

// fixedOutcome builds a deterministic outcome for golden tests.
func fixedOutcome() *harness.Outcome {
	tbl := &stats.Table{
		Title:   "golden table",
		Headers: []string{"benchmark", "cycles"},
	}
	tbl.AddRow("mmul(32)", "12345")
	tbl.AddRow("zoom(16)", "678")
	return &harness.Outcome{
		Tables: []*stats.Table{tbl},
		Notes:  []string{"a note"},
		// Two keys deliberately out of insertion order: encoding/json
		// sorts map keys, which is what makes the document deterministic.
		Metrics: map[string]float64{"zeta": 2.5, "alpha": 1},
	}
}

// TestEncodeResultGolden pins the exact wire bytes of a result
// document. If this breaks, the cached-result format changed: decide
// whether that is intended, and if so update the golden AND bump
// EngineVersion so stale cache entries cannot be served.
func TestEncodeResultGolden(t *testing.T) {
	opt := harness.Options{Quick: true} // normalises to 8/150/quick/42
	got, err := EncodeResult("goldexp", opt, fixedOutcome())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"key":"` + RunKey("goldexp", opt) + `","engine":"` + EngineVersion + `",` +
		`"experiment":"goldexp","options":{"spes":8,"latency":150,"quick":true,"seed":42},` +
		`"tables":[{"title":"golden table","headers":["benchmark","cycles"],` +
		`"rows":[["mmul(32)","12345"],["zoom(16)","678"]]}],` +
		`"notes":["a note"],"metrics":{"alpha":1,"zeta":2.5}}`
	if string(got) != want {
		t.Fatalf("result document changed:\n got  %s\n want %s", got, want)
	}
}

// TestEncodeResultDeterministic: repeated encodes are byte-identical —
// the property that makes the documents content-addressable.
func TestEncodeResultDeterministic(t *testing.T) {
	opt := harness.Options{Quick: true}
	a, err := EncodeResult("goldexp", opt, fixedOutcome())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult("goldexp", opt, fixedOutcome())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encodes diverge:\n%s\n%s", a, b)
	}
}

func TestEncodeResultNilOutcome(t *testing.T) {
	if _, err := EncodeResult("x", harness.Options{}, nil); err == nil {
		t.Fatal("nil outcome encoded without error")
	}
}

// TestEncodeRunResultGolden pins the NDJSON line shape shared by
// `experiments -json` and the dtad sweep stream.
func TestEncodeRunResultGolden(t *testing.T) {
	opt := harness.Options{Quick: true}
	exp := &harness.Experiment{ID: "goldexp"}
	line, err := EncodeRunResult(opt, harness.RunResult{
		Experiment: exp,
		Outcome:    fixedOutcome(),
		Elapsed:    1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"experiment":"goldexp","key":"` + RunKey("goldexp", opt) + `","elapsed_ms":1500,` +
		`"tables":[{"title":"golden table","headers":["benchmark","cycles"],` +
		`"rows":[["mmul(32)","12345"],["zoom(16)","678"]]}],` +
		`"notes":["a note"],"metrics":{"alpha":1,"zeta":2.5}}`
	if string(line) != want {
		t.Fatalf("run line changed:\n got  %s\n want %s", line, want)
	}
}

func TestEncodeRunResultError(t *testing.T) {
	exp := &harness.Experiment{ID: "bad"}
	line, err := EncodeRunResult(harness.Options{}, harness.RunResult{
		Experiment: exp,
		Err:        errors.New("kaboom"),
		Elapsed:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded RunLine
	if err := json.Unmarshal(line, &decoded); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	if decoded.Error != "kaboom" || decoded.Experiment != "bad" || decoded.ElapsedMS != 2 {
		t.Fatalf("error line = %+v", decoded)
	}
	if len(decoded.Tables) != 0 || decoded.Metrics != nil {
		t.Fatalf("error line carries result payload: %s", line)
	}
}

// TestEncodeRealExperiment runs a real (cheap) experiment through the
// encoder and round-trips it, tying the wire format to live outcomes.
func TestEncodeRealExperiment(t *testing.T) {
	exp, ok := harness.ByID("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	opt := harness.Options{Quick: true}
	res := harness.Serial(opt, []*harness.Experiment{exp})[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	data, err := EncodeResult("table2", opt, res.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	var doc ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Key != RunKey("table2", opt) || doc.Engine != EngineVersion {
		t.Fatalf("doc header wrong: %+v", doc)
	}
	if doc.Metrics["mem_latency"] != 150 {
		t.Fatalf("metrics lost in encoding: %v", doc.Metrics)
	}
	if len(doc.Tables) != 1 || doc.Tables[0].Title == "" {
		t.Fatalf("tables lost in encoding: %s", data)
	}
	// The rendered table must survive the round trip, so served results
	// can be re-rendered client-side exactly as the CLI prints them.
	var orig, roundtrip bytes.Buffer
	res.Outcome.Tables[0].Render(&orig)
	doc.Tables[0].Render(&roundtrip)
	if orig.String() != roundtrip.String() {
		t.Fatalf("table render diverges after round trip:\n%s\nvs\n%s", orig.String(), roundtrip.String())
	}
}
