// Package service turns the experiment harness into a long-running
// simulation service: canonical run keys make results content-
// addressable, a bounded LRU cache serves repeated runs without
// re-simulating, a worker-pool job queue batches submissions with the
// same isolation guarantees as harness.Parallel, and an HTTP/JSON API
// (cmd/dtad) exposes submit/poll/stream over all of it.
//
// The whole design leans on one property PR 1 established and the
// harness test suite enforces: simulations are byte-for-byte
// deterministic. Identical inputs produce identical outcomes on every
// run and every machine, so a hash of the inputs is a faithful address
// for the output.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/synth"
)

// EngineVersion names the simulation semantics run keys are computed
// under. Bump it whenever a change to the engine, workloads, ISA or
// harness can alter any experiment's cycle counts or stats — old cached
// results then stop matching new submissions instead of serving stale
// numbers. The current value corresponds to the guest cycle profiler PR:
// cycle counts are untouched (profiling is proven non-perturbing), but
// experiment outcomes gained stall_pct and per-cause cycle metrics, so
// cached docs from celldta/2 would be missing them.
const EngineVersion = "celldta/3"

// keySchema versions the hash pre-image layout itself, independently of
// engine semantics.
const keySchema = "dtad-key-v1"

// RunKey returns the canonical content address for one experiment run:
// a SHA-256 over (key schema, engine version, experiment ID, normalised
// harness.Options). Options are normalised through WithDefaults first,
// so Options{} and the explicit paper operating point hash identically.
//
// Workload parameters (problem sizes, worker counts, input seeds) are
// derived deterministically inside the harness from SPEs/Quick/Seed,
// so hashing the normalised Options covers them; if workload derivation
// ever grows an input outside Options, it must be added here (or
// EngineVersion bumped).
func RunKey(experimentID string, opt harness.Options) string {
	return runKey(experimentID, opt, generatorVersionFor(experimentID))
}

// generatorVersionFor returns the extra version component an experiment
// depends on beyond the engine: synth/* experiments run generated
// programs, so their results change whenever the generator does — their
// keys fold in synth.GenVersion. All other experiments depend only on
// the engine, and their pre-images (and therefore keys) are unchanged.
func generatorVersionFor(experimentID string) string {
	if strings.HasPrefix(experimentID, "synth/") {
		return synth.GenVersion
	}
	return ""
}

// runKey computes the canonical key with an explicit generator-version
// component (empty = none; the pre-image is then identical to the
// pre-synth schema, keeping all existing keys stable).
func runKey(experimentID string, opt harness.Options, genVersion string) string {
	opt = opt.WithDefaults()
	pre := fmt.Sprintf("%s|engine=%s|experiment=%s|spes=%d|latency=%d|quick=%t|seed=%d",
		keySchema, EngineVersion, experimentID, opt.SPEs, opt.Latency, opt.Quick, opt.Seed)
	if genVersion != "" {
		pre += "|synthgen=" + genVersion
	}
	sum := sha256.Sum256([]byte(pre))
	return hex.EncodeToString(sum[:])
}
