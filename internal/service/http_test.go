package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		Experiments []struct{ ID, Title, Paper string } `json:"experiments"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, e := range doc.Experiments {
		ids[e.ID] = true
	}
	for _, want := range []string{"table2", "fig5a", "fig7", "lat1"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from listing: %s", want, body)
		}
	}
}

// TestRunSubmitTwiceIdenticalBodies is the end-to-end acceptance check:
// the same quick experiment POSTed twice returns byte-identical JSON,
// the second from cache with no second simulation.
func TestRunSubmitTwiceIdenticalBodies(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"experiment":"table2","options":{"quick":true}}`

	first := postJSON(t, ts.URL+"/v1/runs", req)
	firstBody := readAll(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", first.StatusCode, firstBody)
	}
	if got := first.Header.Get("X-Dtad-Cache"); got != "miss" {
		t.Fatalf("first run cache header = %q, want miss", got)
	}

	second := postJSON(t, ts.URL+"/v1/runs", req)
	secondBody := readAll(t, second)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", second.StatusCode, secondBody)
	}
	if got := second.Header.Get("X-Dtad-Cache"); got != "hit" {
		t.Fatalf("second run cache header = %q, want hit", got)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("bodies differ:\n%s\n%s", firstBody, secondBody)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("ran %d simulations, want 1", n)
	}

	// The stats endpoint exposes the hit counter.
	var stats StatsDoc
	if err := json.Unmarshal(readAll(t, postGet(t, ts.URL+"/v1/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits < 1 || stats.Simulations != 1 {
		t.Fatalf("stats = %+v, want >=1 cache hit and 1 simulation", stats)
	}

	// And the document is directly addressable by its key.
	var doc ResultDoc
	if err := json.Unmarshal(firstBody, &doc); err != nil {
		t.Fatal(err)
	}
	byKey := postGet(t, ts.URL+"/v1/results/"+doc.Key)
	if byKey.StatusCode != http.StatusOK {
		t.Fatalf("result by key: %d", byKey.StatusCode)
	}
	if !bytes.Equal(readAll(t, byKey), firstBody) {
		t.Fatal("result-by-key bytes differ from run response")
	}
}

func postGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRunAsyncPoll covers wait:false -> 202 -> poll to completion.
func TestRunAsyncPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/runs", `{"experiment":"table3","options":{"quick":true},"wait":false}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var job JobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Job == "" {
		t.Fatalf("no job id in %s", body)
	}
	for i := 0; i < 200; i++ {
		poll := postGet(t, ts.URL+"/v1/runs/"+job.Job)
		if err := json.Unmarshal(readAll(t, poll), &job); err != nil {
			t.Fatal(err)
		}
		if job.State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != JobDone || len(job.Result) == 0 {
		t.Fatalf("polled job = %+v", job)
	}
}

func TestRunBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{"experiment":"no-such-experiment"}`, http.StatusBadRequest},
		{`{"options":{"quick":true}}`, http.StatusBadRequest},
		{`{not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/runs", c.body)
		readAll(t, resp)
		if resp.StatusCode != c.want {
			t.Fatalf("body %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	if resp := postGet(t, ts.URL+"/v1/runs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
	if resp := postGet(t, ts.URL+"/v1/results/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %d", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
}

// TestSweepStream submits a sweep of cheap experiments and reads the
// NDJSON stream: one line per experiment, in submission order, each a
// valid RunLine.
func TestSweepStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", `{"experiments":["table2","table3","table4"],"options":{"quick":true}}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d %s", resp.StatusCode, body)
	}
	var sweep SweepDoc
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Total != 3 {
		t.Fatalf("sweep = %+v", sweep)
	}

	stream := postGet(t, ts.URL+"/v1/sweeps/"+sweep.Sweep+"/stream")
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var got []string
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var line RunLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("experiment %s failed: %s", line.Experiment, line.Error)
		}
		got = append(got, line.Experiment)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"table2", "table3", "table4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stream order = %v, want %v", got, want)
	}

	// Poll endpoint agrees once everything is done.
	var polled SweepDoc
	if err := json.Unmarshal(readAll(t, postGet(t, ts.URL+"/v1/sweeps/"+sweep.Sweep)), &polled); err != nil {
		t.Fatal(err)
	}
	if polled.Done != 3 {
		t.Fatalf("sweep poll = %+v", polled)
	}
}

// TestSweepAllAndCancel submits the whole registry ("all": true) on one
// worker, then cancels everything still queued over the DELETE
// endpoint. This exercises the expansion, the cancel path, and keeps
// the drain fast — only the handful of jobs the worker already picked
// up actually simulate.
func TestSweepAllAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/sweeps", `{"all":true,"options":{"quick":true}}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep all: %d %s", resp.StatusCode, body)
	}
	var sweep SweepDoc
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Total < 10 {
		t.Fatalf("all-sweep only %d jobs", sweep.Total)
	}

	canceled := 0
	for _, jd := range sweep.Jobs {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+jd.Job, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		switch resp.StatusCode {
		case http.StatusOK:
			canceled++
		case http.StatusConflict: // already running or done — fine
		default:
			t.Fatalf("cancel %s: %d", jd.Job, resp.StatusCode)
		}
	}
	if canceled == 0 {
		// The whole registry can legitimately drain before the cancel
		// loop starts (quick mode on a fast machine); only complain when
		// jobs were still cancelable and none canceled.
		var polled SweepDoc
		if err := json.Unmarshal(readAll(t, postGet(t, ts.URL+"/v1/sweeps/"+sweep.Sweep)), &polled); err != nil {
			t.Fatal(err)
		}
		if polled.Done != polled.Total {
			t.Fatalf("no job canceled yet sweep not drained (%d/%d done)", polled.Done, polled.Total)
		}
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		var polled SweepDoc
		if err := json.Unmarshal(readAll(t, postGet(t, ts.URL+"/v1/sweeps/"+sweep.Sweep)), &polled); err != nil {
			t.Fatal(err)
		}
		if polled.Done == polled.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never drained: %d/%d done", polled.Done, polled.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
