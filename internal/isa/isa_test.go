package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEveryOpcodeHasMetadata(t *testing.T) {
	for op := Op(0); op < Op(OpCount); op++ {
		info, ok := Lookup(op)
		if !ok {
			t.Fatalf("opcode %d has no metadata", op)
		}
		if info.Name == "" {
			t.Fatalf("opcode %d has empty name", op)
		}
		if info.Unit == UnitNone {
			t.Fatalf("opcode %s has no functional unit", info.Name)
		}
		back, ok := ByName(info.Name)
		if !ok || back != op {
			t.Fatalf("ByName(%q) = %v, %v; want %v", info.Name, back, ok, op)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup(Op(250)); ok {
		t.Fatal("Lookup accepted an undefined opcode")
	}
	if got := Op(250).String(); !strings.Contains(got, "250") {
		t.Fatalf("String for unknown op = %q", got)
	}
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	for op := Op(0); op < Op(OpCount); op++ {
		ins := Instruction{Op: op, Rd: 3, Ra: 7, Rb: 11, Imm: -12345}
		got := Decode(ins.Encode())
		if got != ins {
			t.Fatalf("round trip failed for %s: %+v != %+v", op, got, ins)
		}
	}
}

// Property: Decode(Encode(x)) == x for arbitrary field values, including
// ill-formed instructions (encoding is total).
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(op, rd, ra, rb uint8, imm int32) bool {
		ins := Instruction{Op: Op(op), Rd: rd, Ra: ra, Rb: rb, Imm: imm}
		return Decode(ins.Encode()) == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	cases := []Instruction{
		{Op: NOP},
		{Op: MOVI, Rd: 5, Imm: -7},
		{Op: ADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: ADDI, Rd: 1, Ra: 2, Imm: 100},
		{Op: BEQ, Ra: 1, Rb: 2, Imm: 12},
		{Op: JMP, Imm: 3},
		{Op: LOAD, Rd: 9, Imm: 4},
		{Op: STORE, Rd: 9, Ra: 10, Imm: 4},
		{Op: READ, Rd: 9, Ra: 10, Imm: 0},
		{Op: LSRDX, Rd: 9, Ra: 10, Rb: 11, Imm: 8},
		{Op: FALLOC, Rd: 2, Imm: mustPack(t, 3, 4)},
		{Op: FFREE},
		{Op: STOP},
		{Op: MFCLSA, Ra: 80},
		{Op: MFCGET},
		{Op: MFCSTAT, Rd: 1},
	}
	for _, c := range cases {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", c, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		ins  Instruction
		name string
	}{
		{Instruction{Op: Op(200)}, "unknown opcode"},
		{Instruction{Op: ADD, Rd: 128, Ra: 1, Rb: 2}, "rd out of range"},
		{Instruction{Op: ADD, Rd: 1, Ra: 200, Rb: 2}, "ra out of range"},
		{Instruction{Op: NOP, Rd: 1}, "unused rd set"},
		{Instruction{Op: MOVI, Rd: 1, Ra: 2, Imm: 5}, "unused ra set"},
		{Instruction{Op: ADD, Rd: 1, Ra: 2, Rb: 3, Imm: 9}, "unused imm set"},
		{Instruction{Op: FALLOC, Rd: 1, Imm: -1}, "negative falloc packing"},
	}
	for _, c := range cases {
		if err := c.ins.Validate(); err == nil {
			t.Errorf("Validate accepted %s (%s)", c.ins, c.name)
		}
	}
}

func mustPack(t *testing.T, tmpl, sc int) int32 {
	t.Helper()
	imm, err := PackFalloc(tmpl, sc)
	if err != nil {
		t.Fatal(err)
	}
	return imm
}

func TestPackUnpackFalloc(t *testing.T) {
	imm, err := PackFalloc(300, 17)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, sc := UnpackFalloc(imm)
	if tmpl != 300 || sc != 17 {
		t.Fatalf("unpack = (%d, %d), want (300, 17)", tmpl, sc)
	}
	if _, err := PackFalloc(0x8000, 0); err == nil {
		t.Fatal("PackFalloc accepted template > 15 bits")
	}
	if _, err := PackFalloc(0, 0x10000); err == nil {
		t.Fatal("PackFalloc accepted sc > 16 bits")
	}
	if _, err := PackFalloc(-1, 0); err == nil {
		t.Fatal("PackFalloc accepted negative template")
	}
}

// Property: pack/unpack round-trips over the whole legal domain.
func TestPackFallocRoundTripProperty(t *testing.T) {
	f := func(tmplRaw, scRaw uint16) bool {
		tmpl := int(tmplRaw & 0x7FFF)
		sc := int(scRaw)
		imm, err := PackFalloc(tmpl, sc)
		if err != nil {
			return false
		}
		gt, gs := UnpackFalloc(imm)
		return gt == tmpl && gs == sc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: NOP}, "nop"},
		{Instruction{Op: MOVI, Rd: 4, Imm: -2}, "movi r4, -2"},
		{Instruction{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instruction{Op: BEQ, Ra: 5, Rb: 6, Imm: 10}, "beq r5, r6, 10"},
		{Instruction{Op: JMP, Imm: 2}, "jmp 2"},
		{Instruction{Op: STORE, Rd: 7, Ra: 8, Imm: 3}, "store r7, r8, 3"},
		{Instruction{Op: LSRDX, Rd: 1, Ra: 2, Rb: 3, Imm: 4}, "lsrdx r1, r2, r3, 4"},
		{Instruction{Op: MFCLSA, Ra: 9}, "mfclsa r9"},
		{Instruction{Op: MFCSTAT, Rd: 2}, "mfcstat r2"},
		{Instruction{Op: FALLOC, Rd: 2, Imm: 3<<16 | 4}, "falloc r2, 3, 4"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestMemSlotClassification(t *testing.T) {
	memOps := []Op{LOAD, STORE, READ, WRITE, LSRD, LSWRX8, FALLOC, FFREE, STOP, MFCGET, MFCSTAT}
	for _, op := range memOps {
		if !MustInfo(op).Unit.MemSlot() {
			t.Errorf("%s should issue in the memory slot", op)
		}
	}
	computeOps := []Op{NOP, ADD, MUL, SHL, CMPEQ, JMP, BEQ, MOVI}
	for _, op := range computeOps {
		if MustInfo(op).Unit.MemSlot() {
			t.Errorf("%s should issue in the compute slot", op)
		}
	}
}

func TestMustInfoPanicsOnUndefined(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInfo did not panic for undefined opcode")
		}
	}()
	MustInfo(Op(240))
}

func TestBurstClasses(t *testing.T) {
	// The LS-read class is exactly the local-store/frame reads, the
	// LS-write class exactly the direct local-store writes; the
	// register class is exactly the compute/control ops; everything
	// that talks to another component (frame stores through the LSE,
	// main-memory traffic, DMA) is BurstNone.
	wantLS := map[Op]bool{LSRD: true, LSRD8: true, LSRDX: true, LSRDX8: true,
		LOAD: true, LOADX: true}
	wantLSW := map[Op]bool{LSWR: true, LSWR8: true, LSWRX: true, LSWRX8: true}
	for op := Op(0); int(op) < OpCount; op++ {
		info, ok := Lookup(op)
		if !ok {
			continue
		}
		cls := ClassOf(op)
		if wantLS[op] != (cls == BurstLSRead) {
			t.Errorf("%s: class %d, want BurstLSRead=%v", info.Name, cls, wantLS[op])
		}
		if wantLSW[op] != (cls == BurstLSWrite) {
			t.Errorf("%s: class %d, want BurstLSWrite=%v", info.Name, cls, wantLSW[op])
		}
		switch info.Unit {
		case UnitFX, UnitSH, UnitMUL, UnitDIV, UnitCTL:
			if cls != BurstReg {
				t.Errorf("%s: class %d, want BurstReg", info.Name, cls)
			}
		case UnitMEM, UnitDTA, UnitMFC:
			if cls != BurstNone {
				t.Errorf("%s: class %d, want BurstNone", info.Name, cls)
			}
		}
		// Stores that another component mediates or observes (frame
		// stores via the LSE inbox, main-memory WRITEs) must never be
		// burstable; the only burstable stores are the direct
		// local-store writes, whose class carries the horizon
		// precondition.
		if info.Store && cls != BurstNone && cls != BurstLSWrite {
			t.Errorf("%s: store op in burst class %d", info.Name, cls)
		}
		if Burstable(op) != (cls == BurstReg) {
			t.Errorf("%s: Burstable=%v disagrees with class %d", info.Name, Burstable(op), cls)
		}
	}
	if ClassOf(Op(250)) != BurstNone {
		t.Error("undefined opcode must be BurstNone")
	}
}
