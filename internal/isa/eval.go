package isa

// Functional evaluation of the pure compute subset of the ISA. These
// helpers are the single source of arithmetic truth, shared by the timed
// SPU pipeline model (internal/spu) and the untimed functional oracle
// (internal/synth): both must agree bit-for-bit on every ALU result and
// branch decision, or the differential checker would report phantom
// divergences that are really interpreter skew.

// EvalALU computes the result of a register-writing compute instruction.
// a and b are the values of Ra and Rb; imm is the sign-extended
// immediate. Ops outside the ALU set return 0.
func EvalALU(op Op, a, b, imm int64) int64 {
	switch op {
	case ADD:
		return a + b
	case ADDI:
		return a + imm
	case SUB:
		return a - b
	case SUBI:
		return a - imm
	case MUL:
		return a * b
	case MULI:
		return a * imm
	case DIV:
		if b == 0 {
			return 0
		}
		return a / b
	case REM:
		if b == 0 {
			return 0
		}
		return a % b
	case AND:
		return a & b
	case ANDI:
		return a & imm
	case OR:
		return a | b
	case ORI:
		return a | imm
	case XOR:
		return a ^ b
	case XORI:
		return a ^ imm
	case SHL:
		return a << (uint64(b) & 63)
	case SHLI:
		return a << (uint64(imm) & 63)
	case SHR:
		return int64(uint64(a) >> (uint64(b) & 63))
	case SHRI:
		return int64(uint64(a) >> (uint64(imm) & 63))
	case SRA:
		return a >> (uint64(b) & 63)
	case SRAI:
		return a >> (uint64(imm) & 63)
	case CMPEQ:
		if a == b {
			return 1
		}
		return 0
	case CMPLT:
		if a < b {
			return 1
		}
		return 0
	case CMPLTU:
		if uint64(a) < uint64(b) {
			return 1
		}
		return 0
	}
	return 0
}

// BranchTaken decides a conditional branch given the values of Ra and
// Rb. JMP is unconditional; non-branch ops return false.
func BranchTaken(op Op, a, b int64) bool {
	switch op {
	case JMP:
		return true
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return a < b
	case BGE:
		return a >= b
	case BLTU:
		return uint64(a) < uint64(b)
	case BGEU:
		return uint64(a) >= uint64(b)
	}
	return false
}
