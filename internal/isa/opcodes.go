// Package isa defines the instruction set executed by the CellDTA SPU
// model: a small in-order RISC ISA extended with the DTA thread-management
// instructions of the paper (Table 1: FALLOC, FFREE, STOP, LOAD, STORE),
// blocking main-memory accesses (READ/WRITE, the accesses the prefetching
// mechanism decouples), direct local-store accesses (the form rewritten
// READs take), and the MFC/DMA channel instructions that program a
// transfer (Table 3: LS address, MEM address, size, tag).
package isa

import "fmt"

// Op is an opcode.
type Op uint8

// Opcode space. The zero value is NOP so that zeroed instruction memory
// is inert.
const (
	NOP Op = iota

	// Constants and moves.
	MOVI  // rd = signext(imm)
	MOVHI // rd = imm << 32
	MOV   // rd = ra

	// Integer arithmetic.
	ADD  // rd = ra + rb
	ADDI // rd = ra + imm
	SUB  // rd = ra - rb
	SUBI // rd = ra - imm
	MUL  // rd = ra * rb
	MULI // rd = ra * imm
	DIV  // rd = ra / rb (rb==0 -> 0, mirrors "no trap" embedded cores)
	REM  // rd = ra % rb (rb==0 -> 0)

	// Bitwise and shifts.
	AND  // rd = ra & rb
	ANDI // rd = ra & imm
	OR   // rd = ra | rb
	ORI  // rd = ra | imm
	XOR  // rd = ra ^ rb
	XORI // rd = ra ^ imm
	SHL  // rd = ra << (rb & 63)
	SHLI // rd = ra << (imm & 63)
	SHR  // rd = logical ra >> (rb & 63)
	SHRI // rd = logical ra >> (imm & 63)
	SRA  // rd = arithmetic ra >> (rb & 63)
	SRAI // rd = arithmetic ra >> (imm & 63)

	// Comparisons (predicate in register).
	CMPEQ  // rd = (ra == rb) ? 1 : 0
	CMPLT  // rd = (ra < rb) signed ? 1 : 0
	CMPLTU // rd = (ra < rb) unsigned ? 1 : 0

	// Control flow. Branch targets are absolute instruction indices
	// within the current code block (resolved by the assembler/builder).
	JMP  // pc = imm
	BEQ  // if ra == rb: pc = imm
	BNE  // if ra != rb: pc = imm
	BLT  // if ra < rb (signed): pc = imm
	BGE  // if ra >= rb (signed): pc = imm
	BLTU // if ra < rb (unsigned): pc = imm
	BGEU // if ra >= rb (unsigned): pc = imm

	// Frame memory (the DTA-specific accesses of paper Table 1).
	LOAD   // rd = frame[imm] of the current thread
	LOADX  // rd = frame[ra] of the current thread
	STORE  // frame-of(ra)[imm] = rd  (decrements target SC)
	STOREX // frame-of(ra)[rb] = rd

	// Main ("global") memory. READ blocks the pipeline until the reply
	// returns; WRITE is posted through a store buffer. These are the
	// accesses the paper's DMA prefetching removes from the EX block.
	READ   // rd = signext(mem32[ra + imm])
	READ8  // rd = mem64[ra + imm]
	WRITE  // mem32[ra + imm] = low32(rd)
	WRITE8 // mem64[ra + imm] = rd

	// Local store direct accesses (prefetched data, scratch).
	LSRD   // rd = signext(ls32[ra + imm])
	LSRD8  // rd = ls64[ra + imm]
	LSWR   // ls32[ra + imm] = low32(rd)
	LSWR8  // ls64[ra + imm] = rd
	LSRDX  // rd = signext(ls32[ra + rb + imm]) (rewritten READ form)
	LSRDX8 // rd = ls64[ra + rb + imm]
	LSWRX  // ls32[ra + rb + imm] = low32(rd)
	LSWRX8 // ls64[ra + rb + imm] = rd

	// DTA thread management (paper Table 1).
	FALLOC  // rd = FP of a new frame; imm packs template:16 | SC:16
	FALLOCX // rd = FP of a new frame; template = ra, SC = rb
	FFREE   // release the current thread's frame
	STOP    // thread complete; notify the LSE

	// MFC (DMA controller) channel interface (paper Table 3).
	MFCLSA  // channel: local store address = ra
	MFCEA   // channel: main (effective) memory address = ra
	MFCSZ   // channel: transfer size in bytes = ra
	MFCTAG  // channel: tag id = ra
	MFCGET  // enqueue command: main memory -> local store
	MFCPUT  // enqueue command: local store -> main memory
	MFCSTAT // rd = number of incomplete commands for the thread's tag

	opCount // sentinel
)

// Format describes which operand fields an opcode uses, for validation,
// assembly and disassembly.
type Format uint8

const (
	FmtNone     Format = iota // op
	FmtRd                     // op rd
	FmtRa                     // op ra
	FmtImm                    // op imm
	FmtRdImm                  // op rd, imm
	FmtRdRa                   // op rd, ra
	FmtRdRaRb                 // op rd, ra, rb
	FmtRdRaImm                // op rd, ra, imm
	FmtRaRbImm                // op ra, rb, imm   (branches)
	FmtRdRaRbIm               // op rd, ra, rb, imm (indexed LS ops)
)

// Unit is the functional unit an opcode executes on; the SPU model maps
// units to result latencies, and the unit implies the issue slot
// (compute vs memory) of the dual-issue pipeline.
type Unit uint8

const (
	UnitNone  Unit = iota
	UnitFX         // simple fixed point (add/logic/moves/compare)
	UnitSH         // shifter
	UnitMUL        // multiplier
	UnitDIV        // iterative divide
	UnitCTL        // control flow
	UnitFRAME      // frame memory access (local store, via LSE-managed frame)
	UnitMEM        // main memory access
	UnitLS         // direct local store access
	UnitDTA        // scheduler operations (FALLOC/FFREE/STOP)
	UnitMFC        // DMA channel operations
)

// MemSlot reports whether the unit issues in the memory slot of the
// dual-issue pipeline (the SPU issues at most one such instruction per
// cycle, alongside at most one compute-slot instruction).
func (u Unit) MemSlot() bool {
	switch u {
	case UnitFRAME, UnitMEM, UnitLS, UnitDTA, UnitMFC:
		return true
	}
	return false
}

// Info is static metadata for one opcode.
type Info struct {
	Name   string
	Fmt    Format
	Unit   Unit
	Branch bool // control transfer (JMP and conditional branches)
	Store  bool // writes memory/frames rather than a register
}

var infos = [opCount]Info{
	NOP:   {Name: "nop", Fmt: FmtNone, Unit: UnitFX},
	MOVI:  {Name: "movi", Fmt: FmtRdImm, Unit: UnitFX},
	MOVHI: {Name: "movhi", Fmt: FmtRdImm, Unit: UnitFX},
	MOV:   {Name: "mov", Fmt: FmtRdRa, Unit: UnitFX},

	ADD:  {Name: "add", Fmt: FmtRdRaRb, Unit: UnitFX},
	ADDI: {Name: "addi", Fmt: FmtRdRaImm, Unit: UnitFX},
	SUB:  {Name: "sub", Fmt: FmtRdRaRb, Unit: UnitFX},
	SUBI: {Name: "subi", Fmt: FmtRdRaImm, Unit: UnitFX},
	MUL:  {Name: "mul", Fmt: FmtRdRaRb, Unit: UnitMUL},
	MULI: {Name: "muli", Fmt: FmtRdRaImm, Unit: UnitMUL},
	DIV:  {Name: "div", Fmt: FmtRdRaRb, Unit: UnitDIV},
	REM:  {Name: "rem", Fmt: FmtRdRaRb, Unit: UnitDIV},

	AND:  {Name: "and", Fmt: FmtRdRaRb, Unit: UnitFX},
	ANDI: {Name: "andi", Fmt: FmtRdRaImm, Unit: UnitFX},
	OR:   {Name: "or", Fmt: FmtRdRaRb, Unit: UnitFX},
	ORI:  {Name: "ori", Fmt: FmtRdRaImm, Unit: UnitFX},
	XOR:  {Name: "xor", Fmt: FmtRdRaRb, Unit: UnitFX},
	XORI: {Name: "xori", Fmt: FmtRdRaImm, Unit: UnitFX},
	SHL:  {Name: "shl", Fmt: FmtRdRaRb, Unit: UnitSH},
	SHLI: {Name: "shli", Fmt: FmtRdRaImm, Unit: UnitSH},
	SHR:  {Name: "shr", Fmt: FmtRdRaRb, Unit: UnitSH},
	SHRI: {Name: "shri", Fmt: FmtRdRaImm, Unit: UnitSH},
	SRA:  {Name: "sra", Fmt: FmtRdRaRb, Unit: UnitSH},
	SRAI: {Name: "srai", Fmt: FmtRdRaImm, Unit: UnitSH},

	CMPEQ:  {Name: "cmpeq", Fmt: FmtRdRaRb, Unit: UnitFX},
	CMPLT:  {Name: "cmplt", Fmt: FmtRdRaRb, Unit: UnitFX},
	CMPLTU: {Name: "cmpltu", Fmt: FmtRdRaRb, Unit: UnitFX},

	JMP:  {Name: "jmp", Fmt: FmtImm, Unit: UnitCTL, Branch: true},
	BEQ:  {Name: "beq", Fmt: FmtRaRbImm, Unit: UnitCTL, Branch: true},
	BNE:  {Name: "bne", Fmt: FmtRaRbImm, Unit: UnitCTL, Branch: true},
	BLT:  {Name: "blt", Fmt: FmtRaRbImm, Unit: UnitCTL, Branch: true},
	BGE:  {Name: "bge", Fmt: FmtRaRbImm, Unit: UnitCTL, Branch: true},
	BLTU: {Name: "bltu", Fmt: FmtRaRbImm, Unit: UnitCTL, Branch: true},
	BGEU: {Name: "bgeu", Fmt: FmtRaRbImm, Unit: UnitCTL, Branch: true},

	LOAD:   {Name: "load", Fmt: FmtRdImm, Unit: UnitFRAME},
	LOADX:  {Name: "loadx", Fmt: FmtRdRa, Unit: UnitFRAME},
	STORE:  {Name: "store", Fmt: FmtRdRaImm, Unit: UnitFRAME, Store: true},
	STOREX: {Name: "storex", Fmt: FmtRdRaRb, Unit: UnitFRAME, Store: true},

	READ:   {Name: "read", Fmt: FmtRdRaImm, Unit: UnitMEM},
	READ8:  {Name: "read8", Fmt: FmtRdRaImm, Unit: UnitMEM},
	WRITE:  {Name: "write", Fmt: FmtRdRaImm, Unit: UnitMEM, Store: true},
	WRITE8: {Name: "write8", Fmt: FmtRdRaImm, Unit: UnitMEM, Store: true},

	LSRD:   {Name: "lsrd", Fmt: FmtRdRaImm, Unit: UnitLS},
	LSRD8:  {Name: "lsrd8", Fmt: FmtRdRaImm, Unit: UnitLS},
	LSWR:   {Name: "lswr", Fmt: FmtRdRaImm, Unit: UnitLS, Store: true},
	LSWR8:  {Name: "lswr8", Fmt: FmtRdRaImm, Unit: UnitLS, Store: true},
	LSRDX:  {Name: "lsrdx", Fmt: FmtRdRaRbIm, Unit: UnitLS},
	LSRDX8: {Name: "lsrdx8", Fmt: FmtRdRaRbIm, Unit: UnitLS},
	LSWRX:  {Name: "lswrx", Fmt: FmtRdRaRbIm, Unit: UnitLS, Store: true},
	LSWRX8: {Name: "lswrx8", Fmt: FmtRdRaRbIm, Unit: UnitLS, Store: true},

	FALLOC:  {Name: "falloc", Fmt: FmtRdImm, Unit: UnitDTA},
	FALLOCX: {Name: "fallocx", Fmt: FmtRdRaRb, Unit: UnitDTA},
	FFREE:   {Name: "ffree", Fmt: FmtNone, Unit: UnitDTA, Store: true},
	STOP:    {Name: "stop", Fmt: FmtNone, Unit: UnitDTA, Store: true},

	MFCLSA:  {Name: "mfclsa", Fmt: FmtRa, Unit: UnitMFC, Store: true},
	MFCEA:   {Name: "mfcea", Fmt: FmtRa, Unit: UnitMFC, Store: true},
	MFCSZ:   {Name: "mfcsz", Fmt: FmtRa, Unit: UnitMFC, Store: true},
	MFCTAG:  {Name: "mfctag", Fmt: FmtRa, Unit: UnitMFC, Store: true},
	MFCGET:  {Name: "mfcget", Fmt: FmtNone, Unit: UnitMFC, Store: true},
	MFCPUT:  {Name: "mfcput", Fmt: FmtNone, Unit: UnitMFC, Store: true},
	MFCSTAT: {Name: "mfcstat", Fmt: FmtRd, Unit: UnitMFC},
}

// OpCount is the number of defined opcodes.
const OpCount = int(opCount)

// Lookup returns the metadata for op, or ok=false for undefined opcodes.
func Lookup(op Op) (Info, bool) {
	if int(op) >= OpCount || infos[op].Name == "" {
		return Info{}, false
	}
	return infos[op], true
}

// MustInfo returns the metadata for op and panics on undefined opcodes;
// use only after validation.
func MustInfo(op Op) Info {
	info, ok := Lookup(op)
	if !ok {
		panic(fmt.Sprintf("isa: undefined opcode %d", op))
	}
	return info
}

// InfoOf returns a pointer to op's metadata without copying the Info
// struct — the per-instruction hot path of the SPU pipeline. The
// opcode space is contiguous, so the array bounds check is the whole
// validity check (out-of-range opcodes panic); use only after
// validation. The returned Info is shared and must not be mutated.
func InfoOf(op Op) *Info {
	return &infos[op]
}

// BurstClass classifies an opcode for the SPU's burst-execution fast
// path — how far ahead of the engine clock the instruction may be
// simulated.
type BurstClass uint8

const (
	// BurstNone instructions must execute on the engine clock: they
	// write memory or machine state another component observes (stores,
	// main-memory traffic, LSE/MFC operations), or read state another
	// component mutates asynchronously (MFCSTAT).
	BurstNone BurstClass = iota
	// BurstReg instructions touch only SPU-local register state: no
	// local store, main memory, frame, LSE, or MFC interaction, and no
	// result observable by any other machine component. They may be
	// simulated arbitrarily far ahead of the engine clock. Control flow
	// qualifies — branch conditions and targets live entirely in the
	// pipeline.
	BurstReg
	// BurstLSRead instructions additionally read the SPE's local store
	// (LSRD*/LOAD*). Their only interactions outside the register file
	// are a functional read of the local store and a booking on the
	// store's dedicated SPU port, which no other component shares — so
	// they may run ahead of the engine clock exactly as far as the
	// engine can prove no other component runs (and therefore nothing
	// can write the local store): the caller's quiescence horizon,
	// sim.Engine.HorizonExcluding.
	BurstLSRead
	// BurstLSWrite instructions write the SPE's local store directly
	// (LSWR*) with no mediation by any other component: no wake is
	// posted and no inbox is filled, only the store's bytes and its
	// dedicated SPU port booking change. They burst under exactly the
	// same horizon argument as BurstLSRead — until the horizon, no
	// other component runs, so nothing (the MFC streaming a PUT, the
	// LSE reading a frame, a network delivery) can *read* the store
	// either, and a write simulated early is indistinguishable from
	// one executed on the engine clock. STORE*/STOREX stay BurstNone:
	// they go through the LSE's inbox (observable component state,
	// possibly routed to a remote frame), not the local store.
	BurstLSWrite
)

// ClassOf returns the burst class of op (BurstNone for undefined
// opcodes).
func ClassOf(op Op) BurstClass {
	if int(op) >= OpCount {
		return BurstNone
	}
	return burstClasses[op]
}

// Burstable reports whether op is register-only compute (BurstReg) —
// burstable with no precondition.
func Burstable(op Op) bool {
	return ClassOf(op) == BurstReg
}

var burstClasses = func() [opCount]BurstClass {
	var t [opCount]BurstClass
	for op := Op(0); op < opCount; op++ {
		switch infos[op].Unit {
		case UnitFX, UnitSH, UnitMUL, UnitDIV, UnitCTL:
			t[op] = BurstReg
		}
	}
	// Local-store and frame reads.
	for _, op := range []Op{LSRD, LSRD8, LSRDX, LSRDX8, LOAD, LOADX} {
		t[op] = BurstLSRead
	}
	// Direct local-store writes: safe ahead of the clock under the
	// quiescence horizon, because the horizon bounds the first cycle
	// any other component could run and hence *read* the store (the
	// MFC's PUT streaming, the LSE's frame reads — both are scheduled
	// components covered by the SPU's refined horizon). STORE/STOREX
	// are frame stores through the LSE inbox and must stay BurstNone.
	for _, op := range []Op{LSWR, LSWR8, LSWRX, LSWRX8} {
		t[op] = BurstLSWrite
	}
	return t
}()

// ByName resolves a mnemonic to its opcode.
func ByName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, OpCount)
	for op := Op(0); op < opCount; op++ {
		if infos[op].Name != "" {
			m[infos[op].Name] = op
		}
	}
	return m
}()

func (o Op) String() string {
	if info, ok := Lookup(o); ok {
		return info.Name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}
