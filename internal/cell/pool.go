package cell

import "repro/internal/program"

// Pool recycles built machines keyed by configuration so repeated runs
// (parameter sweeps, fuzz campaigns, service workers) amortise machine
// construction — component graphs, 156 kB local stores, sparse-memory
// pages — instead of rebuilding them per run. Machines are reset on
// acquisition, so a released machine's final state (memory image,
// statistics) stays readable until it is handed out again.
//
// A Pool is NOT safe for concurrent use: it is deliberately a
// per-worker object (one per harness sweep context, dtad worker or
// dtafuzz goroutine), which keeps every simulation single-threaded and
// deterministic with zero locking.
type Pool struct {
	free map[Config][]*Machine
}

// NewPool returns an empty machine pool.
func NewPool() *Pool {
	return &Pool{free: make(map[Config][]*Machine)}
}

// Get returns a machine for cfg ready to run prog: a pooled machine
// reset to the program, or a newly built one when none is available.
func (p *Pool) Get(cfg Config, prog *program.Program) (*Machine, error) {
	if p == nil {
		return New(cfg, prog)
	}
	if ms := p.free[cfg]; len(ms) > 0 {
		m := ms[len(ms)-1]
		p.free[cfg] = ms[:len(ms)-1]
		if err := m.Reset(prog); err != nil {
			// The program does not fit this configuration; a fresh
			// build reports the same validation error.
			return New(cfg, prog)
		}
		return m, nil
	}
	return New(cfg, prog)
}

// Put returns a machine to the pool. The caller must not use it
// afterwards (its memory image remains valid only until the next Get).
func (p *Pool) Put(m *Machine) {
	if p == nil || m == nil {
		return
	}
	p.free[m.cfg] = append(p.free[m.cfg], m)
}
