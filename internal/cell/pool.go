package cell

import (
	"sync/atomic"

	"repro/internal/program"
)

// Process-wide pool counters, aggregated across every Pool (pools are
// per-worker, so per-instance counters would be invisible to a scrape).
// Exposed as dtad_pool_* by the service's metrics registry.
var (
	// PoolGets counts Get calls served (hit or miss).
	PoolGets atomic.Int64
	// PoolMisses counts Gets that had to build a fresh machine.
	PoolMisses atomic.Int64
	// PoolPuts counts machines returned to a pool.
	PoolPuts atomic.Int64
	// PoolDrops counts returned machines dropped over the free-list cap.
	PoolDrops atomic.Int64
)

// Pool recycles built machines keyed by configuration so repeated runs
// (parameter sweeps, fuzz campaigns, service workers) amortise machine
// construction — component graphs, 156 kB local stores, sparse-memory
// pages — instead of rebuilding them per run. Machines are reset on
// acquisition, so a released machine's final state (memory image,
// statistics) stays readable until it is handed out again.
//
// A Pool is NOT safe for concurrent use: it is deliberately a
// per-worker object (one per harness sweep context, dtad worker or
// dtafuzz goroutine), which keeps every simulation single-threaded and
// deterministic with zero locking.
type Pool struct {
	free map[Config][]*Machine
	cap  int // max idle machines retained per configuration (0 = unbounded)
}

// DefaultPoolCap bounds the idle machines retained per configuration by
// NewPool. A sweep worker cycles through a handful of configurations
// with at most a few machines of each in flight, so a small cap keeps
// reuse intact while a long-lived worker (dtad, a batch scheduler)
// cannot accumulate retired 156 kB local-store images without bound.
const DefaultPoolCap = 16

// NewPool returns an empty machine pool with the default per-config
// free-list cap.
func NewPool() *Pool {
	return NewPoolCap(DefaultPoolCap)
}

// NewBatchPool returns a pool sized for a batched worker interleaving
// width fibers: all width machines of one configuration are in flight
// together between yields and return to the pool at the same time, so
// a free list smaller than the batch width would drop (and rebuild)
// machines every round. Widths at or below the default cap keep it.
func NewBatchPool(width int) *Pool {
	if width < DefaultPoolCap {
		width = DefaultPoolCap
	}
	return NewPoolCap(width)
}

// GrowCap raises the per-config free-list cap to at least perConfig, so
// a pool recycled from a narrower batch can serve a wider one without
// dropping machines every round. A no-op for unbounded pools or caps
// already at least that large; the cap never shrinks (retained machines
// stay retained).
func (p *Pool) GrowCap(perConfig int) {
	if p == nil || p.cap == 0 || perConfig <= p.cap {
		return
	}
	p.cap = perConfig
}

// NewPoolCap returns an empty machine pool retaining at most perConfig
// idle machines per configuration; perConfig <= 0 means unbounded.
func NewPoolCap(perConfig int) *Pool {
	if perConfig < 0 {
		perConfig = 0
	}
	return &Pool{free: make(map[Config][]*Machine), cap: perConfig}
}

// Get returns a machine for cfg ready to run prog: a pooled machine
// reset to the program, or a newly built one when none is available.
func (p *Pool) Get(cfg Config, prog *program.Program) (*Machine, error) {
	PoolGets.Add(1)
	if p == nil {
		PoolMisses.Add(1)
		return New(cfg, prog)
	}
	if ms := p.free[cfg]; len(ms) > 0 {
		m := ms[len(ms)-1]
		p.free[cfg] = ms[:len(ms)-1]
		if err := m.Reset(prog); err != nil {
			// The program does not fit this configuration; a fresh
			// build reports the same validation error.
			return New(cfg, prog)
		}
		return m, nil
	}
	PoolMisses.Add(1)
	return New(cfg, prog)
}

// Put returns a machine to the pool. The caller must not use it
// afterwards (its memory image remains valid only until the next Get).
// A machine beyond the per-config cap is dropped for the garbage
// collector instead of retained.
func (p *Pool) Put(m *Machine) {
	if p == nil || m == nil {
		return
	}
	if p.cap > 0 && len(p.free[m.cfg]) >= p.cap {
		PoolDrops.Add(1)
		return
	}
	PoolPuts.Add(1)
	p.free[m.cfg] = append(p.free[m.cfg], m)
}

// Idle reports how many machines are retained for cfg (for tests).
func (p *Pool) Idle(cfg Config) int {
	if p == nil {
		return 0
	}
	return len(p.free[cfg])
}
