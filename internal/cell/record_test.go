package cell_test

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// pfProgram builds the prefetch-transformed mmul benchmark at a small
// size: it exercises PF blocks, MFC DMA traffic and NoC messages, so
// every recorder track sees real work.
func pfProgram(t *testing.T) *program.Program {
	t.Helper()
	w, ok := workloads.Get("mmul")
	if !ok {
		t.Fatal("mmul workload not registered")
	}
	mmul, err := w.Build(workloads.Params{N: 8, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatalf("build mmul: %v", err)
	}
	p, err := prefetch.Transform(mmul)
	if err != nil {
		t.Fatalf("prefetch: %v", err)
	}
	return p
}

func recordConfig(spes int, record bool) cell.Config {
	cfg := cell.DefaultConfig()
	cfg.SPEs = spes
	cfg.MaxCycles = 10_000_000
	cfg.Record = record
	return cfg
}

func runProgram(t *testing.T, cfg cell.Config, p *program.Program) *cell.Result {
	t.Helper()
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CheckErr != nil {
		t.Fatalf("functional check: %v", res.CheckErr)
	}
	return res
}

// TestRecordingDoesNotPerturbResults is the observability regression
// guard at the machine level: the same program run with Record on and
// off must produce identical simulation results — spans are emitted at
// completion sites outside the cycle kernel, never on the clocked path.
func TestRecordingDoesNotPerturbResults(t *testing.T) {
	base := runProgram(t, recordConfig(2, false), pfProgram(t))
	rec := runProgram(t, recordConfig(2, true), pfProgram(t))

	if base.Cycles != rec.Cycles {
		t.Fatalf("cycles differ: plain %d, recorded %d", base.Cycles, rec.Cycles)
	}
	if !reflect.DeepEqual(base.Tokens, rec.Tokens) {
		t.Fatalf("tokens differ: %v vs %v", base.Tokens, rec.Tokens)
	}
	if !reflect.DeepEqual(base.Agg, rec.Agg) {
		t.Fatalf("aggregate stats differ:\nplain    %+v\nrecorded %+v", base.Agg, rec.Agg)
	}
	if !reflect.DeepEqual(base.Net, rec.Net) {
		t.Fatalf("NoC stats differ: %+v vs %+v", base.Net, rec.Net)
	}
	if !reflect.DeepEqual(base.MFCs, rec.MFCs) {
		t.Fatalf("MFC stats differ: %+v vs %+v", base.MFCs, rec.MFCs)
	}
	if base.Rec != nil {
		t.Fatal("recorder present without Config.Record")
	}
	if rec.Rec == nil {
		t.Fatal("no recorder on recorded result")
	}
}

// TestRecordedSpansMatchStats cross-checks every span track against the
// machine's own counters: the recorder must account for exactly the
// work the stats report.
func TestRecordedSpansMatchStats(t *testing.T) {
	res := runProgram(t, recordConfig(2, true), pfProgram(t))
	rec := res.Rec

	var threads, pfs int64
	for _, s := range rec.SPUSpans() {
		switch s.Unit {
		case trace.UnitThread:
			threads++
		case trace.UnitPF:
			pfs++
		}
		if s.End <= s.Start {
			t.Fatalf("empty span %+v", s)
		}
	}
	if threads != res.Agg.Threads {
		t.Fatalf("thread spans = %d, stats report %d threads", threads, res.Agg.Threads)
	}
	if pfs != res.Agg.PFBlocks {
		t.Fatalf("PF spans = %d, stats report %d PF blocks", pfs, res.Agg.PFBlocks)
	}
	if pfs == 0 {
		t.Fatal("prefetch-transformed program recorded no PF spans")
	}

	var dmas int64
	for _, m := range res.MFCs {
		dmas += m.Gets + m.Puts
	}
	if got := int64(len(rec.DMASpans())); got != dmas {
		t.Fatalf("DMA spans = %d, MFC stats report %d commands", got, dmas)
	}
	for _, d := range rec.DMASpans() {
		if d.Launched < d.Issued || d.Done < d.Launched {
			t.Fatalf("DMA lifetime out of order: %+v", d)
		}
	}

	// Spans are recorded at bus grant with the scheduled delivery time;
	// stats count actual deliveries. The run stops the moment the result
	// mailbox fills, so a handful of trailing messages (final acks) can
	// be granted but still in flight — spans may exceed deliveries by
	// that small tail, never the reverse.
	got := int64(len(rec.NoCSpans()))
	if got < res.Net.Messages {
		t.Fatalf("NoC spans = %d < %d delivered messages (missed spans)", got, res.Net.Messages)
	}
	if got > res.Net.Messages+int64(4*len(res.SPUs)) {
		t.Fatalf("NoC spans = %d, delivered %d: in-flight tail implausibly large", got, res.Net.Messages)
	}
	for _, n := range rec.NoCSpans() {
		if n.Delivered <= n.Sent {
			t.Fatalf("NoC span with no transit time: %+v", n)
		}
	}

	if len(rec.Threads.Events()) == 0 {
		t.Fatal("no thread-lifecycle events recorded")
	}
}

// TestRecordSurvivesReset: machine reuse keeps the same recorder (the
// component wiring set in New stays valid) but truncates its tracks.
func TestRecordSurvivesReset(t *testing.T) {
	cfg := recordConfig(2, true)
	m, err := cell.New(cfg, pfProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Rec == nil || len(res1.Rec.SPUSpans()) == 0 {
		t.Fatal("first run recorded nothing")
	}
	spans1 := len(res1.Rec.SPUSpans())
	if err := m.Reset(pfProgram(t)); err != nil {
		t.Fatal(err)
	}
	res2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rec != res1.Rec {
		t.Fatal("Reset replaced the recorder (component wiring would be stale)")
	}
	if got := len(res2.Rec.SPUSpans()); got != spans1 {
		t.Fatalf("second run has %d SPU spans, first had %d (tracks must reset to identical runs)", got, spans1)
	}
}
