package cell

import "testing"

// TestNewBatchPoolWidth: a batch pool must retain a full batch's worth
// of machines — all width fibers of one configuration return their
// machines between rounds, and a smaller free list would drop and
// rebuild them every round — while narrow batches keep the default cap.
func TestNewBatchPoolWidth(t *testing.T) {
	cfg := smallConfig(1)
	p := progMinimal(t)

	wide := NewBatchPool(2 * DefaultPoolCap)
	for i := 0; i < 2*DefaultPoolCap+1; i++ {
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		wide.Put(m)
	}
	if got := wide.Idle(cfg); got != 2*DefaultPoolCap {
		t.Errorf("wide batch pool retained %d machines, want %d", got, 2*DefaultPoolCap)
	}

	narrow := NewBatchPool(2)
	for i := 0; i < DefaultPoolCap+1; i++ {
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		narrow.Put(m)
	}
	if got := narrow.Idle(cfg); got != DefaultPoolCap {
		t.Errorf("narrow batch pool retained %d machines, want the default cap %d", got, DefaultPoolCap)
	}
}
