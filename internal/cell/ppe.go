package cell

import (
	"fmt"
	"sort"

	"repro/internal/noc"
	"repro/internal/sim"
)

// PPE is the Power Processing Element stand-in: it offloads the TLP
// activity (allocates the root thread's frame and stores its arguments)
// and collects completion tokens from the mailbox. The paper's PPE does
// exactly this for DTA workloads; no PowerPC pipeline is modelled (see
// DESIGN.md substitutions).
type PPE struct {
	id     int
	dseID  int
	lseEP  func(spe int) int
	net    *noc.Network
	eng    *sim.Engine
	handle *sim.Handle

	entryTemplate int
	args          []int64
	expect        int

	started  bool
	rootFP   int64
	tokens   map[int64]int64 // slot -> value
	order    []int64         // arrival order of slots
	doneAt   sim.Cycle
	finished bool

	// Fault receives protocol errors.
	Fault func(error)
}

// NewPPE creates the host processor model.
func NewPPE(id, dseID int, lseEP func(int) int, net *noc.Network, eng *sim.Engine,
	entryTemplate int, args []int64, expect int) *PPE {
	return &PPE{
		id: id, dseID: dseID, lseEP: lseEP, net: net, eng: eng,
		entryTemplate: entryTemplate, args: args, expect: expect,
		tokens: make(map[int64]int64),
		Fault:  func(err error) { panic(err) },
	}
}

// Name implements sim.Component.
func (p *PPE) Name() string { return "ppe" }

// Reset rebinds the PPE to a (possibly different) program's TLP
// activity and clears all collected tokens for machine reuse.
func (p *PPE) Reset(entryTemplate int, args []int64, expect int) {
	p.entryTemplate = entryTemplate
	p.args = args
	p.expect = expect
	p.started = false
	p.rootFP = 0
	clear(p.tokens)
	p.order = p.order[:0]
	p.doneAt = 0
	p.finished = false
}

// Attach stores the engine wake handle.
func (p *PPE) Attach(h *sim.Handle) { p.handle = h }

// Tick starts the TLP activity on the first cycle.
func (p *PPE) Tick(now sim.Cycle) sim.Cycle {
	if !p.started {
		p.started = true
		p.net.Send(now, noc.Message{
			Src: p.id, Dst: p.dseID, Kind: noc.KindFallocReq,
			A: int64(p.entryTemplate), B: int64(len(p.args)), C: 1, D: int64(p.id),
		})
	}
	return sim.Never
}

// Deliver implements noc.Endpoint: the root FALLOC response and mailbox
// posts arrive here.
func (p *PPE) Deliver(now sim.Cycle, m noc.Message) {
	switch m.Kind {
	case noc.KindFallocResp:
		p.rootFP = m.A
		// Store the activity arguments into the root frame; SC equals
		// len(args), so the root becomes ready after the last store.
		for i, arg := range p.args {
			p.net.Send(now, noc.Message{
				Src: p.id, Dst: p.routeFor(m.A), Kind: noc.KindFrameStore,
				A: m.A, B: arg, C: int64(i),
			})
		}
	case noc.KindMailboxPost:
		if _, dup := p.tokens[m.C]; dup {
			p.Fault(fmt.Errorf("ppe: duplicate mailbox token in slot %d", m.C))
			return
		}
		p.tokens[m.C] = m.B
		p.order = append(p.order, m.C)
		if len(p.tokens) >= p.expect && !p.finished {
			p.finished = true
			p.doneAt = now
			p.eng.Stop()
		}
	default:
		p.Fault(fmt.Errorf("ppe received unexpected %s", m))
	}
}

func (p *PPE) routeFor(fp int64) int {
	spe, _, err := splitFPForRouting(fp)
	if err != nil {
		p.Fault(err)
		return p.dseID
	}
	return p.lseEP(spe)
}

// Done reports whether all expected tokens arrived.
func (p *PPE) Done() bool { return p.finished }

// Tokens returns the collected mailbox values ordered by slot.
func (p *PPE) Tokens() []int64 {
	slots := make([]int64, 0, len(p.tokens))
	for s := range p.tokens {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	out := make([]int64, 0, len(slots))
	for _, s := range slots {
		out = append(out, p.tokens[s])
	}
	return out
}

// DumpState implements sim.StateDumper.
func (p *PPE) DumpState() string {
	return fmt.Sprintf("tokens=%d/%d rootFP=%#x", len(p.tokens), p.expect, p.rootFP)
}
