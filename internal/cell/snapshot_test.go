package cell

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/snap"
)

// TestSnapshotRestoreIdentity is the checkpoint contract: running to a
// mid-run boundary, capturing, restoring into a fresh machine and
// finishing must be indistinguishable — cycles, every statistic,
// tokens, the guest profile and the final memory image — from an
// uninterrupted run. The donor machine must also be unperturbed by the
// capture.
func TestSnapshotRestoreIdentity(t *testing.T) {
	progs := []struct {
		name string
		p    *program.Program
	}{
		{"loop", progLoop(t, 100)},
		{"memory", progMemory(t)},
		{"dma", progManualDMA(t)},
		{"forkjoin", progForkJoin(t, 6)},
	}
	for _, spes := range []int{1, 2} {
		for _, tc := range progs {
			cfg := smallConfig(spes)
			cfg.Profile = true

			coldM, err := New(cfg, tc.p)
			if err != nil {
				t.Fatalf("%s/%d New: %v", tc.name, spes, err)
			}
			want, err := coldM.Run()
			if err != nil {
				t.Fatalf("%s/%d cold Run: %v", tc.name, spes, err)
			}

			donor, err := New(cfg, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			div := want.Cycles / 2
			at, st, err := donor.RunTo(div)
			if err != nil {
				t.Fatalf("%s/%d RunTo(%d): %v", tc.name, spes, div, err)
			}
			if st == StepDone {
				t.Fatalf("%s/%d completed at %d before divergence cycle %d", tc.name, spes, at, div)
			}
			if at < div {
				t.Fatalf("%s/%d RunTo stopped at %d < %d", tc.name, spes, at, div)
			}
			key := SnapshotKey(cfg, tc.p, div)
			blob, err := donor.EncodeSnapshot(key)
			if err != nil {
				t.Fatalf("%s/%d EncodeSnapshot: %v", tc.name, spes, err)
			}

			forked, err := New(cfg, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if err := forked.RestoreSnapshot(blob, key); err != nil {
				t.Fatalf("%s/%d RestoreSnapshot: %v", tc.name, spes, err)
			}
			if forked.Now() != at {
				t.Fatalf("%s/%d restored clock %d, captured at %d", tc.name, spes, forked.Now(), at)
			}
			got, err := forked.Run()
			if err != nil {
				t.Fatalf("%s/%d forked Run: %v", tc.name, spes, err)
			}
			if got.CheckErr != nil {
				t.Fatalf("%s/%d forked functional check: %v", tc.name, spes, got.CheckErr)
			}
			resultsIdentical(t, want, got, tc.name+"/forked")
			if !want.Prof.Equal(got.Prof) {
				t.Errorf("%s/%d: forked profile differs from cold profile", tc.name, spes)
			}
			if addr, equal := mem.FirstDiff(coldM.MemSparse(), forked.MemSparse()); !equal {
				t.Errorf("%s/%d: forked memory image diverges at %#x", tc.name, spes, addr)
			}

			// The donor continues past the capture untouched.
			donorRes, err := donor.Run()
			if err != nil {
				t.Fatalf("%s/%d donor Run: %v", tc.name, spes, err)
			}
			resultsIdentical(t, want, donorRes, tc.name+"/donor")
		}
	}
}

// TestSnapshotRoundTripStable re-captures a restored machine and
// expects byte-identical payloads: the codec must be a fixed point, or
// content-addressed caching would never converge.
func TestSnapshotRoundTripStable(t *testing.T) {
	cfg := smallConfig(2)
	p := progForkJoin(t, 6)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	div := want.Cycles / 2

	donor, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := donor.RunTo(div); err != nil {
		t.Fatal(err)
	}
	key := SnapshotKey(cfg, p, div)
	blob1, err := donor.EncodeSnapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(blob1, key); err != nil {
		t.Fatal(err)
	}
	blob2, err := restored.EncodeSnapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatalf("re-captured snapshot differs: %d vs %d bytes", len(blob1), len(blob2))
	}
}

// TestSnapshotVersionMismatch: a future-version envelope must be
// rejected with a typed error, not misdecoded.
func TestSnapshotVersionMismatch(t *testing.T) {
	cfg := smallConfig(1)
	p := progMinimal(t)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RunTo(10); err != nil {
		t.Fatal(err)
	}
	var w snap.Writer
	if err := m.Snapshot(&w); err != nil {
		t.Fatal(err)
	}
	key := SnapshotKey(cfg, p, 10)
	blob := snap.Encode(SnapshotVersion+1, key, w.Bytes())

	fresh, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	err = fresh.RestoreSnapshot(blob, key)
	var verr *snap.VersionError
	if !errors.As(err, &verr) {
		t.Fatalf("RestoreSnapshot = %v, want snap.VersionError", err)
	}
	if verr.Got != SnapshotVersion+1 || verr.Want != SnapshotVersion {
		t.Fatalf("VersionError = %+v", verr)
	}

	// Wrong identity is rejected too.
	good := snap.Encode(SnapshotVersion, key, w.Bytes())
	if err := fresh.RestoreSnapshot(good, "not-the-key"); err == nil {
		t.Fatal("RestoreSnapshot accepted a mismatched identity")
	}
}

// TestSnapshotGatesUnserialisableState: recording and tracing buffers
// are not serialised, so capture must refuse rather than silently drop
// them.
func TestSnapshotGatesUnserialisableState(t *testing.T) {
	p := progMinimal(t)
	for _, mod := range []func(*Config){
		func(c *Config) { c.Record = true },
		func(c *Config) { c.TraceCap = 128 },
	} {
		cfg := smallConfig(1)
		mod(&cfg)
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		var w snap.Writer
		if err := m.Snapshot(&w); err == nil {
			t.Errorf("Snapshot succeeded with cfg %+v", cfg)
		}
	}
}

// TestKnobDivergence: restoring a checkpoint and flipping a knob must
// equal running cold to the same boundary and flipping it there — the
// fork-vs-cold identity the harness sweep relies on.
func TestKnobDivergence(t *testing.T) {
	cfg := smallConfig(2)
	p := progMemory(t)
	base, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	div := baseRes.Cycles / 2
	knobs := Knobs{MemLatency: cfg.Mem.Latency * 2, MFCCmdLatency: cfg.MFC.CmdLatency + 10}

	// Cold reference: simulate from cycle 0, apply knobs at the boundary.
	cold, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	at, _, err := cold.RunTo(div)
	if err != nil {
		t.Fatal(err)
	}
	cold.ApplyKnobs(knobs)
	want, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Forked: capture at the boundary, restore, apply the same knobs.
	donor, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	dAt, _, err := donor.RunTo(div)
	if err != nil {
		t.Fatal(err)
	}
	if dAt != at {
		t.Fatalf("boundary cycles differ: cold %d, donor %d", at, dAt)
	}
	key := SnapshotKey(cfg, p, div)
	blob, err := donor.EncodeSnapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := forked.RestoreSnapshot(blob, key); err != nil {
		t.Fatal(err)
	}
	forked.ApplyKnobs(knobs)
	if !forked.Knobbed() {
		t.Fatal("ApplyKnobs did not mark the machine knobbed")
	}
	got, err := forked.Run()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, want, got, "knob-divergence")
	if addr, equal := mem.FirstDiff(cold.MemSparse(), forked.MemSparse()); !equal {
		t.Errorf("knob-divergence: memory image diverges at %#x", addr)
	}
	if want.Cycles == baseRes.Cycles {
		t.Logf("note: knobbed run matched base cycle count %d (knob had no effect on this program)", want.Cycles)
	}

	// Reset restores the construction-time parameters for pooled reuse.
	if err := forked.Reset(p); err != nil {
		t.Fatal(err)
	}
	if forked.Knobbed() {
		t.Fatal("Reset left the machine marked knobbed")
	}
	again, err := forked.Run()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, baseRes, again, "post-reset")
}

// TestSnapshotKeyDisambiguates: the key must separate programs,
// configurations and divergence cycles.
func TestSnapshotKeyDisambiguates(t *testing.T) {
	cfg := smallConfig(2)
	cfg2 := cfg
	cfg2.Mem.Latency++
	pa, pb := progLoop(t, 100), progLoop(t, 101)
	base := SnapshotKey(cfg, pa, 1000)
	for name, other := range map[string]string{
		"config":    SnapshotKey(cfg2, pa, 1000),
		"program":   SnapshotKey(cfg, pb, 1000),
		"diverge":   SnapshotKey(cfg, pa, 2000),
		"identical": SnapshotKey(cfg, progLoop(t, 100), 1000),
	} {
		same := other == base
		if name == "identical" && !same {
			t.Errorf("identical inputs produced different keys")
		}
		if name != "identical" && same {
			t.Errorf("%s change did not change the key", name)
		}
	}
}
