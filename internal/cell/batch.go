package cell

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/sim"
)

// Scenario is one simulation fed to a Batch: a configuration, a
// program, and a callback that receives the outcome when the scenario
// retires.
type Scenario struct {
	Cfg  Config
	Prog *program.Program
	// Done is called exactly once, on the Batch.Run goroutine, with the
	// scenario's Result or its error (build failure, machine fault,
	// deadlock, cycle limit, or a contained panic).
	Done func(*Result, error)
}

// Batch runs scenarios on up to width machines interleaved inside one
// goroutine: each live machine advances one bounded slice per round
// (Machine.Step), finished scenarios retire and their machines return
// to the pool, and freed slots refill from the feed. Interleaving K
// machines keeps K hot working sets resident per worker — the batch
// replaces K goroutines, not K cores — while every simulation remains
// single-threaded and byte-identical to a run-to-completion Run: slices
// land on natural event boundaries and no machine observes its
// neighbours.
//
// A Batch is a per-goroutine object, like the Pool it draws from.
type Batch struct {
	pool  *Pool
	width int
	slice sim.Cycle
}

// NewBatch returns a scheduler drawing machines from pool, running up
// to width scenarios interleaved (width < 1 is clamped to 1, which
// degenerates to sequential run-to-completion), advancing each by slice
// cycles per round (slice <= 0 selects DefaultSlice).
func NewBatch(pool *Pool, width int, slice sim.Cycle) *Batch {
	if width < 1 {
		width = 1
	}
	if slice <= 0 {
		slice = DefaultSlice
	}
	return &Batch{pool: pool, width: width, slice: slice}
}

// Run drains the feed: it admits scenarios until feed reports no more,
// round-robins the live machines, and returns when every admitted
// scenario has retired. Retirement order is deterministic for a
// deterministic feed (admission order and per-machine cycle counts fix
// it). A panic inside a scenario's build or step is contained to that
// scenario and delivered through its Done callback.
func (b *Batch) Run(feed func() (Scenario, bool)) {
	type slot struct {
		sc Scenario
		m  *Machine
	}
	live := make([]slot, 0, b.width)
	exhausted := false
	admit := func() bool {
		for !exhausted && len(live) < b.width {
			sc, ok := feed()
			if !ok {
				exhausted = true
				break
			}
			var m *Machine
			if err := guarded(func() (err error) {
				m, err = b.pool.Get(sc.Cfg, sc.Prog)
				return err
			}); err != nil {
				sc.Done(nil, err)
				continue
			}
			live = append(live, slot{sc, m})
		}
		return len(live) > 0
	}
	for admit() {
		kept := live[:0]
		for _, s := range live {
			var res *Result
			var done bool
			err := guarded(func() (err error) {
				var st StepStatus
				if st, err = s.m.Step(b.slice); err != nil || st != StepDone {
					return err
				}
				done = true
				res, err = s.m.Finish()
				return err
			})
			switch {
			case err != nil:
				s.sc.Done(nil, err) // errored machine state is unknown: not pooled
			case done:
				s.sc.Done(res, nil)
				b.pool.Put(s.m)
			default:
				kept = append(kept, s)
			}
		}
		for i := len(kept); i < len(live); i++ {
			live[i] = slot{} // drop retired machine references
		}
		live = kept
	}
}

// guarded runs f, converting a panic into an error so one bad scenario
// cannot take down the batch.
func guarded(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell: scenario panicked: %v", r)
		}
	}()
	return f()
}
