package cell

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/sim"
)

// Scenario is one simulation fed to a Batch: a configuration, a
// program, and a callback that receives the outcome when the scenario
// retires.
type Scenario struct {
	Cfg  Config
	Prog *program.Program
	// Done is called exactly once, on the Batch.Run goroutine, with the
	// scenario's Result or its error (build failure, machine fault,
	// deadlock, cycle limit, or a contained panic).
	Done func(*Result, error)
}

// Batch runs scenarios on up to width machines interleaved inside one
// goroutine: each live machine advances one bounded slice per round
// (Machine.Step), finished scenarios retire and their machines return
// to the pool, and freed slots refill from the feed. Interleaving K
// machines keeps K hot working sets resident per worker — the batch
// replaces K goroutines, not K cores — while every simulation remains
// single-threaded and byte-identical to a run-to-completion Run: slices
// land on natural event boundaries and no machine observes its
// neighbours.
//
// A Batch is a per-goroutine object, like the Pool it draws from.
type Batch struct {
	pool    *Pool
	width   int
	slice   sim.Cycle
	horizon bool

	slices   int64
	switches int64
}

// NewBatch returns a scheduler drawing machines from pool, running up
// to width scenarios interleaved (width < 1 is clamped to 1, which
// degenerates to sequential run-to-completion), advancing each by slice
// cycles per round (slice <= 0 selects DefaultSlice).
func NewBatch(pool *Pool, width int, slice sim.Cycle) *Batch {
	if width < 1 {
		width = 1
	}
	if slice <= 0 {
		slice = DefaultSlice
	}
	return &Batch{pool: pool, width: width, slice: slice}
}

// NewHorizonBatch returns a Batch whose Run schedules horizon-aware
// instead of round-robin: the machine with the earliest pending engine
// event runs next, and its slice extends to the batch horizon — the
// cycle at which the next sibling is due — but at least slice cycles
// (the anti-ping-pong floor; <= 0 selects DefaultSlice). Per-machine
// results are byte-identical to NewBatch and to run-to-completion Run
// (only the interleaving across machines changes); retirement order
// follows simulated completion times instead of admission rounds.
func NewHorizonBatch(pool *Pool, width int, slice sim.Cycle) *Batch {
	b := NewBatch(pool, width, slice)
	b.horizon = true
	return b
}

// Slices reports how many machine advances Run made; Switches how many
// of them stepped a different machine than the previous advance — the
// scheduler-overhead pair the batch benchmarks emit.
func (b *Batch) Slices() int64   { return b.slices }
func (b *Batch) Switches() int64 { return b.switches }

// Run drains the feed: it admits scenarios until feed reports no more,
// round-robins the live machines, and returns when every admitted
// scenario has retired. Retirement order is deterministic for a
// deterministic feed (admission order and per-machine cycle counts fix
// it). A panic inside a scenario's build or step is contained to that
// scenario and delivered through its Done callback.
func (b *Batch) Run(feed func() (Scenario, bool)) {
	if b.horizon {
		b.runHorizon(feed)
		return
	}
	type slot struct {
		sc Scenario
		m  *Machine
	}
	var lastM *Machine
	live := make([]slot, 0, b.width)
	exhausted := false
	admit := func() bool {
		for !exhausted && len(live) < b.width {
			sc, ok := feed()
			if !ok {
				exhausted = true
				break
			}
			var m *Machine
			if err := guarded(func() (err error) {
				m, err = b.pool.Get(sc.Cfg, sc.Prog)
				return err
			}); err != nil {
				sc.Done(nil, err)
				continue
			}
			live = append(live, slot{sc, m})
		}
		return len(live) > 0
	}
	for admit() {
		kept := live[:0]
		for _, s := range live {
			b.slices++
			if lastM != s.m {
				if lastM != nil {
					b.switches++
				}
				lastM = s.m
			}
			var res *Result
			var done bool
			err := guarded(func() (err error) {
				var st StepStatus
				if st, err = s.m.Step(b.slice); err != nil || st != StepDone {
					return err
				}
				done = true
				res, err = s.m.Finish()
				return err
			})
			switch {
			case err != nil:
				s.sc.Done(nil, err) // errored machine state is unknown: not pooled
			case done:
				s.sc.Done(res, nil)
				b.pool.Put(s.m)
			default:
				kept = append(kept, s)
			}
		}
		for i := len(kept); i < len(live); i++ {
			live[i] = slot{} // drop retired machine references
		}
		live = kept
	}
}

// hslot is one live machine in the horizon scheduler's ready queue,
// ordered by (next pending event cycle, admission order) — same-cycle
// ties resolve in admission order so the schedule is a pure function of
// the feed.
type hslot struct {
	sc  Scenario
	m   *Machine
	key sim.Cycle
	seq int64
}

func (a hslot) Before(b hslot) bool {
	return a.key < b.key || (a.key == b.key && a.seq < b.seq)
}

// runHorizon drains the feed under horizon-aware scheduling: the
// machine with the earliest pending event advances next, in one slice
// sized to max(slice floor, batch horizon). A machine mid-run always
// has a pending event (a budgeted stop implies pending work), so keys
// are finite and every live slot stays schedulable.
func (b *Batch) runHorizon(feed func() (Scenario, bool)) {
	var ready []hslot
	var seq int64
	var lastSeq int64 = -1
	exhausted := false
	admit := func() {
		for !exhausted && len(ready) < b.width {
			sc, ok := feed()
			if !ok {
				exhausted = true
				break
			}
			var m *Machine
			if err := guarded(func() (err error) {
				m, err = b.pool.Get(sc.Cfg, sc.Prog)
				return err
			}); err != nil {
				sc.Done(nil, err)
				continue
			}
			seq++
			sim.HeapPush(&ready, hslot{sc: sc, m: m, key: m.NextEvent(), seq: seq})
		}
	}
	for {
		admit()
		if len(ready) == 0 {
			return
		}
		s := sim.HeapPop(&ready)
		horizon := sim.Never
		if len(ready) > 0 {
			horizon = ready[0].key
		}
		until := s.m.Now() + b.slice
		if until < s.m.Now() { // overflow: saturate
			until = sim.Never
		}
		if horizon > until {
			until = horizon
		}
		b.slices++
		if s.seq != lastSeq {
			if lastSeq >= 0 {
				b.switches++
			}
			lastSeq = s.seq
		}
		var res *Result
		var done bool
		err := guarded(func() (err error) {
			var st StepStatus
			if st, err = s.m.StepUntil(until); err != nil || st != StepDone {
				return err
			}
			done = true
			res, err = s.m.Finish()
			return err
		})
		switch {
		case err != nil:
			s.sc.Done(nil, err) // errored machine state is unknown: not pooled
		case done:
			s.sc.Done(res, nil)
			b.pool.Put(s.m)
		default:
			s.key = s.m.NextEvent()
			sim.HeapPush(&ready, s)
		}
	}
}

// guarded runs f, converting a panic into an error so one bad scenario
// cannot take down the batch.
func guarded(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell: scenario panicked: %v", r)
		}
	}()
	return f()
}
