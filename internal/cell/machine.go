package cell

import (
	"fmt"

	"repro/internal/dta"
	"repro/internal/ls"
	"repro/internal/mem"
	"repro/internal/mfc"
	"repro/internal/noc"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/spu"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SPE bundles one processing element's components.
type SPE struct {
	Index int
	SPU   *spu.SPU
	LSE   *dta.LSE
	MFC   *mfc.Engine
	LS    *ls.LocalStore
	Alloc *ls.Allocator
}

// Machine is a fully wired CellDTA system ready to run one program.
type Machine struct {
	cfg    Config
	prog   *program.Program
	eng    *sim.Engine
	net    *noc.Network
	memory *mem.Memory
	spes   []*SPE
	dses   []*dta.DSE
	ppe    *PPE
	tracer *trace.Buffer
	rec    *trace.Recorder // non-nil when cfg.Record
	prof   *stats.Profile  // non-nil when cfg.Profile; shared by all SPUs

	faultErr error
	drained  bool      // the one-shot post-completion DMA drain has run
	endAt    sim.Cycle // cycle the run finished at (valid after StepDone)
	knobbed  bool      // ApplyKnobs diverged a parameter from cfg (Reset clears)
}

// Layout describes where the machine placed things in each local store.
type Layout struct {
	CodeBytes  int
	FrameBase  int
	FrameBytes int
	HeapBase   int
	HeapBytes  int
}

// splitFPForRouting decodes an FP for the PPE (kept here to avoid the
// PPE importing dta directly in its hot path).
func splitFPForRouting(fp int64) (spe, slot int, err error) {
	return dta.SplitFP(fp)
}

// magicMem adapts the sparse store to the SPU's perfect-cache backdoor
// (used only by the paper's §4.3 always-hit study).
type magicMem struct{ s *mem.Sparse }

func (m magicMem) MagicRead(addr int64, width int) (int64, error) {
	if width == 4 {
		return m.s.Read32(addr)
	}
	return m.s.Read64(addr)
}

func (m magicMem) MagicWrite(addr int64, v int64, width int) error {
	if width == 4 {
		return m.s.Write32(addr, v)
	}
	return m.s.Write64(addr, v)
}

// New builds a machine for prog. The program must already be validated
// (and transformed, when prefetching is wanted).
func New(cfg Config, prog *program.Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	layout, err := planLayout(cfg, prog)
	if err != nil {
		return nil, err
	}

	m := &Machine{cfg: cfg, prog: prog, eng: sim.NewEngine()}
	if cfg.Record {
		m.rec = trace.NewRecorder(cfg.RecordCap)
		m.tracer = m.rec.Threads
	} else if cfg.TraceCap > 0 {
		m.tracer = trace.NewBuffer(cfg.TraceCap)
	}
	if cfg.Profile {
		// One shared store: the engine is single-threaded and the profile
		// aggregates across SPEs (per-PC attribution is program-relative).
		m.prof = stats.NewProfile()
	}
	m.net = noc.New(cfg.Noc)
	m.net.Rec = m.rec
	netHandle := m.eng.Register(m.net)
	m.net.Attach(netHandle)

	m.memory = mem.New(cfg.Mem, cfg.memEP(), m.net)
	memHandle := m.eng.Register(m.memory)
	m.memory.Attach(memHandle)
	m.net.Register(cfg.memEP(), m.memory)
	m.memory.Fault = m.fail

	lseEP := cfg.lseEP

	// SPEs: LSE ticks before SPU so same-cycle dispatches work. The
	// registration order is also a correctness contract of the SPU's
	// local-store read bursts: every component whose Tick can touch a
	// local store (the network delivering DMA data into it, the LSE
	// writing frames, the MFC streaming PUTs out of it) is registered
	// BEFORE the SPE's SPU, so a same-cycle store is always visible to
	// the SPU's issue at that cycle, and the SPU only ever pre-executes
	// strictly-future local-store reads under the horizon it gets from
	// the engine plus the SetLSWriters wiring below.
	for i := 0; i < cfg.SPEs; i++ {
		store := ls.New(cfg.LS)
		alloc := ls.NewAllocator(layout.HeapBase, layout.HeapBytes)
		lseUnit := dta.NewLSE(cfg.LSE, lseEP(i), i, cfg.dseEP(cfg.nodeOf(i)), cfg.ppeEP(),
			m.net, store, alloc, int64(layout.FrameBase), prog, lseEP)
		lseHandle := m.eng.Register(lseUnit)
		lseUnit.Attach(lseHandle)
		m.net.Register(lseEP(i), lseUnit)
		lseUnit.Fault = m.fail
		lseUnit.Trace = m.tracer

		dmaEng := mfc.New(cfg.MFC, cfg.mfcEP(i), cfg.memEP(), m.net, store)
		mfcHandle := m.eng.Register(dmaEng)
		dmaEng.Attach(mfcHandle)
		m.net.Register(cfg.mfcEP(i), dmaEng)
		dmaEng.Fault = m.fail
		dmaEng.Rec = m.rec
		dmaEng.RecSPE = i

		pipe := spu.New(cfg.SPU, cfg.spuEP(i), i, cfg.memEP(), m.net, lseUnit,
			dmaEng, store, prog)
		pipe.Attach(m.eng.Register(pipe))
		m.net.Register(cfg.spuEP(i), pipe)
		pipe.Fault = m.fail
		pipe.Rec = m.rec
		pipe.Prof = m.prof
		// The only components that ever hold a reference to this SPE's
		// local store are its LSE, its MFC and its SPU (see the
		// constructor calls above) — plus the network, during whose
		// Tick the MFC's and LSE's Deliver calls arrive. Everything
		// else (other SPEs, the DSEs, the PPE, main memory) reaches
		// this store only through a network message, which takes at
		// least MinDeliveryLatency cycles from the sender's tick. The
		// touch group narrows the network term further: only deliveries
		// addressed to this SPE's MFC or LSE matter.
		m.net.DeclareTouchGroup(i, cfg.mfcEP(i), lseEP(i))
		pipe.SetLSWiring(spu.LSWiring{
			NetID: netHandle.ID(), LSEID: lseHandle.ID(), MFCID: mfcHandle.ID(),
			MemID:      memHandle.ID(),
			TouchGroup: i,
			ChainLat:   cfg.Noc.MinDeliveryLatency(),
			GrantLag:   m.net.DeliveryLagLB(),
		})

		// Cross-wiring.
		lseUnit.OnWork = pipe.Wake
		lseUnit.OnFallocResp = pipe.OnFallocResp
		lseUnit.Outstanding = dmaEng.Outstanding
		dmaEng.OnTagIdle = lseUnit.TagIdle
		pipe.Magic = magicMem{m.memory.Store()}

		if err := loadCode(store, prog); err != nil {
			return nil, err
		}
		m.spes = append(m.spes, &SPE{
			Index: i, SPU: pipe, LSE: lseUnit, MFC: dmaEng, LS: store, Alloc: alloc,
		})
	}

	// DSEs (one per node) with a forwarding ring between nodes.
	for n := 0; n < cfg.Nodes; n++ {
		perNode := cfg.SPEs / cfg.Nodes
		var eps []int
		for i := n * perNode; i < (n+1)*perNode; i++ {
			eps = append(eps, lseEP(i))
		}
		var peers []int
		for k := 1; k < cfg.Nodes; k++ {
			peers = append(peers, cfg.dseEP((n+k)%cfg.Nodes))
		}
		d := dta.NewDSE(cfg.DSE, cfg.dseEP(n), n, m.net, eps, cfg.LSE.NumFrames, peers)
		d.Attach(m.eng.Register(d))
		m.net.Register(cfg.dseEP(n), d)
		m.dses = append(m.dses, d)
	}

	// PPE last: it observes the cycle's traffic before deciding to stop.
	m.ppe = NewPPE(cfg.ppeEP(), cfg.dseEP(0), lseEP, m.net, m.eng,
		prog.Entry, prog.EntryArgs, prog.ExpectTokens)
	m.ppe.Attach(m.eng.Register(m.ppe))
	m.net.Register(cfg.ppeEP(), m.ppe)
	m.ppe.Fault = m.fail

	// Initial memory image.
	for _, seg := range prog.Segments {
		if err := m.memory.Store().WriteBytes(seg.Addr, seg.Data); err != nil {
			return nil, fmt.Errorf("cell: loading segment at %#x: %w", seg.Addr, err)
		}
	}
	return m, nil
}

// Config returns the machine's configuration (the pool key for reuse).
func (m *Machine) Config() Config { return m.cfg }

// Reset restores a built machine to its initial state for prog,
// amortising construction across runs: all components rewind to their
// post-New state (statistics cleared, queues emptied, stores zeroed —
// with their backing memory kept), the new program's code and segments
// are loaded, and the engine reschedules everything at cycle 0. The
// configuration is fixed at construction; only the program may change.
// A Reset machine is indistinguishable from a newly built one — the
// differential tests in internal/cell assert run-for-run identity.
func (m *Machine) Reset(prog *program.Program) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	layout, err := planLayout(m.cfg, prog)
	if err != nil {
		return err
	}
	m.prog = prog
	m.faultErr = nil
	m.drained = false
	m.endAt = 0
	if m.knobbed {
		// ApplyKnobs diverged run-time parameters from the construction
		// configuration; restore them so a pooled machine keyed by cfg
		// behaves exactly like a freshly built one.
		m.memory.SetLatency(m.cfg.Mem.Latency)
		for _, spe := range m.spes {
			spe.MFC.SetCmdLatency(m.cfg.MFC.CmdLatency)
		}
		m.knobbed = false
	}
	if m.cfg.Record {
		m.rec.Reset()
		m.tracer = m.rec.Threads
	} else if m.cfg.TraceCap > 0 {
		m.tracer = trace.NewBuffer(m.cfg.TraceCap)
	}
	// Pool safety: a reused machine must not leak the previous run's
	// samples (Reset keeps the component wiring, clears the store).
	m.prof.Reset()
	m.net.Reset()
	m.memory.Reset()
	for _, spe := range m.spes {
		spe.LS.Reset()
		spe.Alloc.Reset(layout.HeapBase, layout.HeapBytes)
		spe.LSE.Reset(prog, int64(layout.FrameBase))
		spe.LSE.Trace = m.tracer
		spe.MFC.Reset()
		spe.SPU.Reset(prog)
		if err := loadCode(spe.LS, prog); err != nil {
			return err
		}
	}
	for _, d := range m.dses {
		d.Reset(m.cfg.LSE.NumFrames)
	}
	m.ppe.Reset(prog.Entry, prog.EntryArgs, prog.ExpectTokens)
	for _, seg := range prog.Segments {
		if err := m.memory.Store().WriteBytes(seg.Addr, seg.Data); err != nil {
			return fmt.Errorf("cell: loading segment at %#x: %w", seg.Addr, err)
		}
	}
	m.eng.Reset()
	return nil
}

// planLayout computes the local-store map and checks capacities.
func planLayout(cfg Config, prog *program.Program) (Layout, error) {
	codeBytes := (prog.CodeLen()*8 + 255) &^ 255
	frameBytes := cfg.LSE.NumFrames * dta.FrameBytes
	heapBase := codeBytes + frameBytes
	heapBytes := cfg.LS.SizeBytes - heapBase
	if heapBytes < 0 {
		return Layout{}, fmt.Errorf("cell: local store too small: code %d + frames %d > %d",
			codeBytes, frameBytes, cfg.LS.SizeBytes)
	}
	if maxPF := prog.MaxPrefetchBytes(); maxPF > heapBytes {
		return Layout{}, fmt.Errorf("cell: prefetch buffer %d B exceeds heap %d B",
			maxPF, heapBytes)
	}
	return Layout{
		CodeBytes: codeBytes, FrameBase: codeBytes,
		FrameBytes: frameBytes, HeapBase: heapBase, HeapBytes: heapBytes,
	}, nil
}

// loadCode materialises the program's encoded instructions in the LS
// code region (the SPU fetches from the template structures; the bytes
// make the layout faithful and debuggable).
func loadCode(store *ls.LocalStore, prog *program.Program) error {
	addr := int64(0)
	for _, t := range prog.Templates {
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			for _, ins := range t.Blocks[k] {
				if err := store.Write64(addr, int64(ins.Encode())); err != nil {
					return fmt.Errorf("cell: code overflows local store at %#x", addr)
				}
				addr += 8
			}
		}
	}
	return nil
}

// dmaBusy reports whether any MFC still has commands queued or in
// flight.
func (m *Machine) dmaBusy() bool {
	for _, spe := range m.spes {
		if spe.MFC.Busy() {
			return true
		}
	}
	return false
}

func (m *Machine) fail(err error) {
	if m.faultErr == nil {
		m.faultErr = err
	}
	m.eng.Stop()
}

// Result is the outcome of one run.
type Result struct {
	Cycles   sim.Cycle
	Tokens   []int64
	SPUs     []stats.SPU
	Agg      stats.SPU // sum over SPUs
	LSEs     []dta.LSEStats
	MFCs     []mfc.Stats
	DSEs     []dta.DSEStats
	Mem      mem.Stats
	Net      noc.Stats
	Trace    *trace.Buffer   // non-nil when Config.TraceCap > 0 or Config.Record
	Rec      *trace.Recorder // non-nil when Config.Record
	Prof     *stats.Profile  // non-nil when Config.Profile (guest cycle profile)
	CheckErr error           // result of the program's functional check
}

// AvgBreakdownPct returns the average SPU breakdown in percent (the
// paper's Figure 5 view).
func (r *Result) AvgBreakdownPct() [stats.NumBuckets]float64 {
	var out [stats.NumBuckets]float64
	total := r.Agg.Breakdown.Total()
	if total == 0 {
		return out
	}
	for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
		out[b] = 100 * float64(r.Agg.Breakdown[b]) / float64(total)
	}
	return out
}

// PipelineUsage returns the machine-wide issue-slot utilisation.
func (r *Result) PipelineUsage() float64 { return r.Agg.PipelineUsage() }

// StepStatus reports how far Step got.
type StepStatus uint8

const (
	// StepBudget: the budget elapsed with the run still in progress —
	// call Step again (typically after advancing sibling machines).
	StepBudget StepStatus = iota
	// StepDone: the run completed (including the post-completion DMA
	// drain); call Finish to assemble the Result.
	StepDone
)

// Step advances the simulation by at most budget cycles and reports
// whether the run completed. It is the bounded-slice form of Run: a
// sequence of Step calls executes the exact same engine schedule as a
// single Run — slice boundaries land on natural event cycles (see
// sim.Engine.RunUntil) and no machine state observes them — so batched,
// interleaved machines stay byte-identical to run-to-completion ones.
// Faults, deadlocks and the Config.MaxCycles limit return errors
// exactly as Run does; after an error the machine must not be stepped
// further.
func (m *Machine) Step(budget sim.Cycle) (StepStatus, error) {
	until := m.eng.Now() + budget
	if until < m.eng.Now() { // saturate (budget == sim.Never: unbounded)
		until = sim.Never
	}
	return m.StepUntil(until)
}

// NextEvent returns the cycle of the machine's earliest pending engine
// event (sim.Never when quiescent) — the virtual-time key a
// horizon-aware batch scheduler orders paused machines by.
func (m *Machine) NextEvent() sim.Cycle { return m.eng.NextEvent() }

// StepUntil is the absolute-cycle form of Step: it advances the
// simulation until the next event would run at a cycle >= until and
// reports whether the run completed. The same fidelity contract as Step
// applies — the boundary lands on a natural event cycle, so any
// sequence of StepUntil calls replays an unbounded Run exactly.
func (m *Machine) StepUntil(until sim.Cycle) (StepStatus, error) {
	limit := sim.Never
	if m.cfg.MaxCycles > 0 {
		limit = m.cfg.MaxCycles
	}
	for {
		u := until
		if limit < u {
			u = limit
		}
		end, st := m.eng.RunUntil(u)
		switch st {
		case sim.RunStopped:
			if m.faultErr != nil {
				return 0, fmt.Errorf("cell: machine fault at cycle %d: %w", end, m.faultErr)
			}
			if !m.drained && m.ppe.Done() && m.dmaBusy() {
				// The activity completed but write-back DMA is still in
				// flight: drain it so the memory image is final (runs
				// until quiescent).
				m.drained = true
				m.eng.Resume()
				continue
			}
			m.endAt = end
			return StepDone, nil
		case sim.RunQuiescent:
			if m.ppe.Done() {
				// All tokens arrived and the system drained: a benign end.
				m.endAt = end
				return StepDone, nil
			}
			return 0, m.eng.DeadlockError()
		default: // sim.RunBudget
			if end >= limit {
				return 0, &sim.ErrLimit{Limit: m.cfg.MaxCycles}
			}
			return StepBudget, nil
		}
	}
}

// Finish gathers statistics after Step returned StepDone.
func (m *Machine) Finish() (*Result, error) {
	end := m.endAt
	res := &Result{Cycles: end, Tokens: m.ppe.Tokens(), Mem: m.memory.Stats(),
		Net: m.net.Stats(), Trace: m.tracer, Rec: m.rec, Prof: m.prof}
	for _, spe := range m.spes {
		spe.SPU.Finalize(end)
		st := spe.SPU.Stats()
		res.SPUs = append(res.SPUs, st)
		res.Agg.Merge(st)
		res.LSEs = append(res.LSEs, spe.LSE.Stats())
		res.MFCs = append(res.MFCs, spe.MFC.Stats())
	}
	for _, d := range m.dses {
		res.DSEs = append(res.DSEs, d.Stats())
	}
	if m.prog.Check != nil {
		res.CheckErr = m.prog.Check(mem.Reader{S: m.memory.Store()}, res.Tokens)
	}
	return res, nil
}

// Run executes the program to completion and gathers statistics.
func (m *Machine) Run() (*Result, error) {
	if _, err := m.Step(sim.Never); err != nil {
		return nil, err
	}
	return m.Finish()
}

// DefaultSlice is the RunSliced budget applied when the caller passes
// slice <= 0: long enough to amortise the scheduling round-trip, short
// enough that a batch of K machines cycles through its working sets
// instead of running one to completion.
const DefaultSlice sim.Cycle = 1 << 16

// RunSliced executes the program to completion in bounded slices,
// calling yield between slices so a cooperative scheduler can advance
// sibling machines. The result is byte-identical to Run — only the
// caller's interleaving across machines changes.
func (m *Machine) RunSliced(slice sim.Cycle, yield func()) (*Result, error) {
	if slice <= 0 {
		slice = DefaultSlice
	}
	for {
		st, err := m.Step(slice)
		if err != nil {
			return nil, err
		}
		if st == StepDone {
			return m.Finish()
		}
		yield()
	}
}

// RunScheduled executes the program to completion under a horizon-aware
// scheduler: before each slice it reports the machine's next pending
// event cycle to sched (parking the caller's fiber until the scheduler
// picks it again) and receives the batch horizon — the cycle at which a
// sibling machine is next due. The slice then runs to the horizon, but
// at least floor cycles past the current point (floor <= 0 selects
// DefaultSlice) so machines with interleaved event streams don't
// ping-pong cycle by cycle; a horizon of sim.Never runs to completion.
// The result is byte-identical to Run — the horizon only sizes slices,
// and slice boundaries land on natural event cycles (see Step).
func (m *Machine) RunScheduled(floor sim.Cycle, sched func(next sim.Cycle) sim.Cycle) (*Result, error) {
	if floor <= 0 {
		floor = DefaultSlice
	}
	for {
		horizon := sched(m.NextEvent())
		until := m.eng.Now() + floor
		if until < m.eng.Now() { // overflow: saturate
			until = sim.Never
		}
		if horizon > until {
			until = horizon
		}
		st, err := m.StepUntil(until)
		if err != nil {
			return nil, err
		}
		if st == StepDone {
			return m.Finish()
		}
	}
}

// MemReader exposes the post-run memory image.
func (m *Machine) MemReader() program.MemReader { return mem.Reader{S: m.memory.Store()} }

// SPEs exposes the machine's processing elements (for tests and tools).
func (m *Machine) SPEs() []*SPE { return m.spes }

// MemSparse exposes the functional backing store of main memory (for
// whole-image comparison by the synth differential checker).
func (m *Machine) MemSparse() *mem.Sparse { return m.memory.Store() }
