package cell

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/program"
)

// resultsIdentical compares every reported number of two runs.
func resultsIdentical(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if want.Cycles != got.Cycles {
		t.Errorf("%s: cycles fresh=%d reused=%d", label, want.Cycles, got.Cycles)
	}
	if !reflect.DeepEqual(want.Tokens, got.Tokens) {
		t.Errorf("%s: tokens fresh=%v reused=%v", label, want.Tokens, got.Tokens)
	}
	if !reflect.DeepEqual(want.Agg, got.Agg) {
		t.Errorf("%s: aggregate stats differ\nfresh=%+v\nreused=%+v", label, want.Agg, got.Agg)
	}
	if !reflect.DeepEqual(want.SPUs, got.SPUs) {
		t.Errorf("%s: per-SPU stats differ", label)
	}
	if !reflect.DeepEqual(want.LSEs, got.LSEs) {
		t.Errorf("%s: LSE stats differ", label)
	}
	if !reflect.DeepEqual(want.MFCs, got.MFCs) {
		t.Errorf("%s: MFC stats differ", label)
	}
	if !reflect.DeepEqual(want.DSEs, got.DSEs) {
		t.Errorf("%s: DSE stats differ", label)
	}
	if want.Mem != got.Mem {
		t.Errorf("%s: memory stats fresh=%+v reused=%+v", label, want.Mem, got.Mem)
	}
	if want.Net != got.Net {
		t.Errorf("%s: network stats fresh=%+v reused=%+v", label, want.Net, got.Net)
	}
}

// TestMachineResetIdentity runs a sequence of different programs on one
// reused machine and checks every run is indistinguishable — cycles,
// all statistics, tokens and the final memory image — from the same
// program on a freshly built machine. This is the contract the machine
// pool relies on.
func TestMachineResetIdentity(t *testing.T) {
	cfg := smallConfig(2)
	progs := []struct {
		name string
		p    *program.Program
	}{
		{"loop", progLoop(t, 100)},
		{"memory", progMemory(t)},
		{"minimal", progMinimal(t)},
		{"dma", progManualDMA(t)},
		{"forkjoin", progForkJoin(t, 6)},
		{"loop-again", progLoop(t, 100)},
	}

	reused, err := New(cfg, progs[0].p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, tc := range progs {
		if i > 0 {
			if err := reused.Reset(tc.p); err != nil {
				t.Fatalf("Reset(%s): %v", tc.name, err)
			}
		}
		got, err := reused.Run()
		if err != nil {
			t.Fatalf("reused Run(%s): %v", tc.name, err)
		}
		if got.CheckErr != nil {
			t.Fatalf("reused %s functional check: %v", tc.name, got.CheckErr)
		}

		fresh, err := New(cfg, tc.p)
		if err != nil {
			t.Fatalf("New(%s): %v", tc.name, err)
		}
		want, err := fresh.Run()
		if err != nil {
			t.Fatalf("fresh Run(%s): %v", tc.name, err)
		}
		resultsIdentical(t, want, got, tc.name)
		if addr, equal := mem.FirstDiff(fresh.MemSparse(), reused.MemSparse()); !equal {
			t.Errorf("%s: memory image diverges at %#x", tc.name, addr)
		}
	}
}

// TestPoolRecyclesMachines exercises Get/Put across configurations and
// programs.
func TestPoolRecyclesMachines(t *testing.T) {
	pool := NewPool()
	cfg1, cfg2 := smallConfig(1), smallConfig(2)

	m1, err := pool.Get(cfg1, progMinimal(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Put(m1)

	// Same config: the pooled machine comes back, reset for a new program.
	m2, err := pool.Get(cfg1, progLoop(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Error("same-config Get did not reuse the pooled machine")
	}
	res, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckErr != nil {
		t.Fatalf("functional check: %v", res.CheckErr)
	}

	// Different config while m2 is out: a fresh build.
	m3, err := pool.Get(cfg2, progMinimal(t))
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m2 {
		t.Error("different-config Get returned the same machine")
	}
	if m3.Config() != cfg2 {
		t.Errorf("Config() = %+v, want cfg2", m3.Config())
	}
	pool.Put(m2)
	pool.Put(m3)

	// A nil pool degrades to plain construction.
	var nilPool *Pool
	m4, err := nilPool.Get(cfg1, progMinimal(t))
	if err != nil {
		t.Fatal(err)
	}
	nilPool.Put(m4)
}
