package cell

import (
	"strings"
	"testing"

	"repro/internal/program"
)

// Failure-injection tests: every malformed runtime situation must abort
// with a diagnostic error, never hang or silently corrupt.

func buildAndRun(t *testing.T, cfg Config, build func(b *program.Builder)) error {
	t.Helper()
	b := program.NewBuilder("robust")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m, err := New(cfg, p)
	if err != nil {
		return err
	}
	_, err = m.Run()
	return err
}

func TestFaultStoreToArbitraryValue(t *testing.T) {
	// STORE to a register holding a non-FP integer must fault with a
	// clear message (a classic program bug: forgetting to FALLOC).
	err := buildAndRun(t, smallConfig(1), func(b *program.Builder) {
		root := b.Template("root")
		root.PL().Load(program.R(1), 0)
		ps := root.PS()
		ps.Movi(program.R(2), 12345) // not an FP
		ps.Store(program.R(1), program.R(2), 0)
		ps.Ffree()
		ps.Stop()
		b.Entry(root, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "non-FP") {
		t.Fatalf("err = %v, want non-FP fault", err)
	}
}

func TestFaultStoreSlotOutOfRange(t *testing.T) {
	err := buildAndRun(t, smallConfig(1), func(b *program.Builder) {
		child := b.Template("child")
		child.PL().Load(program.R(1), 0)
		child.PS().Ffree().Stop()
		root := b.Template("root")
		root.PL().Load(program.R(1), 0)
		ps := root.PS()
		ps.Falloc(program.R(2), child, 1)
		ps.Movi(program.R(3), program.MaxFrameSlots+3)
		ps.Storex(program.R(1), program.R(2), program.R(3)) // slot out of range
		ps.Ffree()
		ps.Stop()
		b.Entry(root, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "slot index") {
		t.Fatalf("err = %v, want slot-range fault", err)
	}
}

func TestFaultOverdeliveredStores(t *testing.T) {
	// Child SC=1 but the root stores twice: the second store hits a
	// frame whose SC is already 0.
	err := buildAndRun(t, smallConfig(1), func(b *program.Builder) {
		child := b.Template("child")
		child.PL().Load(program.R(1), 0)
		child.PS().StoreMailbox(program.R(1), program.R(2), 0).Ffree().Stop()
		root := b.Template("root")
		root.PL().Load(program.R(1), 0)
		ps := root.PS()
		ps.Falloc(program.R(2), child, 1)
		ps.Store(program.R(1), program.R(2), 0)
		ps.Store(program.R(1), program.R(2), 1) // SC already 0
		ps.Ffree()
		ps.Stop()
		b.Entry(root, 9)
	})
	if err == nil || !strings.Contains(err.Error(), "SC already 0") {
		t.Fatalf("err = %v, want SC-exhausted fault", err)
	}
}

func TestFaultBadMemoryRead(t *testing.T) {
	err := buildAndRun(t, smallConfig(1), func(b *program.Builder) {
		root := b.Template("root")
		root.PL().Load(program.R(1), 0)
		ex := root.EX()
		ex.Movi(program.R(2), -64) // negative main-memory address
		ex.Read(program.R(3), program.R(2), 0)
		root.PS().StoreMailbox(program.R(3), program.R(4), 0).Ffree().Stop()
		b.Entry(root, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("err = %v, want out-of-range memory fault", err)
	}
}

func TestDeadlockDumpNamesComponents(t *testing.T) {
	// The deadlock diagnostic must name the stuck components so a user
	// can see where the SC went unsatisfied.
	err := buildAndRun(t, smallConfig(1), func(b *program.Builder) {
		child := b.Template("child")
		child.PL().Load(program.R(1), 0)
		child.PS().StoreMailbox(program.R(1), program.R(2), 0).Ffree().Stop()
		root := b.Template("root")
		root.PL().Load(program.R(1), 0)
		ps := root.PS()
		ps.Falloc(program.R(2), child, 5) // SC never satisfied
		ps.Store(program.R(1), program.R(2), 0)
		ps.Ffree()
		ps.Stop()
		b.Entry(root, 1)
	})
	if err == nil {
		t.Fatal("expected deadlock")
	}
	for _, want := range []string{"deadlock", "lse0", "frames=", "ppe"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic missing %q:\n%v", want, err)
		}
	}
}

func TestCycleLimitAborts(t *testing.T) {
	cfg := smallConfig(1)
	cfg.MaxCycles = 10 // far too small for any program
	err := buildAndRun(t, cfg, func(b *program.Builder) {
		root := b.Template("root")
		root.PL().Load(program.R(1), 0)
		root.PS().StoreMailbox(program.R(1), program.R(2), 0).Ffree().Stop()
		b.Entry(root, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want cycle-limit error", err)
	}
}

func TestMachineRejectsInvalidProgram(t *testing.T) {
	// New must refuse a program whose prefetch reservation exceeds the
	// local-store heap.
	b := program.NewBuilder("huge")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0)
	root.PS().StoreMailbox(program.R(1), program.R(2), 0).Ffree().Stop()
	b.Entry(root, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Templates[0].PrefetchBytes = 100 << 20 // 100 MB
	if _, err := New(smallConfig(1), p); err == nil ||
		!strings.Contains(err.Error(), "exceeds heap") {
		t.Fatalf("err = %v, want heap-exceeded rejection", err)
	}
}

// BenchmarkMachineForkJoin measures whole-machine simulation throughput
// on a fork/join thread storm (scheduler-bound, no main-memory waits).
func BenchmarkMachineForkJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.SPEs = 8
		cfg.MaxCycles = 10_000_000
		prog := progForkJoinBench(b, 24)
		m, err := New(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}

// progForkJoinBench mirrors the test fork/join program without the
// *testing.T plumbing.
func progForkJoinBench(b *testing.B, k int) *program.Program {
	bl := program.NewBuilder("forkjoin")
	joiner := bl.Template("joiner")
	pl := joiner.PL()
	pl.Movi(program.R(1), 0)
	pl.Movi(program.R(2), 0)
	pl.Movi(program.R(3), int32(k))
	pl.Label("top")
	pl.Loadx(program.R(4), program.R(2))
	pl.Add(program.R(1), program.R(1), program.R(4))
	pl.Addi(program.R(2), program.R(2), 1)
	pl.Blt(program.R(2), program.R(3), "top")
	joiner.PS().StoreMailbox(program.R(1), program.R(5), 0).Ffree().Stop()

	worker := bl.Template("worker")
	wpl := worker.PL()
	wpl.Load(program.R(1), 0)
	wpl.Load(program.R(2), 1)
	wpl.Load(program.R(3), 2)
	worker.EX().Shli(program.R(4), program.R(1), 1)
	wps := worker.PS()
	wps.Storex(program.R(4), program.R(2), program.R(3))
	wps.Ffree()
	wps.Stop()

	root := bl.Template("root")
	rpl := root.PL()
	rpl.Load(program.R(1), 0)
	rps := root.PS()
	rps.Falloc(program.R(2), joiner, k)
	rps.Movi(program.R(3), 0)
	rps.Label("fork")
	rps.Falloc(program.R(4), worker, 3)
	rps.Store(program.R(3), program.R(4), 0)
	rps.Store(program.R(2), program.R(4), 1)
	rps.Store(program.R(3), program.R(4), 2)
	rps.Addi(program.R(3), program.R(3), 1)
	rps.Blt(program.R(3), program.R(1), "fork")
	rps.Ffree()
	rps.Stop()
	bl.Entry(root, int64(k))
	p, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}
