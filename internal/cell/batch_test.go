package cell

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/program"
	"repro/internal/sim"
)

// batchPrograms is a mixed workload for batch tests: loops, fork/join
// fan-outs and DMA-heavy memory programs of varying lengths, so the
// machines retire at different rounds and the refill path is exercised.
func batchPrograms(t testing.TB) []*program.Program {
	var progs []*program.Program
	for i := 0; i < 4; i++ {
		progs = append(progs,
			progLoop(t, int64(50+200*i)),
			progForkJoin(t, 2+2*i),
			progMemory(t),
			progMinimal(t),
		)
	}
	return progs
}

// TestMachineStepMatchesRun is the slice-fidelity contract at the
// machine level: driving a machine with Step slices of any size must
// produce a Result identical to Run in every reported number.
func TestMachineStepMatchesRun(t *testing.T) {
	cfg := smallConfig(2)
	for _, p := range []struct {
		name string
		prog *program.Program
	}{
		{"loop", progLoop(t, 500)},
		{"forkjoin", progForkJoin(t, 6)},
		{"memory", progMemory(t)},
		{"dma", progManualDMA(t)},
	} {
		want := run(t, cfg, p.prog)
		for _, budget := range []sim.Cycle{1, 17, 1000, DefaultSlice} {
			m, err := New(cfg, p.prog)
			if err != nil {
				t.Fatalf("%s: New: %v", p.name, err)
			}
			steps := 0
			for {
				st, err := m.Step(budget)
				if err != nil {
					t.Fatalf("%s budget=%d: Step: %v", p.name, budget, err)
				}
				if st == StepDone {
					break
				}
				steps++
				if steps > 10_000_000 {
					t.Fatalf("%s budget=%d: no progress", p.name, budget)
				}
			}
			got, err := m.Finish()
			if err != nil {
				t.Fatalf("%s budget=%d: Finish: %v", p.name, budget, err)
			}
			resultsIdentical(t, want, got, fmt.Sprintf("%s budget=%d", p.name, budget))
		}
	}
}

// TestBatchMatchesSequential runs a mixed scenario stream through Batch
// at several widths and asserts every result is identical to a plain
// run-to-completion Run of the same program, delivered in feed order.
func TestBatchMatchesSequential(t *testing.T) {
	cfg := smallConfig(2)
	progs := batchPrograms(t)
	want := make([]*Result, len(progs))
	for i, p := range progs {
		want[i] = run(t, cfg, p)
	}
	for _, width := range []int{1, 3, 8, 64} {
		got := make([]*Result, len(progs))
		next := 0
		b := NewBatch(NewPool(), width, 100)
		b.Run(func() (Scenario, bool) {
			if next >= len(progs) {
				return Scenario{}, false
			}
			i := next
			next++
			return Scenario{Cfg: cfg, Prog: progs[i], Done: func(res *Result, err error) {
				if err != nil {
					t.Errorf("width=%d scenario %d: %v", width, i, err)
					return
				}
				got[i] = res
			}}, true
		})
		for i := range progs {
			if got[i] == nil {
				t.Fatalf("width=%d: scenario %d never retired", width, i)
			}
			resultsIdentical(t, want[i], got[i], fmt.Sprintf("width=%d scenario=%d", width, i))
		}
	}
}

// TestBatchHorizonMatchesSequential is TestBatchMatchesSequential for
// the horizon-aware scheduler: per-scenario results must be identical
// to run-to-completion regardless of width or slice floor — only the
// interleaving across machines may differ from round-robin.
func TestBatchHorizonMatchesSequential(t *testing.T) {
	cfg := smallConfig(2)
	progs := batchPrograms(t)
	want := make([]*Result, len(progs))
	for i, p := range progs {
		want[i] = run(t, cfg, p)
	}
	for _, width := range []int{1, 3, 8, 64} {
		for _, slice := range []sim.Cycle{1, 100, DefaultSlice} {
			got := make([]*Result, len(progs))
			next := 0
			b := NewHorizonBatch(NewPool(), width, slice)
			b.Run(func() (Scenario, bool) {
				if next >= len(progs) {
					return Scenario{}, false
				}
				i := next
				next++
				return Scenario{Cfg: cfg, Prog: progs[i], Done: func(res *Result, err error) {
					if err != nil {
						t.Errorf("width=%d slice=%d scenario %d: %v", width, slice, i, err)
						return
					}
					got[i] = res
				}}, true
			})
			for i := range progs {
				if got[i] == nil {
					t.Fatalf("width=%d slice=%d: scenario %d never retired", width, slice, i)
				}
				resultsIdentical(t, want[i], got[i],
					fmt.Sprintf("horizon width=%d slice=%d scenario=%d", width, slice, i))
			}
			if b.Slices() < int64(len(progs)) {
				t.Fatalf("width=%d slice=%d: %d slices for %d scenarios", width, slice, b.Slices(), len(progs))
			}
			if b.Switches() >= b.Slices() {
				t.Fatalf("width=%d slice=%d: switches %d not below slices %d",
					width, slice, b.Switches(), b.Slices())
			}
		}
	}
}

// TestBatchContainsFailures checks a panicking scenario (nil program)
// and an erroring scenario (program too big for the configuration)
// retire with errors while their batch-mates complete normally.
func TestBatchContainsFailures(t *testing.T) {
	cfg := smallConfig(1)
	tiny := cfg
	tiny.LS.SizeBytes = 4096 // too small for any program's frames
	scenarios := []Scenario{
		{Cfg: cfg, Prog: nil},                // panics inside Get (nil program)
		{Cfg: tiny, Prog: progMinimal(t)},    // build error
		{Cfg: cfg, Prog: progLoop(t, 100)},   // healthy
		{Cfg: cfg, Prog: progForkJoin(t, 3)}, // healthy
	}
	errs := make([]error, len(scenarios))
	results := make([]*Result, len(scenarios))
	next := 0
	b := NewBatch(NewPool(), 4, 50)
	b.Run(func() (Scenario, bool) {
		if next >= len(scenarios) {
			return Scenario{}, false
		}
		i := next
		next++
		sc := scenarios[i]
		sc.Done = func(res *Result, err error) { results[i], errs[i] = res, err }
		return sc, true
	})
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "panicked") {
		t.Fatalf("nil-program scenario: err = %v, want contained panic", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("undersized-LS scenario reported no error")
	}
	for i := 2; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("healthy scenario %d failed: %v", i, errs[i])
		}
		if results[i] == nil || results[i].CheckErr != nil {
			t.Fatalf("healthy scenario %d: result %v", i, results[i])
		}
	}
}

// TestPoolCap checks the free list stops growing at the per-config cap
// and that NewPoolCap(0) stays unbounded.
func TestPoolCap(t *testing.T) {
	cfg := smallConfig(1)
	prog := progMinimal(t)
	fill := func(p *Pool, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			m, err := New(cfg, prog)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			p.Put(m)
		}
	}
	p := NewPoolCap(3)
	fill(p, 5)
	if got := p.Idle(cfg); got != 3 {
		t.Fatalf("capped pool retains %d machines, want 3", got)
	}
	if m, err := p.Get(cfg, prog); err != nil || m == nil {
		t.Fatalf("Get from capped pool: %v", err)
	}
	if got := p.Idle(cfg); got != 2 {
		t.Fatalf("after Get: %d idle, want 2", got)
	}

	unbounded := NewPoolCap(0)
	fill(unbounded, DefaultPoolCap+2)
	if got := unbounded.Idle(cfg); got != DefaultPoolCap+2 {
		t.Fatalf("unbounded pool retains %d machines, want %d", got, DefaultPoolCap+2)
	}

	def := NewPool()
	fill(def, DefaultPoolCap+5)
	if got := def.Idle(cfg); got != DefaultPoolCap {
		t.Fatalf("default pool retains %d machines, want %d", got, DefaultPoolCap)
	}
}

// benchmarkBatchSweep pushes a fixed 64-scenario stream through Batch
// at the given width, reporting simulated cycles so benchjson can
// derive sim-cycles/sec/core (the batch always runs on one core), plus
// the scheduler-overhead pair: slices (machine advances) and switches
// (advances that changed machine) per sweep — the round-robin vs
// horizon A/B lives in exactly those two numbers.
func benchmarkBatchSweep(b *testing.B, width int, horizon bool) {
	cfg := smallConfig(2)
	base := batchPrograms(b)
	var progs []*program.Program
	for len(progs) < 64 {
		progs = append(progs, base...)
	}
	progs = progs[:64]
	// Size the free list to the batch width, as the batched runners do:
	// a width-64 batch keeps 64 machines live, and a default-cap pool
	// would rebuild retired configurations every round.
	pool := NewBatchPool(width)
	b.ResetTimer()
	var cycles, slices, switches int64
	for i := 0; i < b.N; i++ {
		batch := NewBatch(pool, width, 0)
		if horizon {
			batch = NewHorizonBatch(pool, width, 0)
		}
		next := 0
		batch.Run(func() (Scenario, bool) {
			if next >= len(progs) {
				return Scenario{}, false
			}
			p := progs[next]
			next++
			return Scenario{Cfg: cfg, Prog: p, Done: func(res *Result, err error) {
				if err != nil {
					b.Fatalf("scenario: %v", err)
				}
				cycles += int64(res.Cycles)
			}}, true
		})
		slices += batch.Slices()
		switches += batch.Switches()
	}
	// After the loop: metrics reported before b.N iterations run are
	// discarded by the testing package.
	b.ReportMetric(1, "cores")
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
	b.ReportMetric(float64(slices)/float64(b.N), "slices")
	b.ReportMetric(float64(switches)/float64(b.N), "switches")
}

func BenchmarkBatchSweepW1(b *testing.B)  { benchmarkBatchSweep(b, 1, false) }
func BenchmarkBatchSweepW4(b *testing.B)  { benchmarkBatchSweep(b, 4, false) }
func BenchmarkBatchSweepW16(b *testing.B) { benchmarkBatchSweep(b, 16, false) }
func BenchmarkBatchSweepW64(b *testing.B) { benchmarkBatchSweep(b, 64, false) }

func BenchmarkBatchHorizonSweepW4(b *testing.B)  { benchmarkBatchSweep(b, 4, true) }
func BenchmarkBatchHorizonSweepW16(b *testing.B) { benchmarkBatchSweep(b, 16, true) }
func BenchmarkBatchHorizonSweepW64(b *testing.B) { benchmarkBatchSweep(b, 64, true) }

