// Package cell assembles the CellDTA machine: N SPEs (each an SPU
// pipeline + local store + LSE + MFC), the shared main memory, the
// EIB-like interconnect, one DSE per node and a PPE that offloads the
// TLP activity and collects completion tokens — the platform of the
// paper's §4 evaluation (CellSim extended with DTA support).
package cell

import (
	"fmt"

	"repro/internal/dta"
	"repro/internal/ls"
	"repro/internal/mem"
	"repro/internal/mfc"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spu"
)

// Config is the whole-machine configuration.
type Config struct {
	SPEs  int // number of SPEs (paper: 8)
	Nodes int // DTA nodes; SPEs are split evenly (paper platform: 1)

	Mem mem.Config
	LS  ls.Config
	Noc noc.Config
	MFC mfc.Config
	SPU spu.Config
	LSE dta.LSEConfig
	DSE dta.DSEConfig

	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles sim.Cycle

	// TraceCap enables thread-lifecycle tracing with the given event
	// capacity (0 disables tracing).
	TraceCap int

	// Record enables full timeline recording (SPU dispatch/burst
	// windows, MFC DMA lifetimes, NoC message spans, thread lifecycle)
	// into a trace.Recorder surfaced as Result.Rec. RecordCap bounds
	// each span track (0 = trace.DefaultSpanCap). Both stay value types
	// so Config remains a comparable pool key.
	Record    bool
	RecordCap int

	// Profile enables the guest cycle profiler: every simulated SPU
	// cycle is attributed to (template block, PC, stall cause) in a
	// stats.Profile surfaced as Result.Prof (export with internal/prof).
	// Like Record it is a value type (Config stays a comparable pool
	// key) and it does not perturb simulation results — the profile is
	// fed from the same charges as the stats breakdown.
	Profile bool
}

// DefaultConfig returns the paper's operating point (Tables 2 and 4,
// eight SPEs, one node).
func DefaultConfig() Config {
	return Config{
		SPEs:      8,
		Nodes:     1,
		Mem:       mem.DefaultConfig(),
		LS:        ls.DefaultConfig(),
		Noc:       noc.DefaultConfig(),
		MFC:       mfc.DefaultConfig(),
		SPU:       spu.DefaultConfig(),
		LSE:       dta.DefaultLSEConfig(),
		DSE:       dta.DefaultDSEConfig(),
		MaxCycles: 2_000_000_000,
	}
}

// Validate checks structural sanity of the configuration.
func (c Config) Validate() error {
	if c.SPEs <= 0 {
		return fmt.Errorf("cell: SPEs = %d", c.SPEs)
	}
	if c.Nodes <= 0 || c.SPEs%c.Nodes != 0 {
		return fmt.Errorf("cell: %d SPEs not divisible into %d nodes", c.SPEs, c.Nodes)
	}
	if c.LS.SizeBytes <= c.LSE.NumFrames*dta.FrameBytes {
		return fmt.Errorf("cell: local store (%d B) cannot hold %d frames",
			c.LS.SizeBytes, c.LSE.NumFrames)
	}
	return nil
}

// Endpoint layout: 3 endpoints per SPE, then memory, DSEs, PPE.
func (c Config) spuEP(i int) int { return 3 * i }
func (c Config) mfcEP(i int) int { return 3*i + 1 }
func (c Config) lseEP(i int) int { return 3*i + 2 }
func (c Config) memEP() int      { return 3 * c.SPEs }
func (c Config) dseEP(n int) int { return 3*c.SPEs + 1 + n }
func (c Config) ppeEP() int      { return 3*c.SPEs + 1 + c.Nodes }
func (c Config) nodeOf(spe int) int {
	return spe / (c.SPEs / c.Nodes)
}
