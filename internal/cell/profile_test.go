package cell_test

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/stats"
)

func profileConfig(spes int, profile bool) cell.Config {
	cfg := cell.DefaultConfig()
	cfg.SPEs = spes
	cfg.MaxCycles = 10_000_000
	cfg.Profile = profile
	return cfg
}

// TestProfilingDoesNotPerturbResults is the machine-level regression
// guard of the guest profiler: the same program run with Profile on and
// off must produce identical simulation results — the profiler only
// mirrors charges the stats already make, it never changes them.
func TestProfilingDoesNotPerturbResults(t *testing.T) {
	base := runProgram(t, profileConfig(2, false), pfProgram(t))
	prof := runProgram(t, profileConfig(2, true), pfProgram(t))

	if base.Cycles != prof.Cycles {
		t.Fatalf("cycles differ: plain %d, profiled %d", base.Cycles, prof.Cycles)
	}
	if !reflect.DeepEqual(base.Tokens, prof.Tokens) {
		t.Fatalf("tokens differ: %v vs %v", base.Tokens, prof.Tokens)
	}
	if !reflect.DeepEqual(base.Agg, prof.Agg) {
		t.Fatalf("aggregate stats differ:\nplain    %+v\nprofiled %+v", base.Agg, prof.Agg)
	}
	if !reflect.DeepEqual(base.SPUs, prof.SPUs) {
		t.Fatal("per-SPU stats differ")
	}
	if !reflect.DeepEqual(base.Net, prof.Net) {
		t.Fatalf("NoC stats differ: %+v vs %+v", base.Net, prof.Net)
	}
	if base.Prof != nil {
		t.Fatal("profile present without Config.Profile")
	}
	if prof.Prof == nil || prof.Prof.Len() == 0 {
		t.Fatal("no samples on profiled result")
	}
}

// TestProfileMatchesStats cross-checks the profile against the
// machine's own counters: both are fed from the same charge sites, so
// totals must agree exactly, per cause and overall, and a
// prefetch-transformed run must attribute cycles to PF blocks.
func TestProfileMatchesStats(t *testing.T) {
	res := runProgram(t, profileConfig(2, true), pfProgram(t))
	if got, want := res.Prof.Total(), res.Agg.Breakdown.Total(); got != want {
		t.Fatalf("profile total %d != breakdown total %d", got, want)
	}
	if res.Prof.Causes() != res.Agg.Causes {
		t.Fatalf("profile causes %v != aggregate %v", res.Prof.Causes(), res.Agg.Causes)
	}
	if res.Agg.Causes.Buckets() != res.Agg.Breakdown {
		t.Fatalf("cause fold %v != breakdown %v", res.Agg.Causes.Buckets(), res.Agg.Breakdown)
	}
	var pfCycles, idleCycles int64
	for _, s := range res.Prof.Samples() {
		if s.Loc.Template < 0 {
			idleCycles += s.Total
			continue
		}
		if s.Loc.Block == 0 { // program.PF
			pfCycles += s.Total
		}
	}
	if pfCycles == 0 {
		t.Fatal("prefetch-transformed run attributed no cycles to PF blocks")
	}
	if idleCycles != res.Agg.Breakdown[stats.Idle] {
		t.Fatalf("idle-loc cycles %d != Idle bucket %d", idleCycles, res.Agg.Breakdown[stats.Idle])
	}
}

// TestProfileSurvivesReset: machine reuse keeps the same profile store
// (the SPU wiring set in New stays valid) but clears its samples — a
// pooled machine must not leak a previous run's attribution.
func TestProfileSurvivesReset(t *testing.T) {
	m, err := cell.New(profileConfig(2, true), pfProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Prof.Len() == 0 {
		t.Fatal("first run profiled nothing")
	}
	s1 := res1.Prof.Samples()
	if err := m.Reset(pfProgram(t)); err != nil {
		t.Fatal(err)
	}
	if res1.Prof.Len() != 0 {
		t.Fatal("Reset left samples in the profile store")
	}
	res2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Prof != res1.Prof {
		t.Fatal("Reset replaced the profile store (SPU wiring would be stale)")
	}
	if !reflect.DeepEqual(res2.Prof.Samples(), s1) {
		t.Fatal("identical rerun after Reset produced a different profile")
	}
}
