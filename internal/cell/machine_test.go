package cell

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
)

func smallConfig(spes int) Config {
	cfg := DefaultConfig()
	cfg.SPEs = spes
	cfg.MaxCycles = 5_000_000
	return cfg
}

func run(t *testing.T, cfg Config, p *program.Program) *Result {
	t.Helper()
	m, err := New(cfg, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CheckErr != nil {
		t.Fatalf("functional check: %v", res.CheckErr)
	}
	return res
}

// progMinimal: the root thread posts its argument to the mailbox.
func progMinimal(t testing.TB) *program.Program {
	b := program.NewBuilder("minimal")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0)
	root.PS().
		StoreMailbox(program.R(1), program.R(2), 0).
		Ffree().
		Stop()
	b.Entry(root, 42)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMinimalProgramCompletes(t *testing.T) {
	res := run(t, smallConfig(1), progMinimal(t))
	if len(res.Tokens) != 1 || res.Tokens[0] != 42 {
		t.Fatalf("tokens = %v", res.Tokens)
	}
	if res.Cycles <= 0 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	if res.Agg.Threads != 1 {
		t.Fatalf("threads = %d", res.Agg.Threads)
	}
}

// progLoop: the root sums 1..n with an EX loop.
func progLoop(t testing.TB, n int64) *program.Program {
	b := program.NewBuilder("loop")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0) // n
	ex := root.EX()
	ex.Movi(program.R(2), 0) // sum
	ex.Movi(program.R(3), 0) // i
	ex.Label("top")
	ex.Addi(program.R(3), program.R(3), 1)
	ex.Add(program.R(2), program.R(2), program.R(3))
	ex.Blt(program.R(3), program.R(1), "top")
	root.PS().
		StoreMailbox(program.R(2), program.R(4), 0).
		Ffree().
		Stop()
	b.Entry(root, n)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoopComputesSum(t *testing.T) {
	res := run(t, smallConfig(1), progLoop(t, 100))
	if len(res.Tokens) != 1 || res.Tokens[0] != 5050 {
		t.Fatalf("tokens = %v, want [5050]", res.Tokens)
	}
	// ~3 instructions per iteration, at least 100 cycles.
	if res.Cycles < 100 {
		t.Fatalf("cycles = %d, implausibly fast", res.Cycles)
	}
}

// progForkJoin: root forks k workers; each worker doubles its argument
// and stores it to the joiner; the joiner sums its k inputs and posts.
func progForkJoin(t testing.TB, k int) *program.Program {
	b := program.NewBuilder("forkjoin")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(program.R(1), 0) // sum
		pl.Movi(program.R(2), 0) // i
		pl.Movi(program.R(3), int32(k))
		pl.Label("top")
		pl.Loadx(program.R(4), program.R(2))
		pl.Add(program.R(1), program.R(1), program.R(4))
		pl.Addi(program.R(2), program.R(2), 1)
		pl.Blt(program.R(2), program.R(3), "top")
		joiner.PS().
			StoreMailbox(program.R(1), program.R(5), 0).
			Ffree().
			Stop()
	}

	worker := b.Template("worker")
	{
		pl := worker.PL()
		pl.Load(program.R(1), 0) // value
		pl.Load(program.R(2), 1) // joiner FP
		pl.Load(program.R(3), 2) // result slot in joiner
		ex := worker.EX()
		ex.Shli(program.R(4), program.R(1), 1) // value*2
		ps := worker.PS()
		ps.Storex(program.R(4), program.R(2), program.R(3))
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		pl := root.PL()
		pl.Load(program.R(1), 0) // k
		ps := root.PS()
		ps.Falloc(program.R(2), joiner, k)
		ps.Movi(program.R(3), 0) // i
		ps.Label("fork")
		ps.Falloc(program.R(4), worker, 3)
		ps.Addi(program.R(5), program.R(3), 10) // value = i+10
		ps.Store(program.R(5), program.R(4), 0)
		ps.Store(program.R(2), program.R(4), 1)
		ps.Store(program.R(3), program.R(4), 2)
		ps.Addi(program.R(3), program.R(3), 1)
		ps.Blt(program.R(3), program.R(1), "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, int64(k))
	b.Check(func(memr program.MemReader, tokens []int64) error {
		want := int64(0)
		for i := 0; i < k; i++ {
			want += int64(i+10) * 2
		}
		if len(tokens) != 1 || tokens[0] != want {
			return fmt.Errorf("tokens = %v, want [%d]", tokens, want)
		}
		return nil
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestForkJoinAcrossSPEs(t *testing.T) {
	for _, spes := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("%dspe", spes), func(t *testing.T) {
			res := run(t, smallConfig(spes), progForkJoin(t, 12))
			// 1 root + 1 joiner + 12 workers.
			if res.Agg.Threads != 14 {
				t.Fatalf("threads = %d, want 14", res.Agg.Threads)
			}
			if spes > 1 {
				// Work must actually spread: at least two SPEs ran threads.
				active := 0
				for _, s := range res.SPUs {
					if s.Threads > 0 {
						active++
					}
				}
				if active < 2 {
					t.Fatalf("threads ran on %d SPEs, want >= 2", active)
				}
			}
		})
	}
}

// progMemory: root reads two int32s from main memory, adds them, writes
// the sum back and posts it.
func progMemory(t testing.TB) *program.Program {
	b := program.NewBuilder("memory")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0) // base address
	ex := root.EX()
	ex.Read(program.R(2), program.R(1), 0)
	ex.Read(program.R(3), program.R(1), 4)
	ex.Add(program.R(4), program.R(2), program.R(3))
	ex.Write(program.R(4), program.R(1), 8)
	root.PS().
		StoreMailbox(program.R(4), program.R(5), 0).
		Ffree().
		Stop()
	const base = 0x100000
	b.Entry(root, base)
	buf := make([]byte, 8)
	buf[0], buf[1] = 11, 0 // 11
	buf[4] = 31            // 31
	b.Segment(base, buf)
	b.Check(func(memr program.MemReader, tokens []int64) error {
		if got := memr.Read32(base + 8); got != 42 {
			return fmt.Errorf("mem[base+8] = %d, want 42", got)
		}
		if len(tokens) != 1 || tokens[0] != 42 {
			return fmt.Errorf("tokens = %v", tokens)
		}
		return nil
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMemoryReadWrite(t *testing.T) {
	res := run(t, smallConfig(1), progMemory(t))
	if res.Agg.Instr.Read != 2 || res.Agg.Instr.Write != 1 {
		t.Fatalf("instr = %+v", res.Agg.Instr)
	}
	// Two blocking reads at 150-cycle latency dominate.
	if res.Agg.Breakdown[stats.MemStall] < 250 {
		t.Fatalf("MemStall = %d, want >= 250", res.Agg.Breakdown[stats.MemStall])
	}
}

// progManualDMA: the PF block programs the MFC to fetch 16 bytes; the EX
// block reads the prefetched data from the buffer (via RegPFB).
func progManualDMA(t testing.TB) *program.Program {
	b := program.NewBuilder("manualdma")
	root := b.Template("root")
	pf := root.Block(program.PF)
	pf.Load(program.R(1), 0) // main-memory address from frame
	pf.Mfcea(program.R(1))
	pf.Mov(program.R(2), program.RegPFB)
	pf.Mfclsa(program.R(2))
	pf.Movi(program.R(3), 16)
	pf.Mfcsz(program.R(3))
	pf.Mfctag(program.RegTag)
	pf.Mfcget()

	root.PL().Load(program.R(9), 0) // keep a PL read too
	ex := root.EX()
	ex.Lsrd(program.R(4), program.RegPFB, 0)
	ex.Lsrd(program.R(5), program.RegPFB, 4)
	ex.Add(program.R(6), program.R(4), program.R(5))
	root.PS().
		StoreMailbox(program.R(6), program.R(7), 0).
		Ffree().
		Stop()

	const base = 0x200000
	b.Entry(root, base)
	seg := make([]byte, 16)
	seg[0] = 100
	seg[4] = 55
	b.Segment(base, seg)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Templates[0].PrefetchBytes = 16
	return p
}

func TestManualDMAPrefetch(t *testing.T) {
	res := run(t, smallConfig(1), progManualDMA(t))
	if len(res.Tokens) != 1 || res.Tokens[0] != 155 {
		t.Fatalf("tokens = %v, want [155]", res.Tokens)
	}
	if res.Agg.PFBlocks != 1 {
		t.Fatalf("PFBlocks = %d", res.Agg.PFBlocks)
	}
	if res.Agg.Breakdown[stats.Prefetch] == 0 {
		t.Fatal("no prefetch overhead recorded")
	}
	if res.Agg.Instr.MFC != 5 {
		t.Fatalf("MFC instr = %d, want 5 (lsa/ea/sz/tag/get)", res.Agg.Instr.MFC)
	}
	if res.MFCs[0].Gets != 1 || res.MFCs[0].BytesIn != 16 {
		t.Fatalf("mfc stats = %+v", res.MFCs[0])
	}
	// No blocking main-memory reads at all.
	if res.Agg.Instr.Read != 0 {
		t.Fatalf("Read = %d, want 0", res.Agg.Instr.Read)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Child expects 2 stores but only gets 1.
	b := program.NewBuilder("deadlock")
	child := b.Template("child")
	child.PL().Load(program.R(1), 0)
	child.PS().StoreMailbox(program.R(1), program.R(2), 0).Ffree().Stop()
	root := b.Template("root")
	root.PL().Load(program.R(1), 0)
	ps := root.PS()
	ps.Falloc(program.R(2), child, 2) // SC=2, but only one store follows
	ps.Store(program.R(1), program.R(2), 0)
	ps.Ffree()
	ps.Stop()
	b.Entry(root, 7)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(smallConfig(1), p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var dl *sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestBreakdownSumsToRunLength(t *testing.T) {
	cfg := smallConfig(4)
	res := run(t, cfg, progForkJoin(t, 8))
	for i, s := range res.SPUs {
		if got := s.Breakdown.Total(); got != int64(res.Cycles) {
			t.Fatalf("SPU%d breakdown total %d != cycles %d", i, got, res.Cycles)
		}
	}
}

func TestDeterministicCycles(t *testing.T) {
	a := run(t, smallConfig(4), progForkJoin(t, 10))
	b := run(t, smallConfig(4), progForkJoin(t, 10))
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Agg.Instr != b.Agg.Instr {
		t.Fatalf("instruction counts differ: %+v vs %+v", a.Agg.Instr, b.Agg.Instr)
	}
}

// TestDeterministicStats is the scheduler's determinism regression: two
// machines built from identical configs must agree on every statistic —
// cycle counts, per-SPU breakdowns, LSE/MFC/DSE activity, memory and
// interconnect traffic — not just the headline cycle number. This pins
// the event-queue scheduler's contract (registration-order tie-breaks,
// same-cycle re-pass semantics) to observable machine behaviour.
func TestDeterministicStats(t *testing.T) {
	progs := map[string]func() *program.Program{
		"forkjoin": func() *program.Program { return progForkJoin(t, 10) },
		"dma":      func() *program.Program { return progManualDMA(t) },
	}
	for name, build := range progs {
		t.Run(name, func(t *testing.T) {
			a := run(t, smallConfig(4), build())
			b := run(t, smallConfig(4), build())
			if a.Cycles != b.Cycles {
				t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
			}
			if !reflect.DeepEqual(a.Tokens, b.Tokens) {
				t.Fatalf("tokens differ: %v vs %v", a.Tokens, b.Tokens)
			}
			for what, pair := range map[string][2]any{
				"spus": {a.SPUs, b.SPUs},
				"agg":  {a.Agg, b.Agg},
				"lses": {a.LSEs, b.LSEs},
				"mfcs": {a.MFCs, b.MFCs},
				"dses": {a.DSEs, b.DSEs},
				"mem":  {a.Mem, b.Mem},
				"net":  {a.Net, b.Net},
			} {
				if !reflect.DeepEqual(pair[0], pair[1]) {
					t.Fatalf("%s stats differ:\n%+v\nvs\n%+v", what, pair[0], pair[1])
				}
			}
		})
	}
}

func TestMultiNodeMachine(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Nodes = 2
	res := run(t, cfg, progForkJoin(t, 12))
	if res.Agg.Threads != 14 {
		t.Fatalf("threads = %d", res.Agg.Threads)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SPEs = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted 0 SPEs")
	}
	cfg = DefaultConfig()
	cfg.Nodes = 3 // 8 % 3 != 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted indivisible node split")
	}
	cfg = DefaultConfig()
	cfg.LS.SizeBytes = 1024
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted tiny local store")
	}
}

func TestVirtualFPMachineRuns(t *testing.T) {
	cfg := smallConfig(4)
	cfg.LSE.VirtualFP = true
	res := run(t, cfg, progForkJoin(t, 12))
	if res.Agg.Threads != 14 {
		t.Fatalf("threads = %d", res.Agg.Threads)
	}
	binds := int64(0)
	for _, l := range res.LSEs {
		binds += l.VFPBinds
	}
	if binds == 0 {
		t.Fatal("virtual FP mode never bound a VFP")
	}
}
