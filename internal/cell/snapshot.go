package cell

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/dta"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/snap"
)

// SnapshotVersion is bumped whenever the machine snapshot layout
// changes; restores of a mismatched version fail with
// snap.VersionError instead of misdecoding.
const SnapshotVersion = 1

// SnapshotKey derives the content-addressed checkpoint key for (cfg,
// prog, divergence cycle): two runs with equal keys have byte-identical
// state at every cycle up to div, so a snapshot captured under one may
// seed the other. The key doubles as the envelope identity, making a
// key collision across different machines detectable at restore.
func SnapshotKey(cfg Config, prog *program.Program, div sim.Cycle) string {
	h := sha256.New()
	fmt.Fprintf(h, "celldta-snap/%d\n", SnapshotVersion)
	fmt.Fprintf(h, "cfg:%+v\n", cfg)
	d := prog.Digest()
	h.Write(d[:])
	fmt.Fprintf(h, "\ndiv:%d\n", div)
	return hex.EncodeToString(h.Sum(nil))
}

// Knobs are the configuration parameters that may diverge at a
// checkpoint: both are re-read by their component on every request, so
// flipping them between engine passes is well-defined and applies
// identically on a cold run and a forked one. Zero or negative values
// leave the parameter unchanged.
type Knobs struct {
	MemLatency    int // mem.Config.Latency
	MFCCmdLatency int // mfc.Config.CmdLatency
}

// ApplyKnobs flips the divergence knobs at the current cycle. The
// machine's construction Config is unchanged — Reset restores the
// original values, so pooled reuse stays sound.
func (m *Machine) ApplyKnobs(k Knobs) {
	if k.MemLatency > 0 && k.MemLatency != m.cfg.Mem.Latency {
		m.memory.SetLatency(k.MemLatency)
		m.knobbed = true
	}
	if k.MFCCmdLatency > 0 && k.MFCCmdLatency != m.cfg.MFC.CmdLatency {
		for _, spe := range m.spes {
			spe.MFC.SetCmdLatency(k.MFCCmdLatency)
		}
		m.knobbed = true
	}
}

// Knobbed reports whether ApplyKnobs changed a parameter away from the
// construction configuration (cleared by Reset).
func (m *Machine) Knobbed() bool { return m.knobbed }

// Now returns the engine clock (the cycle a snapshot would capture).
func (m *Machine) Now() sim.Cycle { return m.eng.Now() }

// RunTo advances the run to the first natural event boundary at or
// beyond target — the quiescence-horizon capture point: Step's slice
// boundaries land on engine event cycles that no component can observe
// (see sim.Engine.RunUntil), so the machine state at the returned cycle
// is exactly the state a run-to-completion execution passes through.
// Returns StepDone if the run completes before reaching target.
func (m *Machine) RunTo(target sim.Cycle) (sim.Cycle, StepStatus, error) {
	for m.eng.Now() < target {
		st, err := m.Step(target - m.eng.Now())
		if err != nil {
			return m.eng.Now(), 0, err
		}
		if st == StepDone {
			return m.eng.Now(), StepDone, nil
		}
	}
	return m.eng.Now(), StepBudget, nil
}

// CanSnapshot reports whether the machine is in a serialisable state:
// trace/timeline recording buffers are not serialised, and a faulted or
// post-drain machine has nothing meaningful to capture.
func (m *Machine) CanSnapshot() error {
	if m.cfg.Record || m.cfg.TraceCap > 0 {
		return fmt.Errorf("cell: snapshot with tracing or timeline recording enabled")
	}
	if m.faultErr != nil {
		return fmt.Errorf("cell: snapshot of a faulted machine: %w", m.faultErr)
	}
	if m.drained {
		return fmt.Errorf("cell: snapshot after the post-completion DMA drain")
	}
	return nil
}

// snapshotPPE serialises the host processor's token state. Tokens are
// written in arrival order, which restores both the map and the order
// slice.
func (p *PPE) snapshotPPE(w *snap.Writer) {
	w.Bool(p.started)
	w.I64(p.rootFP)
	w.Int(len(p.order))
	for _, slot := range p.order {
		w.I64(slot)
		w.I64(p.tokens[slot])
	}
	w.I64(int64(p.doneAt))
	w.Bool(p.finished)
}

func (p *PPE) restorePPE(r *snap.Reader) error {
	p.started = r.Bool()
	p.rootFP = r.I64()
	clear(p.tokens)
	p.order = p.order[:0]
	n := r.Int()
	for i := 0; i < n; i++ {
		slot := r.I64()
		v := r.I64()
		p.tokens[slot] = v
		p.order = append(p.order, slot)
	}
	p.doneAt = sim.Cycle(r.I64())
	p.finished = r.Bool()
	return r.Err()
}

// Snapshot serialises the complete machine state between Step calls:
// engine schedule, a deduplicated thread registry, and every
// component's mutable state. Call only at a cycle RunTo (or Step)
// returned — the engine must be idle between passes.
func (m *Machine) Snapshot(w *snap.Writer) error {
	if err := m.CanSnapshot(); err != nil {
		return err
	}
	if err := m.eng.Snapshot(w); err != nil {
		return err
	}
	// Thread registry: every thread reachable from an LSE or SPU, each
	// serialised once; components refer to threads by registry index so
	// shared identity (LSE slot + SPU.cur is the same object) survives
	// the round trip.
	var order []*dta.Thread
	idx := make(map[*dta.Thread]int32)
	visit := func(th *dta.Thread) {
		if _, ok := idx[th]; !ok {
			idx[th] = int32(len(order))
			order = append(order, th)
		}
	}
	for _, spe := range m.spes {
		spe.LSE.Threads(visit)
		spe.SPU.Threads(visit)
	}
	w.Int(len(order))
	for _, th := range order {
		dta.SnapshotThread(w, th)
	}
	index := func(th *dta.Thread) int32 {
		i, ok := idx[th]
		if !ok {
			panic("cell: snapshot found a thread outside the registry")
		}
		return i
	}
	m.net.Snapshot(w)
	m.memory.Snapshot(w)
	for _, spe := range m.spes {
		spe.LS.Snapshot(w)
		spe.Alloc.Snapshot(w)
		spe.LSE.Snapshot(w, index)
		spe.MFC.Snapshot(w)
		spe.SPU.Snapshot(w, index)
	}
	for _, d := range m.dses {
		d.Snapshot(w)
	}
	m.ppe.snapshotPPE(w)
	m.prof.Snapshot(w)
	return nil
}

// Restore rewinds the machine to a snapshot. The machine must have the
// same configuration and program as the one that produced it (enforced
// end-to-end by the envelope identity — see RestoreSnapshot); component
// restores check the structural invariants they can see locally.
func (m *Machine) Restore(r *snap.Reader) error {
	if err := m.CanSnapshot(); err != nil {
		return err
	}
	if err := m.eng.Restore(r); err != nil {
		return err
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	threads := make([]*dta.Thread, n)
	for i := range threads {
		threads[i] = dta.RestoreThread(r)
	}
	if err := r.Err(); err != nil {
		return err
	}
	lookup := func(ref int32) *dta.Thread {
		if ref < 0 || int(ref) >= len(threads) {
			return nil
		}
		return threads[ref]
	}
	if err := m.net.Restore(r); err != nil {
		return err
	}
	if err := m.memory.Restore(r); err != nil {
		return err
	}
	for _, spe := range m.spes {
		if err := spe.LS.Restore(r); err != nil {
			return err
		}
		if err := spe.Alloc.Restore(r); err != nil {
			return err
		}
		if err := spe.LSE.Restore(r, lookup); err != nil {
			return err
		}
		if err := spe.MFC.Restore(r); err != nil {
			return err
		}
		if err := spe.SPU.Restore(r, lookup); err != nil {
			return err
		}
	}
	for _, d := range m.dses {
		if err := d.Restore(r); err != nil {
			return err
		}
	}
	if err := m.ppe.restorePPE(r); err != nil {
		return err
	}
	if err := m.prof.Restore(r); err != nil {
		return err
	}
	m.faultErr = nil
	m.drained = false
	m.endAt = 0
	return r.Err()
}

// EncodeSnapshot captures the machine into a self-describing,
// checksummed envelope carrying key as its identity (use SnapshotKey).
func (m *Machine) EncodeSnapshot(key string) ([]byte, error) {
	var w snap.Writer
	if err := m.Snapshot(&w); err != nil {
		return nil, err
	}
	return snap.Encode(SnapshotVersion, key, w.Bytes()), nil
}

// RestoreSnapshot decodes an envelope produced by EncodeSnapshot and
// rewinds the machine to it. The envelope's identity must equal key —
// recomputed by the caller for this machine's (config, program,
// divergence cycle) — so a snapshot can never be restored into a
// machine it was not captured from.
func (m *Machine) RestoreSnapshot(data []byte, key string) error {
	env, err := snap.Decode(data, SnapshotVersion)
	if err != nil {
		return err
	}
	if env.Identity != key {
		return fmt.Errorf("cell: snapshot identity mismatch: have %.16s…, want %.16s…", env.Identity, key)
	}
	r := snap.NewReader(env.Payload)
	if err := m.Restore(r); err != nil {
		return err
	}
	return r.ExpectEOF()
}
