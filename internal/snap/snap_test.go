package snap

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.I64(-12345678901)
	w.U64(987654321)
	w.Int(-42)
	w.WriteBytes([]byte{1, 2, 3})
	w.WriteBytes(nil)
	w.WriteBytes([]byte{})
	w.String("hello")
	w.String("")

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip")
	}
	if got := r.I64(); got != -12345678901 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.U64(); got != 987654321 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.ReadBytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.ReadBytes(); got != nil {
		t.Errorf("nil Bytes = %v", got)
	}
	if got := r.ReadBytes(); got == nil || len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.ExpectEOF(); err != nil {
		t.Fatal(err)
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{0x80}) // truncated varint
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	first := r.Err()
	// Every further read is a quiet no-op preserving the first error.
	_ = r.U8()
	_ = r.I64()
	_ = r.ReadBytes()
	if r.Err() != first {
		t.Errorf("error not sticky: %v vs %v", r.Err(), first)
	}
}

func TestTrailingBytes(t *testing.T) {
	var w Writer
	w.Int(1)
	w.Int(2)
	r := NewReader(w.Bytes())
	_ = r.Int()
	if err := r.ExpectEOF(); err == nil {
		t.Fatal("ExpectEOF accepted trailing bytes")
	}
}

func TestEnvelope(t *testing.T) {
	payload := []byte("component state bytes")
	data := Encode(3, "sha256:abc", payload)
	env, err := Decode(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if env.Identity != "sha256:abc" || !bytes.Equal(env.Payload, payload) || env.Version != 3 {
		t.Errorf("envelope = %+v", env)
	}
}

func TestEnvelopeVersionMismatch(t *testing.T) {
	data := Encode(3, "k", []byte("p"))
	_, err := Decode(data, 4)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != 3 || ve.Want != 4 {
		t.Errorf("version error = %+v", ve)
	}
}

func TestEnvelopeCorruption(t *testing.T) {
	data := Encode(1, "k", []byte("payload"))
	if _, err := Decode(nil, 1); !errors.Is(err, ErrMagic) {
		t.Errorf("nil: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Decode(bad, 1); !errors.Is(err, ErrMagic) {
		t.Errorf("magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff // checksum byte
	if _, err := Decode(bad, 1); !errors.Is(err, ErrChecksum) {
		t.Errorf("checksum: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[20] ^= 0xff // inside the payload region
	if _, err := Decode(bad, 1); err == nil {
		t.Error("payload flip accepted")
	}
}
