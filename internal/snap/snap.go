// Package snap is the binary serialisation layer of the checkpoint
// subsystem: a small varint codec (Writer/Reader) every component's
// Snapshot/Restore pair is written against, plus a versioned,
// checksummed envelope that makes snapshots safe to cache on disk and
// hand between processes.
//
// Design rules, enforced by convention across the component snapshots:
//
//   - Deterministic bytes: two snapshots of identical machine state are
//     byte-identical. Map iteration is never serialised directly —
//     callers sort keys first — and every slice is length-prefixed so
//     the stream is self-delimiting.
//   - No reflection, no interfaces: each component writes its fields
//     explicitly, so the format is reviewable and version bumps are
//     deliberate (see Envelope.Version).
//   - Sticky errors: a Reader records the first failure and turns every
//     subsequent read into a no-op returning zero values, so restore
//     code reads an entire section and checks Err() once.
package snap

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Writer accumulates a snapshot payload. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the payload size so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// I64 appends a signed integer (zigzag varint).
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// U64 appends an unsigned integer (varint).
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends an int (zigzag varint).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bytes appends a length-prefixed byte slice. A nil slice round-trips
// as nil, an empty one as empty (the distinction matters for buffers
// whose nil-ness is load-bearing).
func (w *Writer) WriteBytes(b []byte) {
	if b == nil {
		w.U64(0)
		return
	}
	w.U64(uint64(len(b)) + 1)
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes a snapshot payload with a sticky error: after the
// first failure every read returns a zero value and Err() reports the
// original cause.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps payload for decoding.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format+" at offset %d", append(args, r.off)...)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// ReadBytes reads a length-prefixed byte slice (a fresh allocation, so
// restored state never aliases the snapshot buffer). Nil round-trips
// as nil.
func (r *Reader) ReadBytes() []byte {
	n := r.U64()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if uint64(len(r.buf)-r.off) < n {
		r.fail("truncated bytes (%d wanted)", n)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)-r.off) < n {
		r.fail("truncated string (%d wanted)", n)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// ExpectEOF fails unless the whole payload was consumed — the restore
// code's final sanity check that reads and writes stayed in lockstep.
func (r *Reader) ExpectEOF() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		r.err = fmt.Errorf("snap: %d trailing bytes", len(r.buf)-r.off)
	}
	return r.err
}

// magic identifies a snapshot envelope. Bumping it (rather than
// Version) is reserved for layout changes of the envelope itself.
var magic = [8]byte{'D', 'T', 'A', 'S', 'N', 'A', 'P', 0}

// Envelope carries one snapshot payload with everything a cache needs
// to refuse a stale or foreign snapshot before touching machine state:
// a format version, the identity key of the machine that produced it
// (configuration + program digest + capture cycle), and a payload
// checksum.
type Envelope struct {
	Version  uint32
	Identity string // content-addressed snapshot key (see cell.SnapshotKey)
	Payload  []byte
}

// Envelope decode errors, distinguished so callers can report a version
// skew differently from corruption.
var (
	ErrMagic    = errors.New("snap: not a snapshot (bad magic)")
	ErrChecksum = errors.New("snap: payload checksum mismatch")
)

// VersionError reports a snapshot written by a different format
// version than the reader understands.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snap: snapshot version %d, this build reads %d", e.Got, e.Want)
}

// Encode frames payload into a self-validating envelope.
func Encode(version uint32, identity string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(magic)+4+8+len(identity)+8+len(payload)+len(sum))
	out = append(out, magic[:]...)
	out = binary.BigEndian.AppendUint32(out, version)
	out = binary.AppendUvarint(out, uint64(len(identity)))
	out = append(out, identity...)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	out = append(out, sum[:]...)
	return out
}

// Decode validates an envelope and returns it. wantVersion is the
// format version this build writes; a mismatch returns *VersionError
// (the payload is not inspected further — a bumped version promises
// nothing about the old layout).
func Decode(data []byte, wantVersion uint32) (*Envelope, error) {
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != string(magic[:]) {
		return nil, ErrMagic
	}
	off := len(magic)
	version := binary.BigEndian.Uint32(data[off:])
	off += 4
	if version != wantVersion {
		return nil, &VersionError{Got: version, Want: wantVersion}
	}
	idLen, n := binary.Uvarint(data[off:])
	if n <= 0 || uint64(len(data)-off-n) < idLen {
		return nil, ErrMagic
	}
	off += n
	identity := string(data[off : off+int(idLen)])
	off += int(idLen)
	payLen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, ErrMagic
	}
	off += n
	if uint64(len(data)-off) != payLen+sha256.Size {
		return nil, ErrMagic
	}
	payload := data[off : off+int(payLen)]
	var sum [sha256.Size]byte
	copy(sum[:], data[off+int(payLen):])
	if sha256.Sum256(payload) != sum {
		return nil, ErrChecksum
	}
	return &Envelope{Version: version, Identity: identity, Payload: payload}, nil
}
