package synth

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/prefetch"
)

// TestGenerateDeterministic: the same seed must produce byte-identical
// programs (assembly text, inputs, entry) on every call — the property
// run keys, corpora and reproducers all stand on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a, err := Generate(FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if asm.Format(a) != asm.Format(b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenerateValid: every seed in a wide range builds a program that
// validates and transforms cleanly.
func TestGenerateValid(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		sc := FromSeed(seed)
		prog, err := Generate(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): generate: %v", seed, sc.Summary(), err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d (%s): validate: %v", seed, sc.Summary(), err)
		}
		if _, err := prefetch.Transform(prog); err != nil {
			t.Fatalf("seed %d (%s): transform: %v", seed, sc.Summary(), err)
		}
	}
}

// TestKindCoverage: the corpus-sized seed range exercises every pattern
// kind — otherwise the fuzzer silently stops covering program space.
func TestKindCoverage(t *testing.T) {
	seen := map[Kind]bool{}
	for seed := uint64(1); seed <= 64; seed++ {
		for _, p := range FromSeed(seed).Patterns {
			seen[p.Kind] = true
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if !seen[k] {
			t.Errorf("kind %s never generated in seeds 1..64", k)
		}
	}
}

// TestNormalizeArbitrary: Normalize must make any pattern — including
// garbage a shrinker or caller could produce — generate a valid
// program, and must be idempotent.
func TestNormalizeArbitrary(t *testing.T) {
	cases := []Pattern{
		{Kind: KStrided, N: -3, Workers: 1000, Stride: 99, Chunk: 7},
		{Kind: KStrided64, N: 0, Workers: 0, Stride: 0},
		{Kind: KGather, N: 1 << 20, Workers: 3},
		{Kind: KChase, N: -1, Workers: 8},
		{Kind: KReduce, N: 100, Depth: 9},
		{Kind: KPipeline, N: 1},
		{Kind: KStencil, N: 100},
		{Kind: Kind(250), N: 5},
	}
	for i, p := range cases {
		q := p.Normalize()
		if q != q.Normalize() {
			t.Errorf("case %d: Normalize not idempotent: %+v vs %+v", i, q, q.Normalize())
		}
		sc := Scenario{Seed: 7, SPEs: 16, Patterns: []Pattern{p}}
		prog, err := Generate(sc)
		if err != nil {
			t.Errorf("case %d (%+v): %v", i, p, err)
			continue
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("case %d (%+v): validate: %v", i, p, err)
		}
	}
}

// TestScenarioForSalt: the default salt reproduces FromSeed; other
// salts draw different scenarios deterministically.
func TestScenarioForSalt(t *testing.T) {
	if !ScenarioFor(5, DefaultSalt).equal(FromSeed(5)) {
		t.Fatal("default salt does not reproduce FromSeed")
	}
	a, b := ScenarioFor(5, 7), ScenarioFor(5, 7)
	if !a.equal(b) {
		t.Fatal("salted derivation not deterministic")
	}
}
