package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/program"
	"repro/internal/stats"
)

// Profiles is the guest-profile pair of one scenario: the original
// program and its prefetch-transformed variant, each run once with the
// cycle profiler on (see cell.Config.Profile). The programs ride along
// because they symbolize the profiles — internal/prof.Run wants both.
type Profiles struct {
	SPEs     int
	OrigProg *program.Program
	PFProg   *program.Program
	Orig     *stats.Profile
	PF       *stats.Profile
}

// ProfileScenario re-runs sc's two simulations with the guest cycle
// profiler enabled. Like RecordScenario the runs are fresh machines
// (never pooled — a pooled machine's profile is cleared on reuse) and
// profiling does not perturb results: the profile mirrors charges the
// stats breakdown already makes.
func ProfileScenario(sc Scenario, opt CheckOptions) (*Profiles, error) {
	sc = sc.Normalize()
	opt = opt.withDefaults()

	prog, err := Generate(sc)
	if err != nil {
		return nil, fmt.Errorf("synth: generate seed %d: %w", sc.Seed, err)
	}
	pfProg, err := opt.Transform(prog)
	if err != nil {
		return nil, fmt.Errorf("synth: transform seed %d: %w", sc.Seed, err)
	}

	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles
	cfg.Profile = true

	p := &Profiles{SPEs: sc.SPEs, OrigProg: prog, PFProg: pfProg}
	origM, err := cell.New(cfg, prog)
	if err != nil {
		return nil, fmt.Errorf("synth: build sim-orig: %w", err)
	}
	origRes, err := opt.runMachine(origM)
	if err != nil {
		return nil, fmt.Errorf("synth: profile sim-orig: %w", err)
	}
	p.Orig = origRes.Prof

	pfM, err := cell.New(cfg, pfProg)
	if err != nil {
		return nil, fmt.Errorf("synth: build sim-pf: %w", err)
	}
	pfRes, err := opt.runMachine(pfM)
	if err != nil {
		return nil, fmt.Errorf("synth: profile sim-pf: %w", err)
	}
	p.PF = pfRes.Prof
	return p, nil
}
