package synth

import (
	"encoding/binary"
	"fmt"

	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/workloads/refcheck"
)

// pipeStages is the fan-in of the pipeline pattern's consumer (partials
// streamed through frame slots 0..pipeStages-1).
const pipeStages = 4

// gatherTableLen is the shared data table size of the gather pattern.
const gatherTableLen = 64

// Per-pattern memory map: every pattern gets disjoint 128 KiB arenas for
// inputs, auxiliary structures (index tables, chase nodes) and outputs,
// so patterns in one scenario can never alias.
func inBase(i int) int64  { return 0x0100_0000 + int64(i)*0x0002_0000 }
func auxBase(i int) int64 { return 0x0200_0000 + int64(i)*0x0002_0000 }
func outBase(i int) int64 { return 0x0300_0000 + int64(i)*0x0002_0000 }

// memExpect is one expected main-memory word after the run.
type memExpect struct {
	addr  int64
	width int
	want  int64
}

// patternRand returns the input-data generator for a pattern's data
// stream. Streams are keyed by the pattern's stable Tag (not its
// position), so shrinking one pattern — or dropping a neighbour —
// never perturbs the data of the survivors.
func patternRand(seed uint64, tag int) *sim.Rand {
	return sim.NewRand(seed*0x9E3779B97F4A7C15 ^ uint64(tag)*0xBF58476D1CE4E5B9)
}

func int32Segment(vals []int32) []byte {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

func int64Segment(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

func randVals32(rng *sim.Rand, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Uint32() & 0x7FFFFFFF)
	}
	return out
}

// Generate builds the DTA program for a scenario through the standard
// builder API. The program is fully self-checking: its Check hook
// compares mailbox tokens and written memory against expectations
// computed here in pure Go. Generation is deterministic in the
// scenario (and therefore in the seed).
func Generate(sc Scenario) (*program.Program, error) {
	sc = sc.Normalize()
	b := program.NewBuilder(fmt.Sprintf("synth-%d", sc.Seed))

	expect := make([]int64, len(sc.Patterns))
	var memExp []memExpect

	// Single-pattern single-worker strided scenarios inline the worker
	// as the entry template: the smallest reproducer shape shrinking
	// bottoms out at (no root, no joiner — ~13 instructions).
	if len(sc.Patterns) == 1 && sc.Patterns[0].Workers == 1 &&
		(sc.Patterns[0].Kind == KStrided || sc.Patterns[0].Kind == KStrided64) {
		p := sc.Patterns[0]
		g := &genCtx{b: b, seed: sc.Seed}
		worker := g.stridedWorker(0, p, true)
		expect[0] = g.stridedData(0, p)
		b.Entry(worker, inBase(0), int64(p.N))
		b.ExpectTokens(1)
		installCheck(b, expect, nil)
		return b.Build()
	}

	root := b.Template("root")
	g := &genCtx{b: b, seed: sc.Seed}
	ps := root.PS()
	for i, p := range sc.Patterns {
		switch p.Kind {
		case KStrided, KStrided64:
			expect[i] = g.spawnStrided(ps, i, p)
		case KGather:
			expect[i] = g.spawnGather(ps, i, p)
		case KChase:
			expect[i] = g.spawnChase(ps, i, p)
		case KReduce:
			expect[i] = g.spawnReduce(ps, i, p)
		case KPipeline:
			tok, mem := g.spawnPipeline(ps, i, p)
			expect[i] = tok
			memExp = append(memExp, mem...)
		case KStencil:
			tok, mem := g.spawnStencil(ps, i, p)
			expect[i] = tok
			memExp = append(memExp, mem...)
		default:
			return nil, fmt.Errorf("synth: unknown pattern kind %v", p.Kind)
		}
	}
	ps.Ffree()
	ps.Stop()

	b.Entry(root, 1)
	b.ExpectTokens(len(sc.Patterns))
	installCheck(b, expect, memExp)
	return b.Build()
}

func installCheck(b *program.Builder, expect []int64, memExp []memExpect) {
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != len(expect) {
			return fmt.Errorf("synth: got %d tokens, want %d", len(tokens), len(expect))
		}
		for i, want := range expect {
			if tokens[i] != want {
				return fmt.Errorf("synth: token[%d] = %d, want %d", i, tokens[i], want)
			}
		}
		for _, m := range memExp {
			var got int64
			if m.width == 8 {
				got = mr.Read64(m.addr)
			} else {
				got = mr.Read32(m.addr)
			}
			if got != m.want {
				return fmt.Errorf("synth: mem[%#x] = %d, want %d", m.addr, got, m.want)
			}
		}
		return nil
	})
}

// genCtx carries builder state shared by the pattern emitters.
type genCtx struct {
	b    *program.Builder
	seed uint64
}

// R aliases program.R for brevity.
func rr(i int) program.Reg { return program.R(i) }

// ---- strided / strided64 ----

// stridedVals returns the pattern's backing array (one slice of
// N*Stride elements per worker; workers read every Stride'th element).
func stridedElems(p Pattern) int { return p.Workers * p.N * p.Stride }

// stridedData places the input segment and returns the expected total.
func (g *genCtx) stridedData(i int, p Pattern) int64 {
	rng := patternRand(g.seed, p.Tag)
	elems := stridedElems(p)
	var total int64
	if p.Kind == KStrided64 {
		vals := make([]int64, elems)
		for k := range vals {
			vals[k] = int64(rng.Uint32() & 0x7FFFFFFF)
		}
		for w := 0; w < p.Workers; w++ {
			for k := 0; k < p.N; k++ {
				total += vals[w*p.N*p.Stride+k*p.Stride]
			}
		}
		g.b.Segment(inBase(i), int64Segment(vals))
		return total
	}
	vals := randVals32(rng, elems)
	for w := 0; w < p.Workers; w++ {
		for k := 0; k < p.N; k++ {
			total += int64(vals[w*p.N*p.Stride+k*p.Stride])
		}
	}
	g.b.Segment(inBase(i), int32Segment(vals))
	return total
}

// stridedWorker emits the worker template. mail=true makes the worker
// post its sum straight to mailbox slot i (single-worker patterns);
// otherwise it stores the partial into joiner frame slot frame[3].
// Frame: 0=byteBase 1=count (+ 2=joinFP 3=slotIdx when joining).
func (g *genCtx) stridedWorker(i int, p Pattern, mail bool) *program.TB {
	elem := 4
	if p.Kind == KStrided64 {
		elem = 8
	}
	step := int32(p.Stride * elem)
	t := g.b.Template(fmt.Sprintf("p%d_worker", i))
	rg := t.RegionChunked(fmt.Sprintf("p%d_slice", i),
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeSlot(1, int64(step), int64(elem)-int64(step)),
		(p.N-1)*p.Stride*elem+elem, p.Chunk)

	pl := t.PL()
	pl.Load(rr(1), 0)
	pl.Load(rr(2), 1)
	if !mail {
		pl.Load(rr(3), 2)
		pl.Load(rr(4), 3)
	}
	ex := t.EX()
	ex.Movi(rr(10), 0)
	ex.Movi(rr(11), 0)
	ex.Label("loop")
	if p.Kind == KStrided64 {
		ex.Read8Region(rg, rr(12), rr(1), 0)
	} else {
		ex.ReadRegion(rg, rr(12), rr(1), 0)
	}
	ex.Add(rr(10), rr(10), rr(12))
	ex.Addi(rr(1), rr(1), step)
	ex.Addi(rr(11), rr(11), 1)
	ex.Blt(rr(11), rr(2), "loop")
	ps := t.PS()
	if mail {
		ps.StoreMailbox(rr(10), rr(13), i)
	} else {
		ps.Storex(rr(10), rr(3), rr(4))
	}
	ps.Ffree()
	ps.Stop()
	return t
}

// joiner emits a W-input summing joiner that mails the total to slot i.
func (g *genCtx) joiner(i, workers int) *program.TB {
	t := g.b.Template(fmt.Sprintf("p%d_join", i))
	pl := t.PL()
	pl.Movi(rr(1), 0)
	pl.Movi(rr(2), 0)
	pl.Movi(rr(3), int32(workers))
	pl.Label("sum")
	pl.Loadx(rr(4), rr(2))
	pl.Add(rr(1), rr(1), rr(4))
	pl.Addi(rr(2), rr(2), 1)
	pl.Blt(rr(2), rr(3), "sum")
	ps := t.PS()
	ps.StoreMailbox(rr(1), rr(5), i)
	ps.Ffree()
	ps.Stop()
	return t
}

func (g *genCtx) spawnStrided(ps *program.Asm, i int, p Pattern) int64 {
	total := g.stridedData(i, p)
	elem := 4
	if p.Kind == KStrided64 {
		elem = 8
	}
	if p.Workers == 1 {
		worker := g.stridedWorker(i, p, true)
		ps.Falloc(rr(1), worker, 2)
		ps.Movi(rr(2), int32(inBase(i)))
		ps.Store(rr(2), rr(1), 0)
		ps.Movi(rr(3), int32(p.N))
		ps.Store(rr(3), rr(1), 1)
		return total
	}
	worker := g.stridedWorker(i, p, false)
	join := g.joiner(i, p.Workers)
	perBytes := int32(p.N * p.Stride * elem)
	ps.Falloc(rr(1), join, p.Workers)
	ps.Movi(rr(2), 0)                // w
	ps.Movi(rr(3), int32(p.Workers)) // W
	ps.Movi(rr(4), perBytes)         // per-worker bytes
	ps.Movi(rr(5), int32(inBase(i))) // base
	ps.Movi(rr(6), int32(p.N))       // count
	ps.Label(fmt.Sprintf("p%d_fork", i))
	ps.Falloc(rr(7), worker, 4)
	ps.Mul(rr(8), rr(2), rr(4))
	ps.Add(rr(9), rr(5), rr(8))
	ps.Store(rr(9), rr(7), 0)
	ps.Store(rr(6), rr(7), 1)
	ps.Store(rr(1), rr(7), 2)
	ps.Store(rr(2), rr(7), 3)
	ps.Addi(rr(2), rr(2), 1)
	ps.Blt(rr(2), rr(3), fmt.Sprintf("p%d_fork", i))
	return total
}

// ---- gather ----

func (g *genCtx) spawnGather(ps *program.Asm, i int, p Pattern) int64 {
	rng := patternRand(g.seed, p.Tag)
	data := randVals32(rng, gatherTableLen)
	idx := make([]int32, p.Workers*p.N)
	var total int64
	for k := range idx {
		idx[k] = int32(rng.Intn(gatherTableLen))
	}
	for _, ix := range idx {
		total += int64(data[ix])
	}
	g.b.Segment(inBase(i), int32Segment(idx))
	g.b.Segment(auxBase(i), int32Segment(data))

	mail := p.Workers == 1
	t := g.b.Template(fmt.Sprintf("p%d_gather", i))
	idxRg := t.RegionChunked(fmt.Sprintf("p%d_idx", i),
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeSlot(1, 4, 0), p.N*4, p.Chunk)
	dataRg := t.RegionChunked(fmt.Sprintf("p%d_table", i),
		program.AddrExpr{Const: auxBase(i)},
		program.SizeConst(gatherTableLen*4), gatherTableLen*4, p.Chunk)

	pl := t.PL()
	pl.Load(rr(1), 0)
	pl.Load(rr(2), 1)
	if !mail {
		pl.Load(rr(3), 2)
		pl.Load(rr(4), 3)
	}
	ex := t.EX()
	ex.Movi(rr(10), 0)
	ex.Movi(rr(11), 0)
	ex.Movi(rr(13), int32(auxBase(i)))
	ex.Label("loop")
	ex.ReadRegion(idxRg, rr(12), rr(1), 0)
	ex.Shli(rr(14), rr(12), 2)
	ex.Add(rr(14), rr(13), rr(14))
	ex.ReadRegion(dataRg, rr(15), rr(14), 0)
	ex.Add(rr(10), rr(10), rr(15))
	ex.Addi(rr(1), rr(1), 4)
	ex.Addi(rr(11), rr(11), 1)
	ex.Blt(rr(11), rr(2), "loop")
	tps := t.PS()
	if mail {
		tps.StoreMailbox(rr(10), rr(16), i)
	} else {
		tps.Storex(rr(10), rr(3), rr(4))
	}
	tps.Ffree()
	tps.Stop()

	if mail {
		ps.Falloc(rr(1), t, 2)
		ps.Movi(rr(2), int32(inBase(i)))
		ps.Store(rr(2), rr(1), 0)
		ps.Movi(rr(3), int32(p.N))
		ps.Store(rr(3), rr(1), 1)
		return total
	}
	join := g.joiner(i, p.Workers)
	ps.Falloc(rr(1), join, p.Workers)
	ps.Movi(rr(2), 0)
	ps.Movi(rr(3), int32(p.Workers))
	ps.Movi(rr(4), int32(p.N*4))
	ps.Movi(rr(5), int32(inBase(i)))
	ps.Movi(rr(6), int32(p.N))
	ps.Label(fmt.Sprintf("p%d_fork", i))
	ps.Falloc(rr(7), t, 4)
	ps.Mul(rr(8), rr(2), rr(4))
	ps.Add(rr(9), rr(5), rr(8))
	ps.Store(rr(9), rr(7), 0)
	ps.Store(rr(6), rr(7), 1)
	ps.Store(rr(1), rr(7), 2)
	ps.Store(rr(2), rr(7), 3)
	ps.Addi(rr(2), rr(2), 1)
	ps.Blt(rr(2), rr(3), fmt.Sprintf("p%d_fork", i))
	return total
}

// ---- pointer chase ----

func (g *genCtx) spawnChase(ps *program.Asm, i int, p Pattern) int64 {
	rng := patternRand(g.seed, p.Tag)
	n := p.N
	vals := randVals32(rng, n)
	// Random placement: nodes live at auxBase + perm[k]*8, chained in
	// visit order k=0..n-1 so the address sequence is data-dependent.
	perm := make([]int, n)
	for k := range perm {
		perm[k] = k
	}
	for k := n - 1; k > 0; k-- {
		j := rng.Intn(k + 1)
		perm[k], perm[j] = perm[j], perm[k]
	}
	nodes := make([]int32, 2*n)
	var total int64
	for k := 0; k < n; k++ {
		total += int64(vals[k])
		next := int64(0)
		if k+1 < n {
			next = auxBase(i) + int64(perm[k+1])*8
		}
		nodes[2*perm[k]] = vals[k]
		nodes[2*perm[k]+1] = int32(next)
	}
	g.b.Segment(auxBase(i), int32Segment(nodes))

	t := g.b.Template(fmt.Sprintf("p%d_chase", i))
	pl := t.PL()
	pl.Load(rr(1), 0)
	pl.Load(rr(2), 1)
	ex := t.EX()
	ex.Movi(rr(10), 0)
	ex.Movi(rr(11), 0)
	ex.Label("loop")
	ex.Read(rr(12), rr(1), 0) // blocking, untagged: not decoupled
	ex.Add(rr(10), rr(10), rr(12))
	ex.Read(rr(1), rr(1), 4)
	ex.Addi(rr(11), rr(11), 1)
	ex.Blt(rr(11), rr(2), "loop")
	tps := t.PS()
	tps.StoreMailbox(rr(10), rr(13), i)
	tps.Ffree()
	tps.Stop()

	head := auxBase(i) + int64(perm[0])*8
	ps.Falloc(rr(1), t, 2)
	ps.Movi(rr(2), int32(head))
	ps.Store(rr(2), rr(1), 0)
	ps.Movi(rr(3), int32(n))
	ps.Store(rr(3), rr(1), 1)
	return total
}

// ---- reduction tree ----

func (g *genCtx) spawnReduce(ps *program.Asm, i int, p Pattern) int64 {
	rng := patternRand(g.seed, p.Tag)
	leaves := 1 << p.Depth
	vals := randVals32(rng, leaves*p.N)
	var total int64
	for _, v := range vals {
		total += int64(v)
	}
	g.b.Segment(inBase(i), int32Segment(vals))

	// Leaf: frame 0=byteBase 1=count 2=parentFP 3=slotIdx.
	leaf := g.b.Template(fmt.Sprintf("p%d_leaf", i))
	rg := leaf.RegionChunked(fmt.Sprintf("p%d_slice", i),
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeSlot(1, 4, 0), p.N*4, p.Chunk)
	pl := leaf.PL()
	pl.Load(rr(1), 0)
	pl.Load(rr(2), 1)
	pl.Load(rr(3), 2)
	pl.Load(rr(4), 3)
	ex := leaf.EX()
	ex.Movi(rr(10), 0)
	ex.Movi(rr(11), 0)
	ex.Label("loop")
	ex.ReadRegion(rg, rr(12), rr(1), 0)
	ex.Add(rr(10), rr(10), rr(12))
	ex.Addi(rr(1), rr(1), 4)
	ex.Addi(rr(11), rr(11), 1)
	ex.Blt(rr(11), rr(2), "loop")
	lps := leaf.PS()
	lps.Storex(rr(10), rr(3), rr(4))
	lps.Ffree()
	lps.Stop()

	// Top combiner: frame 0,1 = child partials; mails the total.
	top := g.b.Template(fmt.Sprintf("p%d_top", i))
	tpl := top.PL()
	tpl.Load(rr(1), 0)
	tpl.Load(rr(2), 1)
	top.EX().Add(rr(3), rr(1), rr(2))
	tps := top.PS()
	tps.StoreMailbox(rr(3), rr(4), i)
	tps.Ffree()
	tps.Stop()

	// Inner combiner (depth 2): frame 0,1 = partials, 2=parentFP,
	// 3=slotIdx.
	var inner *program.TB
	if p.Depth == 2 {
		inner = g.b.Template(fmt.Sprintf("p%d_inner", i))
		ipl := inner.PL()
		ipl.Load(rr(1), 0)
		ipl.Load(rr(2), 1)
		ipl.Load(rr(3), 2)
		ipl.Load(rr(4), 3)
		inner.EX().Add(rr(5), rr(1), rr(2))
		ips := inner.PS()
		ips.Storex(rr(5), rr(3), rr(4))
		ips.Ffree()
		ips.Stop()
	}

	// Spawn (unrolled): top, then inner layer, then leaves.
	rTop, rOne := rr(1), rr(2)
	ps.Falloc(rTop, top, 2)
	ps.Movi(rOne, 1)
	parents := []program.Reg{rTop}
	if p.Depth == 2 {
		rIL, rIR := rr(3), rr(4)
		ps.Falloc(rIL, inner, 4)
		ps.Store(rTop, rIL, 2)
		ps.Store(program.R0, rIL, 3)
		ps.Falloc(rIR, inner, 4)
		ps.Store(rTop, rIR, 2)
		ps.Store(rOne, rIR, 3)
		parents = []program.Reg{rIL, rIR}
	}
	for l := 0; l < leaves; l++ {
		parent := parents[l/2]
		slotReg := program.R0
		if l%2 == 1 {
			slotReg = rOne
		}
		ps.Falloc(rr(5), leaf, 4)
		ps.Movi(rr(6), int32(inBase(i)+int64(l*p.N*4)))
		ps.Store(rr(6), rr(5), 0)
		ps.Movi(rr(7), int32(p.N))
		ps.Store(rr(7), rr(5), 1)
		ps.Store(parent, rr(5), 2)
		ps.Store(slotReg, rr(5), 3)
	}
	return total
}

// ---- producer/consumer pipeline ----

func (g *genCtx) spawnPipeline(ps *program.Asm, i int, p Pattern) (int64, []memExpect) {
	rng := patternRand(g.seed, p.Tag)
	vals := randVals32(rng, p.N)
	var total int64
	for _, v := range vals {
		total += int64(v)
	}
	// The consumer WRITEs the 32-bit truncated total and mails the
	// read-back value, so the token is the sign-extended low word.
	out := int64(int32(total))
	g.b.Segment(inBase(i), int32Segment(vals))
	nc := p.N / pipeStages

	// Consumer: frame 0..3 = partials (from producer), 4 = outAddr
	// (from root). SC = 5.
	cons := g.b.Template(fmt.Sprintf("p%d_cons", i))
	cpl := cons.PL()
	for s := 0; s < pipeStages; s++ {
		cpl.Load(rr(1+s), s)
	}
	cpl.Load(rr(5), pipeStages)
	cex := cons.EX()
	cex.Add(rr(6), rr(1), rr(2))
	cex.Add(rr(6), rr(6), rr(3))
	cex.Add(rr(6), rr(6), rr(4))
	cex.Write(rr(6), rr(5), 0)
	cex.Read(rr(7), rr(5), 0) // read-back: fences the write, feeds the token
	cps := cons.PS()
	cps.StoreMailbox(rr(7), rr(8), i)
	cps.Ffree()
	cps.Stop()

	// Producer: frame 0=byteBase 1=consFP. SC = 2.
	prod := g.b.Template(fmt.Sprintf("p%d_prod", i))
	prg := prod.RegionChunked(fmt.Sprintf("p%d_in", i),
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeConst(int64(p.N*4)), p.N*4, p.Chunk)
	ppl := prod.PL()
	ppl.Load(rr(1), 0)
	ppl.Load(rr(2), 1)
	pex := prod.EX()
	for s := 0; s < pipeStages; s++ {
		sum := rr(10 + s)
		pex.Movi(sum, 0)
		pex.Movi(rr(20), 0)
		pex.Movi(rr(21), int32(nc))
		lbl := fmt.Sprintf("chunk%d", s)
		pex.Label(lbl)
		pex.ReadRegion(prg, rr(22), rr(1), 0)
		pex.Add(sum, sum, rr(22))
		pex.Addi(rr(1), rr(1), 4)
		pex.Addi(rr(20), rr(20), 1)
		pex.Blt(rr(20), rr(21), lbl)
	}
	pps := prod.PS()
	for s := 0; s < pipeStages; s++ {
		pps.Store(rr(10+s), rr(2), s)
	}
	pps.Ffree()
	pps.Stop()

	ps.Falloc(rr(1), cons, pipeStages+1)
	ps.Movi(rr(2), int32(outBase(i)))
	ps.Store(rr(2), rr(1), pipeStages)
	ps.Falloc(rr(3), prod, 2)
	ps.Movi(rr(4), int32(inBase(i)))
	ps.Store(rr(4), rr(3), 0)
	ps.Store(rr(1), rr(3), 1)
	return out, []memExpect{{addr: outBase(i), width: 4, want: out}}
}

// ---- stencil ----

func (g *genCtx) spawnStencil(ps *program.Asm, i int, p Pattern) (int64, []memExpect) {
	rng := patternRand(g.seed, p.Tag)
	n := p.N
	img := randVals32(rng, n*n)
	for k := range img {
		img[k] &= 0xFF
	}
	ref := refcheck.Stencil(img, n)
	var token int64
	var memExp []memExpect
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			v := int64(ref[y*n+x])
			token += v
			memExp = append(memExp, memExpect{
				addr: outBase(i) + int64((y*n+x)*4), width: 4, want: v,
			})
		}
	}
	g.b.Segment(inBase(i), int32Segment(img))

	// Worker: frame 0=inBase 1=outBase. SC = 2.
	t := g.b.Template(fmt.Sprintf("p%d_stencil", i))
	rg := t.RegionChunked(fmt.Sprintf("p%d_img", i),
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeConst(int64(n*n*4)), n*n*4, p.Chunk)
	pl := t.PL()
	pl.Load(rr(1), 0)
	pl.Load(rr(2), 1)
	ex := t.EX()
	ex.Movi(rr(22), 0) // token accumulator
	ex.Movi(rr(10), 1) // y
	ex.Movi(rr(11), int32(n-1))
	ex.Label("yloop")
	ex.Movi(rr(13), 1) // x
	ex.Label("xloop")
	ex.Muli(rr(14), rr(10), int32(n))
	ex.Add(rr(14), rr(14), rr(13))
	ex.Shli(rr(15), rr(14), 2)
	ex.Add(rr(16), rr(1), rr(15)) // center input address
	ex.Movi(rr(17), 0)            // acc
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			off := int32(((dy-1)*n + (dx - 1)) * 4)
			ex.ReadRegion(rg, rr(18), rr(16), off)
			ex.Muli(rr(19), rr(18), refcheck.StencilWeights[dy][dx])
			ex.Add(rr(17), rr(17), rr(19))
		}
	}
	ex.Srai(rr(17), rr(17), 4)
	ex.Add(rr(20), rr(2), rr(15)) // output address
	ex.Write(rr(17), rr(20), 0)
	ex.Read(rr(21), rr(20), 0) // read-back fence
	ex.Add(rr(22), rr(22), rr(21))
	ex.Addi(rr(13), rr(13), 1)
	ex.Blt(rr(13), rr(11), "xloop")
	ex.Addi(rr(10), rr(10), 1)
	ex.Blt(rr(10), rr(11), "yloop")
	tps := t.PS()
	tps.StoreMailbox(rr(22), rr(23), i)
	tps.Ffree()
	tps.Stop()

	ps.Falloc(rr(1), t, 2)
	ps.Movi(rr(2), int32(inBase(i)))
	ps.Store(rr(2), rr(1), 0)
	ps.Movi(rr(3), int32(outBase(i)))
	ps.Store(rr(3), rr(1), 1)
	return token, memExp
}
