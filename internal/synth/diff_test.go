package synth

import (
	"testing"
	"time"
)

// corpusSeeds is the differential test corpus: every seed is run three
// ways (oracle, simulated original, simulated prefetch-transformed) and
// must agree byte for byte. 64 seeds is the acceptance floor; the whole
// corpus completes in well under a minute.
const corpusSeeds = 64

// TestDifferentialCorpus64 is the subsystem's core guarantee: a 64-seed
// corpus of generated scenarios where oracle, original simulation and
// prefetch-transformed simulation produce identical tokens and memory,
// the self-checks pass, no scenario deadlocks, and the transformation's
// performance invariants hold.
func TestDifferentialCorpus64(t *testing.T) {
	start := time.Now()
	var decoupledSome, chaseOnly int
	for seed := uint64(1); seed <= corpusSeeds; seed++ {
		r, err := CheckSeed(seed, CheckOptions{})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if r.Decoupled > 0 {
			decoupledSome++
		} else {
			chaseOnly++
		}
		if r.OrigCycles == 0 || r.PFCycles == 0 {
			t.Errorf("seed %d: zero cycle count (%+v)", seed, r)
		}
	}
	if decoupledSome == 0 {
		t.Error("no corpus scenario exercised the prefetch transformer")
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Errorf("corpus took %s, must stay under 60s", elapsed)
	}
}

// TestDifferentialDeterministic: the full differential check (both
// simulations included) reports identical cycle counts on repeat runs.
func TestDifferentialDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 11, 28} {
		a, err := CheckSeed(seed, CheckOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := CheckSeed(seed, CheckOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.OrigCycles != b.OrigCycles || a.PFCycles != b.PFCycles ||
			a.OracleSteps != b.OracleSteps {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, a, b)
		}
	}
}

// TestCheckScenarioLatency: the checker honours a non-default memory
// latency (used by dtafuzz -quick).
func TestCheckScenarioLatency(t *testing.T) {
	slow, err := CheckSeed(9, CheckOptions{Latency: 300})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CheckSeed(9, CheckOptions{Latency: 50})
	if err != nil {
		t.Fatal(err)
	}
	if slow.OrigCycles <= fast.OrigCycles {
		t.Fatalf("latency knob inert: 300cy=%d vs 50cy=%d", slow.OrigCycles, fast.OrigCycles)
	}
}
