package synth

import (
	"errors"
	"fmt"

	"repro/internal/dta"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// The functional oracle: an untimed interpreter over isa instructions
// that computes a program's expected mailbox tokens and final memory
// image without the cycle engine. It executes original (untransformed)
// programs only — local-store and MFC instructions are rejected — and
// runs threads to completion in a deterministic FIFO order. DTA
// programs synchronise exclusively through frame-store counters, so any
// schedule-independent program produces the same result here as on the
// timed machine; a divergence between the two is a bug in one of them
// (or a program whose result depends on timing, which the differential
// checker treats the same way).

// oracleMemCap bounds the oracle's sparse memory (matches the machine's
// default 512 MB main memory).
const oracleMemCap = 512 << 20

// ErrOracleDeadlock reports that execution drained with waiting threads
// or missing tokens.
var ErrOracleDeadlock = errors.New("synth: oracle deadlock")

// ErrOracleSteps reports the step budget was exhausted (runaway loop).
var ErrOracleSteps = errors.New("synth: oracle step budget exhausted")

// WriteRec records one main-memory write performed by the program (the
// byte ranges the differential checker compares across runs).
type WriteRec struct {
	Addr  int64
	Width int
}

// OracleResult is the oracle's view of a completed run.
type OracleResult struct {
	Tokens  []int64 // mailbox values in slot order (as cell.Result.Tokens)
	Mem     *mem.Sparse
	Writes  []WriteRec
	Steps   int64 // instructions interpreted
	Threads int   // threads executed to STOP
}

// Reader returns the final memory image as a program.MemReader.
func (r *OracleResult) Reader() program.MemReader { return mem.Reader{S: r.Mem} }

type oThread struct {
	id    int
	tmpl  int
	frame [program.MaxFrameSlots]int64
	sc    int
	freed bool // frame released (no further stores allowed)
	done  bool
}

type oracle struct {
	prog     *program.Program
	mem      *mem.Sparse
	threads  []*oThread
	ready    []int
	tokens   map[int64]int64
	writes   []WriteRec
	steps    int64
	maxSteps int64
	threadsN int
}

// RunOracle interprets p (which must be an original, untransformed
// program) and returns its functional result. maxSteps bounds total
// interpreted instructions (<= 0 selects a 50M default).
func RunOracle(p *program.Program, maxSteps int64) (*OracleResult, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synth: oracle input invalid: %w", err)
	}
	if maxSteps <= 0 {
		maxSteps = 50_000_000
	}
	o := &oracle{
		prog:     p,
		mem:      mem.NewSparse(oracleMemCap),
		tokens:   make(map[int64]int64),
		maxSteps: maxSteps,
	}
	for _, seg := range p.Segments {
		if err := o.mem.WriteBytes(seg.Addr, seg.Data); err != nil {
			return nil, fmt.Errorf("synth: oracle segment at %#x: %w", seg.Addr, err)
		}
	}

	// The PPE side: allocate the entry thread with SC = len(EntryArgs)
	// and store the arguments.
	rootFP, err := o.falloc(p.Entry, len(p.EntryArgs))
	if err != nil {
		return nil, err
	}
	for i, arg := range p.EntryArgs {
		if err := o.routeStore(rootFP, int64(i), arg); err != nil {
			return nil, err
		}
	}

	for len(o.ready) > 0 {
		id := o.ready[0]
		o.ready = o.ready[1:]
		if err := o.runThread(o.threads[id]); err != nil {
			return nil, err
		}
	}

	if len(o.tokens) < p.ExpectTokens {
		waiting := 0
		for _, th := range o.threads {
			if !th.done && !th.freed {
				waiting++
			}
		}
		return nil, fmt.Errorf("%w: %d/%d tokens, %d threads waiting on stores",
			ErrOracleDeadlock, len(o.tokens), p.ExpectTokens, waiting)
	}

	slots := make([]int64, 0, len(o.tokens))
	for s := range o.tokens {
		slots = append(slots, s)
	}
	for i := 1; i < len(slots); i++ { // insertion sort; token counts are tiny
		for j := i; j > 0 && slots[j] < slots[j-1]; j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	res := &OracleResult{
		Mem: o.mem, Writes: o.writes, Steps: o.steps, Threads: o.threadsN,
	}
	for _, s := range slots {
		res.Tokens = append(res.Tokens, o.tokens[s])
	}
	return res, nil
}

// falloc allocates a thread object and returns its frame pointer. A
// zero SC thread is immediately ready.
func (o *oracle) falloc(tmpl, sc int) (int64, error) {
	if tmpl < 0 || tmpl >= len(o.prog.Templates) {
		return 0, fmt.Errorf("synth: oracle falloc of template %d (have %d)", tmpl, len(o.prog.Templates))
	}
	if sc < 0 || sc > program.MaxFrameSlots {
		return 0, fmt.Errorf("synth: oracle falloc sc %d", sc)
	}
	th := &oThread{id: len(o.threads), tmpl: tmpl, sc: sc}
	o.threads = append(o.threads, th)
	if sc == 0 {
		o.ready = append(o.ready, th.id)
	}
	return dta.MakeFP(0, th.id), nil
}

// routeStore delivers a frame store: to the mailbox, or to a thread's
// frame (decrementing its SC).
func (o *oracle) routeStore(fp, slot, value int64) error {
	if dta.IsMailbox(fp) {
		if _, dup := o.tokens[slot]; dup {
			return fmt.Errorf("synth: oracle duplicate mailbox token in slot %d", slot)
		}
		o.tokens[slot] = value
		return nil
	}
	if !dta.IsFP(fp) {
		return fmt.Errorf("synth: oracle store to non-FP value %#x", fp)
	}
	_, id, err := dta.SplitFP(fp)
	if err != nil {
		return err
	}
	if id >= len(o.threads) {
		return fmt.Errorf("synth: oracle store to unknown thread %d", id)
	}
	th := o.threads[id]
	if th.freed {
		return fmt.Errorf("synth: oracle store to freed frame of thread %d", id)
	}
	if th.sc <= 0 {
		return fmt.Errorf("synth: oracle store to thread %d with SC already 0", id)
	}
	if slot < 0 || slot >= program.MaxFrameSlots {
		return fmt.Errorf("synth: oracle frame slot %d out of range", slot)
	}
	th.frame[slot] = value
	th.sc--
	if th.sc == 0 {
		o.ready = append(o.ready, th.id)
	}
	return nil
}

// runThread executes a ready thread's PL, EX and PS blocks to
// completion.
func (o *oracle) runThread(th *oThread) error {
	var regs [isa.NumRegs]int64
	regs[isa.RegFP] = dta.MakeFP(0, th.id)
	regs[isa.RegTag] = int64(th.id)
	tmpl := o.prog.Templates[th.tmpl]
	if len(tmpl.Blocks[program.PF]) > 0 {
		return fmt.Errorf("synth: oracle cannot run transformed template %q (PF block present)", tmpl.Name)
	}

	for _, kind := range []program.BlockKind{program.PL, program.EX, program.PS} {
		code := tmpl.Blocks[kind]
		pc := 0
		for pc < len(code) {
			o.steps++
			if o.steps > o.maxSteps {
				return fmt.Errorf("%w (%d)", ErrOracleSteps, o.maxSteps)
			}
			ins := code[pc]
			info := isa.MustInfo(ins.Op)
			a, bv := regs[ins.Ra], regs[ins.Rb]

			set := func(r uint8, v int64) {
				if r != isa.RegZero {
					regs[r] = v
				}
			}

			switch ins.Op {
			case isa.NOP:

			case isa.MOVI:
				set(ins.Rd, int64(ins.Imm))
			case isa.MOVHI:
				set(ins.Rd, int64(ins.Imm)<<32)
			case isa.MOV:
				set(ins.Rd, a)

			case isa.ADD, isa.ADDI, isa.SUB, isa.SUBI, isa.MUL, isa.MULI,
				isa.DIV, isa.REM, isa.AND, isa.ANDI, isa.OR, isa.ORI,
				isa.XOR, isa.XORI, isa.SHL, isa.SHLI, isa.SHR, isa.SHRI,
				isa.SRA, isa.SRAI, isa.CMPEQ, isa.CMPLT, isa.CMPLTU:
				set(ins.Rd, isa.EvalALU(ins.Op, a, bv, int64(ins.Imm)))

			case isa.JMP, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
				if isa.BranchTaken(ins.Op, a, bv) {
					pc = int(ins.Imm)
					continue
				}

			case isa.LOAD, isa.LOADX:
				slot := int64(ins.Imm)
				if ins.Op == isa.LOADX {
					slot = a
				}
				if slot < 0 || slot >= program.MaxFrameSlots {
					return fmt.Errorf("synth: oracle frame load slot %d in %s", slot, tmpl.Name)
				}
				set(ins.Rd, th.frame[slot])

			case isa.STORE, isa.STOREX:
				slot := int64(ins.Imm)
				if ins.Op == isa.STOREX {
					slot = bv
				}
				if err := o.routeStore(a, slot, regs[ins.Rd]); err != nil {
					return fmt.Errorf("%w (in %s/%s[%d])", err, tmpl.Name, kind, pc)
				}

			case isa.READ, isa.READ8:
				addr := a + int64(ins.Imm)
				var v int64
				var err error
				if ins.Op == isa.READ {
					v, err = o.mem.Read32(addr)
				} else {
					v, err = o.mem.Read64(addr)
				}
				if err != nil {
					return fmt.Errorf("synth: oracle read in %s: %w", tmpl.Name, err)
				}
				set(ins.Rd, v)

			case isa.WRITE, isa.WRITE8:
				addr := a + int64(ins.Imm)
				width := 4
				var err error
				if ins.Op == isa.WRITE {
					err = o.mem.Write32(addr, regs[ins.Rd])
				} else {
					width = 8
					err = o.mem.Write64(addr, regs[ins.Rd])
				}
				if err != nil {
					return fmt.Errorf("synth: oracle write in %s: %w", tmpl.Name, err)
				}
				o.writes = append(o.writes, WriteRec{Addr: addr, Width: width})

			case isa.FALLOC, isa.FALLOCX:
				var ft, sc int
				if ins.Op == isa.FALLOC {
					ft, sc = isa.UnpackFalloc(ins.Imm)
				} else {
					ft, sc = int(a), int(bv)
				}
				fp, err := o.falloc(ft, sc)
				if err != nil {
					return err
				}
				set(ins.Rd, fp)

			case isa.FFREE:
				th.freed = true

			case isa.STOP:
				th.done = true
				o.threadsN++
				return nil

			default:
				_ = info
				return fmt.Errorf("synth: oracle cannot interpret %s (op %s in %s/%s): transformed or LS/MFC code is outside the untimed model",
					ins, ins.Op, tmpl.Name, kind)
			}
			pc++
		}
	}
	return fmt.Errorf("synth: oracle PS block of %s fell through without STOP", tmpl.Name)
}
