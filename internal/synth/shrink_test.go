package synth

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/program"
)

// buggyTransform wraps the real transformer and then corrupts the first
// rewritten local-store access by shifting its offset one word — the
// classic off-by-one a region-offset bug would produce. The injected
// defect only manifests in transformed execution, exactly the class of
// bug the differential checker exists to catch.
func buggyTransform(p *program.Program) (*program.Program, error) {
	q, err := prefetch.Transform(p)
	if err != nil {
		return nil, err
	}
	for _, t := range q.Templates {
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			for i := range t.Blocks[k] {
				ins := &t.Blocks[k][i]
				if ins.Op == isa.LSRDX || ins.Op == isa.LSRDX8 {
					ins.Imm += 4
					return q, nil
				}
			}
		}
	}
	return q, nil
}

// TestInjectedBugCaughtAndShrunk is the subsystem's self-test: a
// deliberately broken transformer must (a) be caught by the
// differential corpus and (b) shrink to a reproducer of at most 20
// instructions whose dump regenerates the failure.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	opt := CheckOptions{Transform: buggyTransform}

	var failing *DivergenceError
	var seed uint64
	for s := uint64(1); s <= corpusSeeds; s++ {
		if _, err := CheckSeed(s, opt); err != nil {
			de, ok := err.(*DivergenceError)
			if !ok {
				t.Fatalf("seed %d: non-divergence error: %v", s, err)
			}
			failing, seed = de, s
			break
		}
	}
	if failing == nil {
		t.Fatal("injected transformer bug slipped through the whole corpus")
	}

	res, err := Shrink(failing.Scenario, opt)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if res.CodeLen == 0 || res.CodeLen > 20 {
		t.Fatalf("seed %d shrank to %d instructions (%s), want <= 20",
			seed, res.CodeLen, res.Minimal.Summary())
	}
	// The minimal scenario must still fail on a fresh check.
	if _, err := CheckScenario(res.Minimal, opt); err == nil {
		t.Fatalf("minimal scenario %s does not reproduce", res.Minimal.Summary())
	}
	// And it must pass with the real transformer (the bug is in the
	// transform, not the scenario).
	if _, err := CheckScenario(res.Minimal, CheckOptions{}); err != nil {
		t.Fatalf("minimal scenario fails even with the real transformer: %v", err)
	}

	var b strings.Builder
	if err := WriteReproducer(&b, res, opt); err != nil {
		t.Fatalf("reproducer: %v", err)
	}
	dump := b.String()
	for _, want := range []string{".program", "# failure:", "# spec:", ".region"} {
		if !strings.Contains(dump, want) {
			t.Errorf("reproducer missing %q:\n%s", want, dump)
		}
	}
}

// TestShrinkRejectsPassing: shrinking a healthy scenario is a caller
// bug and must error rather than loop.
func TestShrinkRejectsPassing(t *testing.T) {
	if _, err := Shrink(FromSeed(2), CheckOptions{}); err == nil {
		t.Fatal("Shrink accepted a passing scenario")
	}
}
