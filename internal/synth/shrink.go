package synth

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/asm"
)

// Shrinking: given a failing scenario, greedily try smaller scenarios
// until no reduction still fails, then report the minimum together with
// an asm.Format dump of the offending program. Reductions operate on
// the scenario spec (not raw instructions), so every candidate is a
// valid generator output and the final reproducer regenerates from its
// spec alone.

// shrinkCandidates proposes strictly smaller scenarios, most aggressive
// first (dropping whole patterns, collapsing kinds) so the greedy loop
// converges in few probes.
func shrinkCandidates(sc Scenario) []Scenario {
	var out []Scenario
	emit := func(s Scenario) { out = append(out, s.Normalize()) }

	// Drop each pattern.
	if len(sc.Patterns) > 1 {
		for i := range sc.Patterns {
			c := Scenario{Seed: sc.Seed, SPEs: sc.SPEs}
			c.Patterns = append(c.Patterns, sc.Patterns[:i]...)
			c.Patterns = append(c.Patterns, sc.Patterns[i+1:]...)
			emit(c)
		}
	}
	// Convert composite kinds to the simplest one that still exercises
	// a prefetched region.
	for i, p := range sc.Patterns {
		if p.Kind != KStrided {
			c := sc.clone()
			c.Patterns[i] = Pattern{Kind: KStrided, N: p.N, Workers: p.Workers, Stride: 1, Chunk: p.Chunk, Tag: p.Tag}
			emit(c)
		}
	}
	// Per-pattern parameter reductions.
	for i, p := range sc.Patterns {
		reduce := func(f func(*Pattern)) {
			c := sc.clone()
			f(&c.Patterns[i])
			emit(c)
		}
		if p.N > 1 {
			reduce(func(q *Pattern) { q.N /= 2 })
			reduce(func(q *Pattern) { q.N = 1 })
		}
		if p.Workers > 1 {
			reduce(func(q *Pattern) { q.Workers /= 2 })
			reduce(func(q *Pattern) { q.Workers = 1 })
		}
		if p.Stride > 1 {
			reduce(func(q *Pattern) { q.Stride = 1 })
		}
		if p.Depth > 1 {
			reduce(func(q *Pattern) { q.Depth = 1 })
		}
		if p.Chunk > 0 {
			reduce(func(q *Pattern) { q.Chunk = 0 })
		}
	}
	if sc.SPEs > 1 {
		c := sc.clone()
		c.SPEs = 1
		emit(c)
	}
	return out
}

func (s Scenario) clone() Scenario {
	c := Scenario{Seed: s.Seed, SPEs: s.SPEs}
	c.Patterns = append([]Pattern(nil), s.Patterns...)
	return c
}

func (s Scenario) equal(t Scenario) bool {
	if s.Seed != t.Seed || s.SPEs != t.SPEs || len(s.Patterns) != len(t.Patterns) {
		return false
	}
	for i := range s.Patterns {
		if s.Patterns[i] != t.Patterns[i] {
			return false
		}
	}
	return true
}

// ShrinkResult is a minimised failing scenario.
type ShrinkResult struct {
	Original Scenario
	Minimal  Scenario
	Err      *DivergenceError // the minimal scenario's failure
	Probes   int              // candidate checks performed
	CodeLen  int              // instruction count of the minimal program
}

// Shrink minimises a failing scenario: it re-checks candidates with the
// same options and keeps any strictly smaller scenario that still
// fails (not necessarily with the same message — any divergence is a
// bug worth keeping). The input must fail under opt; if it does not,
// Shrink returns an error.
func Shrink(sc Scenario, opt CheckOptions) (*ShrinkResult, error) {
	sc = sc.Normalize()
	cur := sc
	_, err := CheckScenario(cur, opt)
	if err == nil {
		return nil, fmt.Errorf("synth: Shrink called on a passing scenario (%s)", sc.Summary())
	}
	curErr, ok := err.(*DivergenceError)
	if !ok {
		return nil, fmt.Errorf("synth: unexpected check error type: %w", err)
	}

	probes := 0
	const maxProbes = 400 // worst case is far below this; a hard stop keeps shrinking bounded
	for probes < maxProbes {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if cand.equal(cur) {
				continue
			}
			probes++
			if probes >= maxProbes {
				break
			}
			if _, err := CheckScenario(cand, opt); err != nil {
				if de, ok := err.(*DivergenceError); ok {
					cur, curErr = cand, de
					improved = true
					break
				}
				return nil, fmt.Errorf("synth: shrink probe failed unexpectedly: %w", err)
			}
		}
		if !improved {
			break
		}
	}

	codeLen := 0
	if prog, err := Generate(cur); err == nil {
		codeLen = prog.CodeLen()
	}
	return &ShrinkResult{
		Original: sc, Minimal: cur, Err: curErr, Probes: probes, CodeLen: codeLen,
	}, nil
}

// WriteReproducer renders a self-contained failure report: the minimal
// scenario spec, the divergence, and asm.Format dumps of the original
// and (when it transforms cleanly) the prefetched program. The spec
// line alone reproduces the failure via Generate/CheckScenario.
func WriteReproducer(w io.Writer, r *ShrinkResult, opt CheckOptions) error {
	opt = opt.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "# synth reproducer (generator %s)\n", GenVersion)
	fmt.Fprintf(&b, "# original: %s\n", r.Original.Summary())
	fmt.Fprintf(&b, "# minimal:  %s\n", r.Minimal.Summary())
	fmt.Fprintf(&b, "# failure:  %s\n", r.Err.Error())
	fmt.Fprintf(&b, "# spec: seed=%d spes=%d patterns=%+v\n", r.Minimal.Seed, r.Minimal.SPEs, r.Minimal.Patterns)
	prog, err := Generate(r.Minimal)
	if err != nil {
		fmt.Fprintf(&b, "# generate failed: %v\n", err)
	} else {
		fmt.Fprintf(&b, "\n# ---- original program (%d instructions) ----\n", prog.CodeLen())
		b.WriteString(asm.Format(prog))
		if pfProg, err := opt.Transform(prog); err == nil {
			fmt.Fprintf(&b, "\n# ---- transformed program (%d instructions) ----\n", pfProg.CodeLen())
			b.WriteString(asm.Format(pfProg))
		} else {
			fmt.Fprintf(&b, "\n# transform failed: %v\n", err)
		}
	}
	_, err = io.WriteString(w, b.String())
	return err
}
