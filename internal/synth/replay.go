package synth

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/program"
	"repro/internal/sim"
)

// Replay is a live machine rewound to just before a cycle of interest:
// the time-travel handle for debugging a fuzz reproducer. The machine
// is paused at At — the last event boundary strictly before the
// requested target (or before completion, whichever comes first) — and
// may be stepped forward with cell.Machine.Step to watch the suspect
// window unfold. Snapshot re-seeds the same state, so the window can
// be replayed as many times as the investigation needs:
//
//	r, _ := synth.ReplayTo(sc, opt, true, divergeCycle)
//	r.Machine.Step(1) ... // watch the divergence happen
//	r.Rewind()            // and again
type Replay struct {
	Machine  *cell.Machine
	At       sim.Cycle // boundary the machine is paused at (< Target)
	Target   sim.Cycle // the cycle that was asked for
	Snapshot []byte    // encoded image of the paused state
	Key      string    // its cell.SnapshotKey (for RestoreSnapshot)
}

// Rewind restores the machine to the paused boundary, undoing any
// stepping done since the Replay was produced (or the previous Rewind).
func (r *Replay) Rewind() error {
	return r.Machine.RestoreSnapshot(r.Snapshot, r.Key)
}

// SnapshotStore is where a Replayer keeps the boundary snapshots it
// captures, so later probes restore instead of re-simulating.
// *harness.CheckpointCache satisfies it (byte-capped, LRU, optional
// disk spill); a plain map wrapper works for self-contained sessions.
type SnapshotStore interface {
	// Get returns the blob stored under key, if still present.
	Get(key string) ([]byte, bool)
	// Put stores blob under key (the store may evict it later).
	Put(key string, blob []byte)
}

// mapStore is the Replayer's default store: unbounded, session-local.
type mapStore map[string][]byte

func (s mapStore) Get(key string) ([]byte, bool) { b, ok := s[key]; return b, ok }
func (s mapStore) Put(key string, blob []byte)   { s[key] = blob }

// Replayer is a bisection session over one scenario's simulation: it
// owns one machine and a store of boundary snapshots accumulated across
// ReplayTo probes, so probing cycle T costs re-simulation only from the
// warmest captured boundary below T — a bisection's probes converge, so
// each one starts ever closer to its target and the whole search is
// O(log) re-simulation instead of one cold run per probe.
//
// Successive ReplayTo calls reuse the one machine: a new probe
// invalidates the previous Replay's paused state (its Snapshot/Key
// remain valid for RestoreSnapshot). Like a machine, a Replayer is
// confined to one goroutine.
type Replayer struct {
	sc    Scenario
	cfg   cell.Config
	prog  *program.Program
	m     *cell.Machine
	store SnapshotStore
	marks []sim.Cycle // boundary cycles captured so far, ascending
}

// NewReplayer prepares a replay session for sc — the original program,
// or the prefetch-transformed one when transformed is set. store keeps
// the boundary snapshots; nil selects an unbounded session-local map
// (pass a *harness.CheckpointCache to bound bytes or share captures
// with the fork machinery — keys are cell.SnapshotKey either way).
func NewReplayer(sc Scenario, opt CheckOptions, transformed bool, store SnapshotStore) (*Replayer, error) {
	sc = sc.Normalize()
	opt = opt.withDefaults()
	prog, err := Generate(sc)
	if err != nil {
		return nil, fmt.Errorf("synth: replay seed %d: %w", sc.Seed, err)
	}
	if transformed {
		if prog, err = opt.Transform(prog); err != nil {
			return nil, fmt.Errorf("synth: replay seed %d: transform: %w", sc.Seed, err)
		}
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles
	if store == nil {
		store = make(mapStore)
	}
	// The machine deliberately bypasses the pool: the caller keeps it
	// (and its memory image) alive for interactive inspection.
	m, err := cell.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	rp := &Replayer{sc: sc, cfg: cfg, prog: prog, m: m, store: store}
	if err := rp.capture(nil); err != nil {
		return nil, err
	}
	return rp, nil
}

// capture snapshots the machine's current boundary into the store and
// the mark list, and (when r is non-nil) points r at it.
func (rp *Replayer) capture(r *Replay) error {
	at := rp.m.Now()
	key := cell.SnapshotKey(rp.cfg, rp.prog, at)
	blob, err := rp.m.EncodeSnapshot(key)
	if err != nil {
		return fmt.Errorf("synth: replay capture at %d: %w", at, err)
	}
	rp.store.Put(key, blob)
	i := sort.Search(len(rp.marks), func(i int) bool { return rp.marks[i] >= at })
	if i == len(rp.marks) || rp.marks[i] != at {
		rp.marks = append(rp.marks, 0)
		copy(rp.marks[i+1:], rp.marks[i:])
		rp.marks[i] = at
	}
	if r != nil {
		r.Snapshot, r.Key, r.At = blob, key, at
	}
	return nil
}

// seek restores the machine to the warmest captured boundary strictly
// below target, falling back to earlier marks (or a fresh machine) when
// the store has evicted a blob.
func (rp *Replayer) seek(target sim.Cycle) error {
	i := sort.Search(len(rp.marks), func(i int) bool { return rp.marks[i] >= target })
	for i > 0 {
		at := rp.marks[i-1]
		key := cell.SnapshotKey(rp.cfg, rp.prog, at)
		if blob, ok := rp.store.Get(key); ok {
			if err := rp.m.RestoreSnapshot(blob, key); err == nil {
				return nil
			}
		}
		// Evicted or unrestorable: forget the mark and try the next
		// boundary down.
		rp.marks = append(rp.marks[:i-1], rp.marks[i:]...)
		i--
	}
	// No usable boundary below target: start cold.
	if err := rp.m.Reset(rp.prog); err != nil {
		return err
	}
	return rp.capture(nil)
}

// ReplayTo pauses the session's machine at the last event boundary
// strictly before target and returns the time-travel handle. The walk
// starts from the warmest snapshot already captured below target and
// captures each boundary it crosses (stride scales with the remaining
// distance, at most ~64 captures per probe), so repeated probes — a
// divergence bisection — pay only the gap between neighbouring probe
// points, not a cold run each.
func (rp *Replayer) ReplayTo(target sim.Cycle) (*Replay, error) {
	if err := rp.seek(target); err != nil {
		return nil, err
	}
	r := &Replay{Machine: rp.m, Target: target}
	if err := rp.capture(r); err != nil {
		return nil, err
	}
	stride := (target - rp.m.Now()) / 64
	if stride < 1 {
		stride = 1
	}
	for rp.m.Now() < target {
		budget := target - rp.m.Now()
		if budget > stride {
			budget = stride
		}
		st, err := rp.m.Step(budget)
		if err != nil {
			return nil, fmt.Errorf("synth: replay run at %d: %w", rp.m.Now(), err)
		}
		if st == cell.StepDone || rp.m.Now() >= target {
			break
		}
		if err := rp.capture(r); err != nil {
			return nil, err
		}
	}
	if err := r.Rewind(); err != nil {
		return nil, err
	}
	return r, nil
}

// Marks returns the boundary cycles captured so far, ascending — the
// restore points future probes can start from. Exposed so tests (and
// curious tooling) can assert that warm probes reuse earlier marks.
func (rp *Replayer) Marks() []sim.Cycle {
	out := make([]sim.Cycle, len(rp.marks))
	copy(out, rp.marks)
	return out
}

// ReplayTo rebuilds a scenario's simulation — the original program, or
// the prefetch-transformed one when transformed is set — and pauses it
// at the last event boundary strictly before target: the one-shot form
// of a Replayer session (fresh machine, private snapshot store). Use a
// Replayer directly when probing the same scenario repeatedly.
func ReplayTo(sc Scenario, opt CheckOptions, transformed bool, target sim.Cycle) (*Replay, error) {
	rp, err := NewReplayer(sc, opt, transformed, nil)
	if err != nil {
		return nil, err
	}
	return rp.ReplayTo(target)
}
