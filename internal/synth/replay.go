package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/sim"
)

// Replay is a live machine rewound to just before a cycle of interest:
// the time-travel handle for debugging a fuzz reproducer. The machine
// is paused at At — the last event boundary strictly before the
// requested target (or before completion, whichever comes first) — and
// may be stepped forward with cell.Machine.Step to watch the suspect
// window unfold. Snapshot re-seeds the same state, so the window can
// be replayed as many times as the investigation needs:
//
//	r, _ := synth.ReplayTo(sc, opt, true, divergeCycle)
//	r.Machine.Step(1) ... // watch the divergence happen
//	r.Rewind()            // and again
type Replay struct {
	Machine  *cell.Machine
	At       sim.Cycle // boundary the machine is paused at (< Target)
	Target   sim.Cycle // the cycle that was asked for
	Snapshot []byte    // encoded image of the paused state
	Key      string    // its cell.SnapshotKey (for RestoreSnapshot)
}

// Rewind restores the machine to the paused boundary, undoing any
// stepping done since ReplayTo (or the previous Rewind).
func (r *Replay) Rewind() error {
	return r.Machine.RestoreSnapshot(r.Snapshot, r.Key)
}

// ReplayTo rebuilds a scenario's simulation — the original program, or
// the prefetch-transformed one when transformed is set — and pauses it
// at the last event boundary strictly before target. The walk captures
// a snapshot at each boundary it crosses (at most ~64, the stride
// scales with target) and rewinds to the final one, so the cost is one
// cold run plus the captures.
func ReplayTo(sc Scenario, opt CheckOptions, transformed bool, target sim.Cycle) (*Replay, error) {
	sc = sc.Normalize()
	opt = opt.withDefaults()
	prog, err := Generate(sc)
	if err != nil {
		return nil, fmt.Errorf("synth: replay seed %d: %w", sc.Seed, err)
	}
	if transformed {
		if prog, err = opt.Transform(prog); err != nil {
			return nil, fmt.Errorf("synth: replay seed %d: transform: %w", sc.Seed, err)
		}
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles

	// The machine deliberately bypasses the pool: the caller keeps it
	// (and its memory image) alive for interactive inspection.
	m, err := cell.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	r := &Replay{Machine: m, Target: target}
	capture := func() error {
		key := cell.SnapshotKey(cfg, prog, m.Now())
		blob, err := m.EncodeSnapshot(key)
		if err != nil {
			return fmt.Errorf("synth: replay capture at %d: %w", m.Now(), err)
		}
		r.Snapshot, r.Key, r.At = blob, key, m.Now()
		return nil
	}
	if err := capture(); err != nil {
		return nil, err
	}
	stride := target / 64
	if stride < 1 {
		stride = 1
	}
	for m.Now() < target {
		budget := target - m.Now()
		if budget > stride {
			budget = stride
		}
		st, err := m.Step(budget)
		if err != nil {
			return nil, fmt.Errorf("synth: replay run at %d: %w", m.Now(), err)
		}
		if st == cell.StepDone || m.Now() >= target {
			break
		}
		if err := capture(); err != nil {
			return nil, err
		}
	}
	if err := r.Rewind(); err != nil {
		return nil, err
	}
	return r, nil
}
