package synth

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/stats"
)

// TestCorpusProfilerNonPerturbing is the profiler's corpus-wide
// regression guard: every pinned seed's original AND prefetch-
// transformed simulation runs with the guest cycle profiler on and off,
// and every reported number — cycles, tokens, full stats — must be
// byte-identical. The profiled runs also pass the full differential
// check (oracle, memory image, invariants), so a profiler that
// perturbed anything at all would fail twice over.
func TestCorpusProfilerNonPerturbing(t *testing.T) {
	plain := CheckOptions{Pool: cell.NewPool()}
	prof := CheckOptions{Profile: true, Pool: cell.NewPool()}
	for _, seed := range CorpusSeeds() {
		base, err := CheckSeed(seed, plain)
		if err != nil {
			t.Fatalf("seed %d (profiler off): %v", seed, err)
		}
		got, err := CheckSeed(seed, prof)
		if err != nil {
			t.Errorf("seed %d (profiler on): %v", seed, err)
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("seed %d: profiled report differs:\noff %+v\non  %+v", seed, base, got)
		}
	}
}

// TestCorpusBurstProfileDifferential runs the burst/single-step
// differential with profiling enabled: beyond the usual byte-identical
// stats, diffResults now also requires the two paths' guest profiles to
// match sample for sample — bulk burst attribution (one Add per burst)
// must equal per-cycle attribution exactly.
func TestCorpusBurstProfileDifferential(t *testing.T) {
	opt := CheckOptions{DiffBurst: true, Profile: true, Pool: cell.NewPool()}
	for _, seed := range CorpusSeeds() {
		if _, err := CheckSeed(seed, opt); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestProfileScenario sanity-checks the fresh-machine profiling entry
// point: both variants produce samples, and each profile's cause totals
// are internally consistent with its bucket fold.
func TestProfileScenario(t *testing.T) {
	p, err := ProfileScenario(FromSeed(CorpusSeeds()[0]), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, prof := range map[string]*stats.Profile{"orig": p.Orig, "pf": p.PF} {
		if prof.Len() == 0 {
			t.Errorf("%s: no samples", name)
		}
		causes := prof.Causes()
		if causes.Total() != prof.Total() {
			t.Errorf("%s: cause total %d != profile total %d", name, causes.Total(), prof.Total())
		}
	}
	if p.OrigProg == nil || p.PFProg == nil {
		t.Fatal("programs missing from Profiles")
	}
	if p.Orig.Equal(p.PF) {
		t.Error("orig and pf profiles identical — transform had no effect on attribution")
	}
}
