package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/trace"
)

// Recording is the timeline pair of one scenario: the original program
// and its prefetch-transformed variant, each run once with full
// component recording (see cell.Config.Record). Feed the recorders to
// obs.WriteTrace to inspect a reproducer's schedule in Perfetto.
type Recording struct {
	SPEs int
	Orig *trace.Recorder
	PF   *trace.Recorder
}

// RecordScenario re-runs sc's two simulations with timeline recording
// enabled. The runs are fresh machines (never pooled — a pooled
// machine's recorder is reset on reuse) and recording does not perturb
// results: spans are emitted at completion sites outside the cycle
// kernel. spanCap bounds each recorder track (0 = trace.DefaultSpanCap).
func RecordScenario(sc Scenario, opt CheckOptions, spanCap int) (*Recording, error) {
	sc = sc.Normalize()
	opt = opt.withDefaults()

	prog, err := Generate(sc)
	if err != nil {
		return nil, fmt.Errorf("synth: generate seed %d: %w", sc.Seed, err)
	}
	pfProg, err := opt.Transform(prog)
	if err != nil {
		return nil, fmt.Errorf("synth: transform seed %d: %w", sc.Seed, err)
	}

	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles
	cfg.Record = true
	cfg.RecordCap = spanCap

	rec := &Recording{SPEs: sc.SPEs}
	origM, err := cell.New(cfg, prog)
	if err != nil {
		return nil, fmt.Errorf("synth: build sim-orig: %w", err)
	}
	origRes, err := opt.runMachine(origM)
	if err != nil {
		return nil, fmt.Errorf("synth: record sim-orig: %w", err)
	}
	rec.Orig = origRes.Rec

	pfM, err := cell.New(cfg, pfProg)
	if err != nil {
		return nil, fmt.Errorf("synth: build sim-pf: %w", err)
	}
	pfRes, err := opt.runMachine(pfM)
	if err != nil {
		return nil, fmt.Errorf("synth: record sim-pf: %w", err)
	}
	rec.PF = pfRes.Rec
	return rec, nil
}
