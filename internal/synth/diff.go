package synth

import (
	"fmt"
	"reflect"

	"repro/internal/cell"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The differential checker runs one scenario three ways — functional
// oracle, simulated original, simulated prefetch-transformed — and
// asserts that all three produce byte-identical results, that the
// machine's own functional check (against pure-Go expectations baked in
// at generation time) passes for both simulations, and that the
// prefetching run respects the performance invariants below.

// Guard band for the cycle invariant: the transformed program may be
// slower than the original on tiny scenarios (DMA programming overhead
// with almost nothing to hide — the paper's bitcnt-at-latency-1 effect)
// but never by more than GuardRatio x plus GuardSlack cycles. Corpus
// scenarios sit far inside this envelope; a transformer or scheduler
// regression that serialises DMA blows through it.
const (
	DefaultGuardRatio = 2.0
	DefaultGuardSlack = 50_000
)

// CheckOptions configures a differential run.
type CheckOptions struct {
	Latency   int       // main-memory latency (0 = the paper's 150)
	MaxCycles sim.Cycle // per-simulation cycle cap (0 = 100M)
	MaxSteps  int64     // oracle instruction budget (0 = 50M)
	// Transform produces the prefetching variant (nil = prefetch.Transform).
	// Tests inject deliberately broken transformers here to prove the
	// checker and shrinker catch them.
	Transform func(*program.Program) (*program.Program, error)
	// GuardRatio/GuardSlack override the documented cycle guard band
	// (zero values select the defaults).
	GuardRatio float64
	GuardSlack int64
	// StallSlack is the tolerated growth of memory-stall cycles under
	// prefetching (absolute, on top of a 25% relative allowance); the
	// transformed run must satisfy
	//   pfStall <= origStall + origStall/4 + StallSlack.
	// Untagged (non-decoupled) READs still stall in both runs and DMA
	// traffic can delay them slightly, hence the allowance. 0 selects
	// 2000 cycles.
	StallSlack int64
	// Pool recycles machines across checks (per worker; must not be
	// shared across goroutines). nil builds a fresh machine per run.
	Pool *cell.Pool
	// Sched, when non-nil, makes every simulation advance in bounded
	// slices under the batch scheduling hook (see cell.Machine's
	// RunScheduled): it reports the machine's next pending event cycle
	// and receives the batch horizon, and Slice (0 = cell.DefaultSlice)
	// is the anti-ping-pong floor. Batched runners use it to interleave
	// several checks on one goroutine; results are identical either way.
	Sched func(next sim.Cycle) sim.Cycle
	Slice sim.Cycle
	// DiffBurst additionally runs every simulation a second time with
	// the SPU burst fast path disabled (spu.Config.BurstMax = -1; see
	// that field's doc comment for the canonical value semantics) and
	// fails the check unless cycles, all statistics, tokens and the
	// final memory image are identical — the slow-path/fast-path
	// differential mode.
	DiffBurst bool
	// Profile enables the guest cycle profiler (cell.Config.Profile) on
	// every simulation. Profiling must not perturb results, so under
	// DiffBurst the fast- and slow-path profiles are also required to be
	// identical sample for sample — the profiler's own differential mode.
	Profile bool
	// DiffCheckpoint additionally re-executes every simulation with a
	// snapshot/restore seam at its halfway boundary — capture there,
	// restore into a recycled machine, run to completion — and fails the
	// check unless cycles, all statistics, tokens and the final memory
	// image are identical to the uninterrupted run: the checkpoint
	// machinery's differential mode (see cell.Machine.Snapshot).
	DiffCheckpoint bool
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.Latency == 0 {
		o.Latency = 150
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 100_000_000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 50_000_000
	}
	if o.Transform == nil {
		o.Transform = prefetch.Transform
	}
	if o.GuardRatio == 0 {
		o.GuardRatio = DefaultGuardRatio
	}
	if o.GuardSlack == 0 {
		o.GuardSlack = DefaultGuardSlack
	}
	if o.StallSlack == 0 {
		o.StallSlack = 2000
	}
	return o
}

// Report summarises one passing differential check.
type Report struct {
	Scenario    Scenario
	OrigCycles  sim.Cycle
	PFCycles    sim.Cycle
	OrigStall   int64 // memory-stall cycles, summed over SPUs
	PFStall     int64
	OracleSteps int64
	Threads     int64   // threads completed in the original simulation
	Decoupled   float64 // fraction of static READs rewritten by the transformer
	CodeLen     int
}

// DivergenceError describes a failed differential check; it keeps the
// scenario so callers can shrink it.
type DivergenceError struct {
	Scenario Scenario
	Phase    string // "generate" | "oracle" | "sim-orig" | "sim-pf" | "compare" | "invariant"
	Detail   string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("synth: seed %d [%s]: %s (%s)",
		e.Scenario.Seed, e.Phase, e.Detail, e.Scenario.Summary())
}

func diverged(sc Scenario, phase, format string, args ...any) *DivergenceError {
	return &DivergenceError{Scenario: sc, Phase: phase, Detail: fmt.Sprintf(format, args...)}
}

// runMachine drives one machine to completion: run-to-completion when
// no Sched hook is set, scheduled in slices otherwise.
func (o CheckOptions) runMachine(m *cell.Machine) (*cell.Result, error) {
	if o.Sched == nil {
		return m.Run()
	}
	return m.RunScheduled(o.Slice, o.Sched)
}

// runSim executes prog on a (pooled) machine and returns the result
// plus the machine (for its final memory image). With DiffBurst it
// also runs the single-step slow path and asserts bit-identical
// outcomes before returning the fast-path result.
func runSim(sc Scenario, opt CheckOptions, prog *program.Program) (*cell.Result, *cell.Machine, error) {
	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles
	cfg.Profile = opt.Profile
	m, err := opt.Pool.Get(cfg, prog)
	if err != nil {
		return nil, nil, err
	}
	res, err := opt.runMachine(m)
	if err != nil {
		return nil, nil, err
	}
	if opt.DiffBurst {
		slowCfg := cfg
		slowCfg.SPU.BurstMax = -1 // single-step slow path (see spu.Config.BurstMax)
		sm, err := opt.Pool.Get(slowCfg, prog)
		if err != nil {
			return nil, nil, err
		}
		sres, err := opt.runMachine(sm)
		if err != nil {
			return nil, nil, fmt.Errorf("single-step run: %w", err)
		}
		if d := diffResults(res, sres); d != "" {
			return nil, nil, fmt.Errorf("burst/single-step divergence: %s", d)
		}
		if addr, equal := mem.FirstDiff(m.MemSparse(), sm.MemSparse()); !equal {
			return nil, nil, fmt.Errorf("burst/single-step memory divergence at %#x", addr)
		}
		opt.Pool.Put(sm)
	}
	if opt.DiffCheckpoint {
		if err := diffCheckpoint(opt, cfg, prog, res, m); err != nil {
			return nil, nil, err
		}
	}
	return res, m, nil
}

// diffCheckpoint re-executes prog with a snapshot/restore seam at the
// halfway boundary: run a donor to want.Cycles/2, capture, restore the
// blob into a recycled machine and finish. Any difference from the
// uninterrupted run — a number, a byte of memory — fails the check.
func diffCheckpoint(opt CheckOptions, cfg cell.Config, prog *program.Program, want *cell.Result, wantM *cell.Machine) error {
	div := want.Cycles / 2
	donor, err := opt.Pool.Get(cfg, prog)
	if err != nil {
		return err
	}
	_, st, err := donor.RunTo(div)
	if err != nil {
		return fmt.Errorf("checkpoint donor: %w", err)
	}
	var got *cell.Result
	var gotM *cell.Machine
	if st == cell.StepDone {
		// The run quiesced before the halfway boundary (post-completion
		// drains can make Cycles/2 unreachable); nothing to seam, but the
		// donor's outcome must still match.
		if got, err = donor.Finish(); err != nil {
			return err
		}
		gotM = donor
	} else {
		key := cell.SnapshotKey(cfg, prog, div)
		blob, err := donor.EncodeSnapshot(key)
		if err != nil {
			return fmt.Errorf("checkpoint capture: %w", err)
		}
		opt.Pool.Put(donor)
		fresh, err := opt.Pool.Get(cfg, prog)
		if err != nil {
			return err
		}
		if err := fresh.RestoreSnapshot(blob, key); err != nil {
			return fmt.Errorf("checkpoint restore: %w", err)
		}
		if got, err = opt.runMachine(fresh); err != nil {
			return fmt.Errorf("restored run: %w", err)
		}
		gotM = fresh
	}
	if d := diffResults(want, got); d != "" {
		return fmt.Errorf("checkpoint divergence: %s", d)
	}
	if addr, equal := mem.FirstDiff(wantM.MemSparse(), gotM.MemSparse()); !equal {
		return fmt.Errorf("checkpoint memory divergence at %#x", addr)
	}
	opt.Pool.Put(gotM)
	return nil
}

// diffResults compares every reported number of two runs of the same
// program and describes the first difference ("" when identical).
func diffResults(a, b *cell.Result) string {
	switch {
	case a.Cycles != b.Cycles:
		return fmt.Sprintf("cycles %d vs %d", a.Cycles, b.Cycles)
	case !reflect.DeepEqual(a.Tokens, b.Tokens):
		return fmt.Sprintf("tokens %v vs %v", a.Tokens, b.Tokens)
	case !reflect.DeepEqual(a.Agg, b.Agg):
		return fmt.Sprintf("aggregate SPU stats %+v vs %+v", a.Agg, b.Agg)
	case !reflect.DeepEqual(a.SPUs, b.SPUs):
		return "per-SPU stats differ"
	case !reflect.DeepEqual(a.LSEs, b.LSEs):
		return "LSE stats differ"
	case !reflect.DeepEqual(a.MFCs, b.MFCs):
		return "MFC stats differ"
	case !reflect.DeepEqual(a.DSEs, b.DSEs):
		return "DSE stats differ"
	case a.Mem != b.Mem:
		return fmt.Sprintf("memory stats %+v vs %+v", a.Mem, b.Mem)
	case a.Net != b.Net:
		return fmt.Sprintf("network stats %+v vs %+v", a.Net, b.Net)
	case !a.Prof.Equal(b.Prof):
		return "guest cycle profiles differ"
	}
	return ""
}

func tokensEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckScenario generates, oracles, simulates and cross-checks one
// scenario. A nil error means all three executions agreed byte for
// byte and every invariant held.
func CheckScenario(sc Scenario, opt CheckOptions) (*Report, error) {
	sc = sc.Normalize()
	opt = opt.withDefaults()

	prog, err := Generate(sc)
	if err != nil {
		return nil, diverged(sc, "generate", "%v", err)
	}

	oracleRes, err := RunOracle(prog, opt.MaxSteps)
	if err != nil {
		return nil, diverged(sc, "oracle", "%v", err)
	}

	orig, origM, err := runSim(sc, opt, prog)
	if err != nil {
		return nil, diverged(sc, "sim-orig", "%v", err)
	}
	if orig.CheckErr != nil {
		return nil, diverged(sc, "sim-orig", "functional check: %v", orig.CheckErr)
	}

	pfProg, err := opt.Transform(prog)
	if err != nil {
		return nil, diverged(sc, "sim-pf", "transform: %v", err)
	}
	pf, pfM, err := runSim(sc, opt, pfProg)
	if err != nil {
		return nil, diverged(sc, "sim-pf", "%v", err)
	}
	if pf.CheckErr != nil {
		return nil, diverged(sc, "sim-pf", "functional check: %v", pf.CheckErr)
	}

	// Byte-identical results: tokens across all three executions...
	if !tokensEqual(oracleRes.Tokens, orig.Tokens) {
		return nil, diverged(sc, "compare", "tokens oracle=%v sim-orig=%v", oracleRes.Tokens, orig.Tokens)
	}
	if !tokensEqual(oracleRes.Tokens, pf.Tokens) {
		return nil, diverged(sc, "compare", "tokens oracle=%v sim-pf=%v", oracleRes.Tokens, pf.Tokens)
	}
	// ...and the entire final memory image. Whole-image comparison (not
	// just the addresses the oracle wrote) catches stray writes a buggy
	// transformation could emit to locations the original never touches.
	if addr, equal := mem.FirstDiff(oracleRes.Mem, origM.MemSparse()); !equal {
		return nil, diverged(sc, "compare", "memory diverges at %#x: oracle=%#x sim-orig=%#x",
			addr, oracleRes.Reader().Read32(addr&^3), origM.MemReader().Read32(addr&^3))
	}
	if addr, equal := mem.FirstDiff(oracleRes.Mem, pfM.MemSparse()); !equal {
		return nil, diverged(sc, "compare", "memory diverges at %#x: oracle=%#x sim-pf=%#x",
			addr, oracleRes.Reader().Read32(addr&^3), pfM.MemReader().Read32(addr&^3))
	}

	// Invariants. Deadlocks and runaways already surfaced as run errors
	// (machine fault, cycle cap, oracle budget); what remains is the
	// performance contract of the transformation.
	origStall := orig.Agg.Breakdown[stats.MemStall]
	pfStall := pf.Agg.Breakdown[stats.MemStall]
	if pfStall > origStall+origStall/4+opt.StallSlack {
		return nil, diverged(sc, "invariant",
			"prefetch memory-stall cycles %d exceed original %d (+25%% +%d slack)",
			pfStall, origStall, opt.StallSlack)
	}
	limit := sim.Cycle(opt.GuardRatio*float64(orig.Cycles)) + sim.Cycle(opt.GuardSlack)
	if pf.Cycles > limit {
		return nil, diverged(sc, "invariant",
			"prefetch cycles %d exceed guard band %d (original %d, ratio %.1f, slack %d)",
			pf.Cycles, limit, orig.Cycles, opt.GuardRatio, opt.GuardSlack)
	}

	// All comparisons done: the machines (and their memory images) may
	// go back to the pool.
	opt.Pool.Put(origM)
	opt.Pool.Put(pfM)

	st := prefetch.Analyze(prog, pfProg)
	return &Report{
		Scenario:    sc,
		OrigCycles:  orig.Cycles,
		PFCycles:    pf.Cycles,
		OrigStall:   origStall,
		PFStall:     pfStall,
		OracleSteps: oracleRes.Steps,
		Threads:     orig.Agg.Threads,
		Decoupled:   st.DecoupledFraction(),
		CodeLen:     prog.CodeLen(),
	}, nil
}

// CheckSeed is CheckScenario over FromSeed.
func CheckSeed(seed uint64, opt CheckOptions) (*Report, error) {
	return CheckScenario(FromSeed(seed), opt)
}
