// Package synth is the scenario-synthesis and differential-fuzzing
// subsystem: it generates DTA programs the hand-built workloads never
// cover, computes their expected results with a fast untimed oracle,
// runs each scenario three ways (oracle, simulated original, simulated
// prefetch-transformed) and asserts byte-identical outputs plus machine
// invariants, and shrinks failing scenarios to minimal reproducers.
//
// Everything is seed-deterministic: the same seed always produces the
// same scenario, the same program, the same inputs and the same
// expected outputs, on every machine. That property is what lets the
// pinned corpora (CorpusSeeds) act as regression tests for the prefetch
// transformer, lets synth scenarios be first-class experiments with
// content-addressed run keys, and makes every fuzzing failure
// reproducible from its seed alone.
package synth

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// GenVersion names the generator semantics. Bump it whenever a change
// to scenario derivation or program generation can alter the program a
// seed produces — run keys for synth/* experiments include it, so
// cached results stop matching instead of serving results for programs
// that no longer exist.
const GenVersion = "synthgen/1"

// CorpusSize is the number of pinned corpus seeds (1..CorpusSize)
// registered as synth/<seed> workloads and experiments.
const CorpusSize = 32

// CorpusSeeds returns the pinned corpus seeds.
func CorpusSeeds() []uint64 {
	out := make([]uint64, CorpusSize)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// ExperimentID renders the registry/experiment name for a corpus seed.
func ExperimentID(seed uint64) string { return fmt.Sprintf("synth/%04d", seed) }

// Kind enumerates the access/communication patterns the generator can
// compose. Each exercises a shape the hand-built workloads never mix.
type Kind uint8

const (
	// KStrided: W workers each sum every stride'th int32 of a slice
	// through a prefetch region, a joiner combines the partials.
	KStrided Kind = iota
	// KStrided64: KStrided over int64 elements (READ8 path).
	KStrided64
	// KGather: workers read an index slice through one region and
	// gather from a shared data table through a second region
	// (multi-region frames, data-dependent addressing into a region).
	KGather
	// KChase: a single worker follows a pointer chain with blocking
	// untagged READs (the non-decoupled path the paper leaves alone).
	KChase
	// KReduce: a binary tree of threads (depth 1..2); leaves read
	// region slices, inner nodes combine partials frame-to-frame.
	KReduce
	// KPipeline: a producer reads a region and streams partials into a
	// consumer's frame; the consumer WRITEs the total to main memory,
	// reads it back, and mails the read-back value.
	KPipeline
	// KStencil: a 3x3 Gaussian blur over a tiny image through one
	// whole-image region, WRITEing the interior and mailing a checksum
	// of read-back outputs (shares semantics with refcheck.Stencil).
	KStencil
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KStrided:
		return "strided"
	case KStrided64:
		return "strided64"
	case KGather:
		return "gather"
	case KChase:
		return "chase"
	case KReduce:
		return "reduce"
	case KPipeline:
		return "pipeline"
	case KStencil:
		return "stencil"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Pattern parameterises one generated activity. Fields not meaningful
// for a kind are ignored (and zeroed by Normalize so that equal
// scenarios compare equal).
type Pattern struct {
	Kind    Kind
	N       int // per-worker elements / hops / leaf slice / image dim
	Workers int // fan-out (power of two)
	Stride  int // strided kinds: element stride
	Depth   int // reduce: tree depth (1 or 2)
	Chunk   int // region ChunkBytes (0 = single DMA command)
	// Tag identifies the pattern's input-data stream. Scenario.Normalize
	// assigns position-based tags to untagged patterns; shrink steps
	// preserve tags, so dropping one pattern never changes the data of
	// the survivors (a data-dependent failure stays reproducible while
	// its neighbours are removed).
	Tag int
}

// Scenario is one complete generated test case: a machine size plus a
// list of patterns that run concurrently in one program, each posting
// one mailbox token.
type Scenario struct {
	Seed     uint64
	SPEs     int
	Patterns []Pattern
}

// Summary renders a compact human-readable description.
func (s Scenario) Summary() string {
	var parts []string
	for _, p := range s.Patterns {
		d := fmt.Sprintf("%s(n=%d", p.Kind, p.N)
		if p.Workers > 1 {
			d += fmt.Sprintf(",w=%d", p.Workers)
		}
		if p.Stride > 1 {
			d += fmt.Sprintf(",s=%d", p.Stride)
		}
		if p.Depth > 1 {
			d += fmt.Sprintf(",d=%d", p.Depth)
		}
		if p.Chunk > 0 {
			d += fmt.Sprintf(",c=%d", p.Chunk)
		}
		parts = append(parts, d+")")
	}
	return fmt.Sprintf("seed=%d spes=%d %s", s.Seed, s.SPEs, strings.Join(parts, "+"))
}

// clampPow2 rounds v into [1, max] and down to a power of two.
func clampPow2(v, max int) int {
	if v < 1 {
		v = 1
	}
	if v > max {
		v = max
	}
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Normalize forces every field into the generator's supported envelope,
// so that any Pattern — random, hand-written, or produced by a shrink
// step — generates a valid program. It is idempotent.
func (p Pattern) Normalize() Pattern {
	q := Pattern{Kind: p.Kind, Tag: p.Tag}
	switch p.Kind {
	case KStrided, KStrided64:
		q.Workers = clampPow2(p.Workers, 4)
		q.N = clamp(p.N, 1, 32)
		q.Stride = clamp(p.Stride, 1, 4)
		q.Chunk = clampChunk(p.Chunk)
	case KGather:
		q.Workers = clampPow2(p.Workers, 4)
		q.N = clamp(p.N, 1, 16)
		q.Chunk = clampChunk(p.Chunk)
	case KChase:
		q.Workers = 1
		q.N = clamp(p.N, 1, 16)
	case KReduce:
		q.Workers = 1
		q.Depth = clamp(p.Depth, 1, 2)
		q.N = clamp(p.N, 1, 8)
		q.Chunk = clampChunk(p.Chunk)
	case KPipeline:
		q.Workers = 1
		// N is split into pipeStages chunks; keep it a multiple.
		q.N = clamp(p.N, pipeStages, 32)
		q.N -= q.N % pipeStages
		q.Chunk = clampChunk(p.Chunk)
	case KStencil:
		q.Workers = 1
		q.N = clamp(p.N, 4, 6)
		q.Chunk = clampChunk(p.Chunk)
	default:
		// Unknown kinds normalise to the smallest strided pattern.
		return Pattern{Kind: KStrided, N: 1, Workers: 1, Stride: 1, Tag: p.Tag}
	}
	return q
}

func clampChunk(c int) int {
	switch {
	case c <= 0:
		return 0
	case c <= 16:
		return 16
	default:
		return 64
	}
}

// Normalize normalises every pattern and the machine size, and assigns
// position-based data-stream tags to patterns that lack one.
func (s Scenario) Normalize() Scenario {
	out := Scenario{Seed: s.Seed, SPEs: clampPow2(s.SPEs, 4)}
	if len(s.Patterns) == 0 {
		out.Patterns = []Pattern{{Kind: KStrided, N: 1, Workers: 1, Stride: 1, Tag: 1}}
		return out
	}
	for i, p := range s.Patterns {
		q := p.Normalize()
		if q.Tag == 0 {
			q.Tag = i + 1
		}
		out.Patterns = append(out.Patterns, q)
	}
	return out
}

// FromSeed derives a scenario deterministically from a seed: 1-3
// patterns with randomised kinds and parameters on a 1/2/4-SPE machine.
// The derivation is pinned by GenVersion; changing it is a generator
// bump.
func FromSeed(seed uint64) Scenario {
	rng := sim.NewRand(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	sc := Scenario{
		Seed: seed,
		SPEs: 1 << rng.Intn(3),
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		p := Pattern{
			Kind:    Kind(rng.Intn(int(numKinds))),
			N:       1 + rng.Intn(32),
			Workers: 1 << rng.Intn(3),
			Stride:  1 + rng.Intn(4),
			Depth:   1 + rng.Intn(2),
		}
		switch rng.Intn(3) {
		case 0:
			p.Chunk = 0
		case 1:
			p.Chunk = 16
		default:
			p.Chunk = 64
		}
		sc.Patterns = append(sc.Patterns, p)
	}
	return sc.Normalize()
}

// ScenarioFor derives the scenario for a pinned corpus seed, salted by
// the run's workload input seed (harness Options.Seed): the salt varies
// the drawn scenario, so sweeping seeds explores fresh programs while
// every (corpus seed, salt) pair stays fully deterministic. The
// harness default salt reproduces FromSeed exactly.
func ScenarioFor(corpusSeed, salt uint64) Scenario {
	if salt == DefaultSalt {
		return FromSeed(corpusSeed)
	}
	return FromSeed(corpusSeed ^ (salt * 0x2545F4914F6CDD1D))
}

// DefaultSalt is the harness default input seed (Options.Seed), under
// which ScenarioFor(s, DefaultSalt) == FromSeed(s).
const DefaultSalt = 42
