package synth

import (
	"testing"

	"repro/internal/cell"
)

// TestCheckpointDiffCorpus runs the pinned 32-seed corpus with the
// checkpoint differential enabled: every simulation is re-executed
// with a snapshot/restore seam at its halfway boundary and must match
// the uninterrupted run byte for byte.
func TestCheckpointDiffCorpus(t *testing.T) {
	opt := CheckOptions{DiffCheckpoint: true, Pool: cell.NewPool()}
	for _, seed := range CorpusSeeds() {
		if _, err := CheckSeed(seed, opt); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestReplayTo: the time-travel handle must pause strictly before the
// requested cycle, finish to the same outcome as a cold run, and
// Rewind must make the window repeatable.
func TestReplayTo(t *testing.T) {
	sc := FromSeed(3)
	opt := CheckOptions{}.withDefaults()

	prog, err := Generate(sc.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.Normalize().SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles
	cold, err := cell.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}

	target := want.Cycles / 2
	r, err := ReplayTo(sc, CheckOptions{}, false, target)
	if err != nil {
		t.Fatal(err)
	}
	if r.At >= target {
		t.Fatalf("replay paused at %d, want strictly before %d", r.At, target)
	}
	if r.Machine.Now() != r.At {
		t.Fatalf("machine clock %d, replay says %d", r.Machine.Now(), r.At)
	}
	got, err := r.Machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("replayed run differs from cold run: %s", d)
	}

	// Rewind and run the window again: same outcome.
	if err := r.Rewind(); err != nil {
		t.Fatal(err)
	}
	if r.Machine.Now() != r.At {
		t.Fatalf("rewound clock %d, want %d", r.Machine.Now(), r.At)
	}
	again, err := r.Machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, again); d != "" {
		t.Fatalf("rewound run differs: %s", d)
	}
}
