package synth

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/sim"
)

// TestCheckpointDiffCorpus runs the pinned 32-seed corpus with the
// checkpoint differential enabled: every simulation is re-executed
// with a snapshot/restore seam at its halfway boundary and must match
// the uninterrupted run byte for byte.
func TestCheckpointDiffCorpus(t *testing.T) {
	opt := CheckOptions{DiffCheckpoint: true, Pool: cell.NewPool()}
	for _, seed := range CorpusSeeds() {
		if _, err := CheckSeed(seed, opt); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestReplayTo: the time-travel handle must pause strictly before the
// requested cycle, finish to the same outcome as a cold run, and
// Rewind must make the window repeatable.
func TestReplayTo(t *testing.T) {
	sc := FromSeed(3)
	opt := CheckOptions{}.withDefaults()

	prog, err := Generate(sc.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = sc.Normalize().SPEs
	cfg.Mem.Latency = opt.Latency
	cfg.MaxCycles = opt.MaxCycles
	cold, err := cell.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}

	target := want.Cycles / 2
	r, err := ReplayTo(sc, CheckOptions{}, false, target)
	if err != nil {
		t.Fatal(err)
	}
	if r.At >= target {
		t.Fatalf("replay paused at %d, want strictly before %d", r.At, target)
	}
	if r.Machine.Now() != r.At {
		t.Fatalf("machine clock %d, replay says %d", r.Machine.Now(), r.At)
	}
	got, err := r.Machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("replayed run differs from cold run: %s", d)
	}

	// Rewind and run the window again: same outcome.
	if err := r.Rewind(); err != nil {
		t.Fatal(err)
	}
	if r.Machine.Now() != r.At {
		t.Fatalf("rewound clock %d, want %d", r.Machine.Now(), r.At)
	}
	again, err := r.Machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, again); d != "" {
		t.Fatalf("rewound run differs: %s", d)
	}
}

// TestReplayerBisection drives a Replayer through a convergent probe
// sequence (the shape of a divergence bisection) and asserts each
// probe pauses strictly before its target, restores from an earlier
// captured boundary instead of cycle 0, and reaches states identical
// to one-shot ReplayTo probes of the same targets.
func TestReplayerBisection(t *testing.T) {
	sc := FromSeed(3)
	// Learn the run length (and the reference outcome) from a cold run.
	cold, err := ReplayTo(sc, CheckOptions{}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := want.Cycles
	if total <= 16 {
		t.Fatalf("scenario too short to bisect: %d cycles", total)
	}

	rp, err := NewReplayer(sc, CheckOptions{}, false, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Binary-search shape: halve the window around total/2.
	lo, hi := sim.Cycle(0), total
	for hi-lo > total/16 {
		mid := lo + (hi-lo)/2
		if mid == 0 {
			break
		}
		r, err := rp.ReplayTo(mid)
		if err != nil {
			t.Fatalf("probe %d: %v", mid, err)
		}
		if r.At >= mid {
			t.Fatalf("probe %d paused at %d, want strictly before", mid, r.At)
		}
		if r.Machine.Now() != r.At {
			t.Fatalf("probe %d: machine clock %d, replay says %d", mid, r.Machine.Now(), r.At)
		}
		// A probe restored from a warm mark must be indistinguishable
		// from a cold walk: finishing from the paused boundary reaches
		// the cold-run outcome exactly.
		got, err := r.Machine.Run()
		if err != nil {
			t.Fatalf("probe %d: finish: %v", mid, err)
		}
		if d := diffResults(want, got); d != "" {
			t.Fatalf("probe %d diverges from cold run: %s", mid, d)
		}
		lo = lo + (hi-lo)/4 // converge asymmetrically to vary restore points
		hi = mid
	}

	// The marks accumulated across probes are what make later probes
	// cheap; they must be sorted, unique and non-empty.
	marks := rp.Marks()
	if len(marks) < 2 {
		t.Fatalf("only %d marks captured across probes", len(marks))
	}
	for i := 1; i < len(marks); i++ {
		if marks[i] <= marks[i-1] {
			t.Fatalf("marks not strictly ascending: %v", marks)
		}
	}

	// A final probe must still finish to the cold-run outcome.
	r, err := rp.ReplayTo(total / 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("replayer probe finishes differently from cold run: %s", d)
	}
}
