package synth

import (
	"testing"

	"repro/internal/cell"
)

// TestCorpusBurstDifferential is the slow-path/fast-path differential
// over the pinned corpus: every seed's original AND prefetch-transformed
// simulation runs twice — SPU burst fast path and single-step — and the
// checker fails unless cycles, stall breakdowns, every other statistic,
// tokens and the final memory image are identical (DiffBurst compares
// them inside runSim). The machines come from a pool, so this also
// exercises reuse on every run.
func TestCorpusBurstDifferential(t *testing.T) {
	opt := CheckOptions{DiffBurst: true, Pool: cell.NewPool()}
	for _, seed := range CorpusSeeds() {
		if _, err := CheckSeed(seed, opt); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
