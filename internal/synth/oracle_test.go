package synth_test

// External test package: the oracle is validated against the hand-built
// workloads (whose functional checks encode the shared refcheck
// reference semantics), which would otherwise be an import cycle.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// TestOracleAgainstWorkloadChecks: the untimed oracle must satisfy
// every hand-built workload's own functional check (tokens and written
// memory against the refcheck reference implementations). This pins
// the oracle's frame/mailbox/memory semantics to the same truth the
// timed machine is checked against.
func TestOracleAgainstWorkloadChecks(t *testing.T) {
	cases := []struct {
		name string
		p    workloads.Params
	}{
		{"vecsum", workloads.Params{N: 64, Workers: 4, Seed: 8}},
		{"mmul", workloads.Params{N: 8, Workers: 4, Seed: 8}},
		{"zoom", workloads.Params{N: 8, Workers: 4, Seed: 8}},
		{"stencil", workloads.Params{N: 10, Workers: 4, Seed: 8}},
		{"bitcnt", workloads.Params{N: 64, Chunk: 8, Seed: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, ok := workloads.Get(tc.name)
			if !ok {
				t.Fatalf("workload %q not registered", tc.name)
			}
			prog, err := w.Build(tc.p)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := synth.RunOracle(prog, 0)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if prog.Check == nil {
				t.Fatal("workload has no functional check")
			}
			if err := prog.Check(res.Reader(), res.Tokens); err != nil {
				t.Fatalf("workload check rejected oracle result: %v", err)
			}
			if res.Threads == 0 || res.Steps == 0 {
				t.Fatalf("implausible oracle accounting: %+v", res)
			}
		})
	}
}

// TestOracleRejectsTransformed: prefetched programs contain PF blocks
// and local-store accesses, which are outside the untimed model.
func TestOracleRejectsTransformed(t *testing.T) {
	w, _ := workloads.Get("vecsum")
	prog, err := w.Build(workloads.Params{N: 64, Workers: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := prefetch.Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.RunOracle(pf, 0); err == nil {
		t.Fatal("oracle accepted a transformed program")
	} else if !strings.Contains(err.Error(), "transformed") && !strings.Contains(err.Error(), "PF block") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

// TestOracleDeadlock: a thread whose synchronisation count is never
// satisfied must surface as a deadlock, not a hang or a pass.
func TestOracleDeadlock(t *testing.T) {
	b := program.NewBuilder("deadlock")
	waiter := b.Template("waiter")
	wps := waiter.PS()
	wps.StoreMailbox(program.R(1), program.R(2), 0)
	wps.Ffree()
	wps.Stop()
	root := b.Template("root")
	ps := root.PS()
	ps.Falloc(program.R(1), waiter, 2) // SC=2 but only one store follows
	ps.Store(program.R(0), program.R(1), 0)
	ps.Ffree()
	ps.Stop()
	b.Entry(root, 1)
	b.ExpectTokens(1)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = synth.RunOracle(prog, 0)
	if !errors.Is(err, synth.ErrOracleDeadlock) {
		t.Fatalf("got %v, want ErrOracleDeadlock", err)
	}
}

// TestOracleStepBudget: runaway loops hit the instruction budget
// instead of hanging the checker.
func TestOracleStepBudget(t *testing.T) {
	b := program.NewBuilder("runaway")
	root := b.Template("root")
	ex := root.EX()
	ex.Label("spin")
	ex.Jmp("spin")
	ps := root.PS()
	ps.Ffree()
	ps.Stop()
	b.Entry(root, 1)
	b.ExpectTokens(1)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = synth.RunOracle(prog, 10_000)
	if !errors.Is(err, synth.ErrOracleSteps) {
		t.Fatalf("got %v, want ErrOracleSteps", err)
	}
}
