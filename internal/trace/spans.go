package trace

import "repro/internal/sim"

// SPUUnitKind discriminates what an SPUSpan covers.
type SPUUnitKind uint8

const (
	// UnitThread: a full PL/EX/PS execution of one thread.
	UnitThread SPUUnitKind = iota
	// UnitPF: a prefetch (PF) block execution.
	UnitPF
	// UnitBurst: a burst-execution window — cycles the SPU simulated in
	// bulk inside one engine tick under the quiescence horizon.
	UnitBurst
)

func (k SPUUnitKind) String() string {
	switch k {
	case UnitThread:
		return "thread"
	case UnitPF:
		return "pf"
	case UnitBurst:
		return "burst"
	}
	return "unit(?)"
}

// SPUSpan is one SPU occupancy window: a dispatched work unit (thread or
// PF block) or a burst window, half-open [Start, End).
type SPUSpan struct {
	SPE      int
	Unit     SPUUnitKind
	Start    sim.Cycle
	End      sim.Cycle
	Thread   int64 // thread sequence number (UnitThread/UnitPF)
	Template int
}

// DMASpan is one MFC DMA command lifetime: Issued (enqueued), Launched
// (head of queue, first packet on the wire), Done (last byte landed /
// ack received and tag count dropped).
type DMASpan struct {
	SPE      int
	Dir      uint8 // 0 = get (mem->LS), 1 = put (LS->mem)
	Size     int64
	Tag      int64
	Issued   sim.Cycle
	Launched sim.Cycle
	Done     sim.Cycle
}

// NoCSpan is one message transit: Sent (arrival at the output queue),
// Delivered (handed to the destination endpoint).
type NoCSpan struct {
	Src       int
	Dst       int
	Kind      uint8 // noc.Kind
	Bytes     int
	Sent      sim.Cycle
	Delivered sim.Cycle
}

// DefaultSpanCap bounds each span track when RecordCap is unset.
const DefaultSpanCap = 1 << 16

// Recorder collects per-component timeline spans for one machine run.
// A nil *Recorder is a valid no-op sink: every method nil-checks, so
// components keep a plain field and pay one predictable branch when
// recording is off — the steady-state cycle loop stays allocation-free.
//
// Thread-lifecycle events are recorded through the embedded Threads
// buffer (the existing LSE tracing path); the exporter in internal/obs
// turns those into per-thread state tracks.
type Recorder struct {
	cap     int
	spu     []SPUSpan
	dma     []DMASpan
	noc     []NoCSpan
	dropped int64

	// Threads receives lifecycle events (LSE wiring is unchanged: the
	// machine points LSE.Trace at this buffer when recording).
	Threads *Buffer
}

// NewRecorder returns a recorder holding at most capacity spans per
// track (capacity <= 0 selects DefaultSpanCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Recorder{cap: capacity, Threads: NewBuffer(capacity)}
}

// SPUUnit records a completed SPU work unit (thread or PF block).
func (r *Recorder) SPUUnit(spe int, unit SPUUnitKind, start, end sim.Cycle, thread int64, template int) {
	if r == nil {
		return
	}
	if len(r.spu) >= r.cap {
		r.dropped++
		return
	}
	r.spu = append(r.spu, SPUSpan{SPE: spe, Unit: unit, Start: start, End: end, Thread: thread, Template: template})
}

// SPUBurst records a burst window [start, end).
func (r *Recorder) SPUBurst(spe int, start, end sim.Cycle) {
	if r == nil {
		return
	}
	if len(r.spu) >= r.cap {
		r.dropped++
		return
	}
	r.spu = append(r.spu, SPUSpan{SPE: spe, Unit: UnitBurst, Start: start, End: end})
}

// DMA records a completed MFC command lifetime.
func (r *Recorder) DMA(spe int, dir uint8, size, tag int64, issued, launched, done sim.Cycle) {
	if r == nil {
		return
	}
	if len(r.dma) >= r.cap {
		r.dropped++
		return
	}
	r.dma = append(r.dma, DMASpan{SPE: spe, Dir: dir, Size: size, Tag: tag, Issued: issued, Launched: launched, Done: done})
}

// NoC records a delivered message span.
func (r *Recorder) NoC(src, dst int, kind uint8, bytes int, sent, delivered sim.Cycle) {
	if r == nil {
		return
	}
	if len(r.noc) >= r.cap {
		r.dropped++
		return
	}
	r.noc = append(r.noc, NoCSpan{Src: src, Dst: dst, Kind: kind, Bytes: bytes, Sent: sent, Delivered: delivered})
}

// SPUSpans returns the recorded SPU occupancy spans in emission order.
func (r *Recorder) SPUSpans() []SPUSpan {
	if r == nil {
		return nil
	}
	return r.spu
}

// DMASpans returns the recorded DMA command lifetimes.
func (r *Recorder) DMASpans() []DMASpan {
	if r == nil {
		return nil
	}
	return r.dma
}

// NoCSpans returns the recorded message transits.
func (r *Recorder) NoCSpans() []NoCSpan {
	if r == nil {
		return nil
	}
	return r.noc
}

// DroppedSpans returns how many spans exceeded a track's capacity.
func (r *Recorder) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset clears all tracks for machine reuse, keeping capacities.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spu = r.spu[:0]
	r.dma = r.dma[:0]
	r.noc = r.noc[:0]
	r.dropped = 0
	if r.Threads != nil {
		r.Threads.events = r.Threads.events[:0]
		r.Threads.dropped = 0
	}
}
