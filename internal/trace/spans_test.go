package trace

import (
	"testing"

	"repro/internal/sim"
)

func TestBufferOrderingAfterOverflow(t *testing.T) {
	// Overflow must not perturb what was already recorded: emit past
	// the cap, then check order and contents match the first emissions
	// exactly.
	b := NewBuffer(3)
	want := []Event{
		{At: 1, Kind: FrameAlloc, Thread: 7},
		{At: 2, Kind: Dispatch, Thread: 7},
		{At: 9, Kind: Done, Thread: 7},
	}
	for _, e := range want {
		b.Emit(e)
	}
	for i := 0; i < 100; i++ {
		b.Emit(Event{At: 1000, Kind: FrameFreed})
	}
	got := b.Events()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if b.Dropped() != 100 {
		t.Fatalf("dropped = %d, want 100", b.Dropped())
	}
}

func TestBufferDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 1025; i++ {
		b.Emit(Event{At: 1})
	}
	if len(b.Events()) != 1024 || b.Dropped() != 1 {
		t.Fatalf("len = %d dropped = %d, want 1024/1", len(b.Events()), b.Dropped())
	}
}

func TestRecorderNilIsNoOp(t *testing.T) {
	var r *Recorder
	r.SPUUnit(0, UnitThread, 0, 10, 1, 2)
	r.SPUBurst(0, 0, 10)
	r.DMA(0, 0, 128, 3, 0, 1, 2)
	r.NoC(0, 1, 0, 32, 0, 5)
	r.Reset()
	if r.SPUSpans() != nil || r.DMASpans() != nil || r.NoCSpans() != nil || r.DroppedSpans() != 0 {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRecorderCapPerTrackAndReset(t *testing.T) {
	r := NewRecorder(2)
	if r.Threads == nil {
		t.Fatal("recorder without Threads buffer")
	}
	for i := 0; i < 3; i++ {
		c := sim.Cycle(i)
		r.SPUUnit(i, UnitThread, c, c+1, int64(i), 0)
		r.DMA(i, 1, 64, int64(i), c, c, c+2)
		r.NoC(i, 0, 2, 16, c, c+3)
	}
	if len(r.SPUSpans()) != 2 || len(r.DMASpans()) != 2 || len(r.NoCSpans()) != 2 {
		t.Fatalf("track lens = %d/%d/%d, want 2 each",
			len(r.SPUSpans()), len(r.DMASpans()), len(r.NoCSpans()))
	}
	if r.DroppedSpans() != 3 {
		t.Fatalf("dropped = %d, want 3", r.DroppedSpans())
	}
	if r.SPUSpans()[0].SPE != 0 || r.SPUSpans()[1].SPE != 1 {
		t.Fatalf("emission order lost: %+v", r.SPUSpans())
	}
	r.Threads.Emit(Event{At: 1, Kind: Dispatch})
	r.Reset()
	if len(r.SPUSpans()) != 0 || len(r.DMASpans()) != 0 || len(r.NoCSpans()) != 0 ||
		r.DroppedSpans() != 0 || len(r.Threads.Events()) != 0 {
		t.Fatal("Reset did not clear all tracks")
	}
	// The recorder stays usable after Reset (machine reuse).
	r.SPUBurst(0, 0, 8)
	if len(r.SPUSpans()) != 1 || r.SPUSpans()[0].Unit != UnitBurst {
		t.Fatalf("post-Reset span = %+v", r.SPUSpans())
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	r := NewRecorder(0)
	if r.cap != DefaultSpanCap {
		t.Fatalf("cap = %d, want %d", r.cap, DefaultSpanCap)
	}
}

func TestUnitKindNames(t *testing.T) {
	if UnitThread.String() != "thread" || UnitPF.String() != "pf" || UnitBurst.String() != "burst" {
		t.Fatal("unit kind names wrong")
	}
}
