package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/program"
	"repro/internal/trace"
)

func TestNilBufferIsNoOp(t *testing.T) {
	var b *trace.Buffer
	b.Emit(trace.Event{}) // must not panic
	if b.Events() != nil || b.Dropped() != 0 {
		t.Fatal("nil buffer not empty")
	}
}

func TestBufferCapacityAndDrop(t *testing.T) {
	b := trace.NewBuffer(2)
	for i := 0; i < 5; i++ {
		b.Emit(trace.Event{Thread: int64(i)})
	}
	if len(b.Events()) != 2 || b.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(b.Events()), b.Dropped())
	}
	var out bytes.Buffer
	b.Dump(&out)
	if !strings.Contains(out.String(), "3 further events dropped") {
		t.Fatalf("dump missing drop notice: %q", out.String())
	}
}

// TestLifecycleOrderMatchesFigure4 runs a prefetching thread and checks
// the paper's state order: frame-alloc -> stores-done -> program-dma ->
// pf-dispatch -> wait-dma -> ready -> dispatch -> done -> frame-freed.
func TestLifecycleOrderMatchesFigure4(t *testing.T) {
	b := program.NewBuilder("lifecycle")
	root := b.Template("root")
	pf := root.Block(program.PF)
	pf.Load(program.R(1), 0)
	pf.Mfcea(program.R(1))
	pf.Mov(program.R(2), program.RegPFB)
	pf.Mfclsa(program.R(2))
	pf.Movi(program.R(3), 64)
	pf.Mfcsz(program.R(3))
	pf.Mfctag(program.RegTag)
	pf.Mfcget()
	root.PL().Load(program.R(4), 0)
	root.PS().
		StoreMailbox(program.R(4), program.R(5), 0).
		Ffree().
		Stop()
	b.Entry(root, 0x100000)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Templates[0].PrefetchBytes = 64

	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 1_000_000
	cfg.TraceCap = 64
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace buffer on result")
	}
	var kinds []trace.Kind
	var cycles []int64
	for _, e := range res.Trace.Events() {
		if e.Thread != 1 { // the root thread on SPE 0
			continue
		}
		kinds = append(kinds, e.Kind)
		cycles = append(cycles, int64(e.At))
	}
	want := []trace.Kind{
		trace.FrameAlloc, trace.StoresDone, trace.ProgramDMA,
		trace.PFDispatch, trace.WaitDMA, trace.Ready, trace.Dispatch,
		trace.FrameFreed, trace.Done,
	}
	if len(kinds) != len(want) {
		t.Fatalf("lifecycle = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("lifecycle[%d] = %s, want %s (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// Events are causally ordered in time.
	for i := 1; i < len(cycles); i++ {
		if cycles[i] < cycles[i-1] {
			t.Fatalf("event %d at cycle %d precedes event %d at %d",
				i, cycles[i], i-1, cycles[i-1])
		}
	}
	// Wait-for-DMA must actually take time (memory latency is 150).
	dmaWait := cycles[5] - cycles[4] // WaitDMA -> Ready
	if dmaWait < 100 {
		t.Fatalf("DMA wait lasted %d cycles, expected >= 100", dmaWait)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	b := program.NewBuilder("notrace")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0)
	root.PS().StoreMailbox(program.R(1), program.R(2), 0).Ffree().Stop()
	b.Entry(root, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 100_000
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace buffer allocated without TraceCap")
	}
}

func TestEventString(t *testing.T) {
	e := trace.Event{At: 42, SPE: 3, Kind: trace.Ready, Thread: 7, Template: 2}
	s := e.String()
	for _, want := range []string{"42", "spe3", "ready", "thread=7", "tmpl=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}
