// Package trace records thread-lifecycle events — the states of paper
// Figure 4 — into a bounded buffer, so users can watch a DTA activity
// unfold: frame allocation, the stores that drain a synchronisation
// counter, the Program-DMA / Wait-DMA detour added by prefetching,
// dispatch, completion and frame reuse.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind labels a lifecycle event.
type Kind uint8

const (
	// FrameAlloc: a frame was allocated for a new thread (paper: leaves
	// "Wait for frame").
	FrameAlloc Kind = iota
	// StoresDone: the thread's SC reached zero (leaves "Wait for stores").
	StoresDone
	// ProgramDMA: the thread entered the PF queue (paper Fig. 4 state 2a).
	ProgramDMA
	// WaitDMA: the PF block finished with transfers in flight (state 2b).
	WaitDMA
	// Ready: all data local; waiting for the pipeline.
	Ready
	// Dispatch: the SPU started executing PL/EX/PS.
	Dispatch
	// PFDispatch: the SPU started executing the PF block.
	PFDispatch
	// Done: STOP completed (including any write-back drain).
	Done
	// FrameFreed: the frame slot returned to the free pool.
	FrameFreed
)

var kindNames = map[Kind]string{
	FrameAlloc: "frame-alloc",
	StoresDone: "stores-done",
	ProgramDMA: "program-dma",
	WaitDMA:    "wait-dma",
	Ready:      "ready",
	Dispatch:   "dispatch",
	PFDispatch: "pf-dispatch",
	Done:       "done",
	FrameFreed: "frame-freed",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one lifecycle transition.
type Event struct {
	At       sim.Cycle
	SPE      int
	Kind     Kind
	Thread   int64 // per-LSE thread sequence number
	Template int
}

func (e Event) String() string {
	return fmt.Sprintf("%8d spe%d %-12s thread=%d tmpl=%d",
		e.At, e.SPE, e.Kind, e.Thread, e.Template)
}

// Buffer is a bounded event sink shared by all LSEs of a machine. A nil
// *Buffer is a valid no-op sink, so tracing costs nothing when disabled.
type Buffer struct {
	cap     int
	events  []Event
	dropped int64
}

// NewBuffer returns a sink holding at most capacity events (extra events
// are counted as dropped).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{cap: capacity}
}

// Emit records an event (no-op on a nil buffer).
func (b *Buffer) Emit(e Event) {
	if b == nil {
		return
	}
	if len(b.events) >= b.cap {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Events returns the recorded events in emission order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	return b.events
}

// Dropped returns how many events exceeded the capacity.
func (b *Buffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Dump writes the recorded events to w.
func (b *Buffer) Dump(w io.Writer) {
	for _, e := range b.Events() {
		fmt.Fprintln(w, e)
	}
	if d := b.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d further events dropped; raise the trace capacity)\n", d)
	}
}
