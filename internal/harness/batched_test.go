package harness

import (
	"bytes"
	"testing"

	"repro/internal/synth"
)

// corpusExperiments returns the 32 pinned synth-corpus experiments —
// each one runs the full differential (original AND prefetched
// simulation), so batching them covers both program variants.
func corpusExperiments(t testing.TB) []*Experiment {
	t.Helper()
	seeds := synth.CorpusSeeds()
	exps := make([]*Experiment, 0, len(seeds))
	for _, seed := range seeds {
		e, ok := ByID(synth.ExperimentID(seed))
		if !ok {
			t.Fatalf("synth corpus experiment for seed %d missing", seed)
		}
		exps = append(exps, e)
	}
	return exps
}

// TestBatchedMatchesSerialSweep is the batched determinism regression
// for the paper sweep: interleaved K-way execution must produce the
// same tables, notes, metrics and cycle counts as the serial runner.
func TestBatchedMatchesSerialSweep(t *testing.T) {
	exps := sweepExperiments(t)
	serial := renderResults(t, Serial(quickOpts(), exps))
	for _, width := range []int{2, 4, 8} {
		batched := renderResults(t, Batched(quickOpts(), exps, 2, width))
		if !bytes.Equal(serial, batched) {
			t.Fatalf("width=%d: serial and batched sweeps diverge:\n--- serial ---\n%s\n--- batched ---\n%s",
				width, serial, batched)
		}
	}
}

// TestBatchedMatchesSerialCorpus runs the full 32-seed pinned corpus —
// original and prefetch-transformed simulation of every scenario —
// through the batched runner and asserts byte-identical outcomes.
func TestBatchedMatchesSerialCorpus(t *testing.T) {
	exps := corpusExperiments(t)
	serial := renderResults(t, Serial(quickOpts(), exps))
	batched := renderResults(t, Batched(quickOpts(), exps, 2, 8))
	if !bytes.Equal(serial, batched) {
		t.Fatalf("serial and batched corpus runs diverge:\n--- serial ---\n%s\n--- batched ---\n%s",
			serial, batched)
	}
}

// TestBatchedWidthOneDegenerates: width <= 1 must behave exactly like
// Parallel (same results, same order).
func TestBatchedWidthOneDegenerates(t *testing.T) {
	exps := sweepExperiments(t)[:3]
	parallel := renderResults(t, Parallel(quickOpts(), exps, 2))
	for _, width := range []int{1, 0, -5} {
		got := renderResults(t, Batched(quickOpts(), exps, 2, width))
		if !bytes.Equal(parallel, got) {
			t.Fatalf("width=%d: does not degenerate to Parallel", width)
		}
	}
}

// TestBatchedPreservesOrder checks results land in input order, not in
// retirement order.
func TestBatchedPreservesOrder(t *testing.T) {
	exps := sweepExperiments(t)
	results := Batched(quickOpts(), exps, 2, 3)
	if len(results) != len(exps) {
		t.Fatalf("got %d results for %d experiments", len(results), len(exps))
	}
	for i, r := range results {
		if r.Experiment != exps[i] {
			t.Fatalf("result %d is %s, want %s", i, r.Experiment.ID, exps[i].ID)
		}
	}
}

// TestBatchedContainsPanic ensures a panicking experiment surfaces as
// its own error while its batch-mates complete.
func TestBatchedContainsPanic(t *testing.T) {
	bad := &Experiment{
		ID:    "boom",
		Title: "panics",
		Run:   func(*Context) (*Outcome, error) { panic("kaboom") },
	}
	good, ok := ByID("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	results := Batched(quickOpts(), []*Experiment{bad, good}, 1, 2)
	if results[0].Err == nil {
		t.Fatal("panicking experiment reported no error")
	}
	if results[1].Err != nil {
		t.Fatalf("healthy experiment failed: %v", results[1].Err)
	}
	if results[1].Outcome == nil {
		t.Fatal("healthy experiment lost its outcome")
	}
}

// TestBatchedEmptyAndClamped covers the degenerate inputs.
func TestBatchedEmptyAndClamped(t *testing.T) {
	if got := Batched(quickOpts(), nil, 4, 4); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
	exps := sweepExperiments(t)[:2]
	for _, cfg := range []struct{ workers, width int }{
		{0, 4}, {-1, 8}, {64, 4}, {2, 64},
	} {
		results := Batched(quickOpts(), exps, cfg.workers, cfg.width)
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d width=%d: %v", cfg.workers, cfg.width, r.Err)
			}
		}
	}
}

// TestSimCyclesRunnerIndependent: the represented-cycles metric counts
// cache hits at face value, so each experiment reports the same
// SimCycles no matter which runner executed the sweep.
func TestSimCyclesRunnerIndependent(t *testing.T) {
	exps := sweepExperiments(t)
	serial := Serial(quickOpts(), exps)
	batched := Batched(quickOpts(), exps, 2, 4)
	for i := range exps {
		if serial[i].Err != nil || batched[i].Err != nil {
			t.Fatalf("%s: serial err %v, batched err %v", exps[i].ID, serial[i].Err, batched[i].Err)
		}
		if serial[i].SimCycles <= 0 {
			t.Fatalf("%s: serial SimCycles = %d, want > 0", exps[i].ID, serial[i].SimCycles)
		}
		if serial[i].SimCycles != batched[i].SimCycles {
			t.Fatalf("%s: SimCycles serial=%d batched=%d", exps[i].ID, serial[i].SimCycles, batched[i].SimCycles)
		}
	}
}
