package harness

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cell"
)

// resultView is the comparable projection of a cell.Result: everything
// except the Trace/Rec/Prof attachments, which are pointers into
// machine-owned buffers.
type resultView struct {
	Cycles interface{}
	Tokens interface{}
	Agg    interface{}
	SPUs   interface{}
	LSEs   interface{}
	MFCs   interface{}
	DSEs   interface{}
	Mem    interface{}
	Net    interface{}
}

func view(r *cell.Result) resultView {
	return resultView{r.Cycles, r.Tokens, r.Agg, r.SPUs, r.LSEs, r.MFCs, r.DSEs, r.Mem, r.Net}
}

// TestCheckpointForkMatchesCold is the harness-level fork contract:
// a phase run served through the checkpoint cache must be identical —
// cycles and every statistic — to the same phase run simulated cold
// from cycle 0 (NoCheckpoint). Every benchmark, two knob kinds.
func TestCheckpointForkMatchesCold(t *testing.T) {
	warm := NewContext(Options{Quick: true})
	cold := NewContext(Options{Quick: true})
	cold.NoCheckpoint = true
	for _, bench := range benchmarks {
		base, err := warm.run(bench, warm.Opt.SPEs, true, defaultVariant())
		if err != nil {
			t.Fatalf("%s base: %v", bench, err)
		}
		div := base.Cycles / 2
		for _, knobs := range []cell.Knobs{
			{MemLatency: warm.Opt.Latency * 2},
			{MFCCmdLatency: 40},
			{MemLatency: warm.Opt.Latency * 3, MFCCmdLatency: 25},
		} {
			name := fmt.Sprintf("%s knobs=%+v", bench, knobs)
			hits := CheckpointHits.Load()
			got, err := warm.runPhase(bench, warm.Opt.SPEs, knobs, div)
			if err != nil {
				t.Fatalf("%s warm: %v", name, err)
			}
			want, err := cold.runPhase(bench, cold.Opt.SPEs, knobs, div)
			if err != nil {
				t.Fatalf("%s cold: %v", name, err)
			}
			if !reflect.DeepEqual(view(got), view(want)) {
				t.Errorf("%s: forked result differs from cold result (cycles %d vs %d)",
					name, got.Cycles, want.Cycles)
			}
			if knobs.MemLatency == warm.Opt.Latency*2 && knobs.MFCCmdLatency == 0 {
				// First phase run of this benchmark: the prefix is captured.
				continue
			}
			if CheckpointHits.Load() == hits {
				t.Errorf("%s: expected a checkpoint hit for the shared prefix", name)
			}
		}
	}
	if warm.ckpts.Len() == 0 {
		t.Error("warm context cached no checkpoints")
	}
	if cold.ckpts.Len() != 0 {
		t.Errorf("NoCheckpoint context cached %d checkpoints", cold.ckpts.Len())
	}
}

// TestCheckpointForkEarlyCompletion: a divergence cycle past the end
// of the run must finish un-knobbed and equal the plain baseline —
// the same semantics as a cold run whose phase change never arrives.
func TestCheckpointForkEarlyCompletion(t *testing.T) {
	ctx := NewContext(Options{Quick: true})
	base, err := ctx.run("bitcnt", ctx.Opt.SPEs, true, defaultVariant())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.runPhase("bitcnt", ctx.Opt.SPEs,
		cell.Knobs{MemLatency: ctx.Opt.Latency * 4}, base.Cycles*2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(view(got), view(base)) {
		t.Errorf("post-completion divergence changed the result: %d vs %d cycles",
			got.Cycles, base.Cycles)
	}
}

// TestCheckpointCacheLRU exercises the byte-cap eviction order: the
// least recently used entry goes first, a Get refreshes recency, and
// the entry just inserted is never evicted even when oversized.
func TestCheckpointCacheLRU(t *testing.T) {
	cc := NewCheckpointCache(100)
	blob := func(n int) []byte { return make([]byte, n) }
	cc.Put("a", blob(40))
	cc.Put("b", blob(40))
	if _, ok := cc.Get("a"); !ok { // refresh a: b is now coldest
		t.Fatal("a missing")
	}
	cc.Put("c", blob(40)) // 120 > 100: evicts b
	if _, ok := cc.Get("b"); ok {
		t.Error("b survived eviction despite being coldest")
	}
	if _, ok := cc.Get("a"); !ok {
		t.Error("a was evicted despite a refreshing Get")
	}
	if cc.Len() != 2 || cc.Bytes() != 80 {
		t.Errorf("cache = %d entries / %d bytes, want 2 / 80", cc.Len(), cc.Bytes())
	}

	cc.Put("huge", blob(500)) // oversized: evicts everything else, stays itself
	if _, ok := cc.Get("huge"); !ok {
		t.Error("oversized entry was evicted on insert")
	}
	if cc.Len() != 1 {
		t.Errorf("cache holds %d entries after oversized insert, want 1", cc.Len())
	}

	before := cc.Bytes()
	cc.Drop("huge")
	if cc.Len() != 0 || cc.Bytes() != 0 {
		t.Errorf("Drop left %d entries / %d bytes (had %d)", cc.Len(), cc.Bytes(), before)
	}
}

// memSpill is a test spill: a plain map standing in for dtad's disk
// directory.
type memSpill struct {
	m      map[string][]byte
	stores int
}

func (s *memSpill) Load(key string) ([]byte, bool) { b, ok := s.m[key]; return b, ok }
func (s *memSpill) Store(key string, blob []byte) {
	s.m[key] = append([]byte(nil), blob...)
	s.stores++
}

// TestCheckpointSpill: Put writes through, and a fresh cache over the
// same spill — a restarted process — serves the snapshot as a hit.
func TestCheckpointSpill(t *testing.T) {
	spill := &memSpill{m: make(map[string][]byte)}
	cc := NewCheckpointCache(1 << 20)
	cc.SetSpill(spill)
	cc.Put("k", []byte("snapshot"))
	if spill.stores != 1 {
		t.Fatalf("Put wrote through %d times, want 1", spill.stores)
	}

	fresh := NewCheckpointCache(1 << 20)
	fresh.SetSpill(spill)
	hits := CheckpointHits.Load()
	blob, ok := fresh.Get("k")
	if !ok || string(blob) != "snapshot" {
		t.Fatalf("Get after restart = %q, %v", blob, ok)
	}
	if CheckpointHits.Load() != hits+1 {
		t.Error("spill-served Get did not count as a hit")
	}
	if fresh.Len() != 1 {
		t.Error("spill-served Get did not promote the entry into memory")
	}
}
