package harness

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/stats"
)

// breakdownRow renders one benchmark's SPU-time breakdown percentages.
func breakdownRow(label string, res *cell.Result) []string {
	bd := res.AvgBreakdownPct()
	return []string{
		label,
		stats.Pct(bd[stats.Working]),
		stats.Pct(bd[stats.Idle]),
		stats.Pct(bd[stats.MemStall]),
		stats.Pct(bd[stats.LSStall]),
		stats.Pct(bd[stats.LSEStall]),
		stats.Pct(bd[stats.Prefetch]),
	}
}

var breakdownHeaders = []string{
	"benchmark", "Working", "Idle", "Memory", "LS", "LSE", "Prefetching",
}

func init() {
	register(&Experiment{
		ID:    "table2",
		Title: "Table 2: memory subsystem parameters",
		Paper: "main memory 512MB/150cy/1 port; local store 156kB/6cy/3 ports",
		Run: func(ctx *Context) (*Outcome, error) {
			cfg := cell.DefaultConfig()
			cfg.Mem.Latency = ctx.Opt.Latency
			t := &stats.Table{
				Title:   "Table 2 — memory subsystem (live configuration)",
				Headers: []string{"memory", "parameter", "value"},
			}
			t.AddRow("Main memory", "Size", fmt.Sprintf("%d MB", cfg.Mem.SizeBytes>>20))
			t.AddRow("", "Latency", fmt.Sprintf("%d cycles", cfg.Mem.Latency))
			t.AddRow("", "Number of ports", fmt.Sprintf("%d", cfg.Mem.Ports))
			t.AddRow("Local Store", "Size", fmt.Sprintf("%d kB", cfg.LS.SizeBytes/1024))
			t.AddRow("", "Latency", fmt.Sprintf("%d cycles", cfg.LS.Latency))
			t.AddRow("", "Number of ports", fmt.Sprintf("%d", 3))
			return &Outcome{Tables: []*stats.Table{t}, Metrics: map[string]float64{
				"mem_latency": float64(cfg.Mem.Latency),
				"ls_latency":  float64(cfg.LS.Latency),
			}}, nil
		},
	})

	register(&Experiment{
		ID:    "table3",
		Title: "Table 3: DMA programming parameters",
		Paper: "LS address, MEM address, data size, tag ID per command",
		Run: func(ctx *Context) (*Outcome, error) {
			t := &stats.Table{
				Title:   "Table 3 — MFC command fields (as implemented by the ISA)",
				Headers: []string{"name", "instruction", "description"},
			}
			t.AddRow("LS address", "mfclsa", "local store address data will be stored to")
			t.AddRow("MEM address", "mfcea", "main memory address data is located at")
			t.AddRow("Data size", "mfcsz", "size of the transfer in bytes")
			t.AddRow("Tag ID", "mfctag", "tag the LSE uses to check completion")
			t.AddRow("(enqueue)", "mfcget/mfcput", "submit the staged command to the queue")
			return &Outcome{Tables: []*stats.Table{t}, Metrics: map[string]float64{}}, nil
		},
	})

	register(&Experiment{
		ID:    "table4",
		Title: "Table 4: communication subsystem parameters",
		Paper: "4 buses x 8 B/cycle; MFC queue 16, command latency 30",
		Run: func(ctx *Context) (*Outcome, error) {
			cfg := cell.DefaultConfig()
			t := &stats.Table{
				Title:   "Table 4 — communication subsystem (live configuration)",
				Headers: []string{"unit", "parameter", "value"},
			}
			t.AddRow("Bus", "Number of buses", fmt.Sprintf("%d", cfg.Noc.Buses))
			t.AddRow("", "BW of each bus", fmt.Sprintf("%d bytes/cycle", cfg.Noc.BytesPerCyc))
			t.AddRow("", "Total BW", fmt.Sprintf("%d bytes/cycle", cfg.Noc.Buses*cfg.Noc.BytesPerCyc))
			t.AddRow("MFC (DMA controller)", "Command queue size", fmt.Sprintf("%d", cfg.MFC.QueueSize))
			t.AddRow("", "Command latency", fmt.Sprintf("%d cycles", cfg.MFC.CmdLatency))
			return &Outcome{Tables: []*stats.Table{t}, Metrics: map[string]float64{
				"buses":       float64(cfg.Noc.Buses),
				"mfc_queue":   float64(cfg.MFC.QueueSize),
				"mfc_latency": float64(cfg.MFC.CmdLatency),
			}}, nil
		},
	})

	register(&Experiment{
		ID:    "fig5a",
		Title: "Figure 5a: SPU time breakdown, no prefetching (8 SPUs, lat 150)",
		Paper: "memory stalls: bitcnt 58%, mmul 94%, zoom 92%",
		Run:   func(ctx *Context) (*Outcome, error) { return breakdownExperiment(ctx, false) },
	})

	register(&Experiment{
		ID:    "fig5b",
		Title: "Figure 5b: SPU time breakdown, with prefetching",
		Paper: "memory stalls ~0 for mmul/zoom, 26% for bitcnt; prefetch overhead 19%/28%/~0",
		Run:   func(ctx *Context) (*Outcome, error) { return breakdownExperiment(ctx, true) },
	})

	register(&Experiment{
		ID:    "table5",
		Title: "Table 5: dynamic instruction counts (no prefetching)",
		Paper: "mmul READ=65536 WRITE=1024; zoom READ=32768 WRITE=16384; bitcnt READ~2% of total",
		Run:   table5,
	})

	for _, bench := range benchmarks {
		bench := bench
		figID := map[string]string{"bitcnt": "fig6", "mmul": "fig7", "zoom": "fig8"}[bench]
		paper := map[string]string{
			"bitcnt": "prefetching speeds up bitcnt(10000) ~1.13x at 8 SPUs",
			"mmul":   "prefetching speeds up mmul(32) ~11.18x at 8 SPUs",
			"zoom":   "prefetching speeds up zoom(32) ~11.48x at 8 SPUs",
		}[bench]
		register(&Experiment{
			ID:    figID,
			Title: fmt.Sprintf("Figure %s: %s execution time and scalability (1..8 SPUs)", figID[3:], bench),
			Paper: paper,
			Run:   func(ctx *Context) (*Outcome, error) { return scalabilityExperiment(ctx, bench) },
		})
	}

	// Single-run experiments, one per (benchmark, variant): the smallest
	// addressable unit of work. They exist for targeted tooling — a
	// `-trace` timeline of exactly one simulation, a dtad job that wants
	// one benchmark — without dragging in a whole figure's sweep.
	for _, bench := range benchmarks {
		for _, pf := range []bool{false, true} {
			bench, pf := bench, pf
			suffix, desc := "orig", "original DTA"
			if pf {
				suffix, desc = "pf", "with DMA prefetching"
			}
			register(&Experiment{
				ID:    bench + "-" + suffix,
				Title: fmt.Sprintf("Single run: %s, %s (paper operating point)", bench, desc),
				Paper: "one simulation; the breakdown row of Figure 5" + map[bool]string{false: "a", true: "b"}[pf],
				Run:   func(ctx *Context) (*Outcome, error) { return singleRunExperiment(ctx, bench, pf) },
			})
		}
	}

	register(&Experiment{
		ID:    "fig9",
		Title: "Figure 9: pipeline usage with and without prefetching",
		Paper: "usage much higher with prefetching; almost perfect for mmul/zoom",
		Run:   fig9,
	})

	register(&Experiment{
		ID:    "lat1",
		Title: "Section 4.3: all memory latencies set to 1 cycle (always-hit study)",
		Paper: "speedup 1.01x (mmul), 1.34x (zoom); bitcnt slows down (overhead 34%, only 5% mem wait)",
		Run:   lat1,
	})
}

func singleRunExperiment(ctx *Context, bench string, pf bool) (*Outcome, error) {
	res, err := ctx.run(bench, ctx.Opt.SPEs, pf, defaultVariant())
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("%s (pf=%v, %d SPUs, latency %d) — SPU time breakdown", bench, pf, ctx.Opt.SPEs, ctx.Opt.Latency),
		Headers: breakdownHeaders,
	}
	t.AddRow(breakdownRow(ctx.benchLabel(bench), res)...)
	bd := res.AvgBreakdownPct()
	metrics := map[string]float64{
		"cycles":       float64(res.Cycles),
		"threads":      float64(res.Agg.Threads),
		"working_pct":  bd[stats.Working],
		"mem_pct":      bd[stats.MemStall],
		"prefetch_pct": bd[stats.Prefetch],
		"noc_messages": float64(res.Net.Messages),
		"stall_pct":    res.Agg.Breakdown.StallPct(),
	}
	ct := &stats.Table{
		Title:   fmt.Sprintf("%s (pf=%v) — cycle attribution by cause", bench, pf),
		Headers: []string{"cause", "bucket", "cycles", "share"},
	}
	total := res.Agg.Breakdown.Total()
	for c := stats.Cause(0); c < stats.NumCauses; c++ {
		n := res.Agg.Causes[c]
		metrics["cause_"+c.Slug()+"_cycles"] = float64(n)
		if n == 0 {
			continue // keep the table to causes that actually occurred
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(n) / float64(total)
		}
		ct.AddRow(c.Slug(), c.Bucket().String(), fmt.Sprintf("%d", n), stats.Pct(share))
	}
	return &Outcome{Tables: []*stats.Table{t, ct}, Metrics: metrics}, nil
}

func breakdownExperiment(ctx *Context, pf bool) (*Outcome, error) {
	title := "Figure 5a — breakdown of average SPU execution time (no prefetching)"
	if pf {
		title = "Figure 5b — breakdown of average SPU execution time (with prefetching)"
	}
	t := &stats.Table{Title: title, Headers: breakdownHeaders}
	metrics := map[string]float64{}
	for _, bench := range benchmarks {
		res, err := ctx.run(bench, ctx.Opt.SPEs, pf, defaultVariant())
		if err != nil {
			return nil, err
		}
		t.AddRow(breakdownRow(ctx.benchLabel(bench), res)...)
		bd := res.AvgBreakdownPct()
		metrics[bench+"_mem_pct"] = bd[stats.MemStall]
		metrics[bench+"_prefetch_pct"] = bd[stats.Prefetch]
		metrics[bench+"_working_pct"] = bd[stats.Working]
		metrics[bench+"_lse_pct"] = bd[stats.LSEStall]
		metrics[bench+"_stall_pct"] = res.Agg.Breakdown.StallPct()
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func table5(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "Table 5 — executed instructions (original DTA, 8 SPUs)",
		Headers: []string{"benchmark", "Total", "LOAD", "STORE", "READ", "WRITE"},
	}
	metrics := map[string]float64{}
	for _, bench := range benchmarks {
		res, err := ctx.run(bench, ctx.Opt.SPEs, false, defaultVariant())
		if err != nil {
			return nil, err
		}
		ic := res.Agg.Instr
		t.AddRow(ctx.benchLabel(bench),
			fmt.Sprintf("%d", ic.Total),
			fmt.Sprintf("%d", ic.Load),
			fmt.Sprintf("%d", ic.Store),
			fmt.Sprintf("%d", ic.Read),
			fmt.Sprintf("%d", ic.Write))
		metrics[bench+"_total"] = float64(ic.Total)
		metrics[bench+"_read"] = float64(ic.Read)
		metrics[bench+"_write"] = float64(ic.Write)
		metrics[bench+"_load"] = float64(ic.Load)
		metrics[bench+"_store"] = float64(ic.Store)
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func scalabilityExperiment(ctx *Context, bench string) (*Outcome, error) {
	spesList := []int{1, 2, 4, 8}
	if ctx.Opt.SPEs < 8 {
		spesList = nil
		for s := 1; s <= ctx.Opt.SPEs; s *= 2 {
			spesList = append(spesList, s)
		}
	}
	exec := &stats.Table{
		Title:   fmt.Sprintf("(a) execution time (cycles), %s", ctx.benchLabel(bench)),
		Headers: []string{"SPUs", "original", "prefetching", "speedup"},
	}
	scal := &stats.Table{
		Title:   "(b) scalability (speedup vs 1 SPU)",
		Headers: []string{"SPUs", "original", "prefetching"},
	}
	metrics := map[string]float64{}
	var base [2]float64
	for i, spes := range spesList {
		orig, err := ctx.run(bench, spes, false, defaultVariant())
		if err != nil {
			return nil, err
		}
		pf, err := ctx.run(bench, spes, true, defaultVariant())
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base[0], base[1] = float64(orig.Cycles), float64(pf.Cycles)
		}
		speedup := float64(orig.Cycles) / float64(pf.Cycles)
		exec.AddRow(fmt.Sprintf("%d", spes),
			fmt.Sprintf("%d", orig.Cycles),
			fmt.Sprintf("%d", pf.Cycles),
			stats.Ratio(speedup))
		scal.AddRow(fmt.Sprintf("%d", spes),
			stats.Ratio(base[0]/float64(orig.Cycles)),
			stats.Ratio(base[1]/float64(pf.Cycles)))
		metrics[fmt.Sprintf("speedup_%dspu", spes)] = speedup
		metrics[fmt.Sprintf("orig_cycles_%dspu", spes)] = float64(orig.Cycles)
		metrics[fmt.Sprintf("pf_cycles_%dspu", spes)] = float64(pf.Cycles)
	}
	last := spesList[len(spesList)-1]
	metrics["scalability_orig"] = base[0] / metrics[fmt.Sprintf("orig_cycles_%dspu", last)]
	metrics["scalability_pf"] = base[1] / metrics[fmt.Sprintf("pf_cycles_%dspu", last)]
	return &Outcome{Tables: []*stats.Table{exec, scal}, Metrics: metrics}, nil
}

func fig9(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "Figure 9 — pipeline usage (fraction of cycles issuing instructions)",
		Headers: []string{"benchmark", "original", "prefetching", "slot-util orig", "slot-util pf"},
	}
	metrics := map[string]float64{}
	for _, bench := range benchmarks {
		orig, err := ctx.run(bench, ctx.Opt.SPEs, false, defaultVariant())
		if err != nil {
			return nil, err
		}
		pf, err := ctx.run(bench, ctx.Opt.SPEs, true, defaultVariant())
		if err != nil {
			return nil, err
		}
		ow := orig.AvgBreakdownPct()[stats.Working]
		pw := pf.AvgBreakdownPct()[stats.Working]
		t.AddRow(ctx.benchLabel(bench),
			stats.Pct(ow), stats.Pct(pw),
			fmt.Sprintf("%.3f", orig.PipelineUsage()),
			fmt.Sprintf("%.3f", pf.PipelineUsage()))
		metrics[bench+"_usage_orig"] = ow
		metrics[bench+"_usage_pf"] = pw
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func lat1(ctx *Context) (*Outcome, error) {
	sub := ctx.Sub(Options{SPEs: ctx.Opt.SPEs, Latency: 1, Quick: ctx.Opt.Quick, Seed: ctx.Opt.Seed})
	exec := &stats.Table{
		Title:   "Section 4.3 — all memory latencies set to 1 cycle (8 SPUs)",
		Headers: []string{"benchmark", "original", "prefetching", "speedup"},
	}
	bdown := &stats.Table{
		Title:   "breakdown with prefetching at latency 1",
		Headers: breakdownHeaders,
	}
	metrics := map[string]float64{}
	for _, bench := range benchmarks {
		orig, err := sub.run(bench, sub.Opt.SPEs, false, defaultVariant())
		if err != nil {
			return nil, err
		}
		pf, err := sub.run(bench, sub.Opt.SPEs, true, defaultVariant())
		if err != nil {
			return nil, err
		}
		speedup := float64(orig.Cycles) / float64(pf.Cycles)
		exec.AddRow(sub.benchLabel(bench),
			fmt.Sprintf("%d", orig.Cycles),
			fmt.Sprintf("%d", pf.Cycles),
			stats.Ratio(speedup))
		bdown.AddRow(breakdownRow(sub.benchLabel(bench), pf)...)
		metrics[bench+"_speedup"] = speedup
		metrics[bench+"_pf_overhead_pct"] = pf.AvgBreakdownPct()[stats.Prefetch]
		metrics[bench+"_orig_mem_pct"] = orig.AvgBreakdownPct()[stats.MemStall]
	}
	return &Outcome{
		Tables: []*stats.Table{exec, bdown},
		Notes: []string{
			"the paper reports mmul 1.01x, zoom 1.34x, and a bitcnt slowdown " +
				"(prefetch overhead with nothing to hide)",
		},
		Metrics: metrics,
	}, nil
}
