package harness

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/program"
	"repro/internal/sim"
)

// Process-wide checkpoint counters, aggregated across every
// CheckpointCache (caches are per-worker like the run cache, so
// per-instance counters cannot be scraped). Exposed as
// dtad_checkpoint_* by the service's metrics registry.
var (
	// CheckpointHits counts forked runs seeded from a cached snapshot
	// (in-memory or spill) instead of simulating the warm-up prefix.
	CheckpointHits atomic.Int64
	// CheckpointMisses counts fork requests that had to simulate the
	// prefix cold (and then captured it for the next variant).
	CheckpointMisses atomic.Int64
	// CheckpointEvictions counts snapshots dropped from memory under
	// the byte cap (spilled copies, if any, survive).
	CheckpointEvictions atomic.Int64
	// CheckpointBytes gauges the snapshot bytes currently resident in
	// memory across all caches.
	CheckpointBytes atomic.Int64
	// CheckpointCyclesSaved accumulates the simulated cycles restores
	// skipped — each hit bills the cycle the snapshot was captured at.
	CheckpointCyclesSaved atomic.Int64
)

// DefaultCheckpointCacheBytes bounds the in-memory snapshot bytes a
// cache retains by default. A machine snapshot is dominated by the
// touched local-store and sparse-memory pages — hundreds of kB to a
// few MB for the paper's workloads — so this holds the warm-up
// prefixes of a full sweep with room to spare.
const DefaultCheckpointCacheBytes = 256 << 20

// CheckpointSpill is an optional second level under a CheckpointCache:
// Put writes through to it and a memory miss consults it, so snapshots
// survive process restarts (the dtad service provides a disk-backed
// implementation). Implementations must tolerate concurrent use —
// unlike the in-memory cache, one spill is typically shared by every
// worker in the process.
type CheckpointSpill interface {
	// Load returns the blob stored under key, if present.
	Load(key string) ([]byte, bool)
	// Store persists blob under key (best effort; errors are the
	// implementation's to swallow or log).
	Store(key string, blob []byte)
}

// CheckpointCache holds encoded machine snapshots keyed by
// cell.SnapshotKey, evicting least-recently-used entries beyond a byte
// cap. Like the run cache it is confined to one worker — no locking —
// and BatchState shares one across the fibers of a batch, which is
// safe because fibers never execute simultaneously.
type CheckpointCache struct {
	capBytes int64
	bytes    int64
	blobs    map[string][]byte
	order    []string // LRU order, coldest first
	spill    CheckpointSpill
}

// NewCheckpointCache returns an empty cache retaining at most capBytes
// of snapshots in memory (<= 0 selects DefaultCheckpointCacheBytes).
func NewCheckpointCache(capBytes int64) *CheckpointCache {
	if capBytes <= 0 {
		capBytes = DefaultCheckpointCacheBytes
	}
	return &CheckpointCache{capBytes: capBytes, blobs: make(map[string][]byte)}
}

// SetSpill attaches a second-level store: Put writes through to it and
// a memory miss consults it before reporting a miss.
func (cc *CheckpointCache) SetSpill(s CheckpointSpill) { cc.spill = s }

// Get returns the snapshot stored under key, consulting the spill on a
// memory miss, and bills the process hit/miss counters.
func (cc *CheckpointCache) Get(key string) ([]byte, bool) {
	if cc == nil {
		CheckpointMisses.Add(1)
		return nil, false
	}
	if blob, ok := cc.blobs[key]; ok {
		cc.touch(key)
		CheckpointHits.Add(1)
		return blob, true
	}
	if cc.spill != nil {
		if blob, ok := cc.spill.Load(key); ok {
			cc.insert(key, blob)
			CheckpointHits.Add(1)
			return blob, true
		}
	}
	CheckpointMisses.Add(1)
	return nil, false
}

// Put stores a snapshot under key, writes it through to the spill and
// evicts the coldest entries beyond the byte cap. The entry just
// inserted is never evicted, even when it alone exceeds the cap —
// otherwise an oversized snapshot would thrash forever.
func (cc *CheckpointCache) Put(key string, blob []byte) {
	if cc == nil {
		return
	}
	cc.insert(key, blob)
	if cc.spill != nil {
		cc.spill.Store(key, blob)
	}
}

// Drop removes key without counting an eviction (used when a cached
// blob fails to restore, so it is never served again).
func (cc *CheckpointCache) Drop(key string) {
	if cc == nil {
		return
	}
	blob, ok := cc.blobs[key]
	if !ok {
		return
	}
	delete(cc.blobs, key)
	cc.bytes -= int64(len(blob))
	CheckpointBytes.Add(-int64(len(blob)))
	for i, k := range cc.order {
		if k == key {
			cc.order = append(cc.order[:i], cc.order[i+1:]...)
			break
		}
	}
}

// Len reports the resident entry count; Bytes the resident byte total.
func (cc *CheckpointCache) Len() int {
	if cc == nil {
		return 0
	}
	return len(cc.blobs)
}

// Bytes reports this cache's resident snapshot bytes.
func (cc *CheckpointCache) Bytes() int64 {
	if cc == nil {
		return 0
	}
	return cc.bytes
}

func (cc *CheckpointCache) insert(key string, blob []byte) {
	if old, ok := cc.blobs[key]; ok {
		cc.bytes -= int64(len(old))
		CheckpointBytes.Add(-int64(len(old)))
		cc.touch(key)
	} else {
		cc.order = append(cc.order, key)
	}
	cc.blobs[key] = blob
	cc.bytes += int64(len(blob))
	CheckpointBytes.Add(int64(len(blob)))
	for cc.bytes > cc.capBytes && len(cc.order) > 1 {
		cold := cc.order[0]
		cc.order = cc.order[1:]
		dropped := cc.blobs[cold]
		delete(cc.blobs, cold)
		cc.bytes -= int64(len(dropped))
		CheckpointBytes.Add(-int64(len(dropped)))
		CheckpointEvictions.Add(1)
	}
}

func (cc *CheckpointCache) touch(key string) {
	for i, k := range cc.order {
		if k == key {
			cc.order = append(cc.order[:i], cc.order[i+1:]...)
			cc.order = append(cc.order, key)
			return
		}
	}
}

// runTo advances m to the first natural event boundary at or beyond
// target, yielding between bounded slices when this context is a
// batched fiber. The landing cycle is the first event cycle >= target
// regardless of slicing — any event inside a slice becomes an
// intermediate landing below target and the loop continues — so the
// capture point, and therefore the checkpoint key's meaning, does not
// depend on the runner.
func (c *Context) runTo(m *cell.Machine, target sim.Cycle) (cell.StepStatus, error) {
	if c.sched == nil {
		_, st, err := m.RunTo(target)
		return st, err
	}
	slice := c.slice
	if slice <= 0 {
		slice = cell.DefaultSlice
	}
	for m.Now() < target {
		horizon := c.sched(m.NextEvent())
		until := m.Now() + slice
		if horizon > until {
			until = horizon
		}
		if until > target || until < m.Now() { // cap at the capture point
			until = target
		}
		st, err := m.StepUntil(until)
		if err != nil {
			return 0, err
		}
		if st == cell.StepDone {
			return cell.StepDone, nil
		}
	}
	return cell.StepBudget, nil
}

// fork executes prog with knobs taking effect at the first event
// boundary at or beyond div, sharing the warm-up prefix across calls:
// the prefix state is served from the checkpoint cache when a sibling
// variant (same cfg, program and divergence cycle) already simulated
// it, and simulated once then captured otherwise. Forked runs are
// byte-identical to running cold and applying the knobs at the same
// boundary (see cell.TestKnobDivergence); a run that completes before
// div finishes un-knobbed, exactly as a cold run would.
//
// Recording and profiling are not supported on this path — snapshot
// capture refuses machines with trace buffers, and the pre-divergence
// prefix of a restored run was never executed here, so there would be
// nothing faithful to record.
func (c *Context) fork(prog *program.Program, spes int, knobs cell.Knobs, div sim.Cycle) (*cell.Result, error) {
	cfg := c.machineConfig(spes, defaultVariant())
	m, err := c.pool.Get(cfg, prog)
	if err != nil {
		return nil, err
	}
	useCkpt := c.ckpts != nil && !c.NoCheckpoint
	restored := false
	var key string
	if useCkpt {
		key = cell.SnapshotKey(cfg, prog, div)
		if blob, ok := c.ckpts.Get(key); ok {
			if rerr := m.RestoreSnapshot(blob, key); rerr == nil {
				CheckpointCyclesSaved.Add(int64(m.Now()))
				restored = true
			} else {
				// A blob that fails to restore is poison: drop it and
				// recover the half-written machine for the cold path.
				c.ckpts.Drop(key)
				if err := m.Reset(prog); err != nil {
					return nil, err
				}
			}
		}
	}
	st := cell.StepBudget
	if !restored {
		st, err = c.runTo(m, div)
		if err != nil {
			return nil, err
		}
		if useCkpt && st != cell.StepDone {
			if blob, err := m.EncodeSnapshot(key); err == nil {
				c.ckpts.Put(key, blob)
			}
		}
	}
	var res *cell.Result
	if st == cell.StepDone {
		res, err = m.Finish()
	} else {
		m.ApplyKnobs(knobs)
		if c.sched != nil {
			res, err = m.RunScheduled(c.slice, c.sched)
		} else {
			res, err = m.Run()
		}
	}
	if err != nil {
		return nil, err
	}
	// Safe to release even when knobbed: Reset restores the
	// construction-time latencies before the machine is reused.
	c.pool.Put(m)
	if res.CheckErr != nil {
		return nil, fmt.Errorf("functional check: %w", res.CheckErr)
	}
	return res, nil
}

// runPhase executes (with run-cache memoisation) one benchmark whose
// memory/DMA parameters change mid-run: the machine runs the paper
// configuration up to divergence cycle div, then continues with knobs
// applied. Sibling calls that differ only in knobs share the warm-up
// prefix through the checkpoint cache.
func (c *Context) runPhase(bench string, spes int, knobs cell.Knobs, div sim.Cycle) (*cell.Result, error) {
	key := runKey{bench, spes, c.Opt.Latency, true, 0, -1, 0, false, 0, true,
		knobs.MemLatency, knobs.MFCCmdLatency, int64(div)}
	return c.memoRun(key, func() (*cell.Result, error) {
		prog, err := c.buildProgram(bench, spes, true, true)
		if err != nil {
			return nil, err
		}
		res, err := c.fork(prog, spes, knobs, div)
		if err != nil {
			return nil, fmt.Errorf("%s spes=%d phase@%d: %w", bench, spes, div, err)
		}
		return res, nil
	})
}
