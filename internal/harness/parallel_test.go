package harness

import (
	"bytes"
	"fmt"
	"testing"
)

// sweepIDs is the 8-experiment sweep used by the parallel-harness tests
// and benchmarks: the paper's figures plus the latency study.
var sweepIDs = []string{"fig5a", "fig5b", "table5", "fig6", "fig7", "fig8", "fig9", "lat1"}

func sweepExperiments(t testing.TB) []*Experiment {
	t.Helper()
	exps := make([]*Experiment, 0, len(sweepIDs))
	for _, id := range sweepIDs {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}
	return exps
}

func quickOpts() Options {
	return Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42}
}

// renderResults flattens a sweep's outcomes — rendered tables, notes and
// sorted metrics — into one byte string, so runs can be compared
// cycle-for-cycle and stat-for-stat.
func renderResults(t testing.TB, results []RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
		}
		fmt.Fprintf(&buf, "== %s\n", r.Experiment.ID)
		r.Outcome.Print(&buf)
		for _, k := range sortedKeys(r.Outcome.Metrics) {
			fmt.Fprintf(&buf, "%s=%v\n", k, r.Outcome.Metrics[k])
		}
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial is the harness-level determinism regression:
// the same sweep through the serial runner and the parallel runner must
// produce identical tables, notes, metrics and cycle counts.
func TestParallelMatchesSerial(t *testing.T) {
	exps := sweepExperiments(t)
	serial := renderResults(t, Serial(quickOpts(), exps))
	parallel := renderResults(t, Parallel(quickOpts(), exps, 4))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial and parallel sweeps diverge:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestParallelRepeatable runs the parallel sweep twice and asserts
// cycle-for-cycle identical results.
func TestParallelRepeatable(t *testing.T) {
	exps := sweepExperiments(t)
	a := renderResults(t, Parallel(quickOpts(), exps, 4))
	b := renderResults(t, Parallel(quickOpts(), exps, 4))
	if !bytes.Equal(a, b) {
		t.Fatal("repeated parallel sweeps diverge")
	}
}

// TestParallelPreservesOrder checks results land in input order, not
// completion order.
func TestParallelPreservesOrder(t *testing.T) {
	exps := sweepExperiments(t)
	results := Parallel(quickOpts(), exps, 3)
	if len(results) != len(exps) {
		t.Fatalf("got %d results for %d experiments", len(results), len(exps))
	}
	for i, r := range results {
		if r.Experiment != exps[i] {
			t.Fatalf("result %d is %s, want %s", i, r.Experiment.ID, exps[i].ID)
		}
	}
}

// TestParallelContainsPanic ensures a panicking experiment surfaces as
// its own error without killing the sweep.
func TestParallelContainsPanic(t *testing.T) {
	bad := &Experiment{
		ID:    "boom",
		Title: "panics",
		Run:   func(*Context) (*Outcome, error) { panic("kaboom") },
	}
	good, ok := ByID("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	results := Parallel(quickOpts(), []*Experiment{bad, good}, 2)
	if results[0].Err == nil {
		t.Fatal("panicking experiment reported no error")
	}
	if results[1].Err != nil {
		t.Fatalf("healthy experiment failed: %v", results[1].Err)
	}
	if results[1].Outcome == nil {
		t.Fatal("healthy experiment lost its outcome")
	}
}

// TestParallelEmptyAndClamped covers the degenerate inputs.
func TestParallelEmptyAndClamped(t *testing.T) {
	if got := Parallel(quickOpts(), nil, 4); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
	// More workers than experiments, and workers <= 0, must both work.
	exps := sweepExperiments(t)[:2]
	for _, workers := range []int{0, -1, 64} {
		results := Parallel(quickOpts(), exps, workers)
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: %v", workers, r.Err)
			}
		}
	}
}
