package harness

import (
	"runtime"
	"sync"

	"repro/internal/batch"
	"repro/internal/cell"
	"repro/internal/program"
	"repro/internal/sim"
)

// BatchState is the state the fibers of one batched worker share: the
// machine pool, the run and program caches, the inflight marks and the
// slice length. Sharing is lock-free by construction — the fibers of
// one batch.Run never execute simultaneously (see package batch) — and
// sharing the RUN CACHE is where batching beats Parallel: the paper's
// sweep re-requests the same simulations across experiments, and one
// scheduler dedups them where per-experiment goroutines each recompute.
type BatchState struct {
	opt   Options
	pool  *cell.Pool
	cache map[runKey]*cell.Result
	progs map[progKey]*program.Program
	ckpts *CheckpointCache
	// inflight marks run-cache keys some fiber is computing right now,
	// so a sibling wanting the same simulation waits instead of
	// duplicating it (see Context.memoRun).
	inflight map[runKey]bool
	slice    sim.Cycle
}

// NewBatchState prepares shared state for one batched worker. slice is
// the per-round cycle budget each fiber's simulation advances between
// yields; slice <= 0 selects cell.DefaultSlice. width is the number of
// fibers that will share the state — the machine pool's free list is
// sized to it, since all width machines of one configuration retire
// together between rounds (width <= 1 keeps the default cap).
func NewBatchState(opt Options, slice sim.Cycle, width int) *BatchState {
	if slice <= 0 {
		slice = cell.DefaultSlice
	}
	return &BatchState{
		opt:      opt.WithDefaults(),
		pool:     cell.NewBatchPool(width),
		cache:    make(map[runKey]*cell.Result),
		progs:    make(map[progKey]*program.Program),
		ckpts:    NewCheckpointCache(0),
		inflight: make(map[runKey]bool),
		slice:    slice,
	}
}

// Context returns a fiber-local Context over the shared state: caches,
// pool and inflight marks are shared with sibling fibers, while yield
// and the simulated-cycle counter belong to this fiber alone.
func (s *BatchState) Context(yield func()) *Context {
	return &Context{
		Opt:       s.opt,
		cache:     s.cache,
		progs:     s.progs,
		pool:      s.pool,
		ckpts:     s.ckpts,
		inflight:  s.inflight,
		slice:     s.slice,
		yield:     yield,
		simCycles: new(int64),
		recs:      &recState{},
		profs:     &profState{},
	}
}

// NewBatchedContext returns a context whose simulations advance in
// bounded slices of slice cycles (0 = cell.DefaultSlice), calling yield
// between slices — for callers that interleave heterogeneous work
// (jobs with differing Options, as in the dtad service) and therefore
// cannot share a BatchState's caches. The context owns fresh caches but
// shares pool, which is safe across the fibers of one batch.Run: they
// never execute simultaneously.
func NewBatchedContext(opt Options, pool *cell.Pool, slice sim.Cycle, yield func()) *Context {
	c := NewContextWithPool(opt, pool)
	if slice <= 0 {
		slice = cell.DefaultSlice
	}
	c.slice = slice
	c.yield = yield
	return c
}

// Batched executes experiments on a bounded worker pool, each worker
// interleaving up to width experiments cooperatively (package batch):
// every live experiment's simulation advances one bounded slice per
// round, so K working sets stay resident per goroutine and the worker's
// run cache is shared across all K. Results land in input order, and a
// panic inside an experiment is contained to that experiment (RunOn),
// exactly as in Parallel.
//
// Every simulation remains single-threaded and byte-identical to a
// Serial run — slices land on the engine's natural event boundaries and
// fibers only ever hand control to each other between slices — so
// batching changes throughput, never results.
//
// width <= 1 degenerates to Parallel. workers <= 0 selects
// runtime.NumCPU(); workers are clamped so each can hold at least one
// fiber's worth of work.
func Batched(opt Options, exps []*Experiment, workers, width int) []RunResult {
	if width <= 1 {
		return Parallel(opt, exps, workers)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if maxW := (len(exps) + width - 1) / width; workers > maxW {
		workers = maxW
	}
	results := make([]RunResult, len(exps))
	if len(exps) == 0 {
		return results
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			state := NewBatchState(opt, 0, width)
			batch.Run(width, batch.FeedChan(idxCh, func(i int) batch.Task {
				return func(yield func()) {
					results[i] = RunOn(state.Context(yield), exps[i])
				}
			}))
		}()
	}
	for i := range exps {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return results
}
