package harness

import (
	"runtime"
	"sync"

	"repro/internal/batch"
	"repro/internal/cell"
	"repro/internal/program"
	"repro/internal/sim"
)

// BatchState is the state the fibers of one batched worker share: the
// machine pool, the run and program caches, the inflight marks and the
// slice length. Sharing is lock-free by construction — the fibers of
// one batch.Run never execute simultaneously (see package batch) — and
// sharing the RUN CACHE is where batching beats Parallel: the paper's
// sweep re-requests the same simulations across experiments, and one
// scheduler dedups them where per-experiment goroutines each recompute.
type BatchState struct {
	opt   Options
	pool  *cell.Pool
	cache map[runKey]*cell.Result
	progs map[progKey]*program.Program
	ckpts *CheckpointCache
	// inflight marks run-cache keys some fiber is computing right now,
	// so a sibling wanting the same simulation waits instead of
	// duplicating it (see Context.memoRun).
	inflight map[runKey]bool
	slice    sim.Cycle
}

// NewBatchState prepares shared state for one batched worker. slice is
// the anti-ping-pong floor each fiber's simulation advances between
// yields at minimum (the horizon scheduler extends slices to the batch
// horizon); slice <= 0 selects cell.DefaultSlice. width is the number
// of fibers that will share the state — the machine pool's free list
// is sized to it, since up to width machines of one configuration can
// be live at once (width <= 1 keeps the default cap).
func NewBatchState(opt Options, slice sim.Cycle, width int) *BatchState {
	if slice <= 0 {
		slice = cell.DefaultSlice
	}
	return &BatchState{
		opt:      opt.WithDefaults(),
		pool:     cell.NewBatchPool(width),
		cache:    make(map[runKey]*cell.Result),
		progs:    make(map[progKey]*program.Program),
		ckpts:    NewCheckpointCache(0),
		inflight: make(map[runKey]bool),
		slice:    slice,
	}
}

// SetCheckpointCache replaces the state's snapshot cache, so a caller
// owning a longer-lived cache (the dtad worker keeps one per worker,
// outliving any shared run-cache generation — snapshots are keyed by
// content, not by Options) can share it across states.
func (s *BatchState) SetCheckpointCache(cc *CheckpointCache) {
	if cc != nil {
		s.ckpts = cc
	}
}

// Options returns the normalised Options the state was built for.
func (s *BatchState) Options() Options { return s.opt }

// Context returns a fiber-local Context over the shared state: caches,
// pool and inflight marks are shared with sibling fibers, while sched
// and the simulated-cycle counter belong to this fiber alone. sched is
// the fiber's scheduling hook (see Context.sched): it reports the
// machine's next pending event and receives the batch horizon.
func (s *BatchState) Context(sched func(next sim.Cycle) sim.Cycle) *Context {
	return s.ContextFor(s.opt, sched)
}

// ContextFor is Context with per-job Options: jobs whose Options agree
// on the program-shaping fields (Quick, Seed) may share one BatchState
// even when their latency or machine-size knobs differ — every other
// Options field is folded into the run-cache key of each simulation —
// so the dtad service keys its shared states by exactly that pair.
// opt's Quick and Seed must match the state's; mixing them would alias
// distinct programs under one cache key.
func (s *BatchState) ContextFor(opt Options, sched func(next sim.Cycle) sim.Cycle) *Context {
	opt = opt.WithDefaults()
	if opt.Quick != s.opt.Quick || opt.Seed != s.opt.Seed {
		panic("harness: BatchState shared across Options differing in Quick/Seed")
	}
	return &Context{
		Opt:       opt,
		cache:     s.cache,
		progs:     s.progs,
		pool:      s.pool,
		ckpts:     s.ckpts,
		inflight:  s.inflight,
		slice:     s.slice,
		sched:     sched,
		simCycles: new(int64),
		recs:      &recState{},
		profs:     &profState{},
	}
}

// NewBatchedContext returns a context whose simulations advance under a
// fiber scheduling hook (see Context.sched) in slices of at least slice
// cycles (0 = cell.DefaultSlice) — for callers that interleave
// heterogeneous work (jobs with differing Quick/Seed, as in the dtad
// service) and therefore cannot share a BatchState's caches. The
// context owns fresh caches but shares pool, which is safe across the
// fibers of one scheduler: they never execute simultaneously.
func NewBatchedContext(opt Options, pool *cell.Pool, slice sim.Cycle, sched func(next sim.Cycle) sim.Cycle) *Context {
	c := NewContextWithPool(opt, pool)
	if slice <= 0 {
		slice = cell.DefaultSlice
	}
	c.slice = slice
	c.sched = sched
	return c
}

// workerKit is the recyclable part of a batched worker's state: the
// machine pool and the compiled-program cache. Both hold deterministic
// build artifacts, never results — a recycled kit changes how fast a
// sweep's simulations start (machine graphs, 156 kB local stores and
// compiled programs stay warm), not what they compute — so Batched
// parks retired kits in a process-level stash and back-to-back calls
// (benchmark iterations, repeated sweeps in one process) skip the
// rebuild. Run caches are NOT recycled: each call still executes its
// simulations. Kits are handed out exclusively, preserving the pool's
// single-threaded contract; the program cache is flushed when the
// program-shaping Options (Quick, Seed) differ from the previous owner,
// since progKey does not include them.
type workerKit struct {
	pool  *cell.Pool
	progs map[progKey]*program.Program
	quick bool
	seed  uint64
}

var kitStash struct {
	sync.Mutex
	free []*workerKit
}

// kitStashCap bounds parked kits so a burst of wide sweeps cannot strand
// an unbounded number of idle machine pools.
const kitStashCap = 32

// getWorkerKit returns a recycled kit compatible with opt (normalised),
// or a fresh one. width sizes the pool as in NewBatchPool.
func getWorkerKit(opt Options, width int) *workerKit {
	kitStash.Lock()
	defer kitStash.Unlock()
	if n := len(kitStash.free); n > 0 {
		k := kitStash.free[n-1]
		kitStash.free[n-1] = nil
		kitStash.free = kitStash.free[:n-1]
		k.pool.GrowCap(width)
		if k.quick != opt.Quick || k.seed != opt.Seed {
			k.progs = make(map[progKey]*program.Program)
			k.quick, k.seed = opt.Quick, opt.Seed
		}
		return k
	}
	return &workerKit{
		pool:  cell.NewBatchPool(width),
		progs: make(map[progKey]*program.Program),
		quick: opt.Quick,
		seed:  opt.Seed,
	}
}

// putWorkerKit parks a kit for the next Batched call. The caller must
// not touch the kit (or the BatchState it was attached to) afterwards.
func putWorkerKit(k *workerKit) {
	kitStash.Lock()
	defer kitStash.Unlock()
	if len(kitStash.free) < kitStashCap {
		kitStash.free = append(kitStash.free, k)
	}
}

// attach points the state's pool and program cache at the kit's.
func (k *workerKit) attach(s *BatchState) {
	s.pool = k.pool
	s.progs = k.progs
}

// SchedTask adapts a harness workload to a batch.KeyedTask: run receives
// the fiber's scheduling hook in Context form (sim.Cycle keys). Shared
// by Batched and the dtad worker so the int64/sim.Cycle bridging lives
// in one place.
func SchedTask(run func(sched func(next sim.Cycle) sim.Cycle)) batch.KeyedTask {
	return func(yield func(key int64) int64) {
		run(func(next sim.Cycle) sim.Cycle {
			return sim.Cycle(yield(int64(next)))
		})
	}
}

// Batched executes experiments on a bounded worker pool, each worker
// interleaving up to width experiments cooperatively under the
// horizon-aware scheduler (batch.RunScheduled): the fiber whose
// simulation has the earliest pending event runs next, for a slice
// sized to the batch horizon, so K working sets stay resident per
// goroutine and the worker's run cache is shared across all K. Results
// land in input order, and a panic inside an experiment is contained to
// that experiment (RunOn), exactly as in Parallel.
//
// Every simulation remains single-threaded and byte-identical to a
// Serial run — slices land on the engine's natural event boundaries and
// fibers only ever hand control to each other between slices — so
// batching changes throughput, never results.
//
// width <= 1 degenerates to Parallel. workers <= 0 selects
// runtime.NumCPU(); workers are clamped so each can hold at least one
// fiber's worth of work.
func Batched(opt Options, exps []*Experiment, workers, width int) []RunResult {
	if width <= 1 {
		return Parallel(opt, exps, workers)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if maxW := (len(exps) + width - 1) / width; workers > maxW {
		workers = maxW
	}
	results := make([]RunResult, len(exps))
	if len(exps) == 0 {
		return results
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			state := NewBatchState(opt, 0, width)
			kit := getWorkerKit(state.opt, width)
			kit.attach(state)
			defer putWorkerKit(kit)
			batch.RunScheduled(width, batch.KeyedFeedChan(idxCh, func(i int) batch.KeyedTask {
				return SchedTask(func(sched func(next sim.Cycle) sim.Cycle) {
					results[i] = RunOn(state.Context(sched), exps[i])
				})
			}))
		}()
	}
	for i := range exps {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return results
}
