package harness

import (
	"errors"
	"strings"
	"testing"
)

// errorSweep is a three-experiment sweep exercising both failure modes
// next to a healthy run: an error return, a panic, and a real cheap
// experiment (table2, a config echo).
func errorSweep(t *testing.T) []*Experiment {
	t.Helper()
	good, ok := ByID("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	return []*Experiment{
		{
			ID:    "erroring",
			Title: "returns an error",
			Run: func(*Context) (*Outcome, error) {
				return nil, errors.New("deliberate error")
			},
		},
		{
			ID:    "panicking",
			Title: "panics mid-run",
			Run: func(*Context) (*Outcome, error) {
				panic("deliberate panic")
			},
		},
		good,
	}
}

// checkErrorSweep asserts the shared contract of Serial and Parallel on
// failing experiments: errors land on their own slot, panics are
// converted to errors naming the experiment, healthy experiments keep
// their outcome, and every result records its experiment and a timing.
func checkErrorSweep(t *testing.T, runner string, results []RunResult) {
	t.Helper()
	if len(results) != 3 {
		t.Fatalf("%s: %d results for 3 experiments", runner, len(results))
	}
	errRes, panicRes, goodRes := results[0], results[1], results[2]

	if errRes.Err == nil || !strings.Contains(errRes.Err.Error(), "deliberate error") {
		t.Fatalf("%s: erroring experiment err = %v", runner, errRes.Err)
	}
	if errRes.Outcome != nil {
		t.Fatalf("%s: erroring experiment still produced an outcome", runner)
	}

	if panicRes.Err == nil {
		t.Fatalf("%s: panic was not converted to an error", runner)
	}
	msg := panicRes.Err.Error()
	if !strings.Contains(msg, "panicked") || !strings.Contains(msg, "deliberate panic") || !strings.Contains(msg, "panicking") {
		t.Fatalf("%s: panic error %q should name the experiment and the panic value", runner, msg)
	}

	if goodRes.Err != nil {
		t.Fatalf("%s: healthy experiment failed: %v", runner, goodRes.Err)
	}
	if goodRes.Outcome == nil || len(goodRes.Outcome.Tables) == 0 {
		t.Fatalf("%s: healthy experiment lost its outcome", runner)
	}

	for i, r := range results {
		if r.Experiment == nil {
			t.Fatalf("%s: result %d lost its experiment", runner, i)
		}
		if r.Elapsed < 0 {
			t.Fatalf("%s: result %d has negative elapsed %v", runner, i, r.Elapsed)
		}
	}
}

func TestSerialErrorPaths(t *testing.T) {
	checkErrorSweep(t, "Serial", Serial(quickOpts(), errorSweep(t)))
}

func TestParallelErrorPaths(t *testing.T) {
	checkErrorSweep(t, "Parallel", Parallel(quickOpts(), errorSweep(t), 2))
}
