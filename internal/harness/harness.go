// Package harness defines one runnable experiment per table and figure
// of the paper's evaluation (§4), plus the ablations listed in
// DESIGN.md. Each experiment prints the same rows/series the paper
// reports and returns machine-readable metrics so the benchmark suite
// and EXPERIMENTS.md generation can assert on shapes.
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Process-wide run-cache counters aggregated across every Context (the
// contexts are per-worker, so per-instance counters cannot be scraped).
// Exposed as dtad_harness_* by the service's metrics registry.
var (
	// RunsExecuted counts simulations actually computed (cache misses).
	RunsExecuted atomic.Int64
	// RunCacheHits counts memoised results served without simulating.
	RunCacheHits atomic.Int64
	// InflightDedupHits counts waits resolved by a sibling fiber's
	// in-flight computation of the same run key.
	InflightDedupHits atomic.Int64
)

// CauseCycles accumulates simulated SPU cycles per stall cause across
// every Context, with the same accounting rule as Context.SimCycles:
// every cache request bills the result's totals, hit or miss, so the
// numbers track the workloads served, not which runner computed them.
// Exposed as dtad_sim_stall_cycles_total{cause=...} by the service.
var CauseCycles [stats.NumCauses]atomic.Int64

// Options configures an experiment run.
type Options struct {
	SPEs    int  // default 8 (the paper's platform)
	Latency int  // memory latency; default 150 (paper Table 2)
	Quick   bool // shrink problem sizes for fast test runs
	Seed    uint64
}

// WithDefaults returns o with unset fields replaced by the paper's
// operating point (8 SPEs, 150-cycle memory, seed 42). Two Options
// values that normalise to the same WithDefaults() result describe the
// same run — internal/service relies on this to compute canonical run
// keys, so any new Options field must get its default applied here.
func (o Options) WithDefaults() Options {
	if o.SPEs == 0 {
		o.SPEs = 8
	}
	if o.Latency == 0 {
		o.Latency = 150
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Outcome is an experiment's result: rendered tables plus named metrics.
type Outcome struct {
	Tables  []*stats.Table
	Notes   []string
	Metrics map[string]float64
}

// Print renders the outcome.
func (o *Outcome) Print(w io.Writer) {
	for _, t := range o.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range o.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Experiment reproduces one paper table/figure.
type Experiment struct {
	ID    string // e.g. "fig5a"
	Title string
	Paper string // the shape the paper reports, for side-by-side reading
	Run   func(ctx *Context) (*Outcome, error)
}

var experiments []*Experiment

func register(e *Experiment) { experiments = append(experiments, e) }

// presentation order: the paper's tables and figures first, then the
// ablations (init order across files is alphabetical, so registration
// order alone is not the paper's order).
var order = []string{
	"table2", "table3", "table4",
	"fig5a", "fig5b", "table5",
	"bitcnt-orig", "bitcnt-pf", "mmul-orig", "mmul-pf", "zoom-orig", "zoom-pf",
	"fig6", "fig7", "fig8", "fig9", "lat1",
	"ablation-vfp", "ablation-dmalat", "ablation-buses",
	"ablation-memlat", "ablation-nodes", "ablation-granularity",
	"ablation-writeback", "phase-memlat",
}

// All returns the registered experiments in paper presentation order.
func All() []*Experiment {
	rank := make(map[string]int, len(order))
	for i, id := range order {
		rank[id] = i
	}
	out := append([]*Experiment(nil), experiments...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		if iok && jok {
			return ri < rj
		}
		return iok // ranked ones first, unranked keep registration order
	})
	return out
}

// ByID finds one experiment.
func ByID(id string) (*Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// IDs lists experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	return ids
}

// Context carries options and a run cache shared across experiments (the
// same benchmark run feeds several figures, as in the paper).
type Context struct {
	Opt Options
	// SingleStep disables the SPU's burst-execution fast path for every
	// machine this context builds, by setting spu.Config.BurstMax to -1
	// (see that field's doc comment for the canonical value semantics)
	// — the slow path the burst differential tests compare against.
	// Results are identical either way; only wall-clock time differs.
	SingleStep bool
	// NoCheckpoint disables checkpoint sharing on the fork path: every
	// phase run simulates its warm-up prefix from cycle 0. Results are
	// identical either way (the byte-identity the snapshot tests
	// enforce); the cold baseline exists for benchmarking the sharing.
	NoCheckpoint bool
	cache        map[runKey]*cell.Result
	progs        map[progKey]*program.Program
	pool         *cell.Pool
	// ckpts shares warm-up-prefix snapshots across fork calls (see
	// Context.fork). Shared by Sub contexts and batch fibers exactly
	// like the run cache.
	ckpts *CheckpointCache
	// Batched execution (see Batched): sched parks this context's fiber
	// between simulation slices, reporting the machine's next pending
	// event cycle (the scheduling key) and receiving the batch horizon —
	// the cycle at which a sibling fiber is next due — so slices run
	// exactly to natural scheduling points (cell.Machine.RunScheduled).
	// Passing sim.Never parks the fiber until no sibling is runnable
	// (batch.Waiting — the inflight-dedup wait). slice is the minimum
	// per-slice cycle budget, and inflight marks cache keys a sibling
	// fiber is currently computing so this fiber waits for the result
	// instead of duplicating the simulation. All nil/zero for serial and
	// parallel contexts.
	sched    func(next sim.Cycle) sim.Cycle
	slice    sim.Cycle
	inflight map[runKey]bool
	// simCycles accumulates the simulated cycles this context's
	// experiments represent — every cache request counts the result's
	// cycle total, hit or miss, so the metric depends only on the
	// workload, not on which runner (or sibling fiber) computed it. A
	// pointer so Sub-derived contexts bill the same counter.
	simCycles *int64
	// recs, when enabled, collects one timeline recording per simulation
	// this context (and its Sub contexts) actually computes. Shared by
	// pointer so derived contexts feed the same trace.
	recs *recState
	// profs mirrors recs for the guest cycle profiler: one per-PC stall
	// attribution per simulation actually computed (cell.Config.Profile).
	profs *profState
}

// RecordedRun is one machine run's timeline recording plus the label it
// renders under in the exported trace.
type RecordedRun struct {
	Label string
	SPEs  int
	Rec   *trace.Recorder
}

type recState struct {
	on    bool
	cap   int
	label string // set by run()/runUnchunked around execute()
	runs  []RecordedRun
}

// ProfiledRun is one machine run's guest cycle profile plus the program
// that symbolizes it — exactly the inputs prof.Run wants.
type ProfiledRun struct {
	Label string
	SPEs  int
	Prog  *program.Program
	Prof  *stats.Profile
}

type profState struct {
	on    bool
	label string // set by run()/runUnchunked around execute()
	runs  []ProfiledRun
}

// NewContext prepares a context with its own machine pool.
func NewContext(opt Options) *Context {
	return NewContextWithPool(opt, cell.NewPool())
}

// NewContextWithPool prepares a context that recycles machines through
// pool (shared across the contexts of one worker to amortise machine
// construction over a sweep). The pool must not be shared across
// goroutines.
func NewContextWithPool(opt Options, pool *cell.Pool) *Context {
	return &Context{
		Opt:       opt.WithDefaults(),
		cache:     make(map[runKey]*cell.Result),
		progs:     make(map[progKey]*program.Program),
		pool:      pool,
		ckpts:     NewCheckpointCache(0),
		inflight:  make(map[runKey]bool),
		simCycles: new(int64),
		recs:      &recState{},
		profs:     &profState{},
	}
}

// SetCheckpointCache replaces this context's checkpoint cache — used
// by long-lived workers (the dtad service) to share one cache, often
// spill-backed, across the per-job contexts they build. Must be called
// before the context runs anything; nil disables checkpoint sharing.
func (c *Context) SetCheckpointCache(cc *CheckpointCache) { c.ckpts = cc }

// CheckpointCacheState exposes the context's checkpoint cache (for
// tests and stats).
func (c *Context) CheckpointCacheState() *CheckpointCache { return c.ckpts }

// EnableRecording makes every simulation this context computes record a
// full component timeline (SPU/DMA/NoC/thread spans; see cell.Config
// .Record) with the given per-track span capacity (0 = default).
// Recorded machines bypass the pool, so enable this only for dedicated
// tracing runs.
func (c *Context) EnableRecording(spanCap int) {
	c.recs.on = true
	c.recs.cap = spanCap
}

// Recorded returns the timeline recordings collected so far, one per
// simulation computed while recording was enabled (cache hits replay
// the already-recorded run and add nothing).
func (c *Context) Recorded() []RecordedRun {
	if c.recs == nil {
		return nil
	}
	return c.recs.runs
}

// EnableProfiling makes every simulation this context computes collect
// a guest cycle profile (per-PC stall attribution; see cell.Config
// .Profile). Profiled machines bypass the pool — a pooled machine's
// profile is cleared on reuse — so enable this only for dedicated
// profiling runs.
func (c *Context) EnableProfiling() {
	c.profs.on = true
}

// Profiled returns the guest profiles collected so far, one per
// simulation computed while profiling was enabled (cache hits reuse
// the already-profiled run and add nothing). Export with
// internal/prof.Write.
func (c *Context) Profiled() []ProfiledRun {
	if c.profs == nil {
		return nil
	}
	return c.profs.runs
}

// Sub derives a context at a different operating point that shares this
// context's machinery: machine pool, run and program caches (run keys
// embed the latency and knobs that matter), inflight marks, batching
// hooks and the simulated-cycle counter. Experiments that re-run the
// sweep under modified options (lat1's latency-1 study) use it so their
// simulations interleave and count like everyone else's. opt must agree
// with the parent on the program-shaping fields (Quick, Seed) — the
// program cache is keyed only by benchmark, SPE count and variant.
func (c *Context) Sub(opt Options) *Context {
	return &Context{
		Opt:          opt.WithDefaults(),
		SingleStep:   c.SingleStep,
		NoCheckpoint: c.NoCheckpoint,
		cache:        c.cache,
		progs:        c.progs,
		pool:         c.pool,
		ckpts:        c.ckpts,
		sched:        c.sched,
		slice:        c.slice,
		inflight:     c.inflight,
		simCycles:    c.simCycles,
		recs:         c.recs,
		profs:        c.profs,
	}
}

type runKey struct {
	bench    string
	spes     int
	latency  int
	prefetch bool
	nodes    int
	dmaLat   int
	buses    int
	vfp      bool
	frames   int
	chunked  bool
	// Phase-change runs (Context.runPhase): the knob values applied
	// from phaseDiv onward. All zero for ordinary runs, so existing
	// keys are unchanged.
	phaseMemLat int
	phaseMFCLat int
	phaseDiv    int64
}

type progKey struct {
	bench    string
	spes     int
	prefetch bool
	chunked  bool
}

// benchParams returns the paper's problem sizes (or quick ones).
func (c *Context) benchParams(bench string, spes int) workloads.Params {
	w, ok := workloads.Get(bench)
	if !ok {
		panic("harness: unknown benchmark " + bench)
	}
	n := w.DefaultN
	if c.Opt.Quick {
		switch bench {
		case "bitcnt":
			n = 400
		default:
			n = 16
		}
	}
	p := workloads.Params{N: n, Seed: c.Opt.Seed}
	switch bench {
	case "bitcnt":
		// chunking is fixed by the workload default
	default:
		p.Workers = workloads.AutoWorkers(spes, 32)
	}
	return p
}

// buildProgram builds (and caches) a benchmark program variant.
func (c *Context) buildProgram(bench string, spes int, pf, chunked bool) (*program.Program, error) {
	key := progKey{bench, spes, pf, chunked}
	if p, ok := c.progs[key]; ok {
		return p, nil
	}
	w, _ := workloads.Get(bench)
	prog, err := w.Build(c.benchParams(bench, spes))
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", bench, err)
	}
	if !chunked {
		// Ablation A6: fetch whole regions with single DMA commands.
		for _, t := range prog.Templates {
			for i := range t.Regions {
				t.Regions[i].ChunkBytes = 0
			}
		}
	}
	if pf {
		prog, err = prefetch.Transform(prog)
		if err != nil {
			return nil, fmt.Errorf("transform %s: %w", bench, err)
		}
	}
	c.progs[key] = prog
	return prog, nil
}

// variant describes one machine configuration knob set for run().
type variant struct {
	nodes  int
	dmaLat int // -1 = default
	buses  int // 0 = default
	vfp    bool
	frames int // 0 = default frame count per LSE
}

// memoRun serves key from the run cache, computing it on a miss. When
// this context is a batched fiber (yield != nil) the cache is shared
// with sibling fibers: if one of them is already computing key, this
// fiber parks until the result lands rather than duplicating the
// simulation. The wait cannot deadlock — a waiting fiber holds no
// inflight mark of its own (memoRun calls never nest), so wait-for
// cycles are impossible; and the mark is cleared on every exit path,
// so a failed compute unblocks waiters (which then recompute and hit
// the same deterministic error).
func (c *Context) memoRun(key runKey, compute func() (*cell.Result, error)) (*cell.Result, error) {
	waited := false
	for {
		if r, ok := c.cache[key]; ok {
			RunCacheHits.Add(1)
			if waited {
				InflightDedupHits.Add(1)
			}
			*c.simCycles += int64(r.Cycles)
			addCauseCycles(r)
			return r, nil
		}
		if c.sched == nil || !c.inflight[key] {
			break
		}
		waited = true
		// Park as a waiter (batch.Waiting == sim.Never): the scheduler
		// resumes this fiber only when no sibling is runnable — by which
		// point the computing fiber has landed the result (or failed and
		// cleared the mark). No busy-yield round-trips in between.
		c.sched(sim.Never)
	}
	if c.inflight != nil {
		c.inflight[key] = true
		defer delete(c.inflight, key)
	}
	res, err := compute()
	if err != nil {
		return nil, err
	}
	RunsExecuted.Add(1)
	c.cache[key] = res
	*c.simCycles += int64(res.Cycles)
	addCauseCycles(res)
	return res, nil
}

// addCauseCycles bills one result's per-cause cycle totals to the
// process-wide counters (memoRun's two accounting points).
func addCauseCycles(res *cell.Result) {
	for cs := stats.Cause(0); cs < stats.NumCauses; cs++ {
		if n := res.Agg.Causes[cs]; n != 0 {
			CauseCycles[cs].Add(n)
		}
	}
}

// run executes (with caching) one benchmark configuration.
func (c *Context) run(bench string, spes int, prefetchOn bool, v variant) (*cell.Result, error) {
	chunked := true
	key := runKey{bench, spes, c.Opt.Latency, prefetchOn, v.nodes, v.dmaLat, v.buses, v.vfp, v.frames, chunked, 0, 0, 0}
	return c.memoRun(key, func() (*cell.Result, error) {
		prog, err := c.buildProgram(bench, spes, prefetchOn, chunked)
		if err != nil {
			return nil, err
		}
		if c.recs.on || c.profs.on {
			label := fmt.Sprintf("%s spes=%d pf=%v lat=%d", bench, spes, prefetchOn, c.Opt.Latency)
			c.recs.label, c.profs.label = label, label
		}
		res, err := c.execute(prog, spes, v)
		if err != nil {
			return nil, fmt.Errorf("%s spes=%d pf=%v: %w", bench, spes, prefetchOn, err)
		}
		return res, nil
	})
}

// runUnchunked is run() with single-command region fetches (A6).
func (c *Context) runUnchunked(bench string, spes int, prefetchOn bool) (*cell.Result, error) {
	key := runKey{bench, spes, c.Opt.Latency, prefetchOn, 0, -1, 0, false, 0, false, 0, 0, 0}
	return c.memoRun(key, func() (*cell.Result, error) {
		prog, err := c.buildProgram(bench, spes, prefetchOn, false)
		if err != nil {
			return nil, err
		}
		if c.recs.on || c.profs.on {
			label := fmt.Sprintf("%s spes=%d pf=%v lat=%d unchunked", bench, spes, prefetchOn, c.Opt.Latency)
			c.recs.label, c.profs.label = label, label
		}
		return c.execute(prog, spes, variant{dmaLat: -1})
	})
}

// machineConfig derives the machine configuration for one run from
// the context options and variant knobs — shared by execute and the
// fork path so checkpoint keys agree with what execute would build
// (recording/profiling flags are layered on by execute alone).
func (c *Context) machineConfig(spes int, v variant) cell.Config {
	cfg := cell.DefaultConfig()
	cfg.SPEs = spes
	cfg.Mem.Latency = c.Opt.Latency
	if c.Opt.Latency == 1 {
		// The paper's "all memory latencies set to one cycle" study
		// (§4.3) models the best case "when cache accesses would always
		// hit": READ/WRITE become 1-cycle ideal-cache accesses and the
		// local store is idealised to match.
		cfg.LS.Latency = 1
		cfg.SPU.PerfectCacheLat = 1
	}
	if v.nodes > 0 {
		cfg.Nodes = v.nodes
	}
	if v.dmaLat >= 0 {
		cfg.MFC.CmdLatency = v.dmaLat
	}
	if v.buses > 0 {
		cfg.Noc.Buses = v.buses
	}
	cfg.LSE.VirtualFP = v.vfp
	if v.frames > 0 {
		cfg.LSE.NumFrames = v.frames
	}
	if c.SingleStep {
		cfg.SPU.BurstMax = -1
	}
	return cfg
}

func (c *Context) execute(prog *program.Program, spes int, v variant) (*cell.Result, error) {
	cfg := c.machineConfig(spes, v)
	recording := c.recs != nil && c.recs.on
	if recording {
		cfg.Record = true
		cfg.RecordCap = c.recs.cap
	}
	profiling := c.profs != nil && c.profs.on
	if profiling {
		cfg.Profile = true
	}
	m, err := c.pool.Get(cfg, prog)
	if err != nil {
		return nil, err
	}
	var res *cell.Result
	if c.sched != nil {
		// Batched fiber: advance in horizon-sized slices, parking between
		// them so sibling simulations interleave on this worker.
		res, err = m.RunScheduled(c.slice, c.sched)
	} else {
		res, err = m.Run()
	}
	if err != nil {
		return nil, err
	}
	if recording {
		// Keep the recording alive: a pooled machine's recorder is reset
		// on reuse, so recorded machines are not returned to the pool.
		label := c.recs.label
		if label == "" {
			label = fmt.Sprintf("run spes=%d", spes)
		}
		c.recs.runs = append(c.recs.runs, RecordedRun{Label: label, SPEs: spes, Rec: res.Rec})
	}
	if profiling {
		// Same lifetime rule as recordings: a pooled machine's profile is
		// cleared on reuse, so profiled machines stay out of the pool.
		label := c.profs.label
		if label == "" {
			label = fmt.Sprintf("run spes=%d", spes)
		}
		c.profs.runs = append(c.profs.runs, ProfiledRun{Label: label, SPEs: spes, Prog: prog, Prof: res.Prof})
	}
	if !recording && !profiling {
		// Safe to release immediately: Result copies all statistics, the
		// trace buffer is replaced (not cleared) on reuse, and harness
		// experiments never read the machine's memory image.
		c.pool.Put(m)
	}
	if res.CheckErr != nil {
		return nil, fmt.Errorf("functional check: %w", res.CheckErr)
	}
	return res, nil
}

// defaultVariant keeps all knobs at paper values.
func defaultVariant() variant { return variant{dmaLat: -1} }

// benchmarks is the paper's evaluation set, in presentation order.
var benchmarks = []string{"bitcnt", "mmul", "zoom"}

// benchLabel renders "bitcnt(10000)"-style labels.
func (c *Context) benchLabel(bench string) string {
	return fmt.Sprintf("%s(%d)", bench, c.benchParams(bench, c.Opt.SPEs).N)
}

// sortedKeys is a helper for deterministic metric listings.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
