package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func quickOpt() Options {
	return Options{SPEs: 2, Latency: 60, Quick: true, Seed: 42}
}

// TestRecordedRunConsistentWithBreakdown drives the acceptance check:
// recording mmul-pf yields per-component tracks whose span counts agree
// with the experiment's own reported metrics.
func TestRecordedRunConsistentWithBreakdown(t *testing.T) {
	exp, ok := ByID("mmul-pf")
	if !ok {
		t.Fatal("mmul-pf experiment not registered")
	}
	ctx := NewContext(quickOpt())
	ctx.EnableRecording(0)
	res := RunOn(ctx, exp)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	recorded := ctx.Recorded()
	if len(recorded) != 1 {
		t.Fatalf("recorded %d runs, want 1", len(recorded))
	}
	rr := recorded[0]
	if rr.SPEs != 2 {
		t.Fatalf("recorded SPEs = %d, want 2", rr.SPEs)
	}
	if !strings.Contains(rr.Label, "mmul") {
		t.Fatalf("label = %q, want the benchmark name in it", rr.Label)
	}

	var threadSpans, pfSpans, burstSpans float64
	for _, s := range rr.Rec.SPUSpans() {
		switch s.Unit {
		case trace.UnitThread:
			threadSpans++
		case trace.UnitPF:
			pfSpans++
		case trace.UnitBurst:
			burstSpans++
		}
	}
	m := res.Outcome.Metrics
	if got, want := threadSpans, m["threads"]; got != want {
		t.Fatalf("thread spans = %v, metrics report %v threads", got, want)
	}
	if pfSpans == 0 {
		t.Fatal("prefetch experiment recorded no PF spans")
	}
	if len(rr.Rec.DMASpans()) == 0 {
		t.Fatal("no DMA spans recorded")
	}
	// Spans are recorded at bus grant; the metric counts deliveries, so
	// a small in-flight tail may remain when the run stops.
	if got, want := float64(len(rr.Rec.NoCSpans())), m["noc_messages"]; got < want {
		t.Fatalf("NoC spans = %v < %v delivered messages", got, want)
	}
	if len(rr.Rec.Threads.Events()) == 0 {
		t.Fatal("no thread-lifecycle events recorded")
	}
}

// TestRecordingDoesNotChangeOutcome is the regression guard at the
// harness level: a recorded sweep reports exactly the same tables and
// metrics as a plain one.
func TestRecordingDoesNotChangeOutcome(t *testing.T) {
	exp, ok := ByID("mmul-pf")
	if !ok {
		t.Fatal("mmul-pf experiment not registered")
	}
	plain := RunOn(NewContext(quickOpt()), exp)
	recCtx := NewContext(quickOpt())
	recCtx.EnableRecording(0)
	rec := RunOn(recCtx, exp)
	if plain.Err != nil || rec.Err != nil {
		t.Fatalf("errors: plain=%v recorded=%v", plain.Err, rec.Err)
	}
	if !reflect.DeepEqual(plain.Outcome.Metrics, rec.Outcome.Metrics) {
		t.Fatalf("metrics differ:\nplain    %+v\nrecorded %+v", plain.Outcome.Metrics, rec.Outcome.Metrics)
	}
	if !reflect.DeepEqual(plain.Outcome.Tables, rec.Outcome.Tables) {
		t.Fatalf("tables differ:\nplain    %+v\nrecorded %+v", plain.Outcome.Tables, rec.Outcome.Tables)
	}
	if plain.SimCycles != rec.SimCycles {
		t.Fatalf("sim cycles differ: %d vs %d", plain.SimCycles, rec.SimCycles)
	}
}
