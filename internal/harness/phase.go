package harness

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "phase-memlat",
		Title: "P1: mid-run memory latency phase change (checkpoint fork)",
		Paper: "not in the paper — exercises checkpoint/fork: one shared warm-up prefix, per-variant divergence",
		Run:   phaseMemLat,
	})
}

// phaseMemLat runs each benchmark with the paper configuration up to
// half its baseline cycle count, then continues with the memory
// latency scaled — the DRAM-contention phase change the checkpoint
// machinery exists to sweep. All factors of one benchmark share the
// same warm-up prefix through the checkpoint cache: it is simulated
// once (the x1 run) and every other factor forks from the snapshot.
//
// The x1 row doubles as a built-in identity check: forking with
// unchanged knobs must reproduce the cold baseline exactly, so a
// mismatch there means the snapshot/restore contract broke.
func phaseMemLat(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("P1 — memory latency phase change at half-run (prefetching, %d SPUs)", ctx.Opt.SPEs),
		Headers: []string{"benchmark", "baseline", "x1", "x2", "x4", "slowdown x4"},
	}
	metrics := map[string]float64{}
	for _, bench := range benchmarks {
		// The cold baseline first: it fixes the divergence cycle and the
		// identity reference. memoRun calls never nest, so it completes
		// before the first fork below begins.
		base, err := ctx.run(bench, ctx.Opt.SPEs, true, defaultVariant())
		if err != nil {
			return nil, err
		}
		div := base.Cycles / 2
		cells := []string{ctx.benchLabel(bench), fmt.Sprintf("%d", base.Cycles)}
		var last *cell.Result
		for _, factor := range []int{1, 2, 4} {
			knobs := cell.Knobs{MemLatency: ctx.Opt.Latency * factor}
			res, err := ctx.runPhase(bench, ctx.Opt.SPEs, knobs, div)
			if err != nil {
				return nil, err
			}
			if factor == 1 && res.Cycles != base.Cycles {
				return nil, fmt.Errorf("%s: forked x1 run took %d cycles, cold baseline %d — checkpoint fork is not identity-preserving",
					bench, res.Cycles, base.Cycles)
			}
			cells = append(cells, fmt.Sprintf("%d", res.Cycles))
			metrics[fmt.Sprintf("%s_cycles_x%d", bench, factor)] = float64(res.Cycles)
			last = res
		}
		slowdown := float64(last.Cycles) / float64(base.Cycles)
		cells = append(cells, stats.Ratio(slowdown))
		metrics[bench+"_slowdown_x4"] = slowdown
		t.AddRow(cells...)
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}
