package harness

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Ablations beyond the paper: each probes one design choice called out
// in DESIGN.md.
func init() {
	register(&Experiment{
		ID:    "ablation-vfp",
		Title: "A1: virtual frame pointers (DTA-C feature absent from CellDTA)",
		Paper: "the paper attributes bitcnt's LSE stalls to blocking FALLOC and points to virtual frame pointers as the fix",
		Run:   ablationVFP,
	})
	register(&Experiment{
		ID:    "ablation-dmalat",
		Title: "A2: MFC command latency sweep",
		Paper: "Table 4 fixes 30 cycles; sensitivity shows how command processing affects prefetch benefit",
		Run:   ablationDMALat,
	})
	register(&Experiment{
		ID:    "ablation-buses",
		Title: "A3: bus count sweep",
		Paper: "Table 4 fixes 4 buses x 8 B/cycle; DMA bursts need the aggregate bandwidth",
		Run:   ablationBuses,
	})
	register(&Experiment{
		ID:    "ablation-memlat",
		Title: "A4: memory latency sweep (prefetch benefit crossover)",
		Paper: "the paper contrasts 150 cycles vs 1 cycle; the sweep locates the break-even",
		Run:   ablationMemLat,
	})
	register(&Experiment{
		ID:    "ablation-nodes",
		Title: "A5: multi-node DTA (2x4 SPEs vs 1x8)",
		Paper: "DTA clusters PEs into nodes against wire delay; CellDTA used a single node",
		Run:   ablationNodes,
	})
	register(&Experiment{
		ID:    "ablation-granularity",
		Title: "A6: DMA granularity (per-row commands vs one command per region)",
		Paper: "the paper's mechanism can 'prefetch the entire data structure or only parts of it'",
		Run:   ablationGranularity,
	})
	register(&Experiment{
		ID:    "ablation-writeback",
		Title: "A7: write-back decoupling (stage WRITEs locally, flush with PS-block DMA PUTs)",
		Paper: "the paper decouples READs only; WRITEs stay posted — this is the write-side dual",
		Run:   ablationWriteback,
	})
}

func ablationVFP(ctx *Context) (*Outcome, error) {
	// Recreate the paper's "forks a vast amount of threads in a small
	// amount of time" scenario: 8 parallel spawner chains flood the
	// scheduler with FALLOCs. Two frame budgets: the default 64
	// frames/LSE (little pressure) and a tight 16 frames/LSE, where
	// blocking FALLOC round trips pile up behind frame reuse.
	n := 10000
	if ctx.Opt.Quick {
		n = 400
	}
	w, _ := workloads.Get("bitcnt")
	prog, err := w.Build(workloads.Params{N: n, Chains: 8, Seed: ctx.Opt.Seed})
	if err != nil {
		return nil, err
	}
	prog, err = prefetch.Transform(prog)
	if err != nil {
		return nil, err
	}

	runMode := func(vfp bool, frames int) (string, string, float64) {
		cfg := cell.DefaultConfig()
		cfg.SPEs = ctx.Opt.SPEs
		cfg.Mem.Latency = ctx.Opt.Latency
		cfg.LSE.VirtualFP = vfp
		cfg.LSE.NumFrames = frames
		m, err := cell.New(cfg, prog)
		if err != nil {
			return "error", err.Error(), 0
		}
		res, err := m.Run()
		if err != nil {
			var dl *sim.ErrDeadlock
			if errors.As(err, &dl) {
				return "DEADLOCK", "-", 0
			}
			return "error", err.Error(), 0
		}
		if res.CheckErr != nil {
			return "error", res.CheckErr.Error(), 0
		}
		return fmt.Sprintf("%d", res.Cycles),
			stats.Pct(res.AvgBreakdownPct()[stats.LSEStall]),
			float64(res.Cycles)
	}

	t := &stats.Table{
		Title:   "A1 — blocking FALLOC vs virtual frame pointers (bitcnt, 8 spawner chains)",
		Headers: []string{"mode", "frames/LSE", "cycles", "LSE stalls"},
	}
	metrics := map[string]float64{}
	for _, row := range []struct {
		label  string
		vfp    bool
		frames int
		key    string
	}{
		{"blocking FALLOC", false, 64, "blocking64"},
		{"virtual frame pointers", true, 64, "vfp64"},
		{"blocking FALLOC", false, 16, "blocking16"},
		{"virtual frame pointers", true, 16, "vfp16"},
	} {
		cycles, lse, val := runMode(row.vfp, row.frames)
		t.AddRow(row.label, fmt.Sprintf("%d", row.frames), cycles, lse)
		metrics[row.key+"_cycles"] = val
	}
	return &Outcome{
		Tables: []*stats.Table{t},
		Notes: []string{
			"the paper attributes bitcnt's LSE stalls to thread-fork floods and names " +
				"virtual frame pointers (a DTA-C feature missing from CellDTA) as the fix; " +
				"under a tight frame budget blocking FALLOC loses ~40% of SPU time to " +
				"scheduler waits while VFPs eliminate them (and under even deeper fork " +
				"trees blocking FALLOC can deadlock outright — see the machine tests)",
		},
		Metrics: metrics,
	}, nil
}

func ablationDMALat(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "A2 — MFC command latency sweep (mmul, prefetching)",
		Headers: []string{"command latency", "cycles", "prefetch overhead"},
	}
	metrics := map[string]float64{}
	for _, lat := range []int{0, 15, 30, 60, 120} {
		v := defaultVariant()
		v.dmaLat = lat
		res, err := ctx.run("mmul", ctx.Opt.SPEs, true, v)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", lat),
			fmt.Sprintf("%d", res.Cycles),
			stats.Pct(res.AvgBreakdownPct()[stats.Prefetch]))
		metrics[fmt.Sprintf("cycles_lat%d", lat)] = float64(res.Cycles)
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func ablationBuses(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "A3 — bus count sweep (mmul, prefetching)",
		Headers: []string{"buses", "aggregate BW", "cycles"},
	}
	metrics := map[string]float64{}
	for _, buses := range []int{1, 2, 4, 8} {
		v := defaultVariant()
		v.buses = buses
		res, err := ctx.run("mmul", ctx.Opt.SPEs, true, v)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", buses),
			fmt.Sprintf("%d B/cy", buses*8),
			fmt.Sprintf("%d", res.Cycles))
		metrics[fmt.Sprintf("cycles_%dbuses", buses)] = float64(res.Cycles)
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func ablationMemLat(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "A4 — memory latency sweep (mmul, 8 SPUs)",
		Headers: []string{"latency", "original", "prefetching", "speedup"},
	}
	metrics := map[string]float64{}
	for _, lat := range []int{1, 25, 75, 150, 300, 600} {
		sub := NewContext(Options{SPEs: ctx.Opt.SPEs, Latency: lat, Quick: ctx.Opt.Quick, Seed: ctx.Opt.Seed})
		orig, err := sub.run("mmul", sub.Opt.SPEs, false, defaultVariant())
		if err != nil {
			return nil, err
		}
		pf, err := sub.run("mmul", sub.Opt.SPEs, true, defaultVariant())
		if err != nil {
			return nil, err
		}
		speedup := float64(orig.Cycles) / float64(pf.Cycles)
		t.AddRow(fmt.Sprintf("%d", lat),
			fmt.Sprintf("%d", orig.Cycles),
			fmt.Sprintf("%d", pf.Cycles),
			stats.Ratio(speedup))
		metrics[fmt.Sprintf("speedup_lat%d", lat)] = speedup
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func ablationNodes(ctx *Context) (*Outcome, error) {
	if ctx.Opt.SPEs%2 != 0 {
		return nil, fmt.Errorf("ablation-nodes needs an even SPE count, got %d", ctx.Opt.SPEs)
	}
	t := &stats.Table{
		Title:   "A5 — node organisation (mmul, prefetching)",
		Headers: []string{"organisation", "cycles", "DSE falloc forwards"},
	}
	metrics := map[string]float64{}
	for _, nodes := range []int{1, 2} {
		v := defaultVariant()
		v.nodes = nodes
		res, err := ctx.run("mmul", ctx.Opt.SPEs, true, v)
		if err != nil {
			return nil, err
		}
		var forwards int64
		for _, d := range res.DSEs {
			forwards += d.Forwards
		}
		t.AddRow(fmt.Sprintf("%dx%d", nodes, ctx.Opt.SPEs/nodes),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", forwards))
		metrics[fmt.Sprintf("cycles_%dnodes", nodes)] = float64(res.Cycles)
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

func ablationGranularity(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "A6 — DMA granularity (mmul, prefetching)",
		Headers: []string{"granularity", "cycles", "prefetch overhead", "DMA commands"},
	}
	perRow, err := ctx.run("mmul", ctx.Opt.SPEs, true, defaultVariant())
	if err != nil {
		return nil, err
	}
	whole, err := ctx.runUnchunked("mmul", ctx.Opt.SPEs, true)
	if err != nil {
		return nil, err
	}
	var perRowCmds, wholeCmds int64
	for _, m := range perRow.MFCs {
		perRowCmds += m.Gets + m.Puts
	}
	for _, m := range whole.MFCs {
		wholeCmds += m.Gets + m.Puts
	}
	t.AddRow("one command per row",
		fmt.Sprintf("%d", perRow.Cycles),
		stats.Pct(perRow.AvgBreakdownPct()[stats.Prefetch]),
		fmt.Sprintf("%d", perRowCmds))
	t.AddRow("one command per region",
		fmt.Sprintf("%d", whole.Cycles),
		stats.Pct(whole.AvgBreakdownPct()[stats.Prefetch]),
		fmt.Sprintf("%d", wholeCmds))
	return &Outcome{Tables: []*stats.Table{t}, Metrics: map[string]float64{
		"perrow_cycles": float64(perRow.Cycles),
		"whole_cycles":  float64(whole.Cycles),
		"perrow_cmds":   float64(perRowCmds),
		"whole_cmds":    float64(wholeCmds),
	}}, nil
}

func ablationWriteback(ctx *Context) (*Outcome, error) {
	t := &stats.Table{
		Title:   "A7 — write handling (mmul, prefetching, 8 SPUs)",
		Headers: []string{"mode", "cycles", "posted WRITEs", "DMA PUTs", "bus messages"},
	}
	metrics := map[string]float64{}
	for _, row := range []struct {
		label     string
		writeBack bool
		key       string
	}{
		{"posted WRITEs (paper)", false, "posted"},
		{"DMA write-back (A7)", true, "writeback"},
	} {
		w, _ := workloads.Get("mmul")
		prog, err := w.Build(ctx.benchParams("mmul", ctx.Opt.SPEs))
		if err != nil {
			return nil, err
		}
		prog, err = prefetch.TransformWithOptions(prog, prefetch.Options{WriteBack: row.writeBack})
		if err != nil {
			return nil, err
		}
		res, err := ctx.execute(prog, ctx.Opt.SPEs, defaultVariant())
		if err != nil {
			return nil, err
		}
		var puts int64
		for _, m := range res.MFCs {
			puts += m.Puts
		}
		t.AddRow(row.label,
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Agg.Instr.Write),
			fmt.Sprintf("%d", puts),
			fmt.Sprintf("%d", res.Net.Messages))
		metrics[row.key+"_cycles"] = float64(res.Cycles)
		metrics[row.key+"_messages"] = float64(res.Net.Messages)
		metrics[row.key+"_writes"] = float64(res.Agg.Instr.Write)
	}
	return &Outcome{Tables: []*stats.Table{t}, Metrics: metrics}, nil
}
