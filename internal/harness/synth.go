package harness

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/synth"
)

// The pinned synth corpus is registered as first-class experiments
// ("synth/0001".."synth/0032"): each runs the full differential check —
// functional oracle, simulated original, simulated prefetch-transformed
// — and reports the scenario's cycle counts and decoupling. That makes
// generated scenarios sweepable through Parallel/Serial, listable and
// selectable in cmd/experiments, and addressable through dtad run keys
// (which fold in the generator version) with zero extra plumbing.
func init() {
	for _, seed := range synth.CorpusSeeds() {
		seed := seed
		register(&Experiment{
			ID:    synth.ExperimentID(seed),
			Title: fmt.Sprintf("synth corpus seed %d: %s", seed, synth.FromSeed(seed).Summary()),
			Paper: "beyond the paper: generated scenario, oracle/original/prefetched differential",
			Run:   func(ctx *Context) (*Outcome, error) { return runSynth(ctx, seed) },
		})
	}
}

func runSynth(ctx *Context, seed uint64) (*Outcome, error) {
	sc := synth.ScenarioFor(seed, ctx.Opt.Seed)
	// The scenario owns its machine size the way Quick owns paper
	// problem sizes, but the Options SPE budget still caps it, so a
	// spes=1 sweep genuinely runs single-SPE machines. Quick is inert
	// here: generated scenarios are already quick-sized by design.
	if sc.SPEs > ctx.Opt.SPEs {
		sc.SPEs = ctx.Opt.SPEs
	}
	rep, err := synth.CheckScenario(sc, synth.CheckOptions{
		Latency: ctx.Opt.Latency,
		Pool:    ctx.pool,
		Sched:   ctx.sched,
		Slice:   ctx.slice,
	})
	if err != nil {
		return nil, err
	}
	// The differential check has no run cache, so the represented cycles
	// are exactly the two simulated runs.
	*ctx.simCycles += int64(rep.OrigCycles) + int64(rep.PFCycles)
	speedup := float64(rep.OrigCycles) / float64(rep.PFCycles)
	t := &stats.Table{
		Title:   fmt.Sprintf("synth %d — %s", seed, rep.Scenario.Summary()),
		Headers: []string{"metric", "original", "prefetching"},
	}
	t.AddRow("cycles", fmt.Sprintf("%d", rep.OrigCycles), fmt.Sprintf("%d", rep.PFCycles))
	t.AddRow("memory-stall cycles", fmt.Sprintf("%d", rep.OrigStall), fmt.Sprintf("%d", rep.PFStall))
	t.AddRow("speedup", "1.00x", stats.Ratio(speedup))
	return &Outcome{
		Tables: []*stats.Table{t},
		Notes: []string{fmt.Sprintf(
			"differential check passed: oracle, original and prefetched runs byte-identical "+
				"(%d oracle steps, %d threads, %.0f%% of static reads decoupled)",
			rep.OracleSteps, rep.Threads, 100*rep.Decoupled)},
		Metrics: map[string]float64{
			"orig_cycles": float64(rep.OrigCycles),
			"pf_cycles":   float64(rep.PFCycles),
			"speedup":     speedup,
			"decoupled":   rep.Decoupled,
			"code_len":    float64(rep.CodeLen),
		},
	}, nil
}
