package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestProfiledRunConsistentWithMetrics: profiling mmul-pf through the
// harness yields one labelled ProfiledRun whose per-cause totals agree
// exactly with the experiment's own cause_<slug>_cycles metrics.
func TestProfiledRunConsistentWithMetrics(t *testing.T) {
	exp, ok := ByID("mmul-pf")
	if !ok {
		t.Fatal("mmul-pf experiment not registered")
	}
	ctx := NewContext(quickOpt())
	ctx.EnableProfiling()
	res := RunOn(ctx, exp)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	profiled := ctx.Profiled()
	if len(profiled) != 1 {
		t.Fatalf("profiled %d runs, want 1", len(profiled))
	}
	pr := profiled[0]
	if pr.SPEs != 2 {
		t.Fatalf("profiled SPEs = %d, want 2", pr.SPEs)
	}
	if !strings.Contains(pr.Label, "mmul") {
		t.Fatalf("label = %q, want the benchmark name in it", pr.Label)
	}
	if pr.Prog == nil {
		t.Fatal("ProfiledRun carries no program (profiles would be unsymbolisable)")
	}
	causes := pr.Prof.Causes()
	for c := stats.Cause(0); c < stats.NumCauses; c++ {
		if got, want := float64(causes[c]), res.Outcome.Metrics["cause_"+c.Slug()+"_cycles"]; got != want {
			t.Fatalf("profile %s cycles = %v, metrics report %v", c.Slug(), got, want)
		}
	}
	if res.Outcome.Metrics["stall_pct"] != causes.Buckets().StallPct() {
		t.Fatalf("stall_pct metric %v != profile-derived %v",
			res.Outcome.Metrics["stall_pct"], causes.Buckets().StallPct())
	}
}

// TestProfilingDoesNotChangeOutcome is the harness-level regression
// guard: a profiled sweep reports exactly the same tables and metrics
// as a plain one, and a cache hit adds no second profile.
func TestProfilingDoesNotChangeOutcome(t *testing.T) {
	exp, ok := ByID("mmul-pf")
	if !ok {
		t.Fatal("mmul-pf experiment not registered")
	}
	plain := RunOn(NewContext(quickOpt()), exp)
	profCtx := NewContext(quickOpt())
	profCtx.EnableProfiling()
	prof := RunOn(profCtx, exp)
	if plain.Err != nil || prof.Err != nil {
		t.Fatalf("errors: plain=%v profiled=%v", plain.Err, prof.Err)
	}
	if !reflect.DeepEqual(plain.Outcome.Metrics, prof.Outcome.Metrics) {
		t.Fatalf("metrics differ:\nplain    %+v\nprofiled %+v", plain.Outcome.Metrics, prof.Outcome.Metrics)
	}
	if !reflect.DeepEqual(plain.Outcome.Tables, prof.Outcome.Tables) {
		t.Fatalf("tables differ:\nplain    %+v\nprofiled %+v", plain.Outcome.Tables, prof.Outcome.Tables)
	}
	if plain.SimCycles != prof.SimCycles {
		t.Fatalf("sim cycles differ: %d vs %d", plain.SimCycles, prof.SimCycles)
	}
	// A cache-served rerun reuses the already-profiled simulation.
	if rerun := RunOn(profCtx, exp); rerun.Err != nil {
		t.Fatalf("rerun: %v", rerun.Err)
	}
	if n := len(profCtx.Profiled()); n != 1 {
		t.Fatalf("cache hit added a profile: %d runs profiled", n)
	}
}

// TestCauseCyclesAccounting: the process-wide per-cause counters follow
// the SimCycles accounting rule — hit or miss, every request bills the
// result's totals.
func TestCauseCyclesAccounting(t *testing.T) {
	exp, ok := ByID("mmul-pf")
	if !ok {
		t.Fatal("mmul-pf experiment not registered")
	}
	before := CauseCycles[stats.CauseIssue].Load()
	ctx := NewContext(quickOpt())
	if res := RunOn(ctx, exp); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	afterMiss := CauseCycles[stats.CauseIssue].Load()
	if afterMiss <= before {
		t.Fatalf("issue-cause cycles did not grow on a computed run (%d -> %d)", before, afterMiss)
	}
	if res := RunOn(ctx, exp); res.Err != nil { // cache hit
		t.Fatalf("rerun: %v", res.Err)
	}
	if after := CauseCycles[stats.CauseIssue].Load(); after-afterMiss != afterMiss-before {
		t.Fatalf("cache hit billed %d issue cycles, computed run billed %d",
			after-afterMiss, afterMiss-before)
	}
}
