package harness

import (
	"reflect"
	"testing"
)

// TestExperimentsBurstDifferential reruns paper-figure experiments with
// the SPU burst fast path disabled (Context.SingleStep) and requires
// byte-identical outcomes: every metric and every rendered table cell.
// The burst path may only change wall-clock time, never a reported
// number.
func TestExperimentsBurstDifferential(t *testing.T) {
	ids := []string{
		"fig5a", "fig5b", "table5", "fig6", "fig7", "fig8", "fig9", "lat1",
		"ablation-dmalat", "ablation-writeback",
	}
	opt := Options{Quick: true}
	for _, id := range ids {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		fast, err := exp.Run(NewContext(opt))
		if err != nil {
			t.Fatalf("%s (burst): %v", id, err)
		}
		slowCtx := NewContext(opt)
		slowCtx.SingleStep = true
		slow, err := exp.Run(slowCtx)
		if err != nil {
			t.Fatalf("%s (single-step): %v", id, err)
		}
		if !reflect.DeepEqual(fast.Metrics, slow.Metrics) {
			t.Errorf("%s: metrics diverge\nburst:       %v\nsingle-step: %v", id, fast.Metrics, slow.Metrics)
		}
		if !reflect.DeepEqual(fast.Tables, slow.Tables) {
			t.Errorf("%s: tables diverge between burst and single-step", id)
		}
	}
}
