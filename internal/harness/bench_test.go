package harness

import (
	"runtime"
	"testing"

	"repro/internal/batch"
	"repro/internal/cell"
)

// benchmarkSweep runs the 8-experiment sweep through a runner,
// reporting how many cores the runner occupies and the simulated
// cycles the sweep represents per iteration — cmd/benchjson combines
// the three numbers into sim-cycles/sec/core, the throughput measure
// the batched runner is judged by.
func benchmarkSweep(b *testing.B, cores float64, run func(Options, []*Experiment) []RunResult) {
	exps := sweepExperiments(b)
	b.ResetTimer()
	var cycles int64
	slices0, switches0 := batch.Slices.Load(), batch.Switches.Load()
	for i := 0; i < b.N; i++ {
		for _, r := range run(quickOpts(), exps) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
			cycles += r.SimCycles
		}
	}
	// After the loop: metrics reported before b.N iterations run are
	// discarded by the testing package.
	b.ReportMetric(cores, "cores")
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
	// Fiber-scheduler overhead (0 for non-batched runners): how many
	// slices the sweep took and how many of them switched fibers.
	b.ReportMetric(float64(batch.Slices.Load()-slices0)/float64(b.N), "slices")
	b.ReportMetric(float64(batch.Switches.Load()-switches0)/float64(b.N), "switches")
}

// BenchmarkHarnessSerialSweep is the baseline: the same per-experiment
// isolation as the parallel runner, executed on one goroutine.
func BenchmarkHarnessSerialSweep(b *testing.B) {
	benchmarkSweep(b, 1, Serial)
}

// BenchmarkHarnessParallelSweep exercises the worker-pool runner at
// runtime.NumCPU() width; compare against BenchmarkHarnessSerialSweep
// for the wall-clock fan-out gain (≈ min(NumCPU, 8) on a multi-core
// machine, nothing on a single-core one).
func BenchmarkHarnessParallelSweep(b *testing.B) {
	benchmarkSweep(b, float64(runtime.NumCPU()), func(opt Options, exps []*Experiment) []RunResult {
		return Parallel(opt, exps, 0)
	})
}

// BenchmarkHarnessBatchedSweep runs the sweep on ONE worker goroutine
// interleaving 8 experiments — the single-core batched configuration.
// Against BenchmarkHarnessSerialSweep this isolates the batching gain
// itself (shared run cache plus resident working sets), with no
// multi-core fan-out mixed in.
func BenchmarkHarnessBatchedSweep(b *testing.B) {
	benchmarkSweep(b, 1, func(opt Options, exps []*Experiment) []RunResult {
		return Batched(opt, exps, 1, 8)
	})
}

// benchmarkPhaseSweep is the warm-up-heavy workload the checkpoint
// cache targets: per benchmark, one cold baseline plus six mid-run
// memory-latency variants that all share the first 3/4 of the baseline
// run as their warm-up prefix. With checkpointing the prefix is
// simulated once per benchmark and every sibling variant restores from
// the snapshot; cold=true disables the cache so the same sweep
// re-simulates every prefix — the before/after pair cmd/benchjson
// records.
//
// Both variants report identical "sim-cycles" (the cycles the sweep
// REPRESENTS, the same accounting as the other sweep benchmarks), so
// the checkpoint gain shows up purely in ns/op; "sim-cycles-saved"
// reports the execution actually skipped, and "checkpoint-hit-ratio"
// the cache's share of fork requests.
func benchmarkPhaseSweep(b *testing.B, cold bool) {
	b.ResetTimer()
	var cycles, hits, misses, saved int64
	for i := 0; i < b.N; i++ {
		h0 := CheckpointHits.Load()
		m0 := CheckpointMisses.Load()
		s0 := CheckpointCyclesSaved.Load()
		ctx := NewContext(quickOpts())
		ctx.NoCheckpoint = cold
		for _, bench := range benchmarks {
			base, err := ctx.run(bench, ctx.Opt.SPEs, true, defaultVariant())
			if err != nil {
				b.Fatalf("%s: %v", bench, err)
			}
			div := base.Cycles * 3 / 4
			for _, factor := range []int{2, 3, 4, 5, 6, 7} {
				knobs := cell.Knobs{MemLatency: ctx.Opt.Latency * factor}
				if _, err := ctx.runPhase(bench, ctx.Opt.SPEs, knobs, div); err != nil {
					b.Fatalf("%s x%d: %v", bench, factor, err)
				}
			}
		}
		cycles += *ctx.simCycles
		hits += CheckpointHits.Load() - h0
		misses += CheckpointMisses.Load() - m0
		saved += CheckpointCyclesSaved.Load() - s0
	}
	b.ReportMetric(1, "cores")
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
	ratio := 0.0
	if total := hits + misses; total > 0 {
		ratio = float64(hits) / float64(total)
	}
	b.ReportMetric(ratio, "checkpoint-hit-ratio")
	b.ReportMetric(float64(saved)/float64(b.N), "sim-cycles-saved")
}

// BenchmarkHarnessCheckpointSweep: the phase sweep with the checkpoint
// cache on — each benchmark's warm-up prefix is simulated once and the
// other five variants fork from the snapshot.
func BenchmarkHarnessCheckpointSweep(b *testing.B) {
	benchmarkPhaseSweep(b, false)
}

// BenchmarkHarnessColdPhaseSweep: the identical sweep with
// Context.NoCheckpoint set — every variant re-simulates its warm-up
// prefix. The ns/op gap to BenchmarkHarnessCheckpointSweep is the
// checkpoint machinery's end-to-end gain on a warm-up-heavy sweep.
func BenchmarkHarnessColdPhaseSweep(b *testing.B) {
	benchmarkPhaseSweep(b, true)
}
