package harness

import (
	"runtime"
	"testing"
)

// benchmarkSweep runs the 8-experiment sweep through a runner.
func benchmarkSweep(b *testing.B, run func(Options, []*Experiment) []RunResult) {
	exps := sweepExperiments(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range run(quickOpts(), exps) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
		}
	}
}

// BenchmarkHarnessSerialSweep is the baseline: the same per-experiment
// isolation as the parallel runner, executed on one goroutine.
func BenchmarkHarnessSerialSweep(b *testing.B) {
	benchmarkSweep(b, Serial)
}

// BenchmarkHarnessParallelSweep exercises the worker-pool runner at
// runtime.NumCPU() width; compare against BenchmarkHarnessSerialSweep
// for the wall-clock fan-out gain (≈ min(NumCPU, 8) on a multi-core
// machine, nothing on a single-core one).
func BenchmarkHarnessParallelSweep(b *testing.B) {
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	benchmarkSweep(b, func(opt Options, exps []*Experiment) []RunResult {
		return Parallel(opt, exps, 0)
	})
}
