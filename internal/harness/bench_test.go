package harness

import (
	"runtime"
	"testing"
)

// benchmarkSweep runs the 8-experiment sweep through a runner,
// reporting how many cores the runner occupies and the simulated
// cycles the sweep represents per iteration — cmd/benchjson combines
// the three numbers into sim-cycles/sec/core, the throughput measure
// the batched runner is judged by.
func benchmarkSweep(b *testing.B, cores float64, run func(Options, []*Experiment) []RunResult) {
	exps := sweepExperiments(b)
	b.ReportMetric(cores, "cores")
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		for _, r := range run(quickOpts(), exps) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
			cycles += r.SimCycles
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles")
}

// BenchmarkHarnessSerialSweep is the baseline: the same per-experiment
// isolation as the parallel runner, executed on one goroutine.
func BenchmarkHarnessSerialSweep(b *testing.B) {
	benchmarkSweep(b, 1, Serial)
}

// BenchmarkHarnessParallelSweep exercises the worker-pool runner at
// runtime.NumCPU() width; compare against BenchmarkHarnessSerialSweep
// for the wall-clock fan-out gain (≈ min(NumCPU, 8) on a multi-core
// machine, nothing on a single-core one).
func BenchmarkHarnessParallelSweep(b *testing.B) {
	benchmarkSweep(b, float64(runtime.NumCPU()), func(opt Options, exps []*Experiment) []RunResult {
		return Parallel(opt, exps, 0)
	})
}

// BenchmarkHarnessBatchedSweep runs the sweep on ONE worker goroutine
// interleaving 8 experiments — the single-core batched configuration.
// Against BenchmarkHarnessSerialSweep this isolates the batching gain
// itself (shared run cache plus resident working sets), with no
// multi-core fan-out mixed in.
func BenchmarkHarnessBatchedSweep(b *testing.B) {
	benchmarkSweep(b, 1, func(opt Options, exps []*Experiment) []RunResult {
		return Batched(opt, exps, 1, 8)
	})
}
