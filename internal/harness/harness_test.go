package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

// quickCtx runs the suite at reduced problem sizes.
func quickCtx() *Context {
	return NewContext(Options{SPEs: 8, Latency: 150, Quick: true, Seed: 42})
}

func runExp(t *testing.T, ctx *Context, id string) *Outcome {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	out, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return out
}

func TestAllExperimentsRegisteredInOrder(t *testing.T) {
	all := All()
	if len(all) != len(order)+synth.CorpusSize {
		t.Fatalf("registered %d experiments, want %d paper + %d synth",
			len(all), len(order), synth.CorpusSize)
	}
	for i, e := range all {
		if i < len(order) {
			if e.ID != order[i] {
				t.Fatalf("position %d: %s, want %s", i, e.ID, order[i])
			}
		} else if e.ID != synth.ExperimentID(uint64(i-len(order)+1)) {
			t.Fatalf("position %d: %s, want %s", i, e.ID, synth.ExperimentID(uint64(i-len(order)+1)))
		}
		if e.Title == "" || e.Paper == "" {
			t.Fatalf("%s missing title/paper reference", e.ID)
		}
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	ctx := quickCtx()
	for _, e := range All() {
		out, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		var buf bytes.Buffer
		out.Print(&buf)
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
	}
}

func TestFig5aShapes(t *testing.T) {
	ctx := quickCtx()
	out := runExp(t, ctx, "fig5a")
	// The paper's ordering: mmul and zoom are heavily memory bound
	// without prefetching; bitcnt much less so.
	if out.Metrics["mmul_mem_pct"] < 70 {
		t.Fatalf("mmul mem%% = %.1f, want >= 70 (paper 94%%)", out.Metrics["mmul_mem_pct"])
	}
	if out.Metrics["zoom_mem_pct"] < 60 {
		t.Fatalf("zoom mem%% = %.1f, want >= 60 (paper 92%%)", out.Metrics["zoom_mem_pct"])
	}
	if out.Metrics["bitcnt_mem_pct"] >= out.Metrics["mmul_mem_pct"] {
		t.Fatalf("bitcnt (%.1f%%) should be less memory bound than mmul (%.1f%%)",
			out.Metrics["bitcnt_mem_pct"], out.Metrics["mmul_mem_pct"])
	}
}

func TestFig5bShapes(t *testing.T) {
	ctx := quickCtx()
	out := runExp(t, ctx, "fig5b")
	// Prefetching eliminates mmul/zoom memory stalls entirely (paper:
	// "memory stalls are completely eliminated").
	if out.Metrics["mmul_mem_pct"] > 1 {
		t.Fatalf("mmul mem%% with prefetching = %.1f, want ~0", out.Metrics["mmul_mem_pct"])
	}
	if out.Metrics["zoom_mem_pct"] > 1 {
		t.Fatalf("zoom mem%% with prefetching = %.1f, want ~0", out.Metrics["zoom_mem_pct"])
	}
	// bitcnt keeps its undecoupled table lookups.
	if out.Metrics["bitcnt_mem_pct"] < 5 {
		t.Fatalf("bitcnt mem%% = %.1f, want residual stalls", out.Metrics["bitcnt_mem_pct"])
	}
	// Prefetch overhead exists for mmul (paper 28%) and is small for
	// zoom (paper: negligible).
	if out.Metrics["mmul_prefetch_pct"] <= out.Metrics["zoom_prefetch_pct"] {
		t.Fatalf("mmul overhead (%.1f%%) should exceed zoom (%.1f%%)",
			out.Metrics["mmul_prefetch_pct"], out.Metrics["zoom_prefetch_pct"])
	}
}

func TestTable5QuickCounts(t *testing.T) {
	ctx := quickCtx()
	out := runExp(t, ctx, "table5")
	// Quick sizes: mmul(16) -> 2*16^3 reads, 16^2 writes; zoom(16) ->
	// 2*(64*64) reads, 64*64 writes.
	if got := out.Metrics["mmul_read"]; got != 2*16*16*16 {
		t.Fatalf("mmul reads = %v, want %d", got, 2*16*16*16)
	}
	if got := out.Metrics["mmul_write"]; got != 16*16 {
		t.Fatalf("mmul writes = %v, want %d", got, 16*16)
	}
	if got := out.Metrics["zoom_read"]; got != 2*64*64 {
		t.Fatalf("zoom reads = %v, want %d", got, 2*64*64)
	}
	if got := out.Metrics["zoom_write"]; got != 64*64 {
		t.Fatalf("zoom writes = %v, want %d", got, 64*64)
	}
	// bitcnt: 10 reads per value.
	if got := out.Metrics["bitcnt_read"]; got != 10*400 {
		t.Fatalf("bitcnt reads = %v, want %d", got, 10*400)
	}
}

func TestScalabilityShapes(t *testing.T) {
	ctx := quickCtx()
	for _, id := range []string{"fig7", "fig8"} {
		out := runExp(t, ctx, id)
		// Prefetching wins clearly at 150-cycle latency for the
		// memory-bound kernels.
		if out.Metrics["speedup_8spu"] < 2 {
			t.Fatalf("%s speedup = %.2f, want >= 2", id, out.Metrics["speedup_8spu"])
		}
		// The original runs scale near-linearly 1->8 SPUs (paper Fig b).
		if out.Metrics["scalability_orig"] < 4 {
			t.Fatalf("%s original scalability = %.2f, want >= 4", id, out.Metrics["scalability_orig"])
		}
	}
	out := runExp(t, ctx, "fig6")
	if out.Metrics["speedup_8spu"] <= 1 {
		t.Fatalf("bitcnt speedup = %.2f, want > 1", out.Metrics["speedup_8spu"])
	}
}

func TestFig9UsageImproves(t *testing.T) {
	ctx := quickCtx()
	out := runExp(t, ctx, "fig9")
	for _, bench := range []string{"bitcnt", "mmul", "zoom"} {
		if out.Metrics[bench+"_usage_pf"] <= out.Metrics[bench+"_usage_orig"] {
			t.Fatalf("%s: usage did not improve (%.1f -> %.1f)", bench,
				out.Metrics[bench+"_usage_orig"], out.Metrics[bench+"_usage_pf"])
		}
	}
}

func TestLat1Shapes(t *testing.T) {
	ctx := quickCtx()
	out := runExp(t, ctx, "lat1")
	// With a perfect cache there is nothing to hide: speedups collapse
	// toward (or below) 1.
	for _, bench := range []string{"bitcnt", "mmul", "zoom"} {
		if s := out.Metrics[bench+"_speedup"]; s > 1.5 {
			t.Fatalf("%s speedup at latency 1 = %.2f, want <= 1.5", bench, s)
		}
	}
	// Memory waits essentially disappear even without prefetching.
	if out.Metrics["mmul_orig_mem_pct"] > 30 {
		t.Fatalf("mmul original mem%% at latency 1 = %.1f", out.Metrics["mmul_orig_mem_pct"])
	}
}

func TestAblationShapes(t *testing.T) {
	ctx := quickCtx()

	vfp := runExp(t, ctx, "ablation-vfp")
	if vfp.Metrics["blocking16_cycles"] > 0 && vfp.Metrics["vfp16_cycles"] > 0 {
		if vfp.Metrics["vfp16_cycles"] > vfp.Metrics["blocking16_cycles"]*1.05 {
			t.Fatalf("VFP slower under frame pressure: %v vs %v",
				vfp.Metrics["vfp16_cycles"], vfp.Metrics["blocking16_cycles"])
		}
	}

	memlat := runExp(t, ctx, "ablation-memlat")
	if memlat.Metrics["speedup_lat600"] <= memlat.Metrics["speedup_lat25"] {
		t.Fatal("prefetch benefit should grow with memory latency")
	}

	gran := runExp(t, ctx, "ablation-granularity")
	if gran.Metrics["perrow_cmds"] <= gran.Metrics["whole_cmds"] {
		t.Fatal("per-row fetching should issue more DMA commands")
	}

	wb := runExp(t, ctx, "ablation-writeback")
	if wb.Metrics["writeback_writes"] != 0 {
		t.Fatal("write-back left posted WRITEs")
	}
	if wb.Metrics["writeback_messages"] >= wb.Metrics["posted_messages"] {
		t.Fatal("write-back should reduce bus messages")
	}
}

func TestContextCachesRuns(t *testing.T) {
	ctx := quickCtx()
	runExp(t, ctx, "fig5a")
	before := len(ctx.cache)
	runExp(t, ctx, "fig5a") // same runs: cache hits only
	if len(ctx.cache) != before {
		t.Fatalf("cache grew on repeat: %d -> %d", before, len(ctx.cache))
	}
}

func TestDeterministicMetrics(t *testing.T) {
	a := runExp(t, quickCtx(), "fig7")
	b := runExp(t, quickCtx(), "fig7")
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Fatalf("metric %s differs across runs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	if _, ok := ByID("nonesuch"); ok {
		t.Fatal("ByID accepted unknown id")
	}
	ids := IDs()
	if len(ids) != len(order)+synth.CorpusSize {
		t.Fatalf("IDs = %v", ids)
	}
	if _, ok := ByID(synth.ExperimentID(1)); !ok {
		t.Fatal("synth corpus experiment not addressable by id")
	}
	// Paper experiments keep presentation order; synth corpus entries
	// follow in registration (seed) order.
	all := All()
	if got := all[len(order)].ID; got != synth.ExperimentID(1) {
		t.Fatalf("first experiment after the paper set = %s, want %s", got, synth.ExperimentID(1))
	}
}

func TestOutcomePrintIncludesNotes(t *testing.T) {
	out := &Outcome{Notes: []string{"hello shape"}}
	var buf bytes.Buffer
	out.Print(&buf)
	if !strings.Contains(buf.String(), "hello shape") {
		t.Fatalf("notes missing: %q", buf.String())
	}
}
