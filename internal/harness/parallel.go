package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cell"
)

// RunResult is one experiment's outcome from a sweep run.
type RunResult struct {
	Experiment *Experiment
	Outcome    *Outcome
	Err        error
	Elapsed    time.Duration
	// SimCycles is the simulated cycles this experiment represents:
	// every simulation the experiment requested counts its cycle total,
	// whether it ran or was served from the run cache, so the number is
	// a property of the workload, not of the runner. Benchmarks divide
	// it by wall time for a sim-cycles/sec throughput measure.
	SimCycles int64
}

// Parallel executes experiments concurrently on a bounded worker pool
// and returns results in input order.
//
// Each experiment gets its own Context built from opt, so no run cache,
// program cache, or machine state is shared across goroutines: every
// simulation remains single-threaded and deterministic, and only the
// cross-simulation fan-out is concurrent. The price is losing the
// cross-experiment run cache a shared serial Context provides — worth it
// whenever more than one core is available, since the big experiments
// dominate wall time and do not overlap much anyway.
//
// workers <= 0 selects runtime.NumCPU(). A panic inside an experiment is
// contained to its worker and reported as that experiment's Err.
func Parallel(opt Options, exps []*Experiment, workers int) []RunResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]RunResult, len(exps))
	if len(exps) == 0 {
		return results
	}

	// Feed experiment indices to the pool; each result lands in its
	// input slot, so the output order never depends on scheduling.
	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// One machine pool per worker: machines are recycled across
			// the experiments this goroutine runs, never across
			// goroutines, so simulations stay single-threaded.
			pool := cell.NewPool()
			for i := range idxCh {
				results[i] = RunOn(NewContextWithPool(opt, pool), exps[i])
			}
		}()
	}
	for i := range exps {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return results
}

// Serial executes experiments one by one with the same per-experiment
// isolation as Parallel (fresh Context each, one shared machine pool),
// so serial and parallel sweeps are directly comparable run for run.
func Serial(opt Options, exps []*Experiment) []RunResult {
	results := make([]RunResult, len(exps))
	pool := cell.NewPool()
	for i, e := range exps {
		results[i] = RunOn(NewContextWithPool(opt, pool), e)
	}
	return results
}

// RunOn executes one experiment on the given context, converting panics
// into errors so one bad experiment cannot take down a sweep. It is the
// shared containment primitive: the pool runners use it with isolated
// contexts, cmd/experiments uses it with its shared-cache serial
// context, and the dtad service inherits it through Serial.
func RunOn(ctx *Context, exp *Experiment) (res RunResult) {
	start := time.Now()
	base := *ctx.simCycles
	res.Experiment = exp
	defer func() {
		res.Elapsed = time.Since(start)
		res.SimCycles = *ctx.simCycles - base
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("experiment %s panicked: %v", exp.ID, r)
		}
	}()
	res.Outcome, res.Err = exp.Run(ctx)
	return res
}
