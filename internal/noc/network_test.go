package noc

import (
	"testing"

	"repro/internal/sim"
)

// sink records deliveries.
type sink struct {
	got []Message
	at  []sim.Cycle
}

func (s *sink) Deliver(now sim.Cycle, m Message) {
	s.got = append(s.got, m)
	s.at = append(s.at, now)
}

// runNet drives a network alone in an engine until quiescent.
func runNet(t *testing.T, n *Network, inject func(h *sim.Handle), until sim.Cycle) {
	t.Helper()
	e := sim.NewEngine()
	h := e.Register(n)
	n.Attach(h)
	inject(h)
	stop := &stopAt{e: e, when: until}
	e.Register(stop)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

type stopAt struct {
	e    *sim.Engine
	when sim.Cycle
}

func (s *stopAt) Name() string { return "stop" }
func (s *stopAt) Tick(now sim.Cycle) sim.Cycle {
	if now >= s.when {
		s.e.Stop()
		return sim.Never
	}
	return s.when
}

func TestSingleMessageTiming(t *testing.T) {
	n := New(Config{Buses: 1, BytesPerCyc: 8, HopLatency: 4})
	dst := &sink{}
	n.Register(9, dst)
	runNet(t, n, func(h *sim.Handle) {
		n.Send(0, Message{Src: 1, Dst: 9, Kind: KindFrameStore, A: 7})
	}, 100)
	if len(dst.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(dst.got))
	}
	// Sent at 0, arbitrated at 1, occupancy ceil(16/8)=2, hop 4 => 7.
	if dst.at[0] != 7 {
		t.Fatalf("delivered at %d, want 7", dst.at[0])
	}
	st := n.Stats()
	if st.Messages != 1 || st.Bytes != 16 || st.BusyCycles != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPayloadExtendsOccupancy(t *testing.T) {
	n := New(Config{Buses: 1, BytesPerCyc: 8, HopLatency: 0})
	dst := &sink{}
	n.Register(2, dst)
	runNet(t, n, func(h *sim.Handle) {
		n.Send(0, Message{Src: 1, Dst: 2, Kind: KindMemBlockData, Data: make([]byte, 128)})
	}, 200)
	// (16+128)/8 = 18 cycles occupancy, granted at 1 => delivered 19.
	if dst.at[0] != 19 {
		t.Fatalf("delivered at %d, want 19", dst.at[0])
	}
}

func TestBusContentionSerialises(t *testing.T) {
	n := New(Config{Buses: 1, BytesPerCyc: 8, HopLatency: 0})
	dst := &sink{}
	n.Register(2, dst)
	runNet(t, n, func(h *sim.Handle) {
		for i := 0; i < 4; i++ {
			n.Send(0, Message{Src: 1, Dst: 2, Kind: KindFrameStore, B: int64(i)})
		}
	}, 100)
	if len(dst.got) != 4 {
		t.Fatalf("delivered %d, want 4", len(dst.got))
	}
	// One bus, 2-cycle occupancy each: deliveries at 3,5,7,9.
	want := []sim.Cycle{3, 5, 7, 9}
	for i, w := range want {
		if dst.at[i] != w {
			t.Fatalf("delivery %d at %d, want %d (all=%v)", i, dst.at[i], w, dst.at)
		}
	}
}

func TestParallelBusesOverlap(t *testing.T) {
	n := New(Config{Buses: 4, BytesPerCyc: 8, HopLatency: 0})
	dst := &sink{}
	n.Register(2, dst)
	runNet(t, n, func(h *sim.Handle) {
		for i := 0; i < 4; i++ {
			n.Send(0, Message{Src: 1, Dst: 2, Kind: KindFrameStore, B: int64(i)})
		}
	}, 100)
	// Four buses: all four delivered at cycle 3.
	for i, at := range dst.at {
		if at != 3 {
			t.Fatalf("delivery %d at %d, want 3", i, at)
		}
	}
}

func TestAllMessagesDeliveredNoDuplicates(t *testing.T) {
	n := New(DefaultConfig())
	sinks := map[int]*sink{10: {}, 11: {}, 12: {}}
	for id, s := range sinks {
		n.Register(id, s)
	}
	const total = 300
	rng := sim.NewRand(99)
	runNet(t, n, func(h *sim.Handle) {
		for i := 0; i < total; i++ {
			dst := 10 + rng.Intn(3)
			n.Send(0, Message{Src: 1, Dst: dst, Kind: KindFrameStore, B: int64(i),
				Data: make([]byte, rng.Intn(120))})
		}
	}, 100000)
	seen := make(map[int64]bool)
	count := 0
	for _, s := range sinks {
		for _, m := range s.got {
			if seen[m.B] {
				t.Fatalf("message %d delivered twice", m.B)
			}
			seen[m.B] = true
			count++
		}
	}
	if count != total {
		t.Fatalf("delivered %d, want %d", count, total)
	}
}

// Bandwidth conservation: the makespan of a saturated network can never
// beat aggregate bandwidth.
func TestBandwidthBound(t *testing.T) {
	cfg := Config{Buses: 2, BytesPerCyc: 8, HopLatency: 0}
	n := New(cfg)
	dst := &sink{}
	n.Register(2, dst)
	const msgs = 64
	var bytes int64
	runNet(t, n, func(h *sim.Handle) {
		for i := 0; i < msgs; i++ {
			m := Message{Src: 1, Dst: 2, Kind: KindMemBlockData, Data: make([]byte, 112)}
			bytes += int64(m.WireSize())
			n.Send(0, m)
		}
	}, 100000)
	last := dst.at[len(dst.at)-1]
	minCycles := bytes / int64(cfg.Buses*cfg.BytesPerCyc)
	if int64(last) < minCycles {
		t.Fatalf("makespan %d beats bandwidth bound %d", last, minCycles)
	}
	// And it should be close to the bound (within the final hop+grant).
	if int64(last) > minCycles+20 {
		t.Fatalf("makespan %d far above bound %d: buses underutilised", last, minCycles)
	}
}

func TestSendToUnregisteredPanics(t *testing.T) {
	n := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Send to unregistered endpoint did not panic")
		}
	}()
	n.Send(0, Message{Src: 0, Dst: 99})
}

func TestDuplicateRegisterPanics(t *testing.T) {
	n := New(DefaultConfig())
	n.Register(1, &sink{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	n.Register(1, &sink{})
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []int64 {
		n := New(DefaultConfig())
		dst := &sink{}
		n.Register(5, dst)
		e := sim.NewEngine()
		h := e.Register(n)
		n.Attach(h)
		rng := sim.NewRand(7)
		for i := 0; i < 100; i++ {
			n.Send(0, Message{Src: rng.Intn(4), Dst: 5, Kind: KindFrameStore,
				B: int64(i), Data: make([]byte, rng.Intn(64))})
		}
		st := &stopAt{e: e, when: 10000}
		e.Register(st)
		if _, err := e.Run(0); err != nil {
			panic(err)
		}
		var order []int64
		for _, m := range dst.got {
			order = append(order, m.B)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

// TestMinDeliveryLatency pins the lower bound the SPU's local-store
// burst window leans on: no message — any size, any bus contention
// state — delivers sooner than MinDeliveryLatency cycles after its
// Send. If arbitration ever gets faster, this test fails and the bound
// (and every horizon computed from it) must be revisited.
func TestMinDeliveryLatency(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(),
		{Buses: 8, BytesPerCyc: 64, HopLatency: 0}, // fastest plausible wiring
		{Buses: 1, BytesPerCyc: 8, HopLatency: 4},
	} {
		n := New(cfg)
		dst := &sink{}
		n.Register(1, dst)
		n.Register(2, &sink{})
		var sentAt sim.Cycle = 3
		runNet(t, n, func(h *sim.Handle) {
			n.Send(sentAt, Message{Src: 2, Dst: 1, Kind: KindMemRead32})
			h.Wake(sentAt)
		}, 100)
		if len(dst.got) != 1 {
			t.Fatalf("cfg %+v: delivered %d messages, want 1", cfg, len(dst.got))
		}
		if lb := sentAt + cfg.MinDeliveryLatency(); dst.at[0] < lb {
			t.Errorf("cfg %+v: delivered at %d, bound says >= %d", cfg, dst.at[0], lb)
		}
	}
}

// Touch groups: queued/in-flight message state per endpoint group, the
// network's half of the SPU's local-store burst window.
func TestTouchGroupTracking(t *testing.T) {
	n := New(DefaultConfig())
	watched := &sink{}
	other := &sink{}
	n.Register(1, watched)
	n.Register(2, other)
	n.DeclareTouchGroup(0, 1)

	if n.QueuedTo(0) {
		t.Fatal("QueuedTo true with no traffic")
	}
	if got := n.EarliestDeliveryTo(0); got != sim.Never {
		t.Fatalf("EarliestDeliveryTo with no traffic = %d, want Never", got)
	}

	e := sim.NewEngine()
	h := e.Register(n)
	n.Attach(h)
	n.Send(0, Message{Src: 2, Dst: 1, Kind: KindMemRead32})
	n.Send(0, Message{Src: 1, Dst: 2, Kind: KindMemRead32})
	if !n.QueuedTo(0) {
		t.Fatal("QueuedTo false after Send to watched endpoint")
	}

	// Drive one tick past injection: the watched message moves from the
	// queue to an in-flight delivery with an exact cycle.
	e.Register(&stopAt{e: e, when: 1})
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.QueuedTo(0) && n.EarliestDeliveryTo(0) == sim.Never {
		t.Fatal("message to watched endpoint in neither queue nor flight")
	}
	if d := n.EarliestDeliveryTo(0); d != sim.Never {
		if lb := n.DeliveryLagLB() + 1; d < lb {
			t.Fatalf("in-flight delivery at %d beats grant-lag bound %d", d, lb)
		}
	}

	// Unwatched endpoints never show up.
	if n.QueuedTo(5) {
		t.Fatal("QueuedTo(undeclared group) = true")
	}

	// Reset clears the queued counts.
	n.Reset()
	if n.QueuedTo(0) || n.EarliestDeliveryTo(0) != sim.Never {
		t.Fatal("touch state survived Reset")
	}
}
