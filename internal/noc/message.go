// Package noc models the on-chip interconnect of the CellDTA machine:
// an EIB-like set of parallel buses (paper Table 4: 4 buses, 8 bytes per
// cycle each, 32 bytes per cycle aggregate) carrying both the DTA
// scheduler protocol (FALLOC/FFREE/remote stores) and all memory traffic
// (blocking READ/WRITE accesses and DMA block transfers).
package noc

import "fmt"

// Kind is the protocol message type. The interconnect itself treats
// messages as opaque; kinds are defined centrally here so endpoints agree
// on the protocol header.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Scalar main-memory access (blocking READ / posted WRITE).
	KindMemRead32  // A=addr, B=reqID; reply KindMemReadResp
	KindMemRead64  // A=addr, B=reqID
	KindMemWrite32 // A=addr, B=value (posted, no reply)
	KindMemWrite64 // A=addr, B=value
	KindMemReadResp

	// DMA block transfer (MFC <-> memory).
	KindMemBlockRead  // A=addr, B=bytes, C=cmdID: memory streams BlockData
	KindMemBlockData  // A=addr, C=cmdID, D=offset, Data=payload
	KindMemBlockWrite // A=addr, C=cmdID, D=offset, Data=payload (last: B=1)
	KindMemBlockAck   // C=cmdID: all packets of a PUT are in memory

	// DTA scheduler protocol.
	KindFallocReq   // SPU/PPE -> DSE. A=template, B=sc, C=reqID, D=origin SPE (or PPE id)
	KindFallocFwd   // DSE -> chosen LSE. same fields
	KindFallocResp  // LSE -> origin. A=FP handle, C=reqID
	KindFrameStore  // producer -> consumer LSE. A=FP, B=value, C=slot
	KindFrameFreed  // LSE -> DSE: a frame was released
	KindMailboxPost // any -> PPE. B=value, C=slot
	KindVFPRelease  // frame owner -> VFP owner: binding A can be dropped
)

var kindNames = map[Kind]string{
	KindMemRead32:   "mem-read32",
	KindMemRead64:   "mem-read64",
	KindMemWrite32:  "mem-write32",
	KindMemWrite64:  "mem-write64",
	KindMemReadResp: "mem-read-resp",

	KindMemBlockRead:  "mem-block-read",
	KindMemBlockData:  "mem-block-data",
	KindMemBlockWrite: "mem-block-write",
	KindMemBlockAck:   "mem-block-ack",

	KindFallocReq:   "falloc-req",
	KindFallocFwd:   "falloc-fwd",
	KindFallocResp:  "falloc-resp",
	KindFrameStore:  "frame-store",
	KindFrameFreed:  "frame-freed",
	KindMailboxPost: "mailbox-post",
	KindVFPRelease:  "vfp-release",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// HeaderBytes is the wire overhead of every message (routing + kind +
// request matching).
const HeaderBytes = 16

// Message is one interconnect transaction. A, B, C, D are protocol
// fields whose meaning depends on Kind; Data carries DMA payloads. Pad
// adds payload bytes to the wire accounting without materialising them
// — scalar read responses model their data payload this way instead of
// allocating a buffer nobody reads.
type Message struct {
	Src, Dst int
	Kind     Kind
	Pad      int32
	A, B     int64
	C, D     int64
	Data     []byte
}

// WireSize returns the number of bytes the message occupies on a bus.
func (m Message) WireSize() int {
	return HeaderBytes + len(m.Data) + int(m.Pad)
}

func (m Message) String() string {
	return fmt.Sprintf("%s %d->%d A=%#x B=%d C=%d D=%d len=%d",
		m.Kind, m.Src, m.Dst, m.A, m.B, m.C, m.D, len(m.Data))
}
