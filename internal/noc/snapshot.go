package noc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snap"
)

// snapshotMessage serialises every message field, including a payload
// copy: an in-flight DMA packet's buffer belongs to the machine state.
func snapshotMessage(w *snap.Writer, m Message) {
	w.Int(m.Src)
	w.Int(m.Dst)
	w.U8(uint8(m.Kind))
	w.I64(int64(m.Pad))
	w.I64(m.A)
	w.I64(m.B)
	w.I64(m.C)
	w.I64(m.D)
	w.WriteBytes(m.Data)
}

func restoreMessage(r *snap.Reader) Message {
	var m Message
	m.Src = r.Int()
	m.Dst = r.Int()
	m.Kind = Kind(r.U8())
	m.Pad = int32(r.I64())
	m.A = r.I64()
	m.B = r.I64()
	m.C = r.I64()
	m.D = r.I64()
	m.Data = r.ReadBytes()
	return m
}

// SnapshotMessage/RestoreMessage expose the wire-message codec to the
// components whose queues hold Messages (mem, mfc, dta).
func SnapshotMessage(w *snap.Writer, m Message) { snapshotMessage(w, m) }
func RestoreMessage(r *snap.Reader) Message     { return restoreMessage(r) }

// Snapshot serialises the interconnect's mutable state: the arbitration
// queue, bus bookings, in-flight deliveries and statistics. Endpoint
// registrations, touch-group declarations and the packet-buffer pool
// are construction-time wiring and perf caches, not state. The
// per-group queued/in-flight counters are recomputed on restore.
func (n *Network) Snapshot(w *snap.Writer) {
	w.Int(len(n.queue) - n.qHead)
	for i := n.qHead; i < len(n.queue); i++ {
		p := &n.queue[i]
		snapshotMessage(w, p.msg)
		w.I64(int64(p.arrival))
		w.I64(p.seq)
	}
	w.Int(len(n.busFree))
	for _, f := range n.busFree {
		w.I64(int64(f))
	}
	// Live deliveries in heap-pop order would mutate the heap; the slab
	// layout is arbitrary, so emit refs in slice order — restore re-pushes
	// them and the (at, seq) total order makes pop order layout-invariant.
	w.Int(len(n.dels))
	for _, d := range n.dels {
		w.I64(int64(d.at))
		w.I64(d.seq)
		snapshotMessage(w, n.delSlab[d.slot])
	}
	w.I64(n.seq)
	w.I64(n.stats.Messages)
	w.I64(n.stats.Bytes)
	w.I64(n.stats.BusyCycles)
	w.Int(n.stats.MaxQueue)
}

// Restore rewinds the network to a snapshot. The network must have the
// same configuration (bus count) and endpoint/touch-group wiring as the
// one that produced the snapshot.
func (n *Network) Restore(r *snap.Reader) error {
	n.Reset()
	nq := r.Int()
	for i := 0; i < nq; i++ {
		msg := restoreMessage(r)
		arrival := sim.Cycle(r.I64())
		seq := r.I64()
		if r.Err() != nil {
			return r.Err()
		}
		if g := n.groupOf(msg.Dst); g >= 0 {
			n.queuedTo[g]++
		}
		n.queue = append(n.queue, pending{msg: msg, arrival: arrival, seq: seq})
	}
	nb := r.Int()
	if r.Err() == nil && nb != len(n.busFree) {
		return fmt.Errorf("noc: snapshot has %d buses, network has %d", nb, len(n.busFree))
	}
	for i := 0; i < nb; i++ {
		n.busFree[i] = sim.Cycle(r.I64())
	}
	nd := r.Int()
	for i := 0; i < nd; i++ {
		at := sim.Cycle(r.I64())
		seq := r.I64()
		msg := restoreMessage(r)
		if r.Err() != nil {
			return r.Err()
		}
		g := n.groupOf(msg.Dst)
		if g >= 0 {
			n.flightTo[g]++
		}
		n.delSlab = append(n.delSlab, msg)
		slot := int32(len(n.delSlab) - 1)
		sim.HeapPush(&n.dels, delRef{at: at, seq: seq, slot: slot, grp: g})
	}
	n.seq = r.I64()
	n.stats.Messages = r.I64()
	n.stats.Bytes = r.I64()
	n.stats.BusyCycles = r.I64()
	n.stats.MaxQueue = r.Int()
	return r.Err()
}
