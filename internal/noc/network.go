package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Endpoint receives delivered messages. Deliver runs during the
// network's tick; implementations should enqueue the message and wake
// themselves rather than doing heavy work inline.
type Endpoint interface {
	Deliver(now sim.Cycle, m Message)
}

// Config holds interconnect parameters (paper Table 4).
type Config struct {
	Buses       int // number of parallel buses (4)
	BytesPerCyc int // per-bus bandwidth (8 B/cycle)
	HopLatency  int // fixed transit latency added to every transfer
}

// DefaultConfig returns the paper's communication-subsystem parameters.
func DefaultConfig() Config {
	return Config{Buses: 4, BytesPerCyc: 8, HopLatency: 4}
}

// Stats aggregates interconnect activity.
type Stats struct {
	Messages   int64 // total messages delivered
	Bytes      int64 // total wire bytes transferred
	BusyCycles int64 // sum of bus occupancy over all buses
	MaxQueue   int   // high-water mark of the arbitration queue
}

type pending struct {
	msg     Message
	arrival sim.Cycle // when the sender handed the message over
	seq     int64     // tiebreak for deterministic FIFO ordering
}

type delivery struct {
	msg Message
	at  sim.Cycle
	seq int64
}

// Before orders deliveries by (completion cycle, send order) for the
// typed min-heap.
func (d delivery) Before(o delivery) bool {
	if d.at != o.at {
		return d.at < o.at
	}
	return d.seq < o.seq
}

// Network is the interconnect component. Senders call Send; the network
// arbitrates the queued messages onto buses in FIFO order and calls the
// destination Endpoint when the transfer completes.
type Network struct {
	cfg    Config
	handle *sim.Handle
	// eps is a dense slice indexed by endpoint id: the machine allocates
	// small consecutive ids, and endpoint lookup is on the per-message
	// hot path.
	eps []Endpoint
	// queue is a FIFO with an explicit head cursor: arbitration consumes
	// from qHead instead of rebuilding the slice every tick. Arrivals
	// are non-decreasing and granting never frees a bus, so the first
	// blocked message blocks every later one and head-order consumption
	// is exactly the old full-scan behaviour.
	queue   []pending
	qHead   int
	busFree []sim.Cycle
	dels    []delivery
	seq     int64
	stats   Stats

	// bufs is the machine's packet-buffer free list: DMA data packets
	// (memory block reads, MFC PUT streams) borrow buffers here instead
	// of allocating one per packet, and the consumer returns them once
	// the payload is copied out. The network owns the pool because both
	// producers (memory, every MFC) already hold a *Network, and a
	// machine is single-threaded, so a plain LIFO needs no locking.
	bufs [][]byte
}

// minBufCap is the minimum capacity of a pooled packet buffer. DMA
// tail packets are smaller than the packetisation size; allocating
// them with at least this capacity keeps every pooled buffer usable
// for every default-config packet (PacketBytes 128), so the pool never
// churns on size mismatches.
const minBufCap = 256

// GetBuf returns a packet buffer of length size from the pool
// (allocating when the pool is empty or its top buffer is too small —
// the pool is never drained hunting for a fit).
func (n *Network) GetBuf(size int) []byte {
	if k := len(n.bufs); k > 0 {
		if b := n.bufs[k-1]; cap(b) >= size {
			n.bufs = n.bufs[:k-1]
			return b[:size]
		}
	}
	c := size
	if c < minBufCap {
		c = minBufCap
	}
	return make([]byte, size, c)
}

// PutBuf returns a packet buffer to the pool. Callers must not retain
// the slice afterwards.
func (n *Network) PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	n.bufs = append(n.bufs, b)
}

// New creates a network with the given configuration; Attach must be
// called with the engine handle before use.
func New(cfg Config) *Network {
	if cfg.Buses <= 0 || cfg.BytesPerCyc <= 0 {
		panic("noc: non-positive bus configuration")
	}
	return &Network{
		cfg:     cfg,
		busFree: make([]sim.Cycle, cfg.Buses),
	}
}

// Name implements sim.Component.
func (n *Network) Name() string { return "noc" }

// Attach stores the engine wake handle.
func (n *Network) Attach(h *sim.Handle) { n.handle = h }

// Register binds an endpoint id to a receiver.
func (n *Network) Register(id int, ep Endpoint) {
	if id < 0 {
		panic(fmt.Sprintf("noc: negative endpoint %d", id))
	}
	if ep == nil {
		panic(fmt.Sprintf("noc: nil endpoint %d", id))
	}
	for id >= len(n.eps) {
		n.eps = append(n.eps, nil)
	}
	if n.eps[id] != nil {
		panic(fmt.Sprintf("noc: duplicate endpoint %d", id))
	}
	n.eps[id] = ep
}

// endpoint resolves an id, or nil when unregistered.
func (n *Network) endpoint(id int) Endpoint {
	if id < 0 || id >= len(n.eps) {
		return nil
	}
	return n.eps[id]
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// Reset clears all in-flight traffic, bus bookings and statistics for
// machine reuse. Endpoint registrations and the packet-buffer pool are
// kept.
func (n *Network) Reset() {
	for i := n.qHead; i < len(n.queue); i++ {
		n.queue[i] = pending{}
	}
	n.queue = n.queue[:0]
	n.qHead = 0
	for i := range n.dels {
		n.dels[i] = delivery{} // release payload references
	}
	n.dels = n.dels[:0]
	for i := range n.busFree {
		n.busFree[i] = 0
	}
	n.seq = 0
	n.stats = Stats{}
}

// Send queues a message for transfer. The message starts arbitration on
// the next cycle (a sender cannot inject and transfer in the same cycle).
func (n *Network) Send(now sim.Cycle, m Message) {
	if n.endpoint(m.Dst) == nil {
		panic(fmt.Sprintf("noc: send to unregistered endpoint: %s", m))
	}
	n.seq++
	n.queue = append(n.queue, pending{msg: m, arrival: now, seq: n.seq})
	if q := len(n.queue) - n.qHead; q > n.stats.MaxQueue {
		n.stats.MaxQueue = q
	}
	if n.handle != nil {
		n.handle.Wake(now + 1)
	}
}

// Tick arbitrates queued messages onto buses and completes deliveries.
func (n *Network) Tick(now sim.Cycle) sim.Cycle {
	// Grant buses to queued messages in FIFO order. A message may start
	// once it has been queued for at least one cycle and some bus is
	// free. Arrivals are non-decreasing and a grant never frees a bus,
	// so the first message that cannot start blocks the rest: consume
	// from the head and stop at the first blocked entry.
	for n.qHead < len(n.queue) {
		p := &n.queue[n.qHead]
		if p.arrival >= now {
			break
		}
		// Earliest-free bus; deterministic tiebreak by index.
		best := -1
		for i := range n.busFree {
			if n.busFree[i] <= now && (best == -1 || n.busFree[i] < n.busFree[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		occ := sim.Cycle((p.msg.WireSize() + n.cfg.BytesPerCyc - 1) / n.cfg.BytesPerCyc)
		if occ < 1 {
			occ = 1
		}
		n.busFree[best] = now + occ
		n.stats.BusyCycles += int64(occ)
		n.stats.Bytes += int64(p.msg.WireSize())
		n.seq++
		sim.HeapPush(&n.dels, delivery{msg: p.msg, at: now + occ + sim.Cycle(n.cfg.HopLatency), seq: p.seq})
		n.queue[n.qHead] = pending{} // release Data for the GC
		n.qHead++
	}
	if n.qHead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qHead = 0
	} else if n.qHead > 256 && n.qHead*2 >= len(n.queue) {
		// Compact once the dead prefix dominates so the slice does not
		// grow without bound on a persistently backlogged network.
		kept := copy(n.queue, n.queue[n.qHead:])
		n.queue = n.queue[:kept]
		n.qHead = 0
	}

	// Complete due deliveries.
	for len(n.dels) > 0 && n.dels[0].at <= now {
		d := sim.HeapPop(&n.dels)
		n.stats.Messages++
		n.eps[d.msg.Dst].Deliver(now, d.msg)
	}

	return n.nextEvent(now)
}

func (n *Network) nextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	if n.qHead < len(n.queue) {
		// Either waiting for a bus or for the injection delay.
		earliest := now + 1
		busAt := sim.Never
		for _, f := range n.busFree {
			if f < busAt {
				busAt = f
			}
		}
		if busAt > earliest {
			earliest = busAt
		}
		if earliest < next {
			next = earliest
		}
	}
	if len(n.dels) > 0 && n.dels[0].at < next {
		next = n.dels[0].at
	}
	return next
}

// DumpState implements sim.StateDumper.
func (n *Network) DumpState() string {
	return fmt.Sprintf("queued=%d in-flight=%d", len(n.queue)-n.qHead, len(n.dels))
}
