package noc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Endpoint receives delivered messages. Deliver runs during the
// network's tick; implementations should enqueue the message and wake
// themselves rather than doing heavy work inline.
type Endpoint interface {
	Deliver(now sim.Cycle, m Message)
}

// Config holds interconnect parameters (paper Table 4).
type Config struct {
	Buses       int // number of parallel buses (4)
	BytesPerCyc int // per-bus bandwidth (8 B/cycle)
	HopLatency  int // fixed transit latency added to every transfer
}

// DefaultConfig returns the paper's communication-subsystem parameters.
func DefaultConfig() Config {
	return Config{Buses: 4, BytesPerCyc: 8, HopLatency: 4}
}

// minOccupancy returns the fewest bus cycles any message can occupy:
// even an empty payload carries the HeaderBytes wire header.
func (c Config) minOccupancy() sim.Cycle {
	occ := sim.Cycle((HeaderBytes + c.BytesPerCyc - 1) / c.BytesPerCyc)
	if occ < 1 {
		occ = 1
	}
	return occ
}

// MinDeliveryLatency returns a lower bound on the cycles between a Send
// at cycle c and that message's delivery: arbitration starts the cycle
// after injection (Tick skips messages with arrival >= now), the bus
// transfer occupies at least minOccupancy cycles (every message carries
// the HeaderBytes header), and HopLatency is added on top. The SPU's
// local-store burst window leans on this bound: an effect another
// component originates at or after the component-agnostic quiescence
// horizon cannot reach a local-store-writing endpoint any sooner. A
// change to the arbitration rules or wire format that lets a message
// deliver faster must update this bound (TestMinDeliveryLatency pins
// it).
func (c Config) MinDeliveryLatency() sim.Cycle {
	return 1 + c.minOccupancy() + sim.Cycle(c.HopLatency)
}

// Stats aggregates interconnect activity.
type Stats struct {
	Messages   int64 // total messages delivered
	Bytes      int64 // total wire bytes transferred
	BusyCycles int64 // sum of bus occupancy over all buses
	MaxQueue   int   // high-water mark of the arbitration queue
}

type pending struct {
	msg     Message
	arrival sim.Cycle // when the sender handed the message over
	seq     int64     // tiebreak for deterministic FIFO ordering
}

// delRef is one in-flight transfer in the delivery heap. The payload
// Message lives in a slab (delSlab) so heap sifts move 24-byte refs
// instead of ~100-byte messages, and the touch-group scan
// (EarliestDeliveryTo) reads only this compact array.
type delRef struct {
	at   sim.Cycle
	seq  int64
	slot int32
	grp  int16 // touch group of the destination (-1 unwatched)
}

// Before orders deliveries by (completion cycle, send order) for the
// typed min-heap.
func (d delRef) Before(o delRef) bool {
	if d.at != o.at {
		return d.at < o.at
	}
	return d.seq < o.seq
}

// Network is the interconnect component. Senders call Send; the network
// arbitrates the queued messages onto buses in FIFO order and calls the
// destination Endpoint when the transfer completes.
type Network struct {
	cfg    Config
	handle *sim.Handle
	// eps is a dense slice indexed by endpoint id: the machine allocates
	// small consecutive ids, and endpoint lookup is on the per-message
	// hot path.
	eps []Endpoint
	// queue is a FIFO with an explicit head cursor: arbitration consumes
	// from qHead instead of rebuilding the slice every tick. Arrivals
	// are non-decreasing and granting never frees a bus, so the first
	// blocked message blocks every later one and head-order consumption
	// is exactly the old full-scan behaviour.
	queue   []pending
	qHead   int
	busFree []sim.Cycle
	dels    []delRef
	delSlab []Message
	delFree []int32
	seq     int64
	stats   Stats

	// bufs is the machine's packet-buffer free list: DMA data packets
	// (memory block reads, MFC PUT streams) borrow buffers here instead
	// of allocating one per packet, and the consumer returns them once
	// the payload is copied out. The network owns the pool because both
	// producers (memory, every MFC) already hold a *Network, and a
	// machine is single-threaded, so a plain LIFO needs no locking.
	bufs [][]byte

	// Touch groups (DeclareTouchGroup): epGroup maps an endpoint id to
	// its group (-1 when unwatched); queuedTo counts the messages
	// addressed to each group that still await arbitration and
	// flightTo the ones on a bus awaiting delivery. The SPU's
	// local-store burst window uses them to ask when the network could
	// next deliver into one SPE's local store, without being clamped by
	// traffic for every other endpoint; flightTo lets the in-flight
	// scan short-circuit in the common no-traffic case.
	epGroup  []int16
	queuedTo []int32
	flightTo []int32

	// Rec, when non-nil, receives one message-transit span per granted
	// message (arrival at the queue -> delivery at the destination).
	Rec *trace.Recorder
}

// minBufCap is the minimum capacity of a pooled packet buffer. DMA
// tail packets are smaller than the packetisation size; allocating
// them with at least this capacity keeps every pooled buffer usable
// for every default-config packet (PacketBytes 128), so the pool never
// churns on size mismatches.
const minBufCap = 256

// GetBuf returns a packet buffer of length size from the pool
// (allocating when the pool is empty or its top buffer is too small —
// the pool is never drained hunting for a fit).
func (n *Network) GetBuf(size int) []byte {
	if k := len(n.bufs); k > 0 {
		if b := n.bufs[k-1]; cap(b) >= size {
			n.bufs = n.bufs[:k-1]
			return b[:size]
		}
	}
	c := size
	if c < minBufCap {
		c = minBufCap
	}
	return make([]byte, size, c)
}

// PutBuf returns a packet buffer to the pool. Callers must not retain
// the slice afterwards.
func (n *Network) PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	n.bufs = append(n.bufs, b)
}

// New creates a network with the given configuration; Attach must be
// called with the engine handle before use.
func New(cfg Config) *Network {
	if cfg.Buses <= 0 || cfg.BytesPerCyc <= 0 {
		panic("noc: non-positive bus configuration")
	}
	return &Network{
		cfg:     cfg,
		busFree: make([]sim.Cycle, cfg.Buses),
	}
}

// Name implements sim.Component.
func (n *Network) Name() string { return "noc" }

// Attach stores the engine wake handle.
func (n *Network) Attach(h *sim.Handle) { n.handle = h }

// Register binds an endpoint id to a receiver.
func (n *Network) Register(id int, ep Endpoint) {
	if id < 0 {
		panic(fmt.Sprintf("noc: negative endpoint %d", id))
	}
	if ep == nil {
		panic(fmt.Sprintf("noc: nil endpoint %d", id))
	}
	for id >= len(n.eps) {
		n.eps = append(n.eps, nil)
	}
	if n.eps[id] != nil {
		panic(fmt.Sprintf("noc: duplicate endpoint %d", id))
	}
	n.eps[id] = ep
}

// endpoint resolves an id, or nil when unregistered.
func (n *Network) endpoint(id int) Endpoint {
	if id < 0 || id >= len(n.eps) {
		return nil
	}
	return n.eps[id]
}

// DeclareTouchGroup associates endpoints with a small group id so the
// per-group message state (QueuedTo, EarliestDeliveryTo) is tracked.
// The CellDTA machine declares one group per SPE, holding the SPE's
// MFC and LSE endpoints — the only endpoints whose deliveries can
// mutate that SPE's local store. An endpoint belongs to at most one
// group, declared once at machine construction: moving an endpoint
// whose messages are already queued or in flight would corrupt the
// per-group counters (and with them the SPU burst window), so
// re-declaring an endpoint into a different group panics.
func (n *Network) DeclareTouchGroup(group int, eps ...int) {
	if group < 0 {
		panic(fmt.Sprintf("noc: negative touch group %d", group))
	}
	for group >= len(n.queuedTo) {
		n.queuedTo = append(n.queuedTo, 0)
		n.flightTo = append(n.flightTo, 0)
	}
	for _, ep := range eps {
		if ep < 0 {
			panic(fmt.Sprintf("noc: negative endpoint %d in touch group", ep))
		}
		for ep >= len(n.epGroup) {
			n.epGroup = append(n.epGroup, -1)
		}
		if g := n.epGroup[ep]; g >= 0 && g != int16(group) {
			panic(fmt.Sprintf("noc: endpoint %d already in touch group %d", ep, g))
		}
		n.epGroup[ep] = int16(group)
	}
}

// groupOf returns the touch group of a destination (-1 when unwatched).
func (n *Network) groupOf(dst int) int16 {
	if dst < 0 || dst >= len(n.epGroup) {
		return -1
	}
	return n.epGroup[dst]
}

// QueuedTo reports whether any message addressed to the group is still
// waiting for arbitration. While true, a delivery to the group can
// follow as soon as DeliveryLagLB cycles after the network's next tick
// (the earliest a grant can happen).
func (n *Network) QueuedTo(group int) bool {
	return group >= 0 && group < len(n.queuedTo) && n.queuedTo[group] > 0
}

// EarliestDeliveryTo returns the earliest in-flight delivery cycle to
// any endpoint of the group, or sim.Never when nothing addressed to
// the group is on a bus. In-flight transfers deliver exactly at their
// recorded cycle, so the result is exact, not a bound. The per-group
// in-flight count makes the common no-traffic case O(1).
func (n *Network) EarliestDeliveryTo(group int) sim.Cycle {
	if group < 0 || group >= len(n.flightTo) || n.flightTo[group] == 0 {
		return sim.Never
	}
	min := sim.Never
	for i := range n.dels {
		if d := &n.dels[i]; d.grp == int16(group) && d.at < min {
			min = d.at
		}
	}
	return min
}

// DeliveryLagLB returns a lower bound on the cycles between a bus
// grant (which happens during a network tick) and the corresponding
// delivery: the minimum bus occupancy plus the hop latency.
func (n *Network) DeliveryLagLB() sim.Cycle {
	return n.cfg.minOccupancy() + sim.Cycle(n.cfg.HopLatency)
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// Reset clears all in-flight traffic, bus bookings and statistics for
// machine reuse. Endpoint registrations and the packet-buffer pool are
// kept.
func (n *Network) Reset() {
	for i := n.qHead; i < len(n.queue); i++ {
		n.queue[i] = pending{}
	}
	n.queue = n.queue[:0]
	n.qHead = 0
	n.dels = n.dels[:0]
	for i := range n.delSlab {
		n.delSlab[i] = Message{} // release payload references
	}
	n.delSlab = n.delSlab[:0]
	n.delFree = n.delFree[:0]
	for i := range n.busFree {
		n.busFree[i] = 0
	}
	for i := range n.queuedTo {
		n.queuedTo[i] = 0
	}
	for i := range n.flightTo {
		n.flightTo[i] = 0
	}
	n.seq = 0
	n.stats = Stats{}
}

// Send queues a message for transfer. The message starts arbitration on
// the next cycle (a sender cannot inject and transfer in the same cycle).
func (n *Network) Send(now sim.Cycle, m Message) {
	if n.endpoint(m.Dst) == nil {
		panic(fmt.Sprintf("noc: send to unregistered endpoint: %s", m))
	}
	n.seq++
	if g := n.groupOf(m.Dst); g >= 0 {
		n.queuedTo[g]++
	}
	n.queue = append(n.queue, pending{msg: m, arrival: now, seq: n.seq})
	if q := len(n.queue) - n.qHead; q > n.stats.MaxQueue {
		n.stats.MaxQueue = q
	}
	if n.handle != nil {
		n.handle.Wake(now + 1)
	}
}

// Tick arbitrates queued messages onto buses and completes deliveries.
func (n *Network) Tick(now sim.Cycle) sim.Cycle {
	// Grant buses to queued messages in FIFO order. A message may start
	// once it has been queued for at least one cycle and some bus is
	// free. Arrivals are non-decreasing and a grant never frees a bus,
	// so the first message that cannot start blocks the rest: consume
	// from the head and stop at the first blocked entry.
	for n.qHead < len(n.queue) {
		p := &n.queue[n.qHead]
		if p.arrival >= now {
			break
		}
		// Earliest-free bus; deterministic tiebreak by index.
		best := -1
		for i := range n.busFree {
			if n.busFree[i] <= now && (best == -1 || n.busFree[i] < n.busFree[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		occ := sim.Cycle((p.msg.WireSize() + n.cfg.BytesPerCyc - 1) / n.cfg.BytesPerCyc)
		if occ < 1 {
			occ = 1
		}
		if n.Rec != nil {
			n.Rec.NoC(p.msg.Src, p.msg.Dst, uint8(p.msg.Kind), p.msg.WireSize(),
				p.arrival, now+occ+sim.Cycle(n.cfg.HopLatency))
		}
		n.busFree[best] = now + occ
		n.stats.BusyCycles += int64(occ)
		n.stats.Bytes += int64(p.msg.WireSize())
		n.seq++
		g := n.groupOf(p.msg.Dst)
		if g >= 0 {
			n.queuedTo[g]-- // granted: now visible to EarliestDeliveryTo
			n.flightTo[g]++
		}
		var slot int32
		if k := len(n.delFree); k > 0 {
			slot = n.delFree[k-1]
			n.delFree = n.delFree[:k-1]
		} else {
			n.delSlab = append(n.delSlab, Message{})
			slot = int32(len(n.delSlab) - 1)
		}
		n.delSlab[slot] = p.msg
		sim.HeapPush(&n.dels, delRef{at: now + occ + sim.Cycle(n.cfg.HopLatency), seq: p.seq, slot: slot, grp: g})
		n.queue[n.qHead] = pending{} // release Data for the GC
		n.qHead++
	}
	if n.qHead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qHead = 0
	} else if n.qHead > 256 && n.qHead*2 >= len(n.queue) {
		// Compact once the dead prefix dominates so the slice does not
		// grow without bound on a persistently backlogged network.
		kept := copy(n.queue, n.queue[n.qHead:])
		n.queue = n.queue[:kept]
		n.qHead = 0
	}

	// Complete due deliveries.
	for len(n.dels) > 0 && n.dels[0].at <= now {
		d := sim.HeapPop(&n.dels)
		if d.grp >= 0 {
			n.flightTo[d.grp]--
		}
		msg := n.delSlab[d.slot]
		n.delSlab[d.slot] = Message{} // release Data for the GC
		n.delFree = append(n.delFree, d.slot)
		n.stats.Messages++
		n.eps[msg.Dst].Deliver(now, msg)
	}

	return n.nextEvent(now)
}

func (n *Network) nextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	if n.qHead < len(n.queue) {
		// Either waiting for a bus or for the injection delay.
		earliest := now + 1
		busAt := sim.Never
		for _, f := range n.busFree {
			if f < busAt {
				busAt = f
			}
		}
		if busAt > earliest {
			earliest = busAt
		}
		if earliest < next {
			next = earliest
		}
	}
	if len(n.dels) > 0 && n.dels[0].at < next {
		next = n.dels[0].at
	}
	return next
}

// DumpState implements sim.StateDumper.
func (n *Network) DumpState() string {
	return fmt.Sprintf("queued=%d in-flight=%d", len(n.queue)-n.qHead, len(n.dels))
}
