package sim

import "testing"

// mixed exercises the bucket fast path, the heap (distinct strides) and
// self-wakes, covering every steady-state scheduling structure.
type mixed struct {
	stride Cycle
	until  Cycle
	e      *Engine
	h      *Handle
}

func (m *mixed) Name() string { return "mixed" }
func (m *mixed) Tick(now Cycle) Cycle {
	if now >= m.until {
		m.e.Stop()
		return Never
	}
	if m.stride == 0 {
		// Sleep and rely on a self-wake (exercises Handle.Wake).
		m.h.Wake(now + 3)
		return Never
	}
	return now + m.stride
}

// TestEngineSteadyStateAllocs is the zero-allocation guard on the
// engine loop: after a warm-up run has grown every internal slice,
// Reset+Run must not allocate at all. A regression here (a per-event
// allocation on the scheduling path) multiplies across millions of
// simulated cycles.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	for _, stride := range []Cycle{1, 1, 2, 3, 7, 0, 0} {
		m := &mixed{stride: stride, until: 20_000, e: e}
		m.h = e.Register(m)
	}
	runOnce := func() {
		e.Reset()
		if _, err := e.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	runOnce() // warm slice capacities
	if n := testing.AllocsPerRun(10, runOnce); n != 0 {
		t.Errorf("steady-state engine loop allocates %.1f allocs/op, want 0", n)
	}
}
