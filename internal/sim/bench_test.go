package sim

import "testing"

// counter is a minimal always-busy component.
type counter struct {
	n     int64
	until Cycle
	e     *Engine
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Tick(now Cycle) Cycle {
	c.n++
	if now >= c.until {
		c.e.Stop()
		return Never
	}
	return now + 1
}

// BenchmarkEngineDenseTicks measures raw cycle-loop throughput with 16
// always-busy components (the dense phase of a machine simulation).
func BenchmarkEngineDenseTicks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 16; j++ {
			c := &counter{until: 10_000, e: e}
			e.Register(c)
		}
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(16*10_000, "component-ticks/op")
}

// sleeper wakes itself sparsely.
type sleeper struct {
	stride Cycle
	until  Cycle
	e      *Engine
}

func (s *sleeper) Name() string { return "sleeper" }
func (s *sleeper) Tick(now Cycle) Cycle {
	if now >= s.until {
		s.e.Stop()
		return Never
	}
	return now + s.stride
}

// BenchmarkEngineSparseSkipping measures dead-time skipping: components
// that sleep 1000 cycles between ticks must not cost 1000 iterations.
func BenchmarkEngineSparseSkipping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 16; j++ {
			e.Register(&sleeper{stride: 1000, until: 10_000_000, e: e})
		}
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
