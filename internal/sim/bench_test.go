package sim

import (
	"fmt"
	"testing"
)

// counter is a minimal always-busy component.
type counter struct {
	n     int64
	until Cycle
	e     *Engine
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Tick(now Cycle) Cycle {
	c.n++
	if now >= c.until {
		c.e.Stop()
		return Never
	}
	return now + 1
}

// BenchmarkEngineDenseTicks measures raw cycle-loop throughput with 16
// always-busy components (the dense phase of a machine simulation).
func BenchmarkEngineDenseTicks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 16; j++ {
			c := &counter{until: 10_000, e: e}
			e.Register(c)
		}
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(16*10_000, "component-ticks/op")
}

// sleeper wakes itself sparsely.
type sleeper struct {
	stride Cycle
	until  Cycle
	e      *Engine
}

func (s *sleeper) Name() string { return "sleeper" }
func (s *sleeper) Tick(now Cycle) Cycle {
	if now >= s.until {
		s.e.Stop()
		return Never
	}
	return now + s.stride
}

// BenchmarkEngineSparseSkipping measures dead-time skipping: components
// that sleep 1000 cycles between ticks must not cost 1000 iterations.
func BenchmarkEngineSparseSkipping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 16; j++ {
			e.Register(&sleeper{stride: 1000, until: 10_000_000, e: e})
		}
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// dormant sleeps forever; it only exists to inflate the component count
// the way idle SPEs in a big machine configuration do.
type dormant struct{}

func (dormant) Name() string         { return "dormant" }
func (dormant) Tick(now Cycle) Cycle { return Never }

// BenchmarkEngineSparseWake measures the scheduler in the regime a large
// machine puts it in: many registered components of which only a handful
// are due per event (SPUs asleep in "Wait for DMA" while a few units make
// progress). The linear-scan engine paid O(N) per event here; the heap
// pays O(k log N) for the k due components.
func BenchmarkEngineSparseWake(b *testing.B) {
	for _, comps := range []int{64, 1024} {
		b.Run(fmt.Sprintf("comps=%d", comps), func(b *testing.B) {
			strides := []Cycle{3, 5, 7, 11}
			for i := 0; i < b.N; i++ {
				e := NewEngine()
				for j := 0; j < comps-len(strides); j++ {
					e.Register(dormant{})
				}
				for _, s := range strides {
					e.Register(&sleeper{stride: s, until: 100_000, e: e})
				}
				if _, err := e.Run(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
