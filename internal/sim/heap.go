package sim

// Typed binary min-heap helpers. container/heap routes every Push/Pop
// through interface{} boxing, which heap-allocates each event on the
// simulator's hottest paths (noc deliveries, memory responses, MFC
// timers). These generic helpers keep the elements in the backing slice
// with zero allocations beyond slice growth.

// Lesser is implemented by heap elements; Before reports strict
// ordering (the heap is a min-heap on Before).
type Lesser[T any] interface {
	Before(T) bool
}

// HeapPush inserts v, keeping *h a valid min-heap.
func HeapPush[T Lesser[T]](h *[]T, v T) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].Before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// HeapPop removes and returns the minimum element. The vacated slot is
// zeroed so payload references (e.g. packet buffers) are released.
func HeapPop[T Lesser[T]](h *[]T) T {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	var zero T
	s[last] = zero
	s = s[:last]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if r := c + 1; r < last && s[r].Before(s[c]) {
			c = r
		}
		if !s[c].Before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}
