package sim

// Rand is a small deterministic pseudo-random generator (xorshift64*)
// used by workload generators. math/rand would also be deterministic for
// a fixed seed, but pinning the algorithm here guarantees that simulator
// results cannot drift across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (a zero seed is remapped
// to a fixed non-zero constant, since xorshift has an all-zero fixpoint).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the high 32 bits of the next value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }
