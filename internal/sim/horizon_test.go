package sim

import "testing"

// The quiescence-horizon API (HorizonExcluding, NextScheduled,
// SchedStamp) backs the SPU's local-store read bursts: a component may
// simulate work for cycles strictly below its horizon, so every edge
// case here is a soundness case there.

// probe is a component that evaluates horizon queries from inside its
// own Tick, where the burst fast path runs them.
type probe struct {
	name string
	plan []Cycle
	// query runs inside Tick; the result lands in got.
	query func(now Cycle) Cycle
	got   []Cycle
}

func (p *probe) Name() string { return p.name }

func (p *probe) Tick(now Cycle) Cycle {
	if p.query != nil {
		p.got = append(p.got, p.query(now))
	}
	if len(p.plan) == 0 {
		return Never
	}
	next := p.plan[0]
	p.plan = p.plan[1:]
	return next
}

func TestHorizonEmptyQueue(t *testing.T) {
	e := NewEngine()
	p := &probe{name: "only", plan: []Cycle{Never}}
	h := e.Register(p)
	p.query = func(Cycle) Cycle { return e.HorizonExcluding(h.ID()) }
	if _, err := e.Run(0); err == nil {
		t.Fatal("expected deadlock with a single sleeping component")
	}
	// The only registered component sees an empty rest-of-machine: with
	// nothing else scheduled anywhere, the horizon is Never.
	if len(p.got) != 1 || p.got[0] != Never {
		t.Fatalf("horizon with empty queue = %v, want [Never]", p.got)
	}
}

func TestHorizonOutsidePass(t *testing.T) {
	e := NewEngine()
	a := e.Register(&probe{name: "a", plan: []Cycle{10, Never}})
	b := e.Register(&probe{name: "b", plan: []Cycle{25, Never}})
	// Before Run both components are scheduled for cycle 0.
	if got := e.HorizonExcluding(a.ID()); got != 0 {
		t.Fatalf("horizon(a) before run = %d, want 0", got)
	}
	if got := e.NextScheduled(b.ID()); got != 0 {
		t.Fatalf("NextScheduled(b) before run = %d, want 0", got)
	}
	_, _ = e.Run(0) // drains to deadlock; both asleep afterwards
	if got := e.HorizonExcluding(a.ID()); got != Never {
		t.Fatalf("horizon(a) after drain = %d, want Never", got)
	}
	if got := e.NextScheduled(a.ID()); got != Never {
		t.Fatalf("NextScheduled(a) after drain = %d, want Never", got)
	}
}

// Two components scheduled on the same cycle: the earlier-registered
// one must see horizon == now while the other is still pending in the
// pass, and the later-registered one sees the other's future schedule
// once the pass tail is empty.
func TestHorizonTwoComponentsSameCycle(t *testing.T) {
	e := NewEngine()
	a := &probe{name: "a", plan: []Cycle{7, Never}}
	b := &probe{name: "b", plan: []Cycle{9, Never}}
	ha := e.Register(a)
	hb := e.Register(b)
	a.query = func(now Cycle) Cycle { return e.HorizonExcluding(ha.ID()) }
	b.query = func(now Cycle) Cycle { return e.HorizonExcluding(hb.ID()) }
	_, _ = e.Run(0)

	// Pass at cycle 0: a ticks first with b pending -> horizon 0. b then
	// ticks with a rescheduled for 7 -> horizon 7.
	if a.got[0] != 0 {
		t.Fatalf("a's horizon during shared pass = %d, want 0 (b pending)", a.got[0])
	}
	if b.got[0] != 7 {
		t.Fatalf("b's horizon after a rescheduled = %d, want 7", b.got[0])
	}
	// Cycle 7: a alone, b waiting at 9. Cycle 9: b alone, a asleep.
	if a.got[1] != 9 {
		t.Fatalf("a's horizon at cycle 7 = %d, want 9", a.got[1])
	}
	if b.got[1] != Never {
		t.Fatalf("b's horizon at cycle 9 = %d, want Never", b.got[1])
	}
}

// A same-cycle insertion during a component's Tick — the moment the
// burst fast path must notice — bumps the schedule stamp, and the
// recomputed horizon reflects the insertion.
func TestHorizonInvalidatedBySameCycleInsertion(t *testing.T) {
	e := NewEngine()
	sleeper := &probe{name: "sleeper", plan: []Cycle{Never}}
	hs := e.Register(sleeper)
	worker := &probe{name: "worker"}
	hw := e.Register(worker)
	worker.query = func(now Cycle) Cycle {
		if now != 5 {
			return -1 // sentinel for cycles we don't probe
		}
		before := e.HorizonExcluding(hw.ID())
		stamp := e.SchedStamp()
		// Mid-"burst": wake the sleeper for a nearby cycle, as a STORE
		// executed in the first cycle of a burst window wakes the LSE.
		hs.Wake(7)
		if e.SchedStamp() == stamp {
			t.Errorf("SchedStamp unchanged by a wake that scheduled a sleeping component")
		}
		after := e.HorizonExcluding(hw.ID())
		if before != Never {
			t.Errorf("horizon before insertion = %d, want Never (sleeper asleep)", before)
		}
		if after != 7 {
			t.Errorf("horizon after insertion = %d, want 7", after)
		}
		return after
	}
	worker.plan = []Cycle{5, Never}
	_, _ = e.Run(0)
	if len(worker.got) != 2 {
		t.Fatalf("worker probed %d times, want 2", len(worker.got))
	}
}

// A wake arriving exactly at the horizon: the woken component runs at
// the horizon cycle and no earlier, so work the burster simulated for
// cycles strictly below the horizon stays untouched — and a wake can
// never move a component to a cycle below an already-computed horizon
// (time never rewinds past now, and earlier wakes bump the stamp).
func TestWakeExactlyAtHorizon(t *testing.T) {
	e := NewEngine()
	sleeper := &probe{name: "sleeper", plan: []Cycle{Never, Never}}
	hs := e.Register(sleeper)
	var horizon Cycle
	worker := &probe{name: "worker"}
	hw := e.Register(worker)
	other := &probe{name: "other", plan: []Cycle{20, Never}}
	e.Register(other)
	worker.query = func(now Cycle) Cycle {
		if now != 3 {
			return -1
		}
		horizon = e.HorizonExcluding(hw.ID()) // = 20, other's schedule
		hs.Wake(horizon)                      // arrives exactly at the horizon
		if got := e.HorizonExcluding(hw.ID()); got != horizon {
			t.Errorf("horizon after wake-at-horizon = %d, want %d", got, horizon)
		}
		return horizon
	}
	worker.plan = []Cycle{3, Never}
	_, _ = e.Run(0)
	if horizon != 20 {
		t.Fatalf("probed horizon = %d, want 20", horizon)
	}
	// The sleeper must have run exactly at the horizon cycle.
	if len(sleeper.got) != 0 { // sleeper has no query; check its runs via plan consumption
		t.Fatalf("unexpected probe results on sleeper")
	}
}

// NextScheduled distinguishes every scheduling state the horizon code
// reads: ticking now, pending in the current pass, bucketed, heaped,
// and asleep.
func TestNextScheduledStates(t *testing.T) {
	e := NewEngine()
	a := &probe{name: "a"}
	b := &probe{name: "b", plan: []Cycle{4, Never}}
	c := &probe{name: "c", plan: []Cycle{Never}}
	ha := e.Register(a)
	hb := e.Register(b)
	hc := e.Register(c)
	a.query = func(now Cycle) Cycle {
		switch now {
		case 0:
			if got := e.NextScheduled(ha.ID()); got != 0 {
				t.Errorf("NextScheduled(self, ticking) = %d, want 0", got)
			}
			if got := e.NextScheduled(hb.ID()); got != 0 {
				t.Errorf("NextScheduled(pending in pass) = %d, want 0", got)
			}
		case 2:
			// b rescheduled itself for 4 (heap or bucket), c sleeps.
			if got := e.NextScheduled(hb.ID()); got != 4 {
				t.Errorf("NextScheduled(b at cycle 2) = %d, want 4", got)
			}
			if got := e.NextScheduled(hc.ID()); got != Never {
				t.Errorf("NextScheduled(sleeping) = %d, want Never", got)
			}
		}
		return -1
	}
	a.plan = []Cycle{2, Never}
	_, _ = e.Run(0)
}

// The heap-root special case: when the querying component's own entry
// sits at the heap root, the horizon must come from the root's
// children, not the root itself.
func TestHorizonSelfAtHeapRoot(t *testing.T) {
	e := NewEngine()
	a := &probe{name: "a", plan: []Cycle{Never}}
	ha := e.Register(a)
	b := &probe{name: "b", plan: []Cycle{Never}}
	e.Register(b)
	_, _ = e.Run(0) // both asleep at deadlock
	// Schedule a earlier than b from outside a pass: a becomes the root.
	ha.Wake(30)
	e.Register(&probe{name: "c", plan: []Cycle{Never}}) // scheduled at now=0... clamps to e.now
	// c registered mid-run is scheduled at the current cycle; horizon of
	// a must see c (the non-root entry), not its own root entry.
	if got := e.HorizonExcluding(ha.ID()); got == 30 {
		t.Fatalf("horizon(a) = 30 (own entry); must exclude self")
	}
}
