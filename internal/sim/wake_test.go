package sim

// Edge-case coverage for Handle.Wake under the heap scheduler: clamping,
// already-due targets, self-wakes during Tick, wakes after Stop, and
// wakes that tombstone uniform-cycle bucket entries.

import "testing"

func cyclesEqual(t *testing.T, got, want []Cycle, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", label, got, want)
		}
	}
}

// TestWakePastClampsBucketEntry wakes a component that sits in the
// uniform-cycle bucket (it re-ticks on a fixed stride) with a cycle in
// the past: the wake must clamp to the current cycle, pull the entry out
// of the bucket, and not run the component twice.
func TestWakePastClampsBucketEntry(t *testing.T) {
	e := NewEngine()
	b := &recorder{name: "b"}
	b.onRun = func(now Cycle) {
		if now < 20 {
			b.plan = []Cycle{now + 5} // keeps claiming the bucket
		}
	}
	bh := e.Register(b)
	w := &recorder{name: "w", plan: []Cycle{7, 20}}
	w.onRun = func(now Cycle) {
		if now == 7 {
			bh.Wake(3) // past: clamps to 7, beats b's pending cycle-10 slot
		}
		if now >= 20 {
			e.Stop()
		}
	}
	e.Register(w)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// b ticks on its stride 0,5 then is yanked to 7 and restrides: 12, 17.
	cyclesEqual(t, b.runs, []Cycle{0, 5, 7, 12, 17}, "b.runs")
}

// TestWakeAlreadyDueIsNoOp wakes a component that is already due later
// in the same pass: it must still run exactly once on that cycle.
func TestWakeAlreadyDueIsNoOp(t *testing.T) {
	e := NewEngine()
	var ch *Handle
	a := &recorder{name: "a", plan: []Cycle{5, Never}}
	a.onRun = func(now Cycle) {
		if now == 5 {
			ch.Wake(5) // c is due at 5 anyway
			ch.Wake(6) // and a later wake must not beat the due slot
		}
	}
	e.Register(a)
	c := &recorder{name: "c", plan: []Cycle{5, Never, Never}}
	ch = e.Register(c)
	stop := &recorder{name: "stop", plan: []Cycle{8}}
	stop.onRun = func(now Cycle) {
		if now == 8 {
			e.Stop()
		}
	}
	e.Register(stop)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cyclesEqual(t, c.runs, []Cycle{0, 5}, "c.runs")
}

// TestSelfWakeDuringTick exercises both self-wake flavours: a same-cycle
// self-wake clamps to now+1, and a future self-wake merges (via min)
// with the Tick return value.
func TestSelfWakeDuringTick(t *testing.T) {
	e := NewEngine()
	var sh *Handle
	s := &recorder{name: "s"}
	s.onRun = func(now Cycle) {
		switch now {
		case 0:
			sh.Wake(0) // same-cycle self-wake: interpreted as now+1
		case 1:
			sh.Wake(4) // future self-wake beats the Never return
		case 4:
			sh.Wake(9)
			s.plan = []Cycle{6} // ... but Tick's own return wins when earlier
		}
	}
	sh = e.Register(s)
	stop := &recorder{name: "stop", plan: []Cycle{12}}
	stop.onRun = func(now Cycle) {
		if now == 12 {
			e.Stop()
		}
	}
	e.Register(stop)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cyclesEqual(t, s.runs, []Cycle{0, 1, 4, 6}, "s.runs")
}

// TestWakeAfterStop stops the engine, wakes a sleeping component from
// outside Run, and checks that Resume + Run honours the wake (the
// machine uses this to drain write-back DMA after completion).
func TestWakeAfterStop(t *testing.T) {
	e := NewEngine()
	s := &recorder{name: "s", plan: []Cycle{Never, Never}}
	sh := e.Register(s)
	stopper := &recorder{name: "stop", plan: []Cycle{10, 40, Never}}
	stopper.onRun = func(now Cycle) {
		if now == 10 || now == 40 {
			e.Stop()
		}
	}
	e.Register(stopper)
	if at, err := e.Run(0); err != nil || at != 10 {
		t.Fatalf("first Run = %d, %v; want 10, nil", at, err)
	}
	sh.Wake(25)
	sh.Wake(2) // in the past relative to now=10: clamps, never rewinds
	e.Resume()
	if at, err := e.Run(0); err != nil || at != 40 {
		t.Fatalf("second Run = %d, %v; want 40, nil", at, err)
	}
	// The past wake (clamped to 10) merged with the cycle-25 wake via
	// min, so the sleeper reran at cycle 10, the current cycle.
	cyclesEqual(t, s.runs, []Cycle{0, 10}, "s.runs")
}

// TestStopMidPassRequeuesRemainder stops the engine from the middle of a
// pass and checks that the not-yet-ticked components of that cycle run
// when the engine is resumed, rather than being dropped.
func TestStopMidPassRequeuesRemainder(t *testing.T) {
	e := NewEngine()
	first := &recorder{name: "first", plan: []Cycle{3, Never}}
	first.onRun = func(now Cycle) {
		if now == 3 {
			e.Stop()
		}
	}
	e.Register(first)
	second := &recorder{name: "second", plan: []Cycle{3, Never}}
	e.Register(second)
	if at, err := e.Run(0); err != nil || at != 3 {
		t.Fatalf("Run = %d, %v; want 3, nil", at, err)
	}
	cyclesEqual(t, second.runs, []Cycle{0}, "second.runs before resume")
	e.Resume()
	second.plan = []Cycle{Never}
	done := false
	second.onRun = func(now Cycle) {
		if now == 3 && len(second.runs) == 2 {
			done = true
			e.Stop()
		}
	}
	if _, err := e.Run(0); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if !done {
		t.Fatalf("second.runs = %v, want a second tick at cycle 3", second.runs)
	}
}

// TestWakeEarlierThanBucketSlot wakes a strided component to a nearer
// future cycle: the bucket entry must be superseded, not duplicated.
func TestWakeEarlierThanBucketSlot(t *testing.T) {
	e := NewEngine()
	b := &recorder{name: "b"}
	b.onRun = func(now Cycle) {
		if now < 30 {
			b.plan = []Cycle{now + 10}
		}
	}
	bh := e.Register(b)
	w := &recorder{name: "w", plan: []Cycle{12, 35}}
	w.onRun = func(now Cycle) {
		if now == 12 {
			bh.Wake(14) // b's bucket slot is 20; 14 must win, 20 must vanish
		}
		if now >= 35 {
			e.Stop()
		}
	}
	e.Register(w)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cyclesEqual(t, b.runs, []Cycle{0, 10, 14, 24, 34}, "b.runs")
}
