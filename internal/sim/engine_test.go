package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

// recorder ticks at scripted cycles and records when it actually ran.
type recorder struct {
	name  string
	plan  []Cycle // cycles at which it asks to run next (consumed in order)
	runs  []Cycle
	onRun func(now Cycle)
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) Tick(now Cycle) Cycle {
	r.runs = append(r.runs, now)
	if r.onRun != nil {
		r.onRun(now)
	}
	if len(r.plan) == 0 {
		return Never
	}
	next := r.plan[0]
	r.plan = r.plan[1:]
	return next
}

func (r *recorder) DumpState() string { return "recorder" }

func TestEngineSkipsIdleTime(t *testing.T) {
	e := NewEngine()
	r := &recorder{name: "r", plan: []Cycle{100, 5000, Never}}
	h := e.Register(r)
	_ = h
	stopper := &recorder{name: "stop", plan: []Cycle{5000}}
	se := e.Register(stopper)
	_ = se
	stopper.onRun = func(now Cycle) {
		if now >= 5000 {
			e.Stop()
		}
	}
	at, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5000 {
		t.Fatalf("stopped at %d, want 5000", at)
	}
	want := []Cycle{0, 100, 5000}
	if len(r.runs) != len(want) {
		t.Fatalf("runs = %v, want %v", r.runs, want)
	}
	for i := range want {
		if r.runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", r.runs, want)
		}
	}
}

func TestEngineDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Register(&recorder{name: "a", plan: []Cycle{10, Never}})
	_, err := e.Run(0)
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if dl.At != 10 {
		t.Fatalf("deadlock at %d, want 10", dl.At)
	}
	if len(dl.Dumps) != 1 || dl.Dumps[0] != "a: recorder" {
		t.Fatalf("dumps = %v", dl.Dumps)
	}
}

func TestEngineCycleLimit(t *testing.T) {
	e := NewEngine()
	busy := &recorder{name: "busy"}
	busy.onRun = func(Cycle) { busy.plan = append(busy.plan, e.Now()+1) }
	e.Register(busy)
	_, err := e.Run(50)
	var lim *ErrLimit
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if lim.Limit != 50 {
		t.Fatalf("limit = %d, want 50", lim.Limit)
	}
}

func TestWakeSchedulesSleepingComponent(t *testing.T) {
	e := NewEngine()
	sleeper := &recorder{name: "sleeper", plan: []Cycle{Never, Never}}
	sh := e.Register(sleeper)
	waker := &recorder{name: "waker", plan: []Cycle{20, Never}}
	waker.onRun = func(now Cycle) {
		if now == 20 {
			sh.Wake(now + 3)
		}
	}
	e.Register(waker)
	ender := &recorder{name: "ender", plan: []Cycle{30}}
	ender.onRun = func(now Cycle) {
		if now == 30 {
			e.Stop()
		}
	}
	e.Register(ender)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// sleeper runs at 0 (initial) and at 23 (woken).
	if len(sleeper.runs) != 2 || sleeper.runs[1] != 23 {
		t.Fatalf("sleeper.runs = %v, want [0 23]", sleeper.runs)
	}
}

func TestWakeInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	sleeper := &recorder{name: "sleeper", plan: []Cycle{Never, Never}}
	sh := e.Register(sleeper)
	w := &recorder{name: "w", plan: []Cycle{40}}
	w.onRun = func(now Cycle) {
		if now == 40 {
			sh.Wake(1) // in the past: must clamp, not rewind
			e.Stop()
		}
	}
	e.Register(w)
	at, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 40 {
		t.Fatalf("stopped at %d, want 40", at)
	}
}

func TestSameCycleWakeForLaterComponentRunsInSweep(t *testing.T) {
	e := NewEngine()
	a := &recorder{name: "a", plan: []Cycle{5, Never}}
	b := &recorder{name: "b", plan: []Cycle{Never, Never}}
	var bh *Handle
	a.onRun = func(now Cycle) {
		if now == 5 {
			bh.Wake(5) // b is later in the sweep: must run this very cycle
		}
	}
	b.onRun = func(now Cycle) {
		if now == 5 {
			e.Stop()
		}
	}
	e.Register(a)
	bh = e.Register(b)
	at, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5 {
		t.Fatalf("stopped at %d, want 5 (b woken same-cycle)", at)
	}
	if len(b.runs) != 2 || b.runs[1] != 5 {
		t.Fatalf("b.runs = %v, want [0 5]", b.runs)
	}
}

func TestTickReturningPastClampsForward(t *testing.T) {
	e := NewEngine()
	n := 0
	c := &recorder{name: "c"}
	c.onRun = func(now Cycle) {
		n++
		if n >= 5 {
			e.Stop()
			return
		}
		// plan empty -> Tick returns Never unless we refill; instead
		// return "now" (a past/equal value) via the plan to exercise
		// clamping.
		c.plan = []Cycle{now}
	}
	e.Register(c)
	at, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Each clamped return advances exactly one cycle: 0,1,2,3,4.
	if at != 4 {
		t.Fatalf("stopped at %d, want 4", at)
	}
}

func TestRegistrationOrderIsTickOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string) *recorder {
		r := &recorder{name: name, plan: []Cycle{Never}}
		r.onRun = func(Cycle) { order = append(order, name) }
		return r
	}
	e.Register(mk("first"))
	e.Register(mk("second"))
	e.Register(mk("third"))
	stop := &recorder{name: "stop", plan: []Cycle{Never}}
	stop.onRun = func(Cycle) { e.Stop() }
	e.Register(stop)
	if _, err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("order = %v", order)
	}
}

// TestEngineDeterminism drives two identical engines with a pseudo-random
// wake pattern and checks that both record identical run traces.
func TestEngineDeterminism(t *testing.T) {
	build := func(seed uint64) []Cycle {
		rng := NewRand(seed)
		e := NewEngine()
		var trace []Cycle
		var handles []*Handle
		for i := 0; i < 8; i++ {
			r := &recorder{name: "r"}
			idx := i
			r.onRun = func(now Cycle) {
				trace = append(trace, now*10+Cycle(idx))
				if now < 200 {
					// wake a pseudo-random peer a pseudo-random distance out
					handles[rng.Intn(len(handles))].Wake(now + 1 + Cycle(rng.Intn(7)))
				}
			}
			handles = append(handles, e.Register(r))
		}
		stop := &recorder{name: "stop", plan: []Cycle{400}}
		stop.onRun = func(now Cycle) {
			if now >= 400 {
				e.Stop()
			}
		}
		e.Register(stop)
		if _, err := e.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	a := build(42)
	b := build(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandDistributionAndDeterminism(t *testing.T) {
	r1 := NewRand(7)
	r2 := NewRand(7)
	for i := 0; i < 1000; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	// Zero seed must not collapse to all zeros.
	rz := NewRand(0)
	if rz.Uint64() == 0 && rz.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
	// Intn stays in range (property test).
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		v := NewRand(seed).Intn(bound)
		return v >= 0 && v < bound
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
