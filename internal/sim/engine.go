// Package sim provides the deterministic cycle-level simulation kernel on
// which the CellDTA machine model is built.
//
// The kernel is a hybrid between a plain cycle loop and a discrete-event
// simulator: every registered Component is ticked in registration order,
// but a component that has nothing to do can report the next cycle at
// which it wants to run (or Never) and the engine skips dead time by
// advancing the clock directly to the earliest pending wake-up. Components
// that push work into one another (an SPU handing a packet to the bus, the
// bus delivering to memory, ...) wake the consumer through its Handle.
//
// Determinism: the engine has no goroutines, no maps in scheduling
// decisions and no wall-clock inputs. Identical configuration and inputs
// produce identical cycle-by-cycle behaviour.
package sim

import (
	"fmt"
	"math"
	"strings"
)

// Cycle is a point in simulated time, measured in SPU clock cycles.
type Cycle int64

// Never is returned from Component.Tick by components that only need to
// run again once another component wakes them.
const Never Cycle = math.MaxInt64

// Component is a hardware block ticked by the Engine.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Tick performs the component's work for cycle now and returns the
	// next cycle at which the component needs to be ticked. Returning a
	// cycle <= now is interpreted as now+1; return Never to sleep until
	// woken through a Handle.
	Tick(now Cycle) Cycle
}

// StateDumper is an optional interface for components that can describe
// their internal state; the engine collects the dumps when it detects a
// deadlock so that tests and users get an actionable diagnosis.
type StateDumper interface {
	DumpState() string
}

// Handle lets components schedule wake-ups for one another (or for
// themselves from outside Tick). Handles are obtained from
// Engine.Register.
type Handle struct {
	e   *Engine
	idx int
}

// Wake schedules the component to be ticked no later than cycle at. A
// wake for the current cycle runs the component within the same cycle if
// it has not been ticked yet in this sweep, and on the next engine pass
// over the same cycle otherwise; the engine never rewinds time.
func (h *Handle) Wake(at Cycle) {
	if h == nil || h.e == nil {
		return
	}
	if at < h.e.now {
		at = h.e.now
	}
	if at < h.e.next[h.idx] {
		h.e.next[h.idx] = at
	}
}

// Engine drives a set of components through simulated time.
type Engine struct {
	comps []Component
	next  []Cycle
	now   Cycle

	stopped bool
	stopAt  Cycle
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Register adds a component to the engine and returns its wake handle.
// Components are ticked in registration order within a cycle, which is
// part of the deterministic contract.
func (e *Engine) Register(c Component) *Handle {
	e.comps = append(e.comps, c)
	e.next = append(e.next, Cycle(0))
	return &Handle{e: e, idx: len(e.comps) - 1}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Stop requests that Run return at the end of the current sweep. It is
// typically called by the component that detects overall completion (the
// PPE mailbox in the CellDTA machine).
func (e *Engine) Stop() {
	e.stopped = true
	e.stopAt = e.now
}

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Resume clears a Stop so that Run can be called again — used to drain
// in-flight work (e.g. write-back DMA) after the completion signal.
func (e *Engine) Resume() { e.stopped = false }

// ErrDeadlock is returned by Run when no component has pending work but
// the stop condition was never signalled.
type ErrDeadlock struct {
	At    Cycle
	Dumps []string
}

func (e *ErrDeadlock) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at cycle %d: no component has pending work", e.At)
	for _, d := range e.Dumps {
		b.WriteString("\n  ")
		b.WriteString(d)
	}
	return b.String()
}

// ErrLimit is returned by Run when maxCycles elapses before Stop.
type ErrLimit struct {
	Limit Cycle
}

func (e *ErrLimit) Error() string {
	return fmt.Sprintf("sim: cycle limit %d reached before completion", e.Limit)
}

// Run advances simulated time until Stop is called, no work remains
// (ErrDeadlock), or maxCycles elapses (ErrLimit). maxCycles <= 0 means no
// limit. It returns the cycle at which the simulation stopped.
func (e *Engine) Run(maxCycles Cycle) (Cycle, error) {
	for !e.stopped {
		// Find the earliest cycle at which any component wants to run.
		min := Never
		for _, n := range e.next {
			if n < min {
				min = n
			}
		}
		if min == Never {
			return e.now, &ErrDeadlock{At: e.now, Dumps: e.dumpAll()}
		}
		if min > e.now {
			e.now = min
		}
		if maxCycles > 0 && e.now >= maxCycles {
			return e.now, &ErrLimit{Limit: maxCycles}
		}
		// Tick every due component in registration order. A wake posted
		// during the sweep for the current cycle is honoured within the
		// sweep for components that have not run yet, and by an extra
		// pass over the same cycle otherwise (see Handle.Wake).
		for i, c := range e.comps {
			if e.next[i] > e.now {
				continue
			}
			// Clear the slot before ticking so that wakes posted during
			// the tick (including self-wakes) merge with the returned
			// next-run time via min().
			e.next[i] = Never
			nxt := c.Tick(e.now)
			if nxt < e.next[i] {
				e.next[i] = nxt
			}
			if e.next[i] <= e.now {
				e.next[i] = e.now + 1
			}
			if e.stopped {
				break
			}
		}
	}
	return e.stopAt, nil
}

// dumpAll collects state dumps from all components that provide them.
func (e *Engine) dumpAll() []string {
	var dumps []string
	for _, c := range e.comps {
		if d, ok := c.(StateDumper); ok {
			dumps = append(dumps, fmt.Sprintf("%s: %s", c.Name(), d.DumpState()))
		}
	}
	return dumps
}
