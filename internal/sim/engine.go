// Package sim provides the deterministic cycle-level simulation kernel on
// which the CellDTA machine model is built.
//
// The kernel is a hybrid between a plain cycle loop and a discrete-event
// simulator: every due Component is ticked in registration order, but a
// component that has nothing to do can report the next cycle at which it
// wants to run (or Never) and the engine skips dead time by advancing the
// clock directly to the earliest pending wake-up. Components that push
// work into one another (an SPU handing a packet to the bus, the bus
// delivering to memory, ...) wake the consumer through its Handle.
//
// Scheduling is an indexed min-heap keyed by (wake cycle, registration
// index): finding the next event is O(1), Handle.Wake is an O(log N)
// decrease-key, and each event-loop iteration visits only the components
// that are actually due instead of sweeping every registered component.
// With N components of which k are due, the per-event cost is O(k log N)
// rather than O(N). Two fast paths keep dense phases — every component
// due every cycle — near linear-scan speed: Ticks that ask to re-run at
// one shared upcoming cycle bypass the heap into a uniform-cycle bucket
// that becomes the next pass wholesale, and an all-due heap drain
// empties the heap in one sweep instead of popping entry by entry.
//
// Determinism: the engine has no goroutines, no maps in scheduling
// decisions and no wall-clock inputs. Identical configuration and inputs
// produce identical cycle-by-cycle behaviour. The deterministic contract
// is unchanged from the linear-scan scheduler it replaced:
//
//   - components due on the same cycle tick in registration order;
//   - a wake posted during a pass for the current cycle runs the target
//     within the same pass if it has not been ticked yet on this cycle,
//     and on an extra pass over the same cycle otherwise;
//   - time never rewinds: wakes in the past clamp to the current cycle.
package sim

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Cycle is a point in simulated time, measured in SPU clock cycles.
type Cycle int64

// Never is returned from Component.Tick by components that only need to
// run again once another component wakes them.
const Never Cycle = math.MaxInt64

// Component is a hardware block ticked by the Engine.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Tick performs the component's work for cycle now and returns the
	// next cycle at which the component needs to be ticked. Returning a
	// cycle <= now is interpreted as now+1; return Never to sleep until
	// woken through a Handle.
	Tick(now Cycle) Cycle
}

// StateDumper is an optional interface for components that can describe
// their internal state; the engine collects the dumps when it detects a
// deadlock so that tests and users get an actionable diagnosis.
type StateDumper interface {
	DumpState() string
}

// Handle lets components schedule wake-ups for one another (or for
// themselves from outside Tick). Handles are obtained from
// Engine.Register.
type Handle struct {
	e   *Engine
	idx int32
}

// Wake schedules the component to be ticked no later than cycle at. A
// wake for the current cycle runs the component within the same cycle if
// it has not been ticked yet in this pass, and on the next engine pass
// over the same cycle otherwise; the engine never rewinds time.
func (h *Handle) Wake(at Cycle) {
	if h == nil || h.e == nil {
		return
	}
	h.e.wake(h.idx, at)
}

// ID returns the component's registration index — its identity for
// Engine.HorizonExcluding.
func (h *Handle) ID() int32 { return h.idx }

// Horizon is Engine.HorizonExcluding for the handle's component.
func (h *Handle) Horizon() Cycle {
	if h == nil || h.e == nil {
		return Never
	}
	return h.e.HorizonExcluding(h.idx)
}

// SchedStamp exposes Engine.SchedStamp to components that only hold a
// handle.
func (h *Handle) SchedStamp() uint64 {
	if h == nil || h.e == nil {
		return 0
	}
	return h.e.SchedStamp()
}

// Engine returns the engine the handle belongs to (nil for a detached
// handle) — for components that combine HorizonExcluding with
// NextScheduled queries about specific peers.
func (h *Handle) Engine() *Engine {
	if h == nil {
		return nil
	}
	return h.e
}

// notQueued marks a component that is not in the heap.
const notQueued int32 = -1

// entry is one scheduled component in the heap. The wake cycle is stored
// inline so comparisons stay within the heap's backing array.
type entry struct {
	at  Cycle
	idx int32
}

// before orders entries by (cycle, registration index); the index
// tie-break is what makes same-cycle ticks follow registration order.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.idx < b.idx
}

// Engine drives a set of components through simulated time.
type Engine struct {
	comps []Component
	// heap is an indexed binary min-heap of scheduled components; pos[i]
	// is component i's position in it (notQueued when absent, e.g. while
	// sleeping or while waiting in the current pass list).
	heap []entry
	pos  []int32
	now  Cycle

	// nextList is the uniform-cycle bucket: components whose Tick asked
	// to re-run at the same upcoming cycle (nextAt — claimed by the
	// first re-tick request while the bucket is empty), in tick order.
	// They bypass the heap entirely — in the dense steady state (and
	// under synchronized strides) the bucket simply becomes the next
	// pass by a slice swap. Membership is
	// epoch-based: component i is in the bucket iff inNextSeq[i] ==
	// bucketSeq, so consuming the whole bucket is a single bucketSeq
	// increment instead of a per-entry flag sweep. A wake that needs an
	// earlier cycle tombstones the bucket entry (inNextSeq[i] zeroed,
	// slot left behind) and reroutes through the heap; nextLive counts
	// non-tombstoned entries and nextSorted tracks whether the bucket is
	// still in ascending registration order.
	nextList   []int32
	inNextSeq  []uint64
	bucketSeq  uint64
	nextAt     Cycle
	nextLive   int
	nextSorted bool

	// Per-cycle pass state. passList holds the components due on the
	// current cycle in ascending registration order; passCursor walks it.
	// A wake for the current cycle targeting a component later in
	// registration order than the one being ticked is spliced into
	// passList so it still runs within this pass (the linear-scan sweep
	// did the same by construction). The not-yet-ticked tail
	// passList[passCursor+1:] is always sorted, so pass membership is a
	// binary search rather than a per-tick flag update.
	passList   []int32
	passCursor int
	ticking    int32 // component currently inside Tick, notQueued outside
	selfWake   Cycle // earliest self-wake posted during the current Tick
	running    bool  // inside a pass (passList/ticking are live)

	// schedStamp invalidates cached HorizonExcluding results: it is
	// bumped whenever an entry is inserted into (or moved earlier in)
	// the schedule, i.e. whenever the horizon could shrink. Entries
	// that leave the schedule, or join it at a cycle not earlier than
	// the one they already tick at (bucket re-ticks, pass drains), can
	// only push the horizon out, so they leave the stamp alone and a
	// stale cached horizon stays conservative.
	schedStamp uint64

	stopped bool
	stopAt  Cycle
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{ticking: notQueued, bucketSeq: 1, nextSorted: true}
}

// Register adds a component to the engine and returns its wake handle.
// Components are ticked in registration order within a cycle, which is
// part of the deterministic contract. The new component is scheduled for
// the current cycle.
func (e *Engine) Register(c Component) *Handle {
	idx := int32(len(e.comps))
	e.comps = append(e.comps, c)
	e.pos = append(e.pos, notQueued)
	e.inNextSeq = append(e.inNextSeq, 0)
	e.schedule(idx, e.now)
	return &Handle{e: e, idx: idx}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// SchedStamp returns a monotonically increasing counter bumped whenever
// the engine's schedule gains an entry or an existing entry moves to an
// earlier cycle — the only events that can move a quiescence horizon
// earlier. A component may cache HorizonExcluding's result for as long
// as the stamp is unchanged: the cached value can become stale only in
// the conservative direction (the true horizon moved later).
func (e *Engine) SchedStamp() uint64 { return e.schedStamp }

// NextScheduled returns the next cycle at which component id is due to
// run: the current cycle while it is ticking or still pending in the
// current pass, its bucket or heap slot otherwise, and Never when it
// sleeps until woken. Combined with HorizonExcluding it lets a
// component bound when a *specific* peer can next act — e.g. the SPU's
// local-store burst window, which distinguishes the components wired
// to its local store from everyone else.
func (e *Engine) NextScheduled(id int32) Cycle {
	if e.running && (id == e.ticking || e.pendingInPass(id)) {
		return e.now
	}
	if e.inNextSeq[id] == e.bucketSeq {
		return e.nextAt
	}
	if p := e.pos[id]; p != notQueued {
		return e.heap[p].at
	}
	return Never
}

// HorizonExcluding returns the quiescence horizon of component id: the
// earliest cycle — counting the current one — at which any component
// other than id is scheduled to run, or Never when no other component
// has pending work. During a pass the components still due on the
// current cycle count, so a caller inside Tick sees e.Now() whenever
// another component runs later in the same pass (or in an extra pass
// over the same cycle).
//
// The contract this buys: no component other than id can execute — and
// therefore nothing outside id's own state can change — at any cycle t
// in [now, horizon). Work a component performs for such cycles ahead of
// the engine clock (the SPU's local-store read bursts) is
// indistinguishable from having run it cycle by cycle, provided the
// component re-checks the horizon (via SchedStamp) after any action of
// its own that may schedule other components. Scheduling is the single
// source of truth here: every component with pending future work is
// required to be scheduled no later than that work's cycle — a
// component that sat unscheduled on pending work would already deadlock
// the machine today, so the horizon adds no new obligation.
func (e *Engine) HorizonExcluding(id int32) Cycle {
	min := Never
	// Components still pending in the current pass run at e.now, which
	// cannot be beaten: return immediately. The pending tail is sorted
	// and holds each component at most once, so "anything besides id"
	// is a length check.
	if e.running {
		pend := len(e.passList) - (e.passCursor + 1)
		if pend > 1 || (pend == 1 && e.passList[e.passCursor+1] != id) {
			return e.now
		}
	}
	// The uniform-cycle bucket: live entries all run at nextAt.
	if e.nextLive > 1 || (e.nextLive == 1 && e.inNextSeq[id] != e.bucketSeq) {
		min = e.nextAt
	}
	// The heap: its root is the earliest entry; when the root is id
	// itself, the earliest other entry is one of the root's children
	// (id appears at most once).
	if n := len(e.heap); n > 0 {
		if e.heap[0].idx != id {
			if e.heap[0].at < min {
				min = e.heap[0].at
			}
		} else {
			for p := 1; p <= 2 && p < n; p++ {
				if e.heap[p].at < min {
					min = e.heap[p].at
				}
			}
		}
	}
	return min
}

// Reset returns the engine to cycle 0 with every registered component
// scheduled for the first pass, exactly as if each had just been
// registered — the scheduling half of machine reuse. Component state is
// the components' own business; the engine only rewinds time and the
// queues. All existing Handles remain valid.
func (e *Engine) Reset() {
	e.now = 0
	e.stopped = false
	e.stopAt = 0
	e.heap = e.heap[:0]
	for i := range e.pos {
		e.pos[i] = notQueued
	}
	e.nextList = e.nextList[:0]
	e.nextLive = 0
	e.nextSorted = true
	e.bucketSeq++ // invalidates every inNextSeq entry
	e.passList = e.passList[:0]
	e.passCursor = 0
	e.ticking = notQueued
	e.running = false
	for i := range e.comps {
		e.schedule(int32(i), 0)
	}
}

// Stop requests that Run return at the end of the current pass. It is
// typically called by the component that detects overall completion (the
// PPE mailbox in the CellDTA machine).
func (e *Engine) Stop() {
	e.stopped = true
	e.stopAt = e.now
}

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Resume clears a Stop so that Run can be called again — used to drain
// in-flight work (e.g. write-back DMA) after the completion signal.
func (e *Engine) Resume() { e.stopped = false }

// ErrDeadlock is returned by Run when no component has pending work but
// the stop condition was never signalled.
type ErrDeadlock struct {
	At    Cycle
	Dumps []string
}

func (e *ErrDeadlock) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at cycle %d: no component has pending work", e.At)
	for _, d := range e.Dumps {
		b.WriteString("\n  ")
		b.WriteString(d)
	}
	return b.String()
}

// ErrLimit is returned by Run when maxCycles elapses before Stop.
type ErrLimit struct {
	Limit Cycle
}

func (e *ErrLimit) Error() string {
	return fmt.Sprintf("sim: cycle limit %d reached before completion", e.Limit)
}

// RunStatus says why RunUntil/RunFor returned.
type RunStatus uint8

const (
	// RunStopped: a component called Stop — the simulation completed (or
	// faulted; the caller owns that distinction).
	RunStopped RunStatus = iota
	// RunQuiescent: no component has pending work and Stop was never
	// called. Whether that is a deadlock or a benign drain is the
	// caller's call; DeadlockError packages the diagnosis.
	RunQuiescent
	// RunBudget: the budget elapsed with work still pending. The clock
	// already sits on the next event's cycle (>= the budget bound), so a
	// sequence of budgeted runs replays an unbounded Run exactly,
	// landing each slice boundary on a natural scheduling point.
	RunBudget
)

// RunUntil advances simulated time until Stop is called, no work
// remains, or the next event would run at a cycle >= until. It returns
// the cycle reached and why it returned. until == Never means no bound.
//
// The returned cycle is e.Now() except for RunStopped, where it is the
// Stop cycle. On RunBudget the engine has already advanced its clock to
// the first out-of-budget event (without running it), exactly where an
// unbounded Run would have placed it before the event's pass — so
// interleaved engines each see precisely the schedule they would see
// run-to-completion, and slices cost nothing in fidelity.
func (e *Engine) RunUntil(until Cycle) (Cycle, RunStatus) {
	for !e.stopped {
		min := Never
		if e.nextLive > 0 {
			min = e.nextAt
		}
		if len(e.heap) > 0 && e.heap[0].at < min {
			min = e.heap[0].at
		}
		if min == Never {
			return e.now, RunQuiescent
		}
		if min > e.now {
			e.now = min
		}
		if e.now >= until {
			return e.now, RunBudget
		}
		e.runPass()
	}
	return e.stopAt, RunStopped
}

// NextEvent returns the cycle of the earliest pending event — the
// uniform-cycle bucket or the heap root, whichever is due first — or
// Never when no component has pending work. It is the O(1) head
// computation RunUntil makes before every pass, exposed so a batch
// scheduler can order paused engines by how soon each has real work
// (the virtual-time key of horizon-aware scheduling).
func (e *Engine) NextEvent() Cycle {
	min := Never
	if e.nextLive > 0 {
		min = e.nextAt
	}
	if len(e.heap) > 0 && e.heap[0].at < min {
		min = e.heap[0].at
	}
	return min
}

// RunFor is RunUntil(Now()+budget), saturating at Never. budget <= 0
// returns immediately with RunBudget.
func (e *Engine) RunFor(budget Cycle) (Cycle, RunStatus) {
	if budget <= 0 {
		return e.now, RunBudget
	}
	until := e.now + budget
	if until < e.now { // overflow
		until = Never
	}
	return e.RunUntil(until)
}

// DeadlockError packages a RunQuiescent outcome as the error Run
// returns, with component state dumps for diagnosis.
func (e *Engine) DeadlockError() *ErrDeadlock {
	return &ErrDeadlock{At: e.now, Dumps: e.dumpAll()}
}

// Run advances simulated time until Stop is called, no work remains
// (ErrDeadlock), or maxCycles elapses (ErrLimit). maxCycles <= 0 means no
// limit. It returns the cycle at which the simulation stopped.
func (e *Engine) Run(maxCycles Cycle) (Cycle, error) {
	limit := Never
	if maxCycles > 0 {
		limit = maxCycles
	}
	end, st := e.RunUntil(limit)
	switch st {
	case RunQuiescent:
		return end, e.DeadlockError()
	case RunBudget:
		return end, &ErrLimit{Limit: maxCycles}
	}
	return end, nil
}

// runPass ticks every component due on cycle e.now in registration
// order. Wakes posted during the pass for the current cycle join the
// pass when they target a component that has not been ticked yet on this
// cycle, and otherwise land in the heap at e.now so the next Run
// iteration makes an extra pass over the same cycle.
func (e *Engine) runPass() {
	e.drainDue()
	e.running = true
	for e.passCursor = 0; e.passCursor < len(e.passList); e.passCursor++ {
		i := e.passList[e.passCursor]
		e.ticking = i
		e.selfWake = Never
		nxt := e.comps[i].Tick(e.now)
		if e.selfWake < nxt {
			nxt = e.selfWake
		}
		e.ticking = notQueued
		if nxt <= e.now {
			nxt = e.now + 1
		}
		if nxt != Never && (e.nextLive == 0 || nxt == e.nextAt) {
			// Bucket: an empty bucket is claimed by the first re-tick
			// request of the pass, and components asking for the same
			// cycle pile in behind it. Dense phases (everything returns
			// now+1) and synchronized strides (everything returns
			// now+k) both bypass the heap entirely this way.
			if e.inNextSeq[i] != e.bucketSeq {
				e.inNextSeq[i] = e.bucketSeq
				if n := len(e.nextList); n > 0 && e.nextList[n-1] > i {
					e.nextSorted = false
				}
				e.nextList = append(e.nextList, i)
				e.nextLive++
				e.nextAt = nxt
			}
		} else if nxt != Never {
			e.schedule(i, nxt)
		}
		if e.stopped {
			// Requeue the not-yet-ticked remainder so a Resume + Run
			// picks them up on a fresh pass over this cycle.
			for _, j := range e.passList[e.passCursor+1:] {
				e.schedule(j, e.now)
			}
			break
		}
	}
	e.running = false
	e.passCursor = 0
	e.passList = e.passList[:0]
}

// drainDue collects every component scheduled for e.now (or earlier — a
// component registered mid-run can carry an older cycle) into passList
// in ascending registration order, consuming the next-cycle bucket
// and/or the due prefix of the heap.
func (e *Engine) drainDue() {
	sorted := true
	prev := int32(-1)
	heapDue := len(e.heap) > 0 && e.heap[0].at <= e.now
	if e.nextLive > 0 && e.nextAt <= e.now {
		if !heapDue && e.nextSorted && e.nextLive == len(e.nextList) {
			// Steady state: the bucket has no tombstones or stale
			// entries and is already sorted — it IS the pass. Swapping
			// the slices and bumping the epoch consumes it in O(1).
			e.passList, e.nextList = e.nextList, e.passList[:0]
			e.bucketSeq++
			e.nextLive = 0
			return
		}
		// Promote the bucket entry by entry, filtering tombstones and
		// entries left over from older bucket generations.
		for _, i := range e.nextList {
			if e.inNextSeq[i] != e.bucketSeq {
				continue
			}
			e.inNextSeq[i] = 0
			e.passList = append(e.passList, i)
			if i < prev {
				sorted = false
			}
			prev = i
		}
		e.nextList = e.nextList[:0]
		e.nextLive = 0
		e.nextSorted = true
	} else if len(e.nextList) > 0 && e.nextLive == 0 {
		// Only tombstones left: discard them so the bucket can restart.
		e.nextList = e.nextList[:0]
		e.nextSorted = true
	}

	if heapDue {
		// Dense fast path: when every heap entry is due, empty the heap
		// wholesale and sort, instead of paying an O(log N) sift per
		// pop. The scan early exits on the first non-due entry, so
		// sparse phases lose almost nothing to it.
		h := e.heap
		all := true
		for k := range h {
			if h[k].at > e.now {
				all = false
				break
			}
		}
		if all {
			for _, en := range h {
				e.pos[en.idx] = notQueued
				e.passList = append(e.passList, en.idx)
				if en.idx < prev {
					sorted = false
				}
				prev = en.idx
			}
			e.heap = h[:0]
		} else {
			for len(e.heap) > 0 && e.heap[0].at <= e.now {
				i := e.popMin()
				e.passList = append(e.passList, i)
				if i < prev {
					sorted = false
				}
				prev = i
			}
		}
	}
	if !sorted {
		if len(e.passList) <= 32 {
			insertionSort(e.passList)
		} else {
			slices.Sort(e.passList)
		}
	}
}

// insertionSort sorts small index slices; heap level order is already
// mostly ascending, which this exploits.
func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// wake implements Handle.Wake for component i.
func (e *Engine) wake(i int32, at Cycle) {
	if at < e.now {
		at = e.now // never rewind time
	}
	if e.inNextSeq[i] == e.bucketSeq {
		if at >= e.nextAt {
			return // already scheduled at least that early
		}
		// The wake beats the bucket slot: tombstone it and reschedule
		// through the normal paths below.
		e.inNextSeq[i] = 0
		e.nextLive--
	}
	if !e.running {
		e.schedule(i, at)
		return
	}
	switch {
	case i == e.ticking:
		// A self-wake during Tick merges with the returned next-run time
		// (and a same-cycle self-wake clamps to now+1, as the linear
		// sweep did by clearing the slot before ticking).
		if at < e.selfWake {
			e.selfWake = at
		}
	case e.pendingInPass(i):
		// Already due later in this pass at e.now; at >= e.now cannot
		// improve on that.
	case at == e.now && i > e.ticking:
		// Not ticked yet on this cycle: joins the current pass in
		// registration order.
		e.removeFromHeap(i)
		e.insertIntoPass(i)
	default:
		// Already ticked on this cycle (i < ticking) or a future wake:
		// decrease-key in the heap; a wake at e.now triggers an extra
		// pass over the same cycle on the next Run iteration.
		e.schedule(i, at)
	}
}

// pendingLowerBound returns the position of the first entry >= i in the
// sorted pending tail passList[passCursor+1:] (binary search).
func (e *Engine) pendingLowerBound(i int32) int {
	lo, hi := e.passCursor+1, len(e.passList)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.passList[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pendingInPass reports whether component i is still waiting to be
// ticked in the current pass.
func (e *Engine) pendingInPass(i int32) bool {
	p := e.pendingLowerBound(i)
	return p < len(e.passList) && e.passList[p] == i
}

// insertIntoPass splices component i into the pending portion of the
// current pass list, keeping it sorted by registration index. The
// pending tail is typically short, and i > passList[passCursor] by
// construction.
func (e *Engine) insertIntoPass(i int32) {
	e.schedStamp++
	p := e.pendingLowerBound(i)
	e.passList = append(e.passList, 0)
	copy(e.passList[p+1:], e.passList[p:])
	e.passList[p] = i
}

// schedule sets component i to run no later than at, pushing it into the
// heap or decreasing its key. A later wake than the scheduled one is a
// no-op (wakes merge via min).
func (e *Engine) schedule(i int32, at Cycle) {
	if p := e.pos[i]; p != notQueued {
		if at < e.heap[p].at {
			e.schedStamp++
			e.heap[p].at = at
			e.siftUp(p)
		}
		return
	}
	e.schedStamp++
	p := int32(len(e.heap))
	e.heap = append(e.heap, entry{at: at, idx: i})
	e.pos[i] = p
	e.siftUp(p)
}

func (e *Engine) siftUp(p int32) {
	h := e.heap
	en := h[p]
	for p > 0 {
		parent := (p - 1) / 2
		if !en.before(h[parent]) {
			break
		}
		h[p] = h[parent]
		e.pos[h[p].idx] = p
		p = parent
	}
	h[p] = en
	e.pos[en.idx] = p
}

func (e *Engine) siftDown(p int32) {
	h := e.heap
	n := int32(len(h))
	en := h[p]
	for {
		child := 2*p + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].before(h[child]) {
			child = r
		}
		if !h[child].before(en) {
			break
		}
		h[p] = h[child]
		e.pos[h[p].idx] = p
		p = child
	}
	h[p] = en
	e.pos[en.idx] = p
}

// popMin removes and returns the component with the earliest (at, index)
// key.
func (e *Engine) popMin() int32 {
	h := e.heap
	top := h[0].idx
	e.pos[top] = notQueued
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		e.pos[h[0].idx] = 0
	}
	e.heap = h[:last]
	if last > 1 {
		e.siftDown(0)
	}
	return top
}

// removeFromHeap detaches component i if it is queued (used when a
// same-cycle wake moves it into the current pass list instead).
func (e *Engine) removeFromHeap(i int32) {
	p := e.pos[i]
	if p == notQueued {
		return
	}
	h := e.heap
	e.pos[i] = notQueued
	last := int32(len(h) - 1)
	e.heap = h[:last]
	if p == last {
		return
	}
	moved := h[last]
	h[p] = moved
	e.pos[moved.idx] = p
	// The moved entry may need to go either way.
	if p > 0 && moved.before(h[(p-1)/2]) {
		e.siftUp(p)
	} else {
		e.siftDown(p)
	}
}

// dumpAll collects state dumps from all components that provide them.
func (e *Engine) dumpAll() []string {
	var dumps []string
	for _, c := range e.comps {
		if d, ok := c.(StateDumper); ok {
			dumps = append(dumps, fmt.Sprintf("%s: %s", c.Name(), d.DumpState()))
		}
	}
	return dumps
}
