package sim

import (
	"fmt"

	"repro/internal/snap"
)

// Snapshot serialises the engine's scheduling state: the clock and each
// component's next due cycle. The internal layout — which entries sit
// in the uniform-cycle bucket versus the heap, tombstones, slice
// capacities — is performance-only: scheduling behaviour depends solely
// on the {(component, due cycle)} multiset plus the (cycle,
// registration index) total order, so the multiset is the whole state.
//
// The engine must be idle (between passes, as it always is between
// Machine.Step calls); snapshotting from inside a Tick is an error.
func (e *Engine) Snapshot(w *snap.Writer) error {
	if e.running {
		return fmt.Errorf("sim: snapshot inside a pass")
	}
	if e.stopped {
		return fmt.Errorf("sim: snapshot of a stopped engine")
	}
	w.I64(int64(e.now))
	w.Int(len(e.comps))
	for i := range e.comps {
		w.I64(int64(e.NextScheduled(int32(i))))
	}
	return nil
}

// Restore rewinds the engine to a snapshot taken by Snapshot on an
// engine with the same registered components (same count, same order —
// the machine configuration guarantees it). All Handles remain valid,
// exactly as across Reset.
func (e *Engine) Restore(r *snap.Reader) error {
	now := Cycle(r.I64())
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.comps) {
		return fmt.Errorf("sim: snapshot has %d components, engine has %d", n, len(e.comps))
	}
	// Clear the schedule the way Reset does, keeping backing arrays.
	e.heap = e.heap[:0]
	for i := range e.pos {
		e.pos[i] = notQueued
	}
	e.nextList = e.nextList[:0]
	e.nextLive = 0
	e.nextSorted = true
	e.bucketSeq++ // invalidates every inNextSeq entry
	e.passList = e.passList[:0]
	e.passCursor = 0
	e.ticking = notQueued
	e.running = false
	e.stopped = false
	e.stopAt = 0
	e.now = now
	for i := 0; i < n; i++ {
		at := Cycle(r.I64())
		if at != Never {
			e.schedule(int32(i), at)
		}
	}
	return r.Err()
}
