package sim

import (
	"errors"
	"testing"
)

// buildChatter wires the TestEngineDeterminism topology — eight
// recorders waking pseudo-random peers plus a stopper at 400 — onto e
// and returns the shared tick trace.
func buildChatter(e *Engine, seed uint64) *[]Cycle {
	rng := NewRand(seed)
	trace := &[]Cycle{}
	var handles []*Handle
	for i := 0; i < 8; i++ {
		r := &recorder{name: "r"}
		idx := i
		r.onRun = func(now Cycle) {
			*trace = append(*trace, now*10+Cycle(idx))
			if now < 200 {
				handles[rng.Intn(len(handles))].Wake(now + 1 + Cycle(rng.Intn(7)))
			}
		}
		handles = append(handles, e.Register(r))
	}
	stop := &recorder{name: "stop", plan: []Cycle{400}}
	stop.onRun = func(now Cycle) {
		if now >= 400 {
			e.Stop()
		}
	}
	e.Register(stop)
	return trace
}

// TestRunUntilSlicesMatchRun is the slicing-fidelity contract: driving
// an engine through arbitrary RunFor budgets must reproduce an
// uninterrupted Run tick for tick, ending on the same cycle.
func TestRunUntilSlicesMatchRun(t *testing.T) {
	ref := NewEngine()
	refTrace := buildChatter(ref, 42)
	refEnd, err := ref.Run(0)
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}

	for _, budget := range []Cycle{1, 3, 7, 64, 1000} {
		e := NewEngine()
		trace := buildChatter(e, 42)
		var end Cycle
		slices := 0
		for {
			var st RunStatus
			end, st = e.RunFor(budget)
			if st == RunStopped {
				break
			}
			if st != RunBudget {
				t.Fatalf("budget %d: status %d, want RunBudget", budget, st)
			}
			slices++
			if slices > 100_000 {
				t.Fatalf("budget %d: no progress", budget)
			}
		}
		if end != refEnd {
			t.Fatalf("budget %d: stopped at %d, want %d", budget, end, refEnd)
		}
		if len(*trace) != len(*refTrace) {
			t.Fatalf("budget %d: %d ticks, want %d", budget, len(*trace), len(*refTrace))
		}
		for i := range *trace {
			if (*trace)[i] != (*refTrace)[i] {
				t.Fatalf("budget %d: trace diverges at %d: %d vs %d",
					budget, i, (*trace)[i], (*refTrace)[i])
			}
		}
	}
}

// TestRunUntilQuiescent covers the no-pending-work return and the
// DeadlockError packaging Run layers on top of it.
func TestRunUntilQuiescent(t *testing.T) {
	e := NewEngine()
	e.Register(&recorder{name: "a", plan: []Cycle{10, Never}})
	end, st := e.RunUntil(Never)
	if st != RunQuiescent {
		t.Fatalf("status %d, want RunQuiescent", st)
	}
	if end != 10 {
		t.Fatalf("quiescent at %d, want 10", end)
	}
	err := e.DeadlockError()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) || dl.At != 10 {
		t.Fatalf("DeadlockError = %v, want deadlock at 10", err)
	}
	if len(dl.Dumps) != 1 || dl.Dumps[0] != "a: recorder" {
		t.Fatalf("dumps = %v", dl.Dumps)
	}
}

// TestRunUntilBudgetLandsOnNextEvent checks the advertised boundary
// semantics: on RunBudget the clock sits on the first out-of-budget
// event, not on the budget cycle itself.
func TestRunUntilBudgetLandsOnNextEvent(t *testing.T) {
	e := NewEngine()
	e.Register(&recorder{name: "a", plan: []Cycle{100, 5000, Never}})
	end, st := e.RunUntil(50)
	if st != RunBudget || end != 100 {
		t.Fatalf("got (%d, %d), want (100, RunBudget)", end, st)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", e.Now())
	}
	// Resuming past the boundary runs the pending event exactly once.
	end, st = e.RunUntil(101)
	if st != RunBudget || end != 5000 {
		t.Fatalf("resume: got (%d, %d), want (5000, RunBudget)", end, st)
	}
}

// TestRunForDegenerate covers zero/negative budgets and the stopped
// return value.
func TestRunForDegenerate(t *testing.T) {
	e := NewEngine()
	stopper := &recorder{name: "stop", plan: []Cycle{7}}
	stopper.onRun = func(now Cycle) {
		if now >= 7 {
			e.Stop()
		}
	}
	e.Register(stopper)

	if end, st := e.RunFor(0); st != RunBudget || end != 0 {
		t.Fatalf("RunFor(0) = (%d, %d), want (0, RunBudget)", end, st)
	}
	if end, st := e.RunFor(-5); st != RunBudget || end != 0 {
		t.Fatalf("RunFor(-5) = (%d, %d), want (0, RunBudget)", end, st)
	}
	end, st := e.RunFor(Never) // saturates, no overflow
	if st != RunStopped || end != 7 {
		t.Fatalf("RunFor(Never) = (%d, %d), want (7, RunStopped)", end, st)
	}
}
