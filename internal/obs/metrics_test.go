package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests served.", Label{Name: "path", Value: "/a"})
	c.Add(3)
	c.Inc()
	g := reg.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	reg.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	reg.CounterFunc("test_external_total", "External.", func() float64 { return 9 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.",
		"# TYPE test_requests_total counter",
		`test_requests_total{path="/a"} 4`,
		"# TYPE test_depth gauge",
		"test_depth 5",
		"test_uptime_seconds 12.5",
		"test_external_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFamilyHeaderOnce(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", "Hits.", Label{Name: "k", Value: "a"}).Inc()
	reg.Counter("test_hits_total", "Hits.", Label{Name: "k", Value: "b"}).Add(2)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if n := strings.Count(out, "# TYPE test_hits_total counter"); n != 1 {
		t.Fatalf("TYPE header appears %d times:\n%s", n, out)
	}
	if !strings.Contains(out, `test_hits_total{k="a"} 1`) || !strings.Contains(out, `test_hits_total{k="b"} 2`) {
		t.Fatalf("series missing:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10},
		Label{Name: "path", Value: "/x"})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{path="/x",le="0.1"} 1`,
		`test_latency_seconds_bucket{path="/x",le="1"} 3`,
		`test_latency_seconds_bucket{path="/x",le="10"} 4`,
		`test_latency_seconds_bucket{path="/x",le="+Inf"} 5`,
		`test_latency_seconds_sum{path="/x"} 56.05`,
		`test_latency_seconds_count{path="/x"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "T.").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
