// Package obs is the observability layer: a dependency-free metrics
// registry with Prometheus text exposition (served by dtad at
// GET /metrics) and a Chrome trace-event exporter that turns a
// trace.Recorder's per-component spans into a Perfetto-loadable
// timeline. See OBSERVABILITY.md.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one Prometheus label pair, rendered at registration time so
// the hot path never formats strings.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing metric. All methods are atomic
// and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observe is atomic and
// allocation-free: a linear scan over a handful of bounds, three
// atomic ops.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// DefBuckets are the default latency bounds in seconds.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// series is one exposition row: pre-rendered labels plus a value source.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
}

// Registry holds metric families in registration order. Registration
// takes a lock and allocates; reads and writes of registered metrics do
// not.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.series = append(f.series, s)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), fn: fn})
}

// CounterFunc registers a counter whose value is read at scrape time
// (for counters owned elsewhere, e.g. package-level atomics).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "counter", &series{labels: renderLabels(labels), fn: fn})
}

// Histogram registers and returns a histogram with the given ascending
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
	r.add(name, help, "histogram", &series{labels: renderLabels(labels), h: h})
	return h
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// mergeLabel renders labels plus one extra pair (for histogram le=).
func mergeLabel(labels, name, value string) string {
	extra := fmt.Sprintf("%s=%q", name, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus writes the registry in Prometheus text exposition
// format v0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			switch {
			case s.c != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.fn != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.h != nil:
				cum := int64(0)
				for i, b := range s.h.bounds {
					cum += s.h.buckets[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabel(s.labels, "le", formatFloat(b)), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabel(s.labels, "le", "+Inf"), s.h.Count())
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
			}
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
