package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/noc"
	"repro/internal/trace"
)

// TraceRun is one recorded machine run to export. Multiple runs (e.g.
// the original and the prefetch-transformed variant of a fuzz
// reproducer) render as separate process groups in one timeline.
type TraceRun struct {
	Label string
	SPEs  int
	Rec   *trace.Recorder
}

// Track layout inside each trace: one "machine" process per run
// carrying the NoC message spans, then one process per SPE with
// synchronous SPU tracks (work units, burst windows) and async tracks
// for overlapping DMA commands and thread-lifecycle states.
const (
	tidSPU     = 1
	tidBurst   = 2
	tidDMA     = 3
	tidThreads = 4
)

// event is one Chrome trace-event JSON object. 1 simulated cycle maps
// to 1 µs of trace time (ts/dur are in µs).
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceWriter struct {
	w     *bufio.Writer
	enc   *json.Encoder
	first bool
	err   error
}

func (t *traceWriter) emit(e event) {
	if t.err != nil {
		return
	}
	if !t.first {
		if _, t.err = t.w.WriteString(",\n"); t.err != nil {
			return
		}
	}
	t.first = false
	t.err = t.enc.Encode(e)
}

// WriteTrace emits the runs as Chrome trace-event JSON ("JSON object
// format": {"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing.
func WriteTrace(w io.Writer, runs []TraceRun) error {
	bw := bufio.NewWriter(w)
	tw := &traceWriter{w: bw, enc: json.NewEncoder(bw), first: true}
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	pidBase := 1
	for _, run := range runs {
		writeRun(tw, pidBase, run)
		pidBase += run.SPEs + 1
	}
	if tw.err != nil {
		return tw.err
	}
	if _, err := bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func meta(pid, tid int, kind, name string) event {
	return event{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

func writeRun(tw *traceWriter, pidBase int, run TraceRun) {
	label := run.Label
	if label == "" {
		label = "run"
	}
	machinePid := pidBase
	spePid := func(spe int) int { return pidBase + 1 + spe }

	tw.emit(meta(machinePid, 0, "process_name", "machine "+label))
	tw.emit(meta(machinePid, 1, "thread_name", "NoC"))
	for spe := 0; spe < run.SPEs; spe++ {
		pid := spePid(spe)
		tw.emit(meta(pid, 0, "process_name", fmt.Sprintf("SPE %d — %s", spe, label)))
		tw.emit(meta(pid, tidSPU, "thread_name", "SPU"))
		tw.emit(meta(pid, tidBurst, "thread_name", "SPU bursts"))
		tw.emit(meta(pid, tidDMA, "thread_name", "MFC DMA"))
		tw.emit(meta(pid, tidThreads, "thread_name", "threads"))
	}

	ids := 0
	nextID := func() string { ids++; return fmt.Sprintf("0x%x", ids) }

	// SPU occupancy: work units and burst windows are sequential per
	// SPE, so plain synchronous X events stack cleanly.
	for _, s := range run.Rec.SPUSpans() {
		if s.SPE >= run.SPEs {
			continue
		}
		dur := int64(s.End - s.Start)
		if dur < 1 {
			dur = 1
		}
		switch s.Unit {
		case trace.UnitBurst:
			tw.emit(event{Name: "burst", Ph: "X", Ts: int64(s.Start), Dur: dur,
				Pid: spePid(s.SPE), Tid: tidBurst, Cat: "spu"})
		default:
			name := fmt.Sprintf("tmpl%d", s.Template)
			if s.Unit == trace.UnitPF {
				name = "pf " + name
			}
			tw.emit(event{Name: name, Ph: "X", Ts: int64(s.Start), Dur: dur,
				Pid: spePid(s.SPE), Tid: tidSPU, Cat: "spu",
				Args: map[string]any{"thread": s.Thread, "unit": s.Unit.String()}})
		}
	}

	// DMA command lifetimes overlap (the MFC queue holds many commands),
	// so each command is a nestable async pair: issue→complete outer,
	// launch→complete "xfer" inner.
	for _, d := range run.Rec.DMASpans() {
		if d.SPE >= run.SPEs {
			continue
		}
		pid, id := spePid(d.SPE), nextID()
		dir := "get"
		if d.Dir != 0 {
			dir = "put"
		}
		name := fmt.Sprintf("%s %dB tag%d", dir, d.Size, d.Tag)
		tw.emit(event{Name: name, Ph: "b", Ts: int64(d.Issued), Pid: pid, Tid: tidDMA,
			Cat: "dma", ID: id,
			Args: map[string]any{"launched": int64(d.Launched), "size": d.Size, "tag": d.Tag, "dir": dir}})
		if d.Launched > d.Issued {
			tw.emit(event{Name: "xfer", Ph: "b", Ts: int64(d.Launched), Pid: pid, Tid: tidDMA, Cat: "dma", ID: id})
			tw.emit(event{Name: "xfer", Ph: "e", Ts: int64(d.Done), Pid: pid, Tid: tidDMA, Cat: "dma", ID: id})
		}
		tw.emit(event{Name: name, Ph: "e", Ts: int64(d.Done), Pid: pid, Tid: tidDMA, Cat: "dma", ID: id})
	}

	// NoC transits on the machine process; async so in-flight messages
	// on the same link can overlap.
	for _, m := range run.Rec.NoCSpans() {
		id := nextID()
		name := noc.Kind(m.Kind).String()
		args := map[string]any{"src": m.Src, "dst": m.Dst, "bytes": m.Bytes}
		tw.emit(event{Name: name, Ph: "b", Ts: int64(m.Sent), Pid: machinePid, Tid: 1, Cat: "noc", ID: id, Args: args})
		tw.emit(event{Name: name, Ph: "e", Ts: int64(m.Delivered), Pid: machinePid, Tid: 1, Cat: "noc", ID: id})
	}

	writeThreadStates(tw, spePid, run)
}

// writeThreadStates turns the flat lifecycle event stream into
// per-thread state spans: each event opens the state it names, closed
// by the thread's next event. Every thread gets its own async series so
// concurrent threads on one SPE do not fight over a track.
func writeThreadStates(tw *traceWriter, spePid func(int) int, run TraceRun) {
	events := run.Rec.Threads.Events()
	if len(events) == 0 {
		return
	}
	type threadKey struct {
		spe    int
		thread int64
	}
	byThread := make(map[threadKey][]trace.Event)
	var order []threadKey
	for _, e := range events {
		if e.SPE >= run.SPEs {
			continue
		}
		k := threadKey{e.SPE, e.Thread}
		if _, ok := byThread[k]; !ok {
			order = append(order, k)
		}
		byThread[k] = append(byThread[k], e)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].spe != order[j].spe {
			return order[i].spe < order[j].spe
		}
		return order[i].thread < order[j].thread
	})
	for _, k := range order {
		evs := byThread[k]
		id := fmt.Sprintf("t%d.%d", k.spe, k.thread)
		name := fmt.Sprintf("thread %d", k.thread)
		pid := spePid(k.spe)
		tw.emit(event{Name: name, Ph: "b", Ts: int64(evs[0].At), Pid: pid, Tid: tidThreads,
			Cat: "thread", ID: id, Args: map[string]any{"template": evs[0].Template}})
		for i, e := range evs {
			end := e.At
			if i+1 < len(evs) {
				end = evs[i+1].At
			}
			if end == e.At {
				end++ // zero-length states still render
			}
			// Same id as the enclosing thread span: nestable async pairs
			// with one id render the states as slices inside the thread row.
			tw.emit(event{Name: e.Kind.String(), Ph: "b", Ts: int64(e.At), Pid: pid, Tid: tidThreads, Cat: "thread", ID: id})
			tw.emit(event{Name: e.Kind.String(), Ph: "e", Ts: int64(end), Pid: pid, Tid: tidThreads, Cat: "thread", ID: id})
		}
		last := evs[len(evs)-1]
		endAt := last.At
		if endAt == evs[0].At {
			endAt++
		}
		tw.emit(event{Name: name, Ph: "e", Ts: int64(endAt), Pid: pid, Tid: tidThreads, Cat: "thread", ID: id})
	}
}
