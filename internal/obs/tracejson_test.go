package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

// traceDoc mirrors the Chrome trace-event "JSON object format" for
// decoding what WriteTrace produced.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Cat  string         `json:"cat"`
		ID   string         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func sampleRecorder() *trace.Recorder {
	r := trace.NewRecorder(64)
	r.SPUUnit(0, trace.UnitPF, 10, 25, 1, 3)
	r.SPUUnit(0, trace.UnitThread, 30, 80, 1, 3)
	r.SPUBurst(1, 0, 200)
	r.DMA(0, 0, 4096, 5, 12, 20, 170) // issued 12, launched 20, done 170
	r.DMA(1, 1, 128, 2, 40, 40, 90)   // launched with no queue delay
	r.NoC(1, 0, 2, 32, 15, 45)
	r.Threads.Emit(trace.Event{At: 5, SPE: 0, Kind: trace.FrameAlloc, Thread: 1, Template: 3})
	r.Threads.Emit(trace.Event{At: 10, SPE: 0, Kind: trace.PFDispatch, Thread: 1, Template: 3})
	r.Threads.Emit(trace.Event{At: 30, SPE: 0, Kind: trace.Dispatch, Thread: 1, Template: 3})
	r.Threads.Emit(trace.Event{At: 80, SPE: 0, Kind: trace.Done, Thread: 1, Template: 3})
	return r
}

func TestWriteTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, []TraceRun{{Label: "unit", SPEs: 2, Rec: sampleRecorder()}})
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	// Distinct tracks: process metadata for the machine + each SPE, and
	// thread_name rows naming the SPU, DMA, burst and thread tracks.
	wantNames := map[string]bool{
		"SPU": false, "SPU bursts": false, "MFC DMA": false, "threads": false, "NoC": false,
	}
	sawMachine := false
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		name, _ := e.Args["name"].(string)
		if e.Name == "process_name" && name == "machine unit" {
			sawMachine = true
		}
		if e.Name == "thread_name" {
			if _, ok := wantNames[name]; ok {
				wantNames[name] = true
			}
		}
	}
	if !sawMachine {
		t.Fatal("no machine process metadata")
	}
	for n, seen := range wantNames {
		if !seen {
			t.Fatalf("no thread_name metadata for track %q", n)
		}
	}

	// Span payloads: one X event per SPU unit (dur preserved), balanced
	// async begin/end pairs for DMA, NoC and thread states.
	var xSPU, xBurst int
	opens := map[string]int{} // cat/id -> open count
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Cat != "spu" {
				t.Fatalf("X event with cat %q", e.Cat)
			}
			if e.Name == "burst" {
				xBurst++
				if e.Ts != 0 || e.Dur != 200 {
					t.Fatalf("burst span ts=%d dur=%d", e.Ts, e.Dur)
				}
			} else {
				xSPU++
			}
		case "b":
			opens[e.Cat+"/"+e.ID]++
		case "e":
			opens[e.Cat+"/"+e.ID]--
		}
	}
	if xSPU != 2 || xBurst != 1 {
		t.Fatalf("SPU X events = %d, burst = %d; want 2/1", xSPU, xBurst)
	}
	for key, n := range opens {
		if n != 0 {
			t.Fatalf("unbalanced async pairs for %s: %+d", key, n)
		}
	}
}

func TestWriteTraceDMAAndNoCSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []TraceRun{{Label: "dma", SPEs: 2, Rec: sampleRecorder()}}); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var dmaOuter, dmaXfer, nocPairs int
	for _, e := range doc.TraceEvents {
		if e.Cat == "dma" && e.Ph == "b" {
			if e.Name == "xfer" {
				dmaXfer++
			} else {
				dmaOuter++
			}
		}
		if e.Cat == "noc" && e.Ph == "b" {
			nocPairs++
			if e.Ts != 15 {
				t.Fatalf("noc span ts = %d, want 15", e.Ts)
			}
		}
	}
	// Two DMA commands; only the queue-delayed one (launched > issued)
	// gets an inner transfer phase.
	if dmaOuter != 2 || dmaXfer != 1 {
		t.Fatalf("dma outer = %d, xfer = %d; want 2/1", dmaOuter, dmaXfer)
	}
	if nocPairs != 1 {
		t.Fatalf("noc spans = %d, want 1", nocPairs)
	}
}

func TestWriteTraceMultipleRunsDistinctPids(t *testing.T) {
	var buf bytes.Buffer
	runs := []TraceRun{
		{Label: "sim-orig", SPEs: 2, Rec: sampleRecorder()},
		{Label: "sim-pf", SPEs: 2, Rec: sampleRecorder()},
	}
	if err := WriteTrace(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	procs := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Pid], _ = e.Args["name"].(string)
		}
	}
	// 2 runs × (1 machine + 2 SPEs) = 6 distinct processes.
	if len(procs) != 6 {
		t.Fatalf("distinct pids = %d (%v), want 6", len(procs), procs)
	}
}

func TestWriteTraceEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []TraceRun{{Label: "empty", SPEs: 1, Rec: trace.NewRecorder(4)}}); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty-run output invalid: %v", err)
	}
}
