package stats

import "fmt"

// Cause refines Bucket into the stall taxonomy of the guest profiler:
// every simulated SPU cycle is attributed to exactly one Cause, and each
// Cause folds statically into one Figure-5 bucket via Bucket(). The
// refinement splits MemStall into blocking-READ vs store-buffer-full,
// LSEStall into FALLOC-wait vs backpressure, and Prefetch into
// DMA-programming vs DMA-wait vs MFC-queue-full, so a profile can answer
// *why* a bucket filled, not just that it did.
//
// The mapping is total and static: summing a CauseBreakdown by
// Cause.Bucket() reproduces the Breakdown byte-for-byte (the cause
// refactor of internal/spu derives the bucket charge from the cause, so
// the two can never drift).
type Cause int

const (
	// CauseIssue: at least one instruction issued this cycle (Working).
	CauseIssue Cause = iota
	// CauseDepStall: scoreboard wait on a compute-unit result (Working).
	CauseDepStall
	// CauseBubble: dispatch refill, taken-branch penalty or MFC channel
	// occupancy (Working).
	CauseBubble
	// CauseMFCWait: scoreboard wait on an MFCSTAT status result outside a
	// PF block (Working) — a PS-block tag poll spinning on the DMA engine.
	CauseMFCWait
	// CauseIdle: no thread available to run (Idle).
	CauseIdle
	// CauseBlockingRead: blocking main-memory READ round trip (MemStall).
	CauseBlockingRead
	// CauseStoreBufFull: main-memory store buffer full (MemStall).
	// Reserved: the modelled machine posts WRITEs to the interconnect
	// without bounding them, so this cause never fires today; it keeps
	// the taxonomy aligned with the paper's MemStall definition.
	CauseStoreBufFull
	// CauseLSWait: scoreboard wait on a local-store or frame-load result
	// (LSStall).
	CauseLSWait
	// CauseFallocWait: FALLOC round trip to the scheduler (LSEStall).
	CauseFallocWait
	// CauseLSEBackpressure: LSE input queue full — STORE, FALLOC, FFREE
	// or STOP retried (LSEStall).
	CauseLSEBackpressure
	// CauseMFCQueueFull: MFC command queue full, MFCGET/MFCPUT retried
	// outside a PF block (Prefetch).
	CauseMFCQueueFull
	// CauseDMAProgram: PF-block cycles programming the DMA unit — issue,
	// channel-interface occupancy, dependency waits (Prefetch).
	CauseDMAProgram
	// CauseDMAWait: PF-block cycles waiting on the DMA engine itself —
	// MFCSTAT status waits and full-queue retries (Prefetch).
	CauseDMAWait
	NumCauses
)

var causeBuckets = [NumCauses]Bucket{
	CauseIssue:           Working,
	CauseDepStall:        Working,
	CauseBubble:          Working,
	CauseMFCWait:         Working,
	CauseIdle:            Idle,
	CauseBlockingRead:    MemStall,
	CauseStoreBufFull:    MemStall,
	CauseLSWait:          LSStall,
	CauseFallocWait:      LSEStall,
	CauseLSEBackpressure: LSEStall,
	CauseMFCQueueFull:    Prefetch,
	CauseDMAProgram:      Prefetch,
	CauseDMAWait:         Prefetch,
}

// Bucket returns the Figure-5 bucket this cause folds into.
func (c Cause) Bucket() Bucket {
	return causeBuckets[c]
}

var causeNames = [NumCauses]string{
	"issue", "dep-stall", "bubble", "mfc-wait", "idle",
	"blocking-read", "store-buffer-full", "ls-wait",
	"falloc-wait", "lse-backpressure",
	"mfc-queue-full", "dma-program", "dma-wait",
}

func (c Cause) String() string {
	if c >= 0 && c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

var causeSlugs = [NumCauses]string{
	"issue", "dep_stall", "bubble", "mfc_wait", "idle",
	"blocking_read", "store_buffer_full", "ls_wait",
	"falloc_wait", "lse_backpressure",
	"mfc_queue_full", "dma_program", "dma_wait",
}

// Slug returns the snake_case identifier used in metric names, JSON
// keys and pprof sample-type names.
func (c Cause) Slug() string {
	if c >= 0 && c < NumCauses {
		return causeSlugs[c]
	}
	return fmt.Sprintf("cause_%d", int(c))
}

// CauseBreakdown counts cycles per cause.
type CauseBreakdown [NumCauses]int64

// Add accumulates n cycles into cause c.
func (b *CauseBreakdown) Add(c Cause, n int64) { b[c] += n }

// Total returns the cycle count across all causes.
func (b CauseBreakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Merge adds o into b.
func (b *CauseBreakdown) Merge(o CauseBreakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Buckets folds the cause counts back into the Figure-5 buckets. By
// construction (the SPU charges both from the same cause) this equals
// the SPU's Breakdown.
func (b CauseBreakdown) Buckets() Breakdown {
	var out Breakdown
	for c := Cause(0); c < NumCauses; c++ {
		out[c.Bucket()] += b[c]
	}
	return out
}

// StallPct returns the percentage of cycles in the paper's stall
// buckets (MemStall + LSStall + LSEStall) — the headline number the
// prefetch transformation attacks. 0 when the breakdown is empty.
func (b Breakdown) StallPct() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(b[MemStall]+b[LSStall]+b[LSEStall]) / float64(t)
}
