package stats

import "testing"

// TestProfileNilSafe: a nil *Profile is a valid no-op sink, like a nil
// trace.Recorder — components keep a plain field.
func TestProfileNilSafe(t *testing.T) {
	var p *Profile
	p.Add(Loc{Template: 1}, CauseIssue, 5) // must not panic
	p.Reset()
	if p.Len() != 0 || p.Total() != 0 || p.Samples() != nil {
		t.Fatal("nil profile reported samples")
	}
	if p.Causes() != (CauseBreakdown{}) {
		t.Fatal("nil profile reported causes")
	}
	if !p.Equal(nil) || !p.Equal(NewProfile()) {
		t.Fatal("nil and empty profiles must compare equal")
	}
}

// TestProfileSamplesDeterministic: samples aggregate per location and
// come back in (template, block, pc) order regardless of insertion
// order — the property the pprof encoder's byte-determinism rests on.
func TestProfileSamplesDeterministic(t *testing.T) {
	p := NewProfile()
	l0 := Loc{Template: 0, Block: 2, PC: 3}
	l1 := Loc{Template: 1, Block: 0, PC: 0}
	p.Add(l1, CauseIssue, 4)
	p.Add(l0, CauseBlockingRead, 7)
	p.Add(l0, CauseIssue, 1)
	p.Add(IdleLoc, CauseIdle, 9)

	s := p.Samples()
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3", len(s))
	}
	if s[0].Loc != IdleLoc || s[1].Loc != l0 || s[2].Loc != l1 {
		t.Fatalf("samples out of order: %+v", s)
	}
	if s[1].Total != 8 || s[1].Causes[CauseBlockingRead] != 7 || s[1].Causes[CauseIssue] != 1 {
		t.Fatalf("aggregation wrong: %+v", s[1])
	}
	if p.Total() != 21 {
		t.Fatalf("Total = %d, want 21", p.Total())
	}
	if got := p.Causes(); got[CauseIssue] != 5 || got[CauseIdle] != 9 {
		t.Fatalf("Causes fold wrong: %v", got)
	}
}

// TestProfileEqualAndReset: Equal compares sample maps; Reset empties
// the store in place (pool reuse).
func TestProfileEqualAndReset(t *testing.T) {
	a, b := NewProfile(), NewProfile()
	a.Add(Loc{Template: 2, PC: 1}, CauseLSWait, 3)
	if a.Equal(b) {
		t.Fatal("distinct profiles compared equal")
	}
	b.Add(Loc{Template: 2, PC: 1}, CauseLSWait, 3)
	if !a.Equal(b) {
		t.Fatal("identical profiles compared unequal")
	}
	b.Add(Loc{Template: 2, PC: 1}, CauseIssue, 1)
	if a.Equal(b) {
		t.Fatal("profiles with different causes compared equal")
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset left samples behind")
	}
}
