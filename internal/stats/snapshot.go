package stats

import (
	"sort"

	"repro/internal/snap"
)

// Snapshot serialises one SPU's accumulated statistics.
func (s *SPU) Snapshot(w *snap.Writer) {
	for _, v := range s.Breakdown {
		w.I64(v)
	}
	for _, v := range s.Causes {
		w.I64(v)
	}
	w.I64(s.Instr.Total)
	w.I64(s.Instr.Load)
	w.I64(s.Instr.Store)
	w.I64(s.Instr.Read)
	w.I64(s.Instr.Write)
	w.I64(s.Instr.LSDir)
	w.I64(s.Instr.DTA)
	w.I64(s.Instr.MFC)
	w.I64(s.IssuedSlots)
	w.I64(s.Cycles)
	w.I64(s.Threads)
	w.I64(s.PFBlocks)
}

// Restore rewinds the statistics to a snapshot.
func (s *SPU) Restore(r *snap.Reader) error {
	for i := range s.Breakdown {
		s.Breakdown[i] = r.I64()
	}
	for i := range s.Causes {
		s.Causes[i] = r.I64()
	}
	s.Instr.Total = r.I64()
	s.Instr.Load = r.I64()
	s.Instr.Store = r.I64()
	s.Instr.Read = r.I64()
	s.Instr.Write = r.I64()
	s.Instr.LSDir = r.I64()
	s.Instr.DTA = r.I64()
	s.Instr.MFC = r.I64()
	s.IssuedSlots = r.I64()
	s.Cycles = r.I64()
	s.Threads = r.I64()
	s.PFBlocks = r.I64()
	return r.Err()
}

// Snapshot serialises the profile's samples in deterministic
// (template, block, pc, cause) order. A nil profile writes an empty
// sample set, matching its no-op semantics.
func (p *Profile) Snapshot(w *snap.Writer) {
	if p == nil {
		w.Int(0)
		return
	}
	keys := make([]profKey, 0, len(p.m))
	for k := range p.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Loc.Template != b.Loc.Template {
			return a.Loc.Template < b.Loc.Template
		}
		if a.Loc.Block != b.Loc.Block {
			return a.Loc.Block < b.Loc.Block
		}
		if a.Loc.PC != b.Loc.PC {
			return a.Loc.PC < b.Loc.PC
		}
		return a.Cause < b.Cause
	})
	w.Int(len(keys))
	for _, k := range keys {
		w.I64(int64(k.Loc.Template))
		w.U8(k.Loc.Block)
		w.I64(int64(k.Loc.PC))
		w.Int(int(k.Cause))
		w.I64(p.m[k])
	}
}

// Restore rewinds the profile to a snapshot (no-op on a nil profile,
// whose snapshot is necessarily empty).
func (p *Profile) Restore(r *snap.Reader) error {
	n := r.Int()
	if p == nil {
		return r.Err()
	}
	clear(p.m)
	for i := 0; i < n; i++ {
		var k profKey
		k.Loc.Template = int32(r.I64())
		k.Loc.Block = r.U8()
		k.Loc.PC = int32(r.I64())
		k.Cause = Cause(r.Int())
		p.m[k] = r.I64()
	}
	return r.Err()
}
