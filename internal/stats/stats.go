// Package stats defines the measurement taxonomy of the reproduction:
// the per-SPU execution-time breakdown of paper Figure 5 (working, idle,
// memory stalls, LS stalls, LSE stalls, prefetching overhead), the
// dynamic instruction counts of paper Table 5 (total, LOAD, STORE, READ,
// WRITE) and the pipeline-usage metric of paper Figure 9.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Bucket is one category of the SPU execution-time breakdown.
type Bucket int

const (
	Working  Bucket = iota // at least one instruction issued this cycle
	Idle                   // no thread available to run
	MemStall               // waiting for main memory (blocking READ, full store buffer)
	LSStall                // waiting for local-store data (frame loads, LS reads)
	LSEStall               // waiting for the scheduler (FALLOC response, LSE backpressure)
	Prefetch               // executing/stalled in a PF block (DMA programming overhead)
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"Working", "Idle", "Memory Stalls", "LS Stalls", "LSE Stalls", "Prefetching",
}

func (b Bucket) String() string {
	if b >= 0 && b < NumBuckets {
		return bucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", int(b))
}

// Breakdown counts cycles per bucket.
type Breakdown [NumBuckets]int64

// Add accumulates n cycles into bucket k.
func (b *Breakdown) Add(k Bucket, n int64) { b[k] += n }

// Total returns the cycle count across all buckets.
func (b Breakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Percent returns bucket k as a percentage of the total (0 when empty).
func (b Breakdown) Percent(k Bucket) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(b[k]) / float64(t)
}

// Merge adds o into b.
func (b *Breakdown) Merge(o Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// InstrCounts is the dynamic instruction mix (paper Table 5 plus the
// DTA/MFC management instructions).
type InstrCounts struct {
	Total int64
	Load  int64 // frame reads (LOAD/LOADX)
	Store int64 // frame writes (STORE/STOREX)
	Read  int64 // main-memory reads (READ/READ8)
	Write int64 // main-memory writes (WRITE/WRITE8)
	LSDir int64 // direct local-store accesses (LSRD*/LSWR*)
	DTA   int64 // FALLOC/FALLOCX/FFREE/STOP
	MFC   int64 // MFC channel/enqueue/status instructions
}

// Merge adds o into c.
func (c *InstrCounts) Merge(o InstrCounts) {
	c.Total += o.Total
	c.Load += o.Load
	c.Store += o.Store
	c.Read += o.Read
	c.Write += o.Write
	c.LSDir += o.LSDir
	c.DTA += o.DTA
	c.MFC += o.MFC
}

// SPU aggregates one SPU's activity for a run.
type SPU struct {
	Breakdown   Breakdown
	Causes      CauseBreakdown // fine-grained refinement of Breakdown (see Cause)
	Instr       InstrCounts
	IssuedSlots int64 // instructions issued (for pipeline usage: slots/2 per cycle)
	Cycles      int64 // cycles the SPU was simulated (run length)
	Threads     int64 // thread executions completed
	PFBlocks    int64 // PF blocks executed
}

// Charge attributes n cycles to cause c, updating the bucket breakdown
// and the cause refinement from the same charge so they can never
// drift: Breakdown == Causes.Buckets() by construction.
func (s *SPU) Charge(c Cause, n int64) {
	s.Breakdown[c.Bucket()] += n
	s.Causes[c] += n
}

// PipelineUsage returns the fraction of issue slots used (paper Fig. 9):
// issued instructions over 2*cycles for the dual-issue SPU.
func (s SPU) PipelineUsage() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IssuedSlots) / float64(2*s.Cycles)
}

// Merge adds o into s (for averaging across SPUs).
func (s *SPU) Merge(o SPU) {
	s.Breakdown.Merge(o.Breakdown)
	s.Causes.Merge(o.Causes)
	s.Instr.Merge(o.Instr)
	s.IssuedSlots += o.IssuedSlots
	s.Cycles += o.Cycles
	s.Threads += o.Threads
	s.PFBlocks += o.PFBlocks
}

// Table is a minimal aligned text table used by the experiment harness
// to print the paper's tables and figure series. The JSON tags are the
// wire format served by the dtad API (internal/service) — renaming them
// breaks cached result documents and golden tests.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintf(w, "%s\n", b.String())
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Ratio formats a speedup with two decimals.
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }
