package stats

import (
	"strings"
	"testing"
)

// TestCauseBucketMappingTotal pins the cause taxonomy: every cause maps
// to a valid bucket, names and slugs are distinct and non-empty, and
// folding a cause breakdown reproduces the bucket breakdown exactly —
// the invariant the SPU's single-charge path relies on.
func TestCauseBucketMappingTotal(t *testing.T) {
	seenSlug := map[string]bool{}
	for c := Cause(0); c < NumCauses; c++ {
		b := c.Bucket()
		if b < 0 || b >= NumBuckets {
			t.Fatalf("cause %v maps to invalid bucket %d", c, b)
		}
		if c.String() == "" || strings.HasPrefix(c.String(), "cause(") {
			t.Fatalf("cause %d has no name", int(c))
		}
		if s := c.Slug(); s == "" || seenSlug[s] {
			t.Fatalf("cause %v has empty or duplicate slug %q", c, s)
		} else {
			seenSlug[s] = true
		}
	}

	var cb CauseBreakdown
	for c := Cause(0); c < NumCauses; c++ {
		cb[c] = int64(100 + c)
	}
	var want Breakdown
	for c := Cause(0); c < NumCauses; c++ {
		want[c.Bucket()] += cb[c]
	}
	if got := cb.Buckets(); got != want {
		t.Fatalf("Buckets() = %v, want %v", got, want)
	}
	if cb.Total() != want.Total() {
		t.Fatalf("cause total %d != bucket total %d", cb.Total(), want.Total())
	}
}

// TestSPUChargeKeepsBreakdownsInSync: Charge updates bucket and cause
// stores from the same increment; Merge preserves the invariant.
func TestSPUChargeKeepsBreakdownsInSync(t *testing.T) {
	var a, b SPU
	a.Charge(CauseIssue, 10)
	a.Charge(CauseBlockingRead, 7)
	a.Charge(CauseDMAProgram, 3)
	b.Charge(CauseFallocWait, 5)
	b.Charge(CauseIssue, 2)
	a.Merge(b)
	if a.Breakdown != a.Causes.Buckets() {
		t.Fatalf("breakdown %v out of sync with causes %v", a.Breakdown, a.Causes)
	}
	if a.Breakdown[Working] != 12 || a.Breakdown[MemStall] != 7 ||
		a.Breakdown[Prefetch] != 3 || a.Breakdown[LSEStall] != 5 {
		t.Fatalf("unexpected breakdown %v", a.Breakdown)
	}
}

// TestBreakdownPercentZeroTotal guards the empty-run rendering path: an
// all-zero breakdown must report 0%, never NaN, for every bucket and
// for StallPct.
func TestBreakdownPercentZeroTotal(t *testing.T) {
	var b Breakdown
	for k := Bucket(0); k < NumBuckets; k++ {
		if got := b.Percent(k); got != 0 {
			t.Fatalf("Percent(%v) on zero total = %v, want 0", k, got)
		}
	}
	if got := b.StallPct(); got != 0 {
		t.Fatalf("StallPct on zero total = %v, want 0", got)
	}
}

// TestZeroCycleTableRendering renders a breakdown table for a zero-cycle
// run end to end: the formatted cells must contain "0.0%", no NaN.
func TestZeroCycleTableRendering(t *testing.T) {
	var bd Breakdown
	tbl := Table{Title: "empty run", Headers: []string{"bucket", "pct"}}
	for k := Bucket(0); k < NumBuckets; k++ {
		tbl.AddRow(k.String(), Pct(bd.Percent(k)))
	}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("zero-cycle table rendered NaN:\n%s", out)
	}
	if !strings.Contains(out, "0.0%") {
		t.Fatalf("zero-cycle table missing 0.0%% cells:\n%s", out)
	}
}

// TestStallPct pins the stall percentage definition: the MemStall,
// LSStall and LSEStall buckets over the total.
func TestStallPct(t *testing.T) {
	var b Breakdown
	b[Working] = 50
	b[MemStall] = 20
	b[LSStall] = 10
	b[LSEStall] = 10
	b[Prefetch] = 10
	if got := b.StallPct(); got != 40 {
		t.Fatalf("StallPct = %v, want 40", got)
	}
}
