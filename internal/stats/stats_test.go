package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(Working, 60)
	b.Add(MemStall, 30)
	b.Add(Idle, 10)
	if b.Total() != 100 {
		t.Fatalf("Total = %d", b.Total())
	}
	if got := b.Percent(Working); got != 60 {
		t.Fatalf("Percent(Working) = %v", got)
	}
	var c Breakdown
	c.Add(Working, 40)
	b.Merge(c)
	if b[Working] != 100 || b.Total() != 140 {
		t.Fatalf("after merge: %+v", b)
	}
}

func TestPercentOfEmptyBreakdown(t *testing.T) {
	var b Breakdown
	if b.Percent(Idle) != 0 {
		t.Fatal("empty breakdown should yield 0%")
	}
}

func TestInstrCountsMerge(t *testing.T) {
	a := InstrCounts{Total: 10, Load: 1, Store: 2, Read: 3, Write: 4}
	b := InstrCounts{Total: 5, Load: 5, Read: 1}
	a.Merge(b)
	if a.Total != 15 || a.Load != 6 || a.Read != 4 || a.Write != 4 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestPipelineUsage(t *testing.T) {
	s := SPU{IssuedSlots: 100, Cycles: 100}
	if got := s.PipelineUsage(); got != 0.5 {
		t.Fatalf("usage = %v, want 0.5", got)
	}
	if (SPU{}).PipelineUsage() != 0 {
		t.Fatal("zero-cycle usage should be 0")
	}
}

func TestSPUMerge(t *testing.T) {
	a := SPU{IssuedSlots: 10, Cycles: 20, Threads: 1}
	a.Breakdown.Add(Working, 5)
	b := SPU{IssuedSlots: 30, Cycles: 20, Threads: 2}
	b.Breakdown.Add(Prefetch, 7)
	a.Merge(b)
	if a.IssuedSlots != 40 || a.Cycles != 40 || a.Threads != 3 {
		t.Fatalf("merge = %+v", a)
	}
	if a.Breakdown[Working] != 5 || a.Breakdown[Prefetch] != 7 {
		t.Fatalf("breakdown = %+v", a.Breakdown)
	}
}

func TestBucketNames(t *testing.T) {
	if Working.String() != "Working" || Prefetch.String() != "Prefetching" {
		t.Fatal("bucket names wrong")
	}
	if !strings.Contains(Bucket(99).String(), "99") {
		t.Fatal("unknown bucket should include number")
	}
}

func TestTableRenderAligned(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "23456")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// Column start of "value" must match "1" and "23456" rows.
	col := strings.Index(lines[1], "value")
	if strings.Index(lines[3], "1") != col {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(12.345))
	}
	if Ratio(11.1845) != "11.18x" {
		t.Fatalf("Ratio = %q", Ratio(11.1845))
	}
}

// TestTableJSONGolden pins the Table wire format served by the dtad API
// (internal/service): lowercase title/headers/rows keys. Changing these
// tags breaks cached result documents and API clients.
func TestTableJSONGolden(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", "1")
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"Demo","headers":["name","value"],"rows":[["short","1"]]}`
	if string(data) != want {
		t.Fatalf("table JSON changed:\n got  %s\n want %s", data, want)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	var orig, roundtrip bytes.Buffer
	tbl.Render(&orig)
	back.Render(&roundtrip)
	if orig.String() != roundtrip.String() {
		t.Fatalf("render diverges after JSON round trip:\n%s\nvs\n%s", orig.String(), roundtrip.String())
	}
}
