package stats

import "sort"

// Loc identifies one guest program counter: a template's code block and
// the instruction index within it. The zero Template is valid; idle
// cycles (no thread resident) carry IdleLoc.
type Loc struct {
	Template int32 // program template index (-1: no thread resident)
	Block    uint8 // program.BlockKind
	PC       int32 // instruction index within the block
}

// IdleLoc is the synthetic location idle cycles attribute to.
var IdleLoc = Loc{Template: -1}

type profKey struct {
	Loc   Loc
	Cause Cause
}

// Profile is the per-PC cycle store of the guest profiler: a map from
// (location, cause) to cycles, filled by the SPU's charge paths when
// cell.Config.Profile is set. Like trace.Recorder, a nil *Profile is a
// valid no-op sink — every method nil-checks, so the unprofiled engine
// pays one predictable branch per charge and allocates nothing.
//
// All SPUs of a machine share one Profile (the engine is
// single-threaded), so a machine's profile aggregates across SPEs.
type Profile struct {
	m map[profKey]int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{m: make(map[profKey]int64)}
}

// Add attributes n cycles at loc to cause c. Bulk-friendly: a burst
// window charges once with the window's width, not once per cycle.
func (p *Profile) Add(loc Loc, c Cause, n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.m[profKey{Loc: loc, Cause: c}] += n
}

// Reset clears the store for machine reuse (pool safety: a pooled
// machine must not leak a previous run's samples).
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	clear(p.m)
}

// Len returns the number of distinct (location, cause) samples.
func (p *Profile) Len() int {
	if p == nil {
		return 0
	}
	return len(p.m)
}

// Total returns the cycles across all samples. On a completed run this
// equals the aggregate Breakdown total (both are fed from the same
// charges).
func (p *Profile) Total() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for _, v := range p.m {
		t += v
	}
	return t
}

// LocSample is one location's aggregated cycle attribution.
type LocSample struct {
	Loc    Loc
	Causes CauseBreakdown
	Total  int64
}

// Samples returns the per-location attribution in deterministic
// (template, block, pc) order — the export order of internal/prof, so
// identical runs encode to identical profiles.
func (p *Profile) Samples() []LocSample {
	if p == nil {
		return nil
	}
	byLoc := make(map[Loc]int, len(p.m))
	var out []LocSample
	for k, v := range p.m {
		i, ok := byLoc[k.Loc]
		if !ok {
			i = len(out)
			byLoc[k.Loc] = i
			out = append(out, LocSample{Loc: k.Loc})
		}
		out[i].Causes[k.Cause] += v
		out[i].Total += v
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Loc, out[j].Loc
		if a.Template != b.Template {
			return a.Template < b.Template
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.PC < b.PC
	})
	return out
}

// Causes folds the store by cause (the per-run totals surfaced in
// metrics and tables).
func (p *Profile) Causes() CauseBreakdown {
	var out CauseBreakdown
	if p == nil {
		return out
	}
	for k, v := range p.m {
		out[k.Cause] += v
	}
	return out
}

// Equal reports whether two profiles hold identical samples (both nil
// or both empty count as equal) — the differential suites' comparison.
func (p *Profile) Equal(o *Profile) bool {
	if p.Len() != o.Len() {
		return false
	}
	if p == nil || o == nil {
		return true
	}
	for k, v := range p.m {
		if o.m[k] != v {
			return false
		}
	}
	return true
}
