package workloads

import (
	"repro/internal/program"
	"repro/internal/synth"
)

// The pinned synth corpus is registered alongside the hand-built
// benchmarks, so generated scenarios are first-class workloads:
// buildable by name ("synth/0001".."synth/0032"), runnable through the
// same tooling, and transformable like any other program. Params.Seed
// salts the scenario derivation (the harness default reproduces the
// canonical corpus); N/Workers are ignored — a scenario's shape is the
// generator's business.
func init() {
	for _, seed := range synth.CorpusSeeds() {
		seed := seed
		register(&Workload{
			Name: synth.ExperimentID(seed),
			Description: "generated differential-fuzzing scenario: " +
				synth.FromSeed(seed).Summary(),
			DefaultN: 0,
			Build: func(p Params) (*program.Program, error) {
				return synth.Generate(synth.ScenarioFor(seed, p.Seed))
			},
		})
	}
}
