package workloads

import (
	"fmt"

	"repro/internal/program"
)

// ZoomFactor is the fixed upsampling factor of the zoom benchmark.
const ZoomFactor = 4

func init() {
	register(&Workload{
		Name:        "zoom",
		Description: "image zoom: workers interpolate bands of output rows (paper §4.2)",
		DefaultN:    32,
		Build:       buildZoom,
	})
}

// buildZoom constructs the image-zoom program: an n x n input image is
// upsampled by ZoomFactor into a (4n) x (4n) output using horizontal
// linear interpolation. Each output pixel performs exactly two READs of
// the input and one WRITE of the output, reproducing Table 5's 2:1
// read/write ratio (32768 reads, 16384 writes for n=32). Workers own
// bands of output rows; each band touches a contiguous block of input
// rows, declared as a region for the prefetch transformer.
func buildZoom(p Params) (*program.Program, error) {
	n := p.N
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workloads: zoom size %d must be a positive power of two", n)
	}
	fn := n * ZoomFactor
	T := p.Workers
	if T == 0 {
		T = 16
	}
	if err := checkPow2("zoom", T); err != nil {
		return nil, err
	}
	if T > fn {
		T = fn
	}
	if T > program.MaxFrameSlots {
		T = program.MaxFrameSlots
	}
	orows := fn / T
	// Source rows one band touches: orows/f full rows, or a single row
	// when the band is narrower than the zoom factor (both are powers of
	// two, so a band never straddles a partial row pair).
	span := orows / ZoomFactor
	if span == 0 {
		span = 1
	}

	img := randomInt32s(n*n, p.Seed+3)
	for i := range img {
		img[i] &= 0xFF // 8-bit grayscale pixels
	}
	baseIn, baseOut := int64(arenaA), int64(arenaOut)

	b := program.NewBuilder("zoom")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(program.R(1), 0)
		pl.Movi(program.R(2), 0)
		pl.Movi(program.R(3), int32(T))
		pl.Label("sum")
		pl.Loadx(program.R(4), program.R(2))
		pl.Add(program.R(1), program.R(1), program.R(4))
		pl.Addi(program.R(2), program.R(2), 1)
		pl.Blt(program.R(2), program.R(3), "sum")
		joiner.PS().
			StoreMailbox(program.R(1), program.R(5), 0).
			Ffree().
			Stop()
	}

	worker := b.Template("worker")
	{
		// Frame layout: 0=baseIn 1=baseOut 2=n 3=oy0 4=orows 5=inRow0
		// 6=joinerFP 7=slotIdx.
		// The input band is a 2D object fetched one image row per DMA
		// command.
		rgIn := worker.RegionChunked("inrows",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 0, Scale: 1}, {Slot: 5, Scale: int64(4 * n)},
			}},
			program.SizeConst(int64(4*span*n+8)), 4*span*n+8, 4*n)
		// Output band, write-tagged for the A7 write-back extension.
		rgOut := worker.RegionChunked("outrows",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 1, Scale: 1}, {Slot: 3, Scale: int64(4 * fn)},
			}},
			program.SizeConst(int64(4*orows*fn)), 4*orows*fn, 4*fn)

		pl := worker.PL()
		for i := 0; i < 8; i++ {
			pl.Load(program.R(1+i), i)
		}
		ex := worker.EX()
		rBaseIn, rBaseOut, rN, rOy0 := program.R(1), program.R(2), program.R(3), program.R(4)
		rORows := program.R(5)
		rN4, rFN4, rFN := program.R(9), program.R(10), program.R(24)
		rSum := program.R(11)
		rY, rYEnd := program.R(12), program.R(13)
		rSyOff, rInRow := program.R(14), program.R(15)
		rOutRow := program.R(16)
		rX := program.R(17)
		rAddr, rP1, rP2 := program.R(18), program.R(19), program.R(20)
		rD, rFrac, rOut := program.R(21), program.R(22), program.R(23)

		ex.Shli(rN4, rN, 2)  // input row bytes
		ex.Shli(rFN4, rN, 4) // output row bytes (4n * 4)
		ex.Shli(rFN, rN, 2)  // output pixels per row (4n)
		ex.Movi(rSum, 0)
		ex.Mov(rY, rOy0)
		ex.Add(rYEnd, rOy0, rORows)
		ex.Label("rowloop")
		ex.Srai(rSyOff, rY, 2) // sy = y / 4
		ex.Mul(rInRow, rSyOff, rN4)
		ex.Add(rInRow, rBaseIn, rInRow)
		ex.Mul(rOutRow, rY, rFN4)
		ex.Add(rOutRow, rBaseOut, rOutRow)
		ex.Movi(rX, 0)
		ex.Label("pxloop")
		ex.Srai(rAddr, rX, 2) // sx
		ex.Shli(rAddr, rAddr, 2)
		ex.Add(rAddr, rInRow, rAddr)
		ex.ReadRegion(rgIn, rP1, rAddr, 0)
		ex.ReadRegion(rgIn, rP2, rAddr, 4)
		ex.Sub(rD, rP2, rP1)
		ex.Andi(rFrac, rX, ZoomFactor-1)
		ex.Mul(rD, rD, rFrac)
		ex.Srai(rD, rD, 2) // * frac / 4 (floor)
		ex.Add(rOut, rP1, rD)
		ex.Shli(rAddr, rX, 2)
		ex.Add(rAddr, rOutRow, rAddr)
		ex.WriteRegion(rgOut, rOut, rAddr, 0)
		ex.Add(rSum, rSum, rOut)
		ex.Addi(rX, rX, 1)
		ex.Blt(rX, rFN, "pxloop")
		ex.Addi(rY, rY, 1)
		ex.Blt(rY, rYEnd, "rowloop")

		ps := worker.PS()
		ps.Storex(rSum, program.R(7), program.R(8))
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		pl := root.PL()
		for i := 0; i < 3; i++ {
			pl.Load(program.R(1+i), i) // baseIn baseOut n
		}
		ps := root.PS()
		rJoin := program.R(4)
		rW, rT, rORowsC := program.R(5), program.R(6), program.R(7)
		rChild, rOy0, rInRow0 := program.R(8), program.R(9), program.R(10)
		ps.Falloc(rJoin, joiner, T)
		ps.Movi(rW, 0)
		ps.Movi(rT, int32(T))
		ps.Movi(rORowsC, int32(orows))
		ps.Label("fork")
		ps.Falloc(rChild, worker, 8)
		ps.Store(program.R(1), rChild, 0)
		ps.Store(program.R(2), rChild, 1)
		ps.Store(program.R(3), rChild, 2)
		ps.Mul(rOy0, rW, rORowsC)
		ps.Store(rOy0, rChild, 3)
		ps.Store(rORowsC, rChild, 4)
		ps.Srai(rInRow0, rOy0, 2)
		ps.Store(rInRow0, rChild, 5)
		ps.Store(rJoin, rChild, 6)
		ps.Store(rW, rChild, 7)
		ps.Addi(rW, rW, 1)
		ps.Blt(rW, rT, "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, baseIn, baseOut, int64(n))
	// The input segment is padded by 8 bytes so the right-edge lerp's
	// second read stays in bounds (the reference uses the same padding).
	seg := int32Segment(img)
	seg = append(seg, make([]byte, 8)...)
	b.Segment(baseIn, seg)
	b.ExpectTokens(1)

	ref := refZoom(img, n, ZoomFactor)
	var refToken int64
	for _, v := range ref {
		refToken += int64(v)
	}
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != refToken {
			return fmt.Errorf("zoom: checksum %v, want [%d]", tokens, refToken)
		}
		for i, want := range ref {
			got := mr.Read32(baseOut + int64(4*i))
			if got != int64(want) {
				return fmt.Errorf("zoom: out[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	})
	return b.Build()
}
