package workloads

import "repro/internal/workloads/refcheck"

// The pure-Go reference implementations used by the functional checks
// live in the exported refcheck sub-package (shared with the synth
// subsystem's oracle tests); these aliases keep workload construction
// code terse.

func refMatMul(a, b []int32, n int) []int32 { return refcheck.MatMul(a, b, n) }

func refZoom(in []int32, n, f int) []int32 { return refcheck.Zoom(in, n, f) }

func refBitcount(vals []int32) int64 { return refcheck.Bitcount(vals) }

func refStencil(in []int32, n int) []int32 { return refcheck.Stencil(in, n) }

func byteCountTable() []int32 { return refcheck.ByteCountTable() }

var popcountMasks = refcheck.PopcountMasks
