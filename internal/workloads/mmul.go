package workloads

import (
	"fmt"

	"repro/internal/program"
)

func init() {
	register(&Workload{
		Name:        "mmul",
		Description: "matrix multiply: workers compute blocks of output rows (paper §4.2)",
		DefaultN:    32,
		Build:       buildMmul,
	})
}

// buildMmul constructs the matrix-multiply program: two n x n input
// matrices live in main memory; T worker threads each compute n/T output
// rows, reading matrix elements with READ instructions (2*n^3 in total,
// matching paper Table 5) and posting each result with one WRITE (n^2).
// Region annotations mark each worker's block of A rows and the whole of
// B, so the prefetch transformer can decouple every access.
func buildMmul(p Params) (*program.Program, error) {
	n := p.N
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workloads: mmul size %d must be a positive power of two", n)
	}
	T := p.Workers
	if T == 0 {
		T = 16
	}
	if err := checkPow2("mmul", T); err != nil {
		return nil, err
	}
	if T > n {
		T = n
	}
	if T > program.MaxFrameSlots {
		T = program.MaxFrameSlots
	}
	rows := n / T

	a := randomInt32s(n*n, p.Seed+1)
	bm := randomInt32s(n*n, p.Seed+2)
	for i := range a {
		a[i] &= 0xFFFF // keep checksums within int64 for any n
		bm[i] &= 0xFFFF
	}
	baseA, baseB, baseC := int64(arenaA), int64(arenaB), int64(arenaOut)

	b := program.NewBuilder("mmul")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(program.R(1), 0) // sum
		pl.Movi(program.R(2), 0) // i
		pl.Movi(program.R(3), int32(T))
		pl.Label("sum")
		pl.Loadx(program.R(4), program.R(2))
		pl.Add(program.R(1), program.R(1), program.R(4))
		pl.Addi(program.R(2), program.R(2), 1)
		pl.Blt(program.R(2), program.R(3), "sum")
		joiner.PS().
			StoreMailbox(program.R(1), program.R(5), 0).
			Ffree().
			Stop()
	}

	worker := b.Template("worker")
	{
		// Frame layout: 0=baseA 1=baseB 2=baseC 3=n 4=row0 5=rows
		// 6=joinerFP 7=slotIdx.
		// Both matrices are 2D objects: the DMA fetches them one row per
		// command (paper: "prefetch the entire data structure or only
		// parts of it"), which is where mmul's prefetch overhead comes
		// from (Fig. 5b reports 28%).
		rgA := worker.RegionChunked("Arows",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 0, Scale: 1}, {Slot: 4, Scale: int64(4 * n)},
			}},
			program.SizeConst(int64(4*rows*n)), 4*rows*n, 4*n)
		rgB := worker.RegionChunked("B",
			program.AddrExpr{Terms: []program.AddrTerm{{Slot: 1, Scale: 1}}},
			program.SizeConst(int64(4*n*n)), 4*n*n, 4*n)
		// The output rows are write-tagged: the default transformation
		// leaves the WRITEs posted (as in the paper); the write-back
		// extension (ablation A7) stages them locally and flushes with
		// PS-block DMA PUTs.
		rgC := worker.RegionChunked("Crows",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 2, Scale: 1}, {Slot: 4, Scale: int64(4 * n)},
			}},
			program.SizeConst(int64(4*rows*n)), 4*rows*n, 4*n)

		pl := worker.PL()
		for i := 0; i < 8; i++ {
			pl.Load(program.R(1+i), i)
		}
		ex := worker.EX()
		rBaseA, rBaseB, rBaseC, rN := program.R(1), program.R(2), program.R(3), program.R(4)
		rRow0, rRows, _, _ := program.R(5), program.R(6), program.R(7), program.R(8)
		rN4 := program.R(9)
		rSum := program.R(10)
		rI, rIEnd := program.R(11), program.R(12)
		rJ := program.R(13)
		rARow, rCRow := program.R(14), program.R(15)
		rAcc, rK := program.R(16), program.R(17)
		rAPtr, rBPtr := program.R(18), program.R(19)
		rAV, rBV, rProd, rAddr := program.R(20), program.R(21), program.R(22), program.R(23)

		ex.Shli(rN4, rN, 2)
		ex.Movi(rSum, 0)
		ex.Mov(rI, rRow0)
		ex.Add(rIEnd, rRow0, rRows)
		ex.Label("rowloop")
		ex.Mul(rARow, rI, rN4)
		ex.Add(rCRow, rBaseC, rARow)
		ex.Add(rARow, rBaseA, rARow)
		ex.Movi(rJ, 0)
		ex.Label("colloop")
		ex.Movi(rAcc, 0)
		ex.Movi(rK, 0)
		ex.Mov(rAPtr, rARow)
		ex.Shli(rBPtr, rJ, 2)
		ex.Add(rBPtr, rBaseB, rBPtr)
		ex.Label("dotloop")
		ex.ReadRegion(rgA, rAV, rAPtr, 0)
		ex.ReadRegion(rgB, rBV, rBPtr, 0)
		ex.Mul(rProd, rAV, rBV)
		ex.Add(rAcc, rAcc, rProd)
		ex.Addi(rAPtr, rAPtr, 4)
		ex.Add(rBPtr, rBPtr, rN4)
		ex.Addi(rK, rK, 1)
		ex.Blt(rK, rN, "dotloop")
		ex.Shli(rAddr, rJ, 2)
		ex.Add(rAddr, rCRow, rAddr)
		ex.WriteRegion(rgC, rAcc, rAddr, 0)
		ex.Add(rSum, rSum, rAcc)
		ex.Addi(rJ, rJ, 1)
		ex.Blt(rJ, rN, "colloop")
		ex.Addi(rI, rI, 1)
		ex.Blt(rI, rIEnd, "rowloop")

		ps := worker.PS()
		ps.Storex(rSum, program.R(7), program.R(8))
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		pl := root.PL()
		for i := 0; i < 4; i++ {
			pl.Load(program.R(1+i), i) // baseA baseB baseC n
		}
		ps := root.PS()
		rJoin := program.R(5)
		rW, rT, rRows := program.R(6), program.R(7), program.R(8)
		rChild, rRow0 := program.R(9), program.R(10)
		ps.Falloc(rJoin, joiner, T)
		ps.Movi(rW, 0)
		ps.Movi(rT, int32(T))
		ps.Movi(rRows, int32(rows))
		ps.Label("fork")
		ps.Falloc(rChild, worker, 8)
		ps.Store(program.R(1), rChild, 0)
		ps.Store(program.R(2), rChild, 1)
		ps.Store(program.R(3), rChild, 2)
		ps.Store(program.R(4), rChild, 3)
		ps.Mul(rRow0, rW, rRows)
		ps.Store(rRow0, rChild, 4)
		ps.Store(rRows, rChild, 5)
		ps.Store(rJoin, rChild, 6)
		ps.Store(rW, rChild, 7)
		ps.Addi(rW, rW, 1)
		ps.Blt(rW, rT, "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, baseA, baseB, baseC, int64(n))
	b.Segment(baseA, int32Segment(a))
	b.Segment(baseB, int32Segment(bm))
	b.ExpectTokens(1)

	ref := refMatMul(a, bm, n)
	var refToken int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += int64(a[i*n+k]) * int64(bm[k*n+j])
			}
			refToken += acc
		}
	}
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != refToken {
			return fmt.Errorf("mmul: checksum %v, want [%d]", tokens, refToken)
		}
		for i, want := range ref {
			got := mr.Read32(baseC + int64(4*i))
			if got != int64(want) {
				return fmt.Errorf("mmul: C[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	})
	return b.Build()
}
