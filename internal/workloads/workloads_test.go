package workloads

import (
	"fmt"
	"math/bits"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/synth"
)

func runProg(t *testing.T, spes int, p *program.Program) *cell.Result {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.SPEs = spes
	cfg.MaxCycles = 100_000_000
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CheckErr != nil {
		t.Fatalf("functional check failed: %v", res.CheckErr)
	}
	return res
}

// buildBoth returns the original and prefetching versions of a workload.
func buildBoth(t *testing.T, name string, p Params) (*program.Program, *program.Program) {
	t.Helper()
	w, ok := Get(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	orig, err := w.Build(p)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	pf, err := prefetch.Transform(orig)
	if err != nil {
		t.Fatalf("Transform(%s): %v", name, err)
	}
	return orig, pf
}

func TestRegistry(t *testing.T) {
	want := []string{"bitcnt", "mmul", "stencil", "vecsum", "zoom"}
	var hand []string
	synthCount := 0
	for _, n := range Names() {
		if strings.HasPrefix(n, "synth/") {
			synthCount++
			continue
		}
		hand = append(hand, n)
	}
	if len(hand) != len(want) {
		t.Fatalf("hand-built names = %v", hand)
	}
	for i := range want {
		if hand[i] != want[i] {
			t.Fatalf("hand-built names = %v, want %v", hand, want)
		}
	}
	if synthCount != synth.CorpusSize {
		t.Fatalf("%d synth workloads registered, want %d", synthCount, synth.CorpusSize)
	}
	if _, ok := Get(synth.ExperimentID(1)); !ok {
		t.Fatal("synth corpus workload not addressable by name")
	}
	if _, ok := Get("nonesuch"); ok {
		t.Fatal("Get accepted unknown name")
	}
}

// TestSynthWorkloadBuilds: registry-built synth scenarios validate,
// transform and run like any other workload.
func TestSynthWorkloadBuilds(t *testing.T) {
	w, ok := Get(synth.ExperimentID(2))
	if !ok {
		t.Fatal("synth/0002 not registered")
	}
	_, pf := buildBoth(t, w.Name, Params{Seed: 42})
	runProg(t, 2, pf)
}

func TestAutoWorkers(t *testing.T) {
	cases := []struct{ spes, max, want int }{
		{1, 32, 2},
		{2, 32, 4},
		{8, 32, 16},
		{8, 8, 8},
		{8, 100, 16},
	}
	for _, c := range cases {
		if got := AutoWorkers(c.spes, c.max); got != c.want {
			t.Errorf("AutoWorkers(%d,%d) = %d, want %d", c.spes, c.max, got, c.want)
		}
	}
}

func TestMmulSmallBothVariants(t *testing.T) {
	orig, pf := buildBoth(t, "mmul", Params{N: 8, Workers: 4, Seed: 1})
	a := runProg(t, 2, orig)
	b := runProg(t, 2, pf)
	if a.Tokens[0] != b.Tokens[0] {
		t.Fatalf("checksum differs: %d vs %d", a.Tokens[0], b.Tokens[0])
	}
	// READ counts: 2*n^3 for the original, 0 for prefetched.
	if a.Agg.Instr.Read != 2*8*8*8 {
		t.Fatalf("orig reads = %d, want %d", a.Agg.Instr.Read, 2*8*8*8)
	}
	if b.Agg.Instr.Read != 0 {
		t.Fatalf("prefetched reads = %d, want 0", b.Agg.Instr.Read)
	}
	// WRITE count: n^2 in both.
	if a.Agg.Instr.Write != 64 || b.Agg.Instr.Write != 64 {
		t.Fatalf("writes = %d/%d, want 64", a.Agg.Instr.Write, b.Agg.Instr.Write)
	}
	if b.Cycles >= a.Cycles {
		t.Fatalf("prefetching did not speed up mmul: %d vs %d", b.Cycles, a.Cycles)
	}
}

func TestZoomSmallBothVariants(t *testing.T) {
	orig, pf := buildBoth(t, "zoom", Params{N: 8, Workers: 4, Seed: 2})
	a := runProg(t, 2, orig)
	b := runProg(t, 2, pf)
	if a.Tokens[0] != b.Tokens[0] {
		t.Fatalf("checksum differs")
	}
	out := 8 * ZoomFactor * 8 * ZoomFactor
	if a.Agg.Instr.Read != int64(2*out) {
		t.Fatalf("orig reads = %d, want %d", a.Agg.Instr.Read, 2*out)
	}
	if a.Agg.Instr.Write != int64(out) || b.Agg.Instr.Write != int64(out) {
		t.Fatalf("writes = %d/%d, want %d", a.Agg.Instr.Write, b.Agg.Instr.Write, out)
	}
	if b.Agg.Instr.Read != 0 {
		t.Fatalf("prefetched reads = %d, want 0", b.Agg.Instr.Read)
	}
}

func TestBitcntSmallBothVariants(t *testing.T) {
	orig, pf := buildBoth(t, "bitcnt", Params{N: 200, Chunk: 8, Seed: 3})
	a := runProg(t, 2, orig)
	b := runProg(t, 2, pf)
	if a.Tokens[0] != b.Tokens[0] {
		t.Fatalf("count differs: %d vs %d", a.Tokens[0], b.Tokens[0])
	}
	// Original: 10 READs per value (1 load + 4 table + 5 masks).
	if a.Agg.Instr.Read != 10*200 {
		t.Fatalf("orig reads = %d, want 2000", a.Agg.Instr.Read)
	}
	// Prefetched: only the 4 table lookups stay blocking (40%).
	if b.Agg.Instr.Read != 4*200 {
		t.Fatalf("prefetched reads = %d, want 800", b.Agg.Instr.Read)
	}
	st := prefetch.Analyze(orig, pf)
	frac := st.DecoupledFraction()
	if frac < 0.55 || frac > 0.70 {
		t.Fatalf("static decoupled fraction = %.2f, want ~0.6 (paper: 62%%)", frac)
	}
}

func TestVecsumBothVariants(t *testing.T) {
	orig, pf := buildBoth(t, "vecsum", Params{N: 256, Workers: 4, Seed: 4})
	a := runProg(t, 2, orig)
	b := runProg(t, 2, pf)
	if a.Tokens[0] != b.Tokens[0] {
		t.Fatalf("sum differs")
	}
	if b.Agg.Instr.Read != 0 {
		t.Fatalf("prefetched reads = %d", b.Agg.Instr.Read)
	}
}

// The paper's headline table: instruction-count shape at full size.
// mmul(32): READ = 2*32^3 = 65536, WRITE = 1024 (Table 5).
func TestMmulPaperSizeInstructionCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run")
	}
	orig, _ := buildBoth(t, "mmul", Params{N: 32, Workers: 16, Seed: 5})
	res := runProg(t, 8, orig)
	if res.Agg.Instr.Read != 65536 {
		t.Fatalf("READ = %d, want 65536 (paper Table 5)", res.Agg.Instr.Read)
	}
	if res.Agg.Instr.Write != 1024 {
		t.Fatalf("WRITE = %d, want 1024 (paper Table 5)", res.Agg.Instr.Write)
	}
}

// zoom(32): READ = 32768, WRITE = 16384 (Table 5).
func TestZoomPaperSizeInstructionCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run")
	}
	orig, _ := buildBoth(t, "zoom", Params{N: 32, Workers: 16, Seed: 6})
	res := runProg(t, 8, orig)
	if res.Agg.Instr.Read != 32768 {
		t.Fatalf("READ = %d, want 32768 (paper Table 5)", res.Agg.Instr.Read)
	}
	if res.Agg.Instr.Write != 16384 {
		t.Fatalf("WRITE = %d, want 16384 (paper Table 5)", res.Agg.Instr.Write)
	}
}

func TestBitcntScalesWorkersWithThreads(t *testing.T) {
	// Thread counts: workers + reducers + spawners + joiner + root.
	orig, _ := buildBoth(t, "bitcnt", Params{N: 96, Chunk: 4, Seed: 7})
	res := runProg(t, 4, orig)
	workers := 96 / 4
	groups := (workers + groupMax - 1) / groupMax
	wantThreads := int64(workers + 2*groups + 2)
	if res.Agg.Threads != wantThreads {
		t.Fatalf("threads = %d, want %d", res.Agg.Threads, wantThreads)
	}
}

func TestWorkloadsAcrossSPECounts(t *testing.T) {
	for _, spes := range []int{1, 4, 8} {
		for _, name := range Names() {
			if strings.HasPrefix(name, "synth/") {
				continue // covered by the synth differential corpus
			}
			t.Run(fmt.Sprintf("%s-%dspe", name, spes), func(t *testing.T) {
				p := Params{N: 8, Workers: 4, Seed: 8}
				if name == "bitcnt" {
					p = Params{N: 64, Chunk: 8, Seed: 8}
				}
				if name == "vecsum" {
					p = Params{N: 64, Workers: 4, Seed: 8}
				}
				if name == "stencil" {
					p = Params{N: 10, Workers: 4, Seed: 8}
				}
				_, pf := buildBoth(t, name, p)
				runProg(t, spes, pf)
			})
		}
	}
}

func TestPrefetchingReducesMemStallsAtHighLatency(t *testing.T) {
	orig, pf := buildBoth(t, "mmul", Params{N: 16, Workers: 8, Seed: 9})
	cfg := cell.DefaultConfig()
	cfg.SPEs = 4
	cfg.MaxCycles = 100_000_000
	runWith := func(p *program.Program) *cell.Result {
		m, err := cell.New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.CheckErr != nil {
			t.Fatal(res.CheckErr)
		}
		return res
	}
	a, b := runWith(orig), runWith(pf)
	aStall := a.Agg.Breakdown.Percent(stats.MemStall)
	bStall := b.Agg.Breakdown.Percent(stats.MemStall)
	if bStall > aStall/4 {
		t.Fatalf("prefetching left %.1f%% memory stalls (original %.1f%%)", bStall, aStall)
	}
	if b.Agg.Breakdown[stats.Prefetch] == 0 {
		t.Fatal("no prefetch overhead recorded")
	}
}

func TestReferenceImplementations(t *testing.T) {
	// popcount table sanity.
	tbl := byteCountTable()
	if tbl[0] != 0 || tbl[255] != 8 || tbl[0x0F] != 4 {
		t.Fatalf("byte table wrong: %d %d %d", tbl[0], tbl[255], tbl[0x0F])
	}
	// refBitcount equals 5x popcount.
	vals := []int32{0, 1, 3, 0x7FFFFFFF}
	want := 5 * int64(0+1+2+31)
	if got := refBitcount(vals); got != want {
		t.Fatalf("refBitcount = %d, want %d", got, want)
	}
	// refMatMul identity.
	n := 4
	id := make([]int32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	m := randomInt32s(n*n, 11)
	got := refMatMul(m, id, n)
	for i := range m {
		if got[i] != m[i] {
			t.Fatalf("A*I != A at %d", i)
		}
	}
	// refZoom preserves constant images.
	img := make([]int32, n*n)
	for i := range img {
		img[i] = 9
	}
	z := refZoom(img, n, 4)
	// Interior pixels stay 9; right-edge pixels lerp toward the zero pad.
	if z[0] != 9 || z[5] != 9 {
		t.Fatalf("zoom of constant image: %v", z[:8])
	}
	_ = bits.OnesCount32 // keep math/bits linked for clarity
}

func TestBuildParameterValidation(t *testing.T) {
	w, _ := Get("mmul")
	if _, err := w.Build(Params{N: 7, Workers: 4}); err == nil {
		t.Fatal("accepted non-power-of-two size")
	}
	if _, err := w.Build(Params{N: 8, Workers: 3}); err == nil {
		t.Fatal("accepted non-power-of-two workers")
	}
	wb, _ := Get("bitcnt")
	if _, err := wb.Build(Params{N: 0}); err == nil {
		t.Fatal("accepted zero iterations")
	}
}

func TestStencilBothVariants(t *testing.T) {
	orig, pf := buildBoth(t, "stencil", Params{N: 10, Workers: 4, Seed: 11})
	a := runProg(t, 2, orig)
	b := runProg(t, 2, pf)
	if a.Tokens[0] != b.Tokens[0] {
		t.Fatalf("checksum differs: %d vs %d", a.Tokens[0], b.Tokens[0])
	}
	// 9 reads per interior pixel.
	interior := int64(8 * 8)
	if a.Agg.Instr.Read != 9*interior {
		t.Fatalf("orig reads = %d, want %d", a.Agg.Instr.Read, 9*interior)
	}
	if b.Agg.Instr.Read != 0 {
		t.Fatalf("prefetched reads = %d, want 0", b.Agg.Instr.Read)
	}
	if b.Cycles >= a.Cycles {
		t.Fatalf("prefetching did not speed up stencil: %d vs %d", b.Cycles, a.Cycles)
	}
}

func TestStencilWriteBack(t *testing.T) {
	w, _ := Get("stencil")
	prog, err := w.Build(Params{N: 10, Workers: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := prefetch.TransformWithOptions(prog, prefetch.Options{WriteBack: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runProg(t, 2, wb)
	if res.Agg.Instr.Write != 0 {
		t.Fatalf("write-back left %d WRITEs", res.Agg.Instr.Write)
	}
}

func TestStencilWorkerDivisorAdjustment(t *testing.T) {
	// interior 6 with 4 requested workers -> shrink to 3.
	orig, _ := buildBoth(t, "stencil", Params{N: 8, Workers: 4, Seed: 13})
	res := runProg(t, 2, orig)
	// threads: root + joiner + 3 workers.
	if res.Agg.Threads != 5 {
		t.Fatalf("threads = %d, want 5", res.Agg.Threads)
	}
}
