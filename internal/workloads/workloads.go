// Package workloads provides the paper's three benchmarks — bitcount
// (MiBench), matrix multiply and image zoom (§4.2) — hand-built as DTA
// thread programs through the builder API, plus a small vecsum
// demonstrator. Each workload is constructed once with region
// annotations; running it "original" executes blocking READs, and
// running it through prefetch.Transform executes the paper's DMA
// prefetching version. Every workload carries a functional check against
// a pure-Go reference implementation.
package workloads

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/program"
	"repro/internal/sim"
)

// Params parameterises a workload build.
type Params struct {
	N       int    // problem size: matrix/image dimension, or bitcnt iterations
	Workers int    // number of worker threads (power of two; 0 = caller default)
	Chunk   int    // bitcnt: values per worker thread (0 = default 16)
	Chains  int    // bitcnt: parallel spawner chains (0 = default 1)
	Seed    uint64 // input-data seed
}

// Workload is a named benchmark in the registry.
type Workload struct {
	Name        string
	Description string
	// DefaultN is the paper's problem size for this benchmark.
	DefaultN int
	// Build constructs the (unprefetched) program. Callers transform it
	// with the prefetch package to obtain the prefetching variant.
	Build func(p Params) (*program.Program, error)
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// Get returns a workload by name.
func Get(name string) (*Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AutoWorkers picks the worker-thread count for a machine with spes
// processing elements: the smallest power of two >= 2*spes, capped at
// max (itself rounded down to a power of two). The paper always uses a
// power-of-two thread count (§4.2).
func AutoWorkers(spes, max int) int {
	w := 1
	for w < 2*spes {
		w *= 2
	}
	capped := 1
	for capped*2 <= max {
		capped *= 2
	}
	if w > capped {
		return capped
	}
	return w
}

// Memory map used by all workloads: inputs and outputs live in distinct
// megabyte-aligned arenas of main memory.
const (
	arenaA   = 0x0100_0000
	arenaB   = 0x0200_0000
	arenaOut = 0x0300_0000
	arenaAux = 0x0400_0000
)

// int32Segment serialises 32-bit words little-endian.
func int32Segment(vals []int32) []byte {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

// randomInt32s generates n non-negative pseudo-random 31-bit values.
func randomInt32s(n int, seed uint64) []int32 {
	rng := sim.NewRand(seed)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Uint32() & 0x7FFFFFFF)
	}
	return out
}

// checkPow2 validates a worker count.
func checkPow2(name string, w int) error {
	if w <= 0 || w&(w-1) != 0 {
		return fmt.Errorf("workloads: %s workers %d not a positive power of two", name, w)
	}
	return nil
}
