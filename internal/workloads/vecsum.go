package workloads

import (
	"fmt"

	"repro/internal/program"
)

func init() {
	register(&Workload{
		Name:        "vecsum",
		Description: "parallel vector sum (quickstart demonstrator)",
		DefaultN:    4096,
		Build:       buildVecsum,
	})
}

// buildVecsum constructs a simple data-parallel reduction: T workers
// each sum a contiguous slice of a global int32 vector and a joiner adds
// the partial sums. It is the smallest workload that exercises forking,
// region prefetching and the mailbox, and is used by the quickstart
// example.
func buildVecsum(p Params) (*program.Program, error) {
	n := p.N
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workloads: vecsum size %d must be a positive power of two", n)
	}
	T := p.Workers
	if T == 0 {
		T = 8
	}
	if err := checkPow2("vecsum", T); err != nil {
		return nil, err
	}
	if T > n {
		T = n
	}
	if T > program.MaxFrameSlots {
		T = program.MaxFrameSlots
	}
	per := n / T

	vals := randomInt32s(n, p.Seed+5)
	base := int64(arenaA)

	b := program.NewBuilder("vecsum")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(program.R(1), 0)
		pl.Movi(program.R(2), 0)
		pl.Movi(program.R(3), int32(T))
		pl.Label("sum")
		pl.Loadx(program.R(4), program.R(2))
		pl.Add(program.R(1), program.R(1), program.R(4))
		pl.Addi(program.R(2), program.R(2), 1)
		pl.Blt(program.R(2), program.R(3), "sum")
		joiner.PS().
			StoreMailbox(program.R(1), program.R(5), 0).
			Ffree().
			Stop()
	}

	worker := b.Template("worker")
	{
		// Frame: 0=base 1=start 2=count 3=joinerFP 4=slotIdx.
		rg := worker.Region("slice",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 0, Scale: 1}, {Slot: 1, Scale: 4},
			}},
			program.SizeSlot(2, 4, 0), 4*per)

		pl := worker.PL()
		for i := 0; i < 5; i++ {
			pl.Load(program.R(1+i), i)
		}
		ex := worker.EX()
		rBase, rStart, rCount := program.R(1), program.R(2), program.R(3)
		rSum, rI, rPtr, rV := program.R(10), program.R(11), program.R(12), program.R(13)
		ex.Movi(rSum, 0)
		ex.Movi(rI, 0)
		ex.Shli(rPtr, rStart, 2)
		ex.Add(rPtr, rBase, rPtr)
		ex.Label("loop")
		ex.ReadRegion(rg, rV, rPtr, 0)
		ex.Add(rSum, rSum, rV)
		ex.Addi(rPtr, rPtr, 4)
		ex.Addi(rI, rI, 1)
		ex.Blt(rI, rCount, "loop")
		ps := worker.PS()
		ps.Storex(rSum, program.R(4), program.R(5))
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		pl := root.PL()
		pl.Load(program.R(1), 0) // base
		pl.Load(program.R(2), 1) // n
		ps := root.PS()
		rJoin, rW, rT, rPer, rChild, rStart := program.R(3), program.R(4), program.R(5), program.R(6), program.R(7), program.R(8)
		ps.Falloc(rJoin, joiner, T)
		ps.Movi(rW, 0)
		ps.Movi(rT, int32(T))
		ps.Movi(rPer, int32(per))
		ps.Label("fork")
		ps.Falloc(rChild, worker, 5)
		ps.Store(program.R(1), rChild, 0)
		ps.Mul(rStart, rW, rPer)
		ps.Store(rStart, rChild, 1)
		ps.Store(rPer, rChild, 2)
		ps.Store(rJoin, rChild, 3)
		ps.Store(rW, rChild, 4)
		ps.Addi(rW, rW, 1)
		ps.Blt(rW, rT, "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, base, int64(n))
	b.Segment(base, int32Segment(vals))
	b.ExpectTokens(1)

	var want int64
	for _, v := range vals {
		want += int64(v)
	}
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != want {
			return fmt.Errorf("vecsum: %v, want [%d]", tokens, want)
		}
		return nil
	})
	return b.Build()
}
