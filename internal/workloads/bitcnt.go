package workloads

import (
	"fmt"

	"repro/internal/program"
)

func init() {
	register(&Workload{
		Name: "bitcnt",
		Description: "MiBench bitcount: five counting methods per value, " +
			"hierarchical forking (paper §4.2)",
		DefaultN: 10000,
		Build:    buildBitcnt,
	})
}

// groupMax bounds workers per reduction group (a reducer frame holds 3
// argument slots plus one result slot per worker).
const groupMax = 24

// buildBitcnt constructs the bitcount program. N pseudo-random values in
// main memory are processed by worker threads (Chunk values each); every
// value's bits are counted five ways, mirroring MiBench's multi-method
// structure:
//
//   - a 256-entry byte-table lookup (4 data-dependent READs per value
//     that are NOT annotated: the paper leaves them blocking because
//     prefetching a whole table for one element is not worthwhile);
//   - Kernighan bit-clearing (pure compute);
//   - mask folding with five constants READ from a global array
//     (annotated, prefetchable), plus the value load itself
//     (annotated, prefetchable);
//   - a shift-and-test sweep over all 31 value bits (pure compute,
//     mirroring MiBench's heavy per-iteration instruction count).
//
// That makes 6 of 10 READs per value decoupled (~60%), reproducing the
// paper's "62% of READ instructions" for bitcnt. Forking is hierarchical
// (root -> group spawners -> workers + reducers -> joiner) so thread
// creation floods the scheduler from many PEs at once — the behaviour
// behind the paper's bitcnt LSE stalls.
func buildBitcnt(p Params) (*program.Program, error) {
	iters := p.N
	if iters <= 0 {
		return nil, fmt.Errorf("workloads: bitcnt iterations %d", iters)
	}
	chunk := p.Chunk
	if chunk <= 0 {
		chunk = 16
	}
	chains := p.Chains
	if chains <= 0 {
		chains = 1
	}
	// Grow the chunk until the two-level reduction tree fits.
	for (iters+chunk-1)/chunk > groupMax*program.MaxFrameSlots {
		chunk *= 2
	}
	workers := (iters + chunk - 1) / chunk
	groups := (workers + groupMax - 1) / groupMax
	if chains > groups {
		chains = groups
	}

	vals := randomInt32s(iters, p.Seed+4)
	baseVals, baseTbl := int64(arenaA), int64(arenaB)
	baseMasks, baseOut := int64(arenaAux), int64(arenaOut)

	b := program.NewBuilder("bitcnt")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(program.R(1), 0)
		pl.Movi(program.R(2), 0)
		pl.Movi(program.R(3), int32(groups))
		pl.Label("sum")
		pl.Loadx(program.R(4), program.R(2))
		pl.Add(program.R(1), program.R(1), program.R(4))
		pl.Addi(program.R(2), program.R(2), 1)
		pl.Blt(program.R(2), program.R(3), "sum")
		joiner.PS().
			StoreMailbox(program.R(1), program.R(5), 0).
			Ffree().
			Stop()
	}

	reducer := b.Template("reducer")
	{
		// Frame: 0=joinerFP 1=groupSlot 2=count, results in 3..3+count-1.
		pl := reducer.PL()
		pl.Load(program.R(1), 0)
		pl.Load(program.R(2), 1)
		pl.Load(program.R(3), 2)
		pl.Movi(program.R(4), 0) // sum
		pl.Movi(program.R(5), 3) // slot cursor
		pl.Addi(program.R(6), program.R(3), 3)
		pl.Label("sum")
		pl.Loadx(program.R(7), program.R(5))
		pl.Add(program.R(4), program.R(4), program.R(7))
		pl.Addi(program.R(5), program.R(5), 1)
		pl.Blt(program.R(5), program.R(6), "sum")
		ps := reducer.PS()
		ps.Storex(program.R(4), program.R(1), program.R(2))
		ps.Ffree()
		ps.Stop()
	}

	worker := b.Template("worker")
	{
		// Frame: 0=baseVals 1=baseTbl 2=baseMasks 3=v0 4=cnt 5=reducerFP
		// 6=resultSlot.
		rgVals := worker.Region("values",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 0, Scale: 1}, {Slot: 3, Scale: 4},
			}},
			program.SizeSlot(4, 4, 0), 4*chunk)
		rgMasks := worker.Region("masks",
			program.AddrExpr{Terms: []program.AddrTerm{{Slot: 2, Scale: 1}}},
			program.SizeConst(int64(4*len(popcountMasks))), 4*len(popcountMasks))

		pl := worker.PL()
		for i := 0; i < 7; i++ {
			pl.Load(program.R(1+i), i)
		}
		ex := worker.EX()
		rBaseVals, rBaseTbl, rBaseMasks := program.R(1), program.R(2), program.R(3)
		rV0, rCnt := program.R(4), program.R(5)
		rTotal, rI, rPtr := program.R(10), program.R(11), program.R(12)
		rV, rByte, rT := program.R(13), program.R(14), program.R(15)
		rK, rKC, rKT := program.R(16), program.R(17), program.R(18)
		rM1, rM2, rM3, rM4, rM5 := program.R(19), program.R(20), program.R(21), program.R(22), program.R(23)
		rX, rTmp := program.R(24), program.R(25)

		ex.Movi(rTotal, 0)
		ex.Movi(rI, 0)
		ex.Shli(rPtr, rV0, 2)
		ex.Add(rPtr, rBaseVals, rPtr)
		ex.Label("vloop")
		ex.ReadRegion(rgVals, rV, rPtr, 0)

		// Method 1: byte-table lookups (4 bytes, data-dependent indices:
		// deliberately NOT annotated -> they stay blocking READs).
		for byteIdx := 0; byteIdx < 4; byteIdx++ {
			if byteIdx == 0 {
				ex.Andi(rByte, rV, 255)
			} else {
				ex.Shri(rByte, rV, int32(8*byteIdx))
				ex.Andi(rByte, rByte, 255)
			}
			ex.Shli(rByte, rByte, 2)
			ex.Add(rByte, rBaseTbl, rByte)
			ex.Read(rT, rByte, 0)
			ex.Add(rTotal, rTotal, rT)
		}

		// Method 2: Kernighan clearing loop.
		ex.Mov(rK, rV)
		ex.Movi(rKC, 0)
		ex.Label("kern")
		ex.Beq(rK, program.R0, "kdone")
		ex.Subi(rKT, rK, 1)
		ex.And(rK, rK, rKT)
		ex.Addi(rKC, rKC, 1)
		ex.Jmp("kern")
		ex.Label("kdone")
		ex.Add(rTotal, rTotal, rKC)

		// Method 3: mask folding; the five constants live in global
		// memory and are annotated (prefetchable).
		ex.ReadRegion(rgMasks, rM1, rBaseMasks, 0)
		ex.ReadRegion(rgMasks, rM2, rBaseMasks, 4)
		ex.ReadRegion(rgMasks, rM3, rBaseMasks, 8)
		ex.ReadRegion(rgMasks, rM4, rBaseMasks, 12)
		ex.ReadRegion(rgMasks, rM5, rBaseMasks, 16)
		ex.Shri(rTmp, rV, 1)
		ex.And(rTmp, rTmp, rM1)
		ex.Sub(rX, rV, rTmp) // x = v - ((v>>1)&m1)
		ex.Shri(rTmp, rX, 2)
		ex.And(rTmp, rTmp, rM2)
		ex.And(rX, rX, rM2)
		ex.Add(rX, rX, rTmp) // x = (x&m2) + ((x>>2)&m2)
		ex.Shri(rTmp, rX, 4)
		ex.Add(rX, rX, rTmp)
		ex.And(rX, rX, rM3) // x = (x + x>>4) & m3
		ex.Shri(rTmp, rX, 8)
		ex.And(rTmp, rTmp, rM4)
		ex.And(rX, rX, rM4)
		ex.Add(rX, rX, rTmp) // fold bytes
		ex.Shri(rTmp, rX, 16)
		ex.And(rTmp, rTmp, rM5)
		ex.And(rX, rX, rM5)
		ex.Add(rX, rX, rTmp) // fold halfwords
		ex.Add(rTotal, rTotal, rX)

		// Method 4: arithmetic pairwise-sum count with a byte-fold loop
		// (pure compute, in the spirit of MiBench's ntbl/AR variants).
		ex.Shri(rTmp, rV, 1)
		ex.Movi(rByte, 0x55555555)
		ex.And(rTmp, rTmp, rByte)
		ex.Sub(rX, rV, rTmp) // 2-bit pair sums
		ex.Shri(rTmp, rX, 2)
		ex.Movi(rByte, 0x33333333)
		ex.And(rTmp, rTmp, rByte)
		ex.And(rX, rX, rByte)
		ex.Add(rX, rX, rTmp) // 4-bit sums
		ex.Shri(rTmp, rX, 4)
		ex.Add(rX, rX, rTmp)
		ex.Movi(rByte, 0x0F0F0F0F)
		ex.And(rX, rX, rByte) // per-byte counts
		ex.Movi(rT, 0)        // method accumulator
		ex.Label("hakfold")
		ex.Andi(rTmp, rX, 255)
		ex.Add(rT, rT, rTmp)
		ex.Shri(rX, rX, 8)
		ex.Bne(rX, program.R0, "hakfold")
		ex.Add(rTotal, rTotal, rT)

		// Method 5: shift-and-test every bit (pure compute).
		ex.Mov(rK, rV)
		ex.Movi(rKC, 0)
		ex.Movi(rKT, 31)
		ex.Label("shiftloop")
		ex.Andi(rTmp, rK, 1)
		ex.Add(rKC, rKC, rTmp)
		ex.Shri(rK, rK, 1)
		ex.Subi(rKT, rKT, 1)
		ex.Bne(rKT, program.R0, "shiftloop")
		ex.Add(rTotal, rTotal, rKC)

		ex.Addi(rPtr, rPtr, 4)
		ex.Addi(rI, rI, 1)
		ex.Blt(rI, rCnt, "vloop")

		// Publish the worker's partial count to the output array too
		// (bitcnt's WRITE traffic in Table 5), indexed by the global
		// worker number v0/chunk.
		ex.Movi(rK, int32(chunk))
		ex.Div(rTmp, rV0, rK)
		ex.Shli(rTmp, rTmp, 2)
		ex.Movi(rX, int32(baseOut))
		ex.Add(rTmp, rX, rTmp)
		ex.Write(rTotal, rTmp, 0)

		ps := worker.PS()
		ps.Storex(rTotal, program.R(6), program.R(7))
		ps.Ffree()
		ps.Stop()
	}

	spawner := b.Template("spawner")
	{
		// Frame: 0=baseVals 1=baseTbl 2=baseMasks 3=g 4=joinerFP 5=iters.
		//
		// Spawners are continuation-chained: each forks its group's
		// reducer and workers, then forks the NEXT spawner. Eager
		// forking of all groups from the root would exhaust the frame
		// memory on small machines and deadlock (blocking FALLOC holds
		// the pipeline while every frame is owned by a not-yet-run
		// thread); chaining bounds live frames to about one group.
		pl := spawner.PL()
		for i := 0; i < 6; i++ {
			pl.Load(program.R(1+i), i)
		}
		ps := spawner.PS()
		rG, rJoin, rIters := program.R(4), program.R(5), program.R(6)
		rGw0, rGnw := program.R(7), program.R(8)
		rRed, rRedSC, rTmplID := program.R(9), program.R(10), program.R(11)
		rI, rW, rV0, rRem, rCnt := program.R(12), program.R(13), program.R(14), program.R(15), program.R(16)
		rChild, rChunk, rSlot := program.R(17), program.R(18), program.R(19)
		rNext, rGroups := program.R(20), program.R(21)

		ps.Movi(rChunk, int32(chunk))
		ps.Muli(rGw0, rG, groupMax)
		ps.Movi(rGnw, groupMax)
		ps.Movi(rRem, int32(workers))
		ps.Sub(rRem, rRem, rGw0) // workers remaining from gw0
		ps.Bge(rGnw, rRem, "clampg")
		ps.Jmp("sized")
		ps.Label("clampg")
		ps.Mov(rGnw, rRem)
		ps.Label("sized")

		ps.Movi(rTmplID, int32(reducer.ID()))
		ps.Addi(rRedSC, rGnw, 3)
		ps.Fallocx(rRed, rTmplID, rRedSC)
		ps.Store(rJoin, rRed, 0)
		ps.Store(rG, rRed, 1)
		ps.Store(rGnw, rRed, 2)

		ps.Movi(rI, 0)
		ps.Label("fork")
		ps.Add(rW, rGw0, rI) // global worker index
		ps.Mul(rV0, rW, rChunk)
		ps.Sub(rRem, rIters, rV0)
		ps.Mov(rCnt, rChunk)
		ps.Bge(rChunk, rRem, "clamp") // chunk >= rem ? cnt = rem
		ps.Jmp("forked")
		ps.Label("clamp")
		ps.Mov(rCnt, rRem)
		ps.Label("forked")
		ps.Falloc(rChild, worker, 7)
		ps.Store(program.R(1), rChild, 0)
		ps.Store(program.R(2), rChild, 1)
		ps.Store(program.R(3), rChild, 2)
		ps.Store(rV0, rChild, 3)
		ps.Store(rCnt, rChild, 4)
		ps.Store(rRed, rChild, 5)
		ps.Addi(rSlot, rI, 3)
		ps.Store(rSlot, rChild, 6)
		ps.Addi(rI, rI, 1)
		ps.Blt(rI, rGnw, "fork")

		// Chain to this chain's next group (stride = number of chains).
		ps.Movi(rGroups, int32(groups))
		ps.Addi(rNext, rG, int32(chains))
		ps.Bge(rNext, rGroups, "done")
		ps.Falloc(rChild, spawner, 6)
		ps.Store(program.R(1), rChild, 0)
		ps.Store(program.R(2), rChild, 1)
		ps.Store(program.R(3), rChild, 2)
		ps.Store(rNext, rChild, 3)
		ps.Store(rJoin, rChild, 4)
		ps.Store(rIters, rChild, 5)
		ps.Label("done")
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		// Entry args: 0=baseVals 1=baseTbl 2=baseMasks 3=iters. The root
		// only starts the joiner and the first spawner; the spawner
		// chain does the rest.
		pl := root.PL()
		for i := 0; i < 4; i++ {
			pl.Load(program.R(1+i), i)
		}
		ps := root.PS()
		rJoin, rChild := program.R(5), program.R(6)
		rC, rChains := program.R(7), program.R(8)
		ps.Falloc(rJoin, joiner, groups)
		ps.Movi(rC, 0)
		ps.Movi(rChains, int32(chains))
		ps.Label("fork")
		ps.Falloc(rChild, spawner, 6)
		ps.Store(program.R(1), rChild, 0)
		ps.Store(program.R(2), rChild, 1)
		ps.Store(program.R(3), rChild, 2)
		ps.Store(rC, rChild, 3) // first group of this chain
		ps.Store(rJoin, rChild, 4)
		ps.Store(program.R(4), rChild, 5)
		ps.Addi(rC, rC, 1)
		ps.Blt(rC, rChains, "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, baseVals, baseTbl, baseMasks, int64(iters))
	b.Segment(baseVals, int32Segment(vals))
	b.Segment(baseTbl, int32Segment(byteCountTable()))
	b.Segment(baseMasks, int32Segment(popcountMasks))
	b.ExpectTokens(1)

	refToken := refBitcount(vals)
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != refToken {
			return fmt.Errorf("bitcnt: total %v, want [%d]", tokens, refToken)
		}
		return nil
	})
	return b.Build()
}
