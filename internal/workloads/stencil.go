package workloads

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/workloads/refcheck"
)

func init() {
	register(&Workload{
		Name: "stencil",
		Description: "3x3 Gaussian blur with halo rows (extension workload: " +
			"9 reads + 1 write per interior pixel)",
		DefaultN: 34, // 32x32 interior
		Build:    buildStencil,
	})
}

// stencilWeights is the 3x3 Gaussian kernel (sum 16; output >> 4),
// shared with the reference implementation in refcheck.
var stencilWeights = refcheck.StencilWeights

// buildStencil constructs a banded 3x3 convolution: T workers each blur
// a band of interior rows, reading their band plus one halo row on each
// side (a region with a negative constant offset — the halo) and writing
// the band's full output rows (borders zeroed explicitly so the band is
// fully covered, which makes the output write-back-able under ablation
// A7). It extends the paper's evaluation with a kernel whose region
// geometry is not a simple rectangle copy.
func buildStencil(p Params) (*program.Program, error) {
	n := p.N
	if n < 4 {
		return nil, fmt.Errorf("workloads: stencil size %d too small", n)
	}
	interior := n - 2
	T := p.Workers
	if T == 0 {
		T = 16
	}
	// Shrink to a divisor of the interior height (stencil bands need
	// equal constant heights for constant-size regions).
	for T > 1 && interior%T != 0 {
		T--
	}
	if T > program.MaxFrameSlots {
		return nil, fmt.Errorf("workloads: stencil workers %d exceed joiner fan-in", T)
	}
	rows := interior / T
	n4 := 4 * n

	img := randomInt32s(n*n, p.Seed+6)
	for i := range img {
		img[i] &= 0xFF
	}
	baseIn, baseOut := int64(arenaA), int64(arenaOut)

	b := program.NewBuilder("stencil")

	joiner := b.Template("joiner")
	{
		pl := joiner.PL()
		pl.Movi(program.R(1), 0)
		pl.Movi(program.R(2), 0)
		pl.Movi(program.R(3), int32(T))
		pl.Label("sum")
		pl.Loadx(program.R(4), program.R(2))
		pl.Add(program.R(1), program.R(1), program.R(4))
		pl.Addi(program.R(2), program.R(2), 1)
		pl.Blt(program.R(2), program.R(3), "sum")
		joiner.PS().
			StoreMailbox(program.R(1), program.R(5), 0).
			Ffree().
			Stop()
	}

	worker := b.Template("worker")
	{
		// Frame: 0=baseIn 1=baseOut 2=n 3=row0 (first interior row of
		// the band) 4=joinerFP 5=slotIdx.
		// Input band including halo rows: starts one row above row0.
		rgIn := worker.RegionChunked("band",
			program.AddrExpr{
				Const: int64(-n4),
				Terms: []program.AddrTerm{
					{Slot: 0, Scale: 1}, {Slot: 3, Scale: int64(n4)},
				},
			},
			program.SizeConst(int64((rows+2)*n4)), (rows+2)*n4, n4)
		rgOut := worker.RegionChunked("out",
			program.AddrExpr{Terms: []program.AddrTerm{
				{Slot: 1, Scale: 1}, {Slot: 3, Scale: int64(n4)},
			}},
			program.SizeConst(int64(rows*n4)), rows*n4, n4)

		pl := worker.PL()
		for i := 0; i < 6; i++ {
			pl.Load(program.R(1+i), i)
		}
		ex := worker.EX()
		rBaseIn, rBaseOut, rN, rRow0 := program.R(1), program.R(2), program.R(3), program.R(4)
		rN4 := program.R(9)
		rSum := program.R(10)
		rY, rYEnd := program.R(11), program.R(12)
		rInRow, rOutRow := program.R(13), program.R(14)
		rX, rXEnd := program.R(15), program.R(16)
		rPix, rAcc, rV := program.R(17), program.R(18), program.R(19)
		rAddr, rZero := program.R(20), program.R(21)

		ex.Shli(rN4, rN, 2)
		ex.Movi(rSum, 0)
		ex.Movi(rZero, 0)
		ex.Mov(rY, rRow0)
		ex.Addi(rYEnd, rRow0, int32(rows))
		ex.Label("rowloop")
		// rInRow: address of In[y-1][0]; rOutRow: address of Out[y][0].
		ex.Subi(rInRow, rY, 1)
		ex.Mul(rInRow, rInRow, rN4)
		ex.Add(rInRow, rBaseIn, rInRow)
		ex.Mul(rOutRow, rY, rN4)
		ex.Add(rOutRow, rBaseOut, rOutRow)
		// Zero the band's border pixels so output rows are fully
		// covered (required for write-back flushing whole rows).
		ex.WriteRegion(rgOut, rZero, rOutRow, 0)
		ex.Subi(rAddr, rN, 1)
		ex.Shli(rAddr, rAddr, 2)
		ex.Add(rAddr, rOutRow, rAddr)
		ex.WriteRegion(rgOut, rZero, rAddr, 0)
		ex.Movi(rX, 1)
		ex.Subi(rXEnd, rN, 1)
		ex.Label("pxloop")
		// rPix: address of In[y-1][x-1].
		ex.Shli(rPix, rX, 2)
		ex.Add(rPix, rInRow, rPix)
		ex.Subi(rPix, rPix, 4)
		ex.Movi(rAcc, 0)
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				off := int32(dy*n4 + dx*4)
				ex.ReadRegion(rgIn, rV, rPix, off)
				switch stencilWeights[dy][dx] {
				case 2:
					ex.Shli(rV, rV, 1)
				case 4:
					ex.Shli(rV, rV, 2)
				}
				ex.Add(rAcc, rAcc, rV)
			}
		}
		ex.Srai(rAcc, rAcc, 4) // / 16
		ex.Shli(rAddr, rX, 2)
		ex.Add(rAddr, rOutRow, rAddr)
		ex.WriteRegion(rgOut, rAcc, rAddr, 0)
		ex.Add(rSum, rSum, rAcc)
		ex.Addi(rX, rX, 1)
		ex.Blt(rX, rXEnd, "pxloop")
		ex.Addi(rY, rY, 1)
		ex.Blt(rY, rYEnd, "rowloop")

		ps := worker.PS()
		ps.Storex(rSum, program.R(5), program.R(6))
		ps.Ffree()
		ps.Stop()
	}

	root := b.Template("root")
	{
		pl := root.PL()
		for i := 0; i < 3; i++ {
			pl.Load(program.R(1+i), i) // baseIn baseOut n
		}
		ps := root.PS()
		rJoin := program.R(4)
		rW, rT, rRows := program.R(5), program.R(6), program.R(7)
		rChild, rRow0 := program.R(8), program.R(9)
		ps.Falloc(rJoin, joiner, T)
		ps.Movi(rW, 0)
		ps.Movi(rT, int32(T))
		ps.Movi(rRows, int32(rows))
		ps.Label("fork")
		ps.Falloc(rChild, worker, 6)
		ps.Store(program.R(1), rChild, 0)
		ps.Store(program.R(2), rChild, 1)
		ps.Store(program.R(3), rChild, 2)
		ps.Mul(rRow0, rW, rRows)
		ps.Addi(rRow0, rRow0, 1) // interior starts at row 1
		ps.Store(rRow0, rChild, 3)
		ps.Store(rJoin, rChild, 4)
		ps.Store(rW, rChild, 5)
		ps.Addi(rW, rW, 1)
		ps.Blt(rW, rT, "fork")
		ps.Ffree()
		ps.Stop()
	}

	b.Entry(root, baseIn, baseOut, int64(n))
	b.Segment(baseIn, int32Segment(img))
	b.ExpectTokens(1)

	ref := refStencil(img, n)
	var refToken int64
	for _, v := range ref {
		refToken += int64(v)
	}
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != refToken {
			return fmt.Errorf("stencil: checksum %v, want [%d]", tokens, refToken)
		}
		for i, want := range ref {
			got := mr.Read32(baseOut + int64(4*i))
			if got != int64(want) {
				return fmt.Errorf("stencil: out[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	})
	return b.Build()
}
