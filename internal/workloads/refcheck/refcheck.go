// Package refcheck holds the pure-Go reference implementations that the
// workloads' functional checks compare simulated results against. They
// live in their own package so that every consumer of "what should this
// program compute" — the hand-built workloads, the synth subsystem's
// oracle tests, and any future checker — shares one implementation of
// the tricky semantics (int32 wrap-around through 64-bit registers,
// arithmetic-shift floor division) instead of re-deriving them.
package refcheck

import "math/bits"

// MatMul computes C = A x B for n x n row-major int32 matrices with
// wrap-around int32 arithmetic (matching the SPU's 64-bit registers
// truncated through 32-bit memory writes).
func MatMul(a, b []int32, n int) []int32 {
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += int64(a[i*n+k]) * int64(b[k*n+j])
			}
			c[i*n+j] = int32(acc)
		}
	}
	return c
}

// Zoom upsamples an n x n image by power-of-two factor f with the
// benchmark's horizontal-lerp rule: out[y][x] interpolates between
// in[sy][sx] and the next linear pixel (the input array is padded with
// zeros past the end, mirroring the workload's memory layout). The
// fractional division uses an arithmetic shift — floor semantics,
// exactly as the SPU's SRAI computes it.
func Zoom(in []int32, n, f int) []int32 {
	shift := 0
	for 1<<shift < f {
		shift++
	}
	fn := n * f
	padded := make([]int32, n*n+2)
	copy(padded, in)
	out := make([]int32, fn*fn)
	for y := 0; y < fn; y++ {
		sy := y / f
		for x := 0; x < fn; x++ {
			sx := x / f
			p1 := padded[sy*n+sx]
			p2 := padded[sy*n+sx+1]
			frac := int32(x % f)
			out[y*fn+x] = p1 + (p2-p1)*frac>>shift
		}
	}
	return out
}

// Bitcount returns the bitcnt workload's expected total: each value's
// bits are counted by five independent methods (byte-table lookup,
// Kernighan clearing, mask folding, arithmetic pair sums,
// shift-and-test), so the total is 5x the popcount sum.
func Bitcount(vals []int32) int64 {
	var total int64
	for _, v := range vals {
		total += 5 * int64(bits.OnesCount32(uint32(v)))
	}
	return total
}

// ByteCountTable is the MiBench-style 256-entry bits-per-byte table.
func ByteCountTable() []int32 {
	t := make([]int32, 256)
	for i := range t {
		t[i] = int32(bits.OnesCount8(uint8(i)))
	}
	return t
}

// PopcountMasks are the five fold constants read from global memory by
// the mask-based counting method.
var PopcountMasks = []int32{
	0x55555555,
	0x33333333,
	0x0F0F0F0F,
	0x00FF00FF,
	0x0000FFFF,
}

// StencilWeights is the 3x3 Gaussian kernel used by the stencil
// workload (weights sum to 16; outputs are shifted right by 4).
var StencilWeights = [3][3]int32{
	{1, 2, 1},
	{2, 4, 2},
	{1, 2, 1},
}

// Stencil blurs the interior of an n x n image with the 3x3 Gaussian
// kernel (borders stay zero), matching the stencil workload's
// shift-based arithmetic.
func Stencil(in []int32, n int) []int32 {
	out := make([]int32, n*n)
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			var acc int32
			for dy := 0; dy < 3; dy++ {
				for dx := 0; dx < 3; dx++ {
					acc += StencilWeights[dy][dx] * in[(y+dy-1)*n+x+dx-1]
				}
			}
			out[y*n+x] = acc >> 4
		}
	}
	return out
}
