package batch

import (
	"fmt"
	"reflect"
	"testing"
)

// sliceFeed serves tasks from a slice, honouring the Feed contract.
func sliceFeed(tasks []Task) Feed {
	next := 0
	return func(block bool) (Task, bool) {
		if next >= len(tasks) {
			return nil, false
		}
		t := tasks[next]
		next++
		return t, true
	}
}

// TestRunInterleavesRoundRobin pins the deterministic schedule: three
// tasks of different lengths at width 2, recording every slice. Task C
// must enter only when a slot frees, and slices must rotate in
// admission order.
func TestRunInterleavesRoundRobin(t *testing.T) {
	var trace []string
	mk := func(name string, slices int) Task {
		return func(yield func()) {
			for i := 0; i < slices; i++ {
				trace = append(trace, fmt.Sprintf("%s%d", name, i))
				if i < slices-1 {
					yield()
				}
			}
		}
	}
	Run(2, sliceFeed([]Task{mk("a", 3), mk("b", 1), mk("c", 2)}))
	want := []string{
		"a0", "b0", // round 1: a and b admitted; b finishes
		"a1", "c0", // round 2: c takes b's slot
		"a2", "c1", // round 3: both finish
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestRunSharesStateSafely increments an unguarded counter from many
// fibers across many yields — the cooperative scheduling (one runnable
// fiber, channel handoffs) must make this race-free. Run under -race
// this is the lock-free-sharing contract.
func TestRunSharesStateSafely(t *testing.T) {
	counter := 0
	var tasks []Task
	for i := 0; i < 16; i++ {
		tasks = append(tasks, func(yield func()) {
			for j := 0; j < 100; j++ {
				counter++
				yield()
			}
		})
	}
	Run(4, sliceFeed(tasks))
	if counter != 16*100 {
		t.Fatalf("counter = %d, want %d", counter, 16*100)
	}
}

// TestRunWidthClamp: width < 1 degenerates to sequential draining.
func TestRunWidthClamp(t *testing.T) {
	var order []int
	var tasks []Task
	for i := 0; i < 3; i++ {
		i := i
		tasks = append(tasks, func(yield func()) {
			order = append(order, i)
			yield()
			order = append(order, i)
		})
	}
	Run(0, sliceFeed(tasks))
	want := []int{0, 0, 1, 1, 2, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestRunPropagatesPanic: an uncontained task panic surfaces on the
// scheduler's goroutine.
func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Run(2, sliceFeed([]Task{func(yield func()) { panic("boom") }}))
	t.Fatal("Run returned despite panicking task")
}

// TestFeedChan covers the channel adapter: a producer that closes the
// channel ends the stream, and every sent item runs exactly once.
func TestFeedChan(t *testing.T) {
	ch := make(chan int)
	go func() {
		for i := 0; i < 20; i++ {
			ch <- i
		}
		close(ch)
	}()
	seen := make(map[int]int)
	Run(3, FeedChan(ch, func(i int) Task {
		return func(yield func()) {
			yield()
			seen[i]++
		}
	}))
	if len(seen) != 20 {
		t.Fatalf("saw %d items, want 20", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("item %d ran %d times", i, n)
		}
	}
}

// TestRunEmptyFeed returns immediately.
func TestRunEmptyFeed(t *testing.T) {
	Run(4, sliceFeed(nil))
}
