// Package batch provides a deterministic cooperative interleaver: up
// to width tasks run "simultaneously" on ONE goroutine-equivalent
// schedule, each advancing between its own yield points while the
// others are parked. Exactly one fiber is runnable at any instant and
// control transfers through channels (which establish happens-before),
// so fibers may freely share per-worker state — a cell.Pool, run
// caches — with zero locking, exactly like straight-line code.
//
// This is the execution model behind batched sweeps: a worker
// goroutine interleaves K simulations in bounded slices (see
// cell.Machine.RunSliced), keeping K hot working sets resident without
// spawning K goroutines or giving up determinism — the interleaving is
// a pure function of the feed order and each task's yield pattern.
package batch

import (
	"sync/atomic"
	"time"
)

// Process-wide scheduler counters aggregated across every Run (workers
// are per-goroutine, so per-instance counters cannot be scraped).
// Exposed as dtad_batch_* by the service's metrics registry.
var (
	// TasksStarted counts fibers admitted to a scheduler round.
	TasksStarted atomic.Int64
	// TasksFinished counts fibers that ran to completion.
	TasksFinished atomic.Int64
	// Runnable is the number of live fibers across all Run loops.
	Runnable atomic.Int64
	// Slices counts fiber advances (one slice: resume to yield/finish).
	Slices atomic.Int64
	// SliceNanos accumulates wall-clock time spent inside slices.
	SliceNanos atomic.Int64
)

// Task is one cooperative unit of work. It runs on its own fiber; the
// yield argument parks the fiber and hands control to the next one in
// the round-robin. Code between yields executes atomically with
// respect to the other fibers of the same Run.
type Task func(yield func())

// Feed supplies tasks to Run. block reports whether the feed may wait
// for a task to become available: Run passes block == true only when
// no fiber is in flight, so waiting cannot stall admitted work. A
// false ok from a blocking call ends the stream permanently; from a
// non-blocking call it just means nothing is ready right now.
type Feed func(block bool) (Task, bool)

// FeedChan adapts a channel of work items to a Feed, wrapping each
// received item in a Task via mk. Blocking calls wait on the channel;
// non-blocking calls poll it. A closed channel ends the stream.
func FeedChan[T any](ch <-chan T, mk func(T) Task) Feed {
	return func(block bool) (Task, bool) {
		var v T
		var ok bool
		if block {
			v, ok = <-ch
		} else {
			select {
			case v, ok = <-ch:
			default:
				return nil, false
			}
		}
		if !ok {
			return nil, false
		}
		return mk(v), true
	}
}

// fiber is one task's goroutine plus its scheduling channels. The
// scheduler owns `resume`; the fiber reports back on `state` (true =
// yielded, false = finished). Only one of the two goroutines runs at a
// time — each blocks on the other's channel — which is what makes
// shared state safe.
type fiber struct {
	resume   chan struct{}
	state    chan bool
	panicked bool
	panicVal any
}

func start(t Task) *fiber {
	f := &fiber{resume: make(chan struct{}), state: make(chan bool)}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				f.panicked, f.panicVal = true, r
			}
			f.state <- false
		}()
		<-f.resume
		t(func() {
			f.state <- true
			<-f.resume
		})
	}()
	return f
}

// Run interleaves tasks from feed, keeping at most width fibers in
// flight, until a blocking feed call reports the stream has ended and
// every admitted task has finished. Each scheduling round advances
// every live fiber by one slice (to its next yield or to completion)
// in admission order, then refills free slots — a deterministic
// round-robin. width < 1 is clamped to 1 (plain sequential draining).
//
// A panic inside a task propagates out of Run on the scheduler's
// goroutine once the fiber unwinds (its deferred functions have run).
// Callers that need per-task containment recover inside the task —
// harness.RunOn already does — so a propagated panic here means a bug
// in the scheduler's caller, not a failed work item.
func Run(width int, feed Feed) {
	if width < 1 {
		width = 1
	}
	var live []*fiber
	ended := false
	for {
		for !ended && len(live) < width {
			block := len(live) == 0
			t, ok := feed(block)
			if !ok {
				if block {
					ended = true
				}
				break
			}
			TasksStarted.Add(1)
			Runnable.Add(1)
			live = append(live, start(t))
		}
		if len(live) == 0 {
			// Nothing in flight and the refill loop blocked: the stream
			// has ended (a blocking feed call is the only way to reach
			// an empty round).
			return
		}
		kept := live[:0]
		for _, f := range live {
			t0 := time.Now()
			f.resume <- struct{}{}
			yielded := <-f.state
			Slices.Add(1)
			SliceNanos.Add(int64(time.Since(t0)))
			if yielded {
				kept = append(kept, f)
			} else {
				TasksFinished.Add(1)
				Runnable.Add(-1)
				if f.panicked {
					panic(f.panicVal)
				}
			}
		}
		for i := len(kept); i < len(live); i++ {
			live[i] = nil
		}
		live = kept
	}
}
