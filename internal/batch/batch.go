// Package batch provides a deterministic cooperative interleaver: up
// to width tasks run "simultaneously" on ONE goroutine-equivalent
// schedule, each advancing between its own yield points while the
// others are parked. Exactly one fiber is runnable at any instant and
// control transfers through channels (which establish happens-before),
// so fibers may freely share per-worker state — a cell.Pool, run
// caches — with zero locking, exactly like straight-line code.
//
// This is the execution model behind batched sweeps: a worker
// goroutine interleaves K simulations in bounded slices (see
// cell.Machine.RunSliced), keeping K hot working sets resident without
// spawning K goroutines or giving up determinism — the interleaving is
// a pure function of the feed order and each task's yield pattern.
//
// Two schedulers share the fiber machinery: Run is the original
// round-robin (every live fiber advances once per round), RunScheduled
// is horizon-aware (fibers carry virtual-time keys — their machine's
// next pending event cycle — and the earliest-key fiber runs next,
// sized to the batch horizon). See RunScheduled for why the latter is
// the default for homogeneous sweeps.
package batch

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Process-wide scheduler counters aggregated across every Run (workers
// are per-goroutine, so per-instance counters cannot be scraped).
// Exposed as dtad_batch_* by the service's metrics registry.
var (
	// TasksStarted counts fibers admitted to a scheduler round.
	TasksStarted atomic.Int64
	// TasksFinished counts fibers that ran to completion.
	TasksFinished atomic.Int64
	// Runnable is the number of live fibers across all Run loops.
	Runnable atomic.Int64
	// Slices counts fiber advances (one slice: resume to yield/finish).
	Slices atomic.Int64
	// SliceNanos accumulates wall-clock time spent inside slices.
	SliceNanos atomic.Int64
	// Switches counts slices handed to a different fiber than the one
	// that ran the previous slice — the context-switch half of Slices.
	// Round-robin switches on (nearly) every slice; the horizon
	// scheduler batches consecutive slices of the same fiber.
	Switches atomic.Int64
)

// Task is one cooperative unit of work. It runs on its own fiber; the
// yield argument parks the fiber and hands control to the next one in
// the round-robin. Code between yields executes atomically with
// respect to the other fibers of the same Run.
type Task func(yield func())

// KeyedTask is a cooperative unit whose yields carry a scheduling key:
// the virtual time (engine cycle) of the fiber's next pending event.
// yield parks the fiber and returns the batch horizon — the smallest
// key among the other ready fibers of the same RunScheduled, or
// sim.Never when this fiber is alone — so the task can size its next
// slice to run exactly until a sibling is due. Yielding Waiting parks
// the fiber until the scheduler runs out of ready siblings (the
// shared-state wait primitive; see Waiting).
type KeyedTask func(yield func(key int64) int64)

// Waiting is the yield key of a fiber that cannot progress until a
// sibling does (e.g. it wants a run-cache result a sibling is
// computing). Waiting fibers leave the ready queue entirely — they are
// resumed, in park order, only when no fiber is ready — so a waiter
// costs nothing while the work it waits for is in flight. Numerically
// this is sim.Never: "my next pending event is never" and "I cannot
// progress on my own" are the same statement.
const Waiting = int64(math.MaxInt64)

// Feed supplies tasks to Run. block reports whether the feed may wait
// for a task to become available: Run passes block == true only when
// no fiber is in flight, so waiting cannot stall admitted work. A
// false ok from a blocking call ends the stream permanently; from a
// non-blocking call it just means nothing is ready right now.
type Feed func(block bool) (Task, bool)

// KeyedFeed is Feed for RunScheduled's keyed tasks.
type KeyedFeed func(block bool) (KeyedTask, bool)

// FeedChan adapts a channel of work items to a Feed, wrapping each
// received item in a Task via mk. Blocking calls wait on the channel;
// non-blocking calls poll it. A closed channel ends the stream.
func FeedChan[T any](ch <-chan T, mk func(T) Task) Feed {
	return func(block bool) (Task, bool) {
		v, ok := recvFeed(ch, block)
		if !ok {
			return nil, false
		}
		return mk(v), true
	}
}

// KeyedFeedChan is FeedChan for RunScheduled's keyed tasks.
func KeyedFeedChan[T any](ch <-chan T, mk func(T) KeyedTask) KeyedFeed {
	return func(block bool) (KeyedTask, bool) {
		v, ok := recvFeed(ch, block)
		if !ok {
			return nil, false
		}
		return mk(v), true
	}
}

func recvFeed[T any](ch <-chan T, block bool) (T, bool) {
	var v T
	var ok bool
	if block {
		v, ok = <-ch
	} else {
		select {
		case v, ok = <-ch:
		default:
		}
	}
	return v, ok
}

// fiberDone is the state-channel sentinel a fiber sends when its task
// returns (distinct from every yield key, including Waiting).
const fiberDone = int64(math.MinInt64)

// fiber is one task's goroutine plus its scheduling channels. The
// scheduler owns `resume` (carrying the horizon handed to the yield);
// the fiber reports back on `state` (its next yield key, or fiberDone).
// Only one of the two goroutines runs at a time — each blocks on the
// other's channel — which is what makes shared state safe.
type fiber struct {
	resume   chan int64
	state    chan int64
	seq      int64 // admission order, the deterministic tie-break
	panicked bool
	panicVal any
}

func start(t KeyedTask, seq int64) *fiber {
	f := &fiber{resume: make(chan int64), state: make(chan int64), seq: seq}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				f.panicked, f.panicVal = true, r
			}
			f.state <- fiberDone
		}()
		<-f.resume
		t(func(key int64) int64 {
			f.state <- key
			return <-f.resume
		})
	}()
	return f
}

// advance resumes f for one slice, handing horizon to its parked yield,
// and returns the key of the fiber's next yield (yielded == false: the
// task finished and the fiber is gone). last tracks the previously
// advanced fiber for the switch counter.
func advance(f *fiber, horizon int64, last **fiber) (key int64, yielded bool) {
	if *last != f {
		if *last != nil {
			Switches.Add(1)
		}
		*last = f
	}
	t0 := time.Now()
	f.resume <- horizon
	key = <-f.state
	Slices.Add(1)
	SliceNanos.Add(int64(time.Since(t0)))
	return key, key != fiberDone
}

// retire books a finished fiber out of the counters and propagates a
// contained panic to the scheduler's goroutine.
func retire(f *fiber) {
	TasksFinished.Add(1)
	Runnable.Add(-1)
	if f.panicked {
		panic(f.panicVal)
	}
}

// Run interleaves tasks from feed, keeping at most width fibers in
// flight, until a blocking feed call reports the stream has ended and
// every admitted task has finished. Each scheduling round advances
// every live fiber by one slice (to its next yield or to completion)
// in admission order, then refills free slots — a deterministic
// round-robin. width < 1 is clamped to 1 (plain sequential draining).
//
// A panic inside a task propagates out of Run on the scheduler's
// goroutine once the fiber unwinds (its deferred functions have run).
// Callers that need per-task containment recover inside the task —
// harness.RunOn already does — so a propagated panic here means a bug
// in the scheduler's caller, not a failed work item.
func Run(width int, feed Feed) {
	if width < 1 {
		width = 1
	}
	var live []*fiber
	var last *fiber
	var seq int64
	ended := false
	for {
		for !ended && len(live) < width {
			block := len(live) == 0
			t, ok := feed(block)
			if !ok {
				if block {
					ended = true
				}
				break
			}
			TasksStarted.Add(1)
			Runnable.Add(1)
			seq++
			live = append(live, start(func(yield func(int64) int64) {
				t(func() { yield(0) })
			}, seq))
		}
		if len(live) == 0 {
			// Nothing in flight and the refill loop blocked: the stream
			// has ended (a blocking feed call is the only way to reach
			// an empty round).
			return
		}
		kept := live[:0]
		for _, f := range live {
			if _, yielded := advance(f, 0, &last); yielded {
				kept = append(kept, f)
			} else {
				retire(f)
			}
		}
		for i := len(kept); i < len(live); i++ {
			live[i] = nil
		}
		live = kept
	}
}

// readyEnt is one ready fiber in RunScheduled's queue, ordered by
// (key, admission seq) — same-cycle ties resolve in admission order,
// which keeps the schedule a pure function of the feed.
type readyEnt struct {
	key int64
	f   *fiber
}

func (a readyEnt) Before(b readyEnt) bool {
	return a.key < b.key || (a.key == b.key && a.f.seq < b.f.seq)
}

// RunScheduled interleaves keyed tasks from feed, keeping at most width
// fibers in flight, picking the next fiber to run by its yield key —
// the virtual time of its earliest pending event — instead of
// round-robin. The chosen fiber receives the batch horizon (the
// smallest key among the remaining ready fibers) so it can run exactly
// until a sibling is due: consecutive slices of the leading fiber
// collapse into uninterrupted execution, and slice-boundary overhead is
// paid only when the schedule actually demands a switch.
//
// Fibers that yield Waiting park off the ready queue and are resumed,
// in park order, when no fiber is ready — the cheap primitive behind
// run-cache inflight waits (the computing sibling holds a real key, so
// it keeps running; waiters wake exactly when it can no longer make
// progress for them).
//
// Admission, completion and panic semantics match Run. The schedule is
// deterministic for a deterministic feed: keys come from deterministic
// engines and ties resolve by admission order.
func RunScheduled(width int, feed KeyedFeed) {
	if width < 1 {
		width = 1
	}
	var ready []readyEnt
	var waiting []*fiber // FIFO, park order
	var last *fiber
	var seq int64
	live := 0
	ended := false

	// place books a yield outcome: ready fibers enter the queue keyed,
	// waiters park FIFO, finished fibers retire.
	place := func(f *fiber, key int64, yielded bool) {
		if !yielded {
			live--
			retire(f)
			return
		}
		if key == Waiting {
			waiting = append(waiting, f)
			return
		}
		sim.HeapPush(&ready, readyEnt{key: key, f: f})
	}
	// horizon is the earliest key among the currently ready fibers —
	// what a newly resumed fiber may run until.
	horizon := func() int64 {
		if len(ready) == 0 {
			return Waiting // == sim.Never: run to completion
		}
		return ready[0].key
	}

	for {
		for !ended && live < width {
			t, ok := feed(live == 0)
			if !ok {
				if live == 0 {
					ended = true
				}
				break
			}
			TasksStarted.Add(1)
			Runnable.Add(1)
			seq++
			live++
			// The first slice runs at admission: it carries the task to
			// its first keyed yield (machines start at cycle 0, so a
			// fresh fiber typically enters the queue at the front).
			f := start(t, seq)
			key, yielded := advance(f, horizon(), &last)
			place(f, key, yielded)
		}
		if live == 0 {
			return
		}
		if len(ready) == 0 {
			// Every live fiber is parked Waiting. Whatever they waited
			// on has either landed or will never come from a sibling:
			// resume them in park order so each re-checks (and the first
			// typically becomes the new computing fiber, re-parking the
			// rest).
			w := waiting
			waiting = nil
			for _, f := range w {
				key, yielded := advance(f, horizon(), &last)
				place(f, key, yielded)
			}
			continue
		}
		ent := sim.HeapPop(&ready)
		key, yielded := advance(ent.f, horizon(), &last)
		place(ent.f, key, yielded)
	}
}
