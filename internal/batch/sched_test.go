package batch

import (
	"fmt"
	"reflect"
	"testing"
)

// keyedSliceFeed serves keyed tasks from a slice, honouring the
// KeyedFeed contract.
func keyedSliceFeed(tasks []KeyedTask) KeyedFeed {
	next := 0
	return func(block bool) (KeyedTask, bool) {
		if next >= len(tasks) {
			return nil, false
		}
		t := tasks[next]
		next++
		return t, true
	}
}

// TestRunScheduledOrdersByKey pins the virtual-time schedule: fibers
// advance in key order, not admission order, and the horizon handed to
// each yield is the earliest key among the remaining ready fibers.
func TestRunScheduledOrdersByKey(t *testing.T) {
	var trace []string
	mk := func(name string, keys ...int64) KeyedTask {
		return func(yield func(int64) int64) {
			for i, k := range keys {
				h := yield(k)
				trace = append(trace, fmt.Sprintf("%s%d@%d h=%d", name, i, k, h))
			}
		}
	}
	// a holds the early keys, b interleaves, admission order a then b.
	RunScheduled(2, keyedSliceFeed([]KeyedTask{
		mk("a", 10, 30),
		mk("b", 20, 25),
	}))
	want := []string{
		"a0@10 h=20", // a leads (key 10), may run until b is due at 20
		"b0@20 h=30", // b next; a re-queued at 30
		"b1@25 h=30", // b still leads: two consecutive slices, no switch
		"a1@30 h=" + fmt.Sprint(Waiting), // a alone: run to completion
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestRunScheduledTieBreak: same-key fibers run in admission order, so
// the schedule stays a pure function of the feed.
func TestRunScheduledTieBreak(t *testing.T) {
	var trace []string
	mk := func(name string) KeyedTask {
		return func(yield func(int64) int64) {
			yield(7)
			trace = append(trace, name+"0")
			yield(7)
			trace = append(trace, name+"1")
		}
	}
	RunScheduled(3, keyedSliceFeed([]KeyedTask{mk("a"), mk("b"), mk("c")}))
	want := []string{"a0", "a1", "b0", "b1", "c0", "c1"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestRunScheduledWaiting: a fiber yielding Waiting parks off the ready
// queue and resumes only once no sibling is ready — the run-cache
// inflight-wait primitive. The computing fiber must finish its keyed
// slices first, however early the waiter was admitted.
func TestRunScheduledWaiting(t *testing.T) {
	var trace []string
	computed := false
	waiter := func(name string) KeyedTask {
		return func(yield func(int64) int64) {
			for !computed {
				yield(Waiting)
			}
			trace = append(trace, name)
		}
	}
	RunScheduled(3, keyedSliceFeed([]KeyedTask{
		waiter("w1"),
		func(yield func(int64) int64) {
			yield(100)
			trace = append(trace, "compute-a")
			yield(200)
			trace = append(trace, "compute-b")
			computed = true
		},
		waiter("w2"),
	}))
	// Waiters wake in park order, strictly after the computing fiber ran
	// out of keyed work.
	want := []string{"compute-a", "compute-b", "w1", "w2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestRunScheduledAllWaiting: when every live fiber parks Waiting (no
// computing sibling at all), the scheduler must resume them rather than
// deadlock, in park order.
func TestRunScheduledAllWaiting(t *testing.T) {
	var trace []string
	mk := func(name string) KeyedTask {
		return func(yield func(int64) int64) {
			yield(Waiting)
			trace = append(trace, name)
		}
	}
	RunScheduled(4, keyedSliceFeed([]KeyedTask{mk("a"), mk("b"), mk("c")}))
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestRunScheduledWakeAfterFeed: a parked waiter coexists with fresh
// admissions — fibers fed after it park or run by key as usual, and the
// waiter still wakes once the ready queue drains.
func TestRunScheduledWakeAfterFeed(t *testing.T) {
	var trace []string
	done := false
	ch := make(chan int, 3)
	ch <- 0
	ch <- 1
	ch <- 2
	close(ch)
	RunScheduled(2, KeyedFeedChan(ch, func(i int) KeyedTask {
		if i == 0 {
			return func(yield func(int64) int64) {
				for !done {
					yield(Waiting)
				}
				trace = append(trace, "waiter")
			}
		}
		return func(yield func(int64) int64) {
			yield(int64(10 * i))
			trace = append(trace, fmt.Sprintf("task%d", i))
			if i == 2 {
				done = true
			}
		}
	}))
	want := []string{"task1", "task2", "waiter"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestRunScheduledSharesStateSafely is the lock-free-sharing contract
// under -race for the keyed scheduler, mirroring the round-robin test.
func TestRunScheduledSharesStateSafely(t *testing.T) {
	counter := 0
	var tasks []KeyedTask
	for i := 0; i < 16; i++ {
		i := i
		tasks = append(tasks, func(yield func(int64) int64) {
			for j := 0; j < 100; j++ {
				counter++
				yield(int64((i*100 + j) % 17))
			}
		})
	}
	RunScheduled(4, keyedSliceFeed(tasks))
	if counter != 16*100 {
		t.Fatalf("counter = %d, want %d", counter, 16*100)
	}
}

// TestRunScheduledPropagatesPanic mirrors the round-robin contract: an
// uncontained task panic surfaces on the scheduler's goroutine.
func TestRunScheduledPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	RunScheduled(2, keyedSliceFeed([]KeyedTask{func(yield func(int64) int64) { panic("boom") }}))
	t.Fatal("RunScheduled returned despite panicking task")
}

// TestRunScheduledEmptyFeed returns immediately.
func TestRunScheduledEmptyFeed(t *testing.T) {
	RunScheduled(4, keyedSliceFeed(nil))
}
