// Package prof exports guest cycle profiles (stats.Profile) as pprof
// protobuf, so `go tool pprof -top/-flamegraph` works directly on a
// simulated run. Like internal/obs it is dependency-free: profile.proto
// is encoded by hand (varints and length-delimited submessages are the
// only wire types the format needs).
//
// This is the *guest* side of the repo's two profiling layers: samples
// are simulated SPU cycles attributed to (program, template block, PC,
// stall cause). The *host* side — profiling the simulator process
// itself — is internal/profiling (-cpuprofile/-memprofile) and dtad's
// -debug-addr (net/http/pprof).
//
// Profile shape:
//
//   - sample types: "cycles" (every simulated cycle) plus one per
//     stats.Cause, all in unit "cycles". `-sample_index=blocking_read`
//     etc. select a cause; the default index is total cycles.
//   - stacks (leaf first): block@PC -> template -> run label. The leaf
//     function is "<program>.<template>.<block>" with Line.line = PC,
//     so `-top` aggregates by code block and `granularity=lines`
//     resolves individual instructions. Idle cycles attribute to the
//     synthetic "(idle)" function.
//
// Output is deterministic: samples are emitted in stats.Profile's
// canonical order and no timestamps are recorded, so identical runs
// encode to identical bytes.
package prof

import (
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/program"
	"repro/internal/stats"
)

// Run is one profiled simulation: its cycle samples plus the program
// that symbolizes them. Label becomes the stack root (e.g. the harness
// run key "mmul spes=8 pf=true lat=600"); empty falls back to the
// program name.
type Run struct {
	Label string
	Prog  *program.Program
	Prof  *stats.Profile
}

// Write encodes runs as one gzipped pprof protobuf. Multiple runs merge
// into a single profile, distinguished by their root frames.
func Write(w io.Writer, runs []Run) error {
	raw, err := Marshal(runs)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(raw); err != nil {
		return err
	}
	return zw.Close()
}

// Marshal encodes runs as an uncompressed pprof protobuf (pprof accepts
// both; Write adds the conventional gzip layer).
func Marshal(runs []Run) ([]byte, error) {
	e := newEncoder()
	for _, r := range runs {
		if err := e.addRun(r); err != nil {
			return nil, err
		}
	}
	return e.marshal(), nil
}

// encoder accumulates the deduplicated pprof tables.
type encoder struct {
	strs   map[string]int64
	strtab []string

	fnByName map[string]uint64
	fns      []function

	locByKey map[locKey]uint64
	locs     []location

	samples []sample
}

type function struct {
	id       uint64
	name     int64 // string index
	filename int64
}

type locKey struct {
	fn   uint64
	line int64
}

type location struct {
	id   uint64
	fn   uint64
	line int64
}

type sample struct {
	stack  []uint64 // leaf first
	values []int64  // [cycles, per-cause...]
}

func newEncoder() *encoder {
	e := &encoder{
		strs:     map[string]int64{"": 0},
		strtab:   []string{""},
		fnByName: map[string]uint64{},
		locByKey: map[locKey]uint64{},
	}
	return e
}

func (e *encoder) str(s string) int64 {
	if i, ok := e.strs[s]; ok {
		return i
	}
	i := int64(len(e.strtab))
	e.strs[s] = i
	e.strtab = append(e.strtab, s)
	return i
}

func (e *encoder) fn(name, filename string) uint64 {
	if id, ok := e.fnByName[name]; ok {
		return id
	}
	id := uint64(len(e.fns) + 1)
	e.fnByName[name] = id
	e.fns = append(e.fns, function{id: id, name: e.str(name), filename: e.str(filename)})
	return id
}

func (e *encoder) loc(fn uint64, line int64) uint64 {
	k := locKey{fn: fn, line: line}
	if id, ok := e.locByKey[k]; ok {
		return id
	}
	id := uint64(len(e.locs) + 1)
	e.locByKey[k] = id
	e.locs = append(e.locs, location{id: id, fn: fn, line: line})
	return id
}

// addRun appends one run's samples, building its symbol tables.
func (e *encoder) addRun(r Run) error {
	if r.Prog == nil {
		return fmt.Errorf("prof: run %q has no program", r.Label)
	}
	label := r.Label
	if label == "" {
		label = r.Prog.Name
	}
	file := r.Prog.Name + ".dta"
	rootLoc := e.loc(e.fn(label, file), 0)
	idleLoc := e.loc(e.fn("(idle)", file), 0)

	for _, s := range r.Prof.Samples() {
		var stack []uint64
		switch {
		case s.Loc.Template < 0:
			stack = []uint64{idleLoc, rootLoc}
		case int(s.Loc.Template) >= len(r.Prog.Templates):
			return fmt.Errorf("prof: run %q: sample template %d out of range (%d templates)",
				label, s.Loc.Template, len(r.Prog.Templates))
		default:
			tmpl := r.Prog.Templates[s.Loc.Template]
			tname := r.Prog.Name + "." + tmpl.Name
			bname := tname + "." + program.BlockKind(s.Loc.Block).String()
			leaf := e.loc(e.fn(bname, file), int64(s.Loc.PC))
			parent := e.loc(e.fn(tname, file), 0)
			stack = []uint64{leaf, parent, rootLoc}
		}
		values := make([]int64, 1+int(stats.NumCauses))
		values[0] = s.Total
		for c := stats.Cause(0); c < stats.NumCauses; c++ {
			values[1+int(c)] = s.Causes[c]
		}
		e.samples = append(e.samples, sample{stack: stack, values: values})
	}
	return nil
}

// profile.proto field numbers (the subset the pprof reader needs).
const (
	fldSampleType  = 1
	fldSample      = 2
	fldLocation    = 4
	fldFunction    = 5
	fldStringTable = 6
	fldPeriodType  = 11
	fldPeriod      = 12
	fldDefaultType = 14

	fldVTType = 1
	fldVTUnit = 2

	fldSampleLocID = 1
	fldSampleValue = 2

	fldLocID   = 1
	fldLocLine = 4

	fldLineFnID = 1
	fldLineLine = 2

	fldFnID       = 1
	fldFnName     = 2
	fldFnFilename = 4
)

// marshal serializes the accumulated profile.
func (e *encoder) marshal() []byte {
	cycles := e.str("cycles")
	var out pbuf

	vt := func(typ int64) []byte {
		var b pbuf
		b.varint(fldVTType, uint64(typ))
		b.varint(fldVTUnit, uint64(cycles))
		return b.b
	}
	out.msg(fldSampleType, vt(cycles))
	for c := stats.Cause(0); c < stats.NumCauses; c++ {
		out.msg(fldSampleType, vt(e.str(c.Slug())))
	}

	for _, s := range e.samples {
		var b pbuf
		b.packedU(fldSampleLocID, s.stack)
		b.packed(fldSampleValue, s.values)
		out.msg(fldSample, b.b)
	}

	for _, l := range e.locs {
		var line pbuf
		line.varint(fldLineFnID, l.fn)
		line.varint(fldLineLine, uint64(l.line))
		var b pbuf
		b.varint(fldLocID, l.id)
		b.msg(fldLocLine, line.b)
		out.msg(fldLocation, b.b)
	}

	for _, f := range e.fns {
		var b pbuf
		b.varint(fldFnID, f.id)
		b.varint(fldFnName, uint64(f.name))
		b.varint(fldFnFilename, uint64(f.filename))
		out.msg(fldFunction, b.b)
	}

	for _, s := range e.strtab {
		out.msg(fldStringTable, []byte(s))
	}

	out.msg(fldPeriodType, vt(cycles))
	out.varint(fldPeriod, 1)
	// Without this pprof defaults to the LAST sample type; the natural
	// default view is total cycles (the first).
	out.varint(fldDefaultType, uint64(cycles))
	return out.b
}

// pbuf is a minimal protobuf wire-format writer: varint (wire type 0)
// and length-delimited (wire type 2) cover all of profile.proto.
type pbuf struct {
	b []byte
}

func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) key(field, wire int) {
	p.uvarint(uint64(field)<<3 | uint64(wire))
}

// varint emits a varint-typed field. Zero values are emitted too:
// profile.proto readers treat missing and zero identically, but being
// explicit keeps the encoding independent of that equivalence.
func (p *pbuf) varint(field int, v uint64) {
	p.key(field, 0)
	p.uvarint(v)
}

// msg emits a length-delimited field (submessage, string, packed run).
func (p *pbuf) msg(field int, b []byte) {
	p.key(field, 2)
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packed emits a packed repeated int64 field (samples' value vectors).
func (p *pbuf) packed(field int, vs []int64) {
	var body pbuf
	for _, v := range vs {
		body.uvarint(uint64(v))
	}
	p.msg(field, body.b)
}

// packedU emits a packed repeated uint64 field (location id stacks).
func (p *pbuf) packedU(field int, vs []uint64) {
	var body pbuf
	for _, v := range vs {
		body.uvarint(v)
	}
	p.msg(field, body.b)
}
