package prof_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/prefetch"
	"repro/internal/prof"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// profiledRun executes the prefetch-transformed mmul benchmark with the
// guest profiler on and returns the run plus its result.
func profiledRun(t *testing.T) (prof.Run, *cell.Result) {
	t.Helper()
	w, ok := workloads.Get("mmul")
	if !ok {
		t.Fatal("mmul workload not registered")
	}
	p, err := w.Build(workloads.Params{N: 8, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatalf("build mmul: %v", err)
	}
	pf, err := prefetch.Transform(p)
	if err != nil {
		t.Fatalf("prefetch: %v", err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = 2
	cfg.MaxCycles = 10_000_000
	cfg.Profile = true
	m, err := cell.New(cfg, pf)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Prof == nil || res.Prof.Len() == 0 {
		t.Fatal("profiled run produced no samples")
	}
	return prof.Run{Label: "mmul-pf test run", Prog: pf, Prof: res.Prof}, res
}

// TestProfileAccountsEveryCycle: the profile is fed from the same
// charges as the stats breakdown, so its totals must match exactly —
// per cause and overall.
func TestProfileAccountsEveryCycle(t *testing.T) {
	run, res := profiledRun(t)
	if got, want := run.Prof.Total(), res.Agg.Breakdown.Total(); got != want {
		t.Fatalf("profile total %d != breakdown total %d", got, want)
	}
	if got, want := run.Prof.Causes(), res.Agg.Causes; got != want {
		t.Fatalf("profile causes %v != aggregate causes %v", got, want)
	}
	if res.Agg.Causes.Buckets() != res.Agg.Breakdown {
		t.Fatalf("cause fold %v != breakdown %v", res.Agg.Causes.Buckets(), res.Agg.Breakdown)
	}
}

// TestWriteDeterministic: identical runs encode to identical bytes (no
// timestamps, canonical sample order) — profiles are diffable and
// cache-friendly.
func TestWriteDeterministic(t *testing.T) {
	run, _ := profiledRun(t)
	var a, b bytes.Buffer
	if err := prof.Write(&a, []prof.Run{run}); err != nil {
		t.Fatal(err)
	}
	if err := prof.Write(&b, []prof.Run{run}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same run differ")
	}
}

// TestMarshalWireFormat decodes the emitted protobuf with a minimal
// reader and checks the pprof invariants: sample-type count, the empty
// string at table index 0, symbol names present, and sample values
// summing to the simulated cycle total.
func TestMarshalWireFormat(t *testing.T) {
	run, res := profiledRun(t)
	raw, err := prof.Marshal([]prof.Run{run})
	if err != nil {
		t.Fatal(err)
	}
	d := decoded{}
	d.parse(t, raw)

	if want := 1 + int(stats.NumCauses); d.sampleTypes != want {
		t.Fatalf("got %d sample types, want %d", d.sampleTypes, want)
	}
	if len(d.strings) == 0 || d.strings[0] != "" {
		t.Fatal("string table must start with the empty string")
	}
	joined := strings.Join(d.strings, "\n")
	for _, want := range []string{"cycles", "blocking_read", "dma_program",
		"(idle)", "mmul-pf test run"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("string table missing %q", want)
		}
	}
	blockNamed := false
	for _, s := range d.strings {
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			if strings.HasSuffix(s, "."+k.String()) {
				blockNamed = true
			}
		}
	}
	if !blockNamed {
		t.Fatal("no block-level function names in string table")
	}

	var total int64
	for _, v := range d.sampleTotals {
		total += v
	}
	if want := res.Agg.Breakdown.Total(); total != want {
		t.Fatalf("encoded cycles %d != simulated %d", total, want)
	}
	if d.locations == 0 || d.functions == 0 {
		t.Fatal("no locations or functions encoded")
	}
}

// TestGoToolPprofTop validates interoperability end to end: the Go
// toolchain's own pprof must read the profile and list simulated code
// blocks.
func TestGoToolPprofTop(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	run, _ := profiledRun(t)
	path := filepath.Join(t.TempDir(), "guest.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Write(f, []prof.Run{run}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command("go", "tool", "pprof", "-top", "-nodecount=50", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "cycles") {
		t.Fatalf("pprof output missing sample unit:\n%s", text)
	}
	if !strings.Contains(text, "mmul") {
		t.Fatalf("pprof output lists no simulated symbols:\n%s", text)
	}

	// Per-cause sample selection must work too.
	out, err = exec.Command("go", "tool", "pprof", "-top", "-sample_index=dma_program", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -sample_index=dma_program: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "pf") {
		t.Fatalf("dma_program view lists no PF blocks:\n%s", out)
	}
}

// decoded is a minimal profile.proto reader for the fields the tests
// assert on.
type decoded struct {
	sampleTypes  int
	sampleTotals []int64 // value[0] of each sample
	locations    int
	functions    int
	strings      []string
}

func (d *decoded) parse(t *testing.T, raw []byte) {
	t.Helper()
	for len(raw) > 0 {
		key, n := uvarint(t, raw)
		raw = raw[n:]
		field, wire := key>>3, key&7
		switch wire {
		case 0:
			_, n := uvarint(t, raw)
			raw = raw[n:]
		case 2:
			l, n := uvarint(t, raw)
			raw = raw[n:]
			body := raw[:l]
			raw = raw[l:]
			switch field {
			case 1:
				d.sampleTypes++
			case 2:
				d.sampleTotals = append(d.sampleTotals, firstValue(t, body))
			case 4:
				d.locations++
			case 5:
				d.functions++
			case 6:
				d.strings = append(d.strings, string(body))
			}
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
}

// firstValue extracts value[0] from one Sample message (field 2, packed).
func firstValue(t *testing.T, body []byte) int64 {
	t.Helper()
	for len(body) > 0 {
		key, n := uvarint(t, body)
		body = body[n:]
		field, wire := key>>3, key&7
		if wire != 2 {
			t.Fatalf("sample: unexpected wire type %d", wire)
		}
		l, n := uvarint(t, body)
		body = body[n:]
		if field == 2 {
			v, _ := uvarint(t, body[:l])
			return int64(v)
		}
		body = body[l:]
	}
	t.Fatal("sample without values")
	return 0
}

func uvarint(t *testing.T, b []byte) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	t.Fatal("truncated varint")
	return 0, 0
}
