// Package asm implements a textual assembly format for DTA programs:
// thread templates with PF/PL/EX/PS code blocks, labels, region
// declarations for the prefetch compiler, tagged reads, the entry
// declaration and initial memory segments. The format round-trips
// through Format/Parse, and cmd/dtasm exposes it on the command line.
//
// Example:
//
//	.program answer
//	.entry root 42
//
//	.template root
//	.block pl
//	        load r1, 0
//	.block ps
//	        movi r2, -1
//	        store r1, r2, 0     ; mailbox post
//	        ffree
//	        stop
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Parse assembles source text into a validated program.
func Parse(src string) (*program.Program, error) {
	p := &parser{
		prog:      &program.Program{ExpectTokens: 1},
		templates: map[string]*tmplState{},
	}
	if err := p.parse(src); err != nil {
		return nil, err
	}
	return p.finish()
}

type tmplState struct {
	t       *program.Template
	regions map[string]int
	// per-block label tables and fixups
	labels [program.NumBlocks]map[string]int
	fixups [program.NumBlocks][]fixup
}

type fixup struct {
	index int
	label string
	line  int
}

type parser struct {
	prog      *program.Program
	templates map[string]*tmplState
	order     []*tmplState

	cur       *tmplState
	block     program.BlockKind
	inBlock   bool
	entryName string
	line      int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) parse(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := raw
		if idx := strings.IndexAny(line, ";#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "."):
			err = p.directive(line)
		case strings.HasSuffix(line, ":"):
			err = p.label(strings.TrimSuffix(line, ":"))
		default:
			err = p.instruction(line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fields splits on whitespace and commas.
func fields(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
}

func (p *parser) directive(line string) error {
	parts := fields(line)
	switch parts[0] {
	case ".program":
		if len(parts) != 2 {
			return p.errf(".program needs a name")
		}
		p.prog.Name = parts[1]
	case ".expect":
		if len(parts) != 2 {
			return p.errf(".expect needs a count")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return p.errf("bad count %q", parts[1])
		}
		p.prog.ExpectTokens = n
	case ".entry":
		if len(parts) < 2 {
			return p.errf(".entry needs a template name")
		}
		p.entryName = parts[1]
		for _, a := range parts[2:] {
			v, err := parseInt(a)
			if err != nil {
				return p.errf("bad entry arg %q", a)
			}
			p.prog.EntryArgs = append(p.prog.EntryArgs, v)
		}
	case ".segment":
		return p.segment(line)
	case ".template":
		if len(parts) != 2 {
			return p.errf(".template needs a name")
		}
		if _, dup := p.templates[parts[1]]; dup {
			return p.errf("duplicate template %q", parts[1])
		}
		st := &tmplState{
			t:       &program.Template{Name: parts[1], ID: len(p.order)},
			regions: map[string]int{},
		}
		for k := range st.labels {
			st.labels[k] = map[string]int{}
		}
		p.templates[parts[1]] = st
		p.order = append(p.order, st)
		p.cur = st
		p.inBlock = false
	case ".block":
		if p.cur == nil {
			return p.errf(".block outside a template")
		}
		if len(parts) != 2 {
			return p.errf(".block needs pf|pl|ex|ps")
		}
		kind, ok := program.BlockKindByName(parts[1])
		if !ok {
			return p.errf("unknown block %q", parts[1])
		}
		p.block = kind
		p.inBlock = true
	case ".region":
		return p.region(line)
	default:
		return p.errf("unknown directive %q", parts[0])
	}
	return nil
}

// segment: .segment ADDR words32(a,b,...) | words64(...) | zeros(N)
func (p *parser) segment(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, ".segment"))
	sp := strings.IndexAny(rest, " \t")
	if sp < 0 {
		return p.errf(".segment needs an address and data")
	}
	addr, err := parseInt(rest[:sp])
	if err != nil {
		return p.errf("bad segment address %q", rest[:sp])
	}
	body := strings.TrimSpace(rest[sp:])
	open := strings.Index(body, "(")
	if open < 0 || !strings.HasSuffix(body, ")") {
		return p.errf("segment data must be words32(...), words64(...) or zeros(n)")
	}
	kind := body[:open]
	args := fields(body[open+1 : len(body)-1])
	var data []byte
	switch kind {
	case "zeros":
		if len(args) != 1 {
			return p.errf("zeros needs one count")
		}
		n, err := parseInt(args[0])
		if err != nil || n < 0 {
			return p.errf("bad zeros count %q", args[0])
		}
		data = make([]byte, n)
	case "words32", "words64":
		width := 4
		if kind == "words64" {
			width = 8
		}
		for _, a := range args {
			v, err := parseInt(a)
			if err != nil {
				return p.errf("bad word %q", a)
			}
			for b := 0; b < width; b++ {
				data = append(data, byte(uint64(v)>>(8*b)))
			}
		}
	default:
		return p.errf("unknown segment data kind %q", kind)
	}
	p.prog.Segments = append(p.prog.Segments, program.Segment{Addr: addr, Data: data})
	return nil
}

// region: .region NAME base EXPR size EXPR max N [chunk N]
func (p *parser) region(line string) error {
	if p.cur == nil {
		return p.errf(".region outside a template")
	}
	parts := fields(line)
	if len(parts) < 2 {
		return p.errf(".region needs a name")
	}
	name := parts[1]
	if _, dup := p.cur.regions[name]; dup {
		return p.errf("duplicate region %q", name)
	}
	r := program.Region{Name: name, Size: program.SizeConst(1)}
	i := 2
	seenMax := false
	for i < len(parts) {
		switch parts[i] {
		case "base":
			if i+1 >= len(parts) {
				return p.errf("base needs an expression")
			}
			expr, n, err := parseAddrExpr(parts[i+1:])
			if err != nil {
				return p.errf("base: %v", err)
			}
			r.Base = expr
			i += 1 + n
		case "size":
			if i+1 >= len(parts) {
				return p.errf("size needs an expression")
			}
			sz, err := parseSizeExpr(parts[i+1])
			if err != nil {
				return p.errf("size: %v", err)
			}
			r.Size = sz
			i += 2
		case "max":
			if i+1 >= len(parts) {
				return p.errf("max needs a value")
			}
			v, err := parseInt(parts[i+1])
			if err != nil {
				return p.errf("bad max %q", parts[i+1])
			}
			r.MaxBytes = int(v)
			seenMax = true
			i += 2
		case "chunk":
			if i+1 >= len(parts) {
				return p.errf("chunk needs a value")
			}
			v, err := parseInt(parts[i+1])
			if err != nil {
				return p.errf("bad chunk %q", parts[i+1])
			}
			r.ChunkBytes = int(v)
			i += 2
		default:
			return p.errf("unknown region attribute %q", parts[i])
		}
	}
	if !seenMax {
		return p.errf("region %q needs max", name)
	}
	p.cur.regions[name] = len(p.cur.t.Regions)
	p.cur.t.Regions = append(p.cur.t.Regions, r)
	return nil
}

// parseAddrExpr parses terms joined by '+' inside one field (sN*scale,
// sN, or a constant), e.g. "s0*1+s4*128+16".
func parseAddrExpr(parts []string) (program.AddrExpr, int, error) {
	var e program.AddrExpr
	for _, term := range strings.Split(parts[0], "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		if strings.HasPrefix(term, "s") {
			slotPart, scalePart := term[1:], "1"
			if star := strings.Index(term, "*"); star >= 0 {
				slotPart, scalePart = term[1:star], term[star+1:]
			}
			slot, err := strconv.Atoi(slotPart)
			if err != nil {
				return e, 0, fmt.Errorf("bad slot in %q", term)
			}
			scale, err := parseInt(scalePart)
			if err != nil {
				return e, 0, fmt.Errorf("bad scale in %q", term)
			}
			e.Terms = append(e.Terms, program.AddrTerm{Slot: slot, Scale: scale})
			continue
		}
		c, err := parseInt(term)
		if err != nil {
			return e, 0, fmt.Errorf("bad constant %q", term)
		}
		e.Const += c
	}
	return e, 1, nil
}

// parseSizeExpr parses "sN", "sN*scale", either with a trailing +C/-C
// constant term, or a bare constant.
func parseSizeExpr(s string) (program.SizeExpr, error) {
	if strings.HasPrefix(s, "s") {
		body, constPart := s[1:], ""
		// Peel a trailing signed constant; skip position 0 so a leading
		// sign on the scale (after '*') is never mistaken for it.
		if star := strings.Index(body, "*"); star >= 0 {
			for i := star + 2; i < len(body); i++ {
				if body[i] == '+' || body[i] == '-' {
					body, constPart = body[:i], body[i:]
					break
				}
			}
		} else {
			for i := 1; i < len(body); i++ {
				if body[i] == '+' || body[i] == '-' {
					body, constPart = body[:i], body[i:]
					break
				}
			}
		}
		slotPart, scalePart := body, "1"
		if star := strings.Index(body, "*"); star >= 0 {
			slotPart, scalePart = body[:star], body[star+1:]
		}
		slot, err := strconv.Atoi(slotPart)
		if err != nil {
			return program.SizeExpr{}, fmt.Errorf("bad slot in %q", s)
		}
		scale, err := parseInt(scalePart)
		if err != nil {
			return program.SizeExpr{}, fmt.Errorf("bad scale in %q", s)
		}
		c := int64(0)
		if constPart != "" {
			c, err = parseInt(strings.TrimPrefix(constPart, "+"))
			if err != nil {
				return program.SizeExpr{}, fmt.Errorf("bad constant in %q", s)
			}
		}
		return program.SizeSlot(slot, scale, c), nil
	}
	c, err := parseInt(s)
	if err != nil {
		return program.SizeExpr{}, fmt.Errorf("bad size %q", s)
	}
	return program.SizeConst(c), nil
}

func (p *parser) label(name string) error {
	if p.cur == nil || !p.inBlock {
		return p.errf("label %q outside a code block", name)
	}
	tbl := p.cur.labels[p.block]
	if _, dup := tbl[name]; dup {
		return p.errf("duplicate label %q", name)
	}
	tbl[name] = len(p.cur.t.Blocks[p.block])
	return nil
}

func (p *parser) instruction(line string) error {
	if p.cur == nil || !p.inBlock {
		return p.errf("instruction outside a code block")
	}
	parts := fields(line)
	mnemonic := parts[0]
	ops := parts[1:]

	// Tagged read: read@region / read8@region.
	var regionIdx = -1
	if at := strings.Index(mnemonic, "@"); at >= 0 {
		regionName := mnemonic[at+1:]
		mnemonic = mnemonic[:at]
		idx, ok := p.cur.regions[regionName]
		if !ok {
			return p.errf("unknown region %q", regionName)
		}
		switch mnemonic {
		case "read", "read8", "write", "write8":
		default:
			return p.errf("only read/read8/write/write8 can be region-tagged")
		}
		regionIdx = idx
	}

	op, ok := isa.ByName(mnemonic)
	if !ok {
		return p.errf("unknown mnemonic %q", mnemonic)
	}
	info := isa.MustInfo(op)

	ins := isa.Instruction{Op: op}
	var branchLabel string
	var err error
	switch info.Fmt {
	case isa.FmtNone:
		err = expectOps(ops, 0)
	case isa.FmtRd:
		if err = expectOps(ops, 1); err == nil {
			ins.Rd, err = parseReg(ops[0])
		}
	case isa.FmtRa:
		if err = expectOps(ops, 1); err == nil {
			ins.Ra, err = parseReg(ops[0])
		}
	case isa.FmtImm:
		if err = expectOps(ops, 1); err == nil {
			branchLabel = ops[0] // jmp target
		}
	case isa.FmtRdImm:
		if op == isa.FALLOC {
			// falloc rd, TEMPLATE, sc — resolved in finish().
			if err = expectOps(ops, 3); err == nil {
				ins.Rd, err = parseReg(ops[0])
				if err == nil {
					p.cur.fixups[p.block] = append(p.cur.fixups[p.block], fixup{
						index: len(p.cur.t.Blocks[p.block]),
						label: "falloc:" + ops[1] + ":" + ops[2],
						line:  p.line,
					})
				}
			}
			break
		}
		if err = expectOps(ops, 2); err == nil {
			ins.Rd, err = parseReg(ops[0])
			if err == nil {
				ins.Imm, err = parseImm(ops[1])
			}
		}
	case isa.FmtRdRa:
		if err = expectOps(ops, 2); err == nil {
			ins.Rd, err = parseReg(ops[0])
			if err == nil {
				ins.Ra, err = parseReg(ops[1])
			}
		}
	case isa.FmtRdRaRb:
		if err = expectOps(ops, 3); err == nil {
			ins.Rd, err = parseReg(ops[0])
			if err == nil {
				ins.Ra, err = parseReg(ops[1])
			}
			if err == nil {
				ins.Rb, err = parseReg(ops[2])
			}
		}
	case isa.FmtRdRaImm:
		if err = expectOps(ops, 3); err == nil {
			ins.Rd, err = parseReg(ops[0])
			if err == nil {
				ins.Ra, err = parseReg(ops[1])
			}
			if err == nil {
				ins.Imm, err = parseImm(ops[2])
			}
		}
	case isa.FmtRaRbImm:
		// Branches: third operand is a label.
		if err = expectOps(ops, 3); err == nil {
			ins.Ra, err = parseReg(ops[0])
			if err == nil {
				ins.Rb, err = parseReg(ops[1])
			}
			if err == nil {
				branchLabel = ops[2]
			}
		}
	case isa.FmtRdRaRbIm:
		if err = expectOps(ops, 4); err == nil {
			ins.Rd, err = parseReg(ops[0])
			if err == nil {
				ins.Ra, err = parseReg(ops[1])
			}
			if err == nil {
				ins.Rb, err = parseReg(ops[2])
			}
			if err == nil {
				ins.Imm, err = parseImm(ops[3])
			}
		}
	}
	if err != nil {
		return p.errf("%s: %v", mnemonic, err)
	}
	if branchLabel != "" {
		p.cur.fixups[p.block] = append(p.cur.fixups[p.block], fixup{
			index: len(p.cur.t.Blocks[p.block]),
			label: branchLabel,
			line:  p.line,
		})
	}
	if regionIdx >= 0 {
		p.cur.t.Accesses = append(p.cur.t.Accesses, program.Access{
			Block: p.block, Index: len(p.cur.t.Blocks[p.block]), Region: regionIdx,
		})
	}
	p.cur.t.Blocks[p.block] = append(p.cur.t.Blocks[p.block], ins)
	return nil
}

func expectOps(ops []string, n int) error {
	if len(ops) != n {
		return fmt.Errorf("want %d operands, got %d", n, len(ops))
	}
	return nil
}

func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := parseInt(s)
	if err != nil {
		return 0, err
	}
	if v != int64(int32(v)) {
		return 0, fmt.Errorf("immediate %q exceeds 32 bits", s)
	}
	return int32(v), nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// finish resolves labels and falloc template references, then validates.
func (p *parser) finish() (*program.Program, error) {
	for _, st := range p.order {
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			for _, f := range st.fixups[k] {
				if strings.HasPrefix(f.label, "falloc:") {
					parts := strings.SplitN(f.label, ":", 3)
					target, ok := p.templates[parts[1]]
					if !ok {
						return nil, fmt.Errorf("asm: line %d: falloc of unknown template %q", f.line, parts[1])
					}
					sc, err := strconv.Atoi(parts[2])
					if err != nil {
						return nil, fmt.Errorf("asm: line %d: bad falloc sc %q", f.line, parts[2])
					}
					imm, err := isa.PackFalloc(target.t.ID, sc)
					if err != nil {
						return nil, fmt.Errorf("asm: line %d: %v", f.line, err)
					}
					st.t.Blocks[k][f.index].Imm = imm
					continue
				}
				target, ok := st.labels[k][f.label]
				if !ok {
					return nil, fmt.Errorf("asm: line %d: undefined label %q", f.line, f.label)
				}
				st.t.Blocks[k][f.index].Imm = int32(target)
			}
		}
		p.prog.Templates = append(p.prog.Templates, st.t)
	}
	if p.entryName == "" {
		return nil, fmt.Errorf("asm: missing .entry")
	}
	entry, ok := p.templates[p.entryName]
	if !ok {
		return nil, fmt.Errorf("asm: entry template %q not defined", p.entryName)
	}
	p.prog.Entry = entry.t.ID
	if err := p.prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p.prog, nil
}
