package asm_test

// External test package: the round-trip tests build registered
// workloads (including synth corpus entries, which transitively import
// asm for reproducer dumps), so they must live outside the package to
// avoid a test-only import cycle.

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/workloads"
)

const helloSrc = `
; the smallest complete DTA program: the root posts its argument.
.program hello
.entry root 42

.template root
.block pl
        load r1, 0
.block ps
        movi r2, -1
        store r1, r2, 0
        ffree
        stop
`

func TestParseMinimal(t *testing.T) {
	p, err := asm.Parse(helloSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name != "hello" || p.Entry != 0 || len(p.EntryArgs) != 1 || p.EntryArgs[0] != 42 {
		t.Fatalf("program header wrong: %+v", p)
	}
	if got := len(p.Templates[0].Blocks[program.PS]); got != 4 {
		t.Fatalf("PS len = %d", got)
	}
}

func TestParsedProgramRuns(t *testing.T) {
	p, err := asm.Parse(helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 100_000
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 1 || res.Tokens[0] != 42 {
		t.Fatalf("tokens = %v", res.Tokens)
	}
}

const loopSrc = `
.program looper
.entry root 10

.template root
.block pl
        load r1, 0
.block ex
        movi r2, 0
        movi r3, 0
top:
        addi r3, r3, 1
        add r2, r2, r3
        blt r3, r1, top
.block ps
        movi r4, -1
        store r2, r4, 0
        ffree
        stop
`

func TestParseLabelsAndRun(t *testing.T) {
	p, err := asm.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 100_000
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens[0] != 55 { // 1+..+10
		t.Fatalf("token = %d, want 55", res.Tokens[0])
	}
}

const regionSrc = `
.program regions
.entry root 0x100000 4
.expect 1
.segment 0x100000 words32(10, 20, 30, 40)

.template root
.region vals base s0 size s1*4 max 16
.block pl
        load r1, 0
        load r2, 1
.block ex
        movi r3, 0
        movi r4, 0
        mov r5, r1
top:
        read@vals r6, r5, 0
        add r4, r4, r6
        addi r5, r5, 4
        addi r3, r3, 1
        blt r3, r2, top
.block ps
        movi r7, -1
        store r4, r7, 0
        ffree
        stop
`

func TestRegionsAndTaggedReads(t *testing.T) {
	p, err := asm.Parse(regionSrc)
	if err != nil {
		t.Fatal(err)
	}
	tm := p.Templates[0]
	if len(tm.Regions) != 1 || tm.Regions[0].Name != "vals" {
		t.Fatalf("regions = %+v", tm.Regions)
	}
	if len(tm.Accesses) != 1 || tm.Accesses[0].Region != 0 {
		t.Fatalf("accesses = %+v", tm.Accesses)
	}
	// The parsed program runs and the prefetch pass applies.
	pf, err := prefetch.Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range []*program.Program{p, pf} {
		cfg := cell.DefaultConfig()
		cfg.SPEs = 1
		cfg.MaxCycles = 1_000_000
		m, err := cell.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Tokens[0] != 100 {
			t.Fatalf("token = %d, want 100", res.Tokens[0])
		}
	}
}

const fallocSrc = `
.program forky
.entry root 7

.template child
.block pl
        load r1, 0
.block ps
        movi r2, -1
        store r1, r2, 0
        ffree
        stop

.template root
.block pl
        load r1, 0
.block ps
        falloc r2, child, 1
        store r1, r2, 0
        ffree
        stop
`

func TestFallocByName(t *testing.T) {
	p, err := asm.Parse(fallocSrc)
	if err != nil {
		t.Fatal(err)
	}
	ps := p.Templates[1].Blocks[program.PS]
	tmpl, sc := isa.UnpackFalloc(ps[0].Imm)
	if tmpl != 0 || sc != 1 {
		t.Fatalf("falloc = (%d,%d)", tmpl, sc)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", ".program x\n.entry t 1\n.template t\n.block ex\n bogus r1\n", "unknown mnemonic"},
		{"unknown directive", ".program x\n.frob y\n", "unknown directive"},
		{"bad register", ".program x\n.entry t 1\n.template t\n.block ex\n movi rX, 1\n", "bad register"},
		{"undefined label", ".program x\n.entry t 1\n.template t\n.block ex\n jmp nowhere\n.block ps\n stop\n", "undefined label"},
		{"instruction outside block", ".program x\n.template t\n movi r1, 1\n", "outside a code block"},
		{"unknown region", ".program x\n.entry t 1\n.template t\n.block ex\n read@none r1, r2, 0\n", "unknown region"},
		{"tagged nop", ".program x\n.entry t 1\n.template t\n.region r base s0 size 4 max 16\n.block ex\n nop@r\n", "can be region-tagged"},
		{"missing entry", ".program x\n.template t\n.block ps\n stop\n", "missing .entry"},
		{"falloc unknown template", ".program x\n.entry t 1\n.template t\n.block ps\n falloc r1, ghost, 2\n stop\n", "unknown template"},
		{"duplicate label", ".program x\n.entry t 1\n.template t\n.block ex\nl:\nl:\n", "duplicate label"},
		{"region without max", ".program x\n.entry t 1\n.template t\n.region r base s0 size 4\n.block ps\n stop\n", "needs max"},
		{"bad entry arg", ".program x\n.entry t q\n", "bad entry arg"},
		{"operand count", ".program x\n.entry t 1\n.template t\n.block ex\n add r1, r2\n", "want 3 operands"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := asm.Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	// Round-trip the hand-written sources.
	for _, src := range []string{helloSrc, loopSrc, regionSrc, fallocSrc} {
		p1, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		text := asm.Format(p1)
		p2, err := asm.Parse(text)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, text)
		}
		if !programsEqual(p1, p2) {
			t.Fatalf("round trip changed the program:\n%s", text)
		}
		// Format is a fixpoint after one round.
		if asm.Format(p2) != text {
			t.Fatal("Format not stable after round trip")
		}
	}
}

// TestWorkloadsFormatParseRoundTrip pushes every registered workload
// program (builder-generated, with regions, chunking and multi-template
// forking) through the text format.
func TestWorkloadsFormatParseRoundTrip(t *testing.T) {
	for _, name := range workloads.Names() {
		w, _ := workloads.Get(name)
		p := workloads.Params{N: 8, Workers: 4, Seed: 3}
		if name == "bitcnt" {
			p = workloads.Params{N: 64, Chunk: 8, Seed: 3}
		}
		if name == "vecsum" {
			p = workloads.Params{N: 64, Workers: 4, Seed: 3}
		}
		if name == "stencil" {
			p = workloads.Params{N: 10, Workers: 4, Seed: 3}
		}
		prog, err := w.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text := asm.Format(prog)
		back, err := asm.Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if !programsEqual(prog, back) {
			t.Fatalf("%s: round trip changed the program", name)
		}
	}
}

// programsEqual compares the structural parts that the text format
// carries (not the Go check closure).
func programsEqual(a, b *program.Program) bool {
	if a.Name != b.Name || a.Entry != b.Entry || a.ExpectTokens != b.ExpectTokens {
		return false
	}
	if len(a.EntryArgs) != len(b.EntryArgs) || len(a.Templates) != len(b.Templates) ||
		len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.EntryArgs {
		if a.EntryArgs[i] != b.EntryArgs[i] {
			return false
		}
	}
	for i := range a.Segments {
		if a.Segments[i].Addr != b.Segments[i].Addr ||
			len(a.Segments[i].Data) != len(b.Segments[i].Data) {
			return false
		}
		for j := range a.Segments[i].Data {
			if a.Segments[i].Data[j] != b.Segments[i].Data[j] {
				return false
			}
		}
	}
	for i := range a.Templates {
		ta, tb := a.Templates[i], b.Templates[i]
		if ta.Name != tb.Name || len(ta.Regions) != len(tb.Regions) ||
			len(ta.Accesses) != len(tb.Accesses) {
			return false
		}
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			if len(ta.Blocks[k]) != len(tb.Blocks[k]) {
				return false
			}
			for j := range ta.Blocks[k] {
				if ta.Blocks[k][j] != tb.Blocks[k][j] {
					return false
				}
			}
		}
		for j := range ta.Regions {
			ra, rb := ta.Regions[j], tb.Regions[j]
			if ra.Name != rb.Name || ra.MaxBytes != rb.MaxBytes ||
				ra.ChunkBytes != rb.ChunkBytes || ra.Size != rb.Size ||
				ra.Base.Const != rb.Base.Const || len(ra.Base.Terms) != len(rb.Base.Terms) {
				return false
			}
			for x := range ra.Base.Terms {
				if ra.Base.Terms[x] != rb.Base.Terms[x] {
					return false
				}
			}
		}
		for j := range ta.Accesses {
			if ta.Accesses[j] != tb.Accesses[j] {
				return false
			}
		}
	}
	return true
}
