package asm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Format renders a program in the assembly syntax accepted by Parse.
// Labels are synthesised from branch targets (L0, L1, ...) per block;
// functional check hooks do not round-trip (they are Go closures).
func Format(p *program.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".program %s\n", p.Name)
	entryName := p.Templates[p.Entry].Name
	fmt.Fprintf(&b, ".entry %s", entryName)
	for _, a := range p.EntryArgs {
		fmt.Fprintf(&b, " %d", a)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, ".expect %d\n", p.ExpectTokens)
	for _, seg := range p.Segments {
		formatSegment(&b, seg)
	}
	for _, t := range p.Templates {
		b.WriteString("\n")
		fmt.Fprintf(&b, ".template %s\n", t.Name)
		for _, r := range t.Regions {
			formatRegion(&b, r)
		}
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			if len(t.Blocks[k]) == 0 {
				continue
			}
			fmt.Fprintf(&b, ".block %s\n", k)
			formatBlock(&b, p, t, k)
		}
	}
	return b.String()
}

func formatSegment(b *strings.Builder, seg program.Segment) {
	// Render as 32-bit words when the length allows, else zeros/bytes.
	allZero := true
	for _, d := range seg.Data {
		if d != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		fmt.Fprintf(b, ".segment %#x zeros(%d)\n", seg.Addr, len(seg.Data))
		return
	}
	if len(seg.Data)%4 == 0 {
		fmt.Fprintf(b, ".segment %#x words32(", seg.Addr)
		for i := 0; i < len(seg.Data); i += 4 {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%d", int32(binary.LittleEndian.Uint32(seg.Data[i:])))
		}
		b.WriteString(")\n")
		return
	}
	// Fall back to zero-padded words (parse equivalence is by content
	// only up to padding; callers round-tripping use word-aligned data).
	fmt.Fprintf(b, ".segment %#x zeros(%d)\n", seg.Addr, len(seg.Data))
}

func formatRegion(b *strings.Builder, r program.Region) {
	fmt.Fprintf(b, ".region %s base %s size %s max %d",
		r.Name, formatAddrExpr(r.Base), formatSizeExpr(r.Size), r.MaxBytes)
	if r.ChunkBytes > 0 {
		fmt.Fprintf(b, " chunk %d", r.ChunkBytes)
	}
	b.WriteString("\n")
}

func formatAddrExpr(e program.AddrExpr) string {
	var parts []string
	for _, t := range e.Terms {
		if t.Scale == 1 {
			parts = append(parts, fmt.Sprintf("s%d", t.Slot))
		} else {
			parts = append(parts, fmt.Sprintf("s%d*%d", t.Slot, t.Scale))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	return strings.Join(parts, "+")
}

func formatSizeExpr(e program.SizeExpr) string {
	if e.Slot < 0 {
		return fmt.Sprintf("%d", e.Const)
	}
	s := fmt.Sprintf("s%d", e.Slot)
	if e.Scale != 1 {
		s += fmt.Sprintf("*%d", e.Scale)
	}
	switch {
	case e.Const > 0:
		s += fmt.Sprintf("+%d", e.Const)
	case e.Const < 0:
		s += fmt.Sprintf("%d", e.Const)
	}
	return s
}

func formatBlock(b *strings.Builder, p *program.Program, t *program.Template, k program.BlockKind) {
	block := t.Blocks[k]
	// Collect branch targets for label synthesis.
	targets := map[int]string{}
	var targetList []int
	for _, ins := range block {
		if isa.MustInfo(ins.Op).Branch {
			if _, ok := targets[int(ins.Imm)]; !ok {
				targets[int(ins.Imm)] = ""
				targetList = append(targetList, int(ins.Imm))
			}
		}
	}
	sort.Ints(targetList)
	for i, tgt := range targetList {
		targets[tgt] = fmt.Sprintf("L%d", i)
	}
	// Region tags by instruction index.
	tags := map[int]string{}
	for _, a := range t.Accesses {
		if a.Block == k {
			tags[a.Index] = t.Regions[a.Region].Name
		}
	}
	for i, ins := range block {
		if lbl, ok := targets[i]; ok {
			fmt.Fprintf(b, "%s:\n", lbl)
		}
		fmt.Fprintf(b, "        %s\n", formatIns(p, ins, targets, tags[i]))
	}
	// A trailing label (branch to one past the end is illegal, so no
	// trailing emission is needed).
}

func formatIns(p *program.Program, ins isa.Instruction, targets map[int]string, regionTag string) string {
	info := isa.MustInfo(ins.Op)
	name := info.Name
	if regionTag != "" {
		name = name + "@" + regionTag
	}
	switch {
	case ins.Op == isa.FALLOC:
		tmpl, sc := isa.UnpackFalloc(ins.Imm)
		return fmt.Sprintf("%s r%d, %s, %d", name, ins.Rd, p.Templates[tmpl].Name, sc)
	case ins.Op == isa.JMP:
		return fmt.Sprintf("%s %s", name, targets[int(ins.Imm)])
	case info.Branch:
		return fmt.Sprintf("%s r%d, r%d, %s", name, ins.Ra, ins.Rb, targets[int(ins.Imm)])
	}
	switch info.Fmt {
	case isa.FmtNone:
		return name
	case isa.FmtRd:
		return fmt.Sprintf("%s r%d", name, ins.Rd)
	case isa.FmtRa:
		return fmt.Sprintf("%s r%d", name, ins.Ra)
	case isa.FmtRdImm:
		return fmt.Sprintf("%s r%d, %d", name, ins.Rd, ins.Imm)
	case isa.FmtRdRa:
		return fmt.Sprintf("%s r%d, r%d", name, ins.Rd, ins.Ra)
	case isa.FmtRdRaRb:
		return fmt.Sprintf("%s r%d, r%d, r%d", name, ins.Rd, ins.Ra, ins.Rb)
	case isa.FmtRdRaImm:
		return fmt.Sprintf("%s r%d, r%d, %d", name, ins.Rd, ins.Ra, ins.Imm)
	case isa.FmtRdRaRbIm:
		return fmt.Sprintf("%s r%d, r%d, r%d, %d", name, ins.Rd, ins.Ra, ins.Rb, ins.Imm)
	}
	return name
}
