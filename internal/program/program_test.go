package program

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildMinimal returns a two-template program: a root that forks one
// child and a child that stores a token to the mailbox.
func buildMinimal(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("mini")
	child := b.Template("child")
	child.PL().Load(R(1), 0)
	child.PS().
		StoreMailbox(R(1), R(2), 0).
		Ffree().
		Stop()

	root := b.Template("root")
	root.PL().Load(R(1), 0)
	root.PS().
		Falloc(R(3), child, 1).
		Store(R(1), R(3), 0).
		Ffree().
		Stop()

	b.Entry(root, 42)
	b.ExpectTokens(1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderMinimalProgram(t *testing.T) {
	p := buildMinimal(t)
	if p.Entry != 1 {
		t.Fatalf("entry = %d, want 1 (root)", p.Entry)
	}
	if len(p.EntryArgs) != 1 || p.EntryArgs[0] != 42 {
		t.Fatalf("entry args = %v", p.EntryArgs)
	}
	if got := p.CodeLen(); got != 10 {
		t.Fatalf("CodeLen = %d, want 10", got)
	}
	// falloc immediate must reference the child template with SC 1.
	ps := p.Templates[1].Blocks[PS]
	tmpl, sc := isa.UnpackFalloc(ps[0].Imm)
	if tmpl != 0 || sc != 1 {
		t.Fatalf("falloc packs (%d,%d), want (0,1)", tmpl, sc)
	}
}

func TestLabelResolution(t *testing.T) {
	b := NewBuilder("loops")
	tt := b.Template("t")
	ex := tt.EX()
	ex.Movi(R(1), 0)
	ex.Movi(R(2), 10)
	ex.Label("top")
	ex.Addi(R(1), R(1), 1)
	ex.Blt(R(1), R(2), "top")
	tt.PS().Ffree().Stop()
	b.Entry(tt, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ins := p.Templates[0].Blocks[EX]
	if ins[3].Op != isa.BLT || ins[3].Imm != 2 {
		t.Fatalf("branch = %v, want blt to index 2", ins[3])
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	tt := b.Template("t")
	tt.EX().Jmp("nowhere")
	tt.PS().Stop()
	b.Entry(tt, 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("Build err = %v, want undefined label", err)
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	tt := b.Template("t")
	tt.EX().Label("x").Label("x")
	tt.PS().Stop()
	b.Entry(tt, 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("Build err = %v, want duplicate label", err)
	}
}

func TestBlockDisciplineViolations(t *testing.T) {
	cases := []struct {
		name  string
		build func(tt *TB)
	}{
		{"load in EX", func(tt *TB) { tt.EX().Load(R(1), 0) }},
		{"store in EX", func(tt *TB) { tt.EX().Store(R(1), R(2), 0) }},
		{"read in PL", func(tt *TB) { tt.PL().Read(R(1), R(2), 0) }},
		{"read in PS", func(tt *TB) { tt.Block(PS).Read(R(1), R(2), 0) }},
		{"mfc outside PF", func(tt *TB) { tt.EX().Mfcget() }},
		{"stop in EX", func(tt *TB) { tt.EX().Emit(isa.Instruction{Op: isa.STOP}) }},
		{"frame store in PF", func(tt *TB) { tt.Block(PF).Store(R(1), R(2), 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder("bad")
			tt := b.Template("t")
			c.build(tt)
			tt.PS().Ffree().Stop()
			b.Entry(tt, 1)
			if _, err := b.Build(); !errors.Is(err, ErrBlockDiscipline) {
				t.Fatalf("Build err = %v, want ErrBlockDiscipline", err)
			}
		})
	}
}

func TestPSMustEndWithStop(t *testing.T) {
	b := NewBuilder("nostop")
	tt := b.Template("t")
	tt.PS().Ffree() // no stop
	b.Entry(tt, 1)
	if _, err := b.Build(); !errors.Is(err, ErrNoStop) {
		t.Fatalf("Build err = %v, want ErrNoStop", err)
	}
}

func TestRegionTaggingAndValidation(t *testing.T) {
	b := NewBuilder("regions")
	tt := b.Template("t")
	rg := tt.Region("table", AddrExpr{Terms: []AddrTerm{{Slot: 0, Scale: 1}}}, SizeConst(1024), 1024)
	ex := tt.EX()
	ex.Movi(R(2), 0x1000)
	ex.ReadRegion(rg, R(1), R(2), 8)
	tt.PS().Ffree().Stop()
	b.Entry(tt, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	tm := p.Templates[0]
	if len(tm.Accesses) != 1 {
		t.Fatalf("accesses = %v", tm.Accesses)
	}
	a := tm.Accesses[0]
	if a.Block != EX || a.Index != 1 || a.Region != 0 {
		t.Fatalf("access = %+v", a)
	}
}

func TestRegionFromOtherTemplateRejected(t *testing.T) {
	b := NewBuilder("cross")
	t1 := b.Template("one")
	rg := t1.Region("r", AddrExpr{Const: 0x1000}, SizeConst(64), 64)
	t1.PS().Ffree().Stop()
	t2 := b.Template("two")
	t2.EX().Movi(R(2), 0x1000)
	t2.EX().ReadRegion(rg, R(1), R(2), 0)
	t2.PS().Ffree().Stop()
	b.Entry(t1, 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "region of template") {
		t.Fatalf("Build err = %v, want cross-template region error", err)
	}
}

func TestRegionSizeBoundsChecked(t *testing.T) {
	b := NewBuilder("big")
	tt := b.Template("t")
	tt.Region("r", AddrExpr{Const: 0x1000}, SizeConst(2048), 1024) // size > max
	tt.PS().Ffree().Stop()
	b.Entry(tt, 1)
	if _, err := b.Build(); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("Build err = %v, want ErrBadRegion", err)
	}
}

func TestBranchTargetOutOfBlock(t *testing.T) {
	b := NewBuilder("bt")
	tt := b.Template("t")
	tt.EX().Emit(isa.Instruction{Op: isa.JMP, Imm: 99})
	tt.PS().Ffree().Stop()
	b.Entry(tt, 1)
	if _, err := b.Build(); !errors.Is(err, ErrBranchTarget) {
		t.Fatalf("Build err = %v, want ErrBranchTarget", err)
	}
}

func TestSegmentOverlapDetected(t *testing.T) {
	b := NewBuilder("segs")
	tt := b.Template("t")
	tt.PS().Ffree().Stop()
	b.Entry(tt, 1)
	b.Segment(0x1000, make([]byte, 64))
	b.Segment(0x1020, make([]byte, 16)) // overlaps
	if _, err := b.Build(); !errors.Is(err, ErrSegOverlap) {
		t.Fatalf("Build err = %v, want ErrSegOverlap", err)
	}
}

func TestLiExpandsLargeConstants(t *testing.T) {
	b := NewBuilder("li")
	tt := b.Template("t")
	ex := tt.EX()
	ex.Li(R(1), 100)           // fits: one movi
	ex.Li(R(2), 0x1_0000_0000) // needs pair
	tt.PS().Ffree().Stop()
	b.Entry(tt, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ins := p.Templates[0].Blocks[EX]
	if len(ins) != 3 {
		t.Fatalf("len = %d, want 3 (movi + movhi/ori)", len(ins))
	}
	if ins[0].Op != isa.MOVI || ins[1].Op != isa.MOVHI || ins[2].Op != isa.ORI {
		t.Fatalf("ops = %v %v %v", ins[0].Op, ins[1].Op, ins[2].Op)
	}
}

func TestRPanicsOutsideUserRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R(120) did not panic")
		}
	}()
	R(120)
}

func TestCloneIsDeep(t *testing.T) {
	p := buildMinimal(t)
	q := p.Clone()
	q.Templates[0].Blocks[PS][0].Imm = 99
	q.EntryArgs[0] = 7
	if p.Templates[0].Blocks[PS][0].Imm == 99 {
		t.Fatal("clone shares instruction storage")
	}
	if p.EntryArgs[0] == 7 {
		t.Fatal("clone shares entry args")
	}
}

func TestValidateChecksTemplateIDs(t *testing.T) {
	p := buildMinimal(t)
	p.Templates[0].ID = 5
	if err := p.Validate(); !errors.Is(err, ErrBadID) {
		t.Fatalf("Validate = %v, want ErrBadID", err)
	}
}

func TestFallocSCWithinFrame(t *testing.T) {
	b := NewBuilder("sc")
	tt := b.Template("t")
	tt.PS().Falloc(R(1), tt, MaxFrameSlots+1).Ffree().Stop()
	b.Entry(tt, 1)
	if _, err := b.Build(); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Build err = %v, want ErrBadSlot", err)
	}
}
