package program

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Reg names an SPU register in builder code.
type Reg uint8

// Registers with ABI meaning (see isa package).
const (
	R0     Reg = isa.RegZero // hardwired zero
	RegFP  Reg = isa.RegFP   // current thread's frame pointer
	RegPFB Reg = isa.RegPFB  // prefetch buffer base (set when a PF block runs)
	RegSPE Reg = isa.RegSPE  // executing SPE index
	RegTag Reg = isa.RegTag  // thread's DMA tag group
)

// R returns the i'th general register and panics when out of range or
// when it would collide with the transformer-reserved range; workload
// code uses this to allocate registers explicitly.
func R(i int) Reg {
	if i < 0 || i >= isa.FirstReservedReg {
		panic(fmt.Sprintf("program: register r%d outside user range [0,%d)", i, isa.FirstReservedReg))
	}
	return Reg(i)
}

// RegionRef is an opaque handle to a declared region of a template.
type RegionRef struct {
	tmpl  *TB
	index int
}

// Builder accumulates a Program. Errors are collected and reported by
// Build, so workload construction code can stay assignment-free.
type Builder struct {
	prog *Program
	tbs  []*TB
	errs []error
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name, ExpectTokens: 1}}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Template adds a thread template and returns its builder. Template IDs
// are assigned in creation order.
func (b *Builder) Template(name string) *TB {
	t := &TB{
		b:    b,
		tmpl: &Template{Name: name, ID: len(b.tbs)},
	}
	for k := BlockKind(0); k < NumBlocks; k++ {
		t.asms[k] = &Asm{tb: t, kind: k, labels: map[string]int{}}
	}
	b.tbs = append(b.tbs, t)
	return t
}

// Entry declares the root thread and the arguments the PPE stores into
// its frame (SC = len(args); use at least one argument so the root thread
// has a well-defined start event).
func (b *Builder) Entry(t *TB, args ...int64) {
	b.prog.Entry = t.tmpl.ID
	b.prog.EntryArgs = append([]int64(nil), args...)
}

// Segment places data at addr in the initial main-memory image.
func (b *Builder) Segment(addr int64, data []byte) {
	b.prog.Segments = append(b.prog.Segments, Segment{Addr: addr, Data: append([]byte(nil), data...)})
}

// ExpectTokens sets how many mailbox stores complete the activity.
func (b *Builder) ExpectTokens(n int) { b.prog.ExpectTokens = n }

// Check installs the functional verification hook.
func (b *Builder) Check(fn func(mem MemReader, tokens []int64) error) { b.prog.Check = fn }

// Build finalises all templates (resolving labels), validates the
// program and returns it.
func (b *Builder) Build() (*Program, error) {
	for _, t := range b.tbs {
		for k := BlockKind(0); k < NumBlocks; k++ {
			if err := t.asms[k].finalize(); err != nil {
				b.errs = append(b.errs, err)
			}
			t.tmpl.Blocks[k] = t.asms[k].ins
		}
		b.prog.Templates = append(b.prog.Templates, t.tmpl)
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// TB builds one template.
type TB struct {
	b    *Builder
	tmpl *Template
	asms [NumBlocks]*Asm
}

// ID returns the template's id (usable in FALLOC immediates).
func (t *TB) ID() int { return t.tmpl.ID }

// Name returns the template's name.
func (t *TB) Name() string { return t.tmpl.Name }

// Region declares a global-data region for the prefetch transformer,
// fetched with a single DMA command.
func (t *TB) Region(name string, base AddrExpr, size SizeExpr, maxBytes int) RegionRef {
	t.tmpl.Regions = append(t.tmpl.Regions, Region{Name: name, Base: base, Size: size, MaxBytes: maxBytes})
	return RegionRef{tmpl: t, index: len(t.tmpl.Regions) - 1}
}

// RegionChunked declares a region fetched with one DMA command per
// chunkBytes (e.g. per matrix row).
func (t *TB) RegionChunked(name string, base AddrExpr, size SizeExpr, maxBytes, chunkBytes int) RegionRef {
	t.tmpl.Regions = append(t.tmpl.Regions, Region{
		Name: name, Base: base, Size: size, MaxBytes: maxBytes, ChunkBytes: chunkBytes,
	})
	return RegionRef{tmpl: t, index: len(t.tmpl.Regions) - 1}
}

// Block returns the assembler for code block k.
func (t *TB) Block(k BlockKind) *Asm { return t.asms[k] }

// PL, EX and PS are shorthands for Block.
func (t *TB) PL() *Asm { return t.asms[PL] }
func (t *TB) EX() *Asm { return t.asms[EX] }
func (t *TB) PS() *Asm { return t.asms[PS] }

type fixup struct {
	index int
	label string
}

// Asm emits instructions into one code block and resolves labels.
type Asm struct {
	tb     *TB
	kind   BlockKind
	ins    []isa.Instruction
	labels map[string]int
	fixups []fixup
}

// Len returns the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.ins) }

// Emit appends a raw instruction.
func (a *Asm) Emit(ins isa.Instruction) *Asm {
	a.ins = append(a.ins, ins)
	return a
}

// Label defines a branch target at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.tb.b.errf("program: duplicate label %q in %s/%s", name, a.tb.tmpl.Name, a.kind)
		return a
	}
	a.labels[name] = len(a.ins)
	return a
}

func (a *Asm) branch(op isa.Op, ra, rb Reg, label string) *Asm {
	a.fixups = append(a.fixups, fixup{index: len(a.ins), label: label})
	return a.Emit(isa.Instruction{Op: op, Ra: uint8(ra), Rb: uint8(rb)})
}

func (a *Asm) finalize() error {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("program: undefined label %q in %s/%s", f.label, a.tb.tmpl.Name, a.kind)
		}
		a.ins[f.index].Imm = int32(target)
	}
	a.fixups = nil
	return nil
}

// ---- constants and moves ----

// Movi loads a 32-bit immediate (sign-extended).
func (a *Asm) Movi(rd Reg, imm int32) *Asm {
	return a.Emit(isa.Instruction{Op: isa.MOVI, Rd: uint8(rd), Imm: imm})
}

// Li loads a 64-bit constant, using one instruction when it fits in an
// int32 and a MOVHI/ORI pair otherwise. The low 32 bits must not have the
// sign bit set in the pair form (ORI sign-extends); builder reports an
// error for such constants, which do not occur in practice (addresses are
// below 2^31).
func (a *Asm) Li(rd Reg, v int64) *Asm {
	if int64(int32(v)) == v {
		return a.Movi(rd, int32(v))
	}
	lo := int32(uint32(v))
	if lo < 0 {
		a.tb.b.errf("program: Li constant %#x needs sign-bit-set low half", v)
		return a
	}
	a.Emit(isa.Instruction{Op: isa.MOVHI, Rd: uint8(rd), Imm: int32(v >> 32)})
	return a.Emit(isa.Instruction{Op: isa.ORI, Rd: uint8(rd), Ra: uint8(rd), Imm: lo})
}

// Mov copies ra to rd.
func (a *Asm) Mov(rd, ra Reg) *Asm {
	return a.Emit(isa.Instruction{Op: isa.MOV, Rd: uint8(rd), Ra: uint8(ra)})
}

// ---- three-operand and immediate arithmetic ----

func (a *Asm) op3(op isa.Op, rd, ra, rb Reg) *Asm {
	return a.Emit(isa.Instruction{Op: op, Rd: uint8(rd), Ra: uint8(ra), Rb: uint8(rb)})
}

func (a *Asm) opImm(op isa.Op, rd, ra Reg, imm int32) *Asm {
	return a.Emit(isa.Instruction{Op: op, Rd: uint8(rd), Ra: uint8(ra), Imm: imm})
}

func (a *Asm) Add(rd, ra, rb Reg) *Asm         { return a.op3(isa.ADD, rd, ra, rb) }
func (a *Asm) Addi(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.ADDI, rd, ra, imm) }
func (a *Asm) Sub(rd, ra, rb Reg) *Asm         { return a.op3(isa.SUB, rd, ra, rb) }
func (a *Asm) Subi(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.SUBI, rd, ra, imm) }
func (a *Asm) Mul(rd, ra, rb Reg) *Asm         { return a.op3(isa.MUL, rd, ra, rb) }
func (a *Asm) Muli(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.MULI, rd, ra, imm) }
func (a *Asm) Div(rd, ra, rb Reg) *Asm         { return a.op3(isa.DIV, rd, ra, rb) }
func (a *Asm) Rem(rd, ra, rb Reg) *Asm         { return a.op3(isa.REM, rd, ra, rb) }
func (a *Asm) And(rd, ra, rb Reg) *Asm         { return a.op3(isa.AND, rd, ra, rb) }
func (a *Asm) Andi(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.ANDI, rd, ra, imm) }
func (a *Asm) Or(rd, ra, rb Reg) *Asm          { return a.op3(isa.OR, rd, ra, rb) }
func (a *Asm) Ori(rd, ra Reg, imm int32) *Asm  { return a.opImm(isa.ORI, rd, ra, imm) }
func (a *Asm) Xor(rd, ra, rb Reg) *Asm         { return a.op3(isa.XOR, rd, ra, rb) }
func (a *Asm) Xori(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.XORI, rd, ra, imm) }
func (a *Asm) Shl(rd, ra, rb Reg) *Asm         { return a.op3(isa.SHL, rd, ra, rb) }
func (a *Asm) Shli(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.SHLI, rd, ra, imm) }
func (a *Asm) Shr(rd, ra, rb Reg) *Asm         { return a.op3(isa.SHR, rd, ra, rb) }
func (a *Asm) Shri(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.SHRI, rd, ra, imm) }
func (a *Asm) Sra(rd, ra, rb Reg) *Asm         { return a.op3(isa.SRA, rd, ra, rb) }
func (a *Asm) Srai(rd, ra Reg, imm int32) *Asm { return a.opImm(isa.SRAI, rd, ra, imm) }
func (a *Asm) Cmpeq(rd, ra, rb Reg) *Asm       { return a.op3(isa.CMPEQ, rd, ra, rb) }
func (a *Asm) Cmplt(rd, ra, rb Reg) *Asm       { return a.op3(isa.CMPLT, rd, ra, rb) }
func (a *Asm) Cmpltu(rd, ra, rb Reg) *Asm      { return a.op3(isa.CMPLTU, rd, ra, rb) }
func (a *Asm) Nop() *Asm                       { return a.Emit(isa.Instruction{Op: isa.NOP}) }

// ---- control flow ----

// Jmp jumps unconditionally to label.
func (a *Asm) Jmp(label string) *Asm {
	a.fixups = append(a.fixups, fixup{index: len(a.ins), label: label})
	return a.Emit(isa.Instruction{Op: isa.JMP})
}

func (a *Asm) Beq(ra, rb Reg, label string) *Asm  { return a.branch(isa.BEQ, ra, rb, label) }
func (a *Asm) Bne(ra, rb Reg, label string) *Asm  { return a.branch(isa.BNE, ra, rb, label) }
func (a *Asm) Blt(ra, rb Reg, label string) *Asm  { return a.branch(isa.BLT, ra, rb, label) }
func (a *Asm) Bge(ra, rb Reg, label string) *Asm  { return a.branch(isa.BGE, ra, rb, label) }
func (a *Asm) Bltu(ra, rb Reg, label string) *Asm { return a.branch(isa.BLTU, ra, rb, label) }
func (a *Asm) Bgeu(ra, rb Reg, label string) *Asm { return a.branch(isa.BGEU, ra, rb, label) }

// ---- frame memory ----

// Load reads slot of the current thread's frame.
func (a *Asm) Load(rd Reg, slot int) *Asm {
	return a.Emit(isa.Instruction{Op: isa.LOAD, Rd: uint8(rd), Imm: int32(slot)})
}

// Loadx reads the slot whose index is in ra.
func (a *Asm) Loadx(rd, ra Reg) *Asm {
	return a.Emit(isa.Instruction{Op: isa.LOADX, Rd: uint8(rd), Ra: uint8(ra)})
}

// Store writes rv into slot of the frame pointed to by rfp (decrementing
// the target thread's SC).
func (a *Asm) Store(rv, rfp Reg, slot int) *Asm {
	return a.Emit(isa.Instruction{Op: isa.STORE, Rd: uint8(rv), Ra: uint8(rfp), Imm: int32(slot)})
}

// Storex writes rv into the slot indexed by rslot of frame rfp.
func (a *Asm) Storex(rv, rfp, rslot Reg) *Asm {
	return a.op3(isa.STOREX, rv, rfp, rslot)
}

// ---- main memory ----

// Read performs a blocking 4-byte main-memory read from ra+off.
func (a *Asm) Read(rd, ra Reg, off int32) *Asm {
	return a.opImm(isa.READ, rd, ra, off)
}

// Read8 performs a blocking 8-byte main-memory read.
func (a *Asm) Read8(rd, ra Reg, off int32) *Asm {
	return a.opImm(isa.READ8, rd, ra, off)
}

// ReadRegion emits a blocking read tagged as belonging to region, so the
// prefetch transformer may decouple it.
func (a *Asm) ReadRegion(region RegionRef, rd, ra Reg, off int32) *Asm {
	a.tagAccess(region)
	return a.Read(rd, ra, off)
}

// Read8Region is ReadRegion for 8-byte accesses.
func (a *Asm) Read8Region(region RegionRef, rd, ra Reg, off int32) *Asm {
	a.tagAccess(region)
	return a.Read8(rd, ra, off)
}

func (a *Asm) tagAccess(region RegionRef) {
	if region.tmpl != a.tb {
		a.tb.b.errf("program: region of template %q used in template %q",
			region.tmpl.tmpl.Name, a.tb.tmpl.Name)
		return
	}
	a.tb.tmpl.Accesses = append(a.tb.tmpl.Accesses, Access{
		Block: a.kind, Index: len(a.ins), Region: region.index,
	})
}

// Write posts a 4-byte main-memory write of rv to ra+off.
func (a *Asm) Write(rv, ra Reg, off int32) *Asm {
	return a.opImm(isa.WRITE, rv, ra, off)
}

// WriteRegion posts a write tagged as falling into region, so the
// write-back transformation may redirect it into a local staging buffer
// flushed by a PS-block DMA PUT (ablation A7).
func (a *Asm) WriteRegion(region RegionRef, rv, ra Reg, off int32) *Asm {
	a.tagAccess(region)
	return a.Write(rv, ra, off)
}

// Write8Region is WriteRegion for 8-byte writes.
func (a *Asm) Write8Region(region RegionRef, rv, ra Reg, off int32) *Asm {
	a.tagAccess(region)
	return a.Write8(rv, ra, off)
}

// Write8 posts an 8-byte main-memory write.
func (a *Asm) Write8(rv, ra Reg, off int32) *Asm {
	return a.opImm(isa.WRITE8, rv, ra, off)
}

// ---- local store ----

func (a *Asm) Lsrd(rd, ra Reg, off int32) *Asm  { return a.opImm(isa.LSRD, rd, ra, off) }
func (a *Asm) Lsrd8(rd, ra Reg, off int32) *Asm { return a.opImm(isa.LSRD8, rd, ra, off) }
func (a *Asm) Lswr(rv, ra Reg, off int32) *Asm  { return a.opImm(isa.LSWR, rv, ra, off) }
func (a *Asm) Lswr8(rv, ra Reg, off int32) *Asm { return a.opImm(isa.LSWR8, rv, ra, off) }

// ---- DTA thread management ----

// Falloc allocates a frame for a thread of template t with the given SC.
func (a *Asm) Falloc(rd Reg, t *TB, sc int) *Asm {
	imm, err := isa.PackFalloc(t.tmpl.ID, sc)
	if err != nil {
		a.tb.b.errs = append(a.tb.b.errs, err)
		return a
	}
	return a.Emit(isa.Instruction{Op: isa.FALLOC, Rd: uint8(rd), Imm: imm})
}

// Fallocx allocates a frame with template id in ra and SC in rb.
func (a *Asm) Fallocx(rd, ra, rb Reg) *Asm { return a.op3(isa.FALLOCX, rd, ra, rb) }

// Ffree releases the current thread's frame.
func (a *Asm) Ffree() *Asm { return a.Emit(isa.Instruction{Op: isa.FFREE}) }

// Stop ends the thread.
func (a *Asm) Stop() *Asm { return a.Emit(isa.Instruction{Op: isa.STOP}) }

// StoreMailbox stores rv as completion token slot of the PPE mailbox,
// clobbering scratch with the mailbox FP.
func (a *Asm) StoreMailbox(rv, scratch Reg, slot int) *Asm {
	a.Movi(scratch, -1) // MailboxFP
	return a.Store(rv, scratch, slot)
}

// ---- MFC / DMA ----

func (a *Asm) Mfclsa(ra Reg) *Asm { return a.Emit(isa.Instruction{Op: isa.MFCLSA, Ra: uint8(ra)}) }
func (a *Asm) Mfcea(ra Reg) *Asm  { return a.Emit(isa.Instruction{Op: isa.MFCEA, Ra: uint8(ra)}) }
func (a *Asm) Mfcsz(ra Reg) *Asm  { return a.Emit(isa.Instruction{Op: isa.MFCSZ, Ra: uint8(ra)}) }
func (a *Asm) Mfctag(ra Reg) *Asm { return a.Emit(isa.Instruction{Op: isa.MFCTAG, Ra: uint8(ra)}) }
func (a *Asm) Mfcget() *Asm       { return a.Emit(isa.Instruction{Op: isa.MFCGET}) }
func (a *Asm) Mfcput() *Asm       { return a.Emit(isa.Instruction{Op: isa.MFCPUT}) }
func (a *Asm) Mfcstat(rd Reg) *Asm {
	return a.Emit(isa.Instruction{Op: isa.MFCSTAT, Rd: uint8(rd)})
}
