package program

import (
	"errors"
	"fmt"
)

// Segment is a chunk of the initial main-memory image (global input
// data placed by the host before the TLP activity starts).
type Segment struct {
	Addr int64
	Data []byte
}

// MemReader is the view of main memory that result checkers get after a
// run completes.
type MemReader interface {
	// Read32 returns the sign-extended 32-bit word at addr.
	Read32(addr int64) int64
	// Read64 returns the 64-bit word at addr.
	Read64(addr int64) int64
}

// MailboxFP is the frame-pointer value that designates the PPE mailbox:
// a STORE to this FP delivers a completion token to the host instead of
// to a thread frame. The all-ones pattern can never be a real FP.
const MailboxFP int64 = -1

// Program is a complete DTA program: templates, the entry thread, the
// initial memory image and the completion/verification contract.
type Program struct {
	Name      string
	Templates []*Template

	// Entry is the template ID of the root thread. The PPE FALLOCs it
	// with SC = len(EntryArgs) and stores EntryArgs into slots 0..n-1.
	Entry     int
	EntryArgs []int64

	// ExpectTokens is how many mailbox stores the PPE waits for before
	// declaring the TLP activity complete.
	ExpectTokens int

	// Segments is the initial main-memory image.
	Segments []Segment

	// Check verifies the functional result after the run: tokens are the
	// mailbox values in slot order. It may be nil.
	Check func(mem MemReader, tokens []int64) error
}

// Errors returned by Program.Validate.
var (
	ErrNoTemplates = errors.New("program: no templates")
	ErrBadEntry    = errors.New("program: entry template out of range")
	ErrBadID       = errors.New("program: template ID mismatch")
	ErrTooManyArgs = errors.New("program: entry args exceed frame slots")
	ErrSegOverlap  = errors.New("program: memory segments overlap")
)

// Validate checks the whole program, including every template.
func (p *Program) Validate() error {
	if len(p.Templates) == 0 {
		return ErrNoTemplates
	}
	for i, t := range p.Templates {
		if t.ID != i {
			return fmt.Errorf("%w: template %q has ID %d at index %d", ErrBadID, t.Name, t.ID, i)
		}
		if err := t.Validate(p.Templates); err != nil {
			return err
		}
	}
	if p.Entry < 0 || p.Entry >= len(p.Templates) {
		return fmt.Errorf("%w: %d", ErrBadEntry, p.Entry)
	}
	if len(p.EntryArgs) > MaxFrameSlots {
		return fmt.Errorf("%w: %d", ErrTooManyArgs, len(p.EntryArgs))
	}
	if p.ExpectTokens < 1 {
		return errors.New("program: ExpectTokens must be >= 1")
	}
	for i := 0; i < len(p.Segments); i++ {
		a := p.Segments[i]
		if a.Addr < 0 || len(a.Data) == 0 {
			return fmt.Errorf("program: segment %d empty or negative address", i)
		}
		for j := i + 1; j < len(p.Segments); j++ {
			b := p.Segments[j]
			if a.Addr < b.Addr+int64(len(b.Data)) && b.Addr < a.Addr+int64(len(a.Data)) {
				return fmt.Errorf("%w: [%#x,%#x) and [%#x,%#x)", ErrSegOverlap,
					a.Addr, a.Addr+int64(len(a.Data)), b.Addr, b.Addr+int64(len(b.Data)))
			}
		}
	}
	return nil
}

// CodeLen returns the total instruction count over all templates.
func (p *Program) CodeLen() int {
	n := 0
	for _, t := range p.Templates {
		n += t.CodeLen()
	}
	return n
}

// MaxPrefetchBytes returns the largest per-thread prefetch reservation
// over all templates (used to size the LS prefetch heap check).
func (p *Program) MaxPrefetchBytes() int {
	max := 0
	for _, t := range p.Templates {
		if t.PrefetchBytes > max {
			max = t.PrefetchBytes
		}
	}
	return max
}

// Clone returns a deep copy of the program. The prefetch transformer
// operates on a clone so that a single built program can be run both ways
// (with and without prefetching) from the same in-memory object.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:         p.Name,
		Entry:        p.Entry,
		EntryArgs:    append([]int64(nil), p.EntryArgs...),
		ExpectTokens: p.ExpectTokens,
		Check:        p.Check,
	}
	for _, s := range p.Segments {
		q.Segments = append(q.Segments, Segment{Addr: s.Addr, Data: append([]byte(nil), s.Data...)})
	}
	for _, t := range p.Templates {
		nt := &Template{
			Name:          t.Name,
			ID:            t.ID,
			Regions:       append([]Region(nil), t.Regions...),
			Accesses:      append([]Access(nil), t.Accesses...),
			PrefetchBytes: t.PrefetchBytes,
			RegionOffsets: append([]int(nil), t.RegionOffsets...),
			Transformed:   t.Transformed,
		}
		for k := range t.Blocks {
			nt.Blocks[k] = append(nt.Blocks[k][:0:0], t.Blocks[k]...)
		}
		q.Templates = append(q.Templates, nt)
	}
	return q
}
