// Package program defines the representation of DTA programs: thread
// templates split into the paper's code blocks (PF, PL, EX, PS), declared
// global-data regions used by the prefetch transformer, the initial main
// memory image, and a builder API (a macro-assembler) that the workloads
// use to construct programs.
//
// Code-block discipline (paper §2): a thread reads its frame in the
// pre-load (PL) block, computes in the execution (EX) block and writes
// other threads' frames in the post-store (PS) block. The original DTA
// still allowed main-memory READ/WRITE in EX — those are exactly the
// accesses the DMA prefetching mechanism decouples by adding a PreFetch
// (PF) block. The Validate method enforces the discipline so that
// hand-built workloads cannot silently break the model.
package program

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// BlockKind identifies one of the four code blocks of a DTA thread.
type BlockKind int

const (
	PF BlockKind = iota // PreFetch: programs the DMA unit (added by the transformer)
	PL                  // Pre-Load: frame -> registers
	EX                  // EXecution: pure compute (+ main-memory accesses in original DTA)
	PS                  // Post-Store: registers -> other threads' frames
	NumBlocks
)

func (k BlockKind) String() string {
	switch k {
	case PF:
		return "pf"
	case PL:
		return "pl"
	case EX:
		return "ex"
	case PS:
		return "ps"
	}
	return fmt.Sprintf("block(%d)", int(k))
}

// BlockKindByName resolves "pf"/"pl"/"ex"/"ps".
func BlockKindByName(s string) (BlockKind, bool) {
	switch s {
	case "pf":
		return PF, true
	case "pl":
		return PL, true
	case "ex":
		return EX, true
	case "ps":
		return PS, true
	}
	return 0, false
}

// MaxFrameSlots is the architectural frame size in 64-bit slots (256
// bytes per frame). The paper does not state the CellDTA frame size; 32
// slots matches the SDF/DTA-C lineage of small fixed-size frames.
const MaxFrameSlots = 32

// AddrTerm contributes frame[Slot]*Scale to an address expression.
type AddrTerm struct {
	Slot  int   // frame slot holding the variable
	Scale int64 // multiplier
}

// AddrExpr describes a runtime address: Const + Σ frame[t.Slot]*t.Scale.
// The prefetch transformer synthesises PF-block code that evaluates it.
type AddrExpr struct {
	Const int64
	Terms []AddrTerm
}

// SizeExpr describes a transfer size in bytes: Const when Slot < 0,
// otherwise Const + frame[Slot]*Scale.
type SizeExpr struct {
	Const int64
	Slot  int
	Scale int64
}

// SizeConst returns a constant SizeExpr.
func SizeConst(n int64) SizeExpr { return SizeExpr{Const: n, Slot: -1} }

// SizeSlot returns a frame-dependent SizeExpr (frame[slot]*scale + c).
func SizeSlot(slot int, scale, c int64) SizeExpr {
	return SizeExpr{Const: c, Slot: slot, Scale: scale}
}

// Region declares a block of global (main-memory) data that a thread
// reads. The prefetch transformer turns each region into DMA GETs in a
// synthesised PF block and rewrites the tagged READ accesses into
// local-store accesses.
type Region struct {
	Name     string
	Base     AddrExpr
	Size     SizeExpr
	MaxBytes int // static prefetch-buffer reservation; must bound Size
	// ChunkBytes > 0 splits the fetch into one DMA command per chunk
	// (e.g. one per matrix row: a 2D object cannot be fetched with a
	// single contiguous command). Zero fetches the region in one
	// command. Chunking models the paper's per-object programming cost —
	// the "Prefetching" overhead of Figure 5b.
	ChunkBytes int
}

// Access tags one READ/READ8 instruction as falling inside a region, so
// the transformer may rewrite it. Instructions without a tag are left
// blocking (the paper leaves non-profitable accesses undecoupled, e.g.
// the single data-dependent table lookup in bitcnt).
type Access struct {
	Block  BlockKind
	Index  int // instruction index within the block
	Region int // index into Template.Regions
}

// Template is one DTA thread type: its four code blocks plus the
// prefetch metadata.
type Template struct {
	Name     string
	ID       int
	Blocks   [NumBlocks][]isa.Instruction
	Regions  []Region
	Accesses []Access

	// PrefetchBytes is the static prefetch-buffer reservation for the
	// template (sum of aligned region MaxBytes); it is filled in by the
	// prefetch transformer and zero for untransformed templates.
	PrefetchBytes int
	// RegionOffsets[i] is the offset of the i'th prefetched region
	// inside the thread's buffer (filled in by the transformer).
	RegionOffsets []int
	// Transformed marks templates rewritten by the prefetch transformer.
	Transformed bool
}

// CodeLen returns the total number of instructions across all blocks.
func (t *Template) CodeLen() int {
	n := 0
	for _, b := range t.Blocks {
		n += len(b)
	}
	return n
}

// Block-legality table. See the package comment; "original DTA" rules
// with the prefetch extensions:
//
//	PF: frame loads, compute, branches, MFC channel ops
//	PL: frame loads, compute, branches, direct LS reads
//	EX: compute, branches, main-memory READ/WRITE, direct LS ops, FALLOC
//	PS: compute, branches, frame stores, FALLOC, FFREE, STOP, WRITE,
//	    MFC channel ops (write-back PUTs)
func legalIn(op isa.Op, k BlockKind) bool {
	info := isa.MustInfo(op)
	switch info.Unit {
	case isa.UnitFX, isa.UnitSH, isa.UnitMUL, isa.UnitDIV, isa.UnitCTL:
		return true
	}
	switch op {
	case isa.LOAD, isa.LOADX:
		return k == PF || k == PL
	case isa.STORE, isa.STOREX:
		return k == PS
	case isa.READ, isa.READ8:
		return k == EX
	case isa.WRITE, isa.WRITE8:
		return k == EX || k == PS
	case isa.LSRD, isa.LSRD8, isa.LSRDX, isa.LSRDX8:
		return k == PL || k == EX
	case isa.LSWR, isa.LSWR8, isa.LSWRX, isa.LSWRX8:
		return k == EX
	case isa.FALLOC, isa.FALLOCX:
		return k == EX || k == PS
	case isa.FFREE, isa.STOP:
		return k == PS
	case isa.MFCLSA, isa.MFCEA, isa.MFCSZ, isa.MFCTAG, isa.MFCGET, isa.MFCPUT, isa.MFCSTAT:
		// PF programs prefetches; PS may program write-back PUTs (the
		// write-decoupling extension, ablation A7).
		return k == PF || k == PS
	}
	return false
}

// Validation errors.
var (
	ErrBlockDiscipline = errors.New("program: instruction not allowed in code block")
	ErrBranchTarget    = errors.New("program: branch target out of block")
	ErrNoStop          = errors.New("program: PS block must end with stop")
	ErrBadRegion       = errors.New("program: malformed region")
	ErrBadAccess       = errors.New("program: malformed region access tag")
	ErrBadSlot         = errors.New("program: frame slot out of range")
)

// Validate checks the template: instruction well-formedness, code-block
// discipline, branch targets, slot ranges, region declarations and access
// tags. templates is the program's template table (for FALLOC targets);
// it may be nil to skip cross-template checks.
func (t *Template) Validate(templates []*Template) error {
	for k := BlockKind(0); k < NumBlocks; k++ {
		block := t.Blocks[k]
		for i, ins := range block {
			if err := ins.Validate(); err != nil {
				return fmt.Errorf("%s/%s[%d] %s: %w", t.Name, k, i, ins, err)
			}
			info := isa.MustInfo(ins.Op)
			if !legalIn(ins.Op, k) {
				return fmt.Errorf("%w: %s in %s block of %s", ErrBlockDiscipline, ins, k, t.Name)
			}
			if info.Branch {
				if int(ins.Imm) < 0 || int(ins.Imm) >= len(block) {
					return fmt.Errorf("%w: %s/%s[%d] %s targets %d (block len %d)",
						ErrBranchTarget, t.Name, k, i, ins, ins.Imm, len(block))
				}
			}
			switch ins.Op {
			case isa.LOAD:
				if ins.Imm < 0 || ins.Imm >= MaxFrameSlots {
					return fmt.Errorf("%w: load slot %d in %s", ErrBadSlot, ins.Imm, t.Name)
				}
			case isa.STORE:
				if ins.Imm < 0 || ins.Imm >= MaxFrameSlots {
					return fmt.Errorf("%w: store slot %d in %s", ErrBadSlot, ins.Imm, t.Name)
				}
			case isa.FALLOC:
				tmpl, sc := isa.UnpackFalloc(ins.Imm)
				if templates != nil {
					if tmpl < 0 || tmpl >= len(templates) {
						return fmt.Errorf("program: falloc in %s references template %d of %d",
							t.Name, tmpl, len(templates))
					}
				}
				if sc > MaxFrameSlots {
					return fmt.Errorf("%w: falloc sc %d exceeds frame slots", ErrBadSlot, sc)
				}
			}
		}
	}
	if ps := t.Blocks[PS]; len(ps) == 0 || ps[len(ps)-1].Op != isa.STOP {
		return fmt.Errorf("%w: template %s", ErrNoStop, t.Name)
	}
	for i, r := range t.Regions {
		if r.MaxBytes <= 0 {
			return fmt.Errorf("%w: region %q has MaxBytes %d", ErrBadRegion, r.Name, r.MaxBytes)
		}
		if r.Size.Slot < 0 && (r.Size.Const <= 0 || r.Size.Const > int64(r.MaxBytes)) {
			return fmt.Errorf("%w: region %q constant size %d outside (0, %d]",
				ErrBadRegion, r.Name, r.Size.Const, r.MaxBytes)
		}
		for _, term := range r.Base.Terms {
			if term.Slot < 0 || term.Slot >= MaxFrameSlots {
				return fmt.Errorf("%w: region %q base slot %d", ErrBadRegion, r.Name, term.Slot)
			}
		}
		if r.Size.Slot >= MaxFrameSlots {
			return fmt.Errorf("%w: region %q size slot %d", ErrBadRegion, r.Name, r.Size.Slot)
		}
		_ = i
	}
	for _, a := range t.Accesses {
		if a.Block < 0 || a.Block >= NumBlocks || a.Index < 0 || a.Index >= len(t.Blocks[a.Block]) {
			return fmt.Errorf("%w: access (%v,%d) in %s", ErrBadAccess, a.Block, a.Index, t.Name)
		}
		if a.Region < 0 || a.Region >= len(t.Regions) {
			return fmt.Errorf("%w: access references region %d of %d in %s",
				ErrBadAccess, a.Region, len(t.Regions), t.Name)
		}
		op := t.Blocks[a.Block][a.Index].Op
		switch op {
		case isa.READ, isa.READ8, isa.WRITE, isa.WRITE8:
		default:
			return fmt.Errorf("%w: access tags %s (only read/write can be tagged)", ErrBadAccess, op)
		}
	}
	return nil
}
