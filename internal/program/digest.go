package program

import (
	"crypto/sha256"
	"fmt"
)

// Digest returns a content hash of everything that shapes a program's
// execution: entry point, templates (code, regions, accesses, prefetch
// layout) and initial memory segments. Two programs with equal digests
// run identically on identically configured machines, which makes the
// digest a sound component of a checkpoint cache key. The functional
// Check hook is deliberately excluded — it runs after the simulation
// and cannot influence it.
func (p *Program) Digest() [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "prog:%s entry:%d args:%v tokens:%d\n",
		p.Name, p.Entry, p.EntryArgs, p.ExpectTokens)
	for _, t := range p.Templates {
		fmt.Fprintf(h, "tmpl:%d name:%s pf:%d off:%v transformed:%v\n",
			t.ID, t.Name, t.PrefetchBytes, t.RegionOffsets, t.Transformed)
		for k := BlockKind(0); k < NumBlocks; k++ {
			for _, ins := range t.Blocks[k] {
				fmt.Fprintf(h, "%d:%x ", k, ins.Encode())
			}
		}
		fmt.Fprintf(h, "\nregions:%+v\naccesses:%+v\n", t.Regions, t.Accesses)
	}
	for _, s := range p.Segments {
		fmt.Fprintf(h, "seg:%x:", s.Addr)
		h.Write(s.Data)
		fmt.Fprintf(h, "\n")
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}
