// Package profiling provides the -cpuprofile / -memprofile plumbing
// shared by the CLI tools (cmd/experiments, cmd/dtafuzz), so future
// performance work starts from a profile instead of a guess.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile
// at memPath ("" disables either). The returned stop function is
// idempotent and must run before the process exits for the profiles to
// be complete; profile-write failures are reported on stderr rather
// than returned, since by then the tool's real work already finished.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialise final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
