package mem

import (
	"bytes"
	"testing"
)

// TestSparseBulkPageBoundaries drives ReadInto/WriteFrom across page
// boundaries: a write spanning three pages must read back identically,
// and reads of unallocated ranges must zero-fill the buffer.
func TestSparseBulkPageBoundaries(t *testing.T) {
	s := NewSparse(16 << 20)
	// Start 5 bytes before a page boundary, span two boundaries.
	start := int64(pageSize - 5)
	data := make([]byte, 2*pageSize+11)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if err := s.WriteFrom(start, data); err != nil {
		t.Fatalf("WriteFrom: %v", err)
	}

	got := make([]byte, len(data))
	if err := s.ReadInto(start, got); err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}

	// A read overlapping written and unallocated pages: the unallocated
	// tail must come back zero even when the buffer starts dirty.
	span := make([]byte, pageSize)
	for i := range span {
		span[i] = 0xFF
	}
	tailStart := start + int64(len(data)) - 7
	if err := s.ReadInto(tailStart, span); err != nil {
		t.Fatalf("ReadInto tail: %v", err)
	}
	if !bytes.Equal(span[:7], data[len(data)-7:]) {
		t.Error("written prefix mismatch")
	}
	for i := 7; i < len(span); i++ {
		if span[i] != 0 {
			t.Fatalf("unallocated byte %d = %#x, want 0", i, span[i])
		}
	}

	// Word accesses across a boundary agree with the byte image.
	v, err := s.Read64(start)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 7; i >= 0; i-- {
		want = want<<8 | int64(data[i])
	}
	if v != want {
		t.Errorf("Read64 across boundary = %#x, want %#x", v, want)
	}
}

// TestSparseResetRecyclesPages checks Reset semantics: contents vanish,
// and recycled pages come back zeroed.
func TestSparseResetRecyclesPages(t *testing.T) {
	s := NewSparse(1 << 20)
	if err := s.Write64(pageSize-4, -1); err != nil { // spans two pages
		t.Fatal(err)
	}
	s.Reset()
	v, err := s.Read64(pageSize - 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("after Reset read = %#x, want 0", v)
	}
	// Re-write through the recycled (pooled) pages.
	if err := s.Write64(pageSize-4, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Read64(pageSize - 4)
	if v != 0x1122334455667788 {
		t.Fatalf("recycled page read = %#x", v)
	}
}

// TestFirstDiffPageBoundaries pins FirstDiff behaviour the checker
// depends on: lowest differing address, zero-page equivalence, and
// boundary-straddling differences.
func TestFirstDiffPageBoundaries(t *testing.T) {
	a, b := NewSparse(1<<20), NewSparse(1<<20)
	if _, equal := FirstDiff(a, b); !equal {
		t.Fatal("empty stores must be equal")
	}

	// An allocated-but-zero page equals an unallocated one.
	if err := a.Write64(3*pageSize+8, 0); err != nil {
		t.Fatal(err)
	}
	if _, equal := FirstDiff(a, b); !equal {
		t.Fatal("all-zero page must equal unallocated page")
	}

	// Differences on both sides of a page boundary: report the lowest.
	if err := a.Write32(2*pageSize, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.Write32(pageSize-4, 9); err != nil {
		t.Fatal(err)
	}
	addr, equal := FirstDiff(a, b)
	if equal {
		t.Fatal("stores differ but FirstDiff says equal")
	}
	if addr != pageSize-4 {
		t.Errorf("first diff at %#x, want %#x", addr, int64(pageSize-4))
	}
}
