package mem

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Config holds the main-memory parameters (paper Table 2).
type Config struct {
	SizeBytes   int64 // 512 MB
	Latency     int   // access latency in cycles (150)
	Ports       int   // concurrent requests entering service (1)
	PortWidth   int   // bytes a port moves per cycle (32)
	PacketBytes int   // DMA streaming granularity (128)
}

// DefaultConfig returns the paper's memory-subsystem parameters.
func DefaultConfig() Config {
	return Config{
		SizeBytes:   512 << 20,
		Latency:     150,
		Ports:       1,
		PortWidth:   32,
		PacketBytes: 128,
	}
}

// Stats aggregates memory activity.
type Stats struct {
	ScalarReads  int64
	ScalarWrites int64
	BlockReads   int64 // DMA GET commands served
	BlockWrites  int64 // DMA PUT commands served
	BytesRead    int64
	BytesWritten int64
	PortBusy     int64 // cycles of port occupancy, summed over ports
}

// outEvent is a pending-response heap entry. The message payload lives
// in Memory.outSlab (indexed by slot) so heap sifts move 24-byte refs
// instead of whole Messages — the same slab indirection the network's
// delivery heap uses.
type outEvent struct {
	at   sim.Cycle
	seq  int64
	slot int32
}

// Before orders response events by (ready cycle, service order) for the
// typed min-heap.
func (e outEvent) Before(o outEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Memory is the main-memory component: a noc.Endpoint that services
// scalar and block requests with port and latency modelling, backed by a
// functional sparse store.
type Memory struct {
	cfg    Config
	id     int
	net    *noc.Network
	handle *sim.Handle
	store  *Sparse

	inbox    []noc.Message
	portFree []sim.Cycle
	out      []outEvent
	outSlab  []noc.Message // payloads for out entries, indexed by slot
	outFree  []int32       // recycled outSlab slots
	seq      int64
	stats    Stats

	// Fault receives functional errors (out-of-range accesses); the
	// machine wires it to abort the run with a diagnostic.
	Fault func(error)
}

// New creates a memory with endpoint id on net.
func New(cfg Config, id int, net *noc.Network) *Memory {
	if cfg.Ports <= 0 || cfg.PortWidth <= 0 || cfg.PacketBytes <= 0 {
		panic("mem: non-positive port configuration")
	}
	return &Memory{
		cfg:      cfg,
		id:       id,
		net:      net,
		store:    NewSparse(cfg.SizeBytes),
		portFree: make([]sim.Cycle, cfg.Ports),
		Fault:    func(err error) { panic(err) },
	}
}

// Name implements sim.Component.
func (m *Memory) Name() string { return "memory" }

// Attach stores the engine wake handle.
func (m *Memory) Attach(h *sim.Handle) { m.handle = h }

// Store exposes the functional backing store (for program loading and
// result checking).
func (m *Memory) Store() *Sparse { return m.store }

// Stats returns a copy of the accumulated statistics.
func (m *Memory) Stats() Stats { return m.stats }

// Reset clears the functional store, all queued requests and pending
// responses, port bookings and statistics for machine reuse.
func (m *Memory) Reset() {
	m.store.Reset()
	m.inbox = m.inbox[:0]
	for i := range m.portFree {
		m.portFree[i] = 0
	}
	m.out = m.out[:0]
	for i := range m.outSlab {
		m.outSlab[i] = noc.Message{} // release payload references
	}
	m.outSlab = m.outSlab[:0]
	m.outFree = m.outFree[:0]
	m.seq = 0
	m.stats = Stats{}
}

// Deliver implements noc.Endpoint.
func (m *Memory) Deliver(now sim.Cycle, msg noc.Message) {
	m.inbox = append(m.inbox, msg)
	if m.handle != nil {
		m.handle.Wake(now + 1)
	}
}

// reservePort books occupancy cycles on the earliest-free port starting
// no earlier than now, returning the service start cycle.
func (m *Memory) reservePort(now sim.Cycle, occupancy sim.Cycle) sim.Cycle {
	best := 0
	for i := 1; i < len(m.portFree); i++ {
		if m.portFree[i] < m.portFree[best] {
			best = i
		}
	}
	start := now
	if m.portFree[best] > start {
		start = m.portFree[best]
	}
	m.portFree[best] = start + occupancy
	m.stats.PortBusy += int64(occupancy)
	return start
}

// outAlloc parks a payload in the slab and returns its slot.
func (m *Memory) outAlloc(msg noc.Message) int32 {
	if n := len(m.outFree); n > 0 {
		slot := m.outFree[n-1]
		m.outFree = m.outFree[:n-1]
		m.outSlab[slot] = msg
		return slot
	}
	m.outSlab = append(m.outSlab, msg)
	return int32(len(m.outSlab) - 1)
}

func (m *Memory) emit(at sim.Cycle, msg noc.Message) {
	m.seq++
	sim.HeapPush(&m.out, outEvent{at: at, seq: m.seq, slot: m.outAlloc(msg)})
}

// occupancyFor returns the port cycles for an n-byte transfer.
func (m *Memory) occupancyFor(n int) sim.Cycle {
	occ := sim.Cycle((n + m.cfg.PortWidth - 1) / m.cfg.PortWidth)
	if occ < 1 {
		occ = 1
	}
	return occ
}

// Tick services queued requests and sends due responses.
func (m *Memory) Tick(now sim.Cycle) sim.Cycle {
	for _, msg := range m.inbox {
		m.service(now, msg)
	}
	m.inbox = m.inbox[:0]

	for len(m.out) > 0 && m.out[0].at <= now {
		ev := sim.HeapPop(&m.out)
		msg := m.outSlab[ev.slot]
		m.outSlab[ev.slot] = noc.Message{} // release payload reference
		m.outFree = append(m.outFree, ev.slot)
		m.net.Send(now, msg)
	}

	if len(m.out) > 0 {
		return m.out[0].at
	}
	return sim.Never
}

func (m *Memory) service(now sim.Cycle, msg noc.Message) {
	lat := sim.Cycle(m.cfg.Latency)
	switch msg.Kind {
	case noc.KindMemRead32, noc.KindMemRead64:
		n := 4
		if msg.Kind == noc.KindMemRead64 {
			n = 8
		}
		var v int64
		var err error
		if n == 4 {
			v, err = m.store.Read32(msg.A)
		} else {
			v, err = m.store.Read64(msg.A)
		}
		if err != nil {
			m.Fault(fmt.Errorf("scalar read from %d: %w", msg.Src, err))
			return
		}
		start := m.reservePort(now, 1)
		m.stats.ScalarReads++
		m.stats.BytesRead += int64(n)
		m.emit(start+lat, noc.Message{
			Src: m.id, Dst: msg.Src, Kind: noc.KindMemReadResp,
			A: msg.A, B: v, C: msg.C,
			Pad: int32(n), // models the data payload on the wire
		})

	case noc.KindMemWrite32, noc.KindMemWrite64:
		var err error
		if msg.Kind == noc.KindMemWrite32 {
			err = m.store.Write32(msg.A, msg.B)
		} else {
			err = m.store.Write64(msg.A, msg.B)
		}
		if err != nil {
			m.Fault(fmt.Errorf("scalar write from %d: %w", msg.Src, err))
			return
		}
		m.reservePort(now, 1)
		m.stats.ScalarWrites++
		m.stats.BytesWritten += int64(4)
		if msg.Kind == noc.KindMemWrite64 {
			m.stats.BytesWritten += 4
		}

	case noc.KindMemBlockRead:
		// Stream the block back as PacketBytes-sized data packets. Each
		// packet reserves the port for its occupancy; the first packet
		// additionally pays the access latency, subsequent ones are
		// pipelined behind it.
		total := int(msg.B)
		if total <= 0 {
			m.Fault(fmt.Errorf("block read of %d bytes from %d", total, msg.Src))
			return
		}
		m.stats.BlockReads++
		m.stats.BytesRead += int64(total)
		for off := 0; off < total; off += m.cfg.PacketBytes {
			n := m.cfg.PacketBytes
			if off+n > total {
				n = total - off
			}
			buf := m.net.GetBuf(n)
			if err := m.store.ReadInto(msg.A+int64(off), buf); err != nil {
				m.Fault(fmt.Errorf("block read from %d: %w", msg.Src, err))
				return
			}
			start := m.reservePort(now, m.occupancyFor(n))
			last := int64(0)
			if off+n >= total {
				last = 1
			}
			m.emit(start+lat, noc.Message{
				Src: m.id, Dst: msg.Src, Kind: noc.KindMemBlockData,
				A: msg.A + int64(off), B: last, C: msg.C, D: int64(off),
				Data: buf,
			})
		}

	case noc.KindMemBlockWrite:
		if err := m.store.WriteFrom(msg.A, msg.Data); err != nil {
			m.Fault(fmt.Errorf("block write from %d: %w", msg.Src, err))
			return
		}
		start := m.reservePort(now, m.occupancyFor(len(msg.Data)))
		m.stats.BytesWritten += int64(len(msg.Data))
		m.net.PutBuf(msg.Data) // payload copied into the store; recycle
		if msg.B == 1 {        // final packet of the PUT command
			m.stats.BlockWrites++
			m.emit(start+lat, noc.Message{
				Src: m.id, Dst: msg.Src, Kind: noc.KindMemBlockAck, C: msg.C,
			})
		}

	default:
		m.Fault(fmt.Errorf("memory received unexpected %s", msg))
	}
}

// DumpState implements sim.StateDumper.
func (m *Memory) DumpState() string {
	return fmt.Sprintf("inbox=%d pending-out=%d", len(m.inbox), len(m.out))
}
