// Package mem models the CellDTA main ("global") memory: a single-ported
// 512 MB store with 150-cycle access latency (paper Table 2), reachable
// only through the interconnect. It serves both the blocking scalar
// READ/WRITE accesses of the original DTA execution model and the block
// transfers issued by the MFC DMA engines.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// pageBits selects a 64 KiB sparse page.
const pageBits = 16
const pageSize = 1 << pageBits

// Sparse is a byte-addressable sparse backing store. Reads of unwritten
// memory return zeros without allocating pages.
//
// A one-entry page cache remembers the last page touched: DMA streams
// and scalar loops walk memory sequentially, so nearly every access
// lands on the cached page and skips the map lookup. Pages are never
// freed, so the cache can never go stale.
type Sparse struct {
	size  int64
	pages map[int64][]byte
	// pool holds zeroed pages released by Reset for reuse, so a pooled
	// machine does not re-allocate its working set every run.
	pool [][]byte

	lastPage int64
	lastBuf  []byte
}

// NewSparse returns a store of the given size in bytes.
func NewSparse(size int64) *Sparse {
	return &Sparse{size: size, pages: make(map[int64][]byte), lastPage: -1}
}

// page returns the backing page and whether it is allocated, consulting
// the one-entry cache first.
func (s *Sparse) page(idx int64) ([]byte, bool) {
	if idx == s.lastPage {
		return s.lastBuf, true
	}
	p, ok := s.pages[idx]
	if ok {
		s.lastPage, s.lastBuf = idx, p
	}
	return p, ok
}

// Size returns the addressable size in bytes.
func (s *Sparse) Size() int64 { return s.size }

// Reset forgets every written byte. The backing pages are zeroed and
// kept in a free pool, so a reused store serves its next run from the
// same memory instead of re-allocating its working set.
func (s *Sparse) Reset() {
	for _, p := range s.pages {
		clear(p)
		s.pool = append(s.pool, p)
	}
	clear(s.pages)
	s.lastPage, s.lastBuf = -1, nil
}

func (s *Sparse) check(addr int64, n int) error {
	if addr < 0 || addr+int64(n) > s.size {
		return fmt.Errorf("mem: access [%#x,%#x) outside [0,%#x)", addr, addr+int64(n), s.size)
	}
	return nil
}

// ReadInto fills buf from addr, copying page-at-a-time: each touched
// page contributes one copy (or one clear for unallocated pages), so
// DMA block transfers cost O(pages), not O(bytes). This is the bulk
// read path used by memory block reads, the MFC and FirstDiff.
func (s *Sparse) ReadInto(addr int64, buf []byte) error {
	if err := s.check(addr, len(buf)); err != nil {
		return err
	}
	for done := 0; done < len(buf); {
		page, off := addr>>pageBits, int(addr&(pageSize-1))
		n := pageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if p, ok := s.page(page); ok {
			copy(buf[done:done+n], p[off:off+n])
		} else {
			clear(buf[done : done+n])
		}
		done += n
		addr += int64(n)
	}
	return nil
}

// ReadBytes fills buf from addr (alias of the bulk ReadInto path).
func (s *Sparse) ReadBytes(addr int64, buf []byte) error {
	return s.ReadInto(addr, buf)
}

// WriteFrom copies data to addr page-at-a-time — the bulk write path
// used by memory block writes and segment loading.
func (s *Sparse) WriteFrom(addr int64, data []byte) error {
	if err := s.check(addr, len(data)); err != nil {
		return err
	}
	for done := 0; done < len(data); {
		page, off := addr>>pageBits, int(addr&(pageSize-1))
		n := pageSize - off
		if n > len(data)-done {
			n = len(data) - done
		}
		p, ok := s.page(page)
		if !ok {
			p = s.newPage(page)
		}
		copy(p[off:off+n], data[done:done+n])
		done += n
		addr += int64(n)
	}
	return nil
}

// WriteBytes copies data to addr (alias of the bulk WriteFrom path).
func (s *Sparse) WriteBytes(addr int64, data []byte) error {
	return s.WriteFrom(addr, data)
}

// newPage allocates (or recycles) the zeroed backing for page idx.
func (s *Sparse) newPage(idx int64) []byte {
	var p []byte
	if n := len(s.pool); n > 0 {
		p = s.pool[n-1]
		s.pool = s.pool[:n-1]
	} else {
		p = make([]byte, pageSize)
	}
	s.pages[idx] = p
	s.lastPage, s.lastBuf = idx, p
	return p
}

// Read32 returns the sign-extended little-endian 32-bit word at addr.
func (s *Sparse) Read32(addr int64) (int64, error) {
	var b [4]byte
	if err := s.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return int64(int32(binary.LittleEndian.Uint32(b[:]))), nil
}

// Read64 returns the little-endian 64-bit word at addr.
func (s *Sparse) Read64(addr int64) (int64, error) {
	var b [8]byte
	if err := s.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

// Write32 stores the low 32 bits of v at addr.
func (s *Sparse) Write32(addr int64, v int64) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	return s.WriteBytes(addr, b[:])
}

// Write64 stores v at addr.
func (s *Sparse) Write64(addr int64, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return s.WriteBytes(addr, b[:])
}

// Reader adapts Sparse to the program.MemReader interface (errors are
// converted to zero reads; result checkers operate on validated
// addresses).
type Reader struct{ S *Sparse }

// Read32 implements program.MemReader.
func (r Reader) Read32(addr int64) int64 {
	v, err := r.S.Read32(addr)
	if err != nil {
		return 0
	}
	return v
}

// Read64 implements program.MemReader.
func (r Reader) Read64(addr int64) int64 {
	v, err := r.S.Read64(addr)
	if err != nil {
		return 0
	}
	return v
}

// zeroPage is the comparison image of an unallocated page.
var zeroPage = make([]byte, pageSize)

// FirstDiff compares two sparse stores (unallocated pages read as zero)
// and returns the lowest differing address. equal=true means the images
// are identical. Pages are compared with bulk bytes.Equal and only a
// mismatching page is scanned for the first differing byte, so the
// whole-image comparison the synth differential checker performs after
// every run costs O(pages) memcmp instead of a per-byte loop.
func FirstDiff(a, b *Sparse) (addr int64, equal bool) {
	idxs := make(map[int64]struct{}, len(a.pages)+len(b.pages))
	for i := range a.pages {
		idxs[i] = struct{}{}
	}
	for i := range b.pages {
		idxs[i] = struct{}{}
	}
	sorted := make([]int64, 0, len(idxs))
	for i := range idxs {
		sorted = append(sorted, i)
	}
	sort.Slice(sorted, func(x, y int) bool { return sorted[x] < sorted[y] })
	for _, i := range sorted {
		pa, pb := a.pages[i], b.pages[i]
		if pa == nil {
			pa = zeroPage
		}
		if pb == nil {
			pb = zeroPage
		}
		if bytes.Equal(pa, pb) {
			continue
		}
		for off := 0; off < pageSize; off++ {
			if pa[off] != pb[off] {
				return i<<pageBits + int64(off), false
			}
		}
	}
	return 0, true
}
