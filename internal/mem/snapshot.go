package mem

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Snapshot serialises the sparse image: allocated, non-zero pages in
// ascending page order. All-zero pages are skipped — an unallocated
// page reads as zero, so dropping them loses nothing and keeps warm-up
// snapshots proportional to the bytes actually written.
func (s *Sparse) Snapshot(w *snap.Writer) {
	w.I64(s.size)
	idxs := make([]int64, 0, len(s.pages))
	for i, p := range s.pages {
		if !bytes.Equal(p, zeroPage) {
			idxs = append(idxs, i)
		}
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	w.Int(len(idxs))
	for _, i := range idxs {
		w.I64(i)
		w.WriteBytes(s.pages[i])
	}
}

// Restore rewinds the store to a snapshot.
func (s *Sparse) Restore(r *snap.Reader) error {
	size := r.I64()
	if r.Err() == nil && size != s.size {
		return fmt.Errorf("mem: snapshot store size %d, this store %d", size, s.size)
	}
	s.Reset()
	n := r.Int()
	for k := 0; k < n; k++ {
		idx := r.I64()
		data := r.ReadBytes()
		if r.Err() != nil {
			return r.Err()
		}
		if len(data) != pageSize {
			return fmt.Errorf("mem: snapshot page %d has %d bytes", idx, len(data))
		}
		copy(s.newPage(idx), data)
	}
	return r.Err()
}

// SetLatency changes the access latency at run time — the
// checkpoint/fork harness's divergence knob. The latency is read per
// request in service(), so a change between engine passes applies to
// every request serviced afterwards, identically whether the prefix
// was simulated or restored.
func (m *Memory) SetLatency(cycles int) {
	if cycles < 1 {
		cycles = 1
	}
	m.cfg.Latency = cycles
}

// Latency returns the current access latency (for tests).
func (m *Memory) Latency() int { return m.cfg.Latency }

// Snapshot serialises the memory component's mutable state: the
// functional store, queued requests, port bookings and pending
// responses. Wiring (endpoint id, network, fault hook) is not state.
func (m *Memory) Snapshot(w *snap.Writer) {
	m.store.Snapshot(w)
	w.Int(len(m.inbox))
	for _, msg := range m.inbox {
		noc.SnapshotMessage(w, msg)
	}
	w.Int(len(m.portFree))
	for _, f := range m.portFree {
		w.I64(int64(f))
	}
	// Response heap in slab order; restore re-pushes (pop order is the
	// (at, seq) total order, so internal layout is behaviour-invisible).
	w.Int(len(m.out))
	for _, ev := range m.out {
		w.I64(int64(ev.at))
		w.I64(ev.seq)
		noc.SnapshotMessage(w, m.outSlab[ev.slot])
	}
	w.I64(m.seq)
	w.I64(m.stats.ScalarReads)
	w.I64(m.stats.ScalarWrites)
	w.I64(m.stats.BlockReads)
	w.I64(m.stats.BlockWrites)
	w.I64(m.stats.BytesRead)
	w.I64(m.stats.BytesWritten)
	w.I64(m.stats.PortBusy)
}

// Restore rewinds the memory component to a snapshot taken on an
// identically configured memory.
func (m *Memory) Restore(r *snap.Reader) error {
	if err := m.store.Restore(r); err != nil {
		return err
	}
	m.inbox = m.inbox[:0]
	ni := r.Int()
	for i := 0; i < ni; i++ {
		m.inbox = append(m.inbox, noc.RestoreMessage(r))
	}
	np := r.Int()
	if r.Err() == nil && np != len(m.portFree) {
		return fmt.Errorf("mem: snapshot has %d ports, memory has %d", np, len(m.portFree))
	}
	for i := 0; i < np; i++ {
		m.portFree[i] = sim.Cycle(r.I64())
	}
	m.out = m.out[:0]
	for i := range m.outSlab {
		m.outSlab[i] = noc.Message{}
	}
	m.outSlab = m.outSlab[:0]
	m.outFree = m.outFree[:0]
	no := r.Int()
	for i := 0; i < no; i++ {
		at := sim.Cycle(r.I64())
		seq := r.I64()
		msg := noc.RestoreMessage(r)
		if r.Err() != nil {
			return r.Err()
		}
		sim.HeapPush(&m.out, outEvent{at: at, seq: seq, slot: m.outAlloc(msg)})
	}
	m.seq = r.I64()
	m.stats.ScalarReads = r.I64()
	m.stats.ScalarWrites = r.I64()
	m.stats.BlockReads = r.I64()
	m.stats.BlockWrites = r.I64()
	m.stats.BytesRead = r.I64()
	m.stats.BytesWritten = r.I64()
	m.stats.PortBusy = r.I64()
	return r.Err()
}
