package mem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

func TestSparseReadWriteRoundTrip(t *testing.T) {
	s := NewSparse(1 << 20)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := s.WriteBytes(1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadBytes(1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v, want %v", got, data)
	}
}

func TestSparseCrossPageAccess(t *testing.T) {
	s := NewSparse(1 << 20)
	addr := int64(pageSize - 3) // straddles the first page boundary
	data := []byte{10, 20, 30, 40, 50, 60}
	if err := s.WriteBytes(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadBytes(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v, want %v", got, data)
	}
}

func TestSparseUnwrittenReadsZero(t *testing.T) {
	s := NewSparse(1 << 20)
	v, err := s.Read64(0x8000)
	if err != nil || v != 0 {
		t.Fatalf("Read64 = %d, %v; want 0, nil", v, err)
	}
	if len(s.pages) != 0 {
		t.Fatal("read allocated pages")
	}
}

func TestSparseBoundsChecked(t *testing.T) {
	s := NewSparse(1024)
	if err := s.WriteBytes(1020, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := s.Read32(-4); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := s.Read64(1021); err == nil {
		t.Fatal("straddling read accepted")
	}
}

func TestSparse32SignExtension(t *testing.T) {
	s := NewSparse(1 << 20)
	if err := s.Write32(64, -5); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read32(64)
	if err != nil || v != -5 {
		t.Fatalf("Read32 = %d, %v; want -5", v, err)
	}
}

// Property: a sequence of random writes then reads matches a flat
// reference buffer.
func TestSparseMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		const size = 1 << 18
		s := NewSparse(size)
		ref := make([]byte, size)
		for i := 0; i < 50; i++ {
			addr := int64(rng.Intn(size - 256))
			n := 1 + rng.Intn(255)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			if err := s.WriteBytes(addr, data); err != nil {
				return false
			}
			copy(ref[addr:], data)
		}
		for i := 0; i < 50; i++ {
			addr := int64(rng.Intn(size - 256))
			n := 1 + rng.Intn(255)
			got := make([]byte, n)
			if err := s.ReadBytes(addr, got); err != nil {
				return false
			}
			if !bytes.Equal(got, ref[addr:addr+int64(n)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// harness wires a memory and a recording endpoint into an engine.
type memHarness struct {
	e   *sim.Engine
	net *noc.Network
	m   *Memory
	got []noc.Message
	at  []sim.Cycle
}

func (h *memHarness) Deliver(now sim.Cycle, msg noc.Message) {
	h.got = append(h.got, msg)
	h.at = append(h.at, now)
}

func (h *memHarness) Name() string { return "client" }
func (h *memHarness) Tick(now sim.Cycle) sim.Cycle {
	return sim.Never
}

func newMemHarness(t *testing.T, cfg Config) *memHarness {
	t.Helper()
	h := &memHarness{e: sim.NewEngine()}
	h.net = noc.New(noc.Config{Buses: 4, BytesPerCyc: 8, HopLatency: 4})
	h.net.Attach(h.e.Register(h.net))
	h.m = New(cfg, 100, h.net)
	h.m.Attach(h.e.Register(h.m))
	h.net.Register(100, h.m)
	h.net.Register(1, h)
	h.e.Register(h)
	h.m.Fault = func(err error) { t.Fatalf("memory fault: %v", err) }
	return h
}

func (h *memHarness) runUntilQuiet(t *testing.T, deadline sim.Cycle) {
	t.Helper()
	_, err := h.e.Run(deadline)
	if _, isDeadlock := err.(*sim.ErrDeadlock); err != nil && !isDeadlock {
		t.Fatalf("Run: %v", err)
	}
}

func TestScalarReadLatency(t *testing.T) {
	cfg := DefaultConfig()
	h := newMemHarness(t, cfg)
	if err := h.m.Store().Write32(0x100, 77); err != nil {
		t.Fatal(err)
	}
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemRead32, A: 0x100, C: 9})
	h.runUntilQuiet(t, 10000)
	if len(h.got) != 1 {
		t.Fatalf("got %d responses, want 1", len(h.got))
	}
	resp := h.got[0]
	if resp.Kind != noc.KindMemReadResp || resp.B != 77 || resp.C != 9 {
		t.Fatalf("resp = %v", resp)
	}
	// Round trip >= request wire (2+4) + latency 150 + response wire.
	if h.at[0] < sim.Cycle(cfg.Latency) {
		t.Fatalf("response at %d, faster than memory latency %d", h.at[0], cfg.Latency)
	}
	if h.at[0] > sim.Cycle(cfg.Latency)+30 {
		t.Fatalf("response at %d, too slow for one access", h.at[0])
	}
}

func TestScalarWriteIsFunctional(t *testing.T) {
	h := newMemHarness(t, DefaultConfig())
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemWrite32, A: 0x80, B: -123})
	h.runUntilQuiet(t, 10000)
	v, err := h.m.Store().Read32(0x80)
	if err != nil || v != -123 {
		t.Fatalf("stored %d, %v; want -123", v, err)
	}
	if h.m.Stats().ScalarWrites != 1 {
		t.Fatalf("stats = %+v", h.m.Stats())
	}
}

func TestBlockReadStreamsPackets(t *testing.T) {
	cfg := DefaultConfig()
	h := newMemHarness(t, cfg)
	want := make([]byte, 300)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := h.m.Store().WriteBytes(0x2000, want); err != nil {
		t.Fatal(err)
	}
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemBlockRead, A: 0x2000, B: 300, C: 5})
	h.runUntilQuiet(t, 100000)
	// ceil(300/128) = 3 packets.
	if len(h.got) != 3 {
		t.Fatalf("got %d packets, want 3", len(h.got))
	}
	buf := make([]byte, 300)
	lastSeen := false
	for _, p := range h.got {
		if p.Kind != noc.KindMemBlockData || p.C != 5 {
			t.Fatalf("packet = %v", p)
		}
		copy(buf[p.D:], p.Data)
		if p.B == 1 {
			lastSeen = true
		}
	}
	if !lastSeen {
		t.Fatal("no packet marked last")
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("reassembled data differs")
	}
}

func TestBlockWriteAcksOnce(t *testing.T) {
	h := newMemHarness(t, DefaultConfig())
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemBlockWrite,
		A: 0x3000, C: 8, D: 0, Data: []byte{1, 2, 3, 4}})
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemBlockWrite,
		A: 0x3004, B: 1, C: 8, D: 4, Data: []byte{5, 6, 7, 8}})
	h.runUntilQuiet(t, 100000)
	acks := 0
	for _, g := range h.got {
		if g.Kind == noc.KindMemBlockAck && g.C == 8 {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("acks = %d, want 1", acks)
	}
	got := make([]byte, 8)
	if err := h.m.Store().ReadBytes(0x3000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("memory content %v", got)
	}
}

func TestSinglePortSerialisesServicing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Latency = 10
	h := newMemHarness(t, cfg)
	// Two block reads of 512B each: 4 packets x 4 cycles port occupancy.
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemBlockRead, A: 0, B: 512, C: 1})
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemBlockRead, A: 4096, B: 512, C: 2})
	h.runUntilQuiet(t, 100000)
	if h.m.Stats().PortBusy != 2*4*4 {
		t.Fatalf("PortBusy = %d, want 32", h.m.Stats().PortBusy)
	}
}

func TestFaultOnBadAccess(t *testing.T) {
	h := newMemHarness(t, DefaultConfig())
	var fault error
	h.m.Fault = func(err error) { fault = err }
	h.net.Send(0, noc.Message{Src: 1, Dst: 100, Kind: noc.KindMemRead32, A: -8})
	h.runUntilQuiet(t, 10000)
	if fault == nil || !strings.Contains(fault.Error(), "outside") {
		t.Fatalf("fault = %v", fault)
	}
}

func TestReaderAdapter(t *testing.T) {
	s := NewSparse(1 << 16)
	if err := s.Write32(16, 42); err != nil {
		t.Fatal(err)
	}
	r := Reader{S: s}
	if r.Read32(16) != 42 {
		t.Fatal("Read32 through adapter")
	}
	if r.Read32(-100) != 0 {
		t.Fatal("bad address should read zero through adapter")
	}
}
