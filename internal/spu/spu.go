// Package spu models the CellDTA processing element: an in-order,
// dual-issue pipeline in the spirit of the Cell SPU (one memory-class and
// one compute-class instruction per cycle, no caches, no branch
// prediction — branches are assumed compiler-hinted and pay a small
// taken-branch bubble). The SPU executes DTA threads dispatched by its
// LSE, running their code blocks to completion: PF blocks program the
// MFC (their cycles are the paper's "Prefetching" overhead), PL/EX/PS
// blocks are ordinary execution.
//
// The pipeline keeps a register scoreboard for result latencies, so
// local-store reads (6 cycles) stall only dependent instructions —
// exactly the property that makes prefetched data cheap to access
// compared to blocking main-memory READs (~memory latency per access).
package spu

import (
	"fmt"

	"repro/internal/dta"
	"repro/internal/isa"
	"repro/internal/ls"
	"repro/internal/mfc"
	"repro/internal/noc"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config holds pipeline micro-parameters. The paper does not specify
// them; defaults follow the Cell SPU's published latencies.
type Config struct {
	LatFX         int // simple fixed-point result latency (2)
	LatSH         int // shifter latency (4)
	LatMUL        int // multiplier latency (7)
	LatDIV        int // iterative divide latency (20)
	BranchPenalty int // extra cycles after a taken branch (hinted: 2)
	DispatchCost  int // pipeline refill when switching threads (4)
	// MFCChannelCycles is the pipeline occupancy of each MFC channel
	// write / command enqueue. On the Cell the SPU's channel interface
	// is slow compared to ALU ops, and this cost is what the paper's
	// "Prefetching" overhead bucket measures (the SPU "must spend some
	// time in order to program the DMA unit", §4.3).
	MFCChannelCycles int
	// PerfectCacheLat > 0 enables the paper's §4.3 always-hit study
	// ("all memory latencies in the system set to one cycle"): READ and
	// WRITE are served by an ideal local cache with this latency instead
	// of crossing the interconnect. The machine wires the backing store.
	PerfectCacheLat int
	// BurstMax bounds the burst-execution fast path: the maximum number
	// of pipeline cycles the SPU may simulate inside one engine Tick
	// when the upcoming instructions are straight-line register-only
	// compute (isa.BurstReg), or local-store reads and writes under an
	// engine-proved quiescence horizon (isa.BurstLSRead and
	// isa.BurstLSWrite). The burst is
	// cycle- and metric-identical to single-step execution — it only
	// skips engine round-trips for cycles no other component can
	// observe.
	//
	// Canonical value semantics (harness.Context.SingleStep and
	// synth.CheckOptions.DiffBurst defer to this definition):
	//
	//	 0   selects DefaultBurstMax — bursting enabled;
	//	 1   and every negative value disable bursting entirely: the
	//	     single-step slow path, at most one pipeline cycle per
	//	     engine tick, which the differential suites run as the
	//	     reference;
	//	 n>1 caps each burst window at n pipeline cycles.
	BurstMax int
}

// DefaultBurstMax is the burst-window bound applied when
// Config.BurstMax is 0. The cap exists so a runaway all-compute loop
// still returns to the engine often enough for Config.MaxCycles to
// abort it; since bursts are cycle-identical to single-step execution,
// the bound trades only abort granularity (still far below any real
// MaxCycles budget) against engine round-trips on compute-heavy code.
const DefaultBurstMax = 1 << 16

// DefaultConfig returns the default pipeline parameters.
func DefaultConfig() Config {
	return Config{LatFX: 2, LatSH: 4, LatMUL: 7, LatDIV: 20, BranchPenalty: 2,
		DispatchCost: 4, MFCChannelCycles: 24}
}

type phase uint8

const (
	phIdle phase = iota
	phRun
	phWaitRead
	phWaitFalloc
)

// producer classes for stall attribution.
type prodClass uint8

const (
	prodNone prodClass = iota
	prodALU
	prodLS  // local store / frame load
	prodMFC // MFC status read (MFCSTAT) — a dependent wait is a DMA poll
)

// uop flag bits.
const (
	uopMem      uint8 = 1 << iota // issues in the memory slot of the dual-issue pipeline
	uopBranch                     // control transfer (JMP / conditional branches)
	uopBurstReg                   // this and the next instruction are isa.BurstReg
	uopBurstLS                    // this and the next instruction are isa.BurstReg, isa.BurstLSRead or isa.BurstLSWrite
	uopExtern                     // isa.BurstNone: executing this op may wake another component
	uopALU                        // register-only compute: issueCycle evaluates inline, skipping execute's opcode dispatch
)

// uop is the decoded, SPU-resident form of one instruction: the
// instruction word itself plus the static per-instruction facts the
// issue path needs every cycle, precomputed once per template block so
// the hot loop does no isa.Info lookups or format dispatch and touches
// a single cache-friendly record per pc. The two burst bits describe
// the instruction *pair* at (pc, pc+1) — the furthest one issue cycle
// can reach — mirroring the burst-mask convention: the last instruction
// of a block carries neither bit, so block transitions always run on
// the engine clock.
type uop struct {
	ins   isa.Instruction
	lat   int32    // cfg-resolved result latency of the executing unit
	srcs  [3]uint8 // registers the scoreboard must clear before issue
	nsrc  uint8
	flags uint8
	cls   uint8 // instruction-mix class for stats.InstrCounts (icls*)
}

// Instruction-mix classes, precomputed per opcode so the per-issue
// statistics update is an indexed switch instead of a 40-way opcode
// dispatch.
const (
	iclsOther uint8 = iota
	iclsLoad
	iclsStore
	iclsRead
	iclsWrite
	iclsLSDir
	iclsDTA
	iclsMFC
)

// SPU is one processing element's pipeline.
type SPU struct {
	cfg   Config
	id    int // noc endpoint id
	spe   int
	memID int
	net   *noc.Network
	lse   *dta.LSE
	dma   *mfc.Engine
	store *ls.LocalStore
	prog  *program.Program

	handle *sim.Handle

	regs  [isa.NumRegs]int64
	ready [isa.NumRegs]sim.Cycle
	prod  [isa.NumRegs]prodClass

	cur     *dta.Thread
	curKind dta.WorkKind
	block   program.BlockKind
	pc      int

	// uops is the decoded form of the current code block (uopTab caches
	// one table per template block): uops[pc] carries the instruction
	// plus everything the per-cycle issue path would otherwise re-derive
	// from isa.Info on every visit — scoreboard sources, issue slot,
	// branchness, the configured result latency — and the dual burst
	// masks of the instruction pair starting at pc (see uop).
	uops   []uop
	uopTab [][]uop

	ph          phase
	gapCause    stats.Cause // cause for cycles while sleeping
	gapLoc      stats.Loc   // guest location the sleep gap attributes to
	accounted   sim.Cycle   // cycles < accounted are attributed
	nextIssueAt sim.Cycle   // branch bubbles / dispatch refill
	burstLimit  sim.Cycle   // resolved Config.BurstMax (>= 1)
	resumeAt    sim.Cycle   // burst horizon: cycles below are already simulated
	stallUntil  sim.Cycle   // ready cycle of the register that blocked issue

	// hzn caches the engine's quiescence horizon (the earliest cycle
	// any other component is scheduled to run — the window in which
	// local-store reads may be simulated ahead of the engine clock).
	// hznDirty marks moments the cache may have moved: set at Tick
	// entry (other components ran since the last tick) and whenever an
	// instruction that can wake another component executes (uopExtern);
	// lsHorizon then revalidates against the engine's schedule stamp.
	hzn      sim.Cycle
	hznStamp uint64
	hznDirty bool

	// lsw is the machine's wiring declaration for the LS-read burst
	// window (SetLSWiring); lsWired gates the refined horizon — without
	// it the SPU falls back to the component-agnostic horizon.
	lsw     LSWiring
	lsWired bool
	eng     *sim.Engine

	readDst  uint8
	reqSeq   int64
	fallocRd uint8

	st stats.SPU

	// Rec, when non-nil, receives SPU occupancy spans (dispatched work
	// units and burst windows) for timeline export; unitStart is the
	// dispatch cycle of the current work unit. Recording off (nil Rec)
	// costs one pointer compare per span site, nothing per cycle.
	Rec       *trace.Recorder
	unitStart sim.Cycle

	// Prof, when non-nil, receives per-(location, cause) cycle samples
	// from the same charge paths that feed the bucket breakdown, so
	// profiled attribution is definitionally consistent with the stats
	// and burst windows attribute in bulk (one Add per charge, not per
	// cycle). Profiling off (nil Prof) costs one nil check per charge.
	Prof *stats.Profile

	// Fault receives execution errors (invalid addresses, bad frame
	// pointers); the machine aborts the run.
	Fault func(error)
	// Magic is the ideal-cache backdoor used when PerfectCacheLat > 0:
	// it reads/writes main memory functionally without traffic.
	Magic MagicMem
}

// MagicMem is the functional memory access used by the perfect-cache
// mode (width is 4 or 8 bytes).
type MagicMem interface {
	MagicRead(addr int64, width int) (int64, error)
	MagicWrite(addr int64, v int64, width int) error
}

// New creates the SPU for SPE spe.
func New(cfg Config, id, spe, memID int, net *noc.Network, lseUnit *dta.LSE,
	dma *mfc.Engine, store *ls.LocalStore, prog *program.Program) *SPU {
	s := &SPU{
		cfg: cfg, id: id, spe: spe, memID: memID,
		net: net, lse: lseUnit, dma: dma, store: store, prog: prog,
		ph:       phIdle,
		gapCause: stats.CauseIdle,
		gapLoc:   stats.IdleLoc,
		Fault:    func(err error) { panic(err) },
	}
	s.burstLimit = sim.Cycle(cfg.BurstMax)
	if cfg.BurstMax == 0 {
		s.burstLimit = DefaultBurstMax
	} else if cfg.BurstMax < 1 {
		s.burstLimit = 1
	}
	s.uopTab = make([][]uop, len(prog.Templates)*int(program.NumBlocks))
	return s
}

// uopsFor returns (decoding on first use) the uop table of one template
// code block.
func (s *SPU) uopsFor(tmpl int, blk program.BlockKind) []uop {
	idx := tmpl*int(program.NumBlocks) + int(blk)
	if u := s.uopTab[idx]; u != nil {
		return u
	}
	u := s.buildUops(s.prog.Templates[tmpl].Blocks[blk])
	s.uopTab[idx] = u
	return u
}

// buildUops decodes one code block. It is the single place the static
// instruction metadata (operand format, issue slot, unit latency, burst
// class) is consulted; the per-cycle paths read only the resulting
// uops.
func (s *SPU) buildUops(code []isa.Instruction) []uop {
	us := make([]uop, len(code))
	for i, ins := range code {
		info := isa.InfoOf(ins.Op)
		u := &us[i]
		u.ins = ins
		u.cls = instrClass(ins.Op)
		switch info.Fmt {
		case isa.FmtRa, isa.FmtRdRa, isa.FmtRdRaImm:
			u.srcs[0], u.nsrc = ins.Ra, 1
		case isa.FmtRdRaRb, isa.FmtRaRbImm, isa.FmtRdRaRbIm:
			u.srcs[0], u.srcs[1], u.nsrc = ins.Ra, ins.Rb, 2
		}
		// Stores read their value register (Rd) too.
		switch ins.Op {
		case isa.STORE, isa.STOREX, isa.WRITE, isa.WRITE8, isa.LSWR, isa.LSWR8,
			isa.LSWRX, isa.LSWRX8:
			u.srcs[u.nsrc], u.nsrc = ins.Rd, u.nsrc+1
		}
		if info.Unit.MemSlot() {
			u.flags |= uopMem
		}
		if info.Branch {
			u.flags |= uopBranch
		}
		if isa.ClassOf(ins.Op) == isa.BurstNone {
			u.flags |= uopExtern
		}
		if aluOp(ins.Op) {
			u.flags |= uopALU
		}
		u.lat = int32(s.latFor(info.Unit))
	}
	for i := 0; i+1 < len(code); i++ {
		a, b := isa.ClassOf(code[i].Op), isa.ClassOf(code[i+1].Op)
		if a == isa.BurstNone {
			continue
		}
		if b == isa.BurstNone {
			// The second instruction of the would-be issue pair is not
			// burst-safe, but the cycle starting at i is still safe to
			// pre-execute when the second instruction provably cannot
			// join it: either both compete for the same issue slot
			// (structural), or the second reads the first's destination
			// register, whose result lands at least one cycle later
			// (data dependence — the scoreboard blocks it exactly as in
			// single-step execution). The pre-executed cycle then issues
			// only the first instruction, and the burst loop stops at
			// the second, which runs on the engine clock.
			if !secondCannotJoin(&us[i], &us[i+1], code[i]) {
				continue
			}
			// Only the first instruction executes in this cycle, so the
			// cycle's burst class is the first's alone.
			b = isa.BurstReg
		}
		if a == isa.BurstReg && b == isa.BurstReg {
			us[i].flags |= uopBurstReg | uopBurstLS
		} else {
			us[i].flags |= uopBurstLS
		}
	}
	return us
}

// aluOp reports whether op is pure register compute — exactly the ops
// execute handles as evaluate + setReg + pc advance, with no faults, no
// sleeps and no side effects on other components — so issueCycle may
// evaluate them inline (uopALU) without the opcode dispatch.
func aluOp(op isa.Op) bool {
	switch op {
	case isa.MOVI, isa.MOVHI, isa.MOV,
		isa.ADD, isa.ADDI, isa.SUB, isa.SUBI, isa.MUL, isa.MULI, isa.DIV,
		isa.REM, isa.AND, isa.ANDI, isa.OR, isa.ORI, isa.XOR, isa.XORI,
		isa.SHL, isa.SHLI, isa.SHR, isa.SHRI, isa.SRA, isa.SRAI,
		isa.CMPEQ, isa.CMPLT, isa.CMPLTU:
		return true
	}
	return false
}

// secondCannotJoin reports whether the instruction decoded as sec can
// never issue in the same cycle as fst (the instruction word insFst,
// already issued first): they compete for the same slot, or sec reads
// insFst's destination register and insFst's result latency is at
// least one cycle, so the scoreboard blocks sec until after this
// cycle. Both facts are static: registers come from the encodings and
// the latency from the decoded uop. RegZero writes are discarded (no
// scoreboard entry), so they prove nothing.
func secondCannotJoin(fst, sec *uop, insFst isa.Instruction) bool {
	if fst.flags&uopMem == sec.flags&uopMem {
		return true // structural: one memory and one compute slot per cycle
	}
	if insFst.Rd == isa.RegZero || fst.lat < 1 || !writesRd(insFst.Op) {
		return false
	}
	for k := uint8(0); k < sec.nsrc; k++ {
		if sec.srcs[k] == insFst.Rd {
			return true
		}
	}
	return false
}

// writesRd reports whether op architecturally writes its Rd field (true
// for every burstable op whose format carries a destination; branches,
// JMP and NOP carry none).
func writesRd(op isa.Op) bool {
	switch isa.InfoOf(op).Fmt {
	case isa.FmtRdImm, isa.FmtRdRa, isa.FmtRdRaRb, isa.FmtRdRaImm, isa.FmtRdRaRbIm:
		return !isa.InfoOf(op).Store
	}
	return false
}

// Name implements sim.Component.
func (s *SPU) Name() string { return fmt.Sprintf("spu%d", s.spe) }

// Attach stores the engine wake handle.
func (s *SPU) Attach(h *sim.Handle) {
	s.handle = h
	s.eng = h.Engine()
}

// LSWiring is the machine's declaration of everything that can touch
// this SPE's local store, in engine and interconnect terms. Components
// with pending LS-mutating work advertise it simply by being
// scheduled: the engine requires a component with pending work to be
// scheduled no later than that work's cycle (an unscheduled one would
// deadlock the machine today), so NextScheduled over the ids below,
// plus the network's per-group message state, bounds the next possible
// local-store mutation.
type LSWiring struct {
	// NetID, LSEID, MFCID are the engine identities (Handle.ID) of the
	// interconnect, this SPE's LSE and this SPE's MFC — the only
	// components whose Ticks read or write this local store: the LSE
	// performs frame stores, the MFC streams PUT data out, and DMA/frame
	// traffic from everywhere else lands via a network delivery. MemID
	// is main memory's engine identity: memory is the only sender of
	// DMA data (the messages whose delivery writes the store with no
	// further tick), which earns every other component one extra cycle
	// in the chain bound — their effects land in the LSE's inbox and
	// wait for an LSE service tick after delivery.
	NetID, LSEID, MFCID, MemID int32
	// TouchGroup is the network touch group (noc.DeclareTouchGroup)
	// holding this SPE's MFC and LSE endpoints: the network's tick
	// touches this local store only when it delivers to one of them.
	TouchGroup int
	// ChainLat is a lower bound on the cycles ANY other component needs
	// from its own tick to an effect on this local store; every such
	// path crosses the interconnect, so the machine passes
	// noc.Config.MinDeliveryLatency.
	ChainLat sim.Cycle
	// GrantLag is a lower bound on the cycles between a network tick
	// that grants a queued message and the resulting delivery
	// (noc.Network.DeliveryLagLB).
	GrantLag sim.Cycle
}

// SetLSWiring declares the machine wiring the LS-read burst path leans
// on; see LSWiring. Without it the SPU uses the component-agnostic
// quiescence horizon, which is correct but clamps on unrelated
// components.
func (s *SPU) SetLSWiring(w LSWiring) {
	s.lsw = w
	s.lsWired = true
}

// Wake prods the SPU (used by the LSE's OnWork callback).
func (s *SPU) Wake(now sim.Cycle) {
	if s.handle != nil {
		s.handle.Wake(now)
	}
}

// Stats returns the accumulated statistics.
func (s *SPU) Stats() stats.SPU { return s.st }

// Reset returns the pipeline to its post-construction state for
// machine reuse, rebinding it to prog (the uop cache is sized by the
// program's template count). Wiring (Fault, Magic, handle) is kept.
func (s *SPU) Reset(prog *program.Program) {
	if prog != s.prog {
		// The uop cache is keyed by template block; it stays valid when
		// the same program is re-run.
		n := len(prog.Templates) * int(program.NumBlocks)
		if n <= cap(s.uopTab) {
			s.uopTab = s.uopTab[:n]
			for i := range s.uopTab {
				s.uopTab[i] = nil
			}
		} else {
			s.uopTab = make([][]uop, n)
		}
	}
	s.prog = prog
	for i := range s.regs {
		s.regs[i], s.ready[i], s.prod[i] = 0, 0, prodNone
	}
	s.cur, s.curKind = nil, dta.WorkNone
	s.block = 0
	s.pc = 0
	s.uops = nil
	s.ph = phIdle
	s.gapCause = stats.CauseIdle
	s.gapLoc = stats.IdleLoc
	s.accounted = 0
	s.nextIssueAt = 0
	s.resumeAt = 0
	s.stallUntil = 0
	s.hzn = 0
	s.hznStamp = 0
	s.readDst = 0
	s.reqSeq = 0
	s.fallocRd = 0
	s.unitStart = 0
	s.st = stats.SPU{}
}

// Finalize charges the trailing sleep gap up to end (call once when the
// run stops) and records the run length.
func (s *SPU) Finalize(end sim.Cycle) {
	if end > s.accounted {
		n := int64(end - s.accounted)
		s.st.Charge(s.gapCause, n)
		s.Prof.Add(s.gapLoc, s.gapCause, n)
		s.accounted = end
	}
	s.st.Cycles = int64(end)
}

// account charges the sleep gap [s.accounted, now) to gapCause at
// gapLoc — the PC of the instruction that entered the wait (or IdleLoc).
func (s *SPU) account(now sim.Cycle) {
	if now > s.accounted {
		n := int64(now - s.accounted)
		s.st.Charge(s.gapCause, n)
		s.Prof.Add(s.gapLoc, s.gapCause, n)
		s.accounted = now
	}
}

// chargeCycle attributes the single cycle `now` to cause c at loc.
func (s *SPU) chargeCycle(now sim.Cycle, c stats.Cause, loc stats.Loc) {
	s.account(now)
	if s.accounted == now {
		s.st.Charge(c, 1)
		s.Prof.Add(loc, c, 1)
		s.accounted = now + 1
	}
}

// chargeCycles attributes n consecutive cycles starting at t to cause c
// at loc — the bulk form of chargeCycle used by the burst fast path to
// batch pipeline bubbles (dispatch refill, branch penalty, MFC channel
// busy) and scoreboard stalls: one profile Add covers the whole window.
func (s *SPU) chargeCycles(t sim.Cycle, n int64, c stats.Cause, loc stats.Loc) {
	if n <= 0 {
		return
	}
	s.account(t)
	if s.accounted == t {
		s.st.Charge(c, n)
		s.Prof.Add(loc, c, n)
		s.accounted = t + sim.Cycle(n)
	}
}

// OnFallocResp is wired to the LSE: a FALLOC round trip completed.
func (s *SPU) OnFallocResp(now sim.Cycle, reqID, fp int64) {
	if s.ph != phWaitFalloc {
		s.Fault(fmt.Errorf("spu%d: unexpected falloc response", s.spe))
		return
	}
	s.setReg(s.fallocRd, fp, now+1, prodALU)
	s.ph = phRun
	s.Wake(now + 1)
}

// Deliver implements noc.Endpoint (memory read responses).
func (s *SPU) Deliver(now sim.Cycle, m noc.Message) {
	if m.Kind != noc.KindMemReadResp || s.ph != phWaitRead {
		s.Fault(fmt.Errorf("spu%d: unexpected %s in phase %d", s.spe, m, s.ph))
		return
	}
	s.setReg(s.readDst, m.B, now+1, prodALU)
	s.ph = phRun
	s.Wake(now + 1)
}

func (s *SPU) setReg(r uint8, v int64, ready sim.Cycle, p prodClass) {
	if r == isa.RegZero {
		return
	}
	s.regs[r] = v
	s.ready[r] = ready
	s.prod[r] = p
}

// dispatch loads a new work unit from the LSE.
func (s *SPU) dispatch(now sim.Cycle) bool {
	th, kind := s.lse.NextWork(now)
	if kind == dta.WorkNone {
		return false
	}
	s.cur, s.curKind = th, kind
	s.unitStart = now
	for i := range s.regs {
		s.regs[i], s.ready[i], s.prod[i] = 0, 0, prodNone
	}
	s.regs[isa.RegFP] = dta.MakeFP(s.spe, th.Slot)
	s.regs[isa.RegPFB] = int64(th.BufAddr)
	s.regs[isa.RegSPE] = int64(s.spe)
	s.regs[isa.RegTag] = th.Seq
	if kind == dta.WorkPF {
		s.block = program.PF
		s.st.PFBlocks++
	} else {
		s.block = program.PL
	}
	s.uops = s.uopsFor(th.Template, s.block)
	s.pc = 0
	s.skipEmptyBlocks(now)
	s.nextIssueAt = now + sim.Cycle(s.cfg.DispatchCost)
	s.ph = phRun
	return true
}

// skipEmptyBlocks advances past empty code blocks (e.g. a thread with no
// PL). Returns false when the work unit is exhausted.
func (s *SPU) skipEmptyBlocks(now sim.Cycle) bool {
	for s.cur != nil && s.pc >= len(s.uops) {
		if !s.advanceBlock(now) {
			return false
		}
	}
	return s.cur != nil
}

// advanceBlock moves to the next block of the current work unit; false
// means the unit ended.
func (s *SPU) advanceBlock(now sim.Cycle) bool {
	if s.curKind == dta.WorkPF {
		// PF block complete: the thread waits for its DMA tag group.
		if s.Rec != nil {
			s.Rec.SPUUnit(s.spe, trace.UnitPF, s.unitStart, now+1, s.cur.Seq, s.cur.Template)
		}
		s.lse.PFDone(now, s.cur)
		s.cur = nil
		return false
	}
	switch s.block {
	case program.PL:
		s.block = program.EX
	case program.EX:
		s.block = program.PS
	case program.PS:
		// PS must end in STOP (validated); falling off is a machine bug.
		s.Fault(fmt.Errorf("spu%d: PS block of template %d fell through", s.spe,
			s.cur.Template))
		s.cur = nil
		return false
	}
	s.uops = s.uopsFor(s.cur.Template, s.block)
	s.pc = 0
	return true
}

// causeFor maps an execution cycle's raw cause to the attributed one:
// everything inside a PF block is prefetch overhead (paper Fig. 5
// "Prefetching"), refined into DMA-wait (cycles blocked on the DMA
// engine itself: status polls, full command queue) vs DMA-programming
// (everything else — issue, channel occupancy, dependency waits). The
// folded cause's bucket reproduces the historical bucketFor mapping
// exactly: any cause inside PF lands in stats.Prefetch.
func (s *SPU) causeFor(c stats.Cause) stats.Cause {
	if s.curKind == dta.WorkPF {
		switch c {
		case stats.CauseMFCWait, stats.CauseMFCQueueFull:
			return stats.CauseDMAWait
		}
		return stats.CauseDMAProgram
	}
	return c
}

// curLoc returns the guest location of the current PC (IdleLoc when no
// work unit is resident). Cheap enough to compute unconditionally: the
// profiler consumes it only when enabled.
func (s *SPU) curLoc() stats.Loc {
	if s.cur == nil {
		return stats.IdleLoc
	}
	return stats.Loc{Template: int32(s.cur.Template), Block: uint8(s.block), PC: int32(s.pc)}
}

// Tick executes one or more pipeline cycles. The burst fast path: when
// the upcoming instructions are straight-line register-only compute
// (isa.BurstReg — no load/store/DMA/sync and nothing another component
// can observe), the SPU simulates up to burstLimit cycles in one call
// and returns the horizon, so the engine skips the dead cycles
// entirely. Local-store reads (isa.BurstLSRead: LSRD*/LOAD*) and
// direct local-store writes (isa.BurstLSWrite: LSWR*) burst too, for
// simulated cycles t strictly below the engine's quiescence horizon
// (sim.Engine.HorizonExcluding): until t, no other component runs, so
// nothing — no MFC write-back, LSE frame delivery, or network delivery
// — can write this SPE's local store, and nothing — no MFC PUT
// streaming, no LSE frame read — can observe a write landed early; an
// access simulated at engine-time now is byte- and cycle-identical to
// one executed at t.
// The horizon is revalidated against the engine's schedule stamp, so
// anything the SPU itself schedules mid-burst (a wake posted by the
// first, unrestricted cycle of the window) shrinks the window
// immediately. Every simulated cycle goes through the exact same
// issueCycle/chargeCycle path as single-step execution, so cycle
// counts, stall attribution and instruction statistics are identical.
//
// Caveat (documented, not observable in well-formed DTA activities):
// burst cycles are simulated eagerly, so if the whole activity
// completes while this SPU is inside a burst window, the final
// statistics include the window's cycles beyond the stop cycle. DTA
// programs end with a join — every SPU is quiescent when the last
// token posts — and the differential suite asserts exact burst ==
// single-step identity across the synth corpus, the paper experiments
// and the machine tests. Similarly, a Config.MaxCycles abort may be
// detected up to burstLimit cycles later than in single-step mode, and
// a fault raised by a pre-executed instruction (e.g. a LOADX slot
// taken from data) aborts the run at the engine cycle the burst
// started rather than the simulated cycle of the instruction.
func (s *SPU) Tick(now sim.Cycle) sim.Cycle {
	if now < s.resumeAt {
		// An early wake (e.g. the LSE's OnWork) landed inside a burst
		// window whose cycles are already simulated; sleep to the
		// horizon. Running-thread execution never depends on wakes.
		return s.resumeAt
	}
	s.hznDirty = true // other components may have run since the last tick
	next := s.tick(now)
	if s.Rec != nil && s.accounted > now+1 {
		// More than one pipeline cycle was simulated inside this engine
		// tick: a burst window (compute burst, LS-read/write burst, or a
		// bulk bubble/stall charge).
		s.Rec.SPUBurst(s.spe, now, s.accounted)
	}
	if next == sim.Never {
		s.resumeAt = 0
	} else {
		s.resumeAt = next
	}
	return next
}

func (s *SPU) tick(now sim.Cycle) sim.Cycle {
	switch s.ph {
	case phWaitRead, phWaitFalloc:
		// Sleeping on a response; gap accounting happens on wake.
		return sim.Never
	case phIdle:
		s.account(now)
		if !s.dispatch(now) {
			s.gapCause = stats.CauseIdle
			s.gapLoc = stats.IdleLoc
			return sim.Never
		}
	case phRun:
		if s.cur == nil && !s.dispatch(now) {
			s.account(now)
			s.ph = phIdle
			s.gapCause = stats.CauseIdle
			s.gapLoc = stats.IdleLoc
			return sim.Never
		}
	}
	limit := now + s.burstLimit
	t := now
	// Per-PC attribution only matters when the guest profiler is on;
	// without it, skip building Loc values — the zero Loc is fine for
	// the nil-profile sink, and curLoc per cycle is measurable at burst
	// rates.
	profiled := s.Prof != nil
	var loc stats.Loc
	for {
		if t < s.nextIssueAt {
			// Dispatch refill, branch bubble, or MFC channel busy:
			// charge the dead cycles in bulk. Bubble cycles are
			// engine-invisible — the SPU accepts no deliveries in
			// phRun and mutates nothing another component reads — so
			// batching them is exactly single-step behaviour.
			end := s.nextIssueAt
			if end > limit {
				end = limit
			}
			if profiled {
				loc = s.curLoc()
			}
			s.chargeCycles(t, int64(end-t), s.causeFor(stats.CauseBubble), loc)
			t = end
			if t >= limit || !s.burstableAt(t) {
				return t
			}
		}
		// The cycle attributes to the PC it started at: the first
		// instruction considered (issued or blocked) this cycle.
		if profiled {
			loc = s.curLoc()
		}
		cause, issued, sleep := s.issueCycle(t)
		if sleep {
			s.chargeCycle(t, cause, loc)
			return sim.Never
		}
		if issued == 0 && s.stallUntil > t+1 {
			// Pure scoreboard stall: no instruction issued because a
			// source register's result is pending. Nothing in the
			// machine can change the outcome before the producer's
			// ready cycle — the scoreboard is pipeline-local — so
			// charge the whole wait in bulk and jump to its end.
			end := s.stallUntil
			if end > limit {
				end = limit
			}
			s.chargeCycles(t, int64(end-t), cause, loc)
			t = end
		} else {
			s.chargeCycle(t, cause, loc)
			t++
		}
		if t >= limit || s.cur == nil {
			// At the limit, or the work unit ended (STOP or PF
			// completion): the next cycle dispatches, which resets the
			// pipeline refill — hand back to the engine exactly as
			// single-step execution does.
			return t
		}
		if t >= s.nextIssueAt && !s.burstableAt(t) {
			return t
		}
	}
}

// burstableAt reports whether pipeline cycle t — always a cycle the
// burst loop would simulate ahead of the engine clock, t > Now — can
// run without returning to the engine: the SPU is running a PL/EX/PS
// block and the next two sequential instructions — the only ones one
// cycle can reach — are register-only compute (always burstable), or
// local-store reads/writes mixed with compute (burstable while t is
// inside the engine-proved quiescence window, t < lsHorizon).
// Everything else (frame stores, main memory, the LSE, the MFC) must
// execute on the engine clock, where the rest of the machine has
// caught up. PF blocks are excluded because falling off their end
// notifies the LSE.
func (s *SPU) burstableAt(t sim.Cycle) bool {
	if s.cur == nil || s.curKind != dta.WorkThread || s.pc >= len(s.uops) {
		return false
	}
	f := s.uops[s.pc].flags
	if f&uopBurstReg != 0 {
		return true
	}
	return f&uopBurstLS != 0 && t < s.lsHorizon()
}

// lsHorizon returns the engine's quiescence horizon for this SPU — the
// earliest cycle at which any other component is scheduled to run, and
// hence the first cycle at which the local store could be written by
// someone else. The cache is revalidated only at hznDirty moments
// (tick entry, after a uopExtern instruction): those are the only
// points the schedule can have gained entries, because nothing else
// runs during this SPU's Tick. Revalidation compares the engine's
// schedule stamp — insertions bump it and force a re-read, while a
// stale cache under an unchanged stamp can only be earlier than the
// true horizon, i.e. conservative.
func (s *SPU) lsHorizon() sim.Cycle {
	if s.hznDirty {
		s.revalidateHorizon()
	}
	return s.hzn
}

// revalidateHorizon is lsHorizon's slow path, kept out of line so the
// per-burst-cycle lsHorizon/burstableAt pair stays within the inlining
// budget.
func (s *SPU) revalidateHorizon() {
	s.hznDirty = false
	if st := s.handle.SchedStamp(); st != s.hznStamp {
		s.hznStamp = st
		s.hzn = s.computeHorizon()
	}
}

// computeHorizon derives the first cycle at which this SPE's local
// store could be touched by someone else. With the machine's wiring
// declaration (SetLSWiring) it is the earliest of:
//
//   - the next scheduled cycle of this SPE's LSE or MFC;
//   - the exact cycle of the earliest in-flight network delivery to
//     this SPE's MFC/LSE endpoints, and — while a message to them is
//     still queued for arbitration — the network's next tick plus the
//     grant-to-delivery lag;
//   - the component-agnostic quiescence horizon plus the
//     interconnect's minimum delivery latency: any component outside
//     the set above (another SPE, a DSE, the PPE, main memory) first
//     has to run, no earlier than the horizon, and then cross the
//     interconnect before it can reach this store.
//
// Network ticks that only serve other endpoints' traffic — including
// this SPU's own posted WRITEs to main memory — no longer clamp the
// window. Without wiring it degrades to the quiescence horizon alone.
func (s *SPU) computeHorizon() sim.Cycle {
	h := s.handle.Horizon()
	if s.eng == nil || !s.lsWired {
		return h
	}
	if h != sim.Never {
		// Generic bound for every other component: it must run (no
		// earlier than the quiescence horizon), cross the interconnect
		// (ChainLat), and — since only main memory sends the DMA data
		// messages whose delivery itself writes the store — its effect
		// lands in our LSE's inbox and waits one more cycle for an LSE
		// service tick. (If our LSE were already scheduled at the
		// delivery cycle, its own term below caps the window first.)
		h += s.lsw.ChainLat + 1
	}
	if n := s.eng.NextScheduled(s.lsw.MemID); n != sim.Never && n+s.lsw.ChainLat < h {
		h = n + s.lsw.ChainLat // memory's DMA data writes the store at delivery
	}
	if n := s.eng.NextScheduled(s.lsw.LSEID); n < h {
		h = n
	}
	if n := s.eng.NextScheduled(s.lsw.MFCID); n < h {
		h = n
	}
	if d := s.net.EarliestDeliveryTo(s.lsw.TouchGroup); d < h {
		h = d
	}
	if s.net.QueuedTo(s.lsw.TouchGroup) {
		if n := s.eng.NextScheduled(s.lsw.NetID); n != sim.Never && n+s.lsw.GrantLag < h {
			h = n + s.lsw.GrantLag
		}
	}
	return h
}

// issueCycle attempts to issue up to two instructions at cycle now. It
// returns the stall cause for this cycle, how many instructions issued,
// and whether the SPU should sleep (blocking wait entered).
func (s *SPU) issueCycle(now sim.Cycle) (stats.Cause, int, bool) {
	issued := 0
	memUsed, cmpUsed := false, false
	cycleCause := s.causeFor(stats.CauseIssue)
	s.stallUntil = 0

	for issued < 2 && s.cur != nil {
		if s.pc >= len(s.uops) {
			if !s.skipEmptyBlocks(now) {
				break // work unit ended (PF completion)
			}
		}
		u := &s.uops[s.pc]
		ins := u.ins
		isMem := u.flags&uopMem != 0
		if (isMem && memUsed) || (!isMem && cmpUsed) {
			break // structural: slot taken this cycle
		}
		if blocked, cause := s.operandsBlocked(now, u); blocked {
			if issued == 0 {
				cycleCause = s.causeFor(cause)
			}
			break
		}
		if u.flags&uopALU != 0 {
			// Register-only compute — the dominant class in unrolled
			// kernels: evaluate inline (same effect as execute's ALU
			// cases) and skip the full opcode dispatch. These ops never
			// fault, sleep, branch, end the unit or wake another
			// component, so none of the post-issue checks below apply.
			var v int64
			switch ins.Op {
			case isa.MOVI:
				v = int64(ins.Imm)
			case isa.MOVHI:
				v = int64(ins.Imm) << 32
			case isa.MOV:
				v = s.regs[ins.Ra]
			default:
				v = isa.EvalALU(ins.Op, s.regs[ins.Ra], s.regs[ins.Rb], int64(ins.Imm))
			}
			s.setReg(ins.Rd, v, now+sim.Cycle(u.lat), prodALU)
			s.pc++
			issued++
			s.st.IssuedSlots++
			s.st.Instr.Total++
			cmpUsed = true
			continue
		}
		ok, sleep, cause := s.execute(now, ins, u)
		if !ok {
			// Structural stall outside the pipeline (LSE/MFC full).
			if issued == 0 {
				cycleCause = s.causeFor(cause)
			}
			break
		}
		issued++
		s.st.IssuedSlots++
		s.countInstr(u.cls)
		if u.flags&uopExtern != 0 {
			// The op may have scheduled another component (a wake posted
			// to the LSE, MFC, or network): revalidate the horizon
			// before pre-executing anything.
			s.hznDirty = true
		}
		if isMem {
			memUsed = true
		} else {
			cmpUsed = true
		}
		if sleep {
			return s.causeFor(stats.CauseIssue), issued, true
		}
		if u.flags&uopBranch != 0 && s.nextIssueAt > now {
			break // taken branch ends the issue group
		}
		if s.cur == nil {
			break // STOP or PF completion inside execute
		}
	}
	return cycleCause, issued, false
}

// operandsBlocked checks the scoreboard for the instruction's
// precomputed source registers and reports the raw stall cause (the
// caller folds PF-block context via causeFor).
func (s *SPU) operandsBlocked(now sim.Cycle, u *uop) (bool, stats.Cause) {
	for i := uint8(0); i < u.nsrc; i++ {
		if r := u.srcs[i]; s.ready[r] > now {
			// Record when this register's result lands so the burst
			// fast path can batch the whole wait; re-checking at that
			// cycle reproduces single-step behaviour exactly (a later
			// source may then block in turn).
			s.stallUntil = s.ready[r]
			switch s.prod[r] {
			case prodLS:
				return true, stats.CauseLSWait
			case prodMFC:
				return true, stats.CauseMFCWait
			}
			return true, stats.CauseDepStall
		}
	}
	return false, stats.CauseIssue
}

func (s *SPU) countInstr(cls uint8) {
	s.st.Instr.Total++
	switch cls {
	case iclsLoad:
		s.st.Instr.Load++
	case iclsStore:
		s.st.Instr.Store++
	case iclsRead:
		s.st.Instr.Read++
	case iclsWrite:
		s.st.Instr.Write++
	case iclsLSDir:
		s.st.Instr.LSDir++
	case iclsDTA:
		s.st.Instr.DTA++
	case iclsMFC:
		s.st.Instr.MFC++
	}
}

// instrClass maps an opcode to its stats.InstrCounts class (the
// decode-time half of countInstr).
func instrClass(op isa.Op) uint8 {
	switch op {
	case isa.LOAD, isa.LOADX:
		return iclsLoad
	case isa.STORE, isa.STOREX:
		return iclsStore
	case isa.READ, isa.READ8:
		return iclsRead
	case isa.WRITE, isa.WRITE8:
		return iclsWrite
	case isa.LSRD, isa.LSRD8, isa.LSWR, isa.LSWR8, isa.LSRDX, isa.LSRDX8,
		isa.LSWRX, isa.LSWRX8:
		return iclsLSDir
	case isa.FALLOC, isa.FALLOCX, isa.FFREE, isa.STOP:
		return iclsDTA
	case isa.MFCLSA, isa.MFCEA, isa.MFCSZ, isa.MFCTAG, isa.MFCGET, isa.MFCPUT,
		isa.MFCSTAT:
		return iclsMFC
	}
	return iclsOther
}

func (s *SPU) latFor(u isa.Unit) sim.Cycle {
	switch u {
	case isa.UnitSH:
		return sim.Cycle(s.cfg.LatSH)
	case isa.UnitMUL:
		return sim.Cycle(s.cfg.LatMUL)
	case isa.UnitDIV:
		return sim.Cycle(s.cfg.LatDIV)
	}
	return sim.Cycle(s.cfg.LatFX)
}

// execute performs one instruction. ok=false means a structural stall
// (retry next cycle, pc unchanged) with the raw stall cause; sleep=true
// means the SPU enters a blocking wait (pc already advanced, gapCause
// and gapLoc set to attribute the coming sleep gap). u.lat carries the
// executing unit's configured result latency.
func (s *SPU) execute(now sim.Cycle, ins isa.Instruction, u *uop) (ok, sleep bool, cause stats.Cause) {
	r := func(i uint8) int64 { return s.regs[i] }
	adv := func() { s.pc++ }

	switch ins.Op {
	case isa.NOP:
		adv()

	case isa.MOVI:
		s.setReg(ins.Rd, int64(ins.Imm), now+sim.Cycle(u.lat), prodALU)
		adv()
	case isa.MOVHI:
		s.setReg(ins.Rd, int64(ins.Imm)<<32, now+sim.Cycle(u.lat), prodALU)
		adv()
	case isa.MOV:
		s.setReg(ins.Rd, r(ins.Ra), now+sim.Cycle(u.lat), prodALU)
		adv()

	case isa.ADD, isa.ADDI, isa.SUB, isa.SUBI, isa.MUL, isa.MULI, isa.DIV,
		isa.REM, isa.AND, isa.ANDI, isa.OR, isa.ORI, isa.XOR, isa.XORI,
		isa.SHL, isa.SHLI, isa.SHR, isa.SHRI, isa.SRA, isa.SRAI,
		isa.CMPEQ, isa.CMPLT, isa.CMPLTU:
		v := isa.EvalALU(ins.Op, s.regs[ins.Ra], s.regs[ins.Rb], int64(ins.Imm))
		s.setReg(ins.Rd, v, now+sim.Cycle(u.lat), prodALU)
		adv()

	case isa.JMP:
		s.pc = int(ins.Imm)
		s.nextIssueAt = now + 1 + sim.Cycle(s.cfg.BranchPenalty)
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		if isa.BranchTaken(ins.Op, s.regs[ins.Ra], s.regs[ins.Rb]) {
			s.pc = int(ins.Imm)
			s.nextIssueAt = now + 1 + sim.Cycle(s.cfg.BranchPenalty)
		} else {
			adv()
		}

	case isa.LOAD, isa.LOADX:
		slot := int64(ins.Imm)
		if ins.Op == isa.LOADX {
			slot = r(ins.Ra)
		}
		if slot < 0 || slot >= program.MaxFrameSlots {
			s.Fault(fmt.Errorf("spu%d: frame load slot %d", s.spe, slot))
			return true, false, stats.CauseIssue
		}
		addr := s.lse.FrameAddr(s.cur.Slot) + slot*8
		v, err := s.store.Read64(addr)
		if err != nil {
			s.Fault(err)
			return true, false, stats.CauseIssue
		}
		ready := s.store.Access(ls.PortSPU, now, 8)
		s.setReg(ins.Rd, v, ready, prodLS)
		adv()

	case isa.STORE, isa.STOREX:
		if !s.lse.CanAccept() {
			return false, false, stats.CauseLSEBackpressure
		}
		slot := int64(ins.Imm)
		if ins.Op == isa.STOREX {
			slot = r(ins.Rb)
		}
		s.lse.StoreTo(now, r(ins.Ra), int(slot), r(ins.Rd))
		adv()

	case isa.READ, isa.READ8:
		width := 4
		kind := noc.KindMemRead32
		if ins.Op == isa.READ8 {
			width, kind = 8, noc.KindMemRead64
		}
		addr := r(ins.Ra) + int64(ins.Imm)
		if s.cfg.PerfectCacheLat > 0 && s.Magic != nil {
			v, err := s.Magic.MagicRead(addr, width)
			if err != nil {
				s.Fault(err)
				return true, false, stats.CauseIssue
			}
			s.setReg(ins.Rd, v, now+sim.Cycle(s.cfg.PerfectCacheLat), prodLS)
			adv()
			return true, false, stats.CauseIssue
		}
		s.reqSeq++
		s.net.Send(now, noc.Message{
			Src: s.id, Dst: s.memID, Kind: kind,
			A: addr, C: s.reqSeq,
		})
		s.readDst = ins.Rd
		s.ph = phWaitRead
		s.gapCause = s.causeFor(stats.CauseBlockingRead)
		s.gapLoc = s.curLoc()
		adv()
		return true, true, stats.CauseIssue

	case isa.WRITE, isa.WRITE8:
		width := 4
		kind := noc.KindMemWrite32
		if ins.Op == isa.WRITE8 {
			width, kind = 8, noc.KindMemWrite64
		}
		if s.cfg.PerfectCacheLat > 0 && s.Magic != nil {
			if err := s.Magic.MagicWrite(r(ins.Ra)+int64(ins.Imm), r(ins.Rd), width); err != nil {
				s.Fault(err)
			}
			adv()
			break
		}
		s.net.Send(now, noc.Message{
			Src: s.id, Dst: s.memID, Kind: kind,
			A: r(ins.Ra) + int64(ins.Imm), B: r(ins.Rd),
		})
		adv()

	case isa.LSRD, isa.LSRD8, isa.LSRDX, isa.LSRDX8:
		addr := r(ins.Ra) + int64(ins.Imm)
		if ins.Op == isa.LSRDX || ins.Op == isa.LSRDX8 {
			addr += r(ins.Rb)
		}
		var v int64
		var err error
		if ins.Op == isa.LSRD || ins.Op == isa.LSRDX {
			v, err = s.store.Read32(addr)
		} else {
			v, err = s.store.Read64(addr)
		}
		if err != nil {
			s.Fault(err)
			return true, false, stats.CauseIssue
		}
		ready := s.store.Access(ls.PortSPU, now, 8)
		s.setReg(ins.Rd, v, ready, prodLS)
		adv()

	case isa.LSWR, isa.LSWR8, isa.LSWRX, isa.LSWRX8:
		addr := r(ins.Ra) + int64(ins.Imm)
		if ins.Op == isa.LSWRX || ins.Op == isa.LSWRX8 {
			addr += r(ins.Rb)
		}
		var err error
		if ins.Op == isa.LSWR || ins.Op == isa.LSWRX {
			err = s.store.Write32(addr, r(ins.Rd))
		} else {
			err = s.store.Write64(addr, r(ins.Rd))
		}
		if err != nil {
			s.Fault(err)
			return true, false, stats.CauseIssue
		}
		s.store.Access(ls.PortSPU, now, 8)
		adv()

	case isa.FALLOC, isa.FALLOCX:
		if !s.lse.CanAccept() {
			return false, false, stats.CauseLSEBackpressure
		}
		var tmpl, sc int
		if ins.Op == isa.FALLOC {
			tmpl, sc = isa.UnpackFalloc(ins.Imm)
		} else {
			tmpl, sc = int(r(ins.Ra)), int(r(ins.Rb))
		}
		s.reqSeq++
		s.fallocRd = ins.Rd
		s.lse.RequestFalloc(now, tmpl, sc, s.reqSeq)
		s.ph = phWaitFalloc
		s.gapCause = s.causeFor(stats.CauseFallocWait)
		s.gapLoc = s.curLoc()
		adv()
		return true, true, stats.CauseIssue

	case isa.FFREE:
		if !s.lse.CanAccept() {
			return false, false, stats.CauseLSEBackpressure
		}
		s.lse.Ffree(now, s.cur)
		adv()

	case isa.STOP:
		if !s.lse.CanAccept() {
			return false, false, stats.CauseLSEBackpressure
		}
		if s.Rec != nil {
			s.Rec.SPUUnit(s.spe, trace.UnitThread, s.unitStart, now+1, s.cur.Seq, s.cur.Template)
		}
		s.lse.ThreadDone(now, s.cur)
		s.st.Threads++
		s.cur = nil
		return true, false, stats.CauseIssue

	case isa.MFCLSA:
		s.dma.WriteChannel(mfc.ChLSA, r(ins.Ra))
		s.channelBusy(now)
		adv()
	case isa.MFCEA:
		s.dma.WriteChannel(mfc.ChEA, r(ins.Ra))
		s.channelBusy(now)
		adv()
	case isa.MFCSZ:
		s.dma.WriteChannel(mfc.ChSize, r(ins.Ra))
		s.channelBusy(now)
		adv()
	case isa.MFCTAG:
		s.dma.WriteChannel(mfc.ChTag, r(ins.Ra))
		s.channelBusy(now)
		adv()
	case isa.MFCGET:
		if !s.dma.Enqueue(now, mfc.Get) {
			return false, false, stats.CauseMFCQueueFull
		}
		s.channelBusy(now)
		adv()
	case isa.MFCPUT:
		if !s.dma.Enqueue(now, mfc.Put) {
			return false, false, stats.CauseMFCQueueFull
		}
		s.channelBusy(now)
		adv()
	case isa.MFCSTAT:
		// u.lat is latFor(UnitMFC) == the FX latency. The result carries
		// prodMFC so a dependent wait attributes as a DMA status poll
		// (bucket-identical to the historical prodALU classification:
		// CauseMFCWait folds into Working outside PF, Prefetch inside).
		s.setReg(ins.Rd, int64(s.dma.Outstanding(s.regs[isa.RegTag])),
			now+sim.Cycle(u.lat), prodMFC)
		adv()

	default:
		s.Fault(fmt.Errorf("spu%d: unimplemented opcode %s", s.spe, ins.Op))
	}

	if s.cur != nil && s.pc >= len(s.uops) {
		s.skipEmptyBlocks(now)
	}
	return true, false, stats.CauseIssue
}

// channelBusy stalls the pipeline for the MFC channel-interface cost
// (the paper's DMA-programming overhead).
func (s *SPU) channelBusy(now sim.Cycle) {
	if s.cfg.MFCChannelCycles > 1 {
		at := now + sim.Cycle(s.cfg.MFCChannelCycles)
		if at > s.nextIssueAt {
			s.nextIssueAt = at
		}
	}
}

// DumpState implements sim.StateDumper.
func (s *SPU) DumpState() string {
	cur := "none"
	if s.cur != nil {
		cur = s.cur.String()
	}
	return fmt.Sprintf("phase=%d work=%s block=%s pc=%d", s.ph, cur, s.block, s.pc)
}
