package spu

import (
	"fmt"

	"repro/internal/dta"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/stats"
)

// Threads visits the thread the pipeline currently holds a reference
// to, if any (registry enumeration for the machine snapshot).
func (s *SPU) Threads(visit func(*dta.Thread)) {
	if s.cur != nil {
		visit(s.cur)
	}
}

// Snapshot serialises the pipeline's mutable state. The current thread
// is written as a registry index via index (-1 when idle). Derived
// state — the decoded uop table, the quiescence-horizon cache — is not
// serialised: the restore rebuilds the former from (template, block)
// and conservatively invalidates the latter.
func (s *SPU) Snapshot(w *snap.Writer, index func(*dta.Thread) int32) {
	for i := range s.regs {
		w.I64(s.regs[i])
	}
	for i := range s.ready {
		w.I64(int64(s.ready[i]))
	}
	for i := range s.prod {
		w.U8(uint8(s.prod[i]))
	}
	if s.cur == nil {
		w.I64(-1)
	} else {
		w.I64(int64(index(s.cur)))
	}
	w.Int(int(s.curKind))
	w.U8(uint8(s.block))
	w.Int(s.pc)
	w.U8(uint8(s.ph))
	w.Int(int(s.gapCause))
	w.I64(int64(s.gapLoc.Template))
	w.U8(s.gapLoc.Block)
	w.I64(int64(s.gapLoc.PC))
	w.I64(int64(s.accounted))
	w.I64(int64(s.nextIssueAt))
	w.I64(int64(s.resumeAt))
	w.I64(int64(s.stallUntil))
	w.U8(s.readDst)
	w.I64(s.reqSeq)
	w.U8(s.fallocRd)
	w.I64(int64(s.unitStart))
	s.st.Snapshot(w)
}

// Restore rewinds the pipeline to a snapshot taken on an identically
// configured SPU running the same program. lookup resolves the current
// thread's registry index. The uop cache is keyed by the program, which
// is unchanged, so it survives; the horizon cache is invalidated — the
// next Tick recomputes it from the restored engine schedule, which can
// only shrink the first burst window, never change behaviour.
func (s *SPU) Restore(r *snap.Reader, lookup func(int32) *dta.Thread) error {
	for i := range s.regs {
		s.regs[i] = r.I64()
	}
	for i := range s.ready {
		s.ready[i] = sim.Cycle(r.I64())
	}
	for i := range s.prod {
		s.prod[i] = prodClass(r.U8())
	}
	curRef := r.I64()
	s.curKind = dta.WorkKind(r.Int())
	s.block = program.BlockKind(r.U8())
	s.pc = r.Int()
	s.ph = phase(r.U8())
	s.gapCause = stats.Cause(r.Int())
	s.gapLoc.Template = int32(r.I64())
	s.gapLoc.Block = r.U8()
	s.gapLoc.PC = int32(r.I64())
	s.accounted = sim.Cycle(r.I64())
	s.nextIssueAt = sim.Cycle(r.I64())
	s.resumeAt = sim.Cycle(r.I64())
	s.stallUntil = sim.Cycle(r.I64())
	s.readDst = r.U8()
	s.reqSeq = r.I64()
	s.fallocRd = r.U8()
	s.unitStart = sim.Cycle(r.I64())
	if err := s.st.Restore(r); err != nil {
		return err
	}
	s.cur, s.uops = nil, nil
	if curRef >= 0 {
		s.cur = lookup(int32(curRef))
		if s.cur == nil {
			return fmt.Errorf("spu%d: snapshot thread ref %d unresolved", s.spe, curRef)
		}
		if s.cur.Template < 0 || s.cur.Template >= len(s.prog.Templates) {
			return fmt.Errorf("spu%d: snapshot thread template %d out of range", s.spe, s.cur.Template)
		}
		s.uops = s.uopsFor(s.cur.Template, s.block)
		if s.pc > len(s.uops) {
			return fmt.Errorf("spu%d: snapshot pc %d beyond block of %d", s.spe, s.pc, len(s.uops))
		}
	}
	s.hzn, s.hznStamp, s.hznDirty = 0, 0, true
	return r.Err()
}
