package spu_test

import (
	"math/bits"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The SPU is exercised through a one-SPE machine: its contract is only
// meaningful wired to an LSE, MFC and memory. These tests build tiny
// single-thread programs and assert on pipeline-level observables
// (instruction counts, cycle costs, stall buckets, register semantics).

// runEX builds a program whose root runs the given EX body and posts
// r1's final value to the mailbox, then returns the result. A nil t is
// allowed inside property functions (failures panic instead).
func runEX(t *testing.T, cfg cell.Config, build func(ex *program.Asm)) *cell.Result {
	if t != nil {
		t.Helper()
	}
	fatal := func(err error) {
		if t != nil {
			t.Fatal(err)
		} else {
			panic(err)
		}
	}
	b := program.NewBuilder("sputest")
	root := b.Template("root")
	root.PL().Load(program.R(9), 0)
	build(root.EX())
	root.PS().
		StoreMailbox(program.R(1), program.R(99), 0).
		Ffree().
		Stop()
	b.Entry(root, 7)
	p, err := b.Build()
	if err != nil {
		fatal(err)
	}
	m, err := cell.New(cfg, p)
	if err != nil {
		fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	return res
}

func oneSPE() cell.Config {
	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 10_000_000
	return cfg
}

func TestALUSemanticsAgainstGoReference(t *testing.T) {
	// Each op is executed on the pipeline with two random operands and
	// compared against Go semantics.
	ops := []struct {
		op  isa.Op
		ref func(a, b int64) int64
	}{
		{isa.ADD, func(a, b int64) int64 { return a + b }},
		{isa.SUB, func(a, b int64) int64 { return a - b }},
		{isa.MUL, func(a, b int64) int64 { return a * b }},
		{isa.AND, func(a, b int64) int64 { return a & b }},
		{isa.OR, func(a, b int64) int64 { return a | b }},
		{isa.XOR, func(a, b int64) int64 { return a ^ b }},
		{isa.SHL, func(a, b int64) int64 { return a << (uint64(b) & 63) }},
		{isa.SHR, func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }},
		{isa.SRA, func(a, b int64) int64 { return a >> (uint64(b) & 63) }},
		{isa.DIV, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{isa.REM, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
		{isa.CMPEQ, func(a, b int64) int64 {
			if a == b {
				return 1
			}
			return 0
		}},
		{isa.CMPLT, func(a, b int64) int64 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.CMPLTU, func(a, b int64) int64 {
			if uint64(a) < uint64(b) {
				return 1
			}
			return 0
		}},
	}
	rng := sim.NewRand(31)
	for _, c := range ops {
		// Constrain operands to int32 so they load with one MOVI.
		a := int64(int32(rng.Uint32()))
		bv := int64(int32(rng.Uint32()))
		res := runEX(t, oneSPE(), func(ex *program.Asm) {
			ex.Movi(program.R(2), int32(a))
			ex.Movi(program.R(3), int32(bv))
			ex.Emit(isa.Instruction{Op: c.op, Rd: 1, Ra: 2, Rb: 3})
		})
		if got, want := res.Tokens[0], c.ref(a, bv); got != want {
			t.Errorf("%s(%d, %d) = %d, want %d", c.op, a, bv, got, want)
		}
	}
}

// Property: MOVHI/ORI pairs build any non-negative 64-bit constant with
// a zero-sign low half.
func TestLiPairProperty(t *testing.T) {
	f := func(hi int32, lo uint32) bool {
		lo &= 0x7FFFFFFF
		want := int64(hi)<<32 | int64(lo)
		res := runEX(nil, oneSPE(), func(ex *program.Asm) {
			ex.Emit(isa.Instruction{Op: isa.MOVHI, Rd: 1, Imm: hi})
			ex.Emit(isa.Instruction{Op: isa.ORI, Rd: 1, Ra: 1, Imm: int32(lo)})
		})
		return res.Tokens[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	res := runEX(t, oneSPE(), func(ex *program.Asm) {
		ex.Emit(isa.Instruction{Op: isa.MOVI, Rd: 0, Imm: 99}) // write to r0
		ex.Emit(isa.Instruction{Op: isa.ADDI, Rd: 1, Ra: 0, Imm: 5})
	})
	if res.Tokens[0] != 5 {
		t.Fatalf("r0 was written: result %d, want 5", res.Tokens[0])
	}
}

func TestDualIssuePairsMemAndCompute(t *testing.T) {
	// A strictly alternating mem/compute instruction stream with no
	// dependencies should approach 2 instructions per cycle; a
	// compute-only stream with chained deps approaches 1 per LatFX.
	cfg := oneSPE()
	mk := func(paired bool) int64 {
		res := runEX(t, cfg, func(ex *program.Asm) {
			ex.Movi(program.R(1), 0)
			for i := 0; i < 64; i++ {
				if paired {
					// LS write (mem slot) + independent add (compute slot).
					ex.Lswr8(program.R(1), program.RegPFB, 0x9000)
					ex.Addi(program.R(2), program.R(3), 1)
				} else {
					// Dependent chain: no dual issue possible.
					ex.Addi(program.R(1), program.R(1), 1)
				}
			}
		})
		return int64(res.Cycles)
	}
	paired := mk(true)
	chained := mk(false)
	// 128 instructions paired vs 64 chained. The paired version issues
	// 2/cycle; the chain pays LatFX per instruction.
	if paired >= chained {
		t.Fatalf("dual issue gave no benefit: paired=%d chained=%d", paired, chained)
	}
}

func TestBranchPenaltyCharged(t *testing.T) {
	cfg := oneSPE()
	cfg.SPU.BranchPenalty = 0
	fast := runEX(t, cfg, loopBody(200))
	cfg.SPU.BranchPenalty = 10
	slow := runEX(t, cfg, loopBody(200))
	delta := int64(slow.Cycles - fast.Cycles)
	// 200 taken branches x 10 cycles; allow scheduling slack.
	if delta < 1800 || delta > 2400 {
		t.Fatalf("branch penalty delta = %d, want ~2000", delta)
	}
}

func loopBody(n int32) func(ex *program.Asm) {
	return func(ex *program.Asm) {
		ex.Movi(program.R(1), 0)
		ex.Movi(program.R(2), n)
		ex.Label("top")
		ex.Addi(program.R(1), program.R(1), 1)
		ex.Blt(program.R(1), program.R(2), "top")
	}
}

func TestMULLatencyVisibleInDependentChain(t *testing.T) {
	cfg := oneSPE()
	cfg.SPU.LatMUL = 7
	slow := runEX(t, cfg, mulChain(100))
	cfg.SPU.LatMUL = 2
	fast := runEX(t, cfg, mulChain(100))
	if slow.Cycles <= fast.Cycles {
		t.Fatalf("MUL latency had no effect: %d vs %d", slow.Cycles, fast.Cycles)
	}
	delta := int64(slow.Cycles - fast.Cycles)
	if delta < 400 {
		t.Fatalf("delta = %d, want ~500 (100 muls x 5 extra cycles)", delta)
	}
}

func mulChain(n int) func(ex *program.Asm) {
	return func(ex *program.Asm) {
		ex.Movi(program.R(1), 1)
		ex.Movi(program.R(2), 1)
		for i := 0; i < n; i++ {
			ex.Mul(program.R(1), program.R(1), program.R(2))
		}
	}
}

func TestBlockingReadCostsMemoryLatency(t *testing.T) {
	cfg := oneSPE()
	cfg.Mem.Latency = 150
	res := runEX(t, cfg, func(ex *program.Asm) {
		ex.Movi(program.R(2), 0x100000)
		ex.Read(program.R(1), program.R(2), 0)
	})
	if got := res.Agg.Breakdown[stats.MemStall]; got < 150 {
		t.Fatalf("MemStall = %d cycles, want >= 150", got)
	}
	if res.Agg.Instr.Read != 1 {
		t.Fatalf("Read count = %d", res.Agg.Instr.Read)
	}
}

func TestPerfectCacheRemovesMemStalls(t *testing.T) {
	cfg := oneSPE()
	cfg.Mem.Latency = 150
	cfg.SPU.PerfectCacheLat = 1
	res := runEX(t, cfg, func(ex *program.Asm) {
		ex.Movi(program.R(2), 0x100000)
		ex.Read(program.R(1), program.R(2), 0)
		ex.Write(program.R(1), program.R(2), 64)
	})
	if got := res.Agg.Breakdown[stats.MemStall]; got != 0 {
		t.Fatalf("MemStall = %d with perfect cache, want 0", got)
	}
	// The write must still land in memory (functional backdoor).
	// Reading it back through the result is covered by machine tests;
	// here the absence of faults plus 0 stalls is the contract.
	if res.Agg.Instr.Write != 1 {
		t.Fatalf("Write count = %d", res.Agg.Instr.Write)
	}
}

func TestMFCChannelCostCountsAsPrefetch(t *testing.T) {
	// A thread with a hand-written PF block: the channel-write cost
	// must land in the Prefetch bucket.
	b := program.NewBuilder("pfcost")
	root := b.Template("root")
	pf := root.Block(program.PF)
	pf.Load(program.R(1), 0)
	pf.Mfcea(program.R(1))
	pf.Mov(program.R(2), program.RegPFB)
	pf.Mfclsa(program.R(2))
	pf.Movi(program.R(3), 64)
	pf.Mfcsz(program.R(3))
	pf.Mfctag(program.RegTag)
	pf.Mfcget()
	root.PL().Load(program.R(4), 0)
	root.PS().
		StoreMailbox(program.R(4), program.R(5), 0).
		Ffree().
		Stop()
	b.Entry(root, 0x200000)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Templates[0].PrefetchBytes = 64

	run := func(chanCycles int) int64 {
		cfg := oneSPE()
		cfg.SPU.MFCChannelCycles = chanCycles
		m, err := cell.New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Agg.Breakdown[stats.Prefetch]
	}
	cheap := run(1)
	costly := run(40)
	// 5 channel ops x ~39 extra cycles.
	if costly-cheap < 150 {
		t.Fatalf("channel cost not charged to Prefetch: %d vs %d", cheap, costly)
	}
}

func TestStallAttributionLSvsWorking(t *testing.T) {
	// A tight chain of dependent frame loads accumulates LS stalls.
	cfg := oneSPE()
	b := program.NewBuilder("lsstall")
	root := b.Template("root")
	pl := root.PL()
	pl.Load(program.R(1), 0)
	for i := 0; i < 32; i++ {
		// Dependent: each load's address register comes from the
		// previous load (always slot 0, value used as dummy offset).
		pl.Loadx(program.R(2), program.R(0))
		pl.Add(program.R(3), program.R(2), program.R(2)) // use it immediately
	}
	root.PS().StoreMailbox(program.R(1), program.R(9), 0).Ffree().Stop()
	b.Entry(root, 5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Breakdown[stats.LSStall] == 0 {
		t.Fatal("dependent frame loads produced no LS stalls")
	}
}

func TestInstructionCountsExact(t *testing.T) {
	res := runEX(t, oneSPE(), func(ex *program.Asm) {
		ex.Movi(program.R(1), 1) // compute
		ex.Movi(program.R(2), 0x100000)
		ex.Read(program.R(3), program.R(2), 0)  // mem read
		ex.Write(program.R(3), program.R(2), 8) // mem write
		ex.Lsrd(program.R(4), program.RegPFB, 0x9000)
		ex.Lswr(program.R(4), program.RegPFB, 0x9008)
	})
	ic := res.Agg.Instr
	// PL: 1 load; EX: 6; PS: movi+store(mailbox)+ffree+stop = 4.
	if ic.Load != 1 || ic.Read != 1 || ic.Write != 1 || ic.LSDir != 2 {
		t.Fatalf("counts = %+v", ic)
	}
	if ic.Total != 1+6+4 {
		t.Fatalf("total = %d, want 11", ic.Total)
	}
	if ic.DTA != 2 { // ffree + stop
		t.Fatalf("DTA = %d", ic.DTA)
	}
	if ic.Store != 1 { // mailbox store
		t.Fatalf("Store = %d", ic.Store)
	}
}

func TestFaultOnBadLSAddress(t *testing.T) {
	cfg := oneSPE()
	b := program.NewBuilder("badls")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0)
	root.EX().Lsrd(program.R(2), program.R(1), 0) // address = entry arg
	root.PS().StoreMailbox(program.R(2), program.R(3), 0).Ffree().Stop()
	b.Entry(root, 1<<40) // far outside the local store
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := cell.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "ls:") {
		t.Fatalf("err = %v, want local-store fault", err)
	}
}

func TestBreakdownNeverNegativeAndComplete(t *testing.T) {
	// Property: for random small loop programs, the breakdown buckets
	// are non-negative and sum exactly to the run length.
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		n := int32(10 + rng.Intn(100))
		res := runEX(nil, oneSPE(), loopBody(n))
		var sum int64
		for _, v := range res.Agg.Breakdown {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == int64(res.Cycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftCountMasking(t *testing.T) {
	// Shift counts use only the low 6 bits (Go shifts by >=64 would
	// zero; hardware masks).
	res := runEX(t, oneSPE(), func(ex *program.Asm) {
		ex.Movi(program.R(2), 1)
		ex.Movi(program.R(3), 65) // & 63 == 1
		ex.Shl(program.R(1), program.R(2), program.R(3))
	})
	if res.Tokens[0] != 2 {
		t.Fatalf("1 << 65 = %d, want 2 (masked shift)", res.Tokens[0])
	}
	_ = bits.UintSize
}
